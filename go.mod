module edgeauth

go 1.21
