// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact), plus the ablation benches
// called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports the paper-model value and the measured
// value of a representative point as benchmark metrics, and exercises the
// full measured path once per iteration. cmd/bench prints the complete
// series; these benches make the reproduction part of `go test`.
package edgeauth_test

import (
	"context"
	"fmt"
	"math/big"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeauth/internal/central"
	"edgeauth/internal/client"
	"edgeauth/internal/costmodel"
	"edgeauth/internal/digest"
	"edgeauth/internal/edge"
	"edgeauth/internal/experiments"
	"edgeauth/internal/naive"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/workload"
)

// benchCfg keeps the shared environment affordable: one build serves every
// figure benchmark.
var benchCfg = experiments.Config{
	Rows:      3_000,
	SmallRows: 600,
	KeyBits:   512,
	PageSize:  4096,
	Seed:      42,
}

var (
	envOnce sync.Once
	env     *experiments.Env
	envErr  error
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() { env, envErr = experiments.NewEnv(benchCfg) })
	if envErr != nil {
		b.Fatal(envErr)
	}
	return env
}

// BenchmarkTable1Defaults exercises the parameter table: validating and
// deriving every Table 1 quantity.
func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := costmodel.Default()
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = p.BTreeFanOut()
		_ = p.VBTreeFanOut()
		_ = p.VBTreeHeight()
	}
	p := costmodel.Default()
	b.ReportMetric(float64(p.VBTreeFanOut()), "model-vb-fanout")
	b.ReportMetric(float64(p.BTreeFanOut()), "model-b-fanout")
}

// BenchmarkFig8FanOut regenerates Figure 8 (fan-out vs key length).
func BenchmarkFig8FanOut(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_ = costmodel.Fig8FanOut(costmodel.Default())
		_ = e.MeasuredFig8()
	}
	model := costmodel.Fig8FanOut(costmodel.Default())
	meas := e.MeasuredFig8()
	// Report the |K|=16 point (index 4).
	b.ReportMetric(model.Series[1].Y[4], "model-vb-fanout@16B")
	b.ReportMetric(meas.Series[1].Y[4], "measured-vb-fanout@16B")
}

// BenchmarkFig9Height regenerates Figure 9 (height vs key length).
func BenchmarkFig9Height(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		_ = costmodel.Fig9Height(costmodel.Default())
		_ = e.MeasuredFig9()
	}
	shape, err := e.BuiltShape()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(costmodel.Default().VBTreeHeight()), "model-vb-height@1M")
	b.ReportMetric(float64(shape.Height), "built-height@3k")
}

// BenchmarkFig10Communication regenerates Figure 10 (bytes vs selectivity)
// for the middle panel Qc = 5; the 50% point is reported as metrics.
func BenchmarkFig10Communication(b *testing.B) {
	e := benchEnv(b)
	var p experiments.CommPoint
	for i := 0; i < b.N; i++ {
		var err error
		p, err = e.MeasureComm(context.Background(), 50, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	m := costmodel.Default()
	m.QC = 5
	qr := m.QRForSelectivity(50)
	b.ReportMetric(float64(m.CommNaive(qr))/float64(m.CommVB(qr)), "model-naive/vb")
	b.ReportMetric(float64(p.NaiveBytes)/float64(p.VBBytes), "measured-naive/vb")
}

// BenchmarkFig11AttrFactor regenerates Figure 11 (bytes vs attribute
// size). The full measured sweep rebuilds tables, so it runs once per
// benchmark invocation and iterations re-measure the largest factor.
func BenchmarkFig11AttrFactor(b *testing.B) {
	cfg := benchCfg
	cfg.SmallRows = 300
	f, err := experiments.MeasuredFig11(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	lastIdx := len(f.X) - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = costmodel.Fig11AttrFactor(costmodel.Default())
	}
	b.ReportMetric(f.Series[1].Y[lastIdx]/f.Series[3].Y[lastIdx], "measured-naive/vb@f6")
	mf := costmodel.Fig11AttrFactor(costmodel.Default())
	b.ReportMetric(mf.Series[1].Y[lastIdx]/mf.Series[3].Y[lastIdx], "model-naive/vb@f6")
}

// BenchmarkFig12Computation regenerates Figure 12 (client cost vs
// selectivity) at X = 10, measuring the full verify path per iteration.
func BenchmarkFig12Computation(b *testing.B) {
	e := benchEnv(b)
	var p experiments.OpsPoint
	for i := 0; i < b.N; i++ {
		var err error
		p, err = e.MeasureOps(context.Background(), 50, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	m := costmodel.Default()
	qr := m.QRForSelectivity(50)
	b.ReportMetric(m.CompNaive(qr)/m.CompVB(qr), "model-naive/vb")
	b.ReportMetric(p.Cost("naive", 1, 10)/p.Cost("vb", 1, 10), "measured-naive/vb")
	b.ReportMetric(float64(p.VBTime.Microseconds()), "vb-verify-us")
	b.ReportMetric(float64(p.NaiveTime.Microseconds()), "naive-verify-us")
}

// BenchmarkFig13aCostK regenerates Figure 13(a): op counts are measured
// once, reweighting is the per-iteration work.
func BenchmarkFig13aCostK(b *testing.B) {
	e := benchEnv(b)
	p, err := e.MeasureOps(context.Background(), 80, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var gapMin, gapMax float64
	for i := 0; i < b.N; i++ {
		gapMin, gapMax = 1e18, 0
		for r := 0.0; r <= 3.0001; r += 0.5 {
			gap := p.Cost("naive", r, 10) - p.Cost("vb", r, 10)
			if gap < gapMin {
				gapMin = gap
			}
			if gap > gapMax {
				gapMax = gap
			}
		}
	}
	// The paper's observation: the gap barely moves with Cost_k.
	b.ReportMetric(gapMax/gapMin, "gap-max/min")
}

// BenchmarkFig13bQc regenerates Figure 13(b): cost vs projection width.
func BenchmarkFig13bQc(b *testing.B) {
	e := benchEnv(b)
	var low, high experiments.OpsPoint
	for i := 0; i < b.N; i++ {
		var err error
		low, err = e.MeasureOps(context.Background(), 20, 2)
		if err != nil {
			b.Fatal(err)
		}
		high, err = e.MeasureOps(context.Background(), 20, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(low.Cost("naive", 1, 10)/low.Cost("vb", 1, 10), "measured-naive/vb@Qc2")
	b.ReportMetric(high.Cost("naive", 1, 10)/high.Cost("vb", 1, 10), "measured-naive/vb@Qc10")
}

// BenchmarkUpdateInsert measures formula (11): one incremental insert.
func BenchmarkUpdateInsert(b *testing.B) {
	key := sig.MustGenerateKey(512)
	spec := workload.DefaultSpec(2000)
	sch, err := spec.Schema()
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		b.Fatal(err)
	}
	tree := buildBenchTree(b, sch, key, tuples)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		vals := make([]schema.Datum, len(sch.Columns))
		vals[0] = schema.Int64(int64(1_000_000 + i))
		for c := 1; c < len(sch.Columns); c++ {
			vals[c] = schema.Str("benchmark-attribute-v")
		}
		if err := tree.Insert(schema.Tuple{Values: vals}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(costmodel.Default().InsertCost(), "model-cost-h-units")
}

// BenchmarkUpdateDelete measures formula (12): range deletes (re-inserting
// between iterations to keep the tree populated).
func BenchmarkUpdateDelete(b *testing.B) {
	key := sig.MustGenerateKey(512)
	spec := workload.DefaultSpec(2000)
	sch, err := spec.Schema()
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		b.Fatal(err)
	}
	tree := buildBenchTree(b, sch, key, tuples)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lo, hi := schema.Int64(100), schema.Int64(149)
		n, err := tree.DeleteRange(&lo, &hi)
		if err != nil {
			b.Fatal(err)
		}
		if n != 50 {
			b.Fatalf("deleted %d, want 50", n)
		}
		b.StopTimer()
		for k := 100; k < 150; k++ {
			if err := tree.Insert(tuples[k]); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
	b.ReportMetric(costmodel.Default().DeleteCost(50), "model-cost-h-units")
}

func buildBenchTree(b *testing.B, sch *schema.Schema, key *sig.PrivateKey, tuples []schema.Tuple) *vbtree.Tree {
	b.Helper()
	mem, err := storage.NewMemPager(4096)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := storage.NewBufferPool(mem, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := vbtree.Build(vbtree.Config{
		Pool: pool, Heap: heap, Schema: sch, Acc: digest.MustNew(digest.DefaultParams()),
		Signer: key, Pub: key.Public(), BuildParallelism: 8,
	}, tuples, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	return tree
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationRootOnlyVO quantifies the paper's headline design
// choice: signing every node keeps the VO size flat in the table size,
// where a root-anchored scheme (Devanbu et al.) grows with tree height.
func BenchmarkAblationRootOnlyVO(b *testing.B) {
	e := benchEnv(b)
	var digests int
	for i := 0; i < b.N; i++ {
		p, err := e.MeasureComm(context.Background(), 10, 10)
		if err != nil {
			b.Fatal(err)
		}
		digests = p.VBDigests
	}
	shape, err := e.BuiltShape()
	if err != nil {
		b.Fatal(err)
	}
	// A root-anchored VO needs the boundary digests of every level up to
	// the root, regardless of result size.
	rootAnchored := digests + (shape.Height-1)*shape.MaxInternalFanOut
	b.ReportMetric(float64(digests), "vb-vo-digests")
	b.ReportMetric(float64(rootAnchored), "root-anchored-digests")
}

// BenchmarkAblationOrderedHash quantifies the commutative-combination
// choice: an order-preserving VO must carry the position of every digest
// (the paper's D_S is a bare set; an ordered scheme ships structure).
func BenchmarkAblationOrderedHash(b *testing.B) {
	e := benchEnv(b)
	var setBytes, orderedBytes int
	for i := 0; i < b.N; i++ {
		p, err := e.MeasureComm(context.Background(), 20, 10)
		if err != nil {
			b.Fatal(err)
		}
		setBytes = p.VBBytes
		// Ordered VOs tag every digest with a (node, position) locator:
		// 4 bytes page + 2 bytes slot, as in Devanbu-style proofs.
		orderedBytes = p.VBBytes + p.VBDigests*6
	}
	b.ReportMetric(float64(setBytes), "set-vo-bytes")
	b.ReportMetric(float64(orderedBytes), "ordered-vo-bytes")
}

// BenchmarkAblationModulus compares the paper's m = 2^k combining
// optimization against an RSA-style big modulus.
func BenchmarkAblationModulus(b *testing.B) {
	fast := digest.MustNew(digest.DefaultParams())
	m := new(big.Int).Lsh(big.NewInt(1), 1024)
	m.Add(m, big.NewInt(129))
	slow := digest.MustNew(digest.Params{Exponent: 15, Mode: digest.ModBig, Modulus: m})
	mkDigests := func(a *digest.Accumulator) []digest.Value {
		ds := make([]digest.Value, 32)
		for i := range ds {
			ds[i] = a.HashBytes("ablate", []byte{byte(i)})
		}
		return ds
	}
	b.Run("mod2k", func(b *testing.B) {
		ds := mkDigests(fast)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fast.Combine(ds...); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("modbig-1024", func(b *testing.B) {
		ds := mkDigests(slow)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := slow.Combine(ds...); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationInsertRecompute compares the paper's incremental insert
// against the full digest recomputation it avoids (Audit is the
// recompute-everything path).
func BenchmarkAblationInsertRecompute(b *testing.B) {
	key := sig.MustGenerateKey(512)
	spec := workload.DefaultSpec(1000)
	sch, err := spec.Schema()
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		b.Fatal(err)
	}
	tree := buildBenchTree(b, sch, key, tuples)
	// The sub-benchmark body reruns with growing b.N against the same
	// tree, so keys must be unique across runs.
	nextKey := int64(2_000_000)
	b.Run("incremental-insert", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nextKey++
			vals := make([]schema.Datum, len(sch.Columns))
			vals[0] = schema.Int64(nextKey)
			for c := 1; c < len(sch.Columns); c++ {
				vals[c] = schema.Str("ablation-attribute-xx")
			}
			if err := tree.Insert(schema.Tuple{Values: vals}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tree.Audit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNaiveVerify and BenchmarkVBVerify isolate the two schemes'
// client verification paths at a fixed result size.
func BenchmarkVBVerify(b *testing.B) {
	e := benchEnv(b)
	for i := 0; i < b.N; i++ {
		if _, err := e.MeasureOps(context.Background(), 20, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveQueryPath isolates the naive store's query construction.
func BenchmarkNaiveQueryPath(b *testing.B) {
	e := benchEnv(b)
	lo, hi := schema.Int64(100), schema.Int64(699)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Naive.RunQuery(naive.Query{Lo: &lo, Hi: &hi}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVBQueryPath isolates the VB-tree's query+VO construction.
func BenchmarkVBQueryPath(b *testing.B) {
	e := benchEnv(b)
	lo, hi := schema.Int64(100), schema.Int64(699)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Tree.RunQuery(context.Background(), vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchInsert quantifies the group-commit write pipeline: the
// same insert stream pushed through the per-tuple path (one WAL fsync,
// one snapshot publish and one root-to-leaf RSA re-sign chain per tuple)
// versus ApplyBatch at sizes 1/16/256 (those costs paid once per batch,
// node re-signs once per dirtied node, per-tuple signatures produced by
// the parallel worker pool). ns/op is per TUPLE in every variant, so the
// ratios read directly as throughput multipliers; tuples/sec is also
// reported as a metric.
//
// The table is a thin two-column index at a small page size — the shape
// that isolates the pipeline costs batching can amortize from the
// per-tuple attribute-signing floor (formula (1) signatures scale with
// column count and no batching can remove them; on wide rows they bound
// the speedup).
func BenchmarkBatchInsert(b *testing.B) {
	sch := &schema.Schema{
		DB: "benchdb", Table: "thin",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "val", Type: schema.TypeString},
		},
	}
	baseRows := func() []schema.Tuple {
		tuples := make([]schema.Tuple, 8_000)
		for i := range tuples {
			tuples[i] = schema.Tuple{Values: []schema.Datum{
				schema.Int64(int64(i)), schema.Str(fmt.Sprintf("row-%08d", i)),
			}}
		}
		return tuples
	}
	newServer := func(b *testing.B) *central.Server {
		b.Helper()
		srv, err := central.NewServerWithKey(central.Options{
			PageSize:         512,
			WALDir:           b.TempDir(),
			BuildParallelism: 8,
		}, benchDeltaKey(b))
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.AddTable(sch, baseRows()); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		return srv
	}
	var nextID atomic.Int64
	nextID.Store(1 << 40)
	row := func() schema.Tuple {
		id := nextID.Add(1)
		return schema.Tuple{Values: []schema.Datum{
			schema.Int64(id), schema.Str(fmt.Sprintf("row-%08d", id&0xFFFFFF)),
		}}
	}

	b.Run("per-tuple", func(b *testing.B) {
		srv := newServer(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := srv.Insert("thin", row()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
	})
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			srv := newServer(b)
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := batch
				if rem := b.N - done; n > rem {
					n = rem
				}
				tuples := make([]schema.Tuple, n)
				for i := range tuples {
					tuples[i] = row()
				}
				opErrs, err := srv.ApplyBatch("thin", tuples)
				if err != nil {
					b.Fatal(err)
				}
				for _, e := range opErrs {
					if e != nil {
						b.Fatal(e)
					}
				}
				done += n
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
		})
	}

	// The wire-level view — what a client actually experiences. The
	// per-tuple baseline pays one round trip AND one full commit per
	// tuple; InsertBatch ships one frame and commits once.
	newClient := func(b *testing.B) *client.Client {
		b.Helper()
		srv := newServer(b)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		cl, err := client.Dial(context.Background(), client.Config{
			EdgeAddr:    ln.Addr().String(), // queries unused; reuse central
			CentralAddr: ln.Addr().String(),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(cl.Close)
		return cl
	}
	b.Run("wire/per-tuple", func(b *testing.B) {
		cl := newClient(b)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := cl.Insert(ctx, "thin", row()); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
	})
	b.Run("wire/batch=256", func(b *testing.B) {
		cl := newClient(b)
		ctx := context.Background()
		b.ResetTimer()
		for done := 0; done < b.N; {
			n := 256
			if rem := b.N - done; n > rem {
				n = rem
			}
			tuples := make([]schema.Tuple, n)
			for i := range tuples {
				tuples[i] = row()
			}
			opErrs, err := cl.InsertBatch(ctx, "thin", tuples)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range opErrs {
				if e != nil {
					b.Fatal(e)
				}
			}
			done += n
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
	})
}

// BenchmarkRefreshDeltaVsSnapshot measures the wire bytes of edge-replica
// refresh under the two propagation modes: a signed delta carrying only
// the pages dirtied by a small update batch, versus re-shipping the full
// snapshot. Delta bytes track the batch size (O(batch × tree height)
// pages); snapshot bytes track the table size — the asymptotic gap that
// makes periodic propagation viable at scale.
func BenchmarkRefreshDeltaVsSnapshot(b *testing.B) {
	for _, rows := range []int{1_000, 4_000} {
		for _, batch := range []int{1, 16} {
			b.Run(fmt.Sprintf("rows=%d/batch=%d", rows, batch), func(b *testing.B) {
				srv, err := central.NewServerWithKey(
					central.Options{PageSize: 1024},
					benchDeltaKey(b),
				)
				if err != nil {
					b.Fatal(err)
				}
				spec := workload.DefaultSpec(rows)
				sch, err := spec.Schema()
				if err != nil {
					b.Fatal(err)
				}
				tuples, err := spec.Tuples()
				if err != nil {
					b.Fatal(err)
				}
				if err := srv.AddTable(sch, tuples); err != nil {
					b.Fatal(err)
				}
				base, err := srv.Version("items")
				if err != nil {
					b.Fatal(err)
				}
				epoch, err := srv.TableEpoch("items")
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < batch; i++ {
					vals := make([]schema.Datum, len(sch.Columns))
					vals[0] = schema.Int64(int64(1_000_000 + i))
					for c := 1; c < len(vals); c++ {
						vals[c] = schema.Str("bench-delta-payload-")
					}
					if err := srv.Insert("items", schema.Tuple{Values: vals}); err != nil {
						b.Fatal(err)
					}
				}
				var deltaBytes, snapBytes int
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					d, err := srv.Delta("items", base, epoch)
					if err != nil {
						b.Fatal(err)
					}
					deltaBytes = len(d.Encode())
					snap, err := srv.Snapshot("items")
					if err != nil {
						b.Fatal(err)
					}
					snapBytes = len(snap.Encode())
				}
				b.ReportMetric(float64(deltaBytes), "delta-B")
				b.ReportMetric(float64(snapBytes), "snapshot-B")
				b.ReportMetric(float64(snapBytes)/float64(deltaBytes), "saving-x")
			})
		}
	}
}

var (
	deltaKeyOnce sync.Once
	deltaKey     *sig.PrivateKey
)

func benchDeltaKey(b *testing.B) *sig.PrivateKey {
	b.Helper()
	deltaKeyOnce.Do(func() { deltaKey = sig.MustGenerateKey(512) })
	return deltaKey
}

// BenchmarkConcurrentQueries quantifies the API redesign: N goroutines
// issuing verified queries through one shared Client, on the multiplexed
// v2 protocol (requests pipeline over one connection, responses return
// out of order) versus the legacy serial one-frame-in/one-frame-out mode.
// The serial column is what every concurrency level degraded to before
// the redesign.
func BenchmarkConcurrentQueries(b *testing.B) {
	ctx := context.Background()
	srv, err := central.NewServerWithKey(central.Options{PageSize: 1024}, benchDeltaKey(b))
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.DefaultSpec(2_000)
	sch, err := spec.Schema()
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		b.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(centralLn)
	defer srv.Close()

	eg := edge.NewWithOptions(centralLn.Addr().String(), edge.Options{MaxConcurrent: 64})
	if err := eg.PullAll(ctx); err != nil {
		b.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go eg.Serve(edgeLn)
	defer eg.Close()

	preds := []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(100)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(119)},
	}
	for _, mode := range []struct {
		name   string
		serial bool
	}{{"pipelined", false}, {"serial", true}} {
		for _, goroutines := range []int{1, 8, 64} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", mode.name, goroutines), func(b *testing.B) {
				cl, err := client.Dial(ctx, client.Config{
					EdgeAddr:         edgeLn.Addr().String(),
					CentralAddr:      centralLn.Addr().String(),
					DisableMultiplex: mode.serial,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer cl.Close()
				if err := cl.FetchTrustedKey(ctx); err != nil {
					b.Fatal(err)
				}
				// Prime the verifier cache outside the timed region.
				if _, err := cl.Query(ctx, "items", preds, nil); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				var wg sync.WaitGroup
				errCh := make(chan error, goroutines)
				per := b.N / goroutines
				if b.N%goroutines != 0 {
					per++
				}
				for g := 0; g < goroutines; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							if _, err := cl.Query(ctx, "items", preds, nil); err != nil {
								errCh <- err
								return
							}
						}
					}()
				}
				wg.Wait()
				close(errCh)
				for err := range errCh {
					b.Fatal(err)
				}
			})
		}
	}
}

// BenchmarkQueryTailUnderRefresh quantifies the snapshot-isolated storage
// refactor: p50/p99 query latency on an edge replica while a continuous
// delta-refresh loop races the queries. Before the refactor every query
// held the replica lock for its whole traversal+VO build and each delta
// apply took the write lock, so refresh cadence fed straight into query
// tail latency; with copy-on-write snapshots the two are independent and
// p99 stays flat no matter how hot the refresh loop runs.
func BenchmarkQueryTailUnderRefresh(b *testing.B) {
	ctx := context.Background()
	srv, err := central.NewServerWithKey(central.Options{PageSize: 1024}, benchDeltaKey(b))
	if err != nil {
		b.Fatal(err)
	}
	spec := workload.DefaultSpec(2_000)
	sch, err := spec.Schema()
	if err != nil {
		b.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	eg := edge.New(ln.Addr().String())
	if err := eg.PullAll(ctx); err != nil {
		b.Fatal(err)
	}
	defer eg.Close()

	var nextID atomic.Int64
	nextID.Store(5_000_000)
	for _, goroutines := range []int{8, 64} {
		b.Run(fmt.Sprintf("goroutines=%d", goroutines), func(b *testing.B) {
			stop := make(chan struct{})
			var refreshes atomic.Int64
			var refWg sync.WaitGroup
			refWg.Add(1)
			go func() {
				defer refWg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					vals := make([]schema.Datum, len(sch.Columns))
					vals[0] = schema.Int64(nextID.Add(1))
					for c := 1; c < len(vals); c++ {
						vals[c] = schema.Str("tail-bench-payload----")
					}
					if err := srv.Insert("items", schema.Tuple{Values: vals}); err != nil {
						b.Error(err)
						return
					}
					if _, err := eg.Refresh(ctx, "items"); err != nil {
						b.Error(err)
						return
					}
					refreshes.Add(1)
				}
			}()

			lats := make([][]time.Duration, goroutines)
			per := b.N / goroutines
			if b.N%goroutines != 0 {
				per++
			}
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					lats[g] = make([]time.Duration, 0, per)
					for i := 0; i < per; i++ {
						lo := schema.Int64(int64((g*53 + i) % 1900))
						hi := schema.Int64(lo.I + 20)
						start := time.Now()
						if _, _, err := eg.RunQuery(ctx, "items", vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
							b.Error(err)
							return
						}
						lats[g] = append(lats[g], time.Since(start))
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			refWg.Wait()

			var all []time.Duration
			for _, l := range lats {
				all = append(all, l...)
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			if len(all) > 0 {
				p50 := all[len(all)/2]
				p99 := all[len(all)*99/100]
				b.ReportMetric(float64(p50.Microseconds()), "p50-us")
				b.ReportMetric(float64(p99.Microseconds()), "p99-us")
			}
			b.ReportMetric(float64(refreshes.Load()), "refreshes")
		})
	}
}

// BenchmarkShardedIngest measures group-committed batch ingest as the
// table's shard count grows. Each batch strides across the whole key
// space so every shard receives a sub-batch, and the per-shard
// InsertBatch calls (WAL append, tree repair, root re-sign, snapshot
// publish) run in parallel — the RSA-bound write path scales with
// cores instead of serializing on one signed root. On a single-core
// runner the curve is flat (sharding adds no overhead); on multicore
// the tuples/sec column grows with the shard count.
func BenchmarkShardedIngest(b *testing.B) {
	sch := &schema.Schema{
		DB: "benchdb", Table: "thin",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "val", Type: schema.TypeString},
		},
	}
	const baseRows = 8_000
	newServer := func(b *testing.B, shards int) *central.Server {
		b.Helper()
		srv, err := central.NewServerWithKey(central.Options{
			PageSize:         512,
			Shards:           shards,
			BuildParallelism: 8,
		}, benchDeltaKey(b))
		if err != nil {
			b.Fatal(err)
		}
		// Build on even keys so odd keys interleave across every shard.
		tuples := make([]schema.Tuple, baseRows)
		for i := range tuples {
			tuples[i] = schema.Tuple{Values: []schema.Datum{
				schema.Int64(int64(2 * i)), schema.Str(fmt.Sprintf("row-%08d", i)),
			}}
		}
		if err := srv.AddTable(sch, tuples); err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Close() })
		return srv
	}
	const batch = 256
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv := newServer(b, shards)
			next := 0
			b.ResetTimer()
			for done := 0; done < b.N; {
				n := batch
				if rem := b.N - done; n > rem {
					n = rem
				}
				tuples := make([]schema.Tuple, n)
				for i := range tuples {
					// Odd keys, strided so one batch spans all shards.
					k := (next*4099 + 1) % baseRows
					next++
					tuples[i] = schema.Tuple{Values: []schema.Datum{
						schema.Int64(int64(2*k + 1)), schema.Str(fmt.Sprintf("row-%08d", k)),
					}}
				}
				opErrs, err := srv.ApplyBatch("thin", tuples)
				if err != nil {
					b.Fatal(err)
				}
				_ = opErrs // duplicate odd keys after wraparound fail per-op, harmlessly
				done += n
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "tuples/sec")
			b.ReportMetric(float64(srv.Stats().SignOps), "sign-ops")
		})
	}
}

// BenchmarkShardedRangeQuery measures the client-observable cost of
// verified scatter-gather range queries as the shard count grows: the
// per-shard requests pipeline concurrently over one connection, each
// answer carries a root-anchored VO bound to the signed shard map, and
// the client verifies + stitches. Reports p50/p99 latency and the
// summed VO bytes per query.
func BenchmarkShardedRangeQuery(b *testing.B) {
	const rows = 4_000
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			srv, err := central.NewServerWithKey(central.Options{
				PageSize:         1024,
				Shards:           shards,
				BuildParallelism: 8,
			}, benchDeltaKey(b))
			if err != nil {
				b.Fatal(err)
			}
			spec := workload.DefaultSpec(rows)
			sch, err := spec.Schema()
			if err != nil {
				b.Fatal(err)
			}
			tuples, err := spec.Tuples()
			if err != nil {
				b.Fatal(err)
			}
			if err := srv.AddTable(sch, tuples); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Close() })
			centralLn, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go srv.Serve(centralLn)
			eg := edge.New(centralLn.Addr().String())
			if err := eg.PullAll(context.Background()); err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { eg.Close() })
			edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go eg.Serve(edgeLn)
			cl, err := client.Dial(context.Background(), client.Config{
				EdgeAddr:    edgeLn.Addr().String(),
				CentralAddr: centralLn.Addr().String(),
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(cl.Close)
			if err := cl.FetchTrustedKey(context.Background()); err != nil {
				b.Fatal(err)
			}

			// A cross-shard range covering the middle half of the table.
			preds := []query.Predicate{
				{Column: "id", Op: query.OpGE, Value: schema.Int64(rows / 4)},
				{Column: "id", Op: query.OpLE, Value: schema.Int64(3*rows/4 - 1)},
			}
			lats := make([]time.Duration, 0, b.N)
			var voBytes int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				res, err := cl.Query(context.Background(), "items", preds, nil)
				if err != nil {
					b.Fatal(err)
				}
				lats = append(lats, time.Since(start))
				if len(res.Result.Tuples) != rows/2 {
					b.Fatalf("got %d rows, want %d", len(res.Result.Tuples), rows/2)
				}
				voBytes += res.VOBytes
			}
			b.StopTimer()
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			b.ReportMetric(float64(lats[len(lats)/2].Microseconds()), "p50-us")
			b.ReportMetric(float64(lats[len(lats)*99/100].Microseconds()), "p99-us")
			b.ReportMetric(float64(voBytes)/float64(b.N), "vo-bytes")
		})
	}
}
