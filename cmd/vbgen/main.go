// Command vbgen generates an authenticated database on disk: a page file
// holding the table heap and its VB-tree, a metadata file (tree root,
// height, signed root digest, schema, accumulator parameters), and the
// public key needed to verify query results. It then re-opens the files,
// audits every digest, and runs a sample verified query — proving the
// on-disk artifact is a self-contained verifiable replica.
//
// Usage:
//
//	vbgen -out /tmp/vbdb -rows 10000 [-scheme rsa|rsa-merkle|ed25519]
//	      [-keybits 1024] [-pagesize 4096]
//
// -scheme selects the signature scheme and commitment mode (same
// vocabulary as centrald): "rsa" signs every digest individually;
// "rsa-merkle" and "ed25519" sign only the root, leaving interior
// digests as hash-only Merkle commitments. The scheme travels in the
// public-key blob, so the re-open path needs no extra configuration.
// -keybits sizes the RSA modulus and is ignored for ed25519.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
	"edgeauth/internal/wire"
	"edgeauth/internal/workload"
)

func main() {
	var (
		out     = flag.String("out", "vbdb", "output directory")
		rows    = flag.Int("rows", 10_000, "table size")
		scheme  = flag.String("scheme", "rsa", "signature scheme: rsa, rsa-merkle or ed25519")
		keyBits = flag.Int("keybits", 1024, "RSA signing key size (ignored for ed25519)")
		pageSz  = flag.Int("pagesize", 4096, "page/node size")
	)
	flag.Parse()
	log.SetPrefix("vbgen: ")

	sigScheme, err := sig.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	pagePath := filepath.Join(*out, "pages.db")
	metaPath := filepath.Join(*out, "meta.bin")
	pubPath := filepath.Join(*out, "key.pub")

	// Build on a disk pager.
	key, err := sig.Generate(sigScheme, *keyBits)
	if err != nil {
		log.Fatal(err)
	}
	pager, err := storage.CreateDiskPager(pagePath, *pageSz)
	if err != nil {
		log.Fatal(err)
	}
	pool, err := storage.NewBufferPool(pager, 1<<18)
	if err != nil {
		log.Fatal(err)
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(*rows)
	sch, err := spec.Schema()
	if err != nil {
		log.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		log.Fatal(err)
	}
	acc := digest.MustNew(digest.DefaultParams())
	start := time.Now()
	tree, err := vbtree.Build(vbtree.Config{
		Pool: pool, Heap: heap, Schema: sch, Acc: acc,
		Signer: key, Pub: key.Public(), BuildParallelism: 8,
	}, tuples, 1.0)
	if err != nil {
		log.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		log.Fatal(err)
	}
	log.Printf("built VB-tree over %d tuples in %v (%d pages on disk)",
		*rows, time.Since(start).Round(time.Millisecond), pager.NumPages())

	// Persist metadata (a snapshot without page payloads) and the key.
	meta := &wire.Snapshot{
		Schema:    sch,
		AccParams: wire.AccParamsFrom(acc),
		Scheme:    uint8(sigScheme),
		Root:      tree.Root(),
		Height:    uint32(tree.Height()),
		RootSig:   tree.RootSig(),
		PageSize:  uint32(*pageSz),
		HeapPages: heap.Pages(),
	}
	if err := os.WriteFile(metaPath, meta.Encode(), 0o644); err != nil {
		log.Fatal(err)
	}
	pubBlob, err := key.Public().MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(pubPath, pubBlob, 0o644); err != nil {
		log.Fatal(err)
	}
	if err := pager.Close(); err != nil {
		log.Fatal(err)
	}

	// Re-open from disk and audit — the consumer's view.
	reopened, err := openFromDisk(pagePath, metaPath, pubPath)
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	n, err := reopened.tree.Audit()
	if err != nil {
		log.Fatalf("audit FAILED: %v", err)
	}
	log.Printf("audit passed: %d tuples, every digest verified, in %v", n, time.Since(start).Round(time.Millisecond))

	// Sample verified query.
	lo, hi := schema.Int64(int64(*rows/4)), schema.Int64(int64(*rows/4+9))
	rs, w, err := reopened.tree.RunQuery(context.Background(), vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		log.Fatal(err)
	}
	ver := &verify.Verifier{Key: reopened.pub, Acc: reopened.acc, Schema: reopened.sch}
	if err := ver.Verify(rs, w); err != nil {
		log.Fatalf("sample query verification FAILED: %v", err)
	}
	fmt.Printf("vbgen: wrote %s (pages), %s (metadata), %s (public key)\n", pagePath, metaPath, pubPath)
	fmt.Printf("vbgen: sample query [%d,%d] returned %d verified tuples (VO: %d digests, %d bytes)\n",
		*rows/4, *rows/4+9, len(rs.Tuples), w.NumDigests(), w.WireSize())
}

type reopenedDB struct {
	tree *vbtree.Tree
	sch  *schema.Schema
	acc  *digest.Accumulator
	pub  *sig.PublicKey
}

func openFromDisk(pagePath, metaPath, pubPath string) (*reopenedDB, error) {
	metaBlob, err := os.ReadFile(metaPath)
	if err != nil {
		return nil, err
	}
	meta, err := wire.DecodeSnapshot(metaBlob)
	if err != nil {
		return nil, err
	}
	pubBlob, err := os.ReadFile(pubPath)
	if err != nil {
		return nil, err
	}
	pub := &sig.PublicKey{}
	if err := pub.UnmarshalBinary(pubBlob); err != nil {
		return nil, err
	}
	pager, err := storage.OpenDiskPager(pagePath)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewBufferPool(pager, 1<<18)
	if err != nil {
		return nil, err
	}
	heap, err := storage.OpenHeapFile(pool, meta.HeapPages)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(meta.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	tree, err := vbtree.Open(vbtree.Config{
		Pool: pool, Heap: heap, Schema: meta.Schema, Acc: acc, Pub: pub,
	}, meta.Root, int(meta.Height), meta.RootSig)
	if err != nil {
		return nil, err
	}
	return &reopenedDB{tree: tree, sch: meta.Schema, acc: acc, pub: pub}, nil
}
