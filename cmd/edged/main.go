// Command edged runs an (untrusted) edge server: it replicates every
// table from the central server and answers client queries with
// verification objects. A refresh interval implements the paper's
// periodic update propagation; the -tamper flag simulates a compromised
// edge so clients can be shown detecting it.
//
// Usage:
//
//	edged -central 127.0.0.1:7001 -listen :7002 [-refresh 30s] [-tamper mutate-value]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"edgeauth/internal/edge"
	"edgeauth/internal/tamper"
	"edgeauth/internal/vo"
)

func main() {
	var (
		centralAddr = flag.String("central", "127.0.0.1:7001", "central server address")
		listen      = flag.String("listen", "127.0.0.1:7002", "address to serve clients on")
		refresh     = flag.Duration("refresh", 0, "snapshot refresh interval (0 = never)")
		tamperName  = flag.String("tamper", "", "simulate a compromised edge with the named attack (see internal/tamper)")
	)
	flag.Parse()

	log.SetPrefix("edged: ")
	srv := edge.New(*centralAddr)
	start := time.Now()
	if err := srv.PullAll(); err != nil {
		log.Fatal(err)
	}
	log.Printf("replicated tables %v in %v", srv.Tables(), time.Since(start).Round(time.Millisecond))

	if *tamperName != "" {
		var found bool
		for _, a := range tamper.All() {
			if a.Name == *tamperName {
				attack := a
				srv.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
					if err := attack.Apply(rs, w); err != nil {
						log.Printf("attack %q inapplicable: %v", attack.Name, err)
					}
					return nil
				})
				found = true
				log.Printf("COMPROMISED MODE: applying attack %q to every response", a.Name)
				break
			}
		}
		if !found {
			log.Fatalf("unknown attack %q; available:", *tamperName)
		}
	}

	if *refresh > 0 {
		go func() {
			for range time.Tick(*refresh) {
				for _, tbl := range srv.Tables() {
					if err := srv.Pull(tbl); err != nil {
						log.Printf("refresh %q: %v", tbl, err)
					}
				}
				log.Printf("refreshed %d tables", len(srv.Tables()))
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edged serving tables %v on %s\n", srv.Tables(), ln.Addr())
	srv.Serve(ln)
}
