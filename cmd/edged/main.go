// Command edged runs an (untrusted) edge server: it replicates every
// table from the central server and answers client queries with
// verification objects. A refresh interval implements the paper's
// periodic update propagation — each tick pulls signed deltas (only the
// pages changed since the replica's version) and falls back to a full
// snapshot when the central server's retained changelog cannot cover the
// gap. The -tamper flag simulates a compromised edge so clients can be
// shown detecting it.
//
// Usage:
//
//	edged -central 127.0.0.1:7001 -listen :7002 [-refresh 30s] [-tamper mutate-value]
//	      [-upstream host:port,...] [-serve-peers] [-debug-addr 127.0.0.1:7102]
//
// -upstream and -serve-peers wire the edge into the peer distribution
// tier: -upstream names peer edges (tried in order) to pull bulk refresh
// payloads from before falling back to the central, and -serve-peers
// lets this edge answer other edges' replication requests from its own
// replicas. Trust anchors (the signed shard map and the central public
// key) always come from the central regardless of topology.
//
// -tamper also accepts the shard-map attacks (drop-shard-from-map,
// rewire-shard-digests, replay-pre-split-map, hide-split,
// cross-epoch-splice), which corrupt the shard map served for
// range-partitioned tables instead of individual query responses —
// the last three simulate an edge trying to conceal or rewind an
// online shard split/merge — and
// the malicious-relay attacks (bit-flip-delta, replay-stale-snapshot,
// wrong-shard-relay), which corrupt the replication payloads a
// -serve-peers edge relays to downstream edges.
//
// -debug-addr serves expvar (including the edge's live counters under
// the "edge" key, and per-upstream pull counters under "edge_peers")
// at http://ADDR/debug/vars.
package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edgeauth/internal/edge"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/tamper"
	"edgeauth/internal/vo"
)

func main() {
	var (
		centralAddr = flag.String("central", "127.0.0.1:7001", "central server address")
		listen      = flag.String("listen", "127.0.0.1:7002", "address to serve clients on")
		refresh     = flag.Duration("refresh", 0, "update propagation interval (0 = never)")
		idle        = flag.Duration("idletimeout", 0, "drop client connections idle past this (0 = default, <0 = never)")
		tamperName  = flag.String("tamper", "", "simulate a compromised edge with the named attack (see internal/tamper)")
		upstream    = flag.String("upstream", "", "comma-separated peer edge addresses to pull refresh payloads from (tried in order before the central)")
		servePeers  = flag.Bool("serve-peers", false, "answer other edges' replication requests from this edge's replicas")
		debugAddr   = flag.String("debug-addr", "", "serve expvar counters at http://ADDR/debug/vars (empty = disabled)")
	)
	flag.Parse()

	log.SetPrefix("edged: ")
	ctx := context.Background()
	opts := edge.Options{IdleTimeout: *idle, ServePeers: *servePeers}
	if *upstream != "" {
		for _, a := range strings.Split(*upstream, ",") {
			if a = strings.TrimSpace(a); a != "" {
				opts.Upstreams = append(opts.Upstreams, a)
			}
		}
	}
	srv := edge.NewWithOptions(*centralAddr, opts)
	if len(opts.Upstreams) > 0 {
		log.Printf("pulling refresh payloads via upstream peers %v (central %s is the fallback)", opts.Upstreams, *centralAddr)
	}
	if *servePeers {
		log.Printf("serving replication requests to downstream peers")
	}
	start := time.Now()
	if err := srv.PullAll(ctx); err != nil {
		log.Fatal(err)
	}
	log.Printf("replicated tables %v in %v", srv.Tables(), time.Since(start).Round(time.Millisecond))

	if *tamperName != "" {
		var found bool
		for _, a := range tamper.All() {
			if a.Name == *tamperName {
				attack := a
				srv.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
					if err := attack.Apply(rs, w); err != nil {
						log.Printf("attack %q inapplicable: %v", attack.Name, err)
					}
					return nil
				})
				found = true
				log.Printf("COMPROMISED MODE: applying attack %q to every response", a.Name)
				break
			}
		}
		for _, a := range tamper.MapAttacks() {
			if a.Name == *tamperName {
				attack := a
				srv.SetMapTamper(func(sm *shardmap.Signed) *shardmap.Signed {
					if err := attack.Apply(sm); err != nil {
						log.Printf("map attack %q inapplicable: %v", attack.Name, err)
					}
					return sm
				})
				found = true
				log.Printf("COMPROMISED MODE: applying map attack %q to every served shard map", a.Name)
				break
			}
		}
		for _, a := range tamper.PeerAttacks() {
			if a.Name == *tamperName {
				srv.SetPeerTamper(a.NewHook())
				found = true
				log.Printf("COMPROMISED MODE: applying relay attack %q to every peer-served payload", a.Name)
				break
			}
		}
		if !found {
			log.Fatalf("unknown attack %q (see internal/tamper All, MapAttacks and PeerAttacks)", *tamperName)
		}
	}

	if *debugAddr != "" {
		expvar.Publish("edge", expvar.Func(func() any { return srv.Stats() }))
		if len(opts.Upstreams) > 0 {
			expvar.Publish("edge_peers", expvar.Func(func() any { return srv.PeerStats() }))
		}
		if len(opts.Upstreams) > 0 || *servePeers {
			expvar.Publish("edge_relay", expvar.Func(func() any { return srv.RelayStats() }))
		}
		go func() {
			// DefaultServeMux carries expvar's /debug/vars handler.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		log.Printf("expvar counters at http://%s/debug/vars", *debugAddr)
	}

	// The refresh loop owns its ticker and stops when the server shuts
	// down (time.Tick would leak the ticker and never stop).
	stop := make(chan struct{})
	refreshDone := make(chan struct{})
	if *refresh > 0 {
		go func() {
			defer close(refreshDone)
			ticker := time.NewTicker(*refresh)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					refreshOnce(ctx, srv, *refresh)
				case <-stop:
					return
				}
			}
		}()
	} else {
		close(refreshDone)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v, shutting down", sig)
		close(stop)
		srv.Close() // closes listeners; Serve returns
	}()

	fmt.Printf("edged serving tables %v on %s\n", srv.Tables(), ln.Addr())
	srv.Serve(ln)
	<-refreshDone
	// Close is idempotent: this waits out the signal handler's shutdown
	// (or performs it, when Serve stopped on a listener failure) and
	// surfaces a central connection that failed to close cleanly.
	if err := srv.Close(); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("stopped")
}

// refreshOnce propagates pending updates for every table and logs what
// the delta protocol saved over full snapshots. Each tick is bounded by
// its own deadline so a hung central server cannot wedge the loop.
func refreshOnce(ctx context.Context, srv *edge.Server, interval time.Duration) {
	tctx, cancel := context.WithTimeout(ctx, 2*interval)
	defer cancel()
	stats, err := srv.RefreshAll(tctx)
	if err != nil {
		// Per-table failures are isolated; report them and keep the
		// stats of the tables that did refresh.
		log.Printf("refresh: %v", err)
	}
	var deltas, snapshots, noops, bytes int
	for _, st := range stats {
		bytes += st.Bytes
		switch st.Mode {
		case "delta":
			deltas++
			log.Printf("refresh %q: delta v%d→v%d, %d bytes", st.Table, st.FromVersion, st.ToVersion, st.Bytes)
		case "snapshot":
			snapshots++
			log.Printf("refresh %q: full snapshot to v%d, %d bytes", st.Table, st.ToVersion, st.Bytes)
		default:
			noops++
		}
	}
	log.Printf("refreshed %d tables (%d delta, %d snapshot, %d current) in %d bytes",
		len(stats), deltas, snapshots, noops, bytes)
}
