// Command centrald runs the trusted central DBMS: it generates a signing
// key, builds a synthetic table (and optionally a materialized join view)
// with VB-trees, and serves snapshots, updates and the public key over
// TCP.
//
// Usage:
//
//	centrald -listen :7001 -rows 10000 [-join] [-waldir /tmp/wal]
//	         [-scheme rsa|rsa-merkle|ed25519] [-keybits 1024]
//	         [-maxbatch 128] [-maxdelay 2ms]
//	         [-shards 4] [-shard-split count|keyspan]
//	         [-autoreshard 10s] [-split-fraction 0.6] [-merge-fraction 0.05]
//	         [-max-shards 64]
//	         [-debug-addr 127.0.0.1:7101]
//
// -scheme selects the signature scheme and commitment mode: "rsa" is the
// paper's construction (every digest individually signed); "rsa-merkle"
// and "ed25519" sign only tree roots, leaving interior digests as
// hash-only Merkle commitments. -keybits sizes the RSA modulus and is
// ignored for ed25519.
//
// -maxbatch and -maxdelay tune the group-commit front door: concurrent
// single-insert requests for a table are coalesced and committed as one
// batch (one WAL fsync, one version bump, one VB-tree re-sign pass), up
// to maxbatch per round, with the round's leader waiting up to maxdelay
// for stragglers. Explicit batch requests (client.InsertBatch, multi-row
// INSERT ... VALUES (...),(...) in vbquery) commit as one batch
// regardless of these knobs.
//
// -shards range-partitions every table into that many independently
// signed VB-tree shards bound by a central-signed shard map; insert
// batches then re-sign shard roots in parallel. -shard-split picks the
// boundary strategy: "count" balances build rows per shard, "keyspan"
// divides the key interval evenly.
//
// -autoreshard arms the online hot-shard detector: every interval an
// EWMA over per-shard ingest+query load picks a shard to split (above
// -split-fraction of the table's total) or an adjacent pair to merge
// (below -merge-fraction together), committing the transition as a new
// signed map epoch under live traffic. Manually commanded transitions
// via the reshard admin frame are always available, detector or not.
//
// -debug-addr serves expvar (including the server's live counters under
// the "central" key) at http://ADDR/debug/vars.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgeauth/internal/central"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/sig"
	"edgeauth/internal/workload"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7001", "address to serve on")
		rows    = flag.Int("rows", 10_000, "synthetic table size")
		scheme  = flag.String("scheme", "rsa", "signature scheme: rsa, rsa-merkle or ed25519")
		keyBits = flag.Int("keybits", 1024, "RSA signing key size (ignored for ed25519)")
		pageSz  = flag.Int("pagesize", 4096, "VB-tree node size")
		walDir  = flag.String("waldir", "", "directory for write-ahead logs (empty = disabled)")
		join    = flag.Bool("join", false, "also materialize the users/orders join view")
		deltas  = flag.Int("deltaretention", 0, "updates retained per table for edge delta refresh (0 = default, <0 = disabled)")
		idle    = flag.Duration("idletimeout", 0, "drop connections idle past this (0 = default, <0 = never)")
		// Group-commit front door: concurrent single-insert requests for a
		// table are coalesced and committed together — one WAL fsync, one
		// version bump, one tree re-sign pass per round.
		maxBatch = flag.Int("maxbatch", 0, "max inserts group-committed per round (0 = default 128, <0 = disable coalescing)")
		maxDelay = flag.Duration("maxdelay", 0, "how long a group-commit leader waits for stragglers before committing (0 = commit immediately with whatever queued)")
		// Range partitioning: independently-signed VB-tree shards bound
		// by a central-signed shard map.
		shards     = flag.Int("shards", 1, "range-partition each table into this many VB-tree shards")
		shardSplit = flag.String("shard-split", "count", "shard boundary strategy: count (equal rows) or keyspan (equal key width)")
		// Online resharding: the detector splits hot shards and merges
		// cold pairs under live traffic. Admin-commanded transitions via
		// the reshard wire frame work regardless of these flags.
		autoReshard = flag.Duration("autoreshard", 0, "hot-shard detector interval (0 = detector off)")
		splitFrac   = flag.Float64("split-fraction", 0, "EWMA load share that trips a split (0 = default 0.6)")
		mergeFrac   = flag.Float64("merge-fraction", 0, "combined adjacent load share that trips a merge (0 = default 0.05)")
		maxShards   = flag.Int("max-shards", 0, "shard-count ceiling the detector steers under (0 = default 64)")
		debugAddr   = flag.String("debug-addr", "", "serve expvar counters at http://ADDR/debug/vars (empty = disabled)")
	)
	flag.Parse()

	log.SetPrefix("centrald: ")
	strategy, err := shardmap.ParseStrategy(*shardSplit)
	if err != nil {
		log.Fatal(err)
	}
	sigScheme, err := sig.ParseScheme(*scheme)
	if err != nil {
		log.Fatal(err)
	}
	var auto *central.AutoReshardOptions
	if *autoReshard > 0 {
		auto = &central.AutoReshardOptions{
			Interval:      *autoReshard,
			SplitFraction: *splitFrac,
			MergeFraction: *mergeFrac,
			MaxShards:     *maxShards,
		}
	}
	start := time.Now()
	srv, err := central.NewServer(central.Options{
		Scheme:         sigScheme,
		KeyBits:        *keyBits,
		PageSize:       *pageSz,
		WALDir:         *walDir,
		DeltaRetention: *deltas,
		IdleTimeout:    *idle,
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		Shards:         *shards,
		ShardSplit:     strategy,
		AutoReshard:    auto,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated %s signing key in %v", sigScheme, time.Since(start).Round(time.Millisecond))

	spec := workload.DefaultSpec(*rows)
	sch, err := spec.Schema()
	if err != nil {
		log.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		log.Fatal(err)
	}
	start = time.Now()
	if err := srv.AddTable(sch, tuples); err != nil {
		log.Fatal(err)
	}
	log.Printf("built VB-tree over %q (%d tuples) in %v", sch.Table, *rows, time.Since(start).Round(time.Millisecond))

	if *join {
		j := workload.DefaultJoinSpec(*rows/10+1, *rows)
		usch, err := j.Users.Schema()
		if err != nil {
			log.Fatal(err)
		}
		utuples, err := j.Users.Tuples()
		if err != nil {
			log.Fatal(err)
		}
		if err := srv.AddTable(usch, utuples); err != nil {
			log.Fatal(err)
		}
		if err := srv.AddTable(j.OrdersSchema(), j.OrderTuples()); err != nil {
			log.Fatal(err)
		}
		start = time.Now()
		if err := srv.MaterializeJoin("user_orders", "orders", "users", "user_id", "id"); err != nil {
			log.Fatal(err)
		}
		log.Printf("materialized join view %q in %v", "user_orders", time.Since(start).Round(time.Millisecond))
	}

	if *debugAddr != "" {
		expvar.Publish("central", expvar.Func(func() any { return srv.Stats() }))
		go func() {
			// DefaultServeMux carries expvar's /debug/vars handler.
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		log.Printf("expvar counters at http://%s/debug/vars", *debugAddr)
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	if *shards > 1 {
		fmt.Printf("centrald serving tables %v (%d shards each) on %s\n", srv.Tables(), *shards, ln.Addr())
	} else {
		fmt.Printf("centrald serving tables %v on %s\n", srv.Tables(), ln.Addr())
	}

	// Graceful shutdown: drain connections and close every shard's WAL —
	// an fsync failure on close is the last chance to notice lost
	// durability, so the error is reported, not dropped.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		log.Printf("received %v, shutting down", sig)
		srv.Close() // closes listeners; Serve returns, and main reports the error
	}()

	srv.Serve(ln)
	// Close is idempotent: this either waits out the signal handler's
	// shutdown or performs it when Serve stopped on a listener failure.
	if err := srv.Close(); err != nil {
		log.Printf("shutdown: %v", err)
	}
	log.Printf("stopped")
}
