// Command bench regenerates every table and figure of the paper's
// evaluation (§4): the analytic cost model at the paper's exact defaults
// (Table 1, N_R = 1M), and the measured series from the live
// implementation at laptop scale. Output is aligned text tables, one block
// per experiment, with paper-model and measured blocks adjacent so the
// shapes can be compared directly.
//
// Usage:
//
//	bench                  # everything
//	bench -exp F10,F12     # selected experiments
//	bench -rows 20000      # larger measured tables
//	bench -model-only      # skip the measured runs (instant)
//	bench -json            # machine-readable compact run (tuples/sec,
//	                       # VO bytes, query p50/p99) for BENCH_*.json
//	                       # artifacts; ignores -exp/-model-only
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"edgeauth/internal/costmodel"
	"edgeauth/internal/experiments"
)

func main() {
	var (
		expList   = flag.String("exp", "all", "comma-separated experiment ids (T1,F8,F9,F10,F11,F12,F13,UPD) or 'all'")
		rows      = flag.Int("rows", 10_000, "measured table size")
		smallRows = flag.Int("small", 2_000, "measured table size for per-point rebuilds")
		keyBits   = flag.Int("keybits", 512, "RSA signing key size for measured runs")
		modelOnly = flag.Bool("model-only", false, "print only the analytic model (no measured runs)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable compact benchmark (JSON on stdout)")
	)
	flag.Parse()

	if *jsonOut {
		if err := runJSON(os.Stdout, *rows, *keyBits, 4096, []int{1, 4}); err != nil {
			fatal(err)
		}
		return
	}

	want := map[string]bool{}
	for _, e := range strings.Split(*expList, ",") {
		want[strings.ToUpper(strings.TrimSpace(e))] = true
	}
	sel := func(id string) bool { return want["ALL"] || want[id] }

	params := costmodel.Default()
	out := os.Stdout

	fmt.Fprintln(out, "=== Analytic model (paper Table 1 defaults, N_R = 1,000,000) ===")
	fmt.Fprintln(out)
	if sel("T1") {
		costmodel.RenderTable1(out, params)
	}
	if sel("F8") {
		costmodel.Fig8FanOut(params).Render(out)
	}
	if sel("F9") {
		costmodel.Fig9Height(params).Render(out)
	}
	if sel("F10") {
		for _, qc := range []int{2, 5, 8} {
			costmodel.Fig10Communication(params, qc).Render(out)
		}
	}
	if sel("F11") {
		costmodel.Fig11AttrFactor(params).Render(out)
	}
	if sel("F12") {
		for _, x := range []float64{5, 10, 100} {
			costmodel.Fig12Computation(params, x).Render(out)
		}
	}
	if sel("F13") {
		costmodel.Fig13aCostK(params).Render(out)
		costmodel.Fig13bQc(params).Render(out)
	}
	if sel("UPD") {
		costmodel.UpdateInsertCost(params).Render(out)
		costmodel.UpdateDeleteCost(params).Render(out)
		costmodel.ShardedUpdateCost(params).Render(out)
	}
	if *modelOnly {
		return
	}

	ctx := context.Background()
	cfg := experiments.Config{
		Rows:      *rows,
		SmallRows: *smallRows,
		KeyBits:   *keyBits,
		PageSize:  4096,
		Seed:      42,
	}
	fmt.Fprintf(out, "=== Measured (live implementation: %d rows, %d-bit RSA, 4 KB pages) ===\n\n", cfg.Rows, cfg.KeyBits)
	start := time.Now()
	env, err := experiments.NewEnv(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "built VB-tree + Naive store over %d tuples in %v\n", cfg.Rows, time.Since(start).Round(time.Millisecond))
	if shape, err := env.BuiltShape(); err == nil {
		fmt.Fprintf(out, "tree shape: height=%d leaves=%d internals=%d avg-fanout=%.1f (capacity %d)\n\n",
			shape.Height, shape.LeafNodes, shape.InternalNodes, shape.AvgInternalFanOut, shape.MaxInternalFanOut)
	}

	if sel("F8") {
		env.MeasuredFig8().Render(out)
	}
	if sel("F9") {
		env.MeasuredFig9().Render(out)
	}
	if sel("F10") {
		for _, qc := range []int{2, 5, 8} {
			f, err := env.MeasuredFig10(ctx, qc)
			if err != nil {
				fatal(err)
			}
			f.Render(out)
		}
	}
	if sel("F11") {
		f, err := experiments.MeasuredFig11(ctx, cfg)
		if err != nil {
			fatal(err)
		}
		f.Render(out)
	}
	if sel("F12") {
		for _, x := range []float64{5, 10, 100} {
			f, err := env.MeasuredFig12(ctx, x)
			if err != nil {
				fatal(err)
			}
			f.Render(out)
		}
	}
	if sel("F13") {
		f, err := env.MeasuredFig13a(ctx)
		if err != nil {
			fatal(err)
		}
		f.Render(out)
		f, err = env.MeasuredFig13b(ctx)
		if err != nil {
			fatal(err)
		}
		f.Render(out)
	}
	if sel("UPD") {
		pts, err := experiments.MeasureUpdates(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(out, "== UPD-measured: central-server update costs (op counts) ==")
		fmt.Fprintf(out, "%-40s %10s %10s %10s %12s\n", "operation", "hashes", "combines", "recovers", "wall")
		for _, p := range pts {
			fmt.Fprintf(out, "%-40s %10d %10d %10d %12v\n",
				p.Label, p.HashOps, p.Combines, p.Recovers, p.Wall.Round(time.Microsecond))
		}
		fmt.Fprintln(out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
