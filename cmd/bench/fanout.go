package main

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"edgeauth/internal/edge"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

// The peer_fanout scenario measures the CDN effect of the peer
// distribution tier: one batch commit fanned out to N edges, once with
// every edge pulling directly from the central and once routed through
// a 2-edge serving tier. The interesting numbers are the central's
// bulk egress (the bytes the tier is supposed to absorb) and the
// wall-clock for the whole fleet to converge.

// PeerFanoutPoint is one topology's measurement.
type PeerFanoutPoint struct {
	Topology           string  `json:"topology"` // "direct" or "two-tier"
	Edges              int     `json:"edges"`
	Tier1              int     `json:"tier1"`
	CentralDeltaBytes  uint64  `json:"central_delta_bytes"`
	CentralMapBytes    uint64  `json:"central_map_bytes"`
	PeerPayloadsServed uint64  `json:"peer_payloads_served"`
	PeerBytesServed    uint64  `json:"peer_bytes_served"`
	ConvergeSeconds    float64 `json:"converge_seconds"`
}

// measurePeerFanout runs the direct and two-tier rounds at the same
// fleet size and returns both points.
func measurePeerFanout(key *sig.PrivateKey, rows, pageSize, edges int) ([]PeerFanoutPoint, error) {
	direct, err := fanoutRound(key, rows, pageSize, edges, 0)
	if err != nil {
		return nil, fmt.Errorf("direct: %w", err)
	}
	tiered, err := fanoutRound(key, rows, pageSize, edges, 2)
	if err != nil {
		return nil, fmt.Errorf("two-tier: %w", err)
	}
	return []PeerFanoutPoint{direct, tiered}, nil
}

// fanoutRound builds a fresh sharded central behind a loopback
// listener, bootstraps a fleet of edges (with tier1Count of them
// serving peers and the rest pulling through them), commits one batch,
// and times the fleet-wide refresh.
func fanoutRound(key *sig.PrivateKey, rows, pageSize, edges, tier1Count int) (PeerFanoutPoint, error) {
	srv, sch, err := benchServer(key, rows, pageSize, 2, false)
	if err != nil {
		return PeerFanoutPoint{}, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return PeerFanoutPoint{}, err
	}
	go srv.Serve(ln)
	centralAddr := ln.Addr().String()
	ctx := context.Background()

	// Tier-1 serves peers from its pinned snapshots; tier-2 lists both
	// tier-1 addresses with alternating preference so load spreads.
	tier1 := make([]*edge.Server, 0, tier1Count)
	tier1Addrs := make([]string, 0, tier1Count)
	closeAll := func() {
		for _, eg := range tier1 {
			eg.Close()
		}
	}
	defer closeAll()
	for i := 0; i < tier1Count; i++ {
		eg := edge.NewWithOptions(centralAddr, edge.Options{ServePeers: true})
		if err := eg.PullAll(ctx); err != nil {
			return PeerFanoutPoint{}, err
		}
		eln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return PeerFanoutPoint{}, err
		}
		go eg.Serve(eln)
		tier1 = append(tier1, eg)
		tier1Addrs = append(tier1Addrs, eln.Addr().String())
	}
	fleet := make([]*edge.Server, edges-tier1Count)
	for i := range fleet {
		var opts edge.Options
		if tier1Count > 0 {
			opts.Upstreams = []string{tier1Addrs[i%tier1Count], tier1Addrs[(i+1)%tier1Count]}
		}
		fleet[i] = edge.NewWithOptions(centralAddr, opts)
		defer fleet[i].Close()
	}
	if err := eachEdge(fleet, func(eg *edge.Server) error { return eg.PullAll(ctx) }); err != nil {
		return PeerFanoutPoint{}, err
	}

	// One batch commit, striding both shards (low and high key ranges).
	const batchRows = 64
	tuples := make([]schema.Tuple, 0, batchRows)
	for i := 0; i < batchRows; i++ {
		id := int64(5_000_000 + i)
		if i%2 == 1 {
			id = int64(-1 - i)
		}
		tuples = append(tuples, benchRow(sch, id))
	}
	opErrs, err := srv.ApplyBatch(sch.Table, tuples)
	if err != nil {
		return PeerFanoutPoint{}, err
	}
	for _, oe := range opErrs {
		if oe != nil {
			return PeerFanoutPoint{}, oe
		}
	}

	// The measured round: tier-1 refreshes from the central, then the
	// fleet fans out behind it. Snapshot every counter first so the
	// point reports this round only, not the bootstrap.
	pre := srv.Stats()
	var preServed, preServedBytes uint64
	for _, eg := range tier1 {
		st := eg.Stats()
		preServed += st.PeerPayloadsServed
		preServedBytes += st.PeerBytesServed
	}
	start := time.Now()
	refresh := func(eg *edge.Server) error {
		_, err := eg.Refresh(ctx, sch.Table)
		return err
	}
	if err := eachEdge(tier1, refresh); err != nil {
		return PeerFanoutPoint{}, err
	}
	if err := eachEdge(fleet, refresh); err != nil {
		return PeerFanoutPoint{}, err
	}
	converge := time.Since(start)
	post := srv.Stats()

	// Convergence is part of the contract, not just a timing.
	want, err := srv.Version(sch.Table)
	if err != nil {
		return PeerFanoutPoint{}, err
	}
	for _, eg := range append(append([]*edge.Server{}, tier1...), fleet...) {
		if v, _ := eg.Version(sch.Table); v != want {
			return PeerFanoutPoint{}, fmt.Errorf("edge at v%d, central at v%d", v, want)
		}
	}

	pt := PeerFanoutPoint{
		Topology:          "direct",
		Edges:             edges,
		Tier1:             tier1Count,
		CentralDeltaBytes: post.EgressDeltaBytes - pre.EgressDeltaBytes,
		CentralMapBytes:   post.EgressMapBytes - pre.EgressMapBytes,
		ConvergeSeconds:   converge.Seconds(),
	}
	if tier1Count > 0 {
		pt.Topology = "two-tier"
		for _, eg := range tier1 {
			st := eg.Stats()
			pt.PeerPayloadsServed += st.PeerPayloadsServed
			pt.PeerBytesServed += st.PeerBytesServed
		}
		pt.PeerPayloadsServed -= preServed
		pt.PeerBytesServed -= preServedBytes
	}
	return pt, nil
}

// eachEdge runs fn over every edge concurrently and returns the first
// error.
func eachEdge(egs []*edge.Server, fn func(*edge.Server) error) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(egs))
	for _, eg := range egs {
		wg.Add(1)
		go func(eg *edge.Server) {
			defer wg.Done()
			errs <- fn(eg)
		}(eg)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
