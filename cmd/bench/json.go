package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"edgeauth/internal/central"
	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/verify"
	"edgeauth/internal/workload"
)

// Machine-readable benchmark mode (-json): a compact standard workload
// whose results are emitted as one JSON document, so CI can archive a
// BENCH_*.json per commit and the performance trajectory of the
// implementation is a queryable artifact instead of prose in PR
// descriptions.

// JSONReport is the -json output document.
type JSONReport struct {
	// Configuration the numbers were measured under.
	Rows     int   `json:"rows"`
	KeyBits  int   `json:"key_bits"`
	PageSize int   `json:"page_size"`
	UnixTime int64 `json:"unix_time"`

	// Ingest measures group-committed batch insert throughput at
	// increasing shard counts (the sharded write path's headline claim:
	// tuples/sec scales with shards on multicore).
	Ingest []IngestPoint `json:"ingest"`

	// Query measures verified point/range query latency and VO size at
	// the client-observable level.
	Query QueryPoint `json:"query"`

	// PeerFanout measures the peer distribution tier's CDN effect:
	// central egress bytes and fleet convergence latency for one batch
	// commit at N edges, direct vs routed through a 2-edge serving tier.
	PeerFanout []PeerFanoutPoint `json:"peer_fanout"`

	// SignPath isolates the signature scheme's cost on both critical
	// paths: batch ingest throughput at the central (rsa signs every
	// dirtied node; the Merkle schemes sign one root per commit) and
	// client-side VO verification latency, first-touch and cache-warm.
	SignPath []SignPathPoint `json:"sign_path"`

	// Reshard measures the online split/merge path: hot-range query
	// latency before and after splitting the skew-loaded shard, the
	// transition's wall time, and the minimal re-signing contract
	// (roots re-signed per transition, VO bytes on the hot range) that
	// benchdiff gates across machines.
	Reshard ReshardPoint `json:"reshard"`
}

// IngestPoint is one ingest measurement.
type IngestPoint struct {
	Shards       int     `json:"shards"`
	Batch        int     `json:"batch"`
	Tuples       int     `json:"tuples"`
	Seconds      float64 `json:"seconds"`
	TuplesPerSec float64 `json:"tuples_per_sec"`
	SignOps      uint64  `json:"sign_ops"`
}

// QueryPoint aggregates query-side measurements.
type QueryPoint struct {
	Samples        int     `json:"samples"`
	RangeRows      int     `json:"range_rows"`
	P50Micros      float64 `json:"p50_us"`
	P99Micros      float64 `json:"p99_us"`
	VOBytesAvg     float64 `json:"vo_bytes_avg"`
	ResultBytesAvg float64 `json:"result_bytes_avg"`
}

// SignPathPoint is one scheme's measurement on the write and verify
// critical paths.
type SignPathPoint struct {
	Scheme        string  `json:"scheme"`
	Batch         int     `json:"batch"`
	Tuples        int     `json:"tuples"`
	IngestSeconds float64 `json:"ingest_seconds"`
	TuplesPerSec  float64 `json:"tuples_per_sec"`
	SignOps       uint64  `json:"sign_ops"`
	// Client-observable verification latency over verified range
	// queries: cold = verified-digest cache disabled, so every
	// signature is verified on every query (the scheme's intrinsic
	// verify cost); warm = default cache, second pass over the same
	// queries (the repeat-query fast path).
	VerifyColdP50Micros float64 `json:"verify_cold_p50_us"`
	VerifyWarmP50Micros float64 `json:"verify_warm_p50_us"`
	VerifyP99Micros     float64 `json:"verify_p99_us"`
	CacheHitRate        float64 `json:"verify_cache_hit_rate"`
}

// ReshardPoint reports one hot-shard split + merge round.
type ReshardPoint struct {
	ShardsBefore int `json:"shards_before"`
	// HotRows is the tuple count of the skew-loaded shard at split time.
	HotRows int `json:"hot_rows"`
	// Hot-range query latency sampled immediately before and after the
	// split (hardware-dependent, informational).
	HotP99BeforeMicros float64 `json:"hot_p99_before_us"`
	HotP99AfterMicros  float64 `json:"hot_p99_after_us"`
	// Wall time of the SplitShard / MergeShards call itself — the
	// transition stall an operator pays (queries and commits on other
	// shards keep flowing throughout).
	SplitStallMicros float64 `json:"split_stall_us"`
	MergeStallMicros float64 `json:"merge_stall_us"`
	// Machine-independent, gated by benchdiff: a split re-signs exactly
	// its two child roots (plus the map), a merge one — never the whole
	// table.
	ResignsPerSplit uint64 `json:"resigns_per_split"`
	ResignsPerMerge uint64 `json:"resigns_per_merge"`
	SplitSignOps    uint64 `json:"split_sign_ops"`
	MergeSignOps    uint64 `json:"merge_sign_ops"`
	// Pages copied into the child stores (deterministic for a fixed
	// row count and page size).
	PagesMovedPerSplit uint64 `json:"pages_moved_per_split"`
	// VO size on the hot range before/after the split: deterministic
	// codec output, gated.
	HotVOBytesBefore float64 `json:"hot_vo_bytes_before"`
	HotVOBytesAfter  float64 `json:"hot_vo_bytes_after"`
	// In-lock barrier stall of a quiescent median split, by parent shard
	// size (min of 3 fresh builds each). The absolute stalls are
	// hardware-dependent; their ratio is the incremental-transition
	// contract benchdiff gates: the child builds stream outside the
	// partition lock, so the barrier pays O(tail)+O(1) signatures and
	// the stall must not scale with the shard's size.
	BarrierStallSmallMicros float64 `json:"barrier_stall_small_us"`
	BarrierStallLargeMicros float64 `json:"barrier_stall_large_us"`
	// BarrierStallRatio = large/small for a 64x shard-size gap.
	BarrierStallRatio float64 `json:"barrier_stall_ratio"`
}

// runJSON executes the compact workload and writes the report.
func runJSON(out io.Writer, rows, keyBits, pageSize int, shardCounts []int) error {
	report := JSONReport{
		Rows:     rows,
		KeyBits:  keyBits,
		PageSize: pageSize,
		UnixTime: time.Now().Unix(),
	}
	key, err := sig.GenerateKey(keyBits)
	if err != nil {
		return err
	}

	const batch = 256
	insertTotal := rows / 2
	for _, shards := range shardCounts {
		pt, err := measureIngest(key, rows, pageSize, shards, batch, insertTotal)
		if err != nil {
			return fmt.Errorf("ingest at %d shards: %w", shards, err)
		}
		report.Ingest = append(report.Ingest, pt)
	}

	qp, err := measureQueries(key, rows, pageSize)
	if err != nil {
		return fmt.Errorf("query measurement: %w", err)
	}
	report.Query = qp

	// The fan-out fleet rebuilds its table per topology, so run it on a
	// trimmed row count to keep -json fast.
	fanRows := rows / 4
	if fanRows < 500 {
		fanRows = 500
	}
	fan, err := measurePeerFanout(key, fanRows, pageSize, 12)
	if err != nil {
		return fmt.Errorf("peer fanout: %w", err)
	}
	report.PeerFanout = fan

	// Scheme comparison: the rsa-merkle key shares the rsa key's
	// material (only the commitment mode differs), so the ingest delta
	// is attributable to signature count alone.
	merkleKey, err := key.WithScheme(sig.SchemeRSAMerkle)
	if err != nil {
		return err
	}
	edKey, err := sig.Generate(sig.SchemeEd25519, 0)
	if err != nil {
		return err
	}
	for _, k := range []*sig.PrivateKey{key, merkleKey, edKey} {
		pt, err := measureSignPath(k, rows, pageSize, batch)
		if err != nil {
			return fmt.Errorf("sign_path %s: %w", k.Scheme(), err)
		}
		report.SignPath = append(report.SignPath, pt)
	}

	// Online resharding under the fast signer (the deployment the
	// reshard machinery targets: cheap signatures keep the transition's
	// re-sign cost to a handful of ops).
	rp, err := measureReshard(edKey, rows, pageSize)
	if err != nil {
		return fmt.Errorf("reshard: %w", err)
	}
	// Stall sweep: the in-lock barrier cost at a 64x shard-size gap.
	const stallSmallRows, stallLargeRows = 1024, 64 * 1024
	if rp.BarrierStallSmallMicros, err = measureBarrierStall(edKey, pageSize, stallSmallRows); err != nil {
		return fmt.Errorf("reshard stall (small): %w", err)
	}
	if rp.BarrierStallLargeMicros, err = measureBarrierStall(edKey, pageSize, stallLargeRows); err != nil {
		return fmt.Errorf("reshard stall (large): %w", err)
	}
	if rp.BarrierStallSmallMicros > 0 {
		rp.BarrierStallRatio = rp.BarrierStallLargeMicros / rp.BarrierStallSmallMicros
	}
	report.Reshard = rp

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// benchServer builds a central server over the standard workload
// schema. With evenKeys the table is built on keys 0,2,4,… so odd keys
// are free for ingest and interleave across every shard.
func benchServer(key *sig.PrivateKey, rows, pageSize, shards int, evenKeys bool) (*central.Server, *schema.Schema, error) {
	srv, err := central.NewServerWithKey(central.Options{PageSize: pageSize, Shards: shards}, key)
	if err != nil {
		return nil, nil, err
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		return nil, nil, err
	}
	var tuples []schema.Tuple
	if evenKeys {
		for i := 0; i < rows; i++ {
			tuples = append(tuples, benchRow(sch, int64(2*i)))
		}
	} else {
		if tuples, err = spec.Tuples(); err != nil {
			return nil, nil, err
		}
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		return nil, nil, err
	}
	return srv, sch, nil
}

func benchRow(sch *schema.Schema, id int64) schema.Tuple {
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for i := 1; i < len(vals); i++ {
		vals[i] = schema.Str("bench-json-payload-row")
	}
	return schema.Tuple{Values: vals}
}

// measureIngest times batch ingest of insertTotal fresh tuples spread
// across the key space (so every shard takes a share).
func measureIngest(key *sig.PrivateKey, rows, pageSize, shards, batch, insertTotal int) (IngestPoint, error) {
	srv, sch, err := benchServer(key, rows, pageSize, shards, true)
	if err != nil {
		return IngestPoint{}, err
	}
	defer srv.Close()
	signsBefore := srv.Stats().SignOps

	// The table holds even keys 0..2(rows-1); fresh odd keys interleave
	// everywhere. Stride each batch across the whole span so every
	// batch exercises every shard (the parallel write path).
	nBatches := insertTotal / batch
	if nBatches == 0 {
		nBatches = 1
	}
	var batches [][]schema.Tuple
	for j := 0; j < nBatches; j++ {
		var b []schema.Tuple
		for i := 0; i < batch; i++ {
			k := i*nBatches + j
			b = append(b, benchRow(sch, int64(2*(k%rows)+1)))
		}
		batches = append(batches, b)
	}
	start := time.Now()
	applied := 0
	for _, b := range batches {
		opErrs, err := srv.ApplyBatch(sch.Table, b)
		if err != nil {
			return IngestPoint{}, err
		}
		for _, e := range opErrs {
			if e == nil {
				applied++
			}
		}
	}
	elapsed := time.Since(start)
	return IngestPoint{
		Shards:       shards,
		Batch:        batch,
		Tuples:       applied,
		Seconds:      elapsed.Seconds(),
		TuplesPerSec: float64(applied) / elapsed.Seconds(),
		SignOps:      srv.Stats().SignOps - signsBefore,
	}, nil
}

// measureQueries runs verified range queries against a single-shard
// server and reports latency percentiles and VO sizes.
func measureQueries(key *sig.PrivateKey, rows, pageSize int) (QueryPoint, error) {
	srv, sch, err := benchServer(key, rows, pageSize, 1, false)
	if err != nil {
		return QueryPoint{}, err
	}
	defer srv.Close()

	const samples = 100
	const span = 20
	lat := make([]float64, 0, samples)
	var voBytes, rsBytes int
	ctx := context.Background()
	for i := 0; i < samples; i++ {
		lo := schema.Int64(int64((i * 37) % (rows - span)))
		hi := schema.Int64(lo.I + span - 1)
		start := time.Now()
		resp, err := srv.RunQuery(ctx, sch.Table, vbtree.Query{Lo: &lo, Hi: &hi})
		if err != nil {
			return QueryPoint{}, err
		}
		lat = append(lat, float64(time.Since(start).Microseconds()))
		voBytes += resp.VO.WireSize()
		rsBytes += resp.Result.WireSize()
	}
	sort.Float64s(lat)
	return QueryPoint{
		Samples:        samples,
		RangeRows:      span,
		P50Micros:      lat[len(lat)/2],
		P99Micros:      lat[len(lat)*99/100],
		VOBytesAvg:     float64(voBytes) / samples,
		ResultBytesAvg: float64(rsBytes) / samples,
	}, nil
}

// measureSignPath runs the ingest workload and a client-verification
// workload under one signature scheme. The key carries its scheme, so
// the whole stack (tree commitment mode, VO shape, verifier algorithm)
// follows from it. The ingest sample is the full odd-key space — under
// the Merkle schemes a half-size sample finishes in milliseconds, too
// little signal for the speedup ratio benchdiff gates on — and the
// measurement is best-of-3: benchdiff gates the Merkle-over-rsa speedup
// ratio, and on shared runners the minimum-interference estimate is the
// stable one.
func measureSignPath(key *sig.PrivateKey, rows, pageSize, batch int) (SignPathPoint, error) {
	var ingest IngestPoint
	for rep := 0; rep < 3; rep++ {
		pt, err := measureIngest(key, rows, pageSize, 1, batch, rows)
		if err != nil {
			return SignPathPoint{}, err
		}
		if pt.TuplesPerSec > ingest.TuplesPerSec {
			ingest = pt
		}
	}

	srv, sch, err := benchServer(key, rows, pageSize, 1, false)
	if err != nil {
		return SignPathPoint{}, err
	}
	defer srv.Close()
	acc := digest.MustNew(digest.DefaultParams())
	// Pass 0 verifies with the cache disabled — the scheme's intrinsic
	// per-query cost (every signature checked every time). Passes 1-2
	// use the default cache; pass 2 is the all-warm measurement.
	noCache := &verify.Verifier{Key: key.Public(), Acc: acc, Schema: sch, CacheSize: -1}
	cached := &verify.Verifier{Key: key.Public(), Acc: acc, Schema: sch}

	const samples = 60
	const span = 20
	ctx := context.Background()
	var cold, warm, all []float64
	for pass := 0; pass < 3; pass++ {
		ver := cached
		if pass == 0 {
			ver = noCache
		}
		for i := 0; i < samples; i++ {
			lo := schema.Int64(int64((i * 37) % (rows - span)))
			hi := schema.Int64(lo.I + span - 1)
			resp, err := srv.RunQuery(ctx, sch.Table, vbtree.Query{Lo: &lo, Hi: &hi})
			if err != nil {
				return SignPathPoint{}, err
			}
			start := time.Now()
			if err := ver.Verify(resp.Result, resp.VO); err != nil {
				return SignPathPoint{}, fmt.Errorf("query [%v,%v] failed verification: %w", lo, hi, err)
			}
			us := float64(time.Since(start).Microseconds())
			all = append(all, us)
			switch pass {
			case 0:
				cold = append(cold, us)
			case 2:
				warm = append(warm, us)
			}
		}
	}
	sort.Float64s(cold)
	sort.Float64s(warm)
	sort.Float64s(all)
	cs := cached.CacheStats()
	hitRate := 0.0
	if cs.Hits+cs.Misses > 0 {
		hitRate = float64(cs.Hits) / float64(cs.Hits+cs.Misses)
	}
	return SignPathPoint{
		Scheme:              key.Scheme().String(),
		Batch:               ingest.Batch,
		Tuples:              ingest.Tuples,
		IngestSeconds:       ingest.Seconds,
		TuplesPerSec:        ingest.TuplesPerSec,
		SignOps:             ingest.SignOps,
		VerifyColdP50Micros: cold[len(cold)/2],
		VerifyWarmP50Micros: warm[len(warm)/2],
		VerifyP99Micros:     all[len(all)*99/100],
		CacheHitRate:        hitRate,
	}, nil
}

// measureReshard runs one hot-shard split + merge round: skew-load
// shard 0 of a 2-shard table to twice its sibling's size, sample hot
// range latency and VO size, split the hot shard, re-sample, then merge
// the children back. The stats deltas around each transition pin the
// minimal re-signing contract benchdiff gates on.
func measureReshard(key *sig.PrivateKey, rows, pageSize int) (ReshardPoint, error) {
	srv, sch, err := benchServer(key, rows, pageSize, 2, true)
	if err != nil {
		return ReshardPoint{}, err
	}
	defer srv.Close()
	ctx := context.Background()

	// Skew the load: the table holds even keys, shard 0 the lower half.
	// Ingest every odd key of that lower range so shard 0 ends up with
	// twice the tuples of shard 1 — the hot shard the split relieves.
	const batch = 256
	applied := 0
	var pending []schema.Tuple
	flush := func() error {
		if len(pending) == 0 {
			return nil
		}
		opErrs, err := srv.ApplyBatch(sch.Table, pending)
		if err != nil {
			return err
		}
		for _, e := range opErrs {
			if e == nil {
				applied++
			}
		}
		pending = pending[:0]
		return nil
	}
	for id := int64(1); id < int64(rows); id += 2 {
		pending = append(pending, benchRow(sch, id))
		if len(pending) == batch {
			if err := flush(); err != nil {
				return ReshardPoint{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return ReshardPoint{}, err
	}

	p99Before, voBefore, err := hotRangeP99(ctx, srv, sch.Table, rows)
	if err != nil {
		return ReshardPoint{}, fmt.Errorf("pre-split sampling: %w", err)
	}

	s0 := srv.Stats()
	splitStart := time.Now()
	if _, err := srv.SplitShard(ctx, sch.Table, 0, nil); err != nil {
		return ReshardPoint{}, fmt.Errorf("split: %w", err)
	}
	splitStall := time.Since(splitStart)
	s1 := srv.Stats()

	p99After, voAfter, err := hotRangeP99(ctx, srv, sch.Table, rows)
	if err != nil {
		return ReshardPoint{}, fmt.Errorf("post-split sampling: %w", err)
	}

	mergeStart := time.Now()
	if _, err := srv.MergeShards(ctx, sch.Table, 0); err != nil {
		return ReshardPoint{}, fmt.Errorf("merge: %w", err)
	}
	mergeStall := time.Since(mergeStart)
	s2 := srv.Stats()

	return ReshardPoint{
		ShardsBefore:       2,
		HotRows:            rows/2 + applied,
		HotP99BeforeMicros: p99Before,
		HotP99AfterMicros:  p99After,
		SplitStallMicros:   float64(splitStall.Microseconds()),
		MergeStallMicros:   float64(mergeStall.Microseconds()),
		ResignsPerSplit:    s1.ReshardResigns - s0.ReshardResigns,
		ResignsPerMerge:    s2.ReshardResigns - s1.ReshardResigns,
		SplitSignOps:       s1.SignOps - s0.SignOps,
		MergeSignOps:       s2.SignOps - s1.SignOps,
		PagesMovedPerSplit: s1.ReshardPagesMoved - s0.ReshardPagesMoved,
		HotVOBytesBefore:   voBefore,
		HotVOBytesAfter:    voAfter,
	}, nil
}

// hotRangeP99 samples verified range queries across the hot key region
// [0, hotSpan) and returns the p99 latency and average VO size.
// measureBarrierStall builds a fresh single-shard table of rows tuples
// and median-splits it, reporting the in-lock barrier stall in
// microseconds (the ReshardBarrierStallMs stat delta — wall time inside
// the partition write lock, excluding the unlocked streaming build).
// Min of 3 fresh rounds; each round needs its own server because a
// split consumes its parent.
func measureBarrierStall(key *sig.PrivateKey, pageSize, rows int) (float64, error) {
	ctx := context.Background()
	best := 0.0
	for round := 0; round < 3; round++ {
		srv, sch, err := benchServer(key, rows, pageSize, 1, false)
		if err != nil {
			return 0, err
		}
		s0 := srv.Stats()
		_, err = srv.SplitShard(ctx, sch.Table, 0, nil)
		s1 := srv.Stats()
		srv.Close()
		if err != nil {
			return 0, err
		}
		stall := (s1.ReshardBarrierStallMs - s0.ReshardBarrierStallMs) * 1000
		if round == 0 || stall < best {
			best = stall
		}
	}
	return best, nil
}

func hotRangeP99(ctx context.Context, srv *central.Server, table string, hotSpan int) (p99, voAvg float64, err error) {
	const samples = 100
	const span = 20
	lat := make([]float64, 0, samples)
	voBytes := 0
	for i := 0; i < samples; i++ {
		lo := schema.Int64(int64((i * 37) % (hotSpan - span)))
		hi := schema.Int64(lo.I + span - 1)
		start := time.Now()
		resp, err := srv.RunQuery(ctx, table, vbtree.Query{Lo: &lo, Hi: &hi})
		if err != nil {
			return 0, 0, err
		}
		lat = append(lat, float64(time.Since(start).Microseconds()))
		voBytes += resp.VO.WireSize()
	}
	sort.Float64s(lat)
	return lat[len(lat)*99/100], float64(voBytes) / samples, nil
}
