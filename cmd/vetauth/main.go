// Command vetauth checks this module's domain invariants: signature
// verification before trust (trustflow), snapshot pin/release pairing
// (pinpair), no RSA signing under shard locks and no commit-lock order
// inversions (locksign), and context plumbing discipline (ctxflow).
//
// Run it through the vet driver so test files and build-tag variants
// are covered:
//
//	go build -o bin/vetauth ./cmd/vetauth
//	go vet -vettool=$PWD/bin/vetauth ./...
//
// or standalone over package patterns (library sources only):
//
//	go run ./cmd/vetauth ./...
//
// Findings exit nonzero. Intentional exceptions are annotated in the
// source with //vetauth:ignore <analyzer> <reason>.
package main

import (
	"edgeauth/internal/analysis/ctxflow"
	"edgeauth/internal/analysis/driver"
	"edgeauth/internal/analysis/locksign"
	"edgeauth/internal/analysis/pinpair"
	"edgeauth/internal/analysis/trustflow"
)

func main() {
	driver.Main(
		trustflow.Analyzer,
		pinpair.Analyzer,
		locksign.Analyzer,
		ctxflow.Analyzer,
	)
}
