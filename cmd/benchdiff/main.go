// Command benchdiff compares two bench -json reports and fails (exit 1)
// on performance regressions beyond a threshold, so the committed
// BENCH_ci.json baseline turns the performance claims into a CI gate.
//
// Metrics are split by portability. Machine-independent metrics are
// enforced against the baseline even across different hardware:
//
//   - signature counts per ingest run (sign_ops): algorithmic — a Merkle
//     commit signs one root per shard regardless of CPU speed;
//   - VO and result bytes per query: deterministic codec output;
//   - within-run speedup ratios (each sign_path scheme's tuples/sec over
//     the rsa baseline of the SAME report): both sides of the ratio ran
//     on the same machine, so the ratio transfers;
//   - reshard re-sign and signature counts per transition: a split must
//     re-sign exactly its two child roots plus the map, a merge one root
//     plus the map — the minimal-resigning contract of online
//     resharding.
//
// Absolute wall-clock metrics (tuples/sec, latency percentiles) only
// gate with -strict, for same-machine comparisons; otherwise they are
// reported informationally.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-strict] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// report mirrors the subset of bench's JSONReport that benchdiff gates
// on (decoded loosely so baseline files from older builds still parse).
type report struct {
	Ingest []struct {
		Shards       int     `json:"shards"`
		TuplesPerSec float64 `json:"tuples_per_sec"`
		SignOps      uint64  `json:"sign_ops"`
		Tuples       int     `json:"tuples"`
	} `json:"ingest"`
	Query struct {
		P50Micros      float64 `json:"p50_us"`
		P99Micros      float64 `json:"p99_us"`
		VOBytesAvg     float64 `json:"vo_bytes_avg"`
		ResultBytesAvg float64 `json:"result_bytes_avg"`
	} `json:"query"`
	SignPath []struct {
		Scheme       string  `json:"scheme"`
		TuplesPerSec float64 `json:"tuples_per_sec"`
		SignOps      uint64  `json:"sign_ops"`
		WarmP50      float64 `json:"verify_warm_p50_us"`
	} `json:"sign_path"`
	Reshard struct {
		HotP99Before     float64 `json:"hot_p99_before_us"`
		HotP99After      float64 `json:"hot_p99_after_us"`
		SplitStall       float64 `json:"split_stall_us"`
		MergeStall       float64 `json:"merge_stall_us"`
		ResignsPerSplit  float64 `json:"resigns_per_split"`
		ResignsPerMerge  float64 `json:"resigns_per_merge"`
		SplitSignOps     float64 `json:"split_sign_ops"`
		MergeSignOps     float64 `json:"merge_sign_ops"`
		HotVOBytesBefore float64 `json:"hot_vo_bytes_before"`
		HotVOBytesAfter  float64 `json:"hot_vo_bytes_after"`
		StallSmall       float64 `json:"barrier_stall_small_us"`
		StallLarge       float64 `json:"barrier_stall_large_us"`
		StallRatio       float64 `json:"barrier_stall_ratio"`
	} `json:"reshard"`
}

func load(path string) (*report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

type differ struct {
	threshold float64
	strict    bool
	failures  int
}

// check compares one metric. higherBetter says which direction is a
// regression; enforced metrics count toward the exit status, the rest
// are informational.
func (d *differ) check(name string, old, new float64, higherBetter, enforced bool) {
	if old == 0 {
		return
	}
	change := (new - old) / old
	regressed := false
	switch {
	case higherBetter && change < -d.threshold:
		regressed = true
	case !higherBetter && change > d.threshold:
		regressed = true
	}
	tag := "ok"
	if regressed {
		if enforced || d.strict {
			tag = "FAIL"
			d.failures++
		} else {
			tag = "warn (not gated)"
		}
	}
	fmt.Printf("%-44s %14.2f -> %14.2f  %+7.1f%%  %s\n", name, old, new, change*100, tag)
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "relative regression tolerance")
	strict := flag.Bool("strict", false, "also gate machine-dependent metrics (same-machine runs)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.20] [-strict] OLD.json NEW.json")
		os.Exit(2)
	}
	oldR, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newR, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	d := &differ{threshold: *threshold, strict: *strict}

	// Ingest: signature counts are algorithmic, throughput is hardware.
	for _, o := range oldR.Ingest {
		for _, n := range newR.Ingest {
			if n.Shards != o.Shards {
				continue
			}
			id := fmt.Sprintf("ingest[shards=%d]", o.Shards)
			// Normalize sign ops per applied tuple in case row counts differ.
			if o.Tuples > 0 && n.Tuples > 0 {
				d.check(id+".sign_ops_per_tuple",
					float64(o.SignOps)/float64(o.Tuples),
					float64(n.SignOps)/float64(n.Tuples), false, true)
			}
			d.check(id+".tuples_per_sec", o.TuplesPerSec, n.TuplesPerSec, true, false)
		}
	}

	// Query: byte sizes are deterministic, latencies are hardware.
	d.check("query.vo_bytes_avg", oldR.Query.VOBytesAvg, newR.Query.VOBytesAvg, false, true)
	d.check("query.result_bytes_avg", oldR.Query.ResultBytesAvg, newR.Query.ResultBytesAvg, false, true)
	d.check("query.p50_us", oldR.Query.P50Micros, newR.Query.P50Micros, false, false)
	d.check("query.p99_us", oldR.Query.P99Micros, newR.Query.P99Micros, false, false)

	// Sign path: gate each scheme's speedup-over-rsa ratio (transfers
	// across machines) and its signature count; absolute numbers are
	// informational.
	oldBase, newBase := signPathBase(oldR), signPathBase(newR)
	for _, o := range oldR.SignPath {
		for _, n := range newR.SignPath {
			if n.Scheme != o.Scheme {
				continue
			}
			id := "sign_path[" + o.Scheme + "]"
			d.check(id+".sign_ops", float64(o.SignOps), float64(n.SignOps), false, true)
			if o.Scheme != "rsa" && oldBase > 0 && newBase > 0 {
				d.check(id+".ingest_speedup_vs_rsa",
					o.TuplesPerSec/oldBase, n.TuplesPerSec/newBase, true, true)
			}
			d.check(id+".tuples_per_sec", o.TuplesPerSec, n.TuplesPerSec, true, false)
			d.check(id+".verify_warm_p50_us", o.WarmP50, n.WarmP50, false, false)
		}
	}

	// Reshard: re-sign and signature counts per transition are the
	// minimal-resigning contract (algorithmic — a split touches its two
	// child roots plus the map, a merge one root plus the map), and VO
	// bytes on the hot range are deterministic codec output. Latency and
	// transition stall are hardware.
	or, nr := oldR.Reshard, newR.Reshard
	d.check("reshard.resigns_per_split", or.ResignsPerSplit, nr.ResignsPerSplit, false, true)
	d.check("reshard.resigns_per_merge", or.ResignsPerMerge, nr.ResignsPerMerge, false, true)
	d.check("reshard.split_sign_ops", or.SplitSignOps, nr.SplitSignOps, false, true)
	d.check("reshard.merge_sign_ops", or.MergeSignOps, nr.MergeSignOps, false, true)
	d.check("reshard.hot_vo_bytes_before", or.HotVOBytesBefore, nr.HotVOBytesBefore, false, true)
	d.check("reshard.hot_vo_bytes_after", or.HotVOBytesAfter, nr.HotVOBytesAfter, false, true)
	d.check("reshard.hot_p99_before_us", or.HotP99Before, nr.HotP99Before, false, false)
	d.check("reshard.hot_p99_after_us", or.HotP99After, nr.HotP99After, false, false)
	d.check("reshard.split_stall_us", or.SplitStall, nr.SplitStall, false, false)
	d.check("reshard.merge_stall_us", or.MergeStall, nr.MergeStall, false, false)
	// The barrier stall ratio is the incremental-transition contract:
	// child builds run outside the partition lock, so the in-lock stall
	// of a 64x-larger shard's split must stay a small constant multiple
	// of the small shard's — never track the 64x size gap. The absolute
	// stalls are hardware and stay informational; the ratio is
	// machine-independent and gated.
	d.check("reshard.barrier_stall_ratio", or.StallRatio, nr.StallRatio, false, true)
	d.check("reshard.barrier_stall_small_us", or.StallSmall, nr.StallSmall, false, false)
	d.check("reshard.barrier_stall_large_us", or.StallLarge, nr.StallLarge, false, false)

	if d.failures > 0 {
		fmt.Printf("\nbenchdiff: %d metric(s) regressed beyond %.0f%%\n", d.failures, *threshold*100)
		os.Exit(1)
	}
	fmt.Println("\nbenchdiff: no gated regressions")
}

func signPathBase(r *report) float64 {
	for _, p := range r.SignPath {
		if p.Scheme == "rsa" {
			return p.TuplesPerSec
		}
	}
	return 0
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
