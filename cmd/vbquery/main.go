// Command vbquery is the verifying SQL client: it parses a small SQL
// subset, sends SELECTs to an edge server, verifies every result against
// the central server's public key, and routes INSERT/DELETE to the central
// server. A verification failure is reported loudly — it means the edge
// server returned tampered data.
//
// Usage:
//
//	vbquery -edge 127.0.0.1:7002 -central 127.0.0.1:7001 "SELECT id, cat FROM items WHERE id >= 10 AND id <= 20"
//	vbquery -edge … -central …             # REPL on stdin
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"edgeauth/internal/client"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sqlmini"
)

func main() {
	var (
		edgeAddr    = flag.String("edge", "127.0.0.1:7002", "edge server address")
		centralAddr = flag.String("central", "127.0.0.1:7001", "central server address")
	)
	flag.Parse()

	ctx := context.Background()
	cl, err := client.Dial(ctx, client.Config{EdgeAddr: *edgeAddr, CentralAddr: *centralAddr})
	if err != nil {
		log.Fatalf("vbquery: %v", err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		log.Fatalf("vbquery: fetching trusted key: %v", err)
	}

	if flag.NArg() > 0 {
		if err := runStatement(ctx, cl, strings.Join(flag.Args(), " ")); err != nil {
			log.Fatalf("vbquery: %v", err)
		}
		return
	}

	fmt.Println("vbquery — authenticated SQL. End statements with Enter; Ctrl-D exits.")
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("vb> ")
		if !scanner.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit") {
			return
		}
		if err := runStatement(ctx, cl, line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
	}
}

func runStatement(ctx context.Context, cl *client.Client, sql string) error {
	st, err := sqlmini.Parse(sql)
	if err != nil {
		return err
	}
	switch s := st.(type) {
	case *sqlmini.SelectStmt:
		return runSelect(ctx, cl, s)
	case *sqlmini.InsertStmt:
		sch, err := cl.Schema(ctx, s.Table)
		if err != nil {
			return err
		}
		tuples := make([]schema.Tuple, len(s.Rows))
		for i, row := range s.Rows {
			tup, err := sqlmini.BindValues(sch, row)
			if err != nil {
				return fmt.Errorf("row %d: %w", i+1, err)
			}
			tuples[i] = tup
		}
		if len(tuples) == 1 {
			if err := cl.Insert(ctx, s.Table, tuples[0]); err != nil {
				return err
			}
			fmt.Println("INSERT ok (applied at central server; edges see it after refresh)")
			return nil
		}
		// Multi-row VALUES lists ride the batched write path: one frame,
		// one group commit, per-row results.
		opErrs, err := cl.InsertBatch(ctx, s.Table, tuples)
		if err != nil {
			return err
		}
		ok := 0
		for i, e := range opErrs {
			if e == nil {
				ok++
				continue
			}
			fmt.Fprintf(os.Stderr, "row %d failed: %v\n", i+1, e)
		}
		if ok == 0 {
			return fmt.Errorf("INSERT failed: 0/%d rows accepted", len(tuples))
		}
		fmt.Printf("INSERT ok: %d/%d rows group-committed at central server (edges see them after refresh)\n", ok, len(tuples))
		return nil
	case *sqlmini.DeleteStmt:
		sch, err := cl.Schema(ctx, s.Table)
		if err != nil {
			return err
		}
		preds, err := sqlmini.BindPredicates(sch, s.Where)
		if err != nil {
			return err
		}
		lo, hi, err := keyRangeOnly(sch, preds)
		if err != nil {
			return err
		}
		n, err := cl.DeleteRange(ctx, s.Table, lo, hi)
		if err != nil {
			return err
		}
		fmt.Printf("DELETE ok: %d tuples removed at central server\n", n)
		return nil
	default:
		return fmt.Errorf("unsupported statement %T", st)
	}
}

// keyRangeOnly converts DELETE predicates to a key range; the demo wire
// protocol supports key-range deletes (as in the paper's §3.4).
func keyRangeOnly(sch *schema.Schema, preds []query.Predicate) (lo, hi *schema.Datum, err error) {
	keyName := sch.KeyColumn().Name
	for _, p := range preds {
		if p.Column != keyName {
			return nil, nil, fmt.Errorf("DELETE supports key-column predicates only (key is %q)", keyName)
		}
		v := p.Value
		switch p.Op.String() {
		case "=":
			lo, hi = &v, &v
		case ">=":
			lo = &v
		case "<=":
			hi = &v
		default:
			return nil, nil, errors.New("DELETE supports =, >= and <= on the key")
		}
	}
	return lo, hi, nil
}

func runSelect(ctx context.Context, cl *client.Client, s *sqlmini.SelectStmt) error {
	sch, err := cl.Schema(ctx, s.Table)
	if err != nil {
		return err
	}
	preds, err := sqlmini.BindPredicates(sch, s.Where)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := cl.Query(ctx, s.Table, preds, s.Columns)
	if err != nil {
		if errors.Is(err, client.ErrTampered) {
			return fmt.Errorf("!! VERIFICATION FAILED — the edge server returned tampered data: %w", err)
		}
		return err
	}
	elapsed := time.Since(start)

	fmt.Println(strings.Join(res.Result.Columns, " | "))
	for _, tp := range res.Result.Tuples {
		cells := make([]string, len(tp.Values))
		for i, v := range tp.Values {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	shards := ""
	if res.ShardsQueried > 1 {
		shards = fmt.Sprintf(" across %d shards", res.ShardsQueried)
	}
	fmt.Printf("-- %d rows VERIFIED in %v (result %d B + VO %d B, %d signed digests%s)\n",
		len(res.Result.Tuples), elapsed.Round(time.Microsecond),
		res.ResultBytes, res.VOBytes, res.NumDigests(), shards)
	return nil
}
