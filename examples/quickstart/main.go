// Quickstart: the complete authenticated-query pipeline in one process.
//
// It stands up the paper's Figure-2 architecture on loopback TCP — a
// trusted central server with a VB-tree, an untrusted edge server holding
// a replica, and a verifying client — then runs a range query, a
// projection, and finally shows the client detecting a tampered edge.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"

	"edgeauth"

	"edgeauth/internal/central"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

func main() {
	ctx := context.Background()
	// 1. Central server: owns the signing key, builds the VB-tree.
	srv, err := edgeauth.NewCentral(central.Options{KeyBits: 512})
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(2000)
	sch, err := spec.Schema()
	if err != nil {
		log.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		log.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(centralLn)
	fmt.Printf("central server: table %q, %d tuples, VB-tree signed\n", sch.Table, len(tuples))

	// 2. Edge server: replicates "DB + VB-trees" and answers queries.
	eg := edgeauth.NewEdge(centralLn.Addr().String())
	if err := eg.PullAll(ctx); err != nil {
		log.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go eg.Serve(edgeLn)
	fmt.Printf("edge server: replicated %v\n", eg.Tables())

	// 3. Client: dials the edge, fetches the trusted public key,
	// queries, verifies. Every method is context-aware, and one client
	// can be shared by any number of goroutines — requests pipeline over
	// a single multiplexed connection.
	cl, err := edgeauth.Dial(ctx, edgeauth.Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		log.Fatal(err)
	}

	res, err := cl.Query(ctx, "items", []edgeauth.Predicate{
		{Column: "id", Op: edgeauth.OpGE, Value: edgeauth.Int64(100)},
		{Column: "id", Op: edgeauth.OpLE, Value: edgeauth.Int64(109)},
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange query [100,109]: %d tuples VERIFIED (VO: %d digests, %d bytes)\n",
		len(res.Result.Tuples), res.VO.NumDigests(), res.VOBytes)
	for _, t := range res.Result.Tuples[:3] {
		fmt.Printf("  %v\n", t)
	}
	fmt.Println("  …")

	// Projection: filtered attributes travel as signed digests (D_P).
	res, err = cl.Query(ctx, "items", []edgeauth.Predicate{
		{Column: "cat", Op: edgeauth.OpEQ, Value: edgeauth.Str(workload.CategoryName(5))},
	}, []string{"id", "cat"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprojection+filter (cat=%s): %d tuples VERIFIED, %d filtered-attribute digests in D_P\n",
		workload.CategoryName(5), len(res.Result.Tuples), len(res.VO.DP))

	// 4. Compromise the edge and watch the client catch it.
	eg.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
		if len(rs.Tuples) > 0 {
			rs.Tuples[0].Values[1] = edgeauth.Str("forged-category")
		}
		return nil
	})
	_, err = cl.Query(ctx, "items", []edgeauth.Predicate{
		{Column: "id", Op: edgeauth.OpLE, Value: edgeauth.Int64(50)},
	}, nil)
	if errors.Is(err, edgeauth.ErrTampered) {
		fmt.Printf("\ncompromised edge DETECTED: %v\n", err)
	} else {
		log.Fatalf("tampering went undetected: %v", err)
	}
}
