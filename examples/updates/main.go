// Updates: insert and delete transactions at the central server with the
// paper's §3.4 machinery — write-ahead logging, incremental digest
// maintenance for inserts, digest recomputation for deletes, and
// key-version rotation for delayed propagation to edges. After each batch
// the edge refreshes its replica and clients keep getting verifiable
// answers.
//
//	go run ./examples/updates
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"os"

	"edgeauth"

	"edgeauth/internal/central"
	"edgeauth/internal/workload"
)

func main() {
	ctx := context.Background()
	walDir, err := os.MkdirTemp("", "edgeauth-wal-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(walDir)

	srv, err := edgeauth.NewCentral(central.Options{KeyBits: 512, WALDir: walDir})
	if err != nil {
		log.Fatal(err)
	}
	srv.SetKeyValidity(1, 0, 0) // key version 1, unbounded validity
	spec := workload.DefaultSpec(1000)
	sch, err := spec.Schema()
	if err != nil {
		log.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		log.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(centralLn)
	fmt.Printf("central: %d tuples, WAL at %s\n", len(tuples), walDir)

	eg := edgeauth.NewEdge(centralLn.Addr().String())
	if err := eg.PullAll(ctx); err != nil {
		log.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go eg.Serve(edgeLn)

	cl, err := edgeauth.Dial(ctx, edgeauth.Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		log.Fatal(err)
	}

	count := func(label string) {
		res, err := cl.Query(ctx, "items", []edgeauth.Predicate{
			{Column: "id", Op: edgeauth.OpGE, Value: edgeauth.Int64(0)},
		}, []string{"id"})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %d verified tuples at the edge\n", label, len(res.Result.Tuples))
	}
	count("initial")

	// Insert a batch through the client → central server. Each insert
	// multiplies the new tuple digest into the node digests on its path
	// (formula of §3.4) and is WAL-logged first.
	for i := 0; i < 25; i++ {
		vals := make([]edgeauth.Datum, len(sch.Columns))
		vals[0] = edgeauth.Int64(int64(10_000 + i))
		for c := 1; c < len(sch.Columns); c++ {
			vals[c] = edgeauth.Str(fmt.Sprintf("new-attribute-%02d-%02d", c, i))
		}
		if err := cl.Insert(ctx, "items", edgeauth.Tuple{Values: vals}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("inserted 25 tuples at central (WAL-logged, digests patched incrementally)")
	count("before refresh (edge still stale)")

	if err := eg.Pull(ctx, "items"); err != nil {
		log.Fatal(err)
	}
	cl.InvalidateSchema("items")
	count("after refresh")

	// Range delete: X-locks the paths, removes tuples, recomputes digests
	// up to the root.
	lo, hi := edgeauth.Int64(100), edgeauth.Int64(299)
	n, err := cl.DeleteRange(ctx, "items", &lo, &hi)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted %d tuples at central (paths recomputed)\n", n)
	if err := eg.Pull(ctx, "items"); err != nil {
		log.Fatal(err)
	}
	count("after delete + refresh")

	// Rotate the signing key version for the next propagation epoch: old
	// VOs stamped with version 1 remain valid only within its window.
	srv.SetKeyValidity(2, 0, 0)
	fmt.Println("central rotated to key version 2 for the next propagation epoch")
	fmt.Println("done: every read along the way was client-verified")
}
