// Edge network: one central server, three edge servers (one of them
// compromised), and a client that fails over between edges — the CDN-like
// deployment the paper motivates. The client detects the tampered edge by
// verification failure and retries the same query at an honest edge, so
// applications get authenticated answers despite compromised
// infrastructure.
//
//	go run ./examples/edgenetwork
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"

	"edgeauth"

	"edgeauth/internal/central"
	"edgeauth/internal/tamper"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

func main() {
	ctx := context.Background()
	// Central server.
	srv, err := edgeauth.NewCentral(central.Options{KeyBits: 512})
	if err != nil {
		log.Fatal(err)
	}
	spec := workload.DefaultSpec(3000)
	sch, err := spec.Schema()
	if err != nil {
		log.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		log.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(centralLn)
	fmt.Printf("central: serving %v at %s\n", srv.Tables(), centralLn.Addr())

	// Three edges near three "user clusters"; edge-1 is hacked.
	edgeAddrs := make([]string, 3)
	for i := 0; i < 3; i++ {
		eg := edgeauth.NewEdge(centralLn.Addr().String())
		if err := eg.PullAll(ctx); err != nil {
			log.Fatal(err)
		}
		if i == 1 {
			attack := tamper.MutateValue()
			eg.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
				_ = attack.Apply(rs, w) // inapplicable on empty results; fine
				return nil
			})
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go eg.Serve(ln)
		edgeAddrs[i] = ln.Addr().String()
		status := "honest"
		if i == 1 {
			status = "COMPROMISED (mutate-value)"
		}
		fmt.Printf("edge-%d: %s — %s\n", i, ln.Addr(), status)
	}

	// The client tries edges in order and fails over on verification
	// failure.
	preds := []edgeauth.Predicate{
		{Column: "id", Op: edgeauth.OpGE, Value: edgeauth.Int64(500)},
		{Column: "id", Op: edgeauth.OpLE, Value: edgeauth.Int64(549)},
	}
	fmt.Println("\nquery: SELECT * FROM items WHERE id BETWEEN 500 AND 549")
	for _, order := range [][]int{{1, 0, 2}, {0, 1, 2}} {
		fmt.Printf("\nclient prefers edges in order %v:\n", order)
		var res *edgeauth.VerifiedResult
		for _, i := range order {
			cl, err := edgeauth.Dial(ctx, edgeauth.Config{
				EdgeAddr:    edgeAddrs[i],
				CentralAddr: centralLn.Addr().String(),
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := cl.FetchTrustedKey(ctx); err != nil {
				log.Fatal(err)
			}
			r, err := cl.Query(ctx, "items", preds, nil)
			cl.Close()
			if errors.Is(err, edgeauth.ErrTampered) {
				fmt.Printf("  edge-%d: VERIFICATION FAILED — compromised, failing over\n", i)
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  edge-%d: %d tuples verified (VO %d bytes) — accepted\n",
				i, len(r.Result.Tuples), r.VOBytes)
			res = r
			break
		}
		if res == nil {
			log.Fatal("no edge produced a verifiable answer")
		}
	}
	fmt.Println("\nauthenticated answers obtained despite a compromised edge in the fleet")
}
