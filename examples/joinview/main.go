// Join view: authenticating join results through materialized views
// (paper §3.3, Join). The central server materializes users ⋈ orders,
// builds a VB-tree over the view, and edge servers answer join queries
// exactly like single-table ones — selection, projection and verification
// all included. A tampered join row is detected the same way.
//
//	go run ./examples/joinview
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"

	"edgeauth"

	"edgeauth/internal/central"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

func main() {
	ctx := context.Background()
	srv, err := edgeauth.NewCentral(central.Options{KeyBits: 512})
	if err != nil {
		log.Fatal(err)
	}
	// Base tables: users and orders (orders.user_id → users.id).
	j := workload.DefaultJoinSpec(100, 1000)
	usch, err := j.Users.Schema()
	if err != nil {
		log.Fatal(err)
	}
	utuples, err := j.Users.Tuples()
	if err != nil {
		log.Fatal(err)
	}
	if err := srv.AddTable(usch, utuples); err != nil {
		log.Fatal(err)
	}
	if err := srv.AddTable(j.OrdersSchema(), j.OrderTuples()); err != nil {
		log.Fatal(err)
	}
	// Materialize the join and build its VB-tree.
	if err := srv.MaterializeJoin("user_orders", "orders", "users", "user_id", "id"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("central: tables %v (user_orders is the authenticated join view)\n", srv.Tables())

	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(centralLn)

	eg := edgeauth.NewEdge(centralLn.Addr().String())
	if err := eg.PullAll(ctx); err != nil {
		log.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go eg.Serve(edgeLn)

	cl, err := edgeauth.Dial(ctx, edgeauth.Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		log.Fatal(err)
	}

	// "All orders of user 42, with the user's attributes" — a join query,
	// answered from the view with selection + projection at the edge.
	res, err := cl.Query(ctx, "user_orders", []edgeauth.Predicate{
		{Column: "user_id", Op: edgeauth.OpEQ, Value: edgeauth.Int64(42)},
	}, []string{"oid", "total", "users_id", "users_cat"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\njoin query (user_id = 42): %d rows VERIFIED\n", len(res.Result.Tuples))
	for i, t := range res.Result.Tuples {
		if i == 5 {
			fmt.Println("  …")
			break
		}
		fmt.Printf("  %v\n", t)
	}
	fmt.Printf("VO: %d signed digests, %d bytes (gaps from the non-key selection are covered by D_S)\n",
		res.VO.NumDigests(), res.VOBytes)

	// A hacked edge inflating an order total is caught on the view too.
	eg.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
		if len(rs.Tuples) > 0 {
			rs.Tuples[0].Values[1] = edgeauth.Float64(1e9)
		}
		return nil
	})
	_, err = cl.Query(ctx, "user_orders", []edgeauth.Predicate{
		{Column: "user_id", Op: edgeauth.OpEQ, Value: edgeauth.Int64(7)},
	}, []string{"oid", "total", "users_id", "users_cat"})
	if !errors.Is(err, edgeauth.ErrTampered) {
		log.Fatalf("tampered join row went undetected: %v", err)
	}
	fmt.Printf("\ntampered join result DETECTED: %v\n", err)
}
