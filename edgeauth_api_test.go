package edgeauth_test

import (
	"context"
	"errors"
	"net"
	"testing"

	"edgeauth"

	"edgeauth/internal/central"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

// TestPublicAPIRoundTrip drives the facade exactly as a downstream user
// would: central → edge → client, verified query, tamper detection.
func TestPublicAPIRoundTrip(t *testing.T) {
	srv, err := edgeauth.NewCentral(central.Options{KeyBits: 512, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(300)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(centralLn)
	defer srv.Close()

	ctx := context.Background()
	eg := edgeauth.NewEdge(centralLn.Addr().String())
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(edgeLn)
	defer eg.Close()

	cl, err := edgeauth.Dial(ctx, edgeauth.Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.FetchTrustedKey(ctx); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Query(ctx, "items", []edgeauth.Predicate{
		{Column: "id", Op: edgeauth.OpGE, Value: edgeauth.Int64(10)},
		{Column: "id", Op: edgeauth.OpLE, Value: edgeauth.Int64(29)},
	}, []string{"id", "cat"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 20 {
		t.Fatalf("got %d tuples", len(res.Result.Tuples))
	}

	// Updates through the facade.
	vals := make([]edgeauth.Datum, len(sch.Columns))
	vals[0] = edgeauth.Int64(9999)
	for i := 1; i < len(vals); i++ {
		vals[i] = edgeauth.Str("facade-value-aaaaaaa")
	}
	if err := cl.Insert(ctx, "items", edgeauth.Tuple{Values: vals}); err != nil {
		t.Fatal(err)
	}
	lo := edgeauth.Int64(0)
	hi := edgeauth.Int64(4)
	if n, err := cl.DeleteRange(ctx, "items", &lo, &hi); err != nil || n != 5 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}

	// Tampering surfaces as ErrTampered through the facade alias.
	eg.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
		if len(rs.Tuples) > 0 {
			rs.Tuples[0].Values[0] = edgeauth.Int64(-1)
		}
		return nil
	})
	_, err = cl.Query(ctx, "items", []edgeauth.Predicate{
		{Column: "id", Op: edgeauth.OpLE, Value: edgeauth.Int64(50)},
	}, nil)
	if !errors.Is(err, edgeauth.ErrTampered) {
		t.Fatalf("tampering through facade: %v", err)
	}
}

// TestFacadeHelpers covers the small constructors.
func TestFacadeHelpers(t *testing.T) {
	if _, err := edgeauth.GenerateKey(512); err != nil {
		t.Fatal(err)
	}
	p := edgeauth.DefaultDigestParams()
	if p.Size != 16 || p.Exponent != 15 {
		t.Fatalf("digest defaults: %+v", p)
	}
	d := edgeauth.Float64(2.5)
	if d.Type != edgeauth.TypeFloat64 {
		t.Fatal("facade datum constructor broken")
	}
	if edgeauth.Bytes([]byte{1}).Type != edgeauth.TypeBytes {
		t.Fatal("bytes constructor broken")
	}
	if edgeauth.OpNE.String() != "!=" || edgeauth.OpLT.String() != "<" ||
		edgeauth.OpGT.String() != ">" {
		t.Fatal("operator aliases broken")
	}
}
