// Package rpc is the transport layer shared by every network role of the
// system: the verifying client and the edge server's central-facing side
// use Conn (a context-aware, pipelined request connection), while the
// central and edge servers' listening sides use ServeConn (a concurrent,
// multiplexed dispatch loop). Both ends negotiate the wire protocol
// version with a Hello handshake and interoperate transparently with v1
// peers (see internal/wire/v2.go for the framing).
package rpc

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"edgeauth/internal/wire"
)

// Defaults for Options zero values.
const (
	DefaultDialTimeout    = 5 * time.Second
	DefaultRedialAttempts = 3
	DefaultRedialBackoff  = 25 * time.Millisecond
)

// Options configures a Conn.
type Options struct {
	// DialTimeout bounds each TCP connect attempt. 0 selects
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// RedialAttempts is how many connect attempts are made when
	// (re-)establishing the connection. 0 selects DefaultRedialAttempts.
	RedialAttempts int
	// RedialBackoff is the wait before the second connect attempt; it
	// doubles per attempt. 0 selects DefaultRedialBackoff.
	RedialBackoff time.Duration
	// ForceV1 skips the Hello handshake and speaks protocol v1
	// (one-frame-in/one-frame-out). Used by compatibility tests and the
	// pipelined-vs-serial benchmarks.
	ForceV1 bool
	// Capabilities is the wire.Cap* bit set advertised in this side's
	// Hello (e.g. CapPeerServe for an edge that serves replication
	// traffic to other edges).
	Capabilities uint32
}

func (o Options) dialTimeout() time.Duration {
	if o.DialTimeout <= 0 {
		return DefaultDialTimeout
	}
	return o.DialTimeout
}

func (o Options) redialAttempts() int {
	if o.RedialAttempts <= 0 {
		return DefaultRedialAttempts
	}
	return o.RedialAttempts
}

func (o Options) redialBackoff() time.Duration {
	if o.RedialBackoff <= 0 {
		return DefaultRedialBackoff
	}
	return o.RedialBackoff
}

// frame is one demultiplexed response.
type frame struct {
	mt   wire.MsgType
	body []byte
}

// session is one live connection. Conn replaces its session on redial, so
// in-flight state never leaks across connection generations.
type session struct {
	nc    net.Conn
	proto uint32
	// peerCaps is the capability bit set the server advertised in its
	// HelloResp (0 on v1 sessions and pre-capability peers).
	peerCaps uint32

	// v2 state: the in-flight request table and the per-connection write
	// slot (a 1-slot semaphore rather than a mutex, so a caller queued
	// behind a stalled writer can still observe its own context). The
	// reader goroutine owns the read side exclusively.
	writeSem chan struct{}
	pendMu   sync.Mutex
	pending  map[uint32]chan frame
	nextID   uint32
	dead     error // set once the reader fails; guarded by pendMu

	// v1 state: the whole request/response exchange is serialized.
	callMu sync.Mutex
}

// Conn is a context-aware client connection. N goroutines may call Call
// concurrently: on a v2 session their requests are pipelined over one TCP
// connection and responses are demultiplexed by request ID; against a v1
// server the calls are transparently serialized. The connection is
// established lazily and re-established (with backoff) after it dies, so
// a transient peer outage does not poison the Conn forever.
type Conn struct {
	addr string
	opts Options

	mu     sync.Mutex // guards sess, closed and dialing
	sess   *session
	closed bool
	// dialing is non-nil while one goroutine runs the dial-with-backoff
	// loop (outside mu); it is closed when that attempt settles, so
	// concurrent callers can wait on it or on their own context instead
	// of queueing behind the mutex for the whole dial.
	dialing chan struct{}
}

// New creates a lazily-connecting Conn to addr.
func New(addr string, opts Options) *Conn {
	return &Conn{addr: addr, opts: opts}
}

// Addr reports the remote address.
func (c *Conn) Addr() string { return c.addr }

// Close tears down the connection; subsequent calls fail.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.sess != nil {
		err := c.sess.nc.Close()
		c.sess = nil
		return err
	}
	return nil
}

// Connect eagerly establishes (and handshakes) the connection.
func (c *Conn) Connect(ctx context.Context) error {
	_, err := c.ensureSession(ctx)
	return err
}

// Proto reports the negotiated protocol version (0 before the first
// successful connect).
func (c *Conn) Proto() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess == nil {
		return 0
	}
	return c.sess.proto
}

// PeerCaps reports the capability bits the remote side advertised in its
// HelloResp (0 before the first successful connect, on v1 sessions, and
// against pre-capability peers).
func (c *Conn) PeerCaps() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sess == nil {
		return 0
	}
	return c.sess.peerCaps
}

// ensureSession returns the live session, dialing and handshaking with
// backoff if there is none. Only one goroutine dials at a time; the rest
// wait for that attempt or for their own context, whichever ends first,
// so a short-deadline caller is never stuck behind a slow dial loop.
func (c *Conn) ensureSession(ctx context.Context) (*session, error) {
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("rpc: connection closed")
		}
		if c.sess != nil {
			s := c.sess
			c.mu.Unlock()
			return s, nil
		}
		if c.dialing == nil {
			gate := make(chan struct{})
			c.dialing = gate
			c.mu.Unlock()

			s, err := c.dialLoop(ctx)

			c.mu.Lock()
			c.dialing = nil
			if err == nil {
				if c.closed {
					s.nc.Close()
					err = errors.New("rpc: connection closed")
				} else {
					c.sess = s
				}
			}
			close(gate)
			c.mu.Unlock()
			if err != nil {
				return nil, err
			}
			return s, nil
		}
		gate := c.dialing
		c.mu.Unlock()
		select {
		case <-gate:
			// The dialer settled; re-check the session (it may have
			// failed, in which case this caller becomes the dialer).
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// dialLoop makes up to redialAttempts connect attempts with doubling
// backoff. It runs outside the Conn mutex.
func (c *Conn) dialLoop(ctx context.Context) (*session, error) {
	var lastErr error
	backoff := c.opts.redialBackoff()
	for attempt := 0; attempt < c.opts.redialAttempts(); attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(backoff):
			}
			backoff *= 2
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s, err := c.dialAndHandshake(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		return s, nil
	}
	return nil, fmt.Errorf("rpc: dialing %s: %w", c.addr, lastErr)
}

// dialAndHandshake makes one connect attempt and negotiates the protocol.
func (c *Conn) dialAndHandshake(ctx context.Context) (*session, error) {
	dctx, cancel := context.WithTimeout(ctx, c.opts.dialTimeout())
	defer cancel()
	var d net.Dialer
	nc, err := d.DialContext(dctx, "tcp", c.addr)
	if err != nil {
		return nil, err
	}
	s := &session{nc: nc, proto: wire.ProtocolV1}
	if c.opts.ForceV1 {
		return s, nil
	}
	// Hello travels in v1 framing so a legacy server can answer it with
	// its usual error frame instead of dropping the connection.
	deadline := time.Now().Add(c.opts.dialTimeout())
	nc.SetDeadline(deadline)
	if err := wire.WriteFrame(nc, wire.MsgHello, wire.EncodeHelloCaps(wire.MaxProtocol, c.opts.Capabilities)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("rpc: hello: %w", err)
	}
	mt, body, err := wire.ReadFrame(nc)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("rpc: hello response: %w", err)
	}
	nc.SetDeadline(time.Time{})
	switch mt {
	case wire.MsgHelloResp:
		v, caps, err := wire.DecodeHelloCaps(body)
		if err != nil {
			nc.Close()
			return nil, err
		}
		if v > wire.MaxProtocol {
			nc.Close()
			return nil, fmt.Errorf("rpc: server negotiated unknown protocol %d", v)
		}
		s.proto = v
		s.peerCaps = caps
	case wire.MsgError:
		// A v1 server does not know MsgHello and reports an error; the
		// connection stays usable in one-in/one-out mode.
		s.proto = wire.ProtocolV1
	default:
		nc.Close()
		return nil, fmt.Errorf("rpc: unexpected handshake reply %v", mt)
	}
	if s.proto >= wire.ProtocolV2 {
		s.pending = make(map[uint32]chan frame)
		s.writeSem = make(chan struct{}, 1)
		go s.readLoop()
	}
	return s, nil
}

// dropSession discards a dead session (if it is still the current one).
func (c *Conn) dropSession(s *session) {
	c.mu.Lock()
	if c.sess == s {
		c.sess = nil
	}
	c.mu.Unlock()
	s.nc.Close()
}

// readLoop is the v2 demultiplexer: it owns the connection's read side
// and routes each response frame to the in-flight call that owns its
// request ID. Responses may arrive in any order.
func (s *session) readLoop() {
	for {
		mt, id, body, err := wire.ReadFrameV2(s.nc)
		if err != nil {
			s.failAll(fmt.Errorf("rpc: connection lost: %w", err))
			return
		}
		s.pendMu.Lock()
		ch := s.pending[id]
		delete(s.pending, id)
		s.pendMu.Unlock()
		if ch != nil {
			ch <- frame{mt: mt, body: body}
		}
	}
}

// failAll marks the session dead and wakes every in-flight call.
func (s *session) failAll(err error) {
	s.pendMu.Lock()
	s.dead = err
	pending := s.pending
	s.pending = nil
	s.pendMu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// errTransport wraps failures of the connection itself (as opposed to
// errors reported by the remote side), the class of failure a redial can
// fix. sent records whether a complete request frame may have reached
// the server: a dead-session check or a failed/partial write provably
// never delivered an executable request (the server cannot dispatch a
// truncated frame), so those remain retryable even for non-idempotent
// requests.
type errTransport struct {
	err  error
	sent bool
}

func (e *errTransport) Error() string { return e.err.Error() }
func (e *errTransport) Unwrap() error { return e.err }

// Call sends one request and returns the matching response body. Remote
// error frames come back as errors (typed *wire.WireError on v2
// sessions). When the connection itself fails, Call redials with backoff
// and retries once on the fresh connection — always when the request
// provably never reached the server, and otherwise only for idempotent
// requests (a non-idempotent request that was fully written may already
// have executed).
func (c *Conn) Call(ctx context.Context, t wire.MsgType, body []byte, want wire.MsgType, idempotent bool) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	resp, err := c.callOnce(ctx, t, body, want)
	var te *errTransport
	if err != nil && errors.As(err, &te) && (idempotent || !te.sent) && ctx.Err() == nil {
		// The conn died under us: one redial-and-retry, then give up.
		resp, err = c.callOnce(ctx, t, body, want)
	}
	if te2 := (*errTransport)(nil); errors.As(err, &te2) {
		err = te2.err
	}
	return resp, err
}

func (c *Conn) callOnce(ctx context.Context, t wire.MsgType, body []byte, want wire.MsgType) ([]byte, error) {
	s, err := c.ensureSession(ctx)
	if err != nil {
		return nil, &errTransport{err: err}
	}
	var f frame
	if s.proto >= wire.ProtocolV2 {
		f, err = c.callV2(ctx, s, t, body)
	} else {
		f, err = c.callV1(ctx, s, t, body)
	}
	if err != nil {
		return nil, err
	}
	if f.mt == wire.MsgError {
		if s.proto >= wire.ProtocolV2 {
			return nil, wire.DecodeWireError(f.body)
		}
		return nil, wire.AsError(f.body)
	}
	if f.mt != want {
		return nil, fmt.Errorf("rpc: expected %v, got %v", want, f.mt)
	}
	return f.body, nil
}

// callV2 runs one pipelined exchange: register an in-flight entry, write
// the frame under the connection write lock, then wait for the reader
// goroutine to deliver the tagged response (or for ctx to expire).
func (c *Conn) callV2(ctx context.Context, s *session, t wire.MsgType, body []byte) (frame, error) {
	ch := make(chan frame, 1)
	s.pendMu.Lock()
	if s.dead != nil {
		err := s.dead
		s.pendMu.Unlock()
		c.dropSession(s)
		return frame{}, &errTransport{err: err}
	}
	s.nextID++
	id := s.nextID
	s.pending[id] = ch
	s.pendMu.Unlock()

	unregister := func() {
		s.pendMu.Lock()
		delete(s.pending, id)
		s.pendMu.Unlock()
	}

	// Acquire the write slot without ignoring ctx: a caller queued behind
	// a stalled writer still honors its own deadline.
	select {
	case s.writeSem <- struct{}{}:
	case <-ctx.Done():
		unregister()
		return frame{}, ctx.Err()
	}
	// Each writer arms its own write deadline (and a cancellation hook)
	// while holding the slot, so a peer that stops draining its socket
	// cannot block the write past this call's context. A hook that fires
	// late can at worst poison the next writer's deadline for one write;
	// that write errors, drops the session, and the caller's retry logic
	// takes over.
	if d, ok := ctx.Deadline(); ok {
		s.nc.SetWriteDeadline(d)
	} else {
		s.nc.SetWriteDeadline(time.Time{})
	}
	stopW := context.AfterFunc(ctx, func() {
		s.nc.SetWriteDeadline(time.Unix(1, 0))
	})
	err := wire.WriteFrameV2(s.nc, t, id, body)
	stopW()
	<-s.writeSem
	if err != nil {
		// Whether the write stalled or was cancelled mid-frame, bytes may
		// have been partially flushed: the stream is desynchronized and
		// the session cannot be reused.
		unregister()
		c.dropSession(s)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return frame{}, ctxErr
		}
		return frame{}, &errTransport{err: fmt.Errorf("rpc: write: %w", err)}
	}

	select {
	case f, ok := <-ch:
		if !ok {
			// readLoop failed the session after the request went out.
			s.pendMu.Lock()
			err := s.dead
			s.pendMu.Unlock()
			c.dropSession(s)
			if err == nil {
				err = errors.New("rpc: connection lost")
			}
			return frame{}, &errTransport{err: err, sent: true}
		}
		return f, nil
	case <-ctx.Done():
		// Abandon the in-flight entry; if the response arrives later the
		// readLoop finds no owner and discards it. The connection remains
		// healthy for other callers.
		s.pendMu.Lock()
		delete(s.pending, id)
		s.pendMu.Unlock()
		return frame{}, ctx.Err()
	}
}

// callV1 runs one serial exchange against a legacy peer. Cancellation is
// honored by yanking the read deadline, which kills the connection (a v1
// stream has no request IDs, so an abandoned response would desynchronize
// every later exchange).
func (c *Conn) callV1(ctx context.Context, s *session, t wire.MsgType, body []byte) (frame, error) {
	s.callMu.Lock()
	defer s.callMu.Unlock()
	if err := ctx.Err(); err != nil {
		return frame{}, err
	}
	s.nc.SetDeadline(time.Time{})
	stop := context.AfterFunc(ctx, func() {
		s.nc.SetDeadline(time.Unix(1, 0)) // unblock both write and read
	})
	if err := wire.WriteFrame(s.nc, t, body); err != nil {
		stop()
		c.dropSession(s)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return frame{}, ctxErr
		}
		return frame{}, &errTransport{err: fmt.Errorf("rpc: write: %w", err)}
	}
	mt, resp, err := wire.ReadFrame(s.nc)
	if !stop() {
		// The cancellation hook ran (or is running) concurrently with the
		// exchange; the read deadline may be poisoned at any moment, so
		// the session cannot be reused even if this read succeeded.
		c.dropSession(s)
	}
	if err != nil {
		c.dropSession(s)
		if ctxErr := ctx.Err(); ctxErr != nil {
			return frame{}, ctxErr
		}
		return frame{}, &errTransport{err: fmt.Errorf("rpc: read: %w", err), sent: true}
	}
	return frame{mt: mt, body: resp}, nil
}
