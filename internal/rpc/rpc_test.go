package rpc

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeauth/internal/wire"
)

// echoHandler answers MsgQueryReq with MsgQueryResp carrying the request
// body back, and fails everything else with a typed error.
func echoHandler(_ context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgQueryReq:
		return wire.MsgQueryResp, body, nil
	case wire.MsgSchemaReq:
		return 0, nil, wire.UnknownTable("test", string(body))
	default:
		return 0, nil, wire.Unsupported("test", mt)
	}
}

// startServer serves connections with h until the test ends.
func startServer(t *testing.T, h Handler, o ServeOptions) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				ServeConn(conn, h, o)
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

// startV1Server emulates a legacy peer: the pre-handshake serial loop
// that answers MsgHello with a string error frame.
func startV1Server(t *testing.T, h Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					mt, body, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					if mt == wire.MsgHello {
						wire.WriteError(conn, errors.New("test: unsupported message hello"))
						continue
					}
					respType, resp, err := h(context.Background(), mt, body)
					if err != nil {
						if wire.WriteError(conn, err) != nil {
							return
						}
						continue
					}
					if wire.WriteFrame(conn, respType, resp) != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln.Addr().String()
}

func TestV2HandshakeAndCall(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{})
	c := New(addr, Options{})
	defer c.Close()
	ctx := context.Background()
	resp, err := c.Call(ctx, wire.MsgQueryReq, []byte("ping"), wire.MsgQueryResp, true)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "ping" {
		t.Fatalf("echo = %q", resp)
	}
	if c.Proto() != wire.ProtocolV2 {
		t.Fatalf("negotiated protocol %d, want v2", c.Proto())
	}
}

func TestV2ClientAgainstV1Server(t *testing.T) {
	addr := startV1Server(t, echoHandler)
	c := New(addr, Options{})
	defer c.Close()
	ctx := context.Background()
	resp, err := c.Call(ctx, wire.MsgQueryReq, []byte("legacy"), wire.MsgQueryResp, true)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "legacy" {
		t.Fatalf("echo = %q", resp)
	}
	if c.Proto() != wire.ProtocolV1 {
		t.Fatalf("negotiated protocol %d, want v1 fallback", c.Proto())
	}
	// v1 error frames still surface as errors (string form).
	if _, err := c.Call(ctx, wire.MsgSchemaReq, []byte("ghost"), wire.MsgSchemaResp, true); err == nil {
		t.Fatal("v1 error frame not surfaced")
	}
}

func TestV1ClientAgainstV2Server(t *testing.T) {
	// A legacy client speaks raw v1 frames with no Hello; the server must
	// fall back to the serial loop on the same connection.
	addr := startServer(t, echoHandler, ServeOptions{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	for i := 0; i < 3; i++ {
		if err := wire.WriteFrame(nc, wire.MsgQueryReq, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		mt, body, err := wire.ReadFrame(nc)
		if err != nil || mt != wire.MsgQueryResp || !bytes.Equal(body, []byte{byte(i)}) {
			t.Fatalf("exchange %d: mt=%v body=%v err=%v", i, mt, body, err)
		}
	}
	// Errors stay string-framed for v1 peers, and the conn stays usable.
	if err := wire.WriteFrame(nc, wire.MsgSchemaReq, []byte("ghost")); err != nil {
		t.Fatal(err)
	}
	mt, body, err := wire.ReadFrame(nc)
	if err != nil || mt != wire.MsgError {
		t.Fatalf("error frame: mt=%v err=%v", mt, err)
	}
	if wire.AsError(body).Error() == "" {
		t.Fatal("empty v1 error")
	}
	if err := wire.WriteFrame(nc, wire.MsgQueryReq, nil); err != nil {
		t.Fatal(err)
	}
	if mt, _, err = wire.ReadFrame(nc); err != nil || mt != wire.MsgQueryResp {
		t.Fatalf("conn unusable after error: mt=%v err=%v", mt, err)
	}
}

func TestForceV1AgainstV2Server(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{})
	c := New(addr, Options{ForceV1: true})
	defer c.Close()
	resp, err := c.Call(context.Background(), wire.MsgQueryReq, []byte("x"), wire.MsgQueryResp, true)
	if err != nil || string(resp) != "x" {
		t.Fatalf("forced-v1 call: %q %v", resp, err)
	}
	if c.Proto() != wire.ProtocolV1 {
		t.Fatalf("proto = %d", c.Proto())
	}
}

func TestTypedErrorAcrossV2(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{})
	c := New(addr, Options{})
	defer c.Close()
	_, err := c.Call(context.Background(), wire.MsgSchemaReq, []byte("ghost"), wire.MsgSchemaResp, true)
	if !errors.Is(err, wire.ErrUnknownTable) {
		t.Fatalf("err = %v, want ErrUnknownTable", err)
	}
	var we *wire.WireError
	if !errors.As(err, &we) || we.Table != "ghost" {
		t.Fatalf("typed error lost its table: %v", err)
	}
	_, err = c.Call(context.Background(), wire.MsgVersionReq, nil, wire.MsgVersionResp, true)
	if !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

// TestOutOfOrderResponses proves demultiplexing: a slow request issued
// first must not block a fast one issued second.
func TestOutOfOrderResponses(t *testing.T) {
	release := make(chan struct{})
	h := func(_ context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
		if len(body) > 0 && body[0] == 's' {
			<-release
		}
		return wire.MsgQueryResp, body, nil
	}
	addr := startServer(t, h, ServeOptions{})
	c := New(addr, Options{})
	defer c.Close()
	ctx := context.Background()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, wire.MsgQueryReq, []byte("slow"), wire.MsgQueryResp, true)
		slowDone <- err
	}()
	// The fast call completes while the slow one is parked in a worker.
	fastCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if _, err := c.Call(fastCtx, wire.MsgQueryReq, []byte("fast"), wire.MsgQueryResp, true); err != nil {
		t.Fatalf("fast call blocked behind slow one: %v", err)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

func TestContextCancellationMidRequest(t *testing.T) {
	block := make(chan struct{})
	h := func(_ context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
		<-block
		return wire.MsgQueryResp, body, nil
	}
	addr := startServer(t, h, ServeOptions{})
	c := New(addr, Options{})
	defer c.Close()
	defer close(block)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, wire.MsgQueryReq, []byte("hang"), wire.MsgQueryResp, true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the server
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation not observed mid-request")
	}

	// An already-expired context fails before any I/O.
	expired, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := c.Call(expired, wire.MsgQueryReq, nil, wire.MsgQueryResp, true); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: %v", err)
	}
}

// TestRedialAfterServerRestart is the dead-cached-conn regression test:
// the old client kept a poisoned conn forever; Conn must redial.
func TestRedialAfterServerRestart(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	var (
		conns   sync.WaitGroup
		connsMu sync.Mutex
		open    []net.Conn
	)
	serve := func(ln net.Listener) {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			connsMu.Lock()
			open = append(open, conn)
			connsMu.Unlock()
			conns.Add(1)
			go func() {
				defer conns.Done()
				defer conn.Close()
				ServeConn(conn, echoHandler, ServeOptions{})
			}()
		}
	}
	go serve(ln)

	c := New(addr, Options{RedialBackoff: 5 * time.Millisecond})
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Call(ctx, wire.MsgQueryReq, []byte("a"), wire.MsgQueryResp, true); err != nil {
		t.Fatal(err)
	}

	// Kill the server mid-session (listener and live connections), then
	// bring it back on the same port.
	ln.Close()
	connsMu.Lock()
	for _, nc := range open {
		nc.Close()
	}
	connsMu.Unlock()
	conns.Wait()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go serve(ln2)

	resp, err := c.Call(ctx, wire.MsgQueryReq, []byte("b"), wire.MsgQueryResp, true)
	if err != nil {
		t.Fatalf("idempotent call after restart: %v", err)
	}
	if string(resp) != "b" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestNonIdempotentRetriesWhenNeverSent: after the server idle-drops the
// cached session, even a non-idempotent request must redial and retry,
// because the dead-session check fires before any bytes are written —
// the request provably never reached the server.
func TestNonIdempotentRetriesWhenNeverSent(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{IdleTimeout: 30 * time.Millisecond})
	c := New(addr, Options{RedialBackoff: 5 * time.Millisecond})
	defer c.Close()
	ctx := context.Background()
	if _, err := c.Call(ctx, wire.MsgQueryReq, []byte("a"), wire.MsgQueryResp, false); err != nil {
		t.Fatal(err)
	}
	// Wait for the server to idle-drop the connection and the client's
	// readLoop to mark the session dead.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("session never died after server idle timeout")
		}
		time.Sleep(20 * time.Millisecond)
		c.mu.Lock()
		s := c.sess
		c.mu.Unlock()
		if s == nil {
			break // a previous call already dropped it
		}
		s.pendMu.Lock()
		dead := s.dead != nil
		s.pendMu.Unlock()
		if dead {
			break
		}
	}
	resp, err := c.Call(ctx, wire.MsgQueryReq, []byte("b"), wire.MsgQueryResp, false)
	if err != nil {
		t.Fatalf("non-idempotent call on dead session: %v (should retry: never sent)", err)
	}
	if string(resp) != "b" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestIdleTimeoutDropsSlowloris: a peer that connects and never sends a
// complete frame is disconnected instead of pinning the goroutine.
func TestIdleTimeoutDropsSlowloris(t *testing.T) {
	done := make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		ServeConn(conn, echoHandler, ServeOptions{IdleTimeout: 50 * time.Millisecond})
		close(done)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte{0x00}) // a lone length byte, never completed
	select {
	case <-done:
		// ServeConn returned: the goroutine is free.
	case <-time.After(5 * time.Second):
		t.Fatal("slowloris connection still pinned after idle timeout")
	}
}

// TestConcurrentPipelinedCalls hammers one Conn from many goroutines
// (run with -race).
func TestConcurrentPipelinedCalls(t *testing.T) {
	var served atomic.Int64
	h := func(_ context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
		served.Add(1)
		return wire.MsgQueryResp, body, nil
	}
	addr := startServer(t, h, ServeOptions{MaxConcurrent: 4})
	c := New(addr, Options{})
	defer c.Close()
	ctx := context.Background()

	const goroutines, per = 16, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				payload := []byte{byte(g), byte(i)}
				resp, err := c.Call(ctx, wire.MsgQueryReq, payload, wire.MsgQueryResp, true)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(resp, payload) {
					errs <- errors.New("response routed to the wrong caller")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := served.Load(); got != goroutines*per {
		t.Fatalf("served %d requests, want %d", got, goroutines*per)
	}
}

// TestHandlerCtxCancelledOnDisconnect proves the connection context
// reaches handlers and is cancelled when the peer goes away, so a
// long-running query stops burning CPU for a client that hung up.
func TestHandlerCtxCancelledOnDisconnect(t *testing.T) {
	started := make(chan struct{})
	cancelled := make(chan error, 1)
	h := func(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
		close(started)
		select {
		case <-ctx.Done():
			cancelled <- ctx.Err()
		case <-time.After(5 * time.Second):
			cancelled <- nil
		}
		return wire.MsgQueryResp, nil, nil
	}
	addr := startServer(t, h, ServeOptions{})
	c := New(addr, Options{})
	go c.Call(context.Background(), wire.MsgQueryReq, []byte("x"), wire.MsgQueryResp, false)
	<-started
	c.Close() // client hangs up mid-request
	select {
	case err := <-cancelled:
		if err == nil {
			t.Fatal("handler context not cancelled after peer disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never observed the disconnect")
	}
}

// TestBaseContextCancellation covers ServeOptions.BaseContext: when the
// server's root context is cancelled (shutdown), handlers blocked on
// ctx.Done unwind and answer, instead of running on with a context that
// outlives the server.
func TestBaseContextCancellation(t *testing.T) {
	base, cancel := context.WithCancel(context.Background())
	h := func(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
		<-ctx.Done()
		return 0, nil, ctx.Err()
	}
	addr := startServer(t, h, ServeOptions{BaseContext: base})
	c := New(addr, Options{})
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), wire.MsgQueryReq, []byte("x"), wire.MsgQueryResp, true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call reach the handler
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded although the handler's context was cancelled")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler did not observe BaseContext cancellation")
	}
}
