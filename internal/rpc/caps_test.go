package rpc

import (
	"context"
	"testing"

	"edgeauth/internal/wire"
)

// TestCapabilityExchange: capability bits ride the Hello handshake in
// both directions — the server's bits surface through Conn.PeerCaps so
// a puller can see whether its upstream is a serving peer.
func TestCapabilityExchange(t *testing.T) {
	addr := startServer(t, echoHandler, ServeOptions{Capabilities: wire.CapPeerServe})
	c := New(addr, Options{Capabilities: wire.CapPeerServe})
	defer c.Close()
	ctx := context.Background()

	if got := c.PeerCaps(); got != 0 {
		t.Fatalf("caps before connect = %#x, want 0", got)
	}
	if _, err := c.Call(ctx, wire.MsgQueryReq, []byte("hi"), wire.MsgQueryResp, true); err != nil {
		t.Fatal(err)
	}
	if got := c.PeerCaps(); got != wire.CapPeerServe {
		t.Fatalf("caps = %#x, want CapPeerServe", got)
	}

	// A server with no capabilities advertises none.
	plain := New(startServer(t, echoHandler, ServeOptions{}), Options{})
	defer plain.Close()
	if _, err := plain.Call(ctx, wire.MsgQueryReq, []byte("hi"), wire.MsgQueryResp, true); err != nil {
		t.Fatal(err)
	}
	if got := plain.PeerCaps(); got != 0 {
		t.Fatalf("plain server caps = %#x, want 0", got)
	}

	// Against a v1 (pre-Hello) server the caps stay zero — the dialer
	// downgraded and no capability word was ever exchanged.
	legacy := New(startV1Server(t, echoHandler), Options{Capabilities: wire.CapPeerServe})
	defer legacy.Close()
	if _, err := legacy.Call(ctx, wire.MsgQueryReq, []byte("hi"), wire.MsgQueryResp, true); err != nil {
		t.Fatal(err)
	}
	if legacy.Proto() != wire.ProtocolV1 || legacy.PeerCaps() != 0 {
		t.Fatalf("legacy: proto=%d caps=%#x, want v1/0", legacy.Proto(), legacy.PeerCaps())
	}
}
