package rpc

import (
	"net"
	"sync"
)

// ConnSet tracks a server's accepted connections so shutdown can close
// them instead of waiting for peers (which may hold pooled connections
// open indefinitely) to hang up.
type ConnSet struct {
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// Add registers a connection; it reports false (without registering)
// once CloseAll has run, so late accepts are rejected by the caller.
func (s *ConnSet) Add(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[c] = struct{}{}
	return true
}

// Remove drops a connection from the set (after its handler returns).
func (s *ConnSet) Remove(c net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, c)
}

// CloseAll closes every tracked connection and marks the set closed.
func (s *ConnSet) CloseAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.conns = nil
}
