package rpc

import (
	"context"
	"net"
	"sync"
	"time"

	"edgeauth/internal/wire"
)

// Defaults for ServeOptions zero values.
const (
	DefaultIdleTimeout   = 2 * time.Minute
	DefaultMaxConcurrent = 16
)

// Handler executes one decoded request and returns the response frame's
// type and body. ctx is the connection's context: on multiplexed (v2)
// sessions it is cancelled the moment the read loop observes the peer
// gone, so long-running handlers (query traversal, VO crypto) stop
// early instead of burning a worker on an answer nobody will read. On
// serial v1 sessions the handler runs inline in the read loop, so a
// mid-request disconnect is only noticed afterwards — there ctx covers
// server teardown, not per-request disconnects. Returning an error
// sends an error frame instead (typed on v2 sessions, a bare string on
// v1); return a *wire.WireError to control the code the client sees.
type Handler func(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error)

// ServeOptions configures per-connection dispatch.
type ServeOptions struct {
	// IdleTimeout closes a connection when no complete request frame
	// arrives within the window — a hung or slowloris peer cannot pin the
	// connection goroutine forever. 0 selects DefaultIdleTimeout;
	// negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConcurrent bounds the requests executing concurrently on one v2
	// connection. 0 selects DefaultMaxConcurrent.
	MaxConcurrent int
	// BaseContext, when non-nil, parents every connection context, so
	// cancelling it (server shutdown) stops in-flight handlers across
	// all connections. Nil leaves connections rooted at Background.
	BaseContext context.Context
	// Capabilities is the wire.Cap* bit set advertised in the HelloResp
	// (e.g. CapPeerServe when this server relays replication traffic).
	Capabilities uint32
}

func (o ServeOptions) baseContext() context.Context {
	if o.BaseContext != nil {
		return o.BaseContext
	}
	// The accept loop's default when no server lifecycle is plumbed in.
	return context.Background() //vetauth:ignore ctxflow there is no caller context to inherit here
}

func (o ServeOptions) idleTimeout() time.Duration {
	switch {
	case o.IdleTimeout == 0:
		return DefaultIdleTimeout
	case o.IdleTimeout < 0:
		return 0
	default:
		return o.IdleTimeout
	}
}

func (o ServeOptions) maxConcurrent() int {
	if o.MaxConcurrent <= 0 {
		return DefaultMaxConcurrent
	}
	return o.MaxConcurrent
}

// ServeConn drives one accepted connection until it closes: it negotiates
// the protocol with the peer's optional Hello, then dispatches requests
// through h. On a v2 session requests decode on this (reader) goroutine
// and execute concurrently on a bounded worker pool, each response
// written under the connection write lock and tagged with its request ID;
// a v1 peer gets the classic serial one-frame-in/one-frame-out loop.
// ServeConn returns when the peer disconnects, idles out, or sends a
// malformed frame; in-flight workers are drained before it returns.
func ServeConn(conn net.Conn, h Handler, o ServeOptions) {
	// The connection context: cancelled the moment the serve loop winds
	// down (peer disconnected, idled out, malformed frame) or the
	// server's BaseContext is cancelled, so in-flight handlers stop
	// early.
	ctx, cancel := context.WithCancel(o.baseContext())
	defer cancel()
	idle := o.idleTimeout()
	setIdleDeadline(conn, idle)
	mt, body, err := wire.ReadFrame(conn)
	if err != nil {
		return
	}
	if mt != wire.MsgHello {
		// A v1 peer: serve the frame we already read, then loop serially.
		serveV1(ctx, conn, h, idle, mt, body)
		return
	}
	theirMax, _, err := wire.DecodeHelloCaps(body)
	if err != nil {
		setWriteDeadline(conn, idle)
		wire.WriteError(conn, err)
		return
	}
	version := uint32(wire.MaxProtocol)
	if theirMax < version {
		version = theirMax
	}
	setWriteDeadline(conn, idle)
	if err := wire.WriteFrame(conn, wire.MsgHelloResp, wire.EncodeHelloCaps(version, o.Capabilities)); err != nil {
		return
	}
	if version < wire.ProtocolV2 {
		setIdleDeadline(conn, idle)
		mt, body, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		serveV1(ctx, conn, h, idle, mt, body)
		return
	}
	serveV2(ctx, conn, h, o, idle)
}

func setIdleDeadline(conn net.Conn, idle time.Duration) {
	if idle > 0 {
		conn.SetReadDeadline(time.Now().Add(idle))
	}
}

// setWriteDeadline bounds one response write by the idle window, so a
// peer that sends requests but never drains responses cannot pin a
// worker (and with it the per-connection write lock) forever.
func setWriteDeadline(conn net.Conn, idle time.Duration) {
	if idle > 0 {
		conn.SetWriteDeadline(time.Now().Add(idle))
	}
}

// serveV1 is the legacy serial loop, starting from an already-read frame.
func serveV1(ctx context.Context, conn net.Conn, h Handler, idle time.Duration, mt wire.MsgType, body []byte) {
	for {
		respType, resp, err := h(ctx, mt, body)
		setWriteDeadline(conn, idle)
		if err != nil {
			if werr := wire.WriteError(conn, err); werr != nil {
				return
			}
		} else if err := wire.WriteFrame(conn, respType, resp); err != nil {
			return
		}
		setIdleDeadline(conn, idle)
		if mt, body, err = wire.ReadFrame(conn); err != nil {
			return
		}
	}
}

// serveV2 is the multiplexed loop: decode on this goroutine, execute on a
// bounded pool, write under writeMu tagged with the request ID. When the
// read loop exits (peer gone), ctx is cancelled before the worker drain,
// so stuck handlers unblock instead of pinning the drain.
func serveV2(ctx context.Context, conn net.Conn, h Handler, o ServeOptions, idle time.Duration) {
	var (
		writeMu sync.Mutex
		wg      sync.WaitGroup
		sem     = make(chan struct{}, o.maxConcurrent())
	)
	ctx, cancel := context.WithCancel(ctx)
	defer wg.Wait()
	defer cancel()
	for {
		setIdleDeadline(conn, idle)
		mt, id, body, err := wire.ReadFrameV2(conn)
		if err != nil {
			return
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(mt wire.MsgType, id uint32, body []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			respType, resp, err := h(ctx, mt, body)
			if err != nil {
				respType, resp = wire.MsgError, wire.ToWireError(err).Encode()
			}
			writeMu.Lock()
			setWriteDeadline(conn, idle)
			werr := wire.WriteFrameV2(conn, respType, id, resp)
			writeMu.Unlock()
			if werr != nil {
				// The peer is gone; the read loop will notice shortly.
				conn.Close()
			}
		}(mt, id, body)
	}
}
