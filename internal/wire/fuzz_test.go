package wire

import (
	"bytes"
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// Fuzz targets for the frame-body decoders fed by untrusted peers: the
// delta decoder runs at edge servers on central-impersonating input, and
// the query-response decoder runs at clients on edge-supplied input.
// Invariants: no panics, no unbounded allocation shortcuts, and accepted
// inputs re-encode byte-identically (signature checks hash the received
// bytes, so a "repairing" decoder would break authentication).

func seedDelta() *Delta {
	return &Delta{
		Table:       "items",
		FromVersion: 3,
		ToVersion:   5,
		Epoch:       0xABCDEF,
		Root:        storage.PageID(2),
		Height:      2,
		RootSig:     []byte{1, 2, 3},
		HeapPages:   []storage.PageID{4, 5},
		NumPages:    9,
		PageIDs:     []storage.PageID{6, 7},
		PageData:    [][]byte{{0xAA}, {0xBB, 0xCC}},
		KeyVersion:  1,
		Sig:         []byte{9, 9, 9},
	}
}

func FuzzDecodeDelta(f *testing.F) {
	f.Add(seedDelta().Encode())
	snapNeeded := &Delta{Table: "t", SnapshotNeeded: true, Sig: []byte{1}}
	f.Add(snapNeeded.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 48))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			return
		}
		if !bytes.Equal(d.Encode(), data) {
			t.Fatal("delta round-trip mismatch")
		}
		// The signature-payload helper must agree with the re-derived core
		// bytes on any accepted input — it is what the edge actually hashes.
		fromBody, err := d.SigPayloadOfBody(data)
		if err != nil {
			t.Fatalf("SigPayloadOfBody on accepted delta: %v", err)
		}
		if !bytes.Equal(fromBody, d.SigPayload()) {
			t.Fatal("SigPayloadOfBody diverges from SigPayload")
		}
	})
}

func FuzzDecodeQueryResponse(f *testing.F) {
	rs := &vo.ResultSet{
		DB: "db", Table: "items",
		Columns: []string{"id"},
		Keys:    []schema.Datum{schema.Int64(7)},
		Tuples:  []schema.Tuple{schema.NewTuple(schema.Int64(7))},
	}
	w := &vo.VO{KeyVersion: 1, Timestamp: 1_700_000_000, TopLevel: 1, TopDigest: []byte{1, 2}}
	resp := &QueryResponse{Result: rs, VO: w}
	f.Add(resp.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := DecodeQueryResponse(data)
		if err != nil {
			return
		}
		if q.Result == nil || q.VO == nil {
			t.Fatal("accepted query response with nil parts")
		}
	})
}

// FuzzDecodeBatchResponse covers the newest client-facing decoder.
func FuzzDecodeBatchResponse(f *testing.F) {
	resp := &BatchResponse{Results: []BatchOpResult{
		{OK: true},
		{Code: CodeDuplicateKey, Msg: "dup"},
	}}
	f.Add(resp.Encode())
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatchResponse(data)
		if err != nil {
			return
		}
		if !bytes.Equal(b.Encode(), data) {
			t.Fatal("batch-response round-trip mismatch")
		}
	})
}
