package wire

import (
	"bytes"
	"testing"

	"edgeauth/internal/storage"
)

func sampleDelta() *Delta {
	return &Delta{
		Table:       "items",
		FromVersion: 7,
		ToVersion:   9,
		Root:        storage.PageID(3),
		Height:      2,
		RootSig:     []byte{0xAA, 0xBB},
		HeapPages:   []storage.PageID{5, 6},
		NumPages:    12,
		PageIDs:     []storage.PageID{3, 8},
		PageData:    [][]byte{{1, 2, 3}, {4, 5, 6}},
		KeyVersion:  1,
		Sig:         []byte{0xCC, 0xDD, 0xEE},
	}
}

func TestDeltaRequestRoundTrip(t *testing.T) {
	req := &DeltaRequest{Table: "items", FromVersion: 42}
	got, err := DecodeDeltaRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != req.Table || got.FromVersion != req.FromVersion {
		t.Fatalf("round trip: got %+v, want %+v", got, req)
	}
	if _, err := DecodeDeltaRequest(req.Encode()[:3]); err == nil {
		t.Fatal("truncated request accepted")
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	d := sampleDelta()
	got, err := DecodeDelta(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != d.Table || got.FromVersion != d.FromVersion || got.ToVersion != d.ToVersion {
		t.Fatalf("versions: got %+v", got)
	}
	if got.SnapshotNeeded {
		t.Fatal("SnapshotNeeded flipped on")
	}
	if got.Root != d.Root || got.Height != d.Height || !bytes.Equal(got.RootSig, d.RootSig) {
		t.Fatalf("tree metadata: got %+v", got)
	}
	if len(got.HeapPages) != 2 || got.HeapPages[1] != 6 {
		t.Fatalf("heap pages: %v", got.HeapPages)
	}
	if got.NumPages != 12 || got.KeyVersion != 1 {
		t.Fatalf("NumPages/KeyVersion: %d/%d", got.NumPages, got.KeyVersion)
	}
	if len(got.PageIDs) != 2 || got.PageIDs[1] != 8 || !bytes.Equal(got.PageData[1], []byte{4, 5, 6}) {
		t.Fatalf("pages: %v %v", got.PageIDs, got.PageData)
	}
	if !bytes.Equal(got.Sig, d.Sig) {
		t.Fatalf("sig: %x", got.Sig)
	}
}

func TestDeltaSnapshotNeededRoundTrip(t *testing.T) {
	d := &Delta{Table: "t", FromVersion: 1, ToVersion: 99, SnapshotNeeded: true, Sig: []byte{1}}
	got, err := DecodeDelta(d.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.SnapshotNeeded || got.ToVersion != 99 {
		t.Fatalf("got %+v", got)
	}
}

func TestDeltaSigPayloadCoversContent(t *testing.T) {
	d := sampleDelta()
	base := d.SigPayload()
	// The signature field itself must not feed the payload.
	d.Sig = []byte{9, 9, 9}
	if !bytes.Equal(d.SigPayload(), base) {
		t.Fatal("SigPayload depends on Sig")
	}
	// Any content change must change the payload.
	d.PageData[0][0] ^= 1
	if bytes.Equal(d.SigPayload(), base) {
		t.Fatal("SigPayload ignores page content")
	}
	d.PageData[0][0] ^= 1
	d.ToVersion++
	if bytes.Equal(d.SigPayload(), base) {
		t.Fatal("SigPayload ignores ToVersion")
	}
}

func TestDeltaDecodeRejectsTruncation(t *testing.T) {
	enc := sampleDelta().Encode()
	for _, cut := range []int{1, 5, 12, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeDelta(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeDelta(append(enc, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}
