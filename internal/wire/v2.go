package wire

// Protocol v2: concurrent request multiplexing over one connection.
//
// v1 sessions are strict one-frame-in/one-frame-out: a client writes a
// request frame and blocks until the response frame arrives, so one slow
// query serializes every caller sharing the connection. v2 keeps the v1
// frame container but inserts a u32 request ID between the type byte and
// the body:
//
//	u32 len | u8 type | u32 reqID | body        (v2)
//	u32 len | u8 type |            body         (v1)
//
// Responses echo the request ID of the frame they answer, so they may
// return in any order and N callers can pipeline over one TCP connection.
//
// # Version negotiation
//
// A v2 peer opens every connection with a v1-framed Hello carrying the
// highest protocol version it speaks. A v2 server replies HelloResp with
// the negotiated version and both sides switch framing; a v1 server does
// not know MsgHello, answers with its usual string error frame, and the
// client silently downgrades to v1 one-in/one-out on the same connection.
// A v1 client never sends Hello, so a v2 server falls back to serial v1
// dispatch when the first frame is any other request. Both directions
// therefore interoperate with no configuration.
//
// # Typed errors
//
// v1 error frames carry a bare string. In v2 sessions the MsgError body is
// a structured WireError{code, table, message} so clients can distinguish
// programmatically-actionable failures (unknown table, stale replica,
// unsupported request) without parsing prose.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol versions negotiated by the Hello handshake.
const (
	ProtocolV1 = 1
	ProtocolV2 = 2
	// MaxProtocol is the highest version this build speaks.
	MaxProtocol = ProtocolV2
)

// Capability bits carried in the Hello exchange (both directions). They
// are advisory: a peer that lacks a capability still answers the
// corresponding requests with a typed CodeUnsupported error, so callers
// that skip the check stay correct — the bits exist for diagnostics and
// topology introspection (is my upstream a serving peer?).
const (
	// CapPeerServe: this peer answers replication requests (snapshots,
	// deltas, shard maps) from its own replicated state — it is a
	// distribution-tier edge, not just a query server.
	CapPeerServe uint32 = 1 << 0
)

// EncodeHello builds the Hello body: the sender's maximum supported
// protocol version.
func EncodeHello(maxVersion uint32) []byte { return appendU32(nil, maxVersion) }

// EncodeHelloCaps builds a Hello (or HelloResp) body carrying the
// sender's protocol version and capability bits.
func EncodeHelloCaps(maxVersion, caps uint32) []byte {
	out := appendU32(nil, maxVersion)
	return appendU32(out, caps)
}

// DecodeHello parses a Hello (or HelloResp) body, ignoring any
// capability bits.
func DecodeHello(body []byte) (uint32, error) {
	v, _, err := DecodeHelloCaps(body)
	return v, err
}

// DecodeHelloCaps parses a Hello (or HelloResp) body. The capability
// word is optional: pre-capability peers sent a bare 4-byte version, so
// both shapes decode (caps = 0 for the short form). A capability-era
// hello sent to a strict pre-capability v2 server is answered with an
// error frame, which the dialer already treats as a v1 downgrade — so
// the extension degrades, never deadlocks.
func DecodeHelloCaps(body []byte) (version, caps uint32, err error) {
	r := &reader{data: body}
	version = r.u32("protocol version")
	if len(body) > 4 {
		caps = r.u32("capability bits")
	}
	if err := r.done(); err != nil {
		return 0, 0, err
	}
	if version == 0 {
		return 0, 0, errors.New("wire: protocol version 0")
	}
	return version, caps, nil
}

// WriteFrameV2 writes one v2 frame: u32 len | u8 type | u32 reqID | body.
func WriteFrameV2(w io.Writer, t MsgType, reqID uint32, body []byte) error {
	if len(body)+5 > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)+5))
	hdr[4] = byte(t)
	binary.BigEndian.PutUint32(hdr[5:9], reqID)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrameV2 reads one v2 frame, returning its type, request ID and body.
func ReadFrameV2(r io.Reader) (MsgType, uint32, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 5 || n > MaxFrameSize {
		return 0, 0, nil, fmt.Errorf("wire: v2 frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, fmt.Errorf("wire: short v2 frame: %w", err)
	}
	return MsgType(buf[0]), binary.BigEndian.Uint32(buf[1:5]), buf[5:], nil
}

// ErrCode classifies a remote failure so clients can react without
// parsing message text.
type ErrCode uint16

const (
	// CodeInternal is an unclassified server-side failure.
	CodeInternal ErrCode = iota + 1
	// CodeBadRequest marks a malformed or unparsable request.
	CodeBadRequest
	// CodeUnknownTable means the named table is not registered (central)
	// or not replicated (edge).
	CodeUnknownTable
	// CodeStaleReplica means the replica's version/epoch has diverged from
	// the history the request assumed; the caller must resynchronize.
	CodeStaleReplica
	// CodeUnsupported means the server does not handle the message type.
	CodeUnsupported
	// CodeDuplicateKey means an insert collided with an existing primary
	// key (reported per-op inside batch responses, or for single inserts).
	CodeDuplicateKey
	// CodeBehind means the serving peer's replicated state is no newer
	// than what the requester already holds (or descends from a different
	// epoch), so it has nothing useful to serve; the requester should
	// fail over to another source instead of spinning on empty deltas.
	CodeBehind
	// CodeDeltaGap means the serving peer is current but its relay cache
	// holds no delta covering the requester's version; the requester can
	// take a snapshot from this peer (catch-up) or fail over.
	CodeDeltaGap
	// CodeShardMoved means the request addressed a shard index that an
	// online split/merge has since re-numbered or retired; the caller
	// should refetch the shard map (a newer epoch) and re-route.
	CodeShardMoved
)

func (c ErrCode) String() string {
	switch c {
	case CodeInternal:
		return "internal"
	case CodeBadRequest:
		return "bad-request"
	case CodeUnknownTable:
		return "unknown-table"
	case CodeStaleReplica:
		return "stale-replica"
	case CodeUnsupported:
		return "unsupported"
	case CodeDuplicateKey:
		return "duplicate-key"
	case CodeBehind:
		return "behind"
	case CodeDeltaGap:
		return "delta-gap"
	case CodeShardMoved:
		return "shard-moved"
	}
	return fmt.Sprintf("ErrCode(%d)", uint16(c))
}

// Sentinel errors matched by errors.Is against decoded WireErrors, so
// application code can branch on the failure class regardless of which
// server produced it or how its message reads.
var (
	ErrUnknownTable = errors.New("wire: unknown table")
	ErrStaleReplica = errors.New("wire: stale replica")
	ErrUnsupported  = errors.New("wire: unsupported request")
	ErrDuplicateKey = errors.New("wire: duplicate key")
	ErrBehind       = errors.New("wire: serving peer behind requester")
	ErrDeltaGap     = errors.New("wire: peer relay cache gap")
	ErrShardMoved   = errors.New("wire: shard re-partitioned")
)

// WireError is the typed error frame body of protocol v2. It implements
// error, so servers can return one directly from a dispatch handler and
// clients receive it intact across the wire.
type WireError struct {
	Code  ErrCode
	Table string // the table involved, when meaningful
	Msg   string
}

func (e *WireError) Error() string {
	if e.Msg != "" {
		return e.Msg
	}
	if e.Table != "" {
		return fmt.Sprintf("%s: %q", e.Code, e.Table)
	}
	return e.Code.String()
}

// Is maps error codes onto the package sentinels for errors.Is.
func (e *WireError) Is(target error) bool {
	switch target {
	case ErrUnknownTable:
		return e.Code == CodeUnknownTable
	case ErrStaleReplica:
		return e.Code == CodeStaleReplica
	case ErrUnsupported:
		return e.Code == CodeUnsupported
	case ErrDuplicateKey:
		return e.Code == CodeDuplicateKey
	case ErrBehind:
		return e.Code == CodeBehind
	case ErrDeltaGap:
		return e.Code == CodeDeltaGap
	case ErrShardMoved:
		return e.Code == CodeShardMoved
	}
	return false
}

// Encode serializes the error body.
func (e *WireError) Encode() []byte {
	out := appendU32(nil, uint32(e.Code))
	out = appendStr(out, e.Table)
	return appendStr(out, e.Msg)
}

// DecodeWireError parses a v2 error frame body. Malformed bodies decode
// to CodeInternal with the raw bytes as the message, so a broken peer
// still yields a usable error instead of a decode failure.
func DecodeWireError(body []byte) *WireError {
	r := &reader{data: body}
	e := &WireError{Code: ErrCode(r.u32("error code"))}
	e.Table = r.str("error table")
	e.Msg = r.str("error message")
	if r.done() != nil {
		return &WireError{Code: CodeInternal, Msg: string(body)}
	}
	return e
}

// ToWireError coerces any error into a WireError for the v2 error frame:
// existing WireErrors pass through, everything else becomes CodeInternal
// with the error text.
func ToWireError(err error) *WireError {
	var we *WireError
	if errors.As(err, &we) {
		return we
	}
	return &WireError{Code: CodeInternal, Msg: err.Error()}
}

// Unsupported builds the typed error for an unhandled message type.
func Unsupported(server string, mt MsgType) *WireError {
	return &WireError{Code: CodeUnsupported, Msg: server + ": unsupported message " + mt.String()}
}

// UnknownTable builds the typed error for a missing table.
func UnknownTable(server, table string) *WireError {
	return &WireError{
		Code:  CodeUnknownTable,
		Table: table,
		Msg:   fmt.Sprintf("%s: unknown table %q", server, table),
	}
}

// StaleReplica builds the typed error for a version/epoch divergence.
func StaleReplica(table, msg string) *WireError {
	return &WireError{Code: CodeStaleReplica, Table: table, Msg: msg}
}

// DuplicateKey builds the typed error for a primary-key collision.
func DuplicateKey(table, msg string) *WireError {
	return &WireError{Code: CodeDuplicateKey, Table: table, Msg: msg}
}

// Behind builds the typed error a serving peer returns when its state is
// no newer than the requester's (staleness guard: never answer with a
// silent empty delta).
func Behind(table, msg string) *WireError {
	return &WireError{Code: CodeBehind, Table: table, Msg: msg}
}

// DeltaGap builds the typed error a serving peer returns when it is
// current but holds no relayable delta covering the requester's version.
func DeltaGap(table, msg string) *WireError {
	return &WireError{Code: CodeDeltaGap, Table: table, Msg: msg}
}

// ShardMoved builds the typed error for a shard index that an online
// partition transition has re-numbered or retired since the caller
// fetched its map.
func ShardMoved(table, msg string) *WireError {
	return &WireError{Code: CodeShardMoved, Table: table, Msg: msg}
}
