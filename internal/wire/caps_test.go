package wire

import (
	"errors"
	"testing"
)

func TestHelloCapsRoundTrip(t *testing.T) {
	v, caps, err := DecodeHelloCaps(EncodeHelloCaps(ProtocolV2, CapPeerServe))
	if err != nil || v != ProtocolV2 || caps != CapPeerServe {
		t.Fatalf("round trip: v=%d caps=%#x err=%v", v, caps, err)
	}
	// A pre-capability (4-byte) hello decodes with zero caps — old
	// dialers keep working against new servers.
	v, caps, err = DecodeHelloCaps(EncodeHello(ProtocolV2))
	if err != nil || v != ProtocolV2 || caps != 0 {
		t.Fatalf("legacy hello: v=%d caps=%#x err=%v", v, caps, err)
	}
	if _, _, err := DecodeHelloCaps([]byte{1, 2}); err == nil {
		t.Fatal("truncated hello accepted")
	}
	if _, _, err := DecodeHelloCaps(EncodeHelloCaps(0, 0)); err == nil {
		t.Fatal("version 0 accepted")
	}
	// DecodeHello tolerates the extended form, ignoring the caps word.
	if v, err := DecodeHello(EncodeHelloCaps(ProtocolV2, CapPeerServe)); err != nil || v != ProtocolV2 {
		t.Fatalf("DecodeHello on extended hello: v=%d err=%v", v, err)
	}
}

func TestPeerTierErrorCodes(t *testing.T) {
	cases := []*WireError{
		Behind("items", "edge: requester at v7, peer replica head at v7"),
		DeltaGap("items", "edge: no relayable delta from v2"),
	}
	sentinels := []error{ErrBehind, ErrDeltaGap}
	for i, we := range cases {
		got := DecodeWireError(we.Encode())
		if got.Code != we.Code || got.Table != we.Table || got.Msg != we.Msg {
			t.Fatalf("case %d: %+v decoded to %+v", i, we, got)
		}
		if !errors.Is(got, sentinels[i]) {
			t.Fatalf("case %d does not match its sentinel", i)
		}
		for j, s := range sentinels {
			if i != j && errors.Is(got, s) {
				t.Fatalf("case %d matched foreign sentinel %v", i, s)
			}
		}
		// Neither failover code is mistakable for the retryable or
		// staleness families the refresh loop also dispatches on.
		for _, s := range []error{ErrStaleReplica, ErrUnsupported, ErrUnknownTable} {
			if errors.Is(got, s) {
				t.Fatalf("case %d matched %v", i, s)
			}
		}
	}
	if CodeBehind.String() != "behind" || CodeDeltaGap.String() != "delta-gap" {
		t.Fatalf("code strings: %q, %q", CodeBehind.String(), CodeDeltaGap.String())
	}
}
