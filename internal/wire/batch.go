package wire

import (
	"errors"
	"fmt"

	"edgeauth/internal/schema"
)

// Batched inserts on the wire (protocol v2 extension).
//
// A BatchRequest ships N tuples for one table in a single frame; the
// central server applies them as one group commit — one WAL record, one
// fsync, one version bump, one node re-sign per dirtied tree node — and
// answers with typed per-op results, so a duplicate key in op 3 does not
// hide the success of ops 0-2. Servers predating the message answer with
// CodeUnsupported and clients fall back to per-tuple inserts.

// BatchRequest sends an insert batch to the central server.
type BatchRequest struct {
	Table  string
	Tuples []schema.Tuple
}

// Encode serializes the request.
func (b *BatchRequest) Encode() []byte {
	out := appendStr(nil, b.Table)
	out = appendU32(out, uint32(len(b.Tuples)))
	for _, tup := range b.Tuples {
		out = tup.Encode(out)
	}
	return out
}

// DecodeBatchRequest parses a BatchRequest.
func DecodeBatchRequest(body []byte) (*BatchRequest, error) {
	r := &reader{data: body}
	b := &BatchRequest{Table: r.str("table")}
	n := int(r.u32("tuple count"))
	if r.err != nil {
		return nil, r.err
	}
	if n > len(body) {
		return nil, errors.New("wire: implausible batch tuple count")
	}
	b.Tuples = make([]schema.Tuple, 0, n)
	for i := 0; i < n; i++ {
		tup, used, err := schema.DecodeTuple(body[r.off:])
		if err != nil {
			return nil, fmt.Errorf("wire: batch tuple %d: %w", i, err)
		}
		r.off += used
		b.Tuples = append(b.Tuples, tup)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}

// BatchOpResult is the outcome of one operation inside a batch.
type BatchOpResult struct {
	// OK reports whether the tuple was inserted.
	OK bool
	// Code/Msg describe the failure when OK is false.
	Code ErrCode
	Msg  string
}

// Err returns nil for successful ops and the typed error otherwise, so
// callers get the same errors.Is-matchable failures as single inserts.
func (r BatchOpResult) Err() error {
	if r.OK {
		return nil
	}
	return &WireError{Code: r.Code, Msg: r.Msg}
}

// BatchResponse carries one result per request tuple, index-aligned.
type BatchResponse struct {
	Results []BatchOpResult
}

// Encode serializes the response.
func (b *BatchResponse) Encode() []byte {
	out := appendU32(nil, uint32(len(b.Results)))
	for _, res := range b.Results {
		if res.OK {
			out = appendU8(out, 1)
			continue
		}
		out = appendU8(out, 0)
		out = appendU32(out, uint32(res.Code))
		out = appendStr(out, res.Msg)
	}
	return out
}

// DecodeBatchResponse parses a BatchResponse.
func DecodeBatchResponse(body []byte) (*BatchResponse, error) {
	r := &reader{data: body}
	n := int(r.u32("result count"))
	if r.err != nil {
		return nil, r.err
	}
	if n > len(body) {
		return nil, errors.New("wire: implausible batch result count")
	}
	b := &BatchResponse{Results: make([]BatchOpResult, 0, n)}
	for i := 0; i < n && r.err == nil; i++ {
		switch flag := r.u8("op ok flag"); flag {
		case 1:
			b.Results = append(b.Results, BatchOpResult{OK: true})
		case 0:
			code := r.u32("op error code")
			if r.err == nil && code > 0xFFFF {
				return nil, fmt.Errorf("wire: batch result %d has error code %d out of range", i, code)
			}
			res := BatchOpResult{Code: ErrCode(code)}
			res.Msg = r.str("op error message")
			b.Results = append(b.Results, res)
		default:
			if r.err == nil {
				return nil, fmt.Errorf("wire: batch result %d has flag %d", i, flag)
			}
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return b, nil
}
