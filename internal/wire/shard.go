package wire

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"edgeauth/internal/schema"
)

// Shard-scoped replication and query frames.
//
// A range-partitioned table is N independent VB-trees bound by a signed
// shard map (internal/shardmap). Replication and queries address one
// shard at a time:
//
//	edge   → central: ShardMapReq        (table)          → ShardMapResp (signed map)
//	edge   → central: ShardSnapshotReq   (table, shard)   → SnapshotResp
//	edge   → central: ShardDeltaReq      (table, shard,…) → DeltaResp
//	client → edge:    ShardMapReq        (table)          → ShardMapResp
//	client → edge:    ShardQueryReq      (shard, query)   → QueryResp
//
// Responses reuse the unsharded body codecs — a shard's snapshot, delta
// and query answer have exactly the shapes of a small table's. Shard
// deltas bind the shard index into the signed Table field (see
// ShardRef) so a delta for shard 0 cannot be replayed against shard 3.
//
// All five requests are v2-era messages: an unsharded peer answers
// them with a typed CodeUnsupported error (or a prose error on legacy
// v1), and the caller falls back to the single-tree protocol. That is
// the negotiated-compatibility story — no capability flags, just typed
// rejection plus fallback.

// ShardMapResp bodies are the shardmap.Signed encoding; the wire
// package treats them as opaque bytes so it does not depend on the
// shardmap package's types.

// ShardRef names one shard of a table inside signed payloads (delta
// signatures cover the Table field, so embedding the index there binds
// the delta to its shard).
func ShardRef(table string, shard uint32) string {
	return table + "#" + strconv.FormatUint(uint64(shard), 10)
}

// ParseShardRef splits a ShardRef back into table and shard index.
func ParseShardRef(ref string) (table string, shard uint32, err error) {
	i := strings.LastIndexByte(ref, '#')
	if i < 0 {
		return "", 0, fmt.Errorf("wire: %q is not a shard ref", ref)
	}
	n, err := strconv.ParseUint(ref[i+1:], 10, 32)
	if err != nil {
		return "", 0, fmt.Errorf("wire: bad shard index in %q: %w", ref, err)
	}
	return ref[:i], uint32(n), nil
}

// ShardSnapshotRequest asks the central server for one shard's full
// snapshot.
type ShardSnapshotRequest struct {
	Table string
	Shard uint32
}

// Encode serializes the request.
func (r *ShardSnapshotRequest) Encode() []byte {
	out := appendStr(nil, r.Table)
	return appendU32(out, r.Shard)
}

// DecodeShardSnapshotRequest parses a ShardSnapshotRequest.
func DecodeShardSnapshotRequest(body []byte) (*ShardSnapshotRequest, error) {
	r := &reader{data: body}
	q := &ShardSnapshotRequest{Table: r.str("table")}
	q.Shard = r.u32("shard")
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// ShardDeltaRequest asks the central server for the changes one shard
// replica is missing.
type ShardDeltaRequest struct {
	Table       string
	Shard       uint32
	FromVersion uint64
	Epoch       uint64
}

// Encode serializes the request.
func (r *ShardDeltaRequest) Encode() []byte {
	out := appendStr(nil, r.Table)
	out = appendU32(out, r.Shard)
	out = appendU64(out, r.FromVersion)
	return appendU64(out, r.Epoch)
}

// DecodeShardDeltaRequest parses a ShardDeltaRequest.
func DecodeShardDeltaRequest(body []byte) (*ShardDeltaRequest, error) {
	r := &reader{data: body}
	q := &ShardDeltaRequest{Table: r.str("table")}
	q.Shard = r.u32("shard")
	q.FromVersion = r.u64("from version")
	q.Epoch = r.u64("epoch")
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// ShardQueryRequest runs a selection/projection against one shard of a
// partitioned table. The edge anchors the VO at the shard's root
// (vbtree.Query.AnchorRoot) so the client can bind the answer to the
// verified shard map.
type ShardQueryRequest struct {
	Shard uint32
	Query *QueryRequest
}

// Encode serializes the request.
func (r *ShardQueryRequest) Encode() []byte {
	out := appendU32(nil, r.Shard)
	return appendBytes(out, r.Query.Encode())
}

// DecodeShardQueryRequest parses a ShardQueryRequest.
func DecodeShardQueryRequest(body []byte) (*ShardQueryRequest, error) {
	r := &reader{data: body}
	shard := r.u32("shard")
	qb := r.bytes("query")
	if err := r.done(); err != nil {
		return nil, err
	}
	q, err := DecodeQueryRequest(qb)
	if err != nil {
		return nil, err
	}
	return &ShardQueryRequest{Shard: shard, Query: q}, nil
}

// ShardQueryResponse is a shard answer plus the signed shard map the
// edge held when producing it. Serving the two together makes every
// answer self-binding: the client verifies the attached map and checks
// the VO anchors at the root digest it pins for the shard, with no
// window for the edge's refresh to slide between a separately-fetched
// map and the answer. SignedMap is an opaque shardmap.Signed encoding.
type ShardQueryResponse struct {
	Resp      *QueryResponse
	SignedMap []byte
}

// Encode serializes the response.
func (r *ShardQueryResponse) Encode() []byte {
	out := appendBytes(nil, r.Resp.Encode())
	return appendBytes(out, r.SignedMap)
}

// DecodeShardQueryResponse parses a ShardQueryResponse.
func DecodeShardQueryResponse(body []byte) (*ShardQueryResponse, error) {
	r := &reader{data: body}
	qb := r.bytes("query response")
	mb := r.bytes("signed map")
	if err := r.done(); err != nil {
		return nil, err
	}
	resp, err := DecodeQueryResponse(qb)
	if err != nil {
		return nil, err
	}
	return &ShardQueryResponse{Resp: resp, SignedMap: mb}, nil
}

// ReshardOpKind selects the partition transition an admin requests.
type ReshardOpKind uint8

const (
	// ReshardSplit splits one shard at a boundary (server-chosen median
	// when the request carries none).
	ReshardSplit ReshardOpKind = iota + 1
	// ReshardMerge merges shard Shard with its right neighbor Shard+1.
	ReshardMerge
)

func (k ReshardOpKind) String() string {
	switch k {
	case ReshardSplit:
		return "split"
	case ReshardMerge:
		return "merge"
	}
	return fmt.Sprintf("ReshardOpKind(%d)", uint8(k))
}

// ReshardRequest is the admin frame commanding an online partition
// transition at the central server. It is a manual override of the
// hot-shard detector: operators (or tests) split/merge a specific shard
// without waiting for the EWMA thresholds to trip.
type ReshardRequest struct {
	Table string
	Op    ReshardOpKind
	// Shard is the partition index to split, or the left index of the
	// pair to merge.
	Shard uint32
	// HasBoundary/Boundary optionally pin the split key; without it the
	// server splits at the shard's median key. Ignored for merges.
	HasBoundary bool
	Boundary    schema.Datum
}

// Encode serializes the request.
func (r *ReshardRequest) Encode() []byte {
	out := appendStr(nil, r.Table)
	out = appendU8(out, uint8(r.Op))
	out = appendU32(out, r.Shard)
	if r.HasBoundary {
		out = appendU8(out, 1)
		out = r.Boundary.Encode(out)
	} else {
		out = appendU8(out, 0)
	}
	return out
}

// DecodeReshardRequest parses a ReshardRequest.
func DecodeReshardRequest(body []byte) (*ReshardRequest, error) {
	r := &reader{data: body}
	q := &ReshardRequest{Table: r.str("table")}
	q.Op = ReshardOpKind(r.u8("reshard op"))
	q.Shard = r.u32("shard")
	if r.u8("boundary flag") == 1 && r.err == nil {
		v, used, err := schema.DecodeDatum(body[r.off:])
		if err != nil {
			return nil, err
		}
		r.off += used
		q.HasBoundary, q.Boundary = true, v
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if q.Op != ReshardSplit && q.Op != ReshardMerge {
		return nil, fmt.Errorf("wire: unknown reshard op %d", uint8(q.Op))
	}
	return q, nil
}

// ReshardResponse reports the committed transition: the new partition
// generation and shard count, so callers can poll maps until edges have
// caught up to MapEpoch.
type ReshardResponse struct {
	MapEpoch  uint64
	NumShards uint32
}

// Encode serializes the response.
func (r *ReshardResponse) Encode() []byte {
	out := appendU64(nil, r.MapEpoch)
	return appendU32(out, r.NumShards)
}

// DecodeReshardResponse parses a ReshardResponse.
func DecodeReshardResponse(body []byte) (*ReshardResponse, error) {
	r := &reader{data: body}
	q := &ReshardResponse{MapEpoch: r.u64("map epoch")}
	q.NumShards = r.u32("shard count")
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// ErrNotSharded is returned (inside a CodeUnsupported wire error) when a
// shard-scoped request names a single-tree table, or an unsharded
// request names a partitioned one.
var ErrNotSharded = errors.New("wire: table partitioning mismatch")

// NotSharded builds the typed error telling a peer to switch protocols
// for this table (sharded peers fall back on it, unsharded ones report
// it).
func NotSharded(server, table, msg string) *WireError {
	return &WireError{Code: CodeUnsupported, Table: table, Msg: server + ": " + msg}
}
