// Package wire defines the binary protocol spoken between clients, edge
// servers and the central server (the arrows of the paper's Figure 2):
//
//	client → edge:    QueryReq            (selection/projection over a table)
//	edge   → client:  QueryResp           (result set + verification object)
//	edge   → central: SnapshotReq         (pull "DB + VB-trees")
//	central→ edge:    SnapshotResp        (pages + tree metadata + version)
//	edge   → central: DeltaReq            (table + the replica's version)
//	central→ edge:    DeltaResp           (signed incremental update)
//	client → central: InsertReq/DeleteReq (updates go to the trusted server)
//	client → central: PubKeyReq           (the PKI stand-in: an authenticated
//	                                       channel to the signer's public key)
//
// # Delta propagation
//
// The paper propagates updates from the trusted central DBMS to edge
// servers periodically. Re-shipping a full snapshot per refresh is
// O(table); the delta frames ship only what changed:
//
//   - DeltaReq carries {table, fromVersion}, where fromVersion is the
//     table version the edge's replica currently reflects (versions are
//     bumped once per committed insert/delete at the central server, in
//     lockstep with the WAL's LSNs).
//   - DeltaResp carries {fromVersion, toVersion, tree metadata, the pages
//     dirtied by the ops in (fromVersion, toVersion]} plus a signature by
//     the central server over a hash of the delta content, so an edge
//     rejects corrupted or forged deltas before touching its replica.
//     Page payloads carry the VB-tree's signed digests, so a delta also
//     re-anchors client verification at the new root signature.
//   - When the central server's retained changelog no longer covers
//     fromVersion (retention window passed, or the server restarted),
//     DeltaResp has SnapshotNeeded set and the edge falls back to a full
//     SnapshotReq.
//
// Frames are u32 length | u8 type | body, big-endian, with a hard frame
// cap to bound allocation from untrusted peers.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// MsgType tags a frame.
type MsgType uint8

const (
	MsgError MsgType = iota + 1
	MsgQueryReq
	MsgQueryResp
	MsgSnapshotReq
	MsgSnapshotResp
	MsgListTablesReq
	MsgListTablesResp
	MsgPubKeyReq
	MsgPubKeyResp
	MsgSchemaReq
	MsgSchemaResp
	MsgInsertReq
	MsgInsertResp
	MsgDeleteReq
	MsgDeleteResp
	MsgVersionReq
	MsgVersionResp
	MsgDeltaReq
	MsgDeltaResp
	// MsgHello / MsgHelloResp negotiate the protocol version (see v2.go).
	// They are always exchanged in v1 framing, before the session's
	// framing is decided, so v1 peers can reject them gracefully.
	MsgHello
	MsgHelloResp
	// MsgBatchReq / MsgBatchResp carry a group-committed insert batch to
	// the central server and its typed per-op results back (see batch.go).
	MsgBatchReq
	MsgBatchResp
	// Shard-scoped frames for range-partitioned tables (see shard.go).
	// ShardMapResp carries a shardmap.Signed encoding; shard snapshots,
	// deltas and query answers reuse the unsharded response codecs.
	MsgShardMapReq
	MsgShardMapResp
	MsgShardSnapshotReq
	MsgShardDeltaReq
	MsgShardQueryReq
	MsgShardQueryResp
	// MsgReshardReq / MsgReshardResp carry an online partition-transition
	// command (split a hot shard, merge a cold pair) to the central
	// server's admin surface (see shard.go).
	MsgReshardReq
	MsgReshardResp
)

func (m MsgType) String() string {
	names := map[MsgType]string{
		MsgError: "error", MsgQueryReq: "query-req", MsgQueryResp: "query-resp",
		MsgSnapshotReq: "snapshot-req", MsgSnapshotResp: "snapshot-resp",
		MsgListTablesReq: "list-tables-req", MsgListTablesResp: "list-tables-resp",
		MsgPubKeyReq: "pubkey-req", MsgPubKeyResp: "pubkey-resp",
		MsgSchemaReq: "schema-req", MsgSchemaResp: "schema-resp",
		MsgInsertReq: "insert-req", MsgInsertResp: "insert-resp",
		MsgDeleteReq: "delete-req", MsgDeleteResp: "delete-resp",
		MsgVersionReq: "version-req", MsgVersionResp: "version-resp",
		MsgDeltaReq: "delta-req", MsgDeltaResp: "delta-resp",
		MsgHello: "hello", MsgHelloResp: "hello-resp",
		MsgBatchReq: "batch-req", MsgBatchResp: "batch-resp",
		MsgShardMapReq: "shard-map-req", MsgShardMapResp: "shard-map-resp",
		MsgShardSnapshotReq: "shard-snapshot-req",
		MsgShardDeltaReq:    "shard-delta-req",
		MsgShardQueryReq:    "shard-query-req",
		MsgShardQueryResp:   "shard-query-resp",
		MsgReshardReq:       "reshard-req",
		MsgReshardResp:      "reshard-resp",
	}
	if n, ok := names[m]; ok {
		return n
	}
	return fmt.Sprintf("MsgType(%d)", uint8(m))
}

// MaxFrameSize bounds a single frame (1 GiB) to keep a malicious peer from
// forcing unbounded allocation.
const MaxFrameSize = 1 << 30

// WriteFrame writes one frame.
func WriteFrame(w io.Writer, t MsgType, body []byte) error {
	if len(body)+1 > MaxFrameSize {
		return fmt.Errorf("wire: frame of %d bytes exceeds limit", len(body))
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(body)+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n < 1 || n > MaxFrameSize {
		return 0, nil, fmt.Errorf("wire: frame length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return MsgType(buf[0]), buf[1:], nil
}

// WriteError sends an error frame.
func WriteError(w io.Writer, err error) error {
	return WriteFrame(w, MsgError, []byte(err.Error()))
}

// AsError converts an error frame's body.
func AsError(body []byte) error { return errors.New(string(body)) }

// --- primitive encoding helpers shared by the message codecs ---

func appendU8(dst []byte, v uint8) []byte { return append(dst, v) }
func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}
func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}
func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}
func appendBytes(dst []byte, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

// reader is a cursor over a frame body.
type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u8(what string) uint8 {
	if r.err != nil || r.off+1 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := r.data[r.off]
	r.off++
	return v
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint32(r.data[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	if r.err != nil || r.off+8 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := binary.BigEndian.Uint64(r.data[r.off:])
	r.off += 8
	return v
}

func (r *reader) str(what string) string {
	n := int(r.u32(what))
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.fail(what)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes(what string) []byte {
	n := int(r.u32(what))
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.fail(what)
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.off:r.off+n])
	r.off += n
	return b
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.data)-r.off)
	}
	return nil
}
