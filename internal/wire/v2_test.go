package wire

import (
	"bytes"
	"errors"
	"testing"
)

func TestFrameV2RoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, MsgQueryReq, 42, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	mt, id, body, err := ReadFrameV2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgQueryReq || id != 42 || string(body) != "hello" {
		t.Fatalf("round trip: mt=%v id=%d body=%q", mt, id, body)
	}
}

func TestFrameV2EmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, MsgListTablesReq, 0xFFFFFFFF, nil); err != nil {
		t.Fatal(err)
	}
	mt, id, body, err := ReadFrameV2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgListTablesReq || id != 0xFFFFFFFF || len(body) != 0 {
		t.Fatalf("round trip: mt=%v id=%d body=%q", mt, id, body)
	}
}

func TestFrameV2RejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrameV2(&buf, MsgQueryReq, 7, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2]
	if _, _, _, err := ReadFrameV2(bytes.NewReader(short)); err == nil {
		t.Fatal("truncated v2 frame accepted")
	}
	// A v1 frame (too short for a request ID) is rejected too.
	var v1 bytes.Buffer
	if err := WriteFrame(&v1, MsgQueryReq, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadFrameV2(&v1); err == nil {
		t.Fatal("v1 frame accepted as v2")
	}
}

func TestHelloRoundTrip(t *testing.T) {
	v, err := DecodeHello(EncodeHello(ProtocolV2))
	if err != nil || v != ProtocolV2 {
		t.Fatalf("hello round trip: v=%d err=%v", v, err)
	}
	if _, err := DecodeHello([]byte{1, 2}); err == nil {
		t.Fatal("truncated hello accepted")
	}
	if _, err := DecodeHello(EncodeHello(0)); err == nil {
		t.Fatal("version 0 accepted")
	}
}

func TestWireErrorRoundTrip(t *testing.T) {
	cases := []*WireError{
		UnknownTable("edge", "ghost"),
		StaleReplica("items", "edge: delta starts at version 7, replica at 3"),
		Unsupported("central", MsgQueryReq),
		{Code: CodeInternal, Msg: "disk on fire"},
	}
	sentinels := []error{ErrUnknownTable, ErrStaleReplica, ErrUnsupported, nil}
	for i, we := range cases {
		got := DecodeWireError(we.Encode())
		if got.Code != we.Code || got.Table != we.Table || got.Msg != we.Msg {
			t.Fatalf("case %d: %+v decoded to %+v", i, we, got)
		}
		if s := sentinels[i]; s != nil && !errors.Is(got, s) {
			t.Fatalf("case %d: decoded error does not match sentinel %v", i, s)
		}
		// Codes never cross-match.
		for j, s := range sentinels {
			if s != nil && i != j && errors.Is(got, s) {
				t.Fatalf("case %d matched foreign sentinel %v", i, s)
			}
		}
	}
}

func TestWireErrorMalformedBody(t *testing.T) {
	e := DecodeWireError([]byte("garbage"))
	if e.Code != CodeInternal || e.Msg != "garbage" {
		t.Fatalf("malformed body decoded to %+v", e)
	}
}

func TestToWireError(t *testing.T) {
	we := UnknownTable("edge", "x")
	if ToWireError(we) != we {
		t.Fatal("WireError not passed through")
	}
	plain := errors.New("boom")
	got := ToWireError(plain)
	if got.Code != CodeInternal || got.Msg != "boom" {
		t.Fatalf("plain error coerced to %+v", got)
	}
}
