package wire

import (
	"bytes"
	"testing"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	body := []byte("hello frame")
	if err := WriteFrame(&buf, MsgQueryReq, body); err != nil {
		t.Fatal(err)
	}
	mt, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgQueryReq || !bytes.Equal(got, body) {
		t.Fatalf("frame = %v %q", mt, got)
	}
}

func TestFrameEmptyBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, MsgPubKeyReq, nil); err != nil {
		t.Fatal(err)
	}
	mt, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgPubKeyReq || len(body) != 0 {
		t.Fatalf("frame = %v %q", mt, body)
	}
}

func TestReadFrameRejectsGarbage(t *testing.T) {
	// Zero length.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 0})); err == nil {
		t.Fatal("zero-length frame accepted")
	}
	// Excessive length.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated body.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0, 0, 9, 1, 2})); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Truncated header.
	if _, _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestErrorFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteError(&buf, AsError([]byte("boom"))); err != nil {
		t.Fatal(err)
	}
	mt, body, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if mt != MsgError || AsError(body).Error() != "boom" {
		t.Fatalf("error frame = %v %q", mt, body)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgQueryReq.String() != "query-req" || MsgSnapshotResp.String() != "snapshot-resp" {
		t.Fatal("MsgType rendering")
	}
	if MsgType(200).String() == "" {
		t.Fatal("unknown type should render")
	}
}

func TestQueryRequestRoundTrip(t *testing.T) {
	req := &QueryRequest{
		Table: "items",
		Predicates: []query.Predicate{
			{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
			{Column: "cat", Op: query.OpEQ, Value: schema.Str("tools")},
		},
		Project: []string{"id", "cat"},
	}
	got, err := DecodeQueryRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "items" || len(got.Predicates) != 2 || len(got.Project) != 2 {
		t.Fatalf("decoded: %+v", got)
	}
	if got.Predicates[1].Op != query.OpEQ || !got.Predicates[1].Value.Equal(schema.Str("tools")) {
		t.Fatalf("predicate 1 = %v", got.Predicates[1])
	}
	if got.ProjectAll {
		t.Fatal("explicit projection flagged as all")
	}
}

func TestQueryRequestSelectStar(t *testing.T) {
	req := &QueryRequest{Table: "t", ProjectAll: true}
	got, err := DecodeQueryRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.ProjectAll || got.Project != nil {
		t.Fatalf("decoded: %+v", got)
	}
}

func TestQueryRequestRejectsCorrupt(t *testing.T) {
	req := &QueryRequest{Table: "t", ProjectAll: true}
	enc := req.Encode()
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodeQueryRequest(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	resp := &QueryResponse{
		Result: &vo.ResultSet{
			DB: "db", Table: "t", Columns: []string{"id"},
			Keys:   []schema.Datum{schema.Int64(1)},
			Tuples: []schema.Tuple{schema.NewTuple(schema.Int64(1))},
		},
		VO: &vo.VO{
			KeyVersion: 2, Timestamp: 99, TopLevel: 3,
			TopDigest: sig.Signature{1, 2, 3},
			DS:        []vo.Entry{{Sig: sig.Signature{4}, Lift: 2}},
			DP:        []sig.Signature{{5, 6}},
		},
	}
	got, err := DecodeQueryResponse(resp.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Table != "t" || len(got.Result.Tuples) != 1 {
		t.Fatalf("result: %+v", got.Result)
	}
	if got.VO.TopLevel != 3 || len(got.VO.DS) != 1 || got.VO.DS[0].Lift != 2 {
		t.Fatalf("vo: %+v", got.VO)
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := &schema.Schema{
		DB: "db", Table: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "v", Type: schema.TypeBytes},
		},
		Key: 0,
	}
	got, err := DecodeSchema(EncodeSchema(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "t" || len(got.Columns) != 2 || got.Columns[1].Type != schema.TypeBytes {
		t.Fatalf("decoded: %+v", got)
	}
	// An invalid schema must not decode.
	bad := *s
	bad.Key = 7
	if _, err := DecodeSchema(EncodeSchema(&bad)); err == nil {
		t.Fatal("invalid schema accepted")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{
		Schema: &schema.Schema{
			DB: "db", Table: "t",
			Columns: []schema.Column{{Name: "id", Type: schema.TypeInt64}},
			Key:     0,
		},
		AccParams:  AccParams{Size: 16, Exponent: 15, Mode: 0},
		Root:       7,
		Height:     3,
		RootSig:    []byte{9, 9, 9},
		PageSize:   4096,
		KeyVersion: 5,
		HeapPages:  []storage.PageID{1, 2, 3},
		PageIDs:    []storage.PageID{1, 2},
		PageData:   [][]byte{{0xAA}, {0xBB, 0xCC}},
	}
	got, err := DecodeSnapshot(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Root != 7 || got.Height != 3 || got.KeyVersion != 5 {
		t.Fatalf("meta: %+v", got)
	}
	if len(got.HeapPages) != 3 || got.HeapPages[2] != 3 {
		t.Fatalf("heap pages: %v", got.HeapPages)
	}
	if len(got.PageIDs) != 2 || !bytes.Equal(got.PageData[1], []byte{0xBB, 0xCC}) {
		t.Fatalf("pages: %v %v", got.PageIDs, got.PageData)
	}
	// Accumulator params reconstruct.
	acc, err := digest.New(got.AccParams.ToDigestParams())
	if err != nil {
		t.Fatal(err)
	}
	if acc.Len() != 16 || acc.Exponent() != 15 {
		t.Fatalf("acc params: len=%d e=%d", acc.Len(), acc.Exponent())
	}
}

func TestSnapshotRejectsCorrupt(t *testing.T) {
	s := &Snapshot{
		Schema: &schema.Schema{
			DB: "db", Table: "t",
			Columns: []schema.Column{{Name: "id", Type: schema.TypeInt64}},
		},
		PageIDs:  []storage.PageID{1},
		PageData: [][]byte{{1}},
	}
	enc := s.Encode()
	for cut := 1; cut < len(enc); cut += 7 {
		if _, err := DecodeSnapshot(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestAccParamsModBig(t *testing.T) {
	acc := digest.MustNew(digest.DefaultParams())
	a := AccParamsFrom(acc)
	if a.Mode != 0 || a.Size != 16 || len(a.Modulus) != 0 {
		t.Fatalf("Mod2K params: %+v", a)
	}
}

func TestInsertRequestRoundTrip(t *testing.T) {
	req := &InsertRequest{
		Table: "t",
		Tuple: schema.NewTuple(schema.Int64(1), schema.Str("x")),
	}
	got, err := DecodeInsertRequest(req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Table != "t" || len(got.Tuple.Values) != 2 || !got.Tuple.Values[1].Equal(schema.Str("x")) {
		t.Fatalf("decoded: %+v", got)
	}
	// Trailing garbage rejected.
	if _, err := DecodeInsertRequest(append(req.Encode(), 0xEE)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestDeleteRequestRoundTrip(t *testing.T) {
	cases := []*DeleteRequest{
		{Table: "t", HasLo: true, Lo: schema.Int64(5), HasHi: true, Hi: schema.Int64(10)},
		{Table: "t", HasLo: true, Lo: schema.Int64(5)},
		{Table: "t", HasHi: true, Hi: schema.Int64(10)},
		{Table: "t"},
	}
	for i, req := range cases {
		got, err := DecodeDeleteRequest(req.Encode())
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.HasLo != req.HasLo || got.HasHi != req.HasHi {
			t.Fatalf("case %d: flags mismatch", i)
		}
		if got.HasLo && !got.Lo.Equal(req.Lo) {
			t.Fatalf("case %d: lo mismatch", i)
		}
		if got.HasHi && !got.Hi.Equal(req.Hi) {
			t.Fatalf("case %d: hi mismatch", i)
		}
	}
}

func TestStringListRoundTrip(t *testing.T) {
	in := []string{"users", "orders", "user_orders"}
	got, err := DecodeStringList(EncodeStringList(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != "user_orders" {
		t.Fatalf("decoded: %v", got)
	}
	empty, err := DecodeStringList(EncodeStringList(nil))
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty list: %v %v", empty, err)
	}
}

func TestU64RoundTrip(t *testing.T) {
	got, err := DecodeU64(EncodeU64(123456789))
	if err != nil || got != 123456789 {
		t.Fatalf("u64 round trip: %d %v", got, err)
	}
	if _, err := DecodeU64([]byte{1, 2}); err == nil {
		t.Fatal("short u64 accepted")
	}
	if _, err := DecodeU64(append(EncodeU64(1), 0)); err == nil {
		t.Fatal("long u64 accepted")
	}
}
