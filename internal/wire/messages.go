package wire

import (
	"errors"
	"fmt"
	"math/big"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// QueryRequest asks an edge server to run a selection/projection.
type QueryRequest struct {
	Table      string
	Predicates []query.Predicate
	Project    []string // nil = all columns
	ProjectAll bool     // true when Project is nil (distinguishes SELECT *)
}

// Encode serializes the request.
func (q *QueryRequest) Encode() []byte {
	out := appendStr(nil, q.Table)
	out = appendU32(out, uint32(len(q.Predicates)))
	for _, p := range q.Predicates {
		out = appendStr(out, p.Column)
		out = appendU8(out, uint8(p.Op))
		out = p.Value.Encode(out)
	}
	if q.ProjectAll || q.Project == nil {
		out = appendU8(out, 1)
		return out
	}
	out = appendU8(out, 0)
	out = appendU32(out, uint32(len(q.Project)))
	for _, c := range q.Project {
		out = appendStr(out, c)
	}
	return out
}

// DecodeQueryRequest parses a QueryRequest.
func DecodeQueryRequest(body []byte) (*QueryRequest, error) {
	r := &reader{data: body}
	q := &QueryRequest{Table: r.str("table")}
	n := int(r.u32("predicate count"))
	if r.err == nil && n > len(body) {
		return nil, errors.New("wire: implausible predicate count")
	}
	for i := 0; i < n && r.err == nil; i++ {
		col := r.str("predicate column")
		op := query.Op(r.u8("predicate op"))
		if r.err != nil {
			break
		}
		d, used, err := schema.DecodeDatum(r.data[r.off:])
		if err != nil {
			return nil, fmt.Errorf("wire: predicate %d literal: %w", i, err)
		}
		r.off += used
		q.Predicates = append(q.Predicates, query.Predicate{Column: col, Op: op, Value: d})
	}
	all := r.u8("projection flag")
	if all == 1 {
		q.ProjectAll = true
	} else {
		pn := int(r.u32("projection count"))
		if r.err == nil && pn > len(body) {
			return nil, errors.New("wire: implausible projection count")
		}
		for i := 0; i < pn && r.err == nil; i++ {
			q.Project = append(q.Project, r.str("projection column"))
		}
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return q, nil
}

// QueryResponse carries the verifiable answer.
type QueryResponse struct {
	Result *vo.ResultSet
	VO     *vo.VO
}

// Encode serializes the response.
func (q *QueryResponse) Encode() []byte {
	rs := q.Result.Encode(nil)
	vb := q.VO.Encode(nil)
	out := appendBytes(nil, rs)
	out = appendBytes(out, vb)
	return out
}

// DecodeQueryResponse parses a QueryResponse.
func DecodeQueryResponse(body []byte) (*QueryResponse, error) {
	r := &reader{data: body}
	rsb := r.bytes("result set")
	vb := r.bytes("verification object")
	if err := r.done(); err != nil {
		return nil, err
	}
	rs, _, err := vo.DecodeResultSet(rsb)
	if err != nil {
		return nil, err
	}
	w, _, err := vo.DecodeVO(vb)
	if err != nil {
		return nil, err
	}
	return &QueryResponse{Result: rs, VO: w}, nil
}

// Snapshot replicates a table and its VB-tree to an edge server: the raw
// pages (tree + heap), the tree metadata, the heap page list, the schema
// and the accumulator parameters.
type Snapshot struct {
	Schema    *schema.Schema
	AccParams AccParams
	Root      storage.PageID
	Height    uint32
	RootSig   []byte
	PageSize  uint32
	HeapPages []storage.PageID
	// Pages holds (id, content) for every live page.
	PageIDs  []storage.PageID
	PageData [][]byte
	// KeyVersion is the signing-key version in force.
	KeyVersion uint32
	// Scheme is the signature scheme (sig.Scheme) the key named by
	// KeyVersion uses; edges carry it into the key registry so clients
	// resolve the right verification algorithm.
	Scheme uint8
	// Version is the table's update version at capture time; edges record
	// it so later refreshes can request a delta from this point.
	Version uint64
	// Epoch identifies the table incarnation (fresh per AddTable), so a
	// rebuilt central cannot serve deltas against a divergent history.
	Epoch uint64
}

// AccParams serializes digest.Params across the wire.
type AccParams struct {
	Size     uint32
	Exponent int64
	Mode     uint8
	Modulus  []byte // empty for Mod2K
}

// ToDigestParams converts to digest.Params.
func (a AccParams) ToDigestParams() digest.Params {
	p := digest.Params{
		Size:     int(a.Size),
		Exponent: a.Exponent,
		Mode:     digest.Mode(a.Mode),
	}
	if len(a.Modulus) > 0 {
		p.Modulus = new(big.Int).SetBytes(a.Modulus)
	}
	return p
}

// AccParamsFrom captures an accumulator's parameters.
func AccParamsFrom(acc *digest.Accumulator) AccParams {
	a := AccParams{
		Size:     uint32(acc.Len()),
		Exponent: acc.Exponent(),
		Mode:     uint8(acc.Mode()),
	}
	if acc.Mode() == digest.ModBig {
		a.Modulus = acc.Modulus().Bytes()
		a.Size = 0 // derived from the modulus on the far side
	}
	return a
}

// EncodeSchema serializes a schema.
func EncodeSchema(s *schema.Schema) []byte {
	out := appendStr(nil, s.DB)
	out = appendStr(out, s.Table)
	out = appendU32(out, uint32(len(s.Columns)))
	for _, c := range s.Columns {
		out = appendStr(out, c.Name)
		out = appendU8(out, uint8(c.Type))
	}
	out = appendU32(out, uint32(s.Key))
	return out
}

// DecodeSchema parses a schema and validates it.
func DecodeSchema(body []byte) (*schema.Schema, error) {
	r := &reader{data: body}
	s, err := decodeSchemaAt(r)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

func decodeSchemaAt(r *reader) (*schema.Schema, error) {
	s := &schema.Schema{DB: r.str("db"), Table: r.str("table")}
	n := int(r.u32("column count"))
	if r.err == nil && n > len(r.data) {
		return nil, errors.New("wire: implausible column count")
	}
	for i := 0; i < n && r.err == nil; i++ {
		name := r.str("column name")
		typ := schema.Type(r.u8("column type"))
		s.Columns = append(s.Columns, schema.Column{Name: name, Type: typ})
	}
	s.Key = int(r.u32("key index"))
	if r.err != nil {
		return nil, r.err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Encode serializes the snapshot.
func (s *Snapshot) Encode() []byte {
	out := appendBytes(nil, EncodeSchema(s.Schema))
	out = appendU32(out, s.AccParams.Size)
	out = appendU64(out, uint64(s.AccParams.Exponent))
	out = appendU8(out, s.AccParams.Mode)
	out = appendBytes(out, s.AccParams.Modulus)
	out = appendU32(out, uint32(s.Root))
	out = appendU32(out, s.Height)
	out = appendBytes(out, s.RootSig)
	out = appendU32(out, s.PageSize)
	out = appendU32(out, s.KeyVersion)
	out = appendU8(out, s.Scheme)
	out = appendU64(out, s.Version)
	out = appendU64(out, s.Epoch)
	out = appendU32(out, uint32(len(s.HeapPages)))
	for _, p := range s.HeapPages {
		out = appendU32(out, uint32(p))
	}
	out = appendU32(out, uint32(len(s.PageIDs)))
	for i, id := range s.PageIDs {
		out = appendU32(out, uint32(id))
		out = appendBytes(out, s.PageData[i])
	}
	return out
}

// DecodeSnapshot parses a snapshot.
func DecodeSnapshot(body []byte) (*Snapshot, error) {
	r := &reader{data: body}
	schBlob := r.bytes("schema")
	if r.err != nil {
		return nil, r.err
	}
	sch, err := DecodeSchema(schBlob)
	if err != nil {
		return nil, err
	}
	s := &Snapshot{Schema: sch}
	s.AccParams.Size = r.u32("acc size")
	s.AccParams.Exponent = int64(r.u64("acc exponent"))
	s.AccParams.Mode = r.u8("acc mode")
	s.AccParams.Modulus = r.bytes("acc modulus")
	s.Root = storage.PageID(r.u32("root"))
	s.Height = r.u32("height")
	s.RootSig = r.bytes("root sig")
	s.PageSize = r.u32("page size")
	s.KeyVersion = r.u32("key version")
	s.Scheme = r.u8("signature scheme")
	s.Version = r.u64("table version")
	s.Epoch = r.u64("table epoch")
	hn := int(r.u32("heap page count"))
	if r.err == nil && hn > len(body) {
		return nil, errors.New("wire: implausible heap page count")
	}
	for i := 0; i < hn && r.err == nil; i++ {
		s.HeapPages = append(s.HeapPages, storage.PageID(r.u32("heap page")))
	}
	pn := int(r.u32("page count"))
	if r.err == nil && pn > len(body) {
		return nil, errors.New("wire: implausible page count")
	}
	for i := 0; i < pn && r.err == nil; i++ {
		id := storage.PageID(r.u32("page id"))
		data := r.bytes("page data")
		s.PageIDs = append(s.PageIDs, id)
		s.PageData = append(s.PageData, data)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// InsertRequest sends a tuple insert to the central server.
type InsertRequest struct {
	Table string
	Tuple schema.Tuple
}

// Encode serializes the request.
func (i *InsertRequest) Encode() []byte {
	out := appendStr(nil, i.Table)
	return i.Tuple.Encode(out)
}

// DecodeInsertRequest parses an InsertRequest.
func DecodeInsertRequest(body []byte) (*InsertRequest, error) {
	r := &reader{data: body}
	tbl := r.str("table")
	if r.err != nil {
		return nil, r.err
	}
	tup, used, err := schema.DecodeTuple(body[r.off:])
	if err != nil {
		return nil, err
	}
	if r.off+used != len(body) {
		return nil, errors.New("wire: trailing bytes in insert request")
	}
	return &InsertRequest{Table: tbl, Tuple: tup}, nil
}

// DeleteRequest sends a key-range delete to the central server.
type DeleteRequest struct {
	Table string
	HasLo bool
	Lo    schema.Datum
	HasHi bool
	Hi    schema.Datum
}

// Encode serializes the request.
func (d *DeleteRequest) Encode() []byte {
	out := appendStr(nil, d.Table)
	if d.HasLo {
		out = appendU8(out, 1)
		out = d.Lo.Encode(out)
	} else {
		out = appendU8(out, 0)
	}
	if d.HasHi {
		out = appendU8(out, 1)
		out = d.Hi.Encode(out)
	} else {
		out = appendU8(out, 0)
	}
	return out
}

// DecodeDeleteRequest parses a DeleteRequest.
func DecodeDeleteRequest(body []byte) (*DeleteRequest, error) {
	r := &reader{data: body}
	d := &DeleteRequest{Table: r.str("table")}
	if r.u8("lo flag") == 1 && r.err == nil {
		v, used, err := schema.DecodeDatum(body[r.off:])
		if err != nil {
			return nil, err
		}
		r.off += used
		d.HasLo, d.Lo = true, v
	}
	if r.u8("hi flag") == 1 && r.err == nil {
		v, used, err := schema.DecodeDatum(body[r.off:])
		if err != nil {
			return nil, err
		}
		r.off += used
		d.HasHi, d.Hi = true, v
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}

// SchemaResponse tells a client how to verify results for a table: the
// schema, the accumulator parameters, and the signing-key version in
// force.
type SchemaResponse struct {
	Schema     *schema.Schema
	AccParams  AccParams
	KeyVersion uint32
	// Scheme is the signature scheme (sig.Scheme) of the key in force.
	Scheme uint8
}

// Encode serializes the response.
func (s *SchemaResponse) Encode() []byte {
	out := appendBytes(nil, EncodeSchema(s.Schema))
	out = appendU32(out, s.AccParams.Size)
	out = appendU64(out, uint64(s.AccParams.Exponent))
	out = appendU8(out, s.AccParams.Mode)
	out = appendBytes(out, s.AccParams.Modulus)
	out = appendU32(out, s.KeyVersion)
	out = appendU8(out, s.Scheme)
	return out
}

// DecodeSchemaResponse parses a SchemaResponse.
func DecodeSchemaResponse(body []byte) (*SchemaResponse, error) {
	r := &reader{data: body}
	blob := r.bytes("schema")
	if r.err != nil {
		return nil, r.err
	}
	sch, err := DecodeSchema(blob)
	if err != nil {
		return nil, err
	}
	s := &SchemaResponse{Schema: sch}
	s.AccParams.Size = r.u32("acc size")
	s.AccParams.Exponent = int64(r.u64("acc exponent"))
	s.AccParams.Mode = r.u8("acc mode")
	s.AccParams.Modulus = r.bytes("acc modulus")
	s.KeyVersion = r.u32("key version")
	s.Scheme = r.u8("signature scheme")
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// EncodeStringList / DecodeStringList serve ListTablesResp.
func EncodeStringList(ss []string) []byte {
	out := appendU32(nil, uint32(len(ss)))
	for _, s := range ss {
		out = appendStr(out, s)
	}
	return out
}

// DecodeStringList parses a string list.
func DecodeStringList(body []byte) ([]string, error) {
	r := &reader{data: body}
	n := int(r.u32("count"))
	if r.err == nil && n > len(body) {
		return nil, errors.New("wire: implausible list length")
	}
	out := make([]string, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.str("item"))
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeU64 / DecodeU64 serve DeleteResp (count) and VersionResp.
func EncodeU64(v uint64) []byte { return appendU64(nil, v) }

// DecodeU64 parses an 8-byte integer body.
func DecodeU64(body []byte) (uint64, error) {
	r := &reader{data: body}
	v := r.u64("value")
	if err := r.done(); err != nil {
		return 0, err
	}
	return v, nil
}
