package wire

import (
	"crypto/sha256"
	"errors"

	"edgeauth/internal/storage"
)

// DeltaRequest asks the central server for the changes a replica is
// missing: everything committed after FromVersion. Epoch identifies the
// table incarnation the replica descends from; versions are only
// comparable within one epoch, so a mismatch (central restarted and
// rebuilt the table) forces a snapshot instead of a divergent delta.
type DeltaRequest struct {
	Table       string
	FromVersion uint64
	Epoch       uint64
}

// Encode serializes the request.
func (d *DeltaRequest) Encode() []byte {
	out := appendStr(nil, d.Table)
	out = appendU64(out, d.FromVersion)
	return appendU64(out, d.Epoch)
}

// DecodeDeltaRequest parses a DeltaRequest.
func DecodeDeltaRequest(body []byte) (*DeltaRequest, error) {
	r := &reader{data: body}
	d := &DeltaRequest{Table: r.str("table")}
	d.FromVersion = r.u64("from version")
	d.Epoch = r.u64("epoch")
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}

// Delta is an incremental replica update: the pages dirtied by the ops in
// (FromVersion, ToVersion], the tree metadata they anchor to, and the
// central server's signature over the whole payload.
//
// When SnapshotNeeded is set the central server's retained changelog no
// longer covers FromVersion; every other content field is empty and the
// edge must fall back to a full snapshot.
type Delta struct {
	Table          string
	FromVersion    uint64
	ToVersion      uint64
	Epoch          uint64
	SnapshotNeeded bool

	Root      storage.PageID
	Height    uint32
	RootSig   []byte
	HeapPages []storage.PageID
	// NumPages is the pager's page count after the ops, so the edge can
	// extend its page address space before overlaying the changed pages.
	NumPages uint32
	PageIDs  []storage.PageID
	PageData [][]byte
	// KeyVersion is the signing-key version in force at ToVersion.
	KeyVersion uint32
	// Scheme is the signature scheme (sig.Scheme) of that key. It lives
	// in the signed core, so a relay cannot flip a replica to a weaker
	// interpretation of the same key version.
	Scheme uint8

	// Sig is the central server's signature over SigPayload(); edges
	// verify it with the public key before applying the delta.
	Sig []byte
}

// encodeCore serializes everything except the trailing signature — the
// bytes the signature covers.
func (d *Delta) encodeCore() []byte {
	out := appendStr(nil, d.Table)
	out = appendU64(out, d.FromVersion)
	out = appendU64(out, d.ToVersion)
	out = appendU64(out, d.Epoch)
	if d.SnapshotNeeded {
		out = appendU8(out, 1)
	} else {
		out = appendU8(out, 0)
	}
	out = appendU32(out, uint32(d.Root))
	out = appendU32(out, d.Height)
	out = appendBytes(out, d.RootSig)
	out = appendU32(out, uint32(len(d.HeapPages)))
	for _, p := range d.HeapPages {
		out = appendU32(out, uint32(p))
	}
	out = appendU32(out, d.NumPages)
	out = appendU32(out, d.KeyVersion)
	out = appendU8(out, d.Scheme)
	out = appendU32(out, uint32(len(d.PageIDs)))
	for i, id := range d.PageIDs {
		out = appendU32(out, uint32(id))
		out = appendBytes(out, d.PageData[i])
	}
	return out
}

// SigPayload is the digest the central server signs: SHA-256 over the
// core encoding, so the signature commits to every content field.
func (d *Delta) SigPayload() []byte {
	sum := sha256.Sum256(d.encodeCore())
	return sum[:]
}

// SigPayloadOfBody computes the signed digest directly from the received
// frame body the delta was decoded from: the core bytes are everything
// before the trailing signature field, so no re-serialization is needed.
func (d *Delta) SigPayloadOfBody(body []byte) ([]byte, error) {
	n := len(body) - 4 - len(d.Sig)
	if n < 0 {
		return nil, errors.New("wire: delta body shorter than its signature field")
	}
	sum := sha256.Sum256(body[:n])
	return sum[:], nil
}

// Encode serializes the delta (core + signature).
func (d *Delta) Encode() []byte {
	out := d.encodeCore()
	return appendBytes(out, d.Sig)
}

// DecodeDelta parses a Delta.
func DecodeDelta(body []byte) (*Delta, error) {
	r := &reader{data: body}
	d := &Delta{Table: r.str("table")}
	d.FromVersion = r.u64("from version")
	d.ToVersion = r.u64("to version")
	d.Epoch = r.u64("epoch")
	d.SnapshotNeeded = r.u8("snapshot-needed flag") == 1
	d.Root = storage.PageID(r.u32("root"))
	d.Height = r.u32("height")
	d.RootSig = r.bytes("root sig")
	hn := int(r.u32("heap page count"))
	if r.err == nil && hn > len(body) {
		return nil, errors.New("wire: implausible heap page count")
	}
	for i := 0; i < hn && r.err == nil; i++ {
		d.HeapPages = append(d.HeapPages, storage.PageID(r.u32("heap page")))
	}
	d.NumPages = r.u32("page count after ops")
	d.KeyVersion = r.u32("key version")
	d.Scheme = r.u8("signature scheme")
	pn := int(r.u32("changed page count"))
	if r.err == nil && pn > len(body) {
		return nil, errors.New("wire: implausible changed page count")
	}
	for i := 0; i < pn && r.err == nil; i++ {
		id := storage.PageID(r.u32("page id"))
		data := r.bytes("page data")
		d.PageIDs = append(d.PageIDs, id)
		d.PageData = append(d.PageData, data)
	}
	d.Sig = r.bytes("delta sig")
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}
