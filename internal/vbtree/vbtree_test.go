package vbtree

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signer(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

func testSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "edgedb",
		Table: "orders",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "customer", Type: schema.TypeString},
			{Name: "amount", Type: schema.TypeFloat64},
			{Name: "notes", Type: schema.TypeString},
		},
		Key: 0,
	}
}

func mkTuple(i int) schema.Tuple {
	return schema.NewTuple(
		schema.Int64(int64(i)),
		schema.Str(fmt.Sprintf("cust-%03d", i%7)),
		schema.Float64(float64(i)*1.5),
		schema.Str(fmt.Sprintf("note for order %d", i)),
	)
}

type harness struct {
	tree *Tree
	ver  *verify.Verifier
	key  *sig.PrivateKey
	cfg  Config
}

// newHarness builds a VB-tree over n sequential tuples with small pages so
// even modest n produces a multi-level tree.
func newHarness(t testing.TB, n, pageSize int, withLocks bool) *harness {
	t.Helper()
	k := signer(t)
	mem, err := storage.NewMemPager(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := storage.NewBufferPool(mem, 8192)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := storage.NewHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	acc := digest.MustNew(digest.DefaultParams())
	cfg := Config{
		Pool:   bp,
		Heap:   heap,
		Schema: testSchema(),
		Acc:    acc,
		Signer: k,
		Pub:    k.Public(),
		Now:    func() int64 { return 1_700_000_000 },
	}
	if withLocks {
		cfg.Locks = lock.NewManager(0)
	}
	tuples := make([]schema.Tuple, n)
	for i := 0; i < n; i++ {
		tuples[i] = mkTuple(i)
	}
	tree, err := Build(cfg, tuples, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		tree: tree,
		// The tree's clock is pinned above, so the verifier's clock pins to
		// the same instant (freshness is e2e-tested in verify and tamper).
		ver: &verify.Verifier{Key: k.Public(), Acc: acc, Schema: cfg.Schema,
			Now: func() int64 { return 1_700_000_000 }},
		key: k,
		cfg: cfg,
	}
}

func i64(v int) *schema.Datum {
	d := schema.Int64(int64(v))
	return &d
}

func (h *harness) query(t testing.TB, q Query) (*vo.ResultSet, *vo.VO) {
	t.Helper()
	rs, w, err := h.tree.RunQuery(context.Background(), q)
	if err != nil {
		t.Fatalf("RunQuery: %v", err)
	}
	return rs, w
}

func (h *harness) mustVerify(t testing.TB, rs *vo.ResultSet, w *vo.VO) {
	t.Helper()
	if err := h.ver.Verify(rs, w); err != nil {
		t.Fatalf("Verify rejected an authentic result: %v", err)
	}
}

func TestBuildShape(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	st, err := h.tree.Stats(8)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 300 {
		t.Fatalf("Entries = %d, want 300", st.Entries)
	}
	if st.Height < 2 {
		t.Fatalf("expected multi-level tree, height = %d", st.Height)
	}
	if st.Height != h.tree.Height() {
		t.Fatalf("walked height %d != recorded height %d", st.Height, h.tree.Height())
	}
	if h.tree.Root() == storage.InvalidPageID {
		t.Fatal("invalid root")
	}
	if len(h.tree.RootSig()) == 0 {
		t.Fatal("missing root signature")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	h := newHarness(t, 0, 1024, false)
	// Unsorted tuples.
	if _, err := Build(h.cfg, []schema.Tuple{mkTuple(2), mkTuple(1)}, 1.0); err == nil {
		t.Fatal("unsorted build accepted")
	}
	// Duplicate keys.
	if _, err := Build(h.cfg, []schema.Tuple{mkTuple(1), mkTuple(1)}, 1.0); err == nil {
		t.Fatal("duplicate build accepted")
	}
	// Bad fill.
	if _, err := Build(h.cfg, nil, 0); err == nil {
		t.Fatal("zero fill accepted")
	}
	// Wrong column type.
	bad := mkTuple(1)
	bad.Values[2] = schema.Str("not a float")
	if _, err := Build(h.cfg, []schema.Tuple{bad}, 1.0); err == nil {
		t.Fatal("mistyped tuple accepted")
	}
	// No signer.
	cfg := h.cfg
	cfg.Signer = nil
	if _, err := Build(cfg, nil, 1.0); err != ErrReadOnly {
		t.Fatalf("signerless build: %v, want ErrReadOnly", err)
	}
}

func TestSearch(t *testing.T) {
	h := newHarness(t, 200, 1024, false)
	st, found, err := h.tree.Search(schema.Int64(57))
	if err != nil || !found {
		t.Fatalf("Search(57): found=%v err=%v", found, err)
	}
	if !st.Tuple.Values[0].Equal(schema.Int64(57)) {
		t.Fatalf("wrong tuple: %v", st.Tuple)
	}
	if err := h.ver.VerifyTuple(st, mustTupleSig(t, h, 57), h.key.Public()); err != nil {
		t.Fatalf("VerifyTuple: %v", err)
	}
	if _, found, _ := h.tree.Search(schema.Int64(9999)); found {
		t.Fatal("found a key that does not exist")
	}
}

// mustTupleSig digs the signed tuple digest out of the leaf for key i.
func mustTupleSig(t *testing.T, h *harness, i int) sig.Signature {
	t.Helper()
	kb := schema.Int64(int64(i)).KeyBytes()
	pid := h.tree.Root()
	for {
		pt, err := h.tree.pageType(pid)
		if err != nil {
			t.Fatal(err)
		}
		if pt == storage.PageVBLeaf {
			n, err := h.tree.fetchLeaf(pid)
			if err != nil {
				t.Fatal(err)
			}
			j := n.search(kb)
			if j >= len(n.keys) || compare(n.keys[j], kb) != 0 {
				t.Fatalf("key %d not in leaf", i)
			}
			return n.sigs[j]
		}
		n, err := h.tree.fetchInternal(pid)
		if err != nil {
			t.Fatal(err)
		}
		pid = n.children[n.childIndex(kb)]
	}
}

func TestScanAll(t *testing.T) {
	h := newHarness(t, 150, 1024, false)
	all, err := h.tree.ScanAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 150 {
		t.Fatalf("ScanAll = %d tuples, want 150", len(all))
	}
	for i, st := range all {
		if !st.Tuple.Values[0].Equal(schema.Int64(int64(i))) {
			t.Fatalf("position %d holds key %v", i, st.Tuple.Values[0])
		}
	}
}

func TestRangeQueryVerifies(t *testing.T) {
	h := newHarness(t, 500, 1024, false)
	cases := []struct {
		name   string
		lo, hi *schema.Datum
		want   int
	}{
		{"mid range", i64(100), i64(199), 100},
		{"single tuple", i64(42), i64(42), 1},
		{"full table", nil, nil, 500},
		{"prefix", nil, i64(9), 10},
		{"suffix", i64(490), nil, 10},
		{"within one leaf", i64(10), i64(12), 3},
		{"empty range", i64(700), i64(800), 0},
		{"span two leaves", i64(18), i64(25), 8},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rs, w := h.query(t, Query{Lo: c.lo, Hi: c.hi})
			if len(rs.Tuples) != c.want {
				t.Fatalf("got %d tuples, want %d", len(rs.Tuples), c.want)
			}
			h.mustVerify(t, rs, w)
		})
	}
}

func TestProjectionVerifies(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(50), Hi: i64(80), Project: []string{"id", "amount"}})
	if len(rs.Tuples) != 31 {
		t.Fatalf("got %d tuples", len(rs.Tuples))
	}
	if len(rs.Columns) != 2 {
		t.Fatalf("columns = %v", rs.Columns)
	}
	// 2 filtered attributes per tuple.
	if len(w.DP) != 31*2 {
		t.Fatalf("DP size = %d, want 62", len(w.DP))
	}
	h.mustVerify(t, rs, w)

	// Projection excluding the key column still verifies (keys ride along).
	rs2, w2 := h.query(t, Query{Lo: i64(50), Hi: i64(60), Project: []string{"customer"}})
	if len(w2.DP) != 11*3 {
		t.Fatalf("DP size = %d, want 33", len(w2.DP))
	}
	h.mustVerify(t, rs2, w2)
}

func TestProjectionValidation(t *testing.T) {
	h := newHarness(t, 50, 1024, false)
	if _, _, err := h.tree.RunQuery(context.Background(), Query{Project: []string{"ghost"}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, _, err := h.tree.RunQuery(context.Background(), Query{Project: []string{}}); err == nil {
		t.Fatal("empty projection accepted")
	}
	if _, _, err := h.tree.RunQuery(context.Background(), Query{Project: []string{"id", "id"}}); err == nil {
		t.Fatal("duplicate projection accepted")
	}
	if _, _, err := h.tree.RunQuery(context.Background(), Query{Lo: i64(10), Hi: i64(5)}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestFilterQueryVerifies(t *testing.T) {
	h := newHarness(t, 400, 1024, false)
	// Non-key selection: keep only tuples whose customer ends in "-003".
	rs, w := h.query(t, Query{
		Lo: i64(0), Hi: i64(399),
		Filter: func(tp schema.Tuple) bool { return tp.Values[1].S == "cust-003" },
	})
	want := 0
	for i := 0; i < 400; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if len(rs.Tuples) != want {
		t.Fatalf("filter matched %d, want %d", len(rs.Tuples), want)
	}
	// Gaps inside the range must be covered by extra D_S digests.
	if len(w.DS) <= want {
		t.Fatalf("D_S (%d) suspiciously small for a gappy result", len(w.DS))
	}
	h.mustVerify(t, rs, w)

	// Filter plus projection.
	rs2, w2 := h.query(t, Query{
		Lo: i64(100), Hi: i64(300),
		Filter:  func(tp schema.Tuple) bool { return tp.Values[2].F > 200 },
		Project: []string{"id", "customer"},
	})
	h.mustVerify(t, rs2, w2)
}

func TestEmptyResultVerifies(t *testing.T) {
	h := newHarness(t, 200, 1024, false)
	// A filter nothing matches.
	rs, w := h.query(t, Query{
		Lo: i64(0), Hi: i64(199),
		Filter: func(schema.Tuple) bool { return false },
	})
	if len(rs.Tuples) != 0 {
		t.Fatal("expected empty result")
	}
	h.mustVerify(t, rs, w)

	// A key range beyond the data.
	rs2, w2 := h.query(t, Query{Lo: i64(1000), Hi: i64(2000)})
	if len(rs2.Tuples) != 0 {
		t.Fatal("expected empty result")
	}
	h.mustVerify(t, rs2, w2)
}

func TestEmptyTreeQuery(t *testing.T) {
	h := newHarness(t, 0, 1024, false)
	rs, w := h.query(t, Query{})
	if len(rs.Tuples) != 0 {
		t.Fatal("expected empty result from empty tree")
	}
	h.mustVerify(t, rs, w)
}

func TestVOSizeIndependentOfTableSize(t *testing.T) {
	// The paper's headline claim: for a fixed result size, the VO does not
	// grow with the database (unlike root-anchored Merkle schemes).
	sizes := []int{200, 2000}
	var digests []int
	for _, n := range sizes {
		h := newHarness(t, n, 1024, false)
		_, w := h.query(t, Query{Lo: i64(50), Hi: i64(99)})
		digests = append(digests, w.NumDigests())
	}
	// Allow a small wobble from boundary alignment, but not log-growth
	// proportional to the extra levels.
	if digests[1] > digests[0]*2 {
		t.Fatalf("VO grew with table size: %v", digests)
	}
}

func TestTamperedValueRejected(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(10), Hi: i64(40)})
	rs.Tuples[5].Values[2] = schema.Float64(999999) // inflate an amount
	if err := h.ver.Verify(rs, w); err == nil {
		t.Fatal("tampered value accepted")
	}
}

func TestSpuriousTupleRejected(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(10), Hi: i64(40)})
	// Inject a plausible but fake tuple.
	fake := mkTuple(35)
	fake.Values[0] = schema.Int64(3500)
	rs.Keys = append(rs.Keys, schema.Int64(3500))
	rs.Tuples = append(rs.Tuples, fake)
	if err := h.ver.Verify(rs, w); err == nil {
		t.Fatal("spurious tuple accepted")
	}
}

func TestDroppedTupleRejected(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(10), Hi: i64(40)})
	rs.Keys = rs.Keys[:len(rs.Keys)-1]
	rs.Tuples = rs.Tuples[:len(rs.Tuples)-1]
	if err := h.ver.Verify(rs, w); err == nil {
		t.Fatal("dropped tuple accepted")
	}
}

func TestForgedVORejected(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(10), Hi: i64(40)})
	if len(w.DS) == 0 {
		t.Skip("no DS entries to tamper with")
	}
	// Flip a byte in a D_S signature.
	w.DS[0].Sig[3] ^= 0xFF
	if err := h.ver.Verify(rs, w); err == nil {
		t.Fatal("forged DS signature accepted")
	}
}

func TestSwappedDigestRejected(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	// A single-tuple query is enveloped by one leaf; a wide query by an
	// internal node — their top digests are necessarily different.
	rs1, w1 := h.query(t, Query{Lo: i64(10), Hi: i64(10)})
	_, w2 := h.query(t, Query{Lo: i64(100), Hi: i64(240)})
	if w1.TopDigest.Equal(w2.TopDigest) {
		t.Fatal("test setup: expected distinct enveloping subtrees")
	}
	w1.TopDigest = w2.TopDigest
	if err := h.ver.Verify(rs1, w1); err == nil {
		t.Fatal("replayed top digest accepted")
	}
}

func TestReorderedResultStillVerifies(t *testing.T) {
	// Commutativity: tuple order inside the result does not affect the
	// digest product. (Order verification is a separate concern the paper
	// does not claim.)
	h := newHarness(t, 300, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(10), Hi: i64(20)})
	rs.Keys[0], rs.Keys[1] = rs.Keys[1], rs.Keys[0]
	rs.Tuples[0], rs.Tuples[1] = rs.Tuples[1], rs.Tuples[0]
	h.mustVerify(t, rs, w)
}

func TestWrongTableRejected(t *testing.T) {
	h := newHarness(t, 100, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(10), Hi: i64(20)})
	rs.Table = "other"
	if err := h.ver.Verify(rs, w); err == nil {
		t.Fatal("cross-table replay accepted")
	}
}

func TestInsertMaintainsDigests(t *testing.T) {
	h := newHarness(t, 120, 1024, false)
	// Insert enough out-of-order tuples to force leaf and internal splits.
	for _, i := range []int{500, 130, 125, 600, 123, 124, 126, 127, 128, 129, 550, 560, 570} {
		if err := h.tree.Insert(mkTuple(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	// Every range query over the new state must verify.
	for _, r := range [][2]int{{0, 700}, {120, 131}, {490, 610}, {0, 50}} {
		rs, w := h.query(t, Query{Lo: i64(r[0]), Hi: i64(r[1])})
		h.mustVerify(t, rs, w)
	}
	if _, found, _ := h.tree.Search(schema.Int64(560)); !found {
		t.Fatal("inserted tuple missing")
	}
}

func TestInsertDuplicateRejected(t *testing.T) {
	h := newHarness(t, 50, 1024, false)
	if err := h.tree.Insert(mkTuple(25)); err != ErrDuplicateKey {
		t.Fatalf("duplicate insert: %v", err)
	}
	// The failed insert must not corrupt digests.
	rs, w := h.query(t, Query{})
	h.mustVerify(t, rs, w)
}

func TestInsertManySplitsVerify(t *testing.T) {
	h := newHarness(t, 0, 1024, false)
	for i := 0; i < 300; i++ {
		// Interleaved order to exercise splits at both ends.
		k := (i*7 + 3) % 1000
		if _, found, _ := h.tree.Search(schema.Int64(int64(k))); found {
			continue
		}
		if err := h.tree.Insert(mkTuple(k)); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	rs, w := h.query(t, Query{})
	h.mustVerify(t, rs, w)
	if h.tree.Height() < 2 {
		t.Fatal("expected splits to grow the tree")
	}
}

func TestDeleteMaintainsDigests(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	if err := h.tree.Delete(schema.Int64(150)); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := h.tree.Search(schema.Int64(150)); found {
		t.Fatal("deleted key still present")
	}
	if err := h.tree.Delete(schema.Int64(150)); err != ErrKeyNotFound {
		t.Fatalf("double delete: %v", err)
	}
	rs, w := h.query(t, Query{Lo: i64(140), Hi: i64(160)})
	if len(rs.Tuples) != 20 {
		t.Fatalf("got %d tuples, want 20", len(rs.Tuples))
	}
	h.mustVerify(t, rs, w)
}

func TestDeleteRangeMaintainsDigests(t *testing.T) {
	h := newHarness(t, 400, 1024, false)
	n, err := h.tree.DeleteRange(i64(100), i64(299))
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("deleted %d, want 200", n)
	}
	rs, w := h.query(t, Query{})
	if len(rs.Tuples) != 200 {
		t.Fatalf("remaining %d, want 200", len(rs.Tuples))
	}
	h.mustVerify(t, rs, w)
	// Queries straddling the deleted region verify too.
	rs2, w2 := h.query(t, Query{Lo: i64(50), Hi: i64(350)})
	if len(rs2.Tuples) != 101 {
		t.Fatalf("straddling query got %d, want 101", len(rs2.Tuples))
	}
	h.mustVerify(t, rs2, w2)
}

func TestDeleteEverything(t *testing.T) {
	h := newHarness(t, 150, 1024, false)
	n, err := h.tree.DeleteRange(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("deleted %d, want 150", n)
	}
	if h.tree.Height() != 1 {
		t.Fatalf("height after full delete = %d", h.tree.Height())
	}
	rs, w := h.query(t, Query{})
	if len(rs.Tuples) != 0 {
		t.Fatal("tuples remain after full delete")
	}
	h.mustVerify(t, rs, w)
	// Tree must accept new inserts.
	if err := h.tree.Insert(mkTuple(7)); err != nil {
		t.Fatal(err)
	}
	rs2, w2 := h.query(t, Query{})
	if len(rs2.Tuples) != 1 {
		t.Fatal("insert after full delete missing")
	}
	h.mustVerify(t, rs2, w2)
}

func TestInterleavedUpdatesAndQueries(t *testing.T) {
	h := newHarness(t, 200, 1024, false)
	for round := 0; round < 10; round++ {
		base := 1000 + round*10
		for i := 0; i < 5; i++ {
			if err := h.tree.Insert(mkTuple(base + i)); err != nil {
				t.Fatalf("round %d insert: %v", round, err)
			}
		}
		if _, err := h.tree.DeleteRange(i64(round*15), i64(round*15+4)); err != nil {
			t.Fatalf("round %d delete: %v", round, err)
		}
		rs, w := h.query(t, Query{})
		h.mustVerify(t, rs, w)
	}
}

func TestUpdatesWithLockingProtocol(t *testing.T) {
	h := newHarness(t, 200, 1024, true)
	if err := h.tree.Insert(mkTuple(777)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.tree.DeleteRange(i64(20), i64(40)); err != nil {
		t.Fatal(err)
	}
	rs, w := h.query(t, Query{Lo: i64(0), Hi: i64(100)})
	h.mustVerify(t, rs, w)
}

func TestReadOnlyEdgeReplica(t *testing.T) {
	h := newHarness(t, 100, 1024, false)
	// Re-open the same pages without a signer, as an edge server would.
	edgeCfg := h.cfg
	edgeCfg.Signer = nil
	edge, err := Open(edgeCfg, h.tree.Root(), h.tree.Height(), h.tree.RootSig())
	if err != nil {
		t.Fatal(err)
	}
	rs, w, err := edge.RunQuery(context.Background(), Query{Lo: i64(10), Hi: i64(30)})
	if err != nil {
		t.Fatalf("edge query: %v", err)
	}
	h.mustVerify(t, rs, w)
	// Mutations are rejected.
	if err := edge.Insert(mkTuple(999)); err != ErrReadOnly {
		t.Fatalf("edge insert: %v, want ErrReadOnly", err)
	}
	if _, err := edge.DeleteRange(nil, nil); err != ErrReadOnly {
		t.Fatalf("edge delete: %v, want ErrReadOnly", err)
	}
}

func TestOpenValidation(t *testing.T) {
	h := newHarness(t, 10, 1024, false)
	if _, err := Open(h.cfg, storage.InvalidPageID, 1, h.tree.RootSig()); err == nil {
		t.Fatal("invalid root accepted")
	}
	if _, err := Open(h.cfg, h.tree.Root(), 0, h.tree.RootSig()); err == nil {
		t.Fatal("zero height accepted")
	}
	if _, err := Open(h.cfg, h.tree.Root(), 1, nil); err == nil {
		t.Fatal("missing root sig accepted")
	}
}

func TestFanOutFormulas(t *testing.T) {
	// VB-tree fan-out must be below the B-tree's for equal key length
	// (paper Figure 8) and shrink as keys grow.
	prev := 1 << 30
	for _, kl := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		f := MaxInternalFanOut(4096, kl, 16)
		if f < 2 {
			t.Fatalf("fan-out %d at key length %d", f, kl)
		}
		if f > prev {
			t.Fatalf("fan-out grew at key length %d", kl)
		}
		prev = f
	}
	if MaxLeafEntries(4096, 8, 64) <= 0 {
		t.Fatal("leaf capacity must be positive")
	}
}

func TestVerifierRejectsMalformedInputs(t *testing.T) {
	h := newHarness(t, 50, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(5), Hi: i64(10)})

	if err := h.ver.Verify(nil, w); err == nil {
		t.Fatal("nil result accepted")
	}
	if err := h.ver.Verify(rs, nil); err == nil {
		t.Fatal("nil VO accepted")
	}
	bad := *w
	bad.TopLevel = 0
	if err := h.ver.Verify(rs, &bad); err == nil {
		t.Fatal("zero top level accepted")
	}
	bad2 := *w
	bad2.DP = []sig.Signature{w.TopDigest}
	if err := h.ver.Verify(rs, &bad2); err == nil {
		t.Fatal("DP count mismatch accepted")
	}
	bad3 := *w
	if len(bad3.DS) > 0 {
		bad3.DS = append([]vo.Entry(nil), bad3.DS...)
		bad3.DS[0].Lift = 200
		if err := h.ver.Verify(rs, &bad3); err == nil {
			t.Fatal("absurd lift accepted")
		}
	}
	rs2 := *rs
	rs2.Columns = []string{"id", "ghost", "amount", "notes"}
	if err := h.ver.Verify(&rs2, w); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestKeyVersionEnforced(t *testing.T) {
	h := newHarness(t, 50, 1024, false)
	rs, w := h.query(t, Query{Lo: i64(5), Hi: i64(10)})

	// Registry-based verifier with an expired key version.
	reg := sig.NewRegistry()
	expired := h.key.Public()
	expired.Version = 0
	expired.NotAfter = 1_600_000_000 // before the VO timestamp
	reg.Put(expired)
	ver := &verify.Verifier{Keys: reg, Acc: h.tree.Accumulator(), Schema: h.tree.Schema(),
		Now: func() int64 { return 1_700_000_000 }}
	if err := ver.Verify(rs, w); err == nil {
		t.Fatal("expired key version accepted")
	}
	// Valid window accepts.
	fresh := h.key.Public()
	fresh.Version = 0
	fresh.NotBefore = 1_600_000_000
	reg.Put(fresh)
	if err := ver.Verify(rs, w); err != nil {
		t.Fatalf("valid key version rejected: %v", err)
	}
}

func TestAuditCleanTree(t *testing.T) {
	h := newHarness(t, 200, 1024, false)
	n, err := h.tree.Audit()
	if err != nil {
		t.Fatalf("Audit of clean tree: %v", err)
	}
	if n != 200 {
		t.Fatalf("audited %d tuples, want 200", n)
	}
	// Audit still passes after updates.
	if err := h.tree.Insert(mkTuple(999)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.tree.DeleteRange(i64(10), i64(20)); err != nil {
		t.Fatal(err)
	}
	if n, err := h.tree.Audit(); err != nil || n != 190 {
		t.Fatalf("Audit after updates: n=%d err=%v", n, err)
	}
}

func TestAuditDetectsHeapTampering(t *testing.T) {
	h := newHarness(t, 100, 1024, false)
	// Corrupt a stored tuple's bytes behind the tree's back, as a hacked
	// edge with disk access would.
	st, found, err := h.tree.Search(schema.Int64(42))
	if err != nil || !found {
		t.Fatal("setup: tuple 42 missing")
	}
	st.Tuple.Values[2] = schema.Float64(-1)
	// Re-encode and overwrite the heap record in place.
	kb := schema.Int64(42).KeyBytes()
	pid := h.tree.Root()
	for {
		pt, err := h.tree.pageType(pid)
		if err != nil {
			t.Fatal(err)
		}
		if pt == storage.PageVBLeaf {
			break
		}
		n, err := h.tree.fetchInternal(pid)
		if err != nil {
			t.Fatal(err)
		}
		pid = n.children[n.childIndex(kb)]
	}
	leaf, err := h.tree.fetchLeaf(pid)
	if err != nil {
		t.Fatal(err)
	}
	j := leaf.search(kb)
	rid := leaf.rids[j]
	if err := h.cfg.Heap.Delete(rid); err != nil {
		t.Fatal(err)
	}
	// The tombstoned record makes the audit fail loudly (a missing tuple
	// is as bad as a modified one).
	if _, err := h.tree.Audit(); err == nil {
		t.Fatal("audit passed over a corrupted heap")
	}
}
