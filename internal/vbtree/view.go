package vbtree

import (
	"context"
	"errors"
	"fmt"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// TableState is the immutable per-version metadata a replica publishes
// alongside each storage snapshot: the tree anchor that makes the page
// space queryable plus the replication coordinates the next refresh
// negotiates with. Both the central server's per-commit publishes and
// the edge's delta applies stamp one of these on every version.
type TableState struct {
	Root       storage.PageID
	Height     int
	RootSig    sig.Signature
	HeapPages  []storage.PageID
	KeyVersion uint32
	// Scheme is the signature scheme of the key named by KeyVersion;
	// replicas thread it into the public keys they build for views.
	Scheme  sig.Scheme
	Version uint64
	Epoch   uint64
}

// Validate rejects states that cannot anchor a tree.
func (st *TableState) Validate() error {
	if st.Root == storage.InvalidPageID || st.Height < 1 || len(st.RootSig) == 0 {
		return errors.New("vbtree: invalid published tree metadata")
	}
	return nil
}

// ViewOver assembles the lock-free read view for this state over an
// immutable page space.
func (st *TableState) ViewOver(pages storage.PageReader, sch *schema.Schema, acc *digest.Accumulator, pub *sig.PublicKey) (*View, error) {
	return NewView(ViewConfig{
		Pages:     pages,
		HeapPages: st.HeapPages,
		Schema:    sch,
		Acc:       acc,
		Pub:       pub,
		Root:      st.Root,
		Height:    st.Height,
		RootSig:   st.RootSig,
	})
}

// ViewConfig anchors a read view: an immutable page space plus the tree
// metadata that makes it interpretable.
type ViewConfig struct {
	// Pages is the immutable page view (typically a pinned
	// storage.Snapshot; the live BufferPool under the tree's own lock also
	// qualifies).
	Pages storage.PageReader
	// HeapPages lists the heap file's pages, as recorded in replica
	// metadata.
	HeapPages []storage.PageID
	// Schema describes the indexed table.
	Schema *schema.Schema
	// Acc is the digest accumulator (hash h + combiner g).
	Acc *digest.Accumulator
	// Pub stamps the VO's key version (edge replicas use a placeholder).
	Pub *sig.PublicKey
	// Now supplies VO timestamps; defaults to time.Now.
	Now func() int64
	// Root, Height, RootSig anchor the tree inside the page space.
	Root    storage.PageID
	Height  int
	RootSig sig.Signature
}

// View is the lock-free read path of the VB-tree: Search, RunQuery and
// ScanAll over an immutable page view. Because the pages can never change
// underneath it, a View takes no locks at all — the paper's §3.4 S-lock
// protocol collapses away once queries run against snapshots instead of
// shared mutable pages. A View is cheap to construct (per query) and safe
// for concurrent use.
type View struct {
	pr      storage.PageReader
	heap    *storage.HeapReader
	sch     *schema.Schema
	acc     *digest.Accumulator
	pub     *sig.PublicKey
	now     func() int64
	root    storage.PageID
	height  int
	rootSig sig.Signature
	// merkle mirrors the tree's commitment mode (from Pub.Scheme): VOs
	// are always root-anchored, carry the raw root digest as TopDigest,
	// and the root signature rides alongside in RootSig.
	merkle bool
}

// NewView validates the config and assembles a read view.
func NewView(cfg ViewConfig) (*View, error) {
	if cfg.Pages == nil {
		return nil, errors.New("vbtree: view requires Pages")
	}
	if cfg.Schema == nil || cfg.Acc == nil || cfg.Pub == nil {
		return nil, errors.New("vbtree: view requires Schema, Acc and Pub")
	}
	anchor := TableState{Root: cfg.Root, Height: cfg.Height, RootSig: cfg.RootSig}
	if err := anchor.Validate(); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().Unix() }
	}
	return &View{
		pr:      cfg.Pages,
		heap:    storage.NewHeapReader(cfg.Pages, cfg.HeapPages),
		sch:     cfg.Schema,
		acc:     cfg.Acc,
		pub:     cfg.Pub,
		now:     now,
		root:    cfg.Root,
		height:  cfg.Height,
		rootSig: cfg.RootSig,
		merkle:  cfg.Pub.Scheme.Merkle(),
	}, nil
}

// page-decode helpers over the immutable view.

func (v *View) pageType(pid storage.PageID) (storage.PageType, error) {
	buf, err := v.pr.View(pid)
	if err != nil {
		return 0, err
	}
	return storage.PageType(buf[0]), nil
}

func (v *View) fetchLeaf(pid storage.PageID) (*vbLeaf, error) {
	buf, err := v.pr.View(pid)
	if err != nil {
		return nil, err
	}
	return decodeVBLeaf(buf)
}

func (v *View) fetchInternal(pid storage.PageID) (*vbInternal, error) {
	buf, err := v.pr.View(pid)
	if err != nil {
		return nil, err
	}
	return decodeVBInternal(buf)
}

func (v *View) loadStored(rid storage.RecordID) (*vo.StoredTuple, error) {
	rec, err := v.heap.Get(rid)
	if err != nil {
		return nil, err
	}
	st, _, err := vo.DecodeStoredTuple(rec)
	return st, err
}

// Search returns the stored tuple with the given key, or found=false.
func (v *View) Search(key schema.Datum) (*vo.StoredTuple, bool, error) {
	kb := key.KeyBytes()
	pid := v.root
	for {
		pt, err := v.pageType(pid)
		if err != nil {
			return nil, false, err
		}
		if pt == storage.PageVBInternal {
			n, err := v.fetchInternal(pid)
			if err != nil {
				return nil, false, err
			}
			pid = n.children[n.childIndex(kb)]
			continue
		}
		n, err := v.fetchLeaf(pid)
		if err != nil {
			return nil, false, err
		}
		i := n.search(kb)
		if i >= len(n.keys) || compare(n.keys[i], kb) != 0 {
			return nil, false, nil
		}
		st, err := v.loadStored(n.rids[i])
		if err != nil {
			return nil, false, err
		}
		return st, true, nil
	}
}

// RunQuery executes q and returns the verifiable result: the projected
// tuples and the VO over the enveloping subtree. This is the operation an
// edge server performs for every client query (paper §3.3). ctx is
// checked between page visits, so a disconnected or cancelled client
// stops the traversal and the VO crypto early.
func (v *View) RunQuery(ctx context.Context, q Query) (*vo.ResultSet, *vo.VO, error) {
	var loB, hiB []byte
	if q.Lo != nil {
		loB = q.Lo.KeyBytes()
	}
	if q.Hi != nil {
		hiB = q.Hi.KeyBytes()
	}
	if loB != nil && hiB != nil && compare(loB, hiB) > 0 {
		return nil, nil, errors.New("vbtree: query range is inverted")
	}

	// Resolve the projection.
	projIdx, projCols, err := v.resolveProjection(q.Project)
	if err != nil {
		return nil, nil, err
	}

	// Phase 1: scan the key range, apply the filter, collect matches.
	matches, err := v.collectMatches(ctx, loB, hiB, q.Filter)
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: locate the enveloping subtree and assemble the D_S set.
	// Under a Merkle scheme only the root digest is signed, so the VO must
	// anchor there regardless of what the query asked for.
	w, err := v.buildVO(ctx, matches, loB, q.AnchorRoot || v.merkle)
	if err != nil {
		return nil, nil, err
	}

	// Phase 3: assemble the projected result set and the D_P digests.
	rs := &vo.ResultSet{
		DB:      v.sch.DB,
		Table:   v.sch.Table,
		Columns: projCols,
	}
	for _, m := range matches {
		rs.Keys = append(rs.Keys, m.st.Tuple.Key(v.sch))
		vals := make([]schema.Datum, len(projIdx))
		for i, ci := range projIdx {
			vals[i] = m.st.Tuple.Values[ci]
		}
		rs.Tuples = append(rs.Tuples, schema.Tuple{Values: vals})
		// Filtered attributes -> D_P (paper Figure 7).
		if len(projIdx) != len(v.sch.Columns) {
			inProj := make([]bool, len(v.sch.Columns))
			for _, ci := range projIdx {
				inProj[ci] = true
			}
			for ci := range v.sch.Columns {
				if !inProj[ci] {
					w.DP = append(w.DP, m.st.AttrSigs[ci].Clone())
				}
			}
		}
	}
	return rs, w, nil
}

// resolveProjection maps q.Project to column indices; nil means identity.
func (v *View) resolveProjection(cols []string) ([]int, []string, error) {
	if cols == nil {
		idx := make([]int, len(v.sch.Columns))
		names := make([]string, len(v.sch.Columns))
		for i, c := range v.sch.Columns {
			idx[i] = i
			names[i] = c.Name
		}
		return idx, names, nil
	}
	if len(cols) == 0 {
		return nil, nil, errors.New("vbtree: empty projection")
	}
	idx := make([]int, len(cols))
	seen := make(map[string]bool, len(cols))
	for i, name := range cols {
		ci := v.sch.ColumnIndex(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("vbtree: unknown column %q", name)
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("vbtree: duplicate projected column %q", name)
		}
		seen[name] = true
		idx[i] = ci
	}
	return idx, cols, nil
}

// collectMatches walks the leaf chain across [lo,hi], loads each tuple and
// applies the filter.
func (v *View) collectMatches(ctx context.Context, lo, hi []byte, filter func(schema.Tuple) bool) ([]matched, error) {
	pid := v.root
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := v.pageType(pid)
		if err != nil {
			return nil, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := v.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		if lo == nil {
			pid = n.children[0]
		} else {
			pid = n.children[n.childIndex(lo)]
		}
	}
	var out []matched
	for pid != storage.InvalidPageID {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n, err := v.fetchLeaf(pid)
		if err != nil {
			return nil, err
		}
		start := 0
		if lo != nil {
			start = n.search(lo)
		}
		for i := start; i < len(n.keys); i++ {
			if hi != nil && compare(n.keys[i], hi) > 0 {
				return out, nil
			}
			st, err := v.loadStored(n.rids[i])
			if err != nil {
				return nil, err
			}
			if filter != nil && !filter(st.Tuple) {
				continue
			}
			out = append(out, matched{keyBytes: n.keys[i], st: st})
		}
		pid = n.next
	}
	return out, nil
}

// buildVO locates the enveloping subtree of the matches and assembles the
// D_S set. For an empty result it envelopes the leaf where lo would land,
// proving (to the extent the paper's model allows) what that region holds.
// With anchorRoot the envelope is pinned at the root regardless of the
// span, so the VO's top digest recovers to the root digest.
func (v *View) buildVO(ctx context.Context, matches []matched, lo []byte, anchorRoot bool) (*vo.VO, error) {
	w := &vo.VO{
		KeyVersion: v.pub.Version,
		Timestamp:  v.now(),
	}

	var spanLo, spanHi []byte
	if len(matches) > 0 {
		spanLo = matches[0].keyBytes
		spanHi = matches[len(matches)-1].keyBytes
	} else if lo != nil {
		spanLo, spanHi = lo, lo
	} // else: empty result with open lo — envelope the leftmost leaf.

	// Membership index for leaf-level checks.
	inResult := make(map[string]bool, len(matches))
	for _, m := range matches {
		inResult[string(m.keyBytes)] = true
	}

	// Descend to the enveloping top: the highest node where the span no
	// longer fits inside a single child.
	pid := v.root
	level := v.height
	topSig := v.rootSig
	for !anchorRoot {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pt, err := v.pageType(pid)
		if err != nil {
			return nil, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := v.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		loIdx := 0
		if spanLo != nil {
			loIdx = n.childIndex(spanLo)
		}
		hiIdx := 0
		if spanHi != nil {
			hiIdx = n.childIndex(spanHi)
		}
		if loIdx != hiIdx {
			break // the span straddles children: this node is the top
		}
		pid = n.children[loIdx]
		topSig = n.sigs[loIdx]
		level--
	}
	w.TopLevel = uint8(level)
	if v.merkle {
		// The top digest travels in the clear (there is no message
		// recovery); the root signature over it rides in RootSig. The
		// client recomputes the digest from the D_S/result product and
		// verifies exactly one signature.
		u, err := v.merkleNodeDigest(pid)
		if err != nil {
			return nil, err
		}
		w.TopDigest = sig.Signature(u)
		w.RootSig = topSig.Clone()
	} else {
		w.TopDigest = topSig.Clone()
	}

	// Walk the subtree flat-collecting D_S entries.
	topLevel := level
	var walk func(pid storage.PageID, level int) (bool, []vo.Entry, error)
	walk = func(pid storage.PageID, level int) (bool, []vo.Entry, error) {
		if err := ctx.Err(); err != nil {
			return false, nil, err
		}
		pt, err := v.pageType(pid)
		if err != nil {
			return false, nil, err
		}
		if pt == storage.PageVBLeaf {
			n, err := v.fetchLeaf(pid)
			if err != nil {
				return false, nil, err
			}
			var entries []vo.Entry
			has := false
			for i := range n.keys {
				if inResult[string(n.keys[i])] {
					has = true
					continue
				}
				entries = append(entries, vo.Entry{Sig: n.sigs[i].Clone(), Lift: uint8(topLevel)})
			}
			return has, entries, nil
		}
		n, err := v.fetchInternal(pid)
		if err != nil {
			return false, nil, err
		}
		var entries []vo.Entry
		has := false
		childLift := uint8(topLevel - (level - 1))
		for i := range n.children {
			clo, chi := n.childSpan(i)
			if !spanIntersects(clo, chi, spanLo, spanHi) {
				entries = append(entries, vo.Entry{Sig: n.sigs[i].Clone(), Lift: childLift})
				continue
			}
			h, es, err := walk(n.children[i], level-1)
			if err != nil {
				return false, nil, err
			}
			if !h {
				// The child intersects the span but holds no result tuple
				// (a "gap" from a non-key filter): one branch digest is
				// cheaper than its constituent tuple digests.
				entries = append(entries, vo.Entry{Sig: n.sigs[i].Clone(), Lift: childLift})
				continue
			}
			has = true
			entries = append(entries, es...)
		}
		return has, entries, nil
	}
	_, entries, err := walk(pid, level)
	if err != nil {
		return nil, err
	}
	w.DS = entries
	return w, nil
}

// merkleNodeDigest recombines a node's unsigned digest from its raw
// child entries — pure combiner arithmetic, no signature operations.
func (v *View) merkleNodeDigest(pid storage.PageID) (digest.Value, error) {
	pt, err := v.pageType(pid)
	if err != nil {
		return nil, err
	}
	var sigs []sig.Signature
	if pt == storage.PageVBLeaf {
		n, err := v.fetchLeaf(pid)
		if err != nil {
			return nil, err
		}
		sigs = n.sigs
	} else {
		n, err := v.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		sigs = n.sigs
	}
	acc := v.acc.NewAcc()
	for _, s := range sigs {
		if len(s) != v.acc.Len() {
			return nil, fmt.Errorf("vbtree: merkle entry has %d bytes, want %d", len(s), v.acc.Len())
		}
		if err := acc.Add(digest.Value(s)); err != nil {
			return nil, err
		}
	}
	return acc.Value(), nil
}

// ScanAll returns every stored tuple in key order (a full-table helper for
// examples and tests; not part of the authenticated protocol).
func (v *View) ScanAll() ([]*vo.StoredTuple, error) {
	pid := v.root
	for {
		pt, err := v.pageType(pid)
		if err != nil {
			return nil, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := v.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		pid = n.children[0]
	}
	var out []*vo.StoredTuple
	for pid != storage.InvalidPageID {
		n, err := v.fetchLeaf(pid)
		if err != nil {
			return nil, err
		}
		for i := range n.keys {
			st, err := v.loadStored(n.rids[i])
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		pid = n.next
	}
	return out, nil
}
