package vbtree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
)

// Node serialization (paper Figure 3(b)/(c)):
//
//	leaf:     type(1) | next(4) | count(2) |
//	          { keyLen(2) key rid(6) sigLen(2) D_T }*
//	internal: type(1) | count(2) | child0(4) sigLen(2) D_0 |
//	          { keyLen(2) key child(4) sigLen(2) D }*
//
// count is the number of keys; an internal node has count+1 (child, digest)
// pairs. The digest stored with each child pointer is the *signed* digest
// of that child's subtree, exactly as the paper prescribes ("the node
// digest is stored with the corresponding child pointer in the parent").
const (
	vbLeafHeader     = 1 + 4 + 2
	vbInternalHeader = 1 + 2
)

type vbLeaf struct {
	next storage.PageID
	keys [][]byte
	rids []storage.RecordID
	sigs []sig.Signature // D_T per entry
}

type vbInternal struct {
	keys     [][]byte
	children []storage.PageID // len(keys)+1
	sigs     []sig.Signature  // len(keys)+1, child digests
}

func decodeVBLeaf(buf []byte) (*vbLeaf, error) {
	if storage.PageType(buf[0]) != storage.PageVBLeaf {
		return nil, fmt.Errorf("vbtree: page type %d is not a VB leaf", buf[0])
	}
	n := &vbLeaf{next: storage.PageID(binary.BigEndian.Uint32(buf[1:5]))}
	count := int(binary.BigEndian.Uint16(buf[5:7]))
	off := vbLeafHeader
	n.keys = make([][]byte, count)
	n.rids = make([]storage.RecordID, count)
	n.sigs = make([]sig.Signature, count)
	for i := 0; i < count; i++ {
		if off+2 > len(buf) {
			return nil, fmt.Errorf("vbtree: leaf entry %d truncated", i)
		}
		kl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+kl+6+2 > len(buf) {
			return nil, fmt.Errorf("vbtree: leaf entry %d truncated", i)
		}
		n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
		off += kl
		rid, err := storage.DecodeRecordID(buf[off : off+6])
		if err != nil {
			return nil, err
		}
		n.rids[i] = rid
		off += 6
		sl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+sl > len(buf) {
			return nil, fmt.Errorf("vbtree: leaf signature %d truncated", i)
		}
		n.sigs[i] = append(sig.Signature(nil), buf[off:off+sl]...)
		off += sl
	}
	return n, nil
}

func (n *vbLeaf) encodedSize() int {
	sz := vbLeafHeader
	for i := range n.keys {
		sz += 2 + len(n.keys[i]) + 6 + 2 + len(n.sigs[i])
	}
	return sz
}

func (n *vbLeaf) encode(buf []byte) error {
	if n.encodedSize() > len(buf) {
		return fmt.Errorf("vbtree: leaf of %d bytes exceeds page size %d", n.encodedSize(), len(buf))
	}
	buf[0] = byte(storage.PageVBLeaf)
	binary.BigEndian.PutUint32(buf[1:5], uint32(n.next))
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(n.keys)))
	off := vbLeafHeader
	for i := range n.keys {
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.keys[i])))
		off += 2
		copy(buf[off:], n.keys[i])
		off += len(n.keys[i])
		ridb := n.rids[i].Encode(nil)
		copy(buf[off:], ridb)
		off += 6
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.sigs[i])))
		off += 2
		copy(buf[off:], n.sigs[i])
		off += len(n.sigs[i])
	}
	for ; off < len(buf); off++ {
		buf[off] = 0
	}
	return nil
}

// search returns the index of the first key >= k.
func (n *vbLeaf) search(k []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return compare(n.keys[i], k) >= 0 })
}

func decodeVBInternal(buf []byte) (*vbInternal, error) {
	if storage.PageType(buf[0]) != storage.PageVBInternal {
		return nil, fmt.Errorf("vbtree: page type %d is not a VB internal node", buf[0])
	}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	n := &vbInternal{
		keys:     make([][]byte, count),
		children: make([]storage.PageID, count+1),
		sigs:     make([]sig.Signature, count+1),
	}
	off := vbInternalHeader
	readChild := func(i int) error {
		if off+4+2 > len(buf) {
			return fmt.Errorf("vbtree: internal child %d truncated", i)
		}
		n.children[i] = storage.PageID(binary.BigEndian.Uint32(buf[off : off+4]))
		off += 4
		sl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+sl > len(buf) {
			return fmt.Errorf("vbtree: internal digest %d truncated", i)
		}
		n.sigs[i] = append(sig.Signature(nil), buf[off:off+sl]...)
		off += sl
		return nil
	}
	if err := readChild(0); err != nil {
		return nil, err
	}
	for i := 0; i < count; i++ {
		if off+2 > len(buf) {
			return nil, fmt.Errorf("vbtree: internal key %d truncated", i)
		}
		kl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+kl > len(buf) {
			return nil, fmt.Errorf("vbtree: internal key %d truncated", i)
		}
		n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
		off += kl
		if err := readChild(i + 1); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (n *vbInternal) encodedSize() int {
	sz := vbInternalHeader + 4 + 2 + len(n.sigs[0])
	for i := range n.keys {
		sz += 2 + len(n.keys[i]) + 4 + 2 + len(n.sigs[i+1])
	}
	return sz
}

func (n *vbInternal) encode(buf []byte) error {
	if n.encodedSize() > len(buf) {
		return fmt.Errorf("vbtree: internal node of %d bytes exceeds page size %d", n.encodedSize(), len(buf))
	}
	buf[0] = byte(storage.PageVBInternal)
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	off := vbInternalHeader
	writeChild := func(i int) {
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(n.children[i]))
		off += 4
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.sigs[i])))
		off += 2
		copy(buf[off:], n.sigs[i])
		off += len(n.sigs[i])
	}
	writeChild(0)
	for i := range n.keys {
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.keys[i])))
		off += 2
		copy(buf[off:], n.keys[i])
		off += len(n.keys[i])
		writeChild(i + 1)
	}
	for ; off < len(buf); off++ {
		buf[off] = 0
	}
	return nil
}

// childIndex returns which child covers key k.
func (n *vbInternal) childIndex(k []byte) int {
	return sort.Search(len(n.keys), func(i int) bool { return compare(n.keys[i], k) > 0 })
}

// childSpan returns the key interval [lo, hi) covered by child i, with nil
// meaning unbounded on that side.
func (n *vbInternal) childSpan(i int) (lo, hi []byte) {
	if i > 0 {
		lo = n.keys[i-1]
	}
	if i < len(n.keys) {
		hi = n.keys[i]
	}
	return lo, hi
}

// spanIntersects reports whether child span [clo, chi) intersects the
// closed query interval [qlo, qhi] (nil = unbounded).
func spanIntersects(clo, chi, qlo, qhi []byte) bool {
	if chi != nil && qlo != nil && compare(chi, qlo) <= 0 {
		return false // child entirely below the query
	}
	if clo != nil && qhi != nil && compare(clo, qhi) > 0 {
		return false // child entirely above the query
	}
	return true
}

func compare(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// fetchLeaf / fetchInternal decode a pinned page and release the pin.
func (t *Tree) fetchLeaf(pid storage.PageID) (*vbLeaf, error) {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, err
	}
	n, err := decodeVBLeaf(f.Page().Bytes())
	t.bp.Unpin(f, false)
	return n, err
}

func (t *Tree) fetchInternal(pid storage.PageID) (*vbInternal, error) {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, err
	}
	n, err := decodeVBInternal(f.Page().Bytes())
	t.bp.Unpin(f, false)
	return n, err
}

// pageType peeks a page's type byte.
func (t *Tree) pageType(pid storage.PageID) (storage.PageType, error) {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return 0, err
	}
	pt := storage.PageType(f.Page().Bytes()[0])
	t.bp.Unpin(f, false)
	return pt, nil
}

// writeLeaf encodes n into its page.
func (t *Tree) writeLeaf(pid storage.PageID, n *vbLeaf) error {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return err
	}
	err = n.encode(f.Page().Bytes())
	t.bp.Unpin(f, err == nil)
	return err
}

// writeInternal encodes n into its page.
func (t *Tree) writeInternal(pid storage.PageID, n *vbInternal) error {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return err
	}
	err = n.encode(f.Page().Bytes())
	t.bp.Unpin(f, err == nil)
	return err
}
