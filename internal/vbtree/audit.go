package vbtree

import (
	"fmt"

	"edgeauth/internal/digest"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// Audit recomputes every digest in the tree from the raw tuple data —
// hashing each attribute, recombining tuple, node and root digests — and
// checks each against the stored signed digest. It returns the number of
// tuples audited. This is the full-recompute path that the paper's
// incremental insert avoids (the UPD ablation measures the gap), and a
// useful integrity check for a replica: a tampered edge copy fails it.
func (t *Tree) Audit() (int, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	u, n, err := t.auditNode(t.root)
	if err != nil {
		return n, err
	}
	// Scheme-agnostic root check: recover-and-compare under RSA, detached
	// verify under Ed25519.
	if err := t.pub.Verify(t.rootSig, u); err != nil {
		return n, fmt.Errorf("vbtree: root signature does not match recomputed digest: %w", err)
	}
	return n, nil
}

// auditNode returns the node's recomputed unsigned digest and the tuple
// count underneath it.
func (t *Tree) auditNode(pid storage.PageID) (digest.Value, int, error) {
	pt, err := t.pageType(pid)
	if err != nil {
		return nil, 0, err
	}
	if pt == storage.PageVBLeaf {
		n, err := t.fetchLeaf(pid)
		if err != nil {
			return nil, 0, err
		}
		acc := t.acc.NewAcc()
		for i := range n.keys {
			rec, err := t.heap.Get(n.rids[i])
			if err != nil {
				return nil, 0, err
			}
			st, _, err := vo.DecodeStoredTuple(rec)
			if err != nil {
				return nil, 0, err
			}
			attrs, ut, err := t.tupleDigests(st.Tuple)
			if err != nil {
				return nil, 0, err
			}
			// Attribute entries must commit to the recomputed digests
			// (recover-and-compare under the legacy scheme, byte compare
			// under Merkle).
			for c, as := range st.AttrSigs {
				got, err := t.childU(as)
				if err != nil {
					return nil, 0, fmt.Errorf("vbtree: leaf %d entry %d attr %d signature: %w", pid, i, c, err)
				}
				if !got.Equal(attrs[c]) {
					return nil, 0, fmt.Errorf("vbtree: leaf %d entry %d attr %q digest mismatch",
						pid, i, t.sch.Columns[c].Name)
				}
			}
			// The stored tuple digest must match too.
			stored, err := t.childU(n.sigs[i])
			if err != nil {
				return nil, 0, fmt.Errorf("vbtree: leaf %d entry %d tuple signature: %w", pid, i, err)
			}
			if !stored.Equal(ut) {
				return nil, 0, fmt.Errorf("vbtree: leaf %d entry %d tuple digest mismatch", pid, i)
			}
			if err := acc.Add(ut); err != nil {
				return nil, 0, err
			}
		}
		return acc.Value(), len(n.keys), nil
	}

	n, err := t.fetchInternal(pid)
	if err != nil {
		return nil, 0, err
	}
	acc := t.acc.NewAcc()
	total := 0
	for i, child := range n.children {
		u, cnt, err := t.auditNode(child)
		if err != nil {
			return nil, 0, err
		}
		stored, err := t.childU(n.sigs[i])
		if err != nil {
			return nil, 0, fmt.Errorf("vbtree: node %d child %d signature: %w", pid, i, err)
		}
		if !stored.Equal(u) {
			return nil, 0, fmt.Errorf("vbtree: node %d child %d digest mismatch", pid, i)
		}
		if err := acc.Add(u); err != nil {
			return nil, 0, err
		}
		total += cnt
	}
	return acc.Value(), total, nil
}
