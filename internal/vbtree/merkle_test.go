package vbtree

import (
	"context"
	"testing"
	"testing/quick"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/verify"
)

// newSchemeHarness is newHarness with an explicit signature scheme.
// RSA-backed schemes retag the shared test key, so Merkle and legacy
// trees built here hold identical key material — the root-signature
// equivalence tests depend on that.
func newSchemeHarness(t testing.TB, n, pageSize int, scheme sig.Scheme) *harness {
	t.Helper()
	var k *sig.PrivateKey
	if scheme == sig.SchemeEd25519 {
		k = sig.MustGenerate(sig.SchemeEd25519, 0)
	} else {
		var err error
		k, err = signer(t).WithScheme(scheme)
		if err != nil {
			t.Fatal(err)
		}
	}
	mem, err := storage.NewMemPager(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := storage.NewBufferPool(mem, 8192)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := storage.NewHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	acc := digest.MustNew(digest.DefaultParams())
	cfg := Config{
		Pool:   bp,
		Heap:   heap,
		Schema: testSchema(),
		Acc:    acc,
		Signer: k,
		Pub:    k.Public(),
		Now:    func() int64 { return 1_700_000_000 },
	}
	tuples := make([]schema.Tuple, n)
	for i := 0; i < n; i++ {
		tuples[i] = mkTuple(i)
	}
	tree, err := Build(cfg, tuples, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		tree: tree,
		ver: &verify.Verifier{Key: k.Public(), Acc: acc, Schema: cfg.Schema,
			Now: func() int64 { return 1_700_000_000 }},
		key: k,
		cfg: cfg,
	}
}

// TestMerkleRootSigMatchesLegacy is the equivalence property the whole
// optimization rests on: because digest values are mode-independent, a
// Merkle-interior tree and a legacy full-sign tree over the same content
// and key material produce byte-identical root signatures — through
// builds, inserts, batches and deletes.
func TestMerkleRootSigMatchesLegacy(t *testing.T) {
	f := func(seed int64) bool {
		legacy := newSchemeHarness(t, 50, 1024, sig.SchemeRSAFull)
		merkle := newSchemeHarness(t, 50, 1024, sig.SchemeRSAMerkle)
		if !legacy.tree.RootSig().Equal(merkle.tree.RootSig()) {
			t.Log("root signatures diverge after build")
			return false
		}
		// A mixed mutation sequence derived from the seed.
		n := int(uint64(seed) % 17)
		for i := 0; i < 5; i++ {
			k := 1000 + n*31 + i
			if err := legacy.tree.Insert(mkTuple(k)); err != nil {
				return false
			}
			if err := merkle.tree.Insert(mkTuple(k)); err != nil {
				return false
			}
		}
		var batch []schema.Tuple
		for i := 0; i < 8; i++ {
			batch = append(batch, mkTuple(2000+n+i))
		}
		if _, _, err := legacy.tree.InsertBatch(batch); err != nil {
			return false
		}
		if _, _, err := merkle.tree.InsertBatch(batch); err != nil {
			return false
		}
		if _, err := legacy.tree.DeleteRange(i64(10), i64(10+n)); err != nil {
			return false
		}
		if _, err := merkle.tree.DeleteRange(i64(10), i64(10+n)); err != nil {
			return false
		}
		if !legacy.tree.RootSig().Equal(merkle.tree.RootSig()) {
			t.Logf("seed %d: root signatures diverge after mutations", seed)
			return false
		}
		ru, err := legacy.tree.RootDigest()
		if err != nil {
			return false
		}
		mu, err := merkle.tree.RootDigest()
		if err != nil {
			return false
		}
		return ru.Equal(mu)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// TestMerkleBatchSignsOnlyRoot pins the headline accounting: in Merkle
// mode a batch commit re-signs exactly one digest (the root), no matter
// how many nodes it dirties; the legacy tree re-signs every dirty node.
func TestMerkleBatchSignsOnlyRoot(t *testing.T) {
	batch := make([]schema.Tuple, 64)
	for i := range batch {
		batch[i] = mkTuple(5000 + i*3)
	}
	merkle := newSchemeHarness(t, 200, 1024, sig.SchemeRSAMerkle)
	st, opErrs, err := merkle.tree.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range opErrs {
		if e != nil {
			t.Fatal(e)
		}
	}
	if st.Applied != len(batch) || st.NodesResigned != 1 || st.RootResigns != 1 {
		t.Fatalf("merkle batch stats = %+v, want Applied=%d NodesResigned=1", st, len(batch))
	}
	legacy := newSchemeHarness(t, 200, 1024, sig.SchemeRSAFull)
	lst, _, err := legacy.tree.InsertBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if lst.NodesResigned <= 1 {
		t.Fatalf("legacy batch re-signed %d nodes; the tree is too shallow to mean anything", lst.NodesResigned)
	}
}

// TestMerkleTreesStayVerifiable: audits and verified queries pass under
// both Merkle schemes after a round of mutations.
func TestMerkleTreesStayVerifiable(t *testing.T) {
	for _, scheme := range []sig.Scheme{sig.SchemeRSAMerkle, sig.SchemeEd25519} {
		t.Run(scheme.String(), func(t *testing.T) {
			h := newSchemeHarness(t, 120, 1024, scheme)
			if !h.tree.MerkleMode() {
				t.Fatal("tree not in merkle mode")
			}
			if err := h.tree.Insert(mkTuple(900)); err != nil {
				t.Fatal(err)
			}
			if _, err := h.tree.DeleteRange(i64(20), i64(29)); err != nil {
				t.Fatal(err)
			}
			if _, err := h.tree.Audit(); err != nil {
				t.Fatal(err)
			}
			rs, w, err := h.tree.RunQuery(context.Background(), Query{Lo: i64(10), Hi: i64(60)})
			if err != nil {
				t.Fatal(err)
			}
			if len(rs.Tuples) != 41 { // 10..60 minus deleted 20..29
				t.Fatalf("got %d tuples, want 41", len(rs.Tuples))
			}
			if len(w.RootSig) == 0 {
				t.Fatal("merkle VO carries no root signature")
			}
			if err := h.ver.Verify(rs, w); err != nil {
				t.Fatal(err)
			}
		})
	}
}
