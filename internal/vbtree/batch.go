package vbtree

import (
	"fmt"
	"sync"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
)

// Batched inserts: the group-commit write path of the central server.
//
// The per-tuple Insert maintains every digest on the root-to-leaf path
// incrementally and re-signs each of those nodes for every tuple, so N
// inserts spend N·height RSA signatures on node digests — the root alone
// is re-signed N times. InsertBatch splits the work into three phases:
//
//  1. presign (parallel): each tuple's attribute and tuple-digest
//     signatures (formulas (1)-(2)) are computed by the same bounded
//     worker pool Build uses — they depend only on the schema and key,
//     not on tree state, and they are the irreducible per-tuple cost.
//  2. structural (serial, under the tree lock): tuples are placed into
//     leaves, nodes split, the root grows — with NO digest work at all,
//     only a dirty-set of touched nodes.
//  3. repair: each dirty node's unsigned digest is recomputed once,
//     bottom-up, from its (mostly cached) constituents, then signed
//     exactly once — shared ancestors, the root above all, amortize the
//     RSA cost across the whole batch.
//
// The commutative combiner makes the result provably identical to N
// per-tuple inserts: a node digest is an order-free product of its
// children's lifted digests, so recomputing it once is the same value as
// incrementally folding N times (the equivalence test pins byte-equal
// root signatures).

// BatchStats reports what one committed batch cost.
type BatchStats struct {
	// Applied counts the tuples actually inserted (per-op failures such as
	// duplicate keys are skipped and reported in the error slice).
	Applied int
	// NodesResigned counts the tree nodes whose digest was re-signed —
	// each dirtied node exactly once, however many tuples landed in it.
	NodesResigned int
	// RootResigns counts root re-signs: 1 for any batch that applied at
	// least one tuple, 0 otherwise. The per-tuple path re-signs the root
	// once per tuple; this field existing at all is the point.
	RootResigns int
}

// InsertBatch inserts tuples as one batch and returns per-op errors
// (index-aligned with tuples; nil = inserted) alongside the batch stats.
// A non-nil error is a storage-level failure that may leave the tree
// inconsistent — the same contract as a failed Insert. Tuples that fail
// individually (duplicate key, schema mismatch, oversized entry) do not
// abort the rest of the batch.
func (t *Tree) InsertBatch(tuples []schema.Tuple) (BatchStats, []error, error) {
	if t.signer == nil {
		return BatchStats{}, nil, ErrReadOnly
	}
	if len(tuples) == 0 {
		return BatchStats{}, nil, nil
	}
	opErrs := make([]error, len(tuples))

	// Phase 1: per-tuple digests and signatures, parallel across tuples.
	prep := t.presignTuples(tuples, opErrs)

	t.mu.Lock()
	defer t.mu.Unlock()

	b := &treeBatch{
		t:      t,
		leaves: make(map[storage.PageID]*vbLeaf),
		inners: make(map[storage.PageID]*vbInternal),
		u:      make(map[storage.PageID]digest.Value),
		dirty:  make(map[storage.PageID]bool),
		tupU:   make(map[string]digest.Value),
	}
	if t.locks != nil {
		b.txn = t.locks.Begin()
		defer t.locks.ReleaseAll(b.txn)
	}

	// Phase 2: structural inserts; digests untouched, dirty set grows.
	applied := 0
	for i := range prep {
		if opErrs[i] != nil {
			continue
		}
		split, err := b.insertAt(t.root, &prep[i])
		if err != nil {
			if !isOpError(err) {
				return BatchStats{}, opErrs, err
			}
			opErrs[i] = err
			continue
		}
		if split != nil {
			if err := b.growRoot(split); err != nil {
				return BatchStats{}, opErrs, err
			}
		}
		applied++
	}
	if applied == 0 {
		return BatchStats{}, opErrs, nil
	}

	// Phase 3: repair — recompute each dirty node's digest once
	// (bottom-up), sign it once (in parallel), install, flush.
	stats := BatchStats{Applied: applied, RootResigns: 1}
	var err error
	stats.NodesResigned, err = b.repair()
	if err != nil {
		return BatchStats{}, opErrs, err
	}
	return stats, opErrs, nil
}

// preparedTuple carries one tuple's pre-computed crypto into the
// structural phase.
type preparedTuple struct {
	keyBytes []byte
	stored   []byte // encoded heap record (tuple + signed attribute digests)
	ut       digest.Value
	dt       sig.Signature
}

// presignTuples runs phase 1 with the build worker pool; failures land in
// opErrs and leave the slot unused.
func (t *Tree) presignTuples(tuples []schema.Tuple, opErrs []error) []preparedTuple {
	prep := make([]preparedTuple, len(tuples))
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < t.buildPar; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				attrs, ut, err := t.tupleDigests(tuples[i])
				if err != nil {
					opErrs[i] = opError(err)
					continue
				}
				st, err := t.makeStored(tuples[i], attrs)
				if err != nil {
					opErrs[i] = opError(err)
					continue
				}
				dt, err := t.sealDigest(ut)
				if err != nil {
					opErrs[i] = opError(err)
					continue
				}
				kb := tuples[i].Key(t.sch).KeyBytes()
				if maxEntry := vbLeafHeader + 2 + len(kb) + 6 + 2 + len(dt); maxEntry > t.bp.PageSize() {
					opErrs[i] = opError(fmt.Errorf("vbtree: leaf entry of %d bytes exceeds page size", maxEntry))
					continue
				}
				prep[i] = preparedTuple{keyBytes: kb, stored: st.EncodeBytes(), ut: ut, dt: dt}
			}
		}()
	}
	for i := range tuples {
		work <- i
	}
	close(work)
	wg.Wait()
	return prep
}

// batchOpError marks failures scoped to one tuple of a batch; the rest of
// the batch proceeds.
type batchOpError struct{ err error }

func (e *batchOpError) Error() string { return e.err.Error() }
func (e *batchOpError) Unwrap() error { return e.err }

func opError(err error) error { return &batchOpError{err: err} }

func isOpError(err error) bool {
	if _, ok := err.(*batchOpError); ok {
		return true
	}
	return err == ErrDuplicateKey
}

// treeBatch is the in-flight state of one InsertBatch: decoded nodes, the
// dirty set, and digest caches used by repair. The decoded node caches
// are authoritative over the page bytes until repair flushes them.
type treeBatch struct {
	t      *Tree
	leaves map[storage.PageID]*vbLeaf
	inners map[storage.PageID]*vbInternal
	// u caches unsigned node digests: recovered once for clean nodes,
	// recomputed bottom-up for dirty ones during repair.
	u map[storage.PageID]digest.Value
	// dirty marks nodes whose subtree changed; exactly these are
	// recomputed and re-signed. Dirtiness propagates to the root.
	dirty map[storage.PageID]bool
	// tupU caches unsigned tuple digests by signature bytes, so leaf
	// recomputation recovers each pre-existing entry at most once per
	// batch (new entries are known without any recovery).
	tupU map[string]digest.Value
	txn  lock.TxnID
}

// placeholderSig reserves exactly one stored entry's worth of space in a
// node entry whose real value is produced by repair, keeping encodedSize
// checks exact during the structural phase.
func (b *treeBatch) placeholderSig() sig.Signature {
	return make(sig.Signature, b.t.storedLen())
}

func (b *treeBatch) leaf(pid storage.PageID) (*vbLeaf, error) {
	if n, ok := b.leaves[pid]; ok {
		return n, nil
	}
	n, err := b.t.fetchLeaf(pid)
	if err != nil {
		return nil, err
	}
	b.leaves[pid] = n
	return n, nil
}

func (b *treeBatch) inner(pid storage.PageID) (*vbInternal, error) {
	if n, ok := b.inners[pid]; ok {
		return n, nil
	}
	n, err := b.t.fetchInternal(pid)
	if err != nil {
		return nil, err
	}
	b.inners[pid] = n
	return n, nil
}

// nodeType resolves a page's role through the decoded caches first, so
// nodes created during this batch (whose pages are not yet encoded) are
// classified correctly.
func (b *treeBatch) nodeType(pid storage.PageID) (storage.PageType, error) {
	if _, ok := b.leaves[pid]; ok {
		return storage.PageVBLeaf, nil
	}
	if _, ok := b.inners[pid]; ok {
		return storage.PageVBInternal, nil
	}
	return b.t.pageType(pid)
}

// insertAt inserts one prepared tuple under pid — structurally only. A
// returned split carries the new right sibling; digests are repaired
// after the whole batch has been placed.
func (b *treeBatch) insertAt(pid storage.PageID, pt *preparedTuple) (*vbSplit, error) {
	if err := b.t.xlock(b.txn, pid); err != nil {
		return nil, err
	}
	nt, err := b.nodeType(pid)
	if err != nil {
		return nil, err
	}
	if nt == storage.PageVBLeaf {
		return b.insertLeaf(pid, pt)
	}

	n, err := b.inner(pid)
	if err != nil {
		return nil, err
	}
	ci := n.childIndex(pt.keyBytes)
	split, err := b.insertAt(n.children[ci], pt)
	if err != nil {
		return nil, err
	}
	// The subtree under us changed, so our digest will too.
	b.dirty[pid] = true
	if split != nil {
		n.keys = insertKey(n.keys, ci, split.sep)
		n.children = insertChild(n.children, ci+1, split.right)
		// Signature-length placeholder (so size checks are exact); repair
		// signs the new child once, at the end.
		n.sigs = insertSig(n.sigs, ci+1, b.placeholderSig())
	}
	if n.encodedSize() <= b.t.bp.PageSize() {
		return nil, nil
	}
	return b.splitInner(pid, n)
}

func (b *treeBatch) insertLeaf(pid storage.PageID, pt *preparedTuple) (*vbSplit, error) {
	n, err := b.leaf(pid)
	if err != nil {
		return nil, err
	}
	i := n.search(pt.keyBytes)
	if i < len(n.keys) && compare(n.keys[i], pt.keyBytes) == 0 {
		return nil, ErrDuplicateKey
	}
	rid, err := b.t.heap.Insert(pt.stored)
	if err != nil {
		return nil, err
	}
	n.keys = insertKey(n.keys, i, pt.keyBytes)
	n.rids = insertRID(n.rids, i, rid)
	n.sigs = insertSig(n.sigs, i, pt.dt)
	b.tupU[string(pt.dt)] = pt.ut
	b.dirty[pid] = true

	if n.encodedSize() <= b.t.bp.PageSize() {
		return nil, nil
	}

	mid := len(n.keys) / 2
	rf, err := b.t.bp.NewPage(storage.PageVBLeaf)
	if err != nil {
		return nil, err
	}
	rightPid := rf.ID()
	b.t.bp.Unpin(rf, true)
	right := &vbLeaf{
		next: n.next,
		keys: append([][]byte(nil), n.keys[mid:]...),
		rids: append([]storage.RecordID(nil), n.rids[mid:]...),
		sigs: append([]sig.Signature(nil), n.sigs[mid:]...),
	}
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.sigs = n.sigs[:mid]
	n.next = rightPid
	if err := b.t.xlock(b.txn, rightPid); err != nil {
		return nil, err
	}
	b.leaves[rightPid] = right
	b.dirty[rightPid] = true
	return &vbSplit{sep: append([]byte(nil), right.keys[0]...), right: rightPid}, nil
}

// splitInner splits an overflowing internal node (structurally).
func (b *treeBatch) splitInner(pid storage.PageID, n *vbInternal) (*vbSplit, error) {
	mid := len(n.keys) / 2
	upKey := append([]byte(nil), n.keys[mid]...)
	rf, err := b.t.bp.NewPage(storage.PageVBInternal)
	if err != nil {
		return nil, err
	}
	rightPid := rf.ID()
	b.t.bp.Unpin(rf, true)
	right := &vbInternal{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]storage.PageID(nil), n.children[mid+1:]...),
		sigs:     append([]sig.Signature(nil), n.sigs[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	n.sigs = n.sigs[:mid+1]
	if err := b.t.xlock(b.txn, rightPid); err != nil {
		return nil, err
	}
	b.inners[rightPid] = right
	b.dirty[rightPid] = true
	return &vbSplit{sep: upKey, right: rightPid}, nil
}

// growRoot installs a new root over the split halves of the old one.
func (b *treeBatch) growRoot(split *vbSplit) error {
	f, err := b.t.bp.NewPage(storage.PageVBInternal)
	if err != nil {
		return err
	}
	newRootPid := f.ID()
	b.t.bp.Unpin(f, true)
	if err := b.t.xlock(b.txn, newRootPid); err != nil {
		return err
	}
	b.inners[newRootPid] = &vbInternal{
		keys:     [][]byte{split.sep},
		children: []storage.PageID{b.t.root, split.right},
		// Repair signs both children once, at the end.
		sigs: []sig.Signature{b.placeholderSig(), b.placeholderSig()},
	}
	b.dirty[newRootPid] = true
	b.t.root = newRootPid
	b.t.height++
	return nil
}

// computeU returns a dirty node's recomputed unsigned digest, recursing
// bottom-up; clean constituents are recovered from their stored (still
// valid) signatures at most once per batch.
func (b *treeBatch) computeU(pid storage.PageID) (digest.Value, error) {
	if u, ok := b.u[pid]; ok {
		return u, nil
	}
	if n, ok := b.leaves[pid]; ok {
		acc := b.t.acc.NewAcc()
		for _, s := range n.sigs {
			u, ok := b.tupU[string(s)]
			if !ok {
				var err error
				if u, err = b.t.childU(s); err != nil {
					return nil, err
				}
				b.tupU[string(s)] = u
			}
			if err := acc.Add(u); err != nil {
				return nil, err
			}
		}
		u := acc.Value()
		b.u[pid] = u
		return u, nil
	}
	n, ok := b.inners[pid]
	if !ok {
		return nil, fmt.Errorf("vbtree: dirty node %d missing from batch cache", pid)
	}
	acc := b.t.acc.NewAcc()
	for i, child := range n.children {
		var u digest.Value
		var err error
		if b.dirty[child] {
			u, err = b.computeU(child)
		} else {
			u, err = b.cleanU(child, n.sigs[i])
		}
		if err != nil {
			return nil, err
		}
		if err := acc.Add(u); err != nil {
			return nil, err
		}
	}
	u := acc.Value()
	b.u[pid] = u
	return u, nil
}

// cleanU reads an untouched node's digest from its stored entry (one
// recovery per batch under the legacy scheme, a cast under Merkle).
func (b *treeBatch) cleanU(pid storage.PageID, stored sig.Signature) (digest.Value, error) {
	if u, ok := b.u[pid]; ok {
		return u, nil
	}
	u, err := b.t.childU(stored)
	if err != nil {
		return nil, err
	}
	b.u[pid] = u
	return u, nil
}

// repair recomputes each dirty node's digest once (bottom-up from the
// root's dirty spine), seals each exactly once, installs the fresh
// entries into parents and the root anchor, and flushes every dirtied
// page. Under the legacy scheme each dirty node is re-signed (in
// parallel); under a Merkle scheme the entries are the raw digests and
// exactly ONE signature is produced — over the root. Returns how many
// signatures the repair spent.
func (b *treeBatch) repair() (int, error) {
	if _, err := b.computeU(b.t.root); err != nil {
		return 0, err
	}

	dirty := make([]storage.PageID, 0, len(b.dirty))
	for pid := range b.dirty {
		dirty = append(dirty, pid)
	}
	sigs := make(map[storage.PageID]sig.Signature, len(dirty))
	signed := len(dirty)
	if b.t.merkle {
		signed = 1
		for _, pid := range dirty {
			sigs[pid] = sig.Signature(append([]byte(nil), b.u[pid]...))
		}
	} else {
		var sigMu sync.Mutex
		var firstErr error
		var wg sync.WaitGroup
		work := make(chan storage.PageID)
		for w := 0; w < b.t.buildPar; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for pid := range work {
					s, err := b.t.sign(b.u[pid])
					sigMu.Lock()
					if err != nil {
						if firstErr == nil {
							firstErr = err
						}
					} else {
						sigs[pid] = s
					}
					sigMu.Unlock()
				}
			}()
		}
		for _, pid := range dirty {
			work <- pid
		}
		close(work)
		wg.Wait()
		if firstErr != nil {
			return 0, firstErr
		}
	}

	// Install child entries into every cached parent, then flush. Every
	// dirty node's parent is itself dirty (digest changes propagate to the
	// root), so walking the cached internals covers all installations.
	for pid, n := range b.inners {
		if !b.dirty[pid] {
			continue
		}
		for i, child := range n.children {
			if s, ok := sigs[child]; ok {
				n.sigs[i] = s
			}
		}
		if err := b.t.writeInternal(pid, n); err != nil {
			return 0, err
		}
	}
	for pid, n := range b.leaves {
		if !b.dirty[pid] {
			continue
		}
		if err := b.t.writeLeaf(pid, n); err != nil {
			return 0, err
		}
	}
	if b.t.merkle {
		rs, err := b.t.sign(b.u[b.t.root])
		if err != nil {
			return 0, err
		}
		b.t.rootSig = rs
	} else {
		b.t.rootSig = sigs[b.t.root]
	}
	b.t.rootU = b.u[b.t.root]
	return signed, nil
}
