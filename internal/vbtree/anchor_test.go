package vbtree

import (
	"bytes"
	"testing"
)

// TestAnchorRootPinsEnvelope proves the property sharded verification
// rests on: with Query.AnchorRoot the VO's enveloping subtree is the
// whole tree, so the top digest recovers to the root digest — even for
// a narrow query whose minimal envelope would sit several levels down.
func TestAnchorRootPinsEnvelope(t *testing.T) {
	h := newHarness(t, 300, 1024, false)
	height := h.tree.Height()
	if height < 2 {
		t.Fatalf("need a multi-level tree, height = %d", height)
	}

	narrow := Query{Lo: i64(42), Hi: i64(43)}

	// Without anchoring, a two-tuple query envelopes a low subtree.
	rs, w := h.query(t, narrow)
	if len(rs.Tuples) != 2 {
		t.Fatalf("got %d tuples, want 2", len(rs.Tuples))
	}
	if int(w.TopLevel) == height {
		t.Skip("minimal envelope already at the root; tree too small to distinguish")
	}

	narrow.AnchorRoot = true
	rsA, wA := h.query(t, narrow)
	if len(rsA.Tuples) != 2 {
		t.Fatalf("anchored query got %d tuples, want 2", len(rsA.Tuples))
	}
	if int(wA.TopLevel) != height {
		t.Fatalf("anchored TopLevel = %d, want tree height %d", wA.TopLevel, height)
	}
	if !bytes.Equal(wA.TopDigest, h.tree.RootSig()) {
		t.Fatal("anchored TopDigest is not the root signature")
	}
	// The anchored VO still verifies with the standard verifier.
	h.mustVerify(t, rsA, wA)

	// And the recovered top digest equals Tree.RootDigest — the exact
	// comparison the client performs against the signed shard map.
	rd, err := h.tree.RootDigest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.key.Public().Recover(wA.TopDigest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rd, got) {
		t.Fatal("recovered top digest differs from Tree.RootDigest")
	}

	// An anchored empty result also verifies (the whole tree proves the
	// range holds nothing).
	empty := Query{Lo: i64(100_000), Hi: i64(100_010), AnchorRoot: true}
	rsE, wE := h.query(t, empty)
	if len(rsE.Tuples) != 0 {
		t.Fatalf("expected empty result, got %d tuples", len(rsE.Tuples))
	}
	if int(wE.TopLevel) != height {
		t.Fatalf("empty anchored TopLevel = %d, want %d", wE.TopLevel, height)
	}
	h.mustVerify(t, rsE, wE)
}
