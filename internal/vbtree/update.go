package vbtree

import (
	"fmt"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// Insert adds a tuple at the central server (paper §3.4, Insert). The new
// tuple's digest is *multiplied into* each node digest on the root-to-leaf
// path — the commutative combiner makes this a constant amount of work per
// level:
//
//	D_N' = s( s⁻¹(D_N) · g^(d+1)(U_T) )   for the node d levels above the leaf.
//
// Nodes on the path are X-locked while their digests are modified. A node
// split recomputes the digests of the two halves from their entries.
func (t *Tree) Insert(tup schema.Tuple) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.signer == nil {
		return ErrReadOnly
	}
	attrs, ut, err := t.tupleDigests(tup)
	if err != nil {
		return err
	}
	st, err := t.makeStored(tup, attrs)
	if err != nil {
		return err
	}
	dt, err := t.sealDigest(ut)
	if err != nil {
		return err
	}
	keyBytes := tup.Key(t.sch).KeyBytes()

	maxEntry := vbLeafHeader + 2 + len(keyBytes) + 6 + 2 + len(dt)
	if maxEntry > t.bp.PageSize() {
		return fmt.Errorf("vbtree: leaf entry of %d bytes exceeds page size", maxEntry)
	}

	var txn lock.TxnID
	if t.locks != nil {
		txn = t.locks.Begin()
		defer t.locks.ReleaseAll(txn)
	}

	rootOldU, err := t.currentRootU()
	if err != nil {
		return err
	}
	res, err := t.insertAt(t.root, rootOldU, keyBytes, st, ut, dt, txn)
	if err != nil {
		return err
	}
	if res.split == nil {
		rs, err := t.sign(res.newU)
		if err != nil {
			return err
		}
		t.rootSig = rs
		t.rootU = res.newU
		return nil
	}
	// Root split: a new root over (old root, right).
	leftSig, err := t.sealDigest(res.newU)
	if err != nil {
		return err
	}
	rightSig, err := t.sealDigest(res.split.rightU)
	if err != nil {
		return err
	}
	f, err := t.bp.NewPage(storage.PageVBInternal)
	if err != nil {
		return err
	}
	newRoot := &vbInternal{
		keys:     [][]byte{res.split.sep},
		children: []storage.PageID{t.root, res.split.right},
		sigs:     []sig.Signature{leftSig, rightSig},
	}
	if err := newRoot.encode(f.Page().Bytes()); err != nil {
		t.bp.Unpin(f, false)
		return err
	}
	t.root = f.ID()
	t.bp.Unpin(f, true)
	t.height++
	acc := t.acc.NewAcc()
	if err := acc.Add(res.newU); err != nil {
		return err
	}
	if err := acc.Add(res.split.rightU); err != nil {
		return err
	}
	rs, err := t.sign(acc.Value())
	if err != nil {
		return err
	}
	t.rootSig = rs
	t.rootU = acc.Value()
	return nil
}

// insertResult carries a node's new unsigned digest (and split info) back
// to its parent, which owns the signed copy.
type insertResult struct {
	newU  digest.Value
	split *vbSplit
}

type vbSplit struct {
	sep    []byte
	right  storage.PageID
	rightU digest.Value
}

func (t *Tree) insertAt(pid storage.PageID, myOldU digest.Value, keyBytes []byte,
	st *vo.StoredTuple, ut digest.Value, dt sig.Signature, txn lock.TxnID) (insertResult, error) {

	if err := t.xlock(txn, pid); err != nil {
		return insertResult{}, err
	}
	pt, err := t.pageType(pid)
	if err != nil {
		return insertResult{}, err
	}
	if pt == storage.PageVBLeaf {
		return t.insertLeaf(pid, myOldU, keyBytes, st, ut, dt)
	}

	n, err := t.fetchInternal(pid)
	if err != nil {
		return insertResult{}, err
	}
	ci := n.childIndex(keyBytes)
	childOldU, err := t.childU(n.sigs[ci])
	if err != nil {
		return insertResult{}, err
	}
	childRes, err := t.insertAt(n.children[ci], childOldU, keyBytes, st, ut, dt, txn)
	if err != nil {
		return insertResult{}, err
	}
	// Refresh: the child call may have dirtied our page only via its own
	// pages; our decoded copy is still valid because only this goroutine
	// mutates the tree (t.mu is held).
	childNewSig, err := t.sealDigest(childRes.newU)
	if err != nil {
		return insertResult{}, err
	}
	n.sigs[ci] = childNewSig

	// My digest: swap the child's factor.
	acc, err := t.acc.AccFrom(myOldU)
	if err != nil {
		return insertResult{}, err
	}
	if err := acc.Remove(childOldU); err != nil {
		return insertResult{}, err
	}
	if err := acc.Add(childRes.newU); err != nil {
		return insertResult{}, err
	}
	if childRes.split != nil {
		rightSig, err := t.sealDigest(childRes.split.rightU)
		if err != nil {
			return insertResult{}, err
		}
		// Insert the new separator/child after ci.
		n.keys = insertKey(n.keys, ci, childRes.split.sep)
		n.children = insertChild(n.children, ci+1, childRes.split.right)
		n.sigs = insertSig(n.sigs, ci+1, rightSig)
		if err := acc.Add(childRes.split.rightU); err != nil {
			return insertResult{}, err
		}
	}
	myNewU := acc.Value()

	if n.encodedSize() <= t.bp.PageSize() {
		if err := t.writeInternal(pid, n); err != nil {
			return insertResult{}, err
		}
		return insertResult{newU: myNewU}, nil
	}

	// Split this internal node; recompute both halves' digests from the
	// (recovered) child digests.
	mid := len(n.keys) / 2
	upKey := append([]byte(nil), n.keys[mid]...)
	right := &vbInternal{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]storage.PageID(nil), n.children[mid+1:]...),
		sigs:     append([]sig.Signature(nil), n.sigs[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	n.sigs = n.sigs[:mid+1]

	leftU, err := t.combineChildSigs(n.sigs)
	if err != nil {
		return insertResult{}, err
	}
	rightU, err := t.combineChildSigs(right.sigs)
	if err != nil {
		return insertResult{}, err
	}
	rf, err := t.bp.NewPage(storage.PageVBInternal)
	if err != nil {
		return insertResult{}, err
	}
	if err := right.encode(rf.Page().Bytes()); err != nil {
		t.bp.Unpin(rf, false)
		return insertResult{}, err
	}
	rightPid := rf.ID()
	t.bp.Unpin(rf, true)
	if err := t.xlock(txn, rightPid); err != nil {
		return insertResult{}, err
	}
	if err := t.writeInternal(pid, n); err != nil {
		return insertResult{}, err
	}
	return insertResult{
		newU:  leftU,
		split: &vbSplit{sep: upKey, right: rightPid, rightU: rightU},
	}, nil
}

func (t *Tree) insertLeaf(pid storage.PageID, myOldU digest.Value, keyBytes []byte,
	st *vo.StoredTuple, ut digest.Value, dt sig.Signature) (insertResult, error) {

	n, err := t.fetchLeaf(pid)
	if err != nil {
		return insertResult{}, err
	}
	i := n.search(keyBytes)
	if i < len(n.keys) && compare(n.keys[i], keyBytes) == 0 {
		return insertResult{}, ErrDuplicateKey
	}
	rid, err := t.heap.Insert(st.EncodeBytes())
	if err != nil {
		return insertResult{}, err
	}
	n.keys = insertKey(n.keys, i, keyBytes)
	n.rids = insertRID(n.rids, i, rid)
	n.sigs = insertSig(n.sigs, i, dt)

	if n.encodedSize() <= t.bp.PageSize() {
		// The paper's incremental update: U' = U · g(U_T).
		acc, err := t.acc.AccFrom(myOldU)
		if err != nil {
			return insertResult{}, err
		}
		if err := acc.Add(ut); err != nil {
			return insertResult{}, err
		}
		if err := t.writeLeaf(pid, n); err != nil {
			return insertResult{}, err
		}
		return insertResult{newU: acc.Value()}, nil
	}

	// Split; recompute both halves from their tuple digests.
	mid := len(n.keys) / 2
	rf, err := t.bp.NewPage(storage.PageVBLeaf)
	if err != nil {
		return insertResult{}, err
	}
	right := &vbLeaf{
		next: n.next,
		keys: append([][]byte(nil), n.keys[mid:]...),
		rids: append([]storage.RecordID(nil), n.rids[mid:]...),
		sigs: append([]sig.Signature(nil), n.sigs[mid:]...),
	}
	n.keys = n.keys[:mid]
	n.rids = n.rids[:mid]
	n.sigs = n.sigs[:mid]
	n.next = rf.ID()
	if err := right.encode(rf.Page().Bytes()); err != nil {
		t.bp.Unpin(rf, false)
		return insertResult{}, err
	}
	rightPid := rf.ID()
	t.bp.Unpin(rf, true)
	if err := t.writeLeaf(pid, n); err != nil {
		return insertResult{}, err
	}
	leftU, err := t.combineChildSigs(n.sigs)
	if err != nil {
		return insertResult{}, err
	}
	rightU, err := t.combineChildSigs(right.sigs)
	if err != nil {
		return insertResult{}, err
	}
	return insertResult{
		newU: leftU,
		split: &vbSplit{
			sep:    append([]byte(nil), right.keys[0]...),
			right:  rightPid,
			rightU: rightU,
		},
	}, nil
}

// combineChildSigs reads each stored entry's digest (recovering it under
// the legacy scheme) and combines them — the from-scratch recomputation
// used after splits and deletes.
func (t *Tree) combineChildSigs(sigs []sig.Signature) (digest.Value, error) {
	acc := t.acc.NewAcc()
	for _, s := range sigs {
		u, err := t.childU(s)
		if err != nil {
			return nil, err
		}
		if err := acc.Add(u); err != nil {
			return nil, err
		}
	}
	return acc.Value(), nil
}

// Delete removes the tuple with the given key. ErrKeyNotFound if absent.
func (t *Tree) Delete(key schema.Datum) error {
	n, err := t.DeleteRange(&key, &key)
	if err != nil {
		return err
	}
	if n == 0 {
		return ErrKeyNotFound
	}
	return nil
}

// DeleteRange removes every tuple with lo <= key <= hi (nil = unbounded)
// and returns how many were removed. Following the paper, the transaction
// X-locks all digests on the paths to the affected leaves, deletes the
// tuples, then recomputes the digests back up to the root. Nodes are
// detached only when they become empty.
func (t *Tree) DeleteRange(lo, hi *schema.Datum) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.signer == nil {
		return 0, ErrReadOnly
	}
	var loB, hiB []byte
	if lo != nil {
		loB = lo.KeyBytes()
	}
	if hi != nil {
		hiB = hi.KeyBytes()
	}
	var txn lock.TxnID
	if t.locks != nil {
		txn = t.locks.Begin()
		defer t.locks.ReleaseAll(txn)
	}
	rootOldU, err := t.currentRootU()
	if err != nil {
		return 0, err
	}
	res, err := t.deleteAt(t.root, rootOldU, loB, hiB, txn)
	if err != nil {
		return 0, err
	}
	if res.removed == 0 {
		return 0, nil
	}
	if res.empty {
		// Everything gone: reset to a fresh empty leaf.
		f, err := t.bp.NewPage(storage.PageVBLeaf)
		if err != nil {
			return 0, err
		}
		empty := &vbLeaf{}
		if err := empty.encode(f.Page().Bytes()); err != nil {
			t.bp.Unpin(f, false)
			return 0, err
		}
		t.root = f.ID()
		t.bp.Unpin(f, true)
		t.height = 1
		rs, err := t.sign(t.acc.Identity())
		if err != nil {
			return 0, err
		}
		t.rootSig = rs
		t.rootU = t.acc.Identity()
		return res.removed, nil
	}
	rs, err := t.sign(res.newU)
	if err != nil {
		return 0, err
	}
	t.rootSig = rs
	t.rootU = res.newU
	// Collapse trivial roots (an internal root with a single child).
	for {
		pt, err := t.pageType(t.root)
		if err != nil {
			return 0, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := t.fetchInternal(t.root)
		if err != nil {
			return 0, err
		}
		if len(n.keys) > 0 {
			break
		}
		t.root = n.children[0]
		u, err := t.childU(n.sigs[0])
		if err != nil {
			return 0, err
		}
		t.rootU = append(digest.Value(nil), u...)
		if t.merkle {
			// The stored entry is a raw digest; the new root still needs a
			// real signature as the anchor.
			rs, err := t.sign(t.rootU)
			if err != nil {
				return 0, err
			}
			t.rootSig = rs
		} else {
			t.rootSig = n.sigs[0].Clone()
		}
		t.height--
	}
	return res.removed, nil
}

type deleteResult struct {
	newU    digest.Value
	empty   bool
	removed int
}

func (t *Tree) deleteAt(pid storage.PageID, myOldU digest.Value, lo, hi []byte, txn lock.TxnID) (deleteResult, error) {
	if err := t.xlock(txn, pid); err != nil {
		return deleteResult{}, err
	}
	pt, err := t.pageType(pid)
	if err != nil {
		return deleteResult{}, err
	}
	if pt == storage.PageVBLeaf {
		n, err := t.fetchLeaf(pid)
		if err != nil {
			return deleteResult{}, err
		}
		var keep vbLeaf
		keep.next = n.next
		removed := 0
		for i := range n.keys {
			inRange := (lo == nil || compare(n.keys[i], lo) >= 0) &&
				(hi == nil || compare(n.keys[i], hi) <= 0)
			if inRange {
				if err := t.heap.Delete(n.rids[i]); err != nil {
					return deleteResult{}, err
				}
				removed++
				continue
			}
			keep.keys = append(keep.keys, n.keys[i])
			keep.rids = append(keep.rids, n.rids[i])
			keep.sigs = append(keep.sigs, n.sigs[i])
		}
		if removed == 0 {
			return deleteResult{newU: myOldU}, nil
		}
		if err := t.writeLeaf(pid, &keep); err != nil {
			return deleteResult{}, err
		}
		if len(keep.keys) == 0 {
			return deleteResult{empty: true, removed: removed}, nil
		}
		newU, err := t.combineChildSigs(keep.sigs)
		if err != nil {
			return deleteResult{}, err
		}
		return deleteResult{newU: newU, removed: removed}, nil
	}

	n, err := t.fetchInternal(pid)
	if err != nil {
		return deleteResult{}, err
	}
	acc, err := t.acc.AccFrom(myOldU)
	if err != nil {
		return deleteResult{}, err
	}
	removed := 0
	var detaches []int
	for i := 0; i < len(n.children); i++ {
		clo, chi := n.childSpan(i)
		if !spanIntersects(clo, chi, lo, hi) {
			continue
		}
		childOldU, err := t.childU(n.sigs[i])
		if err != nil {
			return deleteResult{}, err
		}
		res, err := t.deleteAt(n.children[i], childOldU, lo, hi, txn)
		if err != nil {
			return deleteResult{}, err
		}
		removed += res.removed
		if res.removed == 0 {
			continue
		}
		if err := acc.Remove(childOldU); err != nil {
			return deleteResult{}, err
		}
		if res.empty {
			detaches = append(detaches, i)
			continue
		}
		if err := acc.Add(res.newU); err != nil {
			return deleteResult{}, err
		}
		cs, err := t.sealDigest(res.newU)
		if err != nil {
			return deleteResult{}, err
		}
		n.sigs[i] = cs
	}
	// Detach emptied children (highest index first to keep indices valid).
	for j := len(detaches) - 1; j >= 0; j-- {
		i := detaches[j]
		n.children = append(n.children[:i], n.children[i+1:]...)
		n.sigs = append(n.sigs[:i], n.sigs[i+1:]...)
		switch {
		case len(n.keys) == 0:
			// Single-child node lost its child; handled below as empty.
		case i == 0:
			n.keys = n.keys[1:]
		default:
			n.keys = append(n.keys[:i-1], n.keys[i:]...)
		}
	}
	if removed == 0 {
		return deleteResult{newU: myOldU}, nil
	}
	if len(n.children) == 0 {
		return deleteResult{empty: true, removed: removed}, nil
	}
	if err := t.writeInternal(pid, n); err != nil {
		return deleteResult{}, err
	}
	return deleteResult{newU: acc.Value(), removed: removed}, nil
}

// xlock X-locks a page when the locking protocol is active.
func (t *Tree) xlock(txn lock.TxnID, pid storage.PageID) error {
	if t.locks == nil {
		return nil
	}
	return t.locks.Acquire(txn, t.lockRes(pid), lock.Exclusive)
}

func insertKey(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = append([]byte(nil), v...)
	return s
}

func insertSig(s []sig.Signature, i int, v sig.Signature) []sig.Signature {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v.Clone()
	return s
}

func insertRID(s []storage.RecordID, i int, v storage.RecordID) []storage.RecordID {
	s = append(s, storage.RecordID{})
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertChild(s []storage.PageID, i int, v storage.PageID) []storage.PageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
