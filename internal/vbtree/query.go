package vbtree

import (
	"context"

	"edgeauth/internal/schema"
	"edgeauth/internal/vo"
)

// Query describes a selection/projection over the indexed table.
type Query struct {
	// Lo/Hi bound the primary key (closed interval); nil means unbounded.
	Lo, Hi *schema.Datum
	// Filter, when non-nil, is an additional non-key predicate evaluated
	// on full base tuples; non-matching tuples inside the range become
	// "gaps" covered by D_S digests.
	Filter func(schema.Tuple) bool
	// Project lists the columns to return; nil means all columns.
	// Filtered-out attributes are covered by D_P digests.
	Project []string
	// AnchorRoot forces the VO's enveloping subtree to be the whole
	// tree, so the VO's TopDigest recovers to the root digest. Sharded
	// queries set it: the client binds each per-shard answer to the
	// signed shard map by comparing the recovered top digest against
	// the root digest the map pins, which only works when the envelope
	// tops out at the root. Costs a few extra D_S sibling digests along
	// the root path.
	AnchorRoot bool
}

// matched is one qualifying tuple with everything the VO needs.
type matched struct {
	keyBytes []byte
	st       *vo.StoredTuple
}

// The Tree's read operations delegate to a View over the live buffer
// pool, holding the tree's read lock for the duration — the classic
// shared-mutable-pages mode used where the tree is also being updated in
// place (the central build path, disk-backed tools). Replicas instead
// construct Views directly over pinned immutable snapshots and take no
// locks at all; see NewView.

// viewLocked assembles the read view; callers hold t.mu.
func (t *Tree) viewLocked() (*View, error) {
	return NewView(ViewConfig{
		Pages:     t.bp,
		HeapPages: t.heap.Pages(),
		Schema:    t.sch,
		Acc:       t.acc,
		Pub:       t.pub,
		Now:       t.now,
		Root:      t.root,
		Height:    t.height,
		RootSig:   t.rootSig,
	})
}

// Search returns the stored tuple with the given key, or found=false.
func (t *Tree) Search(key schema.Datum) (*vo.StoredTuple, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, err := t.viewLocked()
	if err != nil {
		return nil, false, err
	}
	return v.Search(key)
}

// RunQuery executes q and returns the verifiable result: the projected
// tuples and the VO over the enveloping subtree (paper §3.3). ctx is
// checked between page visits, so a cancelled caller stops the traversal
// and VO crypto early.
func (t *Tree) RunQuery(ctx context.Context, q Query) (*vo.ResultSet, *vo.VO, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, err := t.viewLocked()
	if err != nil {
		return nil, nil, err
	}
	return v.RunQuery(ctx, q)
}

// ScanAll returns every stored tuple in key order (a full-table helper for
// examples and tests; not part of the authenticated protocol).
func (t *Tree) ScanAll() ([]*vo.StoredTuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, err := t.viewLocked()
	if err != nil {
		return nil, err
	}
	return v.ScanAll()
}
