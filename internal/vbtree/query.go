package vbtree

import (
	"errors"
	"fmt"

	"edgeauth/internal/lock"
	"edgeauth/internal/schema"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// Search returns the stored tuple with the given key, or found=false.
func (t *Tree) Search(key schema.Datum) (*vo.StoredTuple, bool, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	kb := key.KeyBytes()
	pid := t.root
	for {
		pt, err := t.pageType(pid)
		if err != nil {
			return nil, false, err
		}
		if pt == storage.PageVBInternal {
			n, err := t.fetchInternal(pid)
			if err != nil {
				return nil, false, err
			}
			pid = n.children[n.childIndex(kb)]
			continue
		}
		n, err := t.fetchLeaf(pid)
		if err != nil {
			return nil, false, err
		}
		i := n.search(kb)
		if i >= len(n.keys) || compare(n.keys[i], kb) != 0 {
			return nil, false, nil
		}
		rec, err := t.heap.Get(n.rids[i])
		if err != nil {
			return nil, false, err
		}
		st, _, err := vo.DecodeStoredTuple(rec)
		if err != nil {
			return nil, false, err
		}
		return st, true, nil
	}
}

// Query describes a selection/projection over the indexed table.
type Query struct {
	// Lo/Hi bound the primary key (closed interval); nil means unbounded.
	Lo, Hi *schema.Datum
	// Filter, when non-nil, is an additional non-key predicate evaluated
	// on full base tuples; non-matching tuples inside the range become
	// "gaps" covered by D_S digests.
	Filter func(schema.Tuple) bool
	// Project lists the columns to return; nil means all columns.
	// Filtered-out attributes are covered by D_P digests.
	Project []string
}

// matched is one qualifying tuple with everything the VO needs.
type matched struct {
	keyBytes []byte
	st       *vo.StoredTuple
}

// RunQuery executes q and returns the verifiable result: the projected
// tuples and the VO over the enveloping subtree. This is the operation an
// edge server performs for every client query (paper §3.3).
func (t *Tree) RunQuery(q Query) (*vo.ResultSet, *vo.VO, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()

	var loB, hiB []byte
	if q.Lo != nil {
		loB = q.Lo.KeyBytes()
	}
	if q.Hi != nil {
		hiB = q.Hi.KeyBytes()
	}
	if loB != nil && hiB != nil && compare(loB, hiB) > 0 {
		return nil, nil, errors.New("vbtree: query range is inverted")
	}

	// Resolve the projection.
	projIdx, projCols, err := t.resolveProjection(q.Project)
	if err != nil {
		return nil, nil, err
	}

	// Phase 1: scan the key range, apply the filter, collect matches.
	matches, err := t.collectMatches(loB, hiB, q.Filter)
	if err != nil {
		return nil, nil, err
	}

	// Phase 2: locate the enveloping subtree and S-lock it while walking.
	var txn lock.TxnID
	if t.locks != nil {
		txn = t.locks.Begin()
		defer t.locks.ReleaseAll(txn)
	}
	v, err := t.buildVO(matches, loB, txn)
	if err != nil {
		return nil, nil, err
	}

	// Phase 3: assemble the projected result set and the D_P digests.
	rs := &vo.ResultSet{
		DB:      t.sch.DB,
		Table:   t.sch.Table,
		Columns: projCols,
	}
	for _, m := range matches {
		rs.Keys = append(rs.Keys, m.st.Tuple.Key(t.sch))
		vals := make([]schema.Datum, len(projIdx))
		for i, ci := range projIdx {
			vals[i] = m.st.Tuple.Values[ci]
		}
		rs.Tuples = append(rs.Tuples, schema.Tuple{Values: vals})
		// Filtered attributes -> D_P (paper Figure 7).
		if len(projIdx) != len(t.sch.Columns) {
			inProj := make([]bool, len(t.sch.Columns))
			for _, ci := range projIdx {
				inProj[ci] = true
			}
			for ci := range t.sch.Columns {
				if !inProj[ci] {
					v.DP = append(v.DP, m.st.AttrSigs[ci].Clone())
				}
			}
		}
	}
	return rs, v, nil
}

// resolveProjection maps q.Project to column indices; nil means identity.
func (t *Tree) resolveProjection(cols []string) ([]int, []string, error) {
	if cols == nil {
		idx := make([]int, len(t.sch.Columns))
		names := make([]string, len(t.sch.Columns))
		for i, c := range t.sch.Columns {
			idx[i] = i
			names[i] = c.Name
		}
		return idx, names, nil
	}
	if len(cols) == 0 {
		return nil, nil, errors.New("vbtree: empty projection")
	}
	idx := make([]int, len(cols))
	seen := make(map[string]bool, len(cols))
	for i, name := range cols {
		ci := t.sch.ColumnIndex(name)
		if ci < 0 {
			return nil, nil, fmt.Errorf("vbtree: unknown column %q", name)
		}
		if seen[name] {
			return nil, nil, fmt.Errorf("vbtree: duplicate projected column %q", name)
		}
		seen[name] = true
		idx[i] = ci
	}
	return idx, cols, nil
}

// collectMatches walks the leaf chain across [lo,hi], loads each tuple and
// applies the filter.
func (t *Tree) collectMatches(lo, hi []byte, filter func(schema.Tuple) bool) ([]matched, error) {
	pid := t.root
	for {
		pt, err := t.pageType(pid)
		if err != nil {
			return nil, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := t.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		if lo == nil {
			pid = n.children[0]
		} else {
			pid = n.children[n.childIndex(lo)]
		}
	}
	var out []matched
	for pid != storage.InvalidPageID {
		n, err := t.fetchLeaf(pid)
		if err != nil {
			return nil, err
		}
		start := 0
		if lo != nil {
			start = n.search(lo)
		}
		for i := start; i < len(n.keys); i++ {
			if hi != nil && compare(n.keys[i], hi) > 0 {
				return out, nil
			}
			rec, err := t.heap.Get(n.rids[i])
			if err != nil {
				return nil, err
			}
			st, _, err := vo.DecodeStoredTuple(rec)
			if err != nil {
				return nil, err
			}
			if filter != nil && !filter(st.Tuple) {
				continue
			}
			out = append(out, matched{keyBytes: n.keys[i], st: st})
		}
		pid = n.next
	}
	return out, nil
}

// buildVO locates the enveloping subtree of the matches and assembles the
// D_S set. For an empty result it envelopes the leaf where lo would land,
// proving (to the extent the paper's model allows) what that region holds.
func (t *Tree) buildVO(matches []matched, lo []byte, txn lock.TxnID) (*vo.VO, error) {
	v := &vo.VO{
		KeyVersion: t.pub.Version,
		Timestamp:  t.now(),
	}

	var spanLo, spanHi []byte
	if len(matches) > 0 {
		spanLo = matches[0].keyBytes
		spanHi = matches[len(matches)-1].keyBytes
	} else if lo != nil {
		spanLo, spanHi = lo, lo
	} // else: empty result with open lo — envelope the leftmost leaf.

	// Membership index for leaf-level checks.
	inResult := make(map[string]bool, len(matches))
	for _, m := range matches {
		inResult[string(m.keyBytes)] = true
	}

	// Descend to the enveloping top: the highest node where the span no
	// longer fits inside a single child.
	pid := t.root
	level := t.height
	topSig := t.rootSig
	for {
		if err := t.slock(txn, pid); err != nil {
			return nil, err
		}
		pt, err := t.pageType(pid)
		if err != nil {
			return nil, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := t.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		loIdx := 0
		if spanLo != nil {
			loIdx = n.childIndex(spanLo)
		}
		hiIdx := 0
		if spanHi != nil {
			hiIdx = n.childIndex(spanHi)
		}
		if loIdx != hiIdx {
			break // the span straddles children: this node is the top
		}
		pid = n.children[loIdx]
		topSig = n.sigs[loIdx]
		level--
	}
	v.TopLevel = uint8(level)
	v.TopDigest = topSig.Clone()

	// Walk the subtree flat-collecting D_S entries.
	topLevel := level
	var walk func(pid storage.PageID, level int) (bool, []vo.Entry, error)
	walk = func(pid storage.PageID, level int) (bool, []vo.Entry, error) {
		if err := t.slock(txn, pid); err != nil {
			return false, nil, err
		}
		pt, err := t.pageType(pid)
		if err != nil {
			return false, nil, err
		}
		if pt == storage.PageVBLeaf {
			n, err := t.fetchLeaf(pid)
			if err != nil {
				return false, nil, err
			}
			var entries []vo.Entry
			has := false
			for i := range n.keys {
				if inResult[string(n.keys[i])] {
					has = true
					continue
				}
				entries = append(entries, vo.Entry{Sig: n.sigs[i].Clone(), Lift: uint8(topLevel)})
			}
			return has, entries, nil
		}
		n, err := t.fetchInternal(pid)
		if err != nil {
			return false, nil, err
		}
		var entries []vo.Entry
		has := false
		childLift := uint8(topLevel - (level - 1))
		for i := range n.children {
			clo, chi := n.childSpan(i)
			if !spanIntersects(clo, chi, spanLo, spanHi) {
				entries = append(entries, vo.Entry{Sig: n.sigs[i].Clone(), Lift: childLift})
				continue
			}
			h, es, err := walk(n.children[i], level-1)
			if err != nil {
				return false, nil, err
			}
			if !h {
				// The child intersects the span but holds no result tuple
				// (a "gap" from a non-key filter): one branch digest is
				// cheaper than its constituent tuple digests.
				entries = append(entries, vo.Entry{Sig: n.sigs[i].Clone(), Lift: childLift})
				continue
			}
			has = true
			entries = append(entries, es...)
		}
		return has, entries, nil
	}
	_, entries, err := walk(pid, level)
	if err != nil {
		return nil, err
	}
	v.DS = entries
	return v, nil
}

// slock S-locks a page when the locking protocol is active.
func (t *Tree) slock(txn lock.TxnID, pid storage.PageID) error {
	if t.locks == nil {
		return nil
	}
	return t.locks.Acquire(txn, t.lockRes(pid), lock.Shared)
}

// ScanAll returns every stored tuple in key order (a full-table helper for
// examples and tests; not part of the authenticated protocol).
func (t *Tree) ScanAll() ([]*vo.StoredTuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	for {
		pt, err := t.pageType(pid)
		if err != nil {
			return nil, err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := t.fetchInternal(pid)
		if err != nil {
			return nil, err
		}
		pid = n.children[0]
	}
	var out []*vo.StoredTuple
	for pid != storage.InvalidPageID {
		n, err := t.fetchLeaf(pid)
		if err != nil {
			return nil, err
		}
		for i := range n.keys {
			rec, err := t.heap.Get(n.rids[i])
			if err != nil {
				return nil, err
			}
			st, _, err := vo.DecodeStoredTuple(rec)
			if err != nil {
				return nil, err
			}
			out = append(out, st)
		}
		pid = n.next
	}
	return out, nil
}
