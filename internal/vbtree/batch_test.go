package vbtree

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/workload"
)

var (
	batchKeyOnce sync.Once
	batchKey     *sig.PrivateKey
)

func batchSigner(t testing.TB) *sig.PrivateKey {
	t.Helper()
	batchKeyOnce.Do(func() { batchKey = sig.MustGenerateKey(512) })
	return batchKey
}

// newBatchTree builds a tree over the workload spec with the given fill.
func newBatchTree(t testing.TB, rows int, fill float64) (*Tree, *schema.Schema, []schema.Tuple) {
	t.Helper()
	k := batchSigner(t)
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	mem, err := storage.NewMemPager(1024)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := storage.NewBufferPool(mem, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	heap, err := storage.NewHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Build(Config{
		Pool: bp, Heap: heap, Schema: sch, Acc: digest.MustNew(digest.DefaultParams()),
		Signer: k, Pub: k.Public(), BuildParallelism: 4,
	}, tuples, fill)
	if err != nil {
		t.Fatal(err)
	}
	return tree, sch, tuples
}

func batchRow(sch *schema.Schema, id int64) schema.Tuple {
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for c := 1; c < len(vals); c++ {
		vals[c] = schema.Str(fmt.Sprintf("batch-payload-%08d", id))
	}
	return schema.Tuple{Values: vals}
}

// TestInsertBatchMatchesPerTuple checks the batch path lands on the exact
// same tree as per-tuple inserts: same structure, same digests, same
// (deterministic) root signature — the commutative combiner at work.
func TestInsertBatchMatchesPerTuple(t *testing.T) {
	perTuple, sch, _ := newBatchTree(t, 200, 0.7)
	batched, _, _ := newBatchTree(t, 200, 0.7)

	var rows []schema.Tuple
	for i := int64(0); i < 40; i++ {
		rows = append(rows, batchRow(sch, 10_000+i*3))
	}
	for _, r := range rows {
		if err := perTuple.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	stats, opErrs, err := batched.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range opErrs {
		if e != nil {
			t.Fatalf("op %d failed: %v", i, e)
		}
	}
	if stats.Applied != len(rows) {
		t.Fatalf("applied %d of %d", stats.Applied, len(rows))
	}
	if stats.RootResigns != 1 {
		t.Fatalf("root re-signed %d times, want 1", stats.RootResigns)
	}
	if !perTuple.RootSig().Equal(batched.RootSig()) {
		t.Fatal("batched tree's root signature diverges from per-tuple inserts")
	}
	if perTuple.Height() != batched.Height() {
		t.Fatalf("heights diverge: %d vs %d", perTuple.Height(), batched.Height())
	}
	if _, err := batched.Audit(); err != nil {
		t.Fatalf("audit after batch: %v", err)
	}
}

// TestInsertBatchVerifiesEndToEnd runs a verified query over a
// batch-mutated tree, covering splits and root growth.
func TestInsertBatchVerifiesEndToEnd(t *testing.T) {
	tree, sch, tuples := newBatchTree(t, 150, 1.0)

	// Sequential keys beyond the existing range: forces leaf splits and at
	// least one level of growth at this page size.
	var rows []schema.Tuple
	for i := int64(0); i < 300; i++ {
		rows = append(rows, batchRow(sch, 50_000+i))
	}
	stats, opErrs, err := tree.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range opErrs {
		if e != nil {
			t.Fatalf("op %d failed: %v", i, e)
		}
	}
	if stats.Applied != len(rows) {
		t.Fatalf("applied %d of %d", stats.Applied, len(rows))
	}
	if n, err := tree.Audit(); err != nil || n != len(tuples)+len(rows) {
		t.Fatalf("audit: n=%d err=%v, want %d tuples", n, err, len(tuples)+len(rows))
	}

	lo, hi := schema.Int64(50_010), schema.Int64(50_030)
	rs, w, err := tree.RunQuery(context.Background(), Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.Tuples) != 21 {
		t.Fatalf("queried %d rows, want 21", len(rs.Tuples))
	}
	if w.TopDigest == nil {
		t.Fatal("query over batch-built region returned no VO anchor")
	}
}

// TestInsertBatchSignerCounting pins the headline accounting: a batch
// spends (columns+1) signatures per tuple — the per-tuple attribute and
// tuple digests no batching can avoid — plus exactly one signature per
// dirtied node, with the root re-signed once per batch instead of once
// per tuple.
func TestInsertBatchSignerCounting(t *testing.T) {
	tree, sch, _ := newBatchTree(t, 200, 0.6)
	k := batchSigner(t)
	var ctr digest.Counters
	k.SetCounters(&ctr)
	defer k.SetCounters(nil)

	var rows []schema.Tuple
	for i := int64(0); i < 32; i++ {
		rows = append(rows, batchRow(sch, 20_000+i*11))
	}
	ctr.Reset()
	stats, opErrs, err := tree.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range opErrs {
		if e != nil {
			t.Fatalf("op %d failed: %v", i, e)
		}
	}
	signs := ctr.Snapshot().SignOps
	perTupleFloor := int64(stats.Applied) * int64(len(sch.Columns)+1)
	if got, want := signs, perTupleFloor+int64(stats.NodesResigned); got != want {
		t.Fatalf("batch spent %d signatures, want %d (= %d per-tuple + %d node re-signs)",
			got, want, perTupleFloor, stats.NodesResigned)
	}
	if stats.RootResigns != 1 {
		t.Fatalf("root re-signed %d times, want exactly 1 per committed batch", stats.RootResigns)
	}
	// The dirtied-node set must be a batch-level quantity, not a per-tuple
	// one: far fewer node re-signs than tuples×height.
	if stats.NodesResigned >= stats.Applied*tree.Height() {
		t.Fatalf("%d node re-signs for %d tuples at height %d — no amortization",
			stats.NodesResigned, stats.Applied, tree.Height())
	}

	// Reference point: the per-tuple path re-signs every path node (root
	// included) for every insert.
	ctr.Reset()
	for i := int64(0); i < 8; i++ {
		if err := tree.Insert(batchRow(sch, 30_000+i*7)); err != nil {
			t.Fatal(err)
		}
	}
	perSigns := ctr.Snapshot().SignOps
	wantMin := 8 * int64(len(sch.Columns)+1+tree.Height()) // splits only add to this
	if perSigns < wantMin {
		t.Fatalf("per-tuple inserts spent %d signatures, expected at least %d", perSigns, wantMin)
	}
}

// TestInsertBatchPerOpErrors checks duplicate keys (against the table and
// inside the batch) fail individually without aborting the batch.
func TestInsertBatchPerOpErrors(t *testing.T) {
	tree, sch, _ := newBatchTree(t, 100, 1.0)

	rows := []schema.Tuple{
		batchRow(sch, 40_000),
		batchRow(sch, 50), // exists in the base table
		batchRow(sch, 40_001),
		batchRow(sch, 40_000),                          // duplicates inside the batch
		{Values: []schema.Datum{schema.Int64(40_002)}}, // wrong arity
		batchRow(sch, 40_003),
	}
	stats, opErrs, err := tree.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 3 {
		t.Fatalf("applied %d, want 3", stats.Applied)
	}
	for _, i := range []int{0, 2, 5} {
		if opErrs[i] != nil {
			t.Fatalf("op %d failed: %v", i, opErrs[i])
		}
	}
	for _, i := range []int{1, 3} {
		if !errors.Is(opErrs[i], ErrDuplicateKey) {
			t.Fatalf("op %d error = %v, want ErrDuplicateKey", i, opErrs[i])
		}
	}
	if opErrs[4] == nil {
		t.Fatal("wrong-arity tuple accepted")
	}
	if _, err := tree.Audit(); err != nil {
		t.Fatalf("audit after partial batch: %v", err)
	}
	// The applied rows are queryable; the failed ones did not corrupt.
	for _, id := range []int64{40_000, 40_001, 40_003} {
		if _, found, err := tree.Search(schema.Int64(id)); err != nil || !found {
			t.Fatalf("row %d missing after batch (err=%v)", id, err)
		}
	}
}

// TestInsertBatchEmptyAndReadOnly covers the degenerate inputs.
func TestInsertBatchEmptyAndReadOnly(t *testing.T) {
	tree, sch, _ := newBatchTree(t, 50, 1.0)
	before := tree.RootSig()
	stats, opErrs, err := tree.InsertBatch(nil)
	if err != nil || opErrs != nil || stats.Applied != 0 || stats.RootResigns != 0 {
		t.Fatalf("empty batch: stats=%+v errs=%v err=%v", stats, opErrs, err)
	}
	if !tree.RootSig().Equal(before) {
		t.Fatal("empty batch changed the root signature")
	}

	// All-duplicates batch: nothing applied, nothing re-signed.
	stats, opErrs, err = tree.InsertBatch([]schema.Tuple{batchRow(sch, 1), batchRow(sch, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 0 || stats.NodesResigned != 0 || stats.RootResigns != 0 {
		t.Fatalf("all-duplicate batch stats = %+v, want zeros", stats)
	}
	if !errors.Is(opErrs[0], ErrDuplicateKey) || !errors.Is(opErrs[1], ErrDuplicateKey) {
		t.Fatalf("all-duplicate batch errors = %v", opErrs)
	}
	if !tree.RootSig().Equal(before) {
		t.Fatal("no-op batch changed the root signature")
	}

	// Edge replicas cannot batch-insert.
	k := batchSigner(t)
	replica, err := Open(Config{
		Pool: tree.bp, Heap: tree.heap, Schema: tree.sch, Acc: tree.acc, Pub: k.Public(),
	}, tree.Root(), tree.Height(), tree.RootSig())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := replica.InsertBatch([]schema.Tuple{batchRow(sch, 60_000)}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only batch insert: %v, want ErrReadOnly", err)
	}
}
