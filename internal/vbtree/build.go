package vbtree

import (
	"fmt"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
)

// Build constructs a fully packed VB-tree from tuples sorted in strictly
// increasing primary-key order (the usual way the central server creates
// the index over an existing table). fill in (0,1] controls node occupancy.
//
// Signing dominates build cost — the paper acknowledges that signing every
// attribute, tuple and node digest "imposes processing overhead on the
// central server" — so attribute/tuple signatures are produced by a small
// worker pool.
func Build(cfg Config, tuples []schema.Tuple, fill float64) (*Tree, error) {
	t, err := attach(cfg)
	if err != nil {
		return nil, err
	}
	if t.signer == nil {
		return nil, ErrReadOnly
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("vbtree: fill factor %v out of (0,1]", fill)
	}

	// Phase 1: digests + signatures, parallel across tuples (the same
	// presign pool the batched insert path uses).
	opErrs := make([]error, len(tuples))
	prep := t.presignTuples(tuples, opErrs)
	for i, e := range opErrs {
		if e != nil {
			return nil, fmt.Errorf("vbtree: preparing tuple %d: %w", i, e)
		}
	}

	// Key-order check (strictly increasing).
	for i := 1; i < len(prep); i++ {
		if compare(prep[i-1].keyBytes, prep[i].keyBytes) >= 0 {
			return nil, fmt.Errorf("vbtree: tuples not in strictly increasing key order at %d", i)
		}
	}

	// Phase 2: heap inserts (sequential to keep record order stable).
	rids := make([]storage.RecordID, len(prep))
	for i := range prep {
		rid, err := t.heap.Insert(prep[i].stored)
		if err != nil {
			return nil, err
		}
		rids[i] = rid
	}

	// Phase 3: pack leaves.
	pageSize := t.bp.PageSize()
	budget := int(float64(pageSize) * fill)
	type levelEntry struct {
		firstKey []byte
		pid      storage.PageID
		u        digest.Value // unsigned node digest
	}
	var leaves []levelEntry
	var cur vbLeaf
	curAcc := t.acc.NewAcc()
	curSize := vbLeafHeader
	flushLeaf := func() error {
		f, err := t.bp.NewPage(storage.PageVBLeaf)
		if err != nil {
			return err
		}
		if err := cur.encode(f.Page().Bytes()); err != nil {
			t.bp.Unpin(f, false)
			return err
		}
		leaves = append(leaves, levelEntry{firstKey: cur.keys[0], pid: f.ID(), u: curAcc.Value()})
		t.bp.Unpin(f, true)
		cur = vbLeaf{}
		curAcc = t.acc.NewAcc()
		curSize = vbLeafHeader
		return nil
	}
	for i := range prep {
		entry := 2 + len(prep[i].keyBytes) + 6 + 2 + len(prep[i].dt)
		if vbLeafHeader+entry > pageSize {
			return nil, fmt.Errorf("vbtree: entry %d of %d bytes exceeds page size", i, entry)
		}
		if len(cur.keys) > 0 && (curSize+entry > budget || curSize+entry > pageSize) {
			if err := flushLeaf(); err != nil {
				return nil, err
			}
		}
		cur.keys = append(cur.keys, prep[i].keyBytes)
		cur.rids = append(cur.rids, rids[i])
		cur.sigs = append(cur.sigs, prep[i].dt)
		if err := curAcc.Add(prep[i].ut); err != nil {
			return nil, err
		}
		curSize += entry
	}
	if len(cur.keys) > 0 {
		if err := flushLeaf(); err != nil {
			return nil, err
		}
	}
	if len(leaves) == 0 {
		// Empty table: a single empty leaf, identity digest.
		f, err := t.bp.NewPage(storage.PageVBLeaf)
		if err != nil {
			return nil, err
		}
		empty := &vbLeaf{}
		if err := empty.encode(f.Page().Bytes()); err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		t.root = f.ID()
		t.bp.Unpin(f, true)
		t.height = 1
		rs, err := t.sign(t.acc.Identity())
		if err != nil {
			return nil, err
		}
		t.rootSig = rs
		t.rootU = t.acc.Identity()
		return t, nil
	}
	// Chain the leaves.
	for i := 0; i < len(leaves)-1; i++ {
		n, err := t.fetchLeaf(leaves[i].pid)
		if err != nil {
			return nil, err
		}
		n.next = leaves[i+1].pid
		if err := t.writeLeaf(leaves[i].pid, n); err != nil {
			return nil, err
		}
	}

	// Phase 4: internal levels.
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var next []levelEntry
		var node vbInternal
		nodeAcc := t.acc.NewAcc()
		nodeSize := vbInternalHeader
		var nodeFirst []byte
		flushInternal := func() error {
			f, err := t.bp.NewPage(storage.PageVBInternal)
			if err != nil {
				return err
			}
			if err := node.encode(f.Page().Bytes()); err != nil {
				t.bp.Unpin(f, false)
				return err
			}
			next = append(next, levelEntry{firstKey: nodeFirst, pid: f.ID(), u: nodeAcc.Value()})
			t.bp.Unpin(f, true)
			node = vbInternal{}
			nodeAcc = t.acc.NewAcc()
			nodeSize = vbInternalHeader
			nodeFirst = nil
			return nil
		}
		addChild := func(c levelEntry) error {
			cs, err := t.sealDigest(c.u)
			if err != nil {
				return err
			}
			if len(node.children) == 0 {
				node.children = []storage.PageID{c.pid}
				node.sigs = []sig.Signature{cs}
				nodeFirst = c.firstKey
				nodeSize += 4 + 2 + len(cs)
			} else {
				node.keys = append(node.keys, c.firstKey)
				node.children = append(node.children, c.pid)
				node.sigs = append(node.sigs, cs)
				nodeSize += 2 + len(c.firstKey) + 4 + 2 + len(cs)
			}
			return nodeAcc.Add(c.u)
		}
		for _, child := range level {
			entrySize := 2 + len(child.firstKey) + 4 + 2 + t.storedLen()
			if len(node.children) > 0 && (nodeSize+entrySize > budget || nodeSize+entrySize > pageSize) {
				if err := flushInternal(); err != nil {
					return nil, err
				}
			}
			if err := addChild(child); err != nil {
				return nil, err
			}
		}
		if len(node.children) > 0 {
			if err := flushInternal(); err != nil {
				return nil, err
			}
		}
		if len(next) >= len(level) {
			return nil, fmt.Errorf("vbtree: build failed to reduce level of %d nodes", len(level))
		}
		level = next
		t.height++
	}
	t.root = level[0].pid
	rs, err := t.sign(level[0].u)
	if err != nil {
		return nil, err
	}
	t.rootSig = rs
	t.rootU = level[0].u
	return t, nil
}
