package vbtree

import (
	"fmt"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
)

// DefaultBuildChunk is the presign/pack granularity BuildFromSource uses
// when the caller passes chunkSize <= 0: large enough to keep the presign
// worker pool busy, small enough that a streamed build never materializes
// the whole table.
const DefaultBuildChunk = 1024

// TupleSource yields the next run of at most limit tuples in strictly
// increasing key order; an empty slice (with a nil error) ends the
// stream. View.Tuples adapts a pinned snapshot view into this shape, so
// a new tree can be built from a live shard without a materialized scan.
type TupleSource func(limit int) ([]schema.Tuple, error)

// Build constructs a fully packed VB-tree from tuples sorted in strictly
// increasing primary-key order (the usual way the central server creates
// the index over an existing table). fill in (0,1] controls node occupancy.
//
// Signing dominates build cost — the paper acknowledges that signing every
// attribute, tuple and node digest "imposes processing overhead on the
// central server" — so attribute/tuple signatures are produced by a small
// worker pool.
func Build(cfg Config, tuples []schema.Tuple, fill float64) (*Tree, error) {
	i := 0
	src := func(limit int) ([]schema.Tuple, error) {
		if i >= len(tuples) {
			return nil, nil
		}
		j := i + limit
		if j > len(tuples) {
			j = len(tuples)
		}
		out := tuples[i:j]
		i = j
		return out, nil
	}
	// One chunk: the slice is already materialized, so present it to the
	// presign pool whole, exactly as the pre-streaming builder did.
	return BuildFromSource(cfg, fill, len(tuples), src, nil)
}

// BuildFromSource constructs a fully packed VB-tree by streaming tuples
// from src in chunks of chunkSize (<= 0 selects DefaultBuildChunk): each
// chunk is presigned by the worker pool, packed incrementally, and —
// when onChunk is non-nil — handed to the callback after it is packed,
// so a caller can e.g. seed the new shard's WAL in the same pass. The
// source must yield strictly increasing keys across its whole stream.
// This is the build path online resharding runs outside the partition
// lock: the source reads a pinned parent snapshot while live batches
// keep committing against the parent.
func BuildFromSource(cfg Config, fill float64, chunkSize int, src TupleSource, onChunk func([]schema.Tuple) error) (*Tree, error) {
	t, err := attach(cfg)
	if err != nil {
		return nil, err
	}
	if t.signer == nil {
		return nil, ErrReadOnly
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("vbtree: fill factor %v out of (0,1]", fill)
	}
	if chunkSize <= 0 {
		chunkSize = DefaultBuildChunk
	}
	b := newStreamBuilder(t, fill)
	for {
		tuples, err := src(chunkSize)
		if err != nil {
			return nil, err
		}
		if len(tuples) == 0 {
			break
		}
		// Digests + signatures, parallel across the chunk (the same
		// presign pool the batched insert path uses).
		opErrs := make([]error, len(tuples))
		prep := t.presignTuples(tuples, opErrs)
		for i, e := range opErrs {
			if e != nil {
				return nil, fmt.Errorf("vbtree: preparing tuple %d: %w", b.n+i, e)
			}
		}
		for i := range prep {
			if err := b.add(&prep[i]); err != nil {
				return nil, err
			}
		}
		if onChunk != nil {
			if err := onChunk(tuples); err != nil {
				return nil, err
			}
		}
	}
	return b.finish()
}

// levelEntry is one node's summary while the level above it is packed.
type levelEntry struct {
	firstKey []byte
	pid      storage.PageID
	u        digest.Value // unsigned node digest
}

// streamBuilder packs a VB-tree bottom-up from a strictly-ordered tuple
// stream: heap inserts and leaf packing happen per tuple as it arrives,
// so the builder's live state is one partial leaf plus the per-leaf
// summaries the internal levels need — never the whole tuple set.
type streamBuilder struct {
	t        *Tree
	pageSize int
	budget   int
	leaves   []levelEntry
	cur      vbLeaf
	curAcc   *digest.Acc
	curSize  int
	lastKey  []byte
	n        int // tuples accepted so far (the error-reporting index)
}

func newStreamBuilder(t *Tree, fill float64) *streamBuilder {
	pageSize := t.bp.PageSize()
	return &streamBuilder{
		t:        t,
		pageSize: pageSize,
		budget:   int(float64(pageSize) * fill),
		curAcc:   t.acc.NewAcc(),
		curSize:  vbLeafHeader,
	}
}

func (b *streamBuilder) flushLeaf() error {
	t := b.t
	f, err := t.bp.NewPage(storage.PageVBLeaf)
	if err != nil {
		return err
	}
	if err := b.cur.encode(f.Page().Bytes()); err != nil {
		t.bp.Unpin(f, false)
		return err
	}
	b.leaves = append(b.leaves, levelEntry{firstKey: b.cur.keys[0], pid: f.ID(), u: b.curAcc.Value()})
	t.bp.Unpin(f, true)
	b.cur = vbLeaf{}
	b.curAcc = t.acc.NewAcc()
	b.curSize = vbLeafHeader
	return nil
}

// add accepts the next prepared tuple: order check, heap insert, leaf
// packing.
func (b *streamBuilder) add(p *preparedTuple) error {
	if b.n > 0 && compare(b.lastKey, p.keyBytes) >= 0 {
		return fmt.Errorf("vbtree: tuples not in strictly increasing key order at %d", b.n)
	}
	entry := 2 + len(p.keyBytes) + 6 + 2 + len(p.dt)
	if vbLeafHeader+entry > b.pageSize {
		return fmt.Errorf("vbtree: entry %d of %d bytes exceeds page size", b.n, entry)
	}
	rid, err := b.t.heap.Insert(p.stored)
	if err != nil {
		return err
	}
	if len(b.cur.keys) > 0 && (b.curSize+entry > b.budget || b.curSize+entry > b.pageSize) {
		if err := b.flushLeaf(); err != nil {
			return err
		}
	}
	b.cur.keys = append(b.cur.keys, p.keyBytes)
	b.cur.rids = append(b.cur.rids, rid)
	b.cur.sigs = append(b.cur.sigs, p.dt)
	if err := b.curAcc.Add(p.ut); err != nil {
		return err
	}
	b.curSize += entry
	b.lastKey = p.keyBytes
	b.n++
	return nil
}

// finish flushes the last leaf, chains the leaf level, packs the
// internal levels and signs the root — exactly once, however many
// chunks fed the builder.
func (b *streamBuilder) finish() (*Tree, error) {
	t := b.t
	if len(b.cur.keys) > 0 {
		if err := b.flushLeaf(); err != nil {
			return nil, err
		}
	}
	leaves := b.leaves
	if len(leaves) == 0 {
		// Empty table: a single empty leaf, identity digest.
		f, err := t.bp.NewPage(storage.PageVBLeaf)
		if err != nil {
			return nil, err
		}
		empty := &vbLeaf{}
		if err := empty.encode(f.Page().Bytes()); err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		t.root = f.ID()
		t.bp.Unpin(f, true)
		t.height = 1
		rs, err := t.sign(t.acc.Identity())
		if err != nil {
			return nil, err
		}
		t.rootSig = rs
		t.rootU = t.acc.Identity()
		return t, nil
	}
	// Chain the leaves.
	for i := 0; i < len(leaves)-1; i++ {
		n, err := t.fetchLeaf(leaves[i].pid)
		if err != nil {
			return nil, err
		}
		n.next = leaves[i+1].pid
		if err := t.writeLeaf(leaves[i].pid, n); err != nil {
			return nil, err
		}
	}

	// Internal levels.
	level := leaves
	t.height = 1
	for len(level) > 1 {
		var next []levelEntry
		var node vbInternal
		nodeAcc := t.acc.NewAcc()
		nodeSize := vbInternalHeader
		var nodeFirst []byte
		flushInternal := func() error {
			f, err := t.bp.NewPage(storage.PageVBInternal)
			if err != nil {
				return err
			}
			if err := node.encode(f.Page().Bytes()); err != nil {
				t.bp.Unpin(f, false)
				return err
			}
			next = append(next, levelEntry{firstKey: nodeFirst, pid: f.ID(), u: nodeAcc.Value()})
			t.bp.Unpin(f, true)
			node = vbInternal{}
			nodeAcc = t.acc.NewAcc()
			nodeSize = vbInternalHeader
			nodeFirst = nil
			return nil
		}
		addChild := func(c levelEntry) error {
			cs, err := t.sealDigest(c.u)
			if err != nil {
				return err
			}
			if len(node.children) == 0 {
				node.children = []storage.PageID{c.pid}
				node.sigs = []sig.Signature{cs}
				nodeFirst = c.firstKey
				nodeSize += 4 + 2 + len(cs)
			} else {
				node.keys = append(node.keys, c.firstKey)
				node.children = append(node.children, c.pid)
				node.sigs = append(node.sigs, cs)
				nodeSize += 2 + len(c.firstKey) + 4 + 2 + len(cs)
			}
			return nodeAcc.Add(c.u)
		}
		for _, child := range level {
			entrySize := 2 + len(child.firstKey) + 4 + 2 + t.storedLen()
			if len(node.children) > 0 && (nodeSize+entrySize > b.budget || nodeSize+entrySize > b.pageSize) {
				if err := flushInternal(); err != nil {
					return nil, err
				}
			}
			if err := addChild(child); err != nil {
				return nil, err
			}
		}
		if len(node.children) > 0 {
			if err := flushInternal(); err != nil {
				return nil, err
			}
		}
		if len(next) >= len(level) {
			return nil, fmt.Errorf("vbtree: build failed to reduce level of %d nodes", len(level))
		}
		level = next
		t.height++
	}
	t.root = level[0].pid
	rs, err := t.sign(level[0].u)
	if err != nil {
		return nil, err
	}
	t.rootSig = rs
	t.rootU = level[0].u
	return t, nil
}
