// Package vbtree implements the Verifiable B-tree of Pang & Tan (ICDE
// 2004): a B+-tree on the primary key of a table, extended with signed
// digests at every level —
//
//	attribute: d_a = s(h(db|table|attr|key|value))          (formula 1)
//	tuple:     D_T = s(Π g(d_a unsigned))                   (formula 2)
//	node:      D_N = s(Π g(U_child))                        (formula 3)
//
// — with the root's signed digest kept in the tree metadata. Tuples live
// in a heap file as vo.StoredTuple records (values + signed attribute
// digests); leaves store (key, record id, D_T); internal nodes store the
// signed digest of each child alongside the child pointer, exactly as in
// the paper's Figure 3.
//
// The tree plays two roles. At the trusted central server (Config.Signer
// set) it supports construction, insert and delete, maintaining digests
// incrementally via the commutative combiner. At an untrusted edge server
// (Signer nil) it answers range/filter/projection queries, producing a
// verification object over the enveloping subtree (paper §3.3).
//
// When a lock.Manager is configured, operations follow the paper's §3.4
// protocol: queries S-lock the nodes of their enveloping subtree, updates
// X-lock the nodes on their root-to-leaf paths, so non-overlapping queries
// and updates proceed concurrently.
package vbtree

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vo"
)

// Common errors.
var (
	ErrDuplicateKey = errors.New("vbtree: duplicate key")
	ErrKeyNotFound  = errors.New("vbtree: key not found")
	ErrReadOnly     = errors.New("vbtree: tree has no signer (edge replica is read-only)")
)

// Config assembles a tree's dependencies.
type Config struct {
	// Pool is the buffer pool holding the tree and heap pages.
	Pool *storage.BufferPool
	// Heap stores the vo.StoredTuple records.
	Heap *storage.HeapFile
	// Schema describes the indexed table.
	Schema *schema.Schema
	// Acc is the digest accumulator (hash h + combiner g).
	Acc *digest.Accumulator
	// Signer is the central server's private key; nil for edge replicas.
	Signer *sig.PrivateKey
	// Pub verifies/recovers digests; required.
	Pub *sig.PublicKey
	// Locks, when non-nil, enables the §3.4 locking protocol.
	Locks *lock.Manager
	// Now supplies timestamps for VOs; defaults to time.Now.
	Now func() int64
	// BuildParallelism bounds the signing workers used by Build.
	// Zero selects a reasonable default.
	BuildParallelism int
}

func (c *Config) validate() error {
	if c.Pool == nil || c.Heap == nil {
		return errors.New("vbtree: config requires Pool and Heap")
	}
	if c.Schema == nil {
		return errors.New("vbtree: config requires Schema")
	}
	if err := c.Schema.Validate(); err != nil {
		return err
	}
	if c.Acc == nil {
		return errors.New("vbtree: config requires Acc")
	}
	if c.Pub == nil {
		return errors.New("vbtree: config requires Pub")
	}
	return nil
}

// Tree is a verifiable B-tree.
type Tree struct {
	mu     sync.RWMutex
	bp     *storage.BufferPool
	heap   *storage.HeapFile
	sch    *schema.Schema
	acc    *digest.Accumulator
	signer *sig.PrivateKey
	pub    *sig.PublicKey
	locks  *lock.Manager
	now    func() int64

	root    storage.PageID
	height  int // levels, leaves = level 1
	rootSig sig.Signature

	// merkle is derived from Pub.Scheme: interior entries (attribute,
	// tuple and node digests) are stored as raw unsigned digest values and
	// only the root digest is signed. The stored layout is unchanged —
	// entries are length-prefixed either way — but every commit spends
	// exactly one signature instead of one per dirtied node.
	merkle bool
	// rootU tracks the unsigned root digest alongside rootSig, so
	// RootDigest (the per-commit shard-map pin) costs no RSA recovery.
	rootU digest.Value

	buildPar int
}

// New creates an empty tree (a single empty leaf whose digest is the
// signed identity). Requires a signer.
func New(cfg Config) (*Tree, error) {
	t, err := attach(cfg)
	if err != nil {
		return nil, err
	}
	if t.signer == nil {
		return nil, ErrReadOnly
	}
	f, err := t.bp.NewPage(storage.PageVBLeaf)
	if err != nil {
		return nil, err
	}
	leaf := &vbLeaf{}
	if err := leaf.encode(f.Page().Bytes()); err != nil {
		t.bp.Unpin(f, false)
		return nil, err
	}
	t.root = f.ID()
	t.bp.Unpin(f, true)
	t.height = 1
	rs, err := t.signer.Sign(t.acc.Identity())
	if err != nil {
		return nil, err
	}
	t.rootSig = rs
	t.rootU = t.acc.Identity()
	return t, nil
}

// Open reattaches to an existing tree (e.g. an edge replica restored from
// a snapshot).
func Open(cfg Config, root storage.PageID, height int, rootSig sig.Signature) (*Tree, error) {
	t, err := attach(cfg)
	if err != nil {
		return nil, err
	}
	if root == storage.InvalidPageID || height < 1 || len(rootSig) == 0 {
		return nil, errors.New("vbtree: invalid tree metadata")
	}
	t.root = root
	t.height = height
	t.rootSig = rootSig.Clone()
	if t.merkle {
		// No message recovery under a Merkle scheme: recompute the root
		// digest from the root node's raw child entries.
		u, err := t.nodeDigest(root)
		if err != nil {
			return nil, err
		}
		t.rootU = u
	} else {
		u, err := t.recoverDigest(t.rootSig)
		if err != nil {
			return nil, err
		}
		t.rootU = u
	}
	return t, nil
}

// nodeDigest recomputes a node's unsigned digest from its stored entries.
func (t *Tree) nodeDigest(pid storage.PageID) (digest.Value, error) {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, err
	}
	buf := f.Page().Bytes()
	var sigs []sig.Signature
	switch storage.PageType(buf[0]) {
	case storage.PageVBLeaf:
		n, err := decodeVBLeaf(buf)
		t.bp.Unpin(f, false)
		if err != nil {
			return nil, err
		}
		sigs = n.sigs
	case storage.PageVBInternal:
		n, err := decodeVBInternal(buf)
		t.bp.Unpin(f, false)
		if err != nil {
			return nil, err
		}
		sigs = n.sigs
	default:
		t.bp.Unpin(f, false)
		return nil, fmt.Errorf("vbtree: unexpected page type %d", buf[0])
	}
	return t.combineChildSigs(sigs)
}

func attach(cfg Config) (*Tree, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	now := cfg.Now
	if now == nil {
		now = func() int64 { return time.Now().Unix() }
	}
	par := cfg.BuildParallelism
	if par <= 0 {
		par = 4
	}
	return &Tree{
		bp:       cfg.Pool,
		heap:     cfg.Heap,
		sch:      cfg.Schema,
		acc:      cfg.Acc,
		signer:   cfg.Signer,
		pub:      cfg.Pub,
		locks:    cfg.Locks,
		now:      now,
		merkle:   cfg.Pub.Scheme.Merkle(),
		buildPar: par,
	}, nil
}

// Schema returns the indexed table's schema.
func (t *Tree) Schema() *schema.Schema { return t.sch }

// Accumulator returns the digest accumulator.
func (t *Tree) Accumulator() *digest.Accumulator { return t.acc }

// Root returns the root page id.
func (t *Tree) Root() storage.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// Height returns the number of levels (leaves = 1).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// RootSig returns the signed digest of the root node — the value a client
// ultimately anchors trust in (via the VO's enveloping-subtree digest).
func (t *Tree) RootSig() sig.Signature {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rootSig.Clone()
}

// RootDigest returns the unsigned root digest — the value a signed shard
// map pins for this tree. The tree tracks it alongside the root
// signature, so the per-commit call by the sharded central server costs
// no RSA recovery.
func (t *Tree) RootDigest() (digest.Value, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.rootU != nil {
		return append(digest.Value(nil), t.rootU...), nil
	}
	return t.recoverDigest(t.rootSig)
}

// MerkleMode reports whether interior entries are raw Merkle commitments
// (only the root digest signed).
func (t *Tree) MerkleMode() bool { return t.merkle }

// lockRes names a page in the lock manager's space.
func (t *Tree) lockRes(id storage.PageID) lock.Resource {
	return lock.Resource{Space: "vb:" + t.sch.Table, ID: uint64(id)}
}

// sign signs an unsigned digest with the central server's key.
func (t *Tree) sign(u digest.Value) (sig.Signature, error) {
	if t.signer == nil {
		return nil, ErrReadOnly
	}
	return t.signer.Sign(u)
}

// currentRootU returns the tracked unsigned root digest, recovering it
// from the root signature if it was never computed. Caller holds t.mu.
func (t *Tree) currentRootU() (digest.Value, error) {
	if t.rootU != nil {
		return t.rootU, nil
	}
	u, err := t.recoverDigest(t.rootSig)
	if err != nil {
		return nil, err
	}
	t.rootU = u
	return u, nil
}

// sealDigest produces the stored form of an interior digest: under a
// Merkle scheme the raw digest itself (a hash-only commitment), under the
// legacy scheme an RSA signature over it. Roots are always signed with
// t.sign regardless of mode — they are the anchor of trust.
func (t *Tree) sealDigest(u digest.Value) (sig.Signature, error) {
	if t.merkle {
		return sig.Signature(append([]byte(nil), u...)), nil
	}
	return t.sign(u)
}

// childU returns the unsigned digest committed by a stored interior
// entry: a cast under a Merkle scheme, s⁻¹ under the legacy scheme.
func (t *Tree) childU(s sig.Signature) (digest.Value, error) {
	if t.merkle {
		if len(s) != t.acc.Len() {
			return nil, fmt.Errorf("vbtree: merkle entry has %d bytes, want %d", len(s), t.acc.Len())
		}
		return digest.Value(s), nil
	}
	return t.recoverDigest(s)
}

// storedLen is the byte length of one stored interior entry.
func (t *Tree) storedLen() int {
	if t.merkle {
		return t.acc.Len()
	}
	return t.pub.Len()
}

// recover applies s⁻¹ and validates the payload length.
func (t *Tree) recoverDigest(s sig.Signature) (digest.Value, error) {
	payload, err := t.pub.Recover(s)
	if err != nil {
		return nil, err
	}
	if len(payload) != t.acc.Len() {
		return nil, fmt.Errorf("vbtree: recovered digest has %d bytes, want %d", len(payload), t.acc.Len())
	}
	return digest.Value(payload), nil
}

// attrDigest computes the unsigned attribute digest of formula (1).
func (t *Tree) attrDigest(keyBytes []byte, col int, val schema.Datum) digest.Value {
	return t.acc.HashAttribute(t.sch.DB, t.sch.Table, t.sch.Columns[col].Name, keyBytes, val.CanonicalBytes())
}

// tupleDigests computes all unsigned attribute digests and the unsigned
// tuple digest U_T of formula (2).
func (t *Tree) tupleDigests(tup schema.Tuple) (attrs []digest.Value, ut digest.Value, err error) {
	if len(tup.Values) != len(t.sch.Columns) {
		return nil, nil, fmt.Errorf("vbtree: tuple has %d values for %d columns", len(tup.Values), len(t.sch.Columns))
	}
	keyBytes := tup.Key(t.sch).KeyBytes()
	attrs = make([]digest.Value, len(tup.Values))
	acc := t.acc.NewAcc()
	for i, v := range tup.Values {
		if v.Type != t.sch.Columns[i].Type {
			return nil, nil, fmt.Errorf("vbtree: column %q: value type %v, want %v",
				t.sch.Columns[i].Name, v.Type, t.sch.Columns[i].Type)
		}
		attrs[i] = t.attrDigest(keyBytes, i, v)
		if err := acc.Add(attrs[i]); err != nil {
			return nil, nil, err
		}
	}
	return attrs, acc.Value(), nil
}

// makeStored seals the attribute digests (signing them under the legacy
// scheme, storing them raw under a Merkle scheme) and assembles the heap
// record.
func (t *Tree) makeStored(tup schema.Tuple, attrs []digest.Value) (*vo.StoredTuple, error) {
	st := &vo.StoredTuple{Tuple: tup, AttrSigs: make([]sig.Signature, len(attrs))}
	for i, a := range attrs {
		s, err := t.sealDigest(a)
		if err != nil {
			return nil, err
		}
		st.AttrSigs[i] = s
	}
	return st, nil
}

// Stats describes the tree's physical shape (Figures 8–9 measurements).
type Stats struct {
	Height            int
	InternalNodes     int
	LeafNodes         int
	Entries           int
	AvgInternalFanOut float64
	MaxLeafEntries    int
	MaxInternalFanOut int
}

// Stats walks the tree. keyLen parameterizes the analytic capacity bounds
// (formula (6): VB-tree fan-out for a given key and signature length).
func (t *Tree) Stats(keyLen int) (Stats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	sigLen := t.storedLen()
	s := Stats{
		MaxLeafEntries:    MaxLeafEntries(t.bp.PageSize(), keyLen, sigLen),
		MaxInternalFanOut: MaxInternalFanOut(t.bp.PageSize(), keyLen, sigLen),
	}
	var totalChildren int
	var walk func(pid storage.PageID, depth int) error
	walk = func(pid storage.PageID, depth int) error {
		f, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		buf := f.Page().Bytes()
		switch storage.PageType(buf[0]) {
		case storage.PageVBLeaf:
			n, err := decodeVBLeaf(buf)
			t.bp.Unpin(f, false)
			if err != nil {
				return err
			}
			s.LeafNodes++
			s.Entries += len(n.keys)
			if depth+1 > s.Height {
				s.Height = depth + 1
			}
			return nil
		case storage.PageVBInternal:
			n, err := decodeVBInternal(buf)
			t.bp.Unpin(f, false)
			if err != nil {
				return err
			}
			s.InternalNodes++
			totalChildren += len(n.children)
			for _, c := range n.children {
				if err := walk(c, depth+1); err != nil {
					return err
				}
			}
			return nil
		default:
			t.bp.Unpin(f, false)
			return fmt.Errorf("vbtree: unexpected page type %d", buf[0])
		}
	}
	if err := walk(t.root, 0); err != nil {
		return Stats{}, err
	}
	if s.InternalNodes > 0 {
		s.AvgInternalFanOut = float64(totalChildren) / float64(s.InternalNodes)
	}
	return s, nil
}

// MaxLeafEntries is the leaf capacity for fixed key and signature lengths.
func MaxLeafEntries(pageSize, keyLen, sigLen int) int {
	return (pageSize - vbLeafHeader) / (2 + keyLen + 6 + 2 + sigLen)
}

// MaxInternalFanOut is the paper's formula (6): the VB-tree fan-out, where
// each child entry additionally carries a signed digest of length sigLen.
func MaxInternalFanOut(pageSize, keyLen, sigLen int) int {
	return 1 + (pageSize-vbInternalHeader-(2+sigLen)-4)/(2+keyLen+4+2+sigLen)
}
