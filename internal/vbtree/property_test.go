package vbtree

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"edgeauth/internal/schema"
)

// TestPropertyRandomOpsStayVerifiable drives random insert/delete/query
// sequences and checks the system's core invariant throughout: every
// query result verifies, and the final tree passes a full digest audit.
func TestPropertyRandomOpsStayVerifiable(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newHarness(t, 60, 1024, false)
		live := make(map[int]bool)
		for i := 0; i < 60; i++ {
			live[i] = true
		}
		for op := 0; op < 40; op++ {
			switch rng.Intn(4) {
			case 0: // insert a fresh key
				k := 100 + rng.Intn(400)
				if live[k] {
					continue
				}
				if err := h.tree.Insert(mkTuple(k)); err != nil {
					t.Logf("seed %d: insert(%d): %v", seed, k, err)
					return false
				}
				live[k] = true
			case 1: // delete one existing key
				for k := range live {
					if err := h.tree.Delete(schema.Int64(int64(k))); err != nil {
						t.Logf("seed %d: delete(%d): %v", seed, k, err)
						return false
					}
					delete(live, k)
					break
				}
			case 2: // range delete
				lo := rng.Intn(500)
				hi := lo + rng.Intn(30)
				n, err := h.tree.DeleteRange(i64(lo), i64(hi))
				if err != nil {
					t.Logf("seed %d: deleteRange(%d,%d): %v", seed, lo, hi, err)
					return false
				}
				removed := 0
				for k := range live {
					if k >= lo && k <= hi {
						delete(live, k)
						removed++
					}
				}
				if n != removed {
					t.Logf("seed %d: deleteRange removed %d, model says %d", seed, n, removed)
					return false
				}
			case 3: // verified query over a random range
				lo := rng.Intn(500)
				hi := lo + rng.Intn(100)
				rs, w, err := h.tree.RunQuery(context.Background(), Query{Lo: i64(lo), Hi: i64(hi)})
				if err != nil {
					t.Logf("seed %d: query: %v", seed, err)
					return false
				}
				want := 0
				for k := range live {
					if k >= lo && k <= hi {
						want++
					}
				}
				if len(rs.Tuples) != want {
					t.Logf("seed %d: query [%d,%d] returned %d, model says %d",
						seed, lo, hi, len(rs.Tuples), want)
					return false
				}
				if err := h.ver.Verify(rs, w); err != nil {
					t.Logf("seed %d: verification failed: %v", seed, err)
					return false
				}
			}
		}
		// Final invariant: full audit passes and counts match the model.
		n, err := h.tree.Audit()
		if err != nil {
			t.Logf("seed %d: audit: %v", seed, err)
			return false
		}
		if n != len(live) {
			t.Logf("seed %d: audit saw %d tuples, model says %d", seed, n, len(live))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyProjectionSubsetsVerify checks that every projection subset
// of a query verifies, not just the full row.
func TestPropertyProjectionSubsetsVerify(t *testing.T) {
	h := newHarness(t, 120, 1024, false)
	cols := []string{"id", "customer", "amount", "notes"}
	// All non-empty subsets of the 4 columns.
	for mask := 1; mask < 16; mask++ {
		var project []string
		for i, c := range cols {
			if mask&(1<<i) != 0 {
				project = append(project, c)
			}
		}
		rs, w, err := h.tree.RunQuery(context.Background(), Query{Lo: i64(30), Hi: i64(60), Project: project})
		if err != nil {
			t.Fatalf("projection %v: %v", project, err)
		}
		if err := h.ver.Verify(rs, w); err != nil {
			t.Fatalf("projection %v failed verification: %v", project, err)
		}
		wantDP := 31 * (len(cols) - len(project))
		if len(w.DP) != wantDP {
			t.Fatalf("projection %v: DP=%d, want %d", project, len(w.DP), wantDP)
		}
	}
}

// TestPropertyQueryBoundaryAlignment sweeps range boundaries across leaf
// boundaries (the off-by-one hotspot of enveloping-subtree computation).
func TestPropertyQueryBoundaryAlignment(t *testing.T) {
	h := newHarness(t, 200, 1024, false)
	for lo := 0; lo < 40; lo++ {
		for width := 0; width < 25; width += 3 {
			rs, w, err := h.tree.RunQuery(context.Background(), Query{Lo: i64(lo), Hi: i64(lo + width)})
			if err != nil {
				t.Fatalf("[%d,%d]: %v", lo, lo+width, err)
			}
			if len(rs.Tuples) != width+1 {
				t.Fatalf("[%d,%d]: got %d tuples", lo, lo+width, len(rs.Tuples))
			}
			if err := h.ver.Verify(rs, w); err != nil {
				t.Fatalf("[%d,%d]: verification failed: %v", lo, lo+width, err)
			}
		}
	}
}

// TestConcurrentQueriesDuringUpdates exercises the §3.4 protocol end to
// end: concurrent verified queries and updates with the lock manager
// enabled, then a full audit.
func TestConcurrentQueriesDuringUpdates(t *testing.T) {
	h := newHarness(t, 300, 1024, true)
	var wg sync.WaitGroup
	errs := make(chan error, 32)

	// Readers: verified queries over disjoint regions.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				lo, hi := g*80, g*80+40
				rs, w, err := h.tree.RunQuery(context.Background(), Query{Lo: i64(lo), Hi: i64(hi)})
				if err != nil {
					errs <- err
					return
				}
				if err := h.ver.Verify(rs, w); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Writer: inserts into a high key range plus deletes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 15; i++ {
			if err := h.tree.Insert(mkTuple(1000 + i)); err != nil {
				errs <- err
				return
			}
		}
		if _, err := h.tree.DeleteRange(i64(250), i64(260)); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if _, err := h.tree.Audit(); err != nil {
		t.Fatalf("audit after concurrent run: %v", err)
	}
}
