package vbtree

import (
	"fmt"

	"edgeauth/internal/schema"
	"edgeauth/internal/storage"
)

// TupleIter walks a View's leaf chain in key order, yielding tuples in
// bounded runs. It is shaped to serve as a TupleSource for
// BuildFromSource: resharding pins a parent snapshot, wraps it in a
// View, and streams one key range of it into a child build while the
// live shard keeps committing.
type TupleIter struct {
	v       *View
	lo      []byte // inclusive lower bound, nil = open
	hiEx    []byte // exclusive upper bound, nil = open
	pid     storage.PageID
	idx     int
	started bool
	done    bool
}

// Tuples returns an iterator over the view's tuples with keys in
// [lo, hiEx) — hiEx is exclusive so a split boundary key lands in
// exactly one child. Nil bounds are open.
func (v *View) Tuples(lo, hiEx []byte) *TupleIter {
	return &TupleIter{v: v, lo: lo, hiEx: hiEx}
}

// Source adapts the iterator to the BuildFromSource contract.
func (it *TupleIter) Source() TupleSource {
	return it.Next
}

func (it *TupleIter) start() error {
	pid := it.v.root
	for {
		pt, err := it.v.pageType(pid)
		if err != nil {
			return err
		}
		if pt != storage.PageVBInternal {
			break
		}
		n, err := it.v.fetchInternal(pid)
		if err != nil {
			return err
		}
		if it.lo == nil {
			pid = n.children[0]
		} else {
			pid = n.children[n.childIndex(it.lo)]
		}
	}
	it.pid = pid
	it.started = true
	return nil
}

// Next yields the next run of at most limit tuples; an empty slice ends
// the stream. It satisfies TupleSource.
func (it *TupleIter) Next(limit int) ([]schema.Tuple, error) {
	if it.done || limit <= 0 {
		return nil, nil
	}
	if !it.started {
		if err := it.start(); err != nil {
			return nil, err
		}
	}
	var out []schema.Tuple
	for it.pid != storage.InvalidPageID && len(out) < limit {
		n, err := it.v.fetchLeaf(it.pid)
		if err != nil {
			return nil, err
		}
		start := it.idx
		if start == 0 && it.lo != nil {
			start = n.search(it.lo)
		}
		for i := start; i < len(n.keys); i++ {
			if it.hiEx != nil && compare(n.keys[i], it.hiEx) >= 0 {
				it.done = true
				return out, nil
			}
			st, err := it.v.loadStored(n.rids[i])
			if err != nil {
				return nil, err
			}
			out = append(out, st.Tuple)
			if len(out) == limit {
				it.idx = i + 1
				if it.idx >= len(n.keys) {
					it.pid, it.idx, it.lo = n.next, 0, nil
				}
				return out, nil
			}
		}
		it.pid, it.idx, it.lo = n.next, 0, nil
	}
	if it.pid == storage.InvalidPageID {
		it.done = true
	}
	return out, nil
}

// KeyCount walks the leaf chain and returns the view's total tuple
// count without touching the heap.
func (v *View) KeyCount() (int, error) {
	pid, err := v.leftmostLeaf()
	if err != nil {
		return 0, err
	}
	n := 0
	for pid != storage.InvalidPageID {
		leaf, err := v.fetchLeaf(pid)
		if err != nil {
			return 0, err
		}
		n += len(leaf.keys)
		pid = leaf.next
	}
	return n, nil
}

// TupleAt returns the i-th tuple (0-based) in key order — the key-median
// fallback for split boundary selection reads a single tuple this way.
func (v *View) TupleAt(i int) (schema.Tuple, error) {
	if i < 0 {
		return schema.Tuple{}, fmt.Errorf("vbtree: tuple index %d out of range", i)
	}
	pid, err := v.leftmostLeaf()
	if err != nil {
		return schema.Tuple{}, err
	}
	seen := 0
	for pid != storage.InvalidPageID {
		leaf, err := v.fetchLeaf(pid)
		if err != nil {
			return schema.Tuple{}, err
		}
		if i < seen+len(leaf.keys) {
			st, err := v.loadStored(leaf.rids[i-seen])
			if err != nil {
				return schema.Tuple{}, err
			}
			return st.Tuple, nil
		}
		seen += len(leaf.keys)
		pid = leaf.next
	}
	return schema.Tuple{}, fmt.Errorf("vbtree: tuple index %d out of range", i)
}

func (v *View) leftmostLeaf() (storage.PageID, error) {
	pid := v.root
	for {
		pt, err := v.pageType(pid)
		if err != nil {
			return storage.InvalidPageID, err
		}
		if pt != storage.PageVBInternal {
			return pid, nil
		}
		n, err := v.fetchInternal(pid)
		if err != nil {
			return storage.InvalidPageID, err
		}
		pid = n.children[0]
	}
}
