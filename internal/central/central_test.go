package central

import (
	"context"
	"path/filepath"
	"sync"
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/workload"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func serverKey(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

func newServer(t *testing.T, rows int, walDir string) *Server {
	t.Helper()
	srv, err := NewServerWithKey(Options{PageSize: 1024, WALDir: walDir}, serverKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	return srv
}

func mkTuple(t *testing.T, srv *Server, id int) schema.Tuple {
	t.Helper()
	resp, err := srv.SchemaResponse("items")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(resp.Schema.Columns))
	vals[0] = schema.Int64(int64(id))
	for i := 1; i < len(vals); i++ {
		vals[i] = schema.Str("vvvvvvvvvvvvvvvvvvvv")
	}
	return schema.Tuple{Values: vals}
}

func TestAddTableAndVersioning(t *testing.T) {
	srv := newServer(t, 100, "")
	if got := srv.Tables(); len(got) != 1 || got[0] != "items" {
		t.Fatalf("Tables = %v", got)
	}
	if _, err := srv.Version("ghost"); err == nil {
		t.Fatal("version of unknown table succeeded")
	}
	v0, err := srv.Version("items")
	if err != nil || v0 != 0 {
		t.Fatalf("initial version = %d, %v", v0, err)
	}
	if err := srv.Insert("items", mkTuple(t, srv, 5000)); err != nil {
		t.Fatal(err)
	}
	v1, _ := srv.Version("items")
	if v1 != 1 {
		t.Fatalf("version after insert = %d", v1)
	}
	n, err := srv.DeleteRange("items", dptr(10), dptr(19))
	if err != nil || n != 10 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	v2, _ := srv.Version("items")
	if v2 != 2 {
		t.Fatalf("version after delete = %d", v2)
	}
	// A no-op delete does not bump the version.
	if _, err := srv.DeleteRange("items", dptr(10), dptr(19)); err != nil {
		t.Fatal(err)
	}
	if v3, _ := srv.Version("items"); v3 != 2 {
		t.Fatalf("version after no-op delete = %d", v3)
	}
}

func dptr(v int) *schema.Datum {
	d := schema.Int64(int64(v))
	return &d
}

func TestDuplicateTableRejected(t *testing.T) {
	srv := newServer(t, 10, "")
	spec := workload.DefaultSpec(10)
	sch, _ := spec.Schema()
	tuples, _ := spec.Tuples()
	if err := srv.AddTable(sch, tuples); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestWALRecordsUpdates(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(t, 50, dir)
	if err := srv.Insert("items", mkTuple(t, srv, 900)); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.DeleteRange("items", dptr(1), dptr(3)); err != nil {
		t.Fatal(err)
	}
	srv.Close() // closes the logs

	var types []wal.RecordType
	if err := wal.ReplayAll(filepath.Join(dir, "items.wal"), func(r wal.Record) error {
		types = append(types, r.Type)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 2 || types[0] != wal.RecInsert || types[1] != wal.RecDelete {
		t.Fatalf("WAL records = %v", types)
	}
}

func TestSnapshotRoundTripContent(t *testing.T) {
	srv := newServer(t, 120, "")
	snap, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Schema.Table != "items" || snap.Height < 2 {
		t.Fatalf("snapshot meta: %+v", snap.Schema.Table)
	}
	if len(snap.PageIDs) == 0 || len(snap.PageIDs) != len(snap.PageData) {
		t.Fatalf("snapshot pages: %d ids, %d blobs", len(snap.PageIDs), len(snap.PageData))
	}
	for i, d := range snap.PageData {
		if len(d) != int(snap.PageSize) {
			t.Fatalf("page %d has %d bytes", snap.PageIDs[i], len(d))
		}
	}
	if _, err := srv.Snapshot("ghost"); err == nil {
		t.Fatal("snapshot of unknown table succeeded")
	}
}

func TestMaterializeJoinValidation(t *testing.T) {
	srv := newServer(t, 20, "")
	if err := srv.MaterializeJoin("v", "ghost", "items", "id", "id"); err == nil {
		t.Fatal("join with unknown left table accepted")
	}
	if err := srv.MaterializeJoin("v", "items", "ghost", "id", "id"); err == nil {
		t.Fatal("join with unknown right table accepted")
	}
	// A self-join works: the right side's columns are prefixed with the
	// table name, and the wide view tuples spill into heap overflow pages.
	if err := srv.MaterializeJoin("selfjoin", "items", "items", "id", "id"); err != nil {
		t.Fatalf("self-join rejected: %v", err)
	}
	lo, hi := schema.Int64(0), schema.Int64(5)
	resp, err := srv.RunQuery(context.Background(), "selfjoin", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 6 {
		t.Fatalf("self-join view query returned %d tuples, want 6", len(resp.Result.Tuples))
	}
	// Each view row: rowid + 10 left cols + 10 right prefixed cols.
	if got := len(resp.Result.Tuples[0].Values); got != 21 {
		t.Fatalf("view row has %d columns, want 21", got)
	}
}

func TestRunQueryDirect(t *testing.T) {
	srv := newServer(t, 80, "")
	lo, hi := schema.Int64(10), schema.Int64(19)
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 10 {
		t.Fatalf("got %d tuples", len(resp.Result.Tuples))
	}
	if _, err := srv.RunQuery(context.Background(), "ghost", vbtree.Query{}); err == nil {
		t.Fatal("query of unknown table succeeded")
	}
}

func TestKeyValidityStamping(t *testing.T) {
	srv := newServer(t, 10, "")
	srv.SetKeyValidity(9, 100, 200)
	pk := srv.PublicKey()
	if pk.Version != 9 || pk.NotBefore != 100 || pk.NotAfter != 200 {
		t.Fatalf("stamped key: %+v", pk)
	}
	resp, err := srv.SchemaResponse("items")
	if err != nil {
		t.Fatal(err)
	}
	if resp.KeyVersion != 9 {
		t.Fatalf("schema response key version = %d", resp.KeyVersion)
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	srv := newServer(t, 400, "")
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				lo, hi := schema.Int64(int64(g*50)), schema.Int64(int64(g*50+30))
				if _, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := srv.Insert("items", mkTuple(t, srv, 10000+i)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Digests remain consistent after the concurrent run.
	lo, hi := schema.Int64(0), schema.Int64(20000)
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 410 {
		t.Fatalf("final count = %d, want 410", len(resp.Result.Tuples))
	}
}
