package central

import (
	"sync/atomic"

	"edgeauth/internal/digest"
)

// serverCounters aggregates the central server's observable activity.
// Everything is atomic: the counters are bumped on hot paths and read by
// the Stats snapshot (exposed over expvar by centrald's -debug-addr).
type serverCounters struct {
	queriesServed   atomic.Uint64
	snapshotsServed atomic.Uint64
	deltasServed    atomic.Uint64
	mapsServed      atomic.Uint64
	// Egress payload bytes by replication message kind — the central's
	// side of the peer-tier CDN ledger: a working peer tier shows map
	// bytes scaling with the edge count while snapshot/delta bytes scale
	// with the (much smaller) tier-1 peer count.
	snapshotBytes  atomic.Uint64
	deltaBytes     atomic.Uint64
	mapBytes       atomic.Uint64
	insertsApplied atomic.Uint64
	deletesApplied atomic.Uint64
	batchRounds    atomic.Uint64
	batchOps       atomic.Uint64
	maxRound       atomic.Uint64
	// commits counts committed shard updates — the denominator of the
	// signatures-per-commit ratio the Merkle schemes drive toward 1.
	commits atomic.Uint64

	// Online resharding: transitions committed and the per-transition
	// work they paid (the costmodel's observables — shard roots re-signed
	// and pages copied into the carved-out trees).
	splits            atomic.Uint64
	merges            atomic.Uint64
	reshardResigns    atomic.Uint64
	reshardPagesMoved atomic.Uint64

	// Incremental transitions: tail tuples replayed into the children
	// inside the partition lock (the in-lock stall is O of this number),
	// tail tuples pre-replayed outside the lock by catch-up rounds,
	// catch-up rounds run, and wall time split between the unlocked
	// build phase and the locked barrier.
	reshardTailReplayed    atomic.Uint64
	reshardTailPrereplayed atomic.Uint64
	reshardCatchupRounds   atomic.Uint64
	reshardBuildNanos      atomic.Uint64
	reshardBarrierNanos    atomic.Uint64

	// signOps receives the signing key's op count via digest.Counters
	// (installed by NewServerWithKey).
	signOps digest.Counters
}

// observeRound tracks the largest group-commit round seen.
func (c *serverCounters) observeRound(n int) {
	for {
		cur := c.maxRound.Load()
		if uint64(n) <= cur || c.maxRound.CompareAndSwap(cur, uint64(n)) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the server's counters. The JSON
// field names are the expvar keys.
type Stats struct {
	QueriesServed   uint64 `json:"queries_served"`
	SnapshotsServed uint64 `json:"snapshots_served"`
	DeltasServed    uint64 `json:"deltas_served"`
	ShardMapsServed uint64 `json:"shard_maps_served"`
	// Egress*Bytes are encoded replication payload bytes the central
	// served, by kind (the peer-fanout benchmark's central-egress metric).
	EgressSnapshotBytes uint64 `json:"egress_snapshot_bytes"`
	EgressDeltaBytes    uint64 `json:"egress_delta_bytes"`
	EgressMapBytes      uint64 `json:"egress_map_bytes"`
	InsertsApplied      uint64 `json:"inserts_applied"`
	DeletesApplied      uint64 `json:"deletes_applied"`
	// Scheme names the signing key's signature scheme; SignOps and
	// RecoverOps below are this scheme's totals.
	Scheme string `json:"scheme"`
	// SignOps counts signature generations — the currency the sharded
	// write path parallelizes and the Merkle schemes take off the
	// per-node path entirely.
	SignOps uint64 `json:"sign_ops"`
	// RecoverOps counts signature recoveries/verifications performed with
	// the key (audits, self-checks).
	RecoverOps uint64 `json:"recover_ops"`
	// Commits counts committed shard updates; SigsPerCommit =
	// SignOps/Commits is O(dirtied nodes) under rsa-full and ~1 under the
	// Merkle schemes.
	Commits       uint64  `json:"commits"`
	SigsPerCommit float64 `json:"signatures_per_commit"`
	// BatchRounds / BatchOps describe the group-commit front door:
	// BatchOps/BatchRounds is the mean coalesced round size, MaxRound
	// the largest round committed.
	BatchRounds uint64 `json:"group_commit_rounds"`
	BatchOps    uint64 `json:"group_commit_ops"`
	MaxRound    uint64 `json:"group_commit_max_round"`
	// Online resharding: committed partition transitions, the shard-root
	// re-signs they paid (a split re-signs exactly the two carved roots,
	// never the whole table), and the pages copied building the new
	// shards' trees.
	Splits            uint64 `json:"reshard_splits"`
	Merges            uint64 `json:"reshard_merges"`
	ReshardResigns    uint64 `json:"reshard_root_resigns"`
	ReshardPagesMoved uint64 `json:"reshard_pages_moved"`
	// ReshardTailReplayed counts tail tuples replayed into transition
	// children inside the partition lock — the barrier stall is O(this),
	// never O(shard pages). ReshardTailPrereplayed counts tuples the
	// catch-up rounds replayed outside the lock instead, over
	// ReshardCatchupRounds rounds.
	ReshardTailReplayed    uint64 `json:"reshard_tail_replayed"`
	ReshardTailPrereplayed uint64 `json:"reshard_tail_prereplayed"`
	ReshardCatchupRounds   uint64 `json:"reshard_catchup_rounds"`
	// ReshardBuildMs is wall time spent streaming child builds off pinned
	// snapshots (no lock held, writers keep committing);
	// ReshardBarrierStallMs is wall time inside the partition write lock.
	ReshardBuildMs        float64 `json:"reshard_build_ms"`
	ReshardBarrierStallMs float64 `json:"reshard_barrier_stall_ms"`
}

// Stats snapshots the server's counters.
func (s *Server) Stats() Stats {
	signOps := uint64(s.stats.signOps.SignOps.Load())
	commits := s.stats.commits.Load()
	var perCommit float64
	if commits > 0 {
		perCommit = float64(signOps) / float64(commits)
	}
	return Stats{
		QueriesServed:       s.stats.queriesServed.Load(),
		SnapshotsServed:     s.stats.snapshotsServed.Load(),
		DeltasServed:        s.stats.deltasServed.Load(),
		ShardMapsServed:     s.stats.mapsServed.Load(),
		EgressSnapshotBytes: s.stats.snapshotBytes.Load(),
		EgressDeltaBytes:    s.stats.deltaBytes.Load(),
		EgressMapBytes:      s.stats.mapBytes.Load(),
		InsertsApplied:      s.stats.insertsApplied.Load(),
		DeletesApplied:      s.stats.deletesApplied.Load(),
		Scheme:              s.key.Public().Scheme.String(),
		SignOps:             signOps,
		RecoverOps:          uint64(s.stats.signOps.RecoverOps.Load()),
		Commits:             commits,
		SigsPerCommit:       perCommit,
		BatchRounds:         s.stats.batchRounds.Load(),
		BatchOps:            s.stats.batchOps.Load(),
		MaxRound:            s.stats.maxRound.Load(),
		Splits:              s.stats.splits.Load(),
		Merges:              s.stats.merges.Load(),
		ReshardResigns:      s.stats.reshardResigns.Load(),
		ReshardPagesMoved:   s.stats.reshardPagesMoved.Load(),

		ReshardTailReplayed:    s.stats.reshardTailReplayed.Load(),
		ReshardTailPrereplayed: s.stats.reshardTailPrereplayed.Load(),
		ReshardCatchupRounds:   s.stats.reshardCatchupRounds.Load(),
		ReshardBuildMs:         float64(s.stats.reshardBuildNanos.Load()) / 1e6,
		ReshardBarrierStallMs:  float64(s.stats.reshardBarrierNanos.Load()) / 1e6,
	}
}
