package central

import (
	"context"
	"errors"
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wire"
	"edgeauth/internal/workload"
)

// newReshardServer builds a server with a fast signing scheme (so
// SignOps counts shard-root signatures one-for-one) and the given shard
// count over rows sequential tuples.
func newReshardServer(t *testing.T, rows, shards int, opts Options) *Server {
	t.Helper()
	opts.Scheme = sig.SchemeEd25519
	opts.Shards = shards
	if opts.PageSize == 0 {
		opts.PageSize = 1024
	}
	srv, err := NewServer(opts)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func scanCount(t *testing.T, srv *Server) int {
	t.Helper()
	tb, err := srv.table("items")
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := scanTuples(tb)
	if err != nil {
		t.Fatal(err)
	}
	return len(tuples)
}

// TestSplitShardCommitsNewEpoch pins the whole split contract: one new
// map epoch with the parent link, one more shard, fresh stable IDs, all
// data retained, the transition validating under the shardmap rules —
// and the split paying exactly the affected signatures (two carved
// roots plus one map under ed25519), never a whole-table re-sign.
func TestSplitShardCommitsNewEpoch(t *testing.T) {
	srv := newReshardServer(t, 200, 2, Options{})
	before := srv.SignedShardMap
	sm0, err := before("items")
	if err != nil {
		t.Fatal(err)
	}
	if sm0.Map.MapEpoch != 1 || sm0.Map.ParentEpoch != 0 {
		t.Fatalf("fresh table should be generation 1 with no parent, got %d/%d", sm0.Map.MapEpoch, sm0.Map.ParentEpoch)
	}
	rows0 := scanCount(t, srv)
	signsBefore := srv.Stats().SignOps

	resp, err := srv.SplitShard(context.Background(), "items", 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	signsDelta := srv.Stats().SignOps - signsBefore
	if signsDelta != 3 {
		t.Fatalf("split re-signed %d times; want exactly 3 (left root + right root + map)", signsDelta)
	}
	if resp.MapEpoch != 2 || resp.NumShards != 3 {
		t.Fatalf("split response = epoch %d, %d shards; want 2, 3", resp.MapEpoch, resp.NumShards)
	}

	sm1, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := sm1.Verify(srv.PublicKey()); err != nil {
		t.Fatalf("post-split map does not verify: %v", err)
	}
	if sm1.Map.MapEpoch != 2 || sm1.Map.ParentEpoch != 1 {
		t.Fatalf("post-split generation link = %d/%d; want 2/1", sm1.Map.MapEpoch, sm1.Map.ParentEpoch)
	}
	if err := shardmap.ValidateTransition(sm0.Map, sm1.Map); err != nil {
		t.Fatalf("committed split fails transition validation: %v", err)
	}
	if got := scanCount(t, srv); got != rows0 {
		t.Fatalf("split lost tuples: %d -> %d", rows0, got)
	}
	// New shards' versions sit strictly above everything the old
	// generation published, so a stale replica's delta request can never
	// splice histories.
	for i := 1; i <= 2; i++ {
		if v := sm1.Map.Shards[i].Version; v <= sm0.Map.MapVersion {
			t.Fatalf("carved shard %d born at version %d, not above old map version %d", i, v, sm0.Map.MapVersion)
		}
	}

	// Writes keep landing on the right shards across the new boundary.
	if err := srv.Insert("items", batchServerRow(t, 100000)); err != nil {
		t.Fatal(err)
	}
	if got := scanCount(t, srv); got != rows0+1 {
		t.Fatalf("post-split insert lost: %d tuples, want %d", got, rows0+1)
	}
}

func TestMergeShardsCommitsNewEpoch(t *testing.T) {
	srv := newReshardServer(t, 200, 3, Options{})
	sm0, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	rows0 := scanCount(t, srv)
	signsBefore := srv.Stats().SignOps

	resp, err := srv.MergeShards(context.Background(), "items", 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta := srv.Stats().SignOps - signsBefore; delta != 2 {
		t.Fatalf("merge re-signed %d times; want exactly 2 (merged root + map)", delta)
	}
	if resp.MapEpoch != 2 || resp.NumShards != 2 {
		t.Fatalf("merge response = epoch %d, %d shards; want 2, 2", resp.MapEpoch, resp.NumShards)
	}
	sm1, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := shardmap.ValidateTransition(sm0.Map, sm1.Map); err != nil {
		t.Fatalf("committed merge fails transition validation: %v", err)
	}
	if got := scanCount(t, srv); got != rows0 {
		t.Fatalf("merge lost tuples: %d -> %d", rows0, got)
	}
}

func TestSplitShardRejectsBadRequests(t *testing.T) {
	srv := newReshardServer(t, 50, 2, Options{})
	ctx := context.Background()
	if _, err := srv.SplitShard(ctx, "items", 9, nil); err == nil {
		t.Fatal("split of out-of-range shard index succeeded")
	}
	if _, err := srv.MergeShards(ctx, "items", 1); err == nil {
		t.Fatal("merge past the last shard succeeded")
	}
	// An explicit boundary outside the shard's range must be rejected:
	// shard 0 owns keys below the first boundary.
	sm, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	outside := sm.Map.Boundaries[0]
	if _, err := srv.SplitShard(ctx, "items", 0, &outside); err == nil {
		t.Fatal("split at a key outside the shard's range succeeded")
	}
	if _, err := srv.SplitShard(ctx, "nope", 0, nil); !errors.Is(err, wire.ErrUnknownTable) {
		t.Fatalf("split of unknown table: got %v, want ErrUnknownTable", err)
	}
}

// TestReshardWALReplay pins the durability story: the transition lands
// as a typed record in the table's meta log, and the carved shards'
// logs replay their full contents (seeded as one batch record), so a
// restart can rebuild the partition without the retired shard's log.
func TestReshardWALReplay(t *testing.T) {
	dir := t.TempDir()
	srv := newReshardServer(t, 100, 2, Options{WALDir: dir})
	if _, err := srv.SplitShard(context.Background(), "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	hist, err := srv.ReshardHistory("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Fatalf("meta log holds %d transitions, want 1", len(hist))
	}
	op := hist[0]
	if !op.Split || op.Shard != 0 || op.Boundary == nil {
		t.Fatalf("reshard record = %+v; want a split of shard 0 with a boundary", op)
	}
	if op.MapEpoch != 2 || op.ParentEpoch != 1 {
		t.Fatalf("reshard record generation link = %d/%d; want 2/1", op.MapEpoch, op.ParentEpoch)
	}
	if len(op.RetiredIDs) != 1 || len(op.NewIDs) != 2 {
		t.Fatalf("reshard record IDs = %v -> %v; want 1 retired, 2 new", op.RetiredIDs, op.NewIDs)
	}
	// Build-time shards log only updates (their contents come from the
	// build input), but carved shards seed their logs with their full
	// contents — so the replayable history gained exactly the retired
	// shard's 50 tuples, and a restart needs no retired log.
	ops, err := srv.LoggedOps("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 50 {
		t.Fatalf("current shard logs replay %d ops, want the 50 carved tuples", len(ops))
	}
}

// TestRetiredShardDeltaFailsClosed pins the no-history-splice property:
// an edge that pinned a pre-split replica for shard index 0 and asks
// for a delta from its old version gets SnapshotNeeded, never a delta
// from the unrelated new shard occupying the index.
func TestRetiredShardDeltaFailsClosed(t *testing.T) {
	srv := newReshardServer(t, 100, 2, Options{})
	epoch, err := srv.TableEpoch("items")
	if err != nil {
		t.Fatal(err)
	}
	sm0, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	oldVersion := sm0.Map.Shards[0].Version
	if _, err := srv.SplitShard(context.Background(), "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	d, err := srv.ShardDelta("items", 0, oldVersion, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if !d.SnapshotNeeded {
		t.Fatal("delta from a pre-split version against the carved shard did not demand a snapshot")
	}
}

// TestAutoReshardDetector drives the EWMA detector by hand: skewed
// ingest trips a split of the hot shard, then an idle table with the
// load gone trips a merge back down.
func TestAutoReshardDetector(t *testing.T) {
	srv := newReshardServer(t, 200, 2, Options{
		AutoReshard: &AutoReshardOptions{SplitFraction: 0.8, MergeFraction: 0.9, MinShards: 2, MaxShards: 4, Alpha: 1.0},
	})
	ctx := context.Background()
	// All new load lands in shard 1 (keys above every build key).
	for i := 0; i < 40; i++ {
		if err := srv.Insert("items", batchServerRow(t, int64(100000+i))); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := srv.AutoReshardTick(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if resp == nil || resp.NumShards != 3 {
		t.Fatalf("skewed load did not split the hot shard: %+v", resp)
	}
	// With the counters drained and fully-decayed EWMA (alpha 1), the
	// next tick sees zero total load and must leave the partition alone.
	resp, err = srv.AutoReshardTick(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if resp != nil {
		t.Fatalf("idle tick committed a transition: %+v", resp)
	}
}

// TestReshardThroughWire drives the admin frame end to end through the
// dispatcher: a MsgReshardReq splits, and a query for the moved range
// still answers correctly afterwards.
func TestReshardThroughWire(t *testing.T) {
	srv := newReshardServer(t, 100, 2, Options{})
	req := &wire.ReshardRequest{Table: "items", Op: wire.ReshardSplit, Shard: 0}
	mt, body, err := srv.dispatch(context.Background(), wire.MsgReshardReq, req.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if mt != wire.MsgReshardResp {
		t.Fatalf("dispatch answered %v, want MsgReshardResp", mt)
	}
	resp, err := wire.DecodeReshardResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.NumShards != 3 {
		t.Fatalf("wire split left %d shards, want 3", resp.NumShards)
	}
	lo, hi := schema.Int64(0), schema.Int64(1000000)
	qr, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(qr.Result.Tuples) != 100 {
		t.Fatalf("post-split full scan returned %d tuples, want 100", len(qr.Result.Tuples))
	}
}

// TestReshardIsGroupCommitBarrier proves a transition serializes with
// the coalescing front door instead of bypassing it: inserts enqueued
// before the reshard commit before it, and everything lands.
func TestReshardIsGroupCommitBarrier(t *testing.T) {
	srv := newReshardServer(t, 100, 2, Options{MaxBatch: 8})
	ctx := context.Background()
	rows0 := scanCount(t, srv)
	const extra = 20
	errs := make(chan error, extra)
	for i := 0; i < extra; i++ {
		go func(i int) {
			errs <- srv.enqueueInsert(ctx, "items", batchServerRow(t, int64(200000+i)))
		}(i)
	}
	if _, err := srv.SplitShard(ctx, "items", 1, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < extra; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := scanCount(t, srv); got != rows0+extra {
		t.Fatalf("after concurrent inserts + split: %d tuples, want %d", got, rows0+extra)
	}
}
