package central

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/workload"
)

var (
	batchKeyOnce sync.Once
	batchKey     *sig.PrivateKey
)

func batchServerKey(t testing.TB) *sig.PrivateKey {
	t.Helper()
	batchKeyOnce.Do(func() { batchKey = sig.MustGenerateKey(512) })
	return batchKey
}

func newBatchServer(t *testing.T, rows int, opts Options) *Server {
	t.Helper()
	srv, err := NewServerWithKey(opts, batchServerKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func batchServerRow(t testing.TB, id int64) schema.Tuple {
	t.Helper()
	sch, err := workload.DefaultSpec(1).Schema()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for i := 1; i < len(vals); i++ {
		vals[i] = schema.Str(fmt.Sprintf("central-batch-%06d", id))
	}
	return schema.Tuple{Values: vals}
}

// TestApplyBatchCommitsOnce pins the group-commit invariants: one version
// bump, one changelog entry and one WAL record per batch — with the WAL
// record still replaying as the full per-tuple logical history.
func TestApplyBatchCommitsOnce(t *testing.T) {
	srv := newBatchServer(t, 200, Options{PageSize: 1024, WALDir: t.TempDir()})
	base, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	epoch, err := srv.TableEpoch("items")
	if err != nil {
		t.Fatal(err)
	}

	var rows []schema.Tuple
	for i := int64(0); i < 48; i++ {
		rows = append(rows, batchServerRow(t, 10_000+i))
	}
	opErrs, err := srv.ApplyBatch("items", rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range opErrs {
		if e != nil {
			t.Fatalf("op %d failed: %v", i, e)
		}
	}

	// One version bump for 48 tuples.
	v, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	if v != base+1 {
		t.Fatalf("version went %d -> %d, want exactly one bump", base, v)
	}

	// One changelog entry: a delta from base covers the whole batch.
	d, err := srv.Delta("items", base, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded || d.ToVersion != v {
		t.Fatalf("delta after batch: snapshotNeeded=%v to=%d want to=%d", d.SnapshotNeeded, d.ToVersion, v)
	}
	if len(d.PageIDs) == 0 {
		t.Fatal("batch committed but delta carries no pages")
	}

	// The WAL holds the batch as one record that replays per-tuple.
	ops, err := srv.LoggedOps("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != len(rows) {
		t.Fatalf("replayed %d logical ops, want %d", len(ops), len(rows))
	}
	for i, op := range ops {
		if op.Kind != wal.RecInsert {
			t.Fatalf("op %d kind = %v, want insert", i, op.Kind)
		}
		if op.LSN != ops[0].LSN {
			t.Fatalf("batch ops span LSNs %d and %d, want one record", ops[0].LSN, op.LSN)
		}
	}

	// The published snapshot serves the new rows.
	lo, hi := schema.Int64(10_000), schema.Int64(10_047)
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != len(rows) {
		t.Fatalf("snapshot serves %d of %d batch rows", len(resp.Result.Tuples), len(rows))
	}
}

// TestApplyBatchPerOpErrors checks duplicates fail individually while the
// rest of the batch commits.
func TestApplyBatchPerOpErrors(t *testing.T) {
	srv := newBatchServer(t, 100, Options{PageSize: 1024})
	base, _ := srv.Version("items")
	rows := []schema.Tuple{
		batchServerRow(t, 20_000),
		batchServerRow(t, 5), // exists
		batchServerRow(t, 20_001),
	}
	opErrs, err := srv.ApplyBatch("items", rows)
	if err != nil {
		t.Fatal(err)
	}
	if opErrs[0] != nil || opErrs[2] != nil {
		t.Fatalf("clean ops failed: %v / %v", opErrs[0], opErrs[2])
	}
	if !errors.Is(opErrs[1], vbtree.ErrDuplicateKey) {
		t.Fatalf("duplicate op error = %v", opErrs[1])
	}
	if v, _ := srv.Version("items"); v != base+1 {
		t.Fatalf("partial batch bumped version to %d, want %d", v, base+1)
	}

	// An all-duplicate batch commits nothing and bumps nothing.
	opErrs, err = srv.ApplyBatch("items", []schema.Tuple{batchServerRow(t, 5)})
	if err != nil || !errors.Is(opErrs[0], vbtree.ErrDuplicateKey) {
		t.Fatalf("all-dup batch: errs=%v err=%v", opErrs, err)
	}
	if v, _ := srv.Version("items"); v != base+1 {
		t.Fatalf("no-op batch bumped version to %d", v)
	}

	if _, err := srv.ApplyBatch("missing", rows); err == nil {
		t.Fatal("batch into unknown table accepted")
	}
}

// TestGroupCommitCoalesces drives concurrent single inserts through the
// coalescing front door and checks they commit in far fewer rounds than
// one per tuple, with every caller still seeing its own result.
func TestGroupCommitCoalesces(t *testing.T) {
	srv := newBatchServer(t, 100, Options{PageSize: 1024, MaxDelay: 10 * time.Millisecond})
	base, _ := srv.Version("items")

	const inserts = 48
	var wg sync.WaitGroup
	errs := make([]error, inserts)
	for i := 0; i < inserts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.enqueueInsert(context.Background(), "items", batchServerRow(t, 30_000+int64(i)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d failed: %v", i, err)
		}
	}
	v, _ := srv.Version("items")
	rounds := v - base
	if rounds == 0 || rounds >= inserts {
		t.Fatalf("%d inserts committed in %d rounds — no coalescing", inserts, rounds)
	}
	t.Logf("%d concurrent inserts coalesced into %d group commits", inserts, rounds)

	// A duplicate routed through the front door still reports per-op.
	if err := srv.enqueueInsert(context.Background(), "items", batchServerRow(t, 30_000)); !errors.Is(err, vbtree.ErrDuplicateKey) {
		t.Fatalf("coalesced duplicate: %v, want ErrDuplicateKey", err)
	}

	// All rows landed.
	lo, hi := schema.Int64(30_000), schema.Int64(30_000+inserts-1)
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != inserts {
		t.Fatalf("found %d of %d coalesced rows", len(resp.Result.Tuples), inserts)
	}
}

// TestGroupCommitFullRoundCommitsEarly: a leader waiting out MaxDelay
// must commit the moment its round fills to MaxBatch, not sleep the
// delay out.
func TestGroupCommitFullRoundCommitsEarly(t *testing.T) {
	srv := newBatchServer(t, 50, Options{PageSize: 1024, MaxBatch: 8, MaxDelay: 2 * time.Second})
	const inserts = 16
	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, inserts)
	for i := 0; i < inserts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.enqueueInsert(context.Background(), "items", batchServerRow(t, 50_000+int64(i)))
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("insert %d failed: %v", i, err)
		}
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("full round slept out MaxDelay (%v elapsed)", elapsed)
	}
}

// TestGroupCommitDisabled checks MaxBatch < 0 restores per-insert
// commits.
func TestGroupCommitDisabled(t *testing.T) {
	srv := newBatchServer(t, 50, Options{PageSize: 1024, MaxBatch: -1})
	base, _ := srv.Version("items")
	for i := int64(0); i < 4; i++ {
		if err := srv.enqueueInsert(context.Background(), "items", batchServerRow(t, 40_000+i)); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := srv.Version("items"); v != base+4 {
		t.Fatalf("disabled coalescing: version went %d -> %d, want one bump per insert", base, v)
	}
}
