package central

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"edgeauth/internal/lock"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Online resharding: splitting a hot shard in two (or merging a cold
// adjacent pair) under live traffic. A transition re-signs exactly the
// affected shard roots plus the map — never the whole table — and
// commits as one new map epoch with an explicit parent link, so a
// replayed pre-transition map fails closed at every verifier.
//
// Transitions are incremental: the expensive part — streaming the child
// VB-tree builds out of the parent shard(s) — runs against a pinned
// snapshot WITHOUT the partition write lock, while a per-transition
// delta tail records every update that commits on the parents after the
// pin. The partition lock is taken only at the final barrier, which
// replays the (bounded) tail into the children, assigns their final
// version, re-signs nothing beyond what the swap itself requires, WALs
// the RecReshard and swaps the generation. If the tail outgrows the
// configured bound, catch-up rounds replay it outside the lock first,
// so the in-lock stall is O(tail bound), never O(shard pages).
//
// Serialization: reshardMu admits one transition per table at a time.
// Through the group-commit front door the barrier is still a queue
// barrier, exactly like a delete: it commits alone at its arrival
// position, so it can never reorder around coalesced inserts on the
// same table. Queries, snapshot pulls and delta serves are untouched
// throughout — they run lock-free against pinned snapshots of whichever
// partition generation they loaded.

// DefaultReshardTailBound caps the in-lock tail replay when
// Options.ReshardTailBound is zero.
const DefaultReshardTailBound = 64

// reshardBuildChunk is the streaming granularity of phase-1 child
// builds: tuples per presign/pack round and per WAL seed record.
const reshardBuildChunk = 1024

// maxCatchupRounds bounds the pre-barrier catch-up loop: under a write
// rate that re-fills the tail faster than a round drains it, more
// lock-free rounds cannot converge, so the barrier takes whatever tail
// remains (the soak shows it stays near one round's arrivals).
const maxCatchupRounds = 8

// reshardTailBound resolves Options.ReshardTailBound: 0 = default,
// negative = no pre-barrier catch-up.
func (s *Server) reshardTailBound() int {
	switch {
	case s.opts.ReshardTailBound == 0:
		return DefaultReshardTailBound
	case s.opts.ReshardTailBound < 0:
		return -1
	default:
		return s.opts.ReshardTailBound
	}
}

// AutoReshardOptions configures the hot-shard detector: an EWMA over
// each shard's per-tick ingest+query counters, compared against the
// table-wide total.
type AutoReshardOptions struct {
	// Interval between detector ticks (and the EWMA's time base).
	// Required for the background loop; AutoReshardTick can be driven
	// manually (tests, cron) with Interval zero.
	Interval time.Duration
	// SplitFraction trips a split when one shard carries more than this
	// fraction of the table's total EWMA load. 0 selects 0.6.
	SplitFraction float64
	// MergeFraction trips a merge when an adjacent pair together carries
	// less than this fraction. 0 selects 0.05.
	MergeFraction float64
	// MinShards/MaxShards bound the partition size the detector will
	// steer to. Zero selects 1 and 64.
	MinShards, MaxShards int
	// Alpha is the EWMA smoothing factor in (0,1]; 0 selects 0.3.
	Alpha float64
}

func (o AutoReshardOptions) splitFraction() float64 {
	if o.SplitFraction == 0 {
		return 0.6
	}
	return o.SplitFraction
}

func (o AutoReshardOptions) mergeFraction() float64 {
	if o.MergeFraction == 0 {
		return 0.05
	}
	return o.MergeFraction
}

func (o AutoReshardOptions) minShards() int {
	if o.MinShards <= 0 {
		return 1
	}
	return o.MinShards
}

func (o AutoReshardOptions) maxShards() int {
	if o.MaxShards <= 0 {
		return 64
	}
	return o.MaxShards
}

func (o AutoReshardOptions) alpha() float64 {
	if o.Alpha <= 0 || o.Alpha > 1 {
		return 0.3
	}
	return o.Alpha
}

// Reshard executes one admin-commanded partition transition (the
// MsgReshardReq handler).
func (s *Server) Reshard(ctx context.Context, req *wire.ReshardRequest) (*wire.ReshardResponse, error) {
	switch req.Op {
	case wire.ReshardSplit:
		var b *schema.Datum
		if req.HasBoundary {
			b = &req.Boundary
		}
		return s.SplitShard(ctx, req.Table, req.Shard, b)
	case wire.ReshardMerge:
		return s.MergeShards(ctx, req.Table, req.Shard)
	}
	return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: req.Table,
		Msg: fmt.Sprintf("central: unknown reshard op %v", req.Op)}
}

// SplitShard splits shard idx at boundary (nil = the shard's load
// median when the sketch is warm, else its key median), committing a
// new map epoch. The children are streamed from the parent's pinned
// state outside the partition lock; the swap re-signs exactly their two
// roots plus the map, WALs a typed RecReshard record and commits the
// new generation at a bounded catch-up barrier.
func (s *Server) SplitShard(ctx context.Context, tableName string, idx uint32, boundary *schema.Datum) (*wire.ReshardResponse, error) {
	return s.runReshard(ctx, tableName, &reshardCmd{split: true, shard: idx, boundary: boundary})
}

// MergeShards merges shard idx with its right neighbor idx+1 — the
// inverse transition: one new tree over the pair's union, one root
// re-sign plus the map, one new map epoch.
func (s *Server) MergeShards(ctx context.Context, tableName string, idx uint32) (*wire.ReshardResponse, error) {
	return s.runReshard(ctx, tableName, &reshardCmd{shard: idx})
}

// tailOp is one committed parent update recorded after the transition's
// snapshot pin: an applied insert run or a key-range delete.
type tailOp struct {
	tuples []schema.Tuple
	del    bool
	lo, hi *schema.Datum
}

// reshardTail is the delta tail of one in-flight transition. Writers
// append under their shard's write lock (so tail order is parent commit
// order — with a merge's shared tail, the interleaved global order);
// the transition drains it in catch-up rounds and at the barrier. The
// mutex is a leaf lock.
type reshardTail struct {
	mu     sync.Mutex
	ops    []tailOp
	queued int // tuples + deletes currently queued
}

func (rt *reshardTail) recordInserts(tuples []schema.Tuple) {
	if len(tuples) == 0 {
		return
	}
	rt.mu.Lock()
	rt.ops = append(rt.ops, tailOp{tuples: tuples})
	rt.queued += len(tuples)
	rt.mu.Unlock()
}

func (rt *reshardTail) recordDelete(lo, hi *schema.Datum) {
	rt.mu.Lock()
	rt.ops = append(rt.ops, tailOp{del: true, lo: lo, hi: hi})
	rt.queued++
	rt.mu.Unlock()
}

// drain takes the queued ops; writers keep appending behind it.
func (rt *reshardTail) drain() []tailOp {
	rt.mu.Lock()
	ops := rt.ops
	rt.ops = nil
	rt.queued = 0
	rt.mu.Unlock()
	return ops
}

func (rt *reshardTail) size() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.queued
}

// preparedTransition carries one transition from its unlocked build
// phase to the barrier.
type preparedTransition struct {
	t    *table
	cmd  *reshardCmd
	part *partition // the generation the snapshots were pinned in
	idx  int
	// boundary is the resolved split key (splits only).
	boundary schema.Datum
	parents  []*shard
	// installed lists the parents that had the tail hooked (for rollback).
	installed []*shard
	children  []*shard
	tail      *reshardTail
	op        *wal.ReshardOp
	// begun is true once the RecReshardBegin record is durable.
	begun bool
}

// uninstallTails detaches the delta tail from every parent it was
// installed on.
func (tr *preparedTransition) uninstallTails() {
	for _, p := range tr.installed {
		p.mu.Lock()
		if p.tail == tr.tail {
			p.tail = nil
		}
		p.mu.Unlock()
	}
	tr.installed = nil
}

// runReshard drives one transition end to end: prepare (pin + unlocked
// child builds), lock-free catch-up, then the barrier — directly when
// group commit is disabled, else as a barrier op through the ordered
// queue so it cannot reorder around earlier coalesced writes.
func (s *Server) runReshard(ctx context.Context, tableName string, cmd *reshardCmd) (*wire.ReshardResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.reshardMu.Lock()
	defer t.reshardMu.Unlock()
	tr, err := s.prepareTransition(t, cmd)
	if err != nil {
		return nil, err
	}
	if err := s.preCatchUp(tr); err != nil {
		s.abortTransition(tr)
		return nil, err
	}
	if s.maxBatch() <= 1 {
		return s.finishReshard(tr)
	}
	cmd.tr = tr
	res, err := s.enqueueOp(ctx, tableName, &pendingOp{reshard: cmd, done: make(chan opResult, 1)})
	if err != nil {
		// ctx expired with the barrier op still queued: the leader owns
		// the prepared transition now and will finish (or abort) it; the
		// caller only stops waiting for the acknowledgement.
		return nil, err
	}
	return res.reshard, res.err
}

// prepareTransition is phase 1: validate, pin the parent snapshot(s)
// and hook the delta tail (one shard-lock acquisition each — O(1), no
// scan), resolve the boundary, allocate the child IDs, make the
// transition's begin record durable and stream the child builds from
// the pinned views. No partition lock is held; concurrent batches keep
// committing against the parents and land in the tail.
func (s *Server) prepareTransition(t *table, cmd *reshardCmd) (tr *preparedTransition, err error) {
	part := t.part.Load()
	idx := int(cmd.shard)
	if cmd.split {
		if idx < 0 || idx >= len(part.shards) {
			return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
				Msg: fmt.Sprintf("central: split shard %d out of range (table has %d shards)", idx, len(part.shards))}
		}
	} else {
		if idx < 0 || idx+1 >= len(part.shards) {
			return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
				Msg: fmt.Sprintf("central: merge pair (%d,%d) out of range (table has %d shards)", idx, idx+1, len(part.shards))}
		}
	}
	var parents []*shard
	if cmd.split {
		parents = []*shard{part.shards[idx]}
	} else {
		parents = []*shard{part.shards[idx], part.shards[idx+1]}
	}

	// pt stays valid in the cleanup closure even on `return nil, err`
	// paths (which zero the named return).
	pt := &preparedTransition{t: t, cmd: cmd, part: part, idx: idx, parents: parents, tail: &reshardTail{}}
	tr = pt
	var pins []*storage.Snapshot
	defer func() {
		for _, pin := range pins {
			pin.Release()
		}
		if err != nil {
			s.abortTransition(pt)
		}
	}()

	// Pin + hook, atomically per parent w.r.t. its writers: everything
	// committed so far is in the pin, everything after lands in the tail
	// — no gap, no double count.
	states := make([]*vbtree.TableState, 0, len(parents))
	for _, p := range parents {
		p.mu.Lock()
		if p.tail != nil {
			p.mu.Unlock()
			return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
				Msg: fmt.Sprintf("central: shard %d already has a transition in progress", idx)}
		}
		pin, st, serr := p.snapState()
		if serr != nil {
			p.mu.Unlock()
			return nil, serr
		}
		p.tail = tr.tail
		p.mu.Unlock()
		tr.installed = append(tr.installed, p)
		pins = append(pins, pin)
		states = append(states, st)
	}

	views := make([]*vbtree.View, len(parents))
	for i, st := range states {
		v, verr := st.ViewOver(pins[i], t.sch, s.acc, s.key.Public())
		if verr != nil {
			return nil, verr
		}
		views[i] = v
	}

	var boundaryKey []byte
	if cmd.split {
		b, berr := s.resolveBoundary(t, part, idx, parents[0], views[0], cmd.boundary)
		if berr != nil {
			return nil, berr
		}
		tr.boundary = b
		boundaryKey = b.KeyBytes()
	}

	// IDs are allocated only after validation succeeds (a rejected
	// request must not burn identities), under a brief partition write
	// lock — the allocator's guard.
	t.partMu.Lock()
	firstID := t.nextShardID
	if cmd.split {
		t.nextShardID += 2
	} else {
		t.nextShardID++
	}
	t.partMu.Unlock()

	op := &wal.ReshardOp{
		Split:       cmd.split,
		Shard:       cmd.shard,
		MapEpoch:    part.mapEpoch + 1,
		ParentEpoch: part.mapEpoch,
	}
	if cmd.split {
		b := tr.boundary
		op.Boundary = &b
		op.RetiredIDs = []uint64{parents[0].id}
		op.NewIDs = []uint64{firstID, firstID + 1}
	} else {
		op.RetiredIDs = []uint64{parents[0].id, parents[1].id}
		op.NewIDs = []uint64{firstID}
	}
	tr.op = op
	if t.metaLog != nil {
		if _, aerr := t.metaLog.Append(wal.RecReshardBegin, wal.EncodeReshardPayload(op)); aerr != nil {
			return nil, aerr
		}
		if serr := t.metaLog.Sync(); serr != nil {
			return nil, serr
		}
		tr.begun = true
	}

	buildStart := time.Now()
	if cmd.split {
		left, cerr := s.carveShardStream(t, views[0].Tuples(nil, boundaryKey).Next, op.NewIDs[0])
		if cerr != nil {
			return nil, cerr
		}
		tr.children = append(tr.children, left)
		right, cerr := s.carveShardStream(t, views[0].Tuples(boundaryKey, nil).Next, op.NewIDs[1])
		if cerr != nil {
			return nil, cerr
		}
		tr.children = append(tr.children, right)
	} else {
		merged, cerr := s.carveShardStream(t, chainSources(views[0].Tuples(nil, nil).Next, views[1].Tuples(nil, nil).Next), op.NewIDs[0])
		if cerr != nil {
			return nil, cerr
		}
		tr.children = append(tr.children, merged)
	}
	s.stats.reshardBuildNanos.Add(uint64(time.Since(buildStart)))
	return tr, nil
}

// resolveBoundary picks the split key: the caller's explicit boundary
// (validated strictly inside the shard's range), the shard's observed
// load median when the sketch is warm and valid, or the key-count
// median as the fallback.
func (s *Server) resolveBoundary(t *table, part *partition, idx int, parent *shard, v *vbtree.View, explicit *schema.Datum) (schema.Datum, error) {
	inRange := func(b schema.Datum) bool {
		if idx > 0 && b.Compare(part.boundaries[idx-1]) <= 0 {
			return false
		}
		if idx < len(part.boundaries) && b.Compare(part.boundaries[idx]) >= 0 {
			return false
		}
		return true
	}
	if explicit != nil {
		if !inRange(*explicit) {
			return schema.Datum{}, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
				Msg: fmt.Sprintf("central: split boundary %v not inside shard %d's range", *explicit, idx)}
		}
		return *explicit, nil
	}
	n, err := v.KeyCount()
	if err != nil {
		return schema.Datum{}, err
	}
	if n < 2 {
		return schema.Datum{}, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: fmt.Sprintf("central: shard %d has %d tuples, too few for a median split", idx, n)}
	}
	// Load median first: cut where the traffic concentrates, provided it
	// leaves both children non-empty (at least one key on each side).
	if m, ok := parent.sketch.median(); ok && inRange(m) {
		first, ferr := v.TupleAt(0)
		last, lerr := v.TupleAt(n - 1)
		if ferr == nil && lerr == nil &&
			first.Key(t.sch).Compare(m) < 0 && last.Key(t.sch).Compare(m) >= 0 {
			return m, nil
		}
	}
	mid, err := v.TupleAt(n / 2)
	if err != nil {
		return schema.Datum{}, err
	}
	b := mid.Key(t.sch)
	if !inRange(b) {
		return b, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: fmt.Sprintf("central: split boundary %v not inside shard %d's range", b, idx)}
	}
	return b, nil
}

// chainSources concatenates tuple sources (adjacent ascending ranges,
// so the chain stays key-ordered — the merge build input).
func chainSources(srcs ...vbtree.TupleSource) vbtree.TupleSource {
	i := 0
	return func(limit int) ([]schema.Tuple, error) {
		for i < len(srcs) {
			out, err := srcs[i](limit)
			if err != nil {
				return nil, err
			}
			if len(out) > 0 {
				return out, nil
			}
			i++
		}
		return nil, nil
	}
}

// carveShardStream builds one transition-created shard by streaming src
// (a pinned parent view) through the presign/build pool, seeding the
// child's WAL chunk-by-chunk in the same pass so restart replay
// reconstructs the shard without the retired parent's log. The shard is
// published at a provisional version 0 — invisible until the barrier
// republishes it at its final version.
func (s *Server) carveShardStream(t *table, src vbtree.TupleSource, id uint64) (*shard, error) {
	mem, err := storage.NewMemPager(s.opts.PageSize)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewBufferPool(mem, 1<<20) // generous: pages stay resident
	if err != nil {
		return nil, err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return nil, err
	}
	var log *wal.Log
	walPath := ""
	if s.opts.WALDir != "" {
		walPath = idWalName(t.sch.Table, id)
		if log, err = wal.Create(filepath.Join(s.opts.WALDir, walPath)); err != nil {
			return nil, err
		}
	}
	fail := func(err error) (*shard, error) {
		if log != nil {
			log.Close()
		}
		return nil, err
	}
	onChunk := func(tuples []schema.Tuple) error {
		if log == nil || len(tuples) == 0 {
			return nil
		}
		_, err := log.Append(wal.RecBatch, wal.EncodeBatchPayload(tuples))
		return err
	}
	cfg := vbtree.Config{
		Pool:   pool,
		Heap:   heap,
		Schema: t.sch,
		Acc:    s.acc,
		Signer: s.key,
		Pub:    s.key.Public(),
		// Independent lock manager per shard, as in buildShard: buffer
		// pools' page IDs overlap across shards.
		Locks:            lock.NewManager(0),
		BuildParallelism: s.opts.BuildParallelism,
	}
	tree, err := vbtree.BuildFromSource(cfg, 1.0, reshardBuildChunk, src, onChunk)
	if err != nil {
		return fail(err)
	}
	store, err := storage.NewPageStore(s.opts.PageSize)
	if err != nil {
		return fail(err)
	}
	sh := &shard{id: id, walPath: walPath, tree: tree, pool: pool, heap: heap, log: log, store: store}
	if sh.rootDigest, err = tree.RootDigest(); err != nil {
		return fail(err)
	}
	pager := pool.Pager()
	baseline := make([]storage.PageID, 0, pager.NumPages()-1)
	for id := 1; id < pager.NumPages(); id++ {
		baseline = append(baseline, storage.PageID(id))
	}
	if err := s.publishShard(sh, 0, t.epoch, baseline); err != nil {
		return fail(err)
	}
	if s.retention() > 0 {
		// The carved build is the snapshot baseline; journal only the
		// pages the tail replay dirties.
		pool.EnableJournal()
	}
	if log != nil {
		if err := log.Sync(); err != nil {
			return fail(err)
		}
	}
	s.stats.reshardPagesMoved.Add(uint64(pager.NumPages() - 1))
	return sh, nil
}

// preCatchUp replays the delta tail into the children outside any lock
// until it fits the configured bound (or the round budget runs out), so
// the barrier's in-lock replay is O(bound).
func (s *Server) preCatchUp(tr *preparedTransition) error {
	bound := s.reshardTailBound()
	if bound < 0 {
		return nil
	}
	for round := 0; round < maxCatchupRounds && tr.tail.size() > bound; round++ {
		n, err := s.replayTail(tr, tr.tail.drain())
		if err != nil {
			return err
		}
		s.stats.reshardTailPrereplayed.Add(uint64(n))
		s.stats.reshardCatchupRounds.Add(1)
	}
	return nil
}

// replayTail applies recorded parent updates to the children in commit
// order: consecutive insert runs coalesce into one routed InsertBatch
// per child, deletes apply to every child (their ranges may straddle
// the boundary). Each replayed op is appended to the child WALs (synced
// once, at the barrier). Returns how many tail entries were replayed.
func (s *Server) replayTail(tr *preparedTransition, ops []tailOp) (int, error) {
	if len(ops) == 0 {
		return 0, nil
	}
	t := tr.t
	total := 0
	var run []schema.Tuple
	flush := func() error {
		if len(run) == 0 {
			return nil
		}
		groups := make([][]schema.Tuple, len(tr.children))
		if tr.cmd.split {
			for _, tup := range run {
				ci := 0
				if tup.Key(t.sch).Compare(tr.boundary) >= 0 {
					ci = 1
				}
				groups[ci] = append(groups[ci], tup)
			}
		} else {
			groups[0] = run
		}
		for ci, group := range groups {
			if len(group) == 0 {
				continue
			}
			child := tr.children[ci]
			if child.log != nil {
				if _, err := child.log.Append(wal.RecBatch, wal.EncodeBatchPayload(group)); err != nil {
					return err
				}
			}
			_, opErrs, err := child.tree.InsertBatch(group)
			if err != nil {
				return err
			}
			// The parent applied every recorded tuple, and the child is
			// the parent's range restriction at the same logical point —
			// a per-op failure here means the histories diverged.
			for _, oe := range opErrs {
				if oe != nil {
					return fmt.Errorf("central: reshard tail replay diverged: %w", oe)
				}
			}
		}
		total += len(run)
		run = nil
		return nil
	}
	for _, op := range ops {
		if !op.del {
			run = append(run, op.tuples...)
			continue
		}
		if err := flush(); err != nil {
			return total, err
		}
		for _, child := range tr.children {
			if child.log != nil {
				if _, err := child.log.Append(wal.RecDelete, wal.EncodeDeletePayload(op.lo, op.hi)); err != nil {
					return total, err
				}
			}
			if _, err := child.tree.DeleteRange(op.lo, op.hi); err != nil {
				return total, err
			}
		}
		total++
	}
	if err := flush(); err != nil {
		return total, err
	}
	return total, nil
}

// transitionStartVersion picks the version new shards are born at: one
// above the current map version. Every commit round bumps the map
// version once and each participating shard's version once, so
// shardVersion <= mapVersion always holds — the newborn version is
// therefore strictly above every version any shard of this table has
// ever published. An edge holding a retired shard's replica at the same
// partition index can never splice histories: its delta fromVersion
// falls below the new shard's baseline and answers SnapshotNeeded.
func (t *table) transitionStartVersion() uint64 {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	return t.mapVersion + 1
}

// publishChild seats one transition child at a version: refresh its
// cached root digest and publish a snapshot carrying the pages dirtied
// since the last publish (the whole store when journaling is off).
func (s *Server) publishChild(t *table, c *shard, version uint64) error {
	rd, err := c.tree.RootDigest()
	if err != nil {
		return err
	}
	c.rootDigest = rd
	var pages []storage.PageID
	if s.retention() > 0 {
		pages = c.pool.DrainJournal()
	} else {
		// Journaling is off (delta serving disabled): republish every
		// page so the snapshot reflects all replayed tail updates.
		pager := c.pool.Pager()
		for id := 1; id < pager.NumPages(); id++ {
			pages = append(pages, storage.PageID(id))
		}
	}
	return s.publishShard(c, version, t.epoch, pages)
}

// finishReshard is phase 2, the barrier: under the partition write lock
// — with writers excluded and the tail frozen — replay the remaining
// tail, seat the children at their final version, splice the new
// partition generation, WAL the RecReshard and swap. The lock is held
// for O(tail) + a constant number of signatures — never O(shard pages):
// the children's snapshots are pre-published at the predicted final
// version before the lock, so the usual barrier skips the republish
// entirely.
func (s *Server) finishReshard(tr *preparedTransition) (*wire.ReshardResponse, error) {
	t := tr.t
	// Optimistic seat, still outside the lock: publish each child (with
	// the catch-up rounds' dirt) at the version the barrier will assign
	// if no commit sneaks in between, and sync their seeded WALs. The
	// children are invisible until the swap, so a missed prediction
	// wastes nothing but the republish below.
	predicted := t.transitionStartVersion()
	for _, c := range tr.children {
		if err := s.publishChild(t, c, predicted); err != nil {
			s.abortTransition(tr)
			return nil, err
		}
		if c.log != nil {
			if err := c.log.Sync(); err != nil {
				s.abortTransition(tr)
				return nil, err
			}
		}
	}

	t.partMu.Lock()
	barrierStart := time.Now()
	fail := func(err error) (*wire.ReshardResponse, error) {
		t.partMu.Unlock()
		s.abortTransition(tr)
		return nil, err
	}
	if t.part.Load() != tr.part {
		// The transition was orphaned in the barrier queue past another
		// committed transition (its dispatcher gave up waiting); its
		// pinned generation is gone, the built children are garbage.
		return fail(&wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: "central: partition changed while the transition was queued"})
	}

	ops := tr.tail.drain()
	replayed, err := s.replayTail(tr, ops)
	if err != nil {
		return fail(err)
	}
	s.stats.reshardTailReplayed.Add(uint64(replayed))
	tr.uninstallTails()

	final := t.transitionStartVersion()
	for _, c := range tr.children {
		c.version = final
		if final == predicted && replayed == 0 {
			// The optimistic snapshot is exact — nothing committed between
			// the prediction and the lock, and the tail was already dry.
			continue
		}
		if perr := s.publishChild(t, c, final); perr != nil {
			return fail(perr)
		}
		if c.log != nil {
			if serr := c.log.Sync(); serr != nil {
				return fail(serr)
			}
		}
	}

	// Inherit the detector's smoothed load so a just-carved shard is not
	// immediately re-split (or re-merged) on stale history.
	t.detMu.Lock()
	if tr.cmd.split {
		tr.children[0].ewma = tr.parents[0].ewma / 2
		tr.children[1].ewma = tr.parents[0].ewma / 2
	} else {
		tr.children[0].ewma = tr.parents[0].ewma + tr.parents[1].ewma
	}
	t.detMu.Unlock()

	part, idx := tr.part, tr.idx
	var next *partition
	if tr.cmd.split {
		next = &partition{
			boundaries:  make([]schema.Datum, 0, len(part.boundaries)+1),
			shards:      make([]*shard, 0, len(part.shards)+1),
			mapEpoch:    part.mapEpoch + 1,
			parentEpoch: part.mapEpoch,
		}
		next.boundaries = append(next.boundaries, part.boundaries[:idx]...)
		next.boundaries = append(next.boundaries, tr.boundary)
		next.boundaries = append(next.boundaries, part.boundaries[idx:]...)
		next.shards = append(next.shards, part.shards[:idx]...)
		next.shards = append(next.shards, tr.children[0], tr.children[1])
		next.shards = append(next.shards, part.shards[idx+1:]...)
	} else {
		next = &partition{
			boundaries:  make([]schema.Datum, 0, len(part.boundaries)-1),
			shards:      make([]*shard, 0, len(part.shards)-1),
			mapEpoch:    part.mapEpoch + 1,
			parentEpoch: part.mapEpoch,
		}
		next.boundaries = append(next.boundaries, part.boundaries[:idx]...)
		next.boundaries = append(next.boundaries, part.boundaries[idx+1:]...)
		next.shards = append(next.shards, part.shards[:idx]...)
		next.shards = append(next.shards, tr.children[0])
		next.shards = append(next.shards, part.shards[idx+2:]...)
	}

	if err := s.commitTransition(t, next, tr.op, tr.parents...); err != nil {
		// The RecReshard record's durability is ambiguous here — do NOT
		// write an abort record over it; surface the error and leave the
		// parent generation authoritative.
		t.partMu.Unlock()
		return nil, err
	}
	s.maybeCheckpointMeta(t, next)
	if tr.cmd.split {
		s.stats.splits.Add(1)
		s.stats.reshardResigns.Add(2)
	} else {
		s.stats.merges.Add(1)
		s.stats.reshardResigns.Add(1)
	}
	s.stats.reshardBarrierNanos.Add(uint64(time.Since(barrierStart)))
	t.partMu.Unlock()
	return &wire.ReshardResponse{MapEpoch: next.mapEpoch, NumShards: uint32(len(next.shards))}, nil
}

// abortTransition rolls back a transition that will not commit: detach
// the tails (parents resume as the sole authority), mark the begun
// record aborted in the meta log, and close the children's logs.
func (s *Server) abortTransition(tr *preparedTransition) {
	tr.uninstallTails()
	t := tr.t
	if tr.begun && t.metaLog != nil && tr.op != nil {
		// Best-effort: an unmatched Begin is treated exactly like an
		// explicit Abort on recovery, so a failed append only loses the
		// tidier record.
		if _, err := t.metaLog.Append(wal.RecReshardAbort, wal.EncodeReshardPayload(tr.op)); err == nil {
			_ = t.metaLog.Sync()
		}
	}
	for _, c := range tr.children {
		if c != nil && c.log != nil {
			_ = c.log.Close()
			c.log = nil
		}
	}
}

// commitTransition makes a built transition durable and visible: the
// typed RecReshard record is WAL-logged and synced first, then — under
// commitMu, in one step — the map version bumps, the new epoch's map is
// signed and both the signed map and the partition pointer swap. The
// retired shards' logs are closed (their history lives on in the
// carved shards' seed batches).
func (s *Server) commitTransition(t *table, next *partition, op *wal.ReshardOp, retired ...*shard) error {
	if t.metaLog != nil {
		if _, err := t.metaLog.Append(wal.RecReshard, wal.EncodeReshardPayload(op)); err != nil {
			return err
		}
		if err := t.metaLog.Sync(); err != nil {
			return err
		}
	}
	t.commitMu.Lock()
	t.mapVersion++
	// No shard locks are needed building the map: the caller holds partMu
	// exclusively, so no shard can commit concurrently.
	signed, err := shardmap.Sign(s.mapOf(t, next, t.mapVersion, false), s.key)
	if err != nil {
		t.commitMu.Unlock()
		return err
	}
	t.smap.Store(signed)
	t.part.Store(next)
	t.commitMu.Unlock()
	for _, sh := range retired {
		if sh.log != nil {
			// Writers are excluded by partMu and queries never touch the
			// log, so the retired logs are quiescent.
			if err := sh.log.Close(); err != nil {
				return err
			}
			sh.log = nil
		}
	}
	return nil
}

// maybeCheckpointMeta writes a partition checkpoint into the meta log
// after every Options.ReshardCheckpointEvery committed transitions, so
// replaying a long split/merge history starts from the checkpointed
// state instead of the table's first transition. Best-effort: a failed
// append leaves the counter unreset and the next transition retries.
// The caller holds partMu (which guards transitionsSinceCkpt and
// nextShardID).
func (s *Server) maybeCheckpointMeta(t *table, next *partition) {
	every := s.opts.ReshardCheckpointEvery
	if every <= 0 || t.metaLog == nil {
		return
	}
	t.transitionsSinceCkpt++
	if t.transitionsSinceCkpt < every {
		return
	}
	cp := &wal.PartitionCheckpoint{
		MapEpoch:    next.mapEpoch,
		NextShardID: t.nextShardID,
		Boundaries:  append([]schema.Datum(nil), next.boundaries...),
	}
	for _, sh := range next.shards {
		cp.ShardIDs = append(cp.ShardIDs, sh.id)
	}
	if _, err := t.metaLog.Append(wal.RecCheckpoint, wal.EncodePartitionCheckpoint(cp)); err != nil {
		return
	}
	if err := t.metaLog.Sync(); err != nil {
		return
	}
	t.transitionsSinceCkpt = 0
}

// AutoReshardTick runs one detector pass over a table: it folds the
// per-shard ingest/query counters accumulated since the last tick into
// each shard's EWMA, then splits the hottest shard (load-median
// boundary when its sketch is warm) if its load share exceeds
// SplitFraction, or merges the coldest adjacent pair if their combined
// share falls below MergeFraction. Returns the committed transition, or
// nil if the partition was left alone. Safe to drive manually when no
// background interval is configured.
func (s *Server) AutoReshardTick(ctx context.Context, tableName string) (*wire.ReshardResponse, error) {
	opts := s.opts.AutoReshard
	if opts == nil {
		return nil, nil
	}
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	part := t.part.Load()
	alpha := opts.alpha()

	t.detMu.Lock()
	total := 0.0
	for _, sh := range part.shards {
		load := float64(sh.ingestLoad.Swap(0) + sh.queryLoad.Swap(0))
		sh.ewma = alpha*load + (1-alpha)*sh.ewma
		total += sh.ewma
	}
	split, merge := -1, -1
	if total > 0 {
		hotIdx, hot := 0, part.shards[0].ewma
		for i, sh := range part.shards[1:] {
			if sh.ewma > hot {
				hotIdx, hot = i+1, sh.ewma
			}
		}
		if hot/total > opts.splitFraction() && len(part.shards) < opts.maxShards() {
			split = hotIdx
		} else if len(part.shards) > opts.minShards() && len(part.shards) >= 2 {
			coldIdx, cold := -1, 0.0
			for i := 0; i+1 < len(part.shards); i++ {
				pair := part.shards[i].ewma + part.shards[i+1].ewma
				if coldIdx < 0 || pair < cold {
					coldIdx, cold = i, pair
				}
			}
			if coldIdx >= 0 && cold/total < opts.mergeFraction() {
				merge = coldIdx
			}
		}
	}
	t.detMu.Unlock()

	// Act outside detMu: the transition paths take partMu then detMu.
	switch {
	case split >= 0:
		return s.SplitShard(ctx, tableName, uint32(split), nil)
	case merge >= 0:
		return s.MergeShards(ctx, tableName, uint32(merge))
	}
	return nil, nil
}

// autoReshardLoop drives the detector for every table at the configured
// interval until the server closes. Detector errors are deliberately
// dropped: a failed automatic transition (e.g. a one-tuple shard that
// cannot median-split) must not stop the loop, and the manual admin
// path surfaces the same errors to an operator.
func (s *Server) autoReshardLoop() {
	ticker := time.NewTicker(s.opts.AutoReshard.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-ticker.C:
		}
		for _, name := range s.Tables() {
			_, _ = s.AutoReshardTick(s.baseCtx, name)
		}
	}
}
