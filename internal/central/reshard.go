package central

import (
	"context"
	"fmt"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Online resharding: splitting a hot shard in two (or merging a cold
// adjacent pair) under live traffic. A transition re-signs exactly the
// affected shard roots plus the map — never the whole table — and
// commits as one new map epoch with an explicit parent link, so a
// replayed pre-transition map fails closed at every verifier.
//
// Serialization: a transition takes the table's partition write lock,
// waiting out in-flight write batches (which hold the read lock from
// routing through republish) and blocking new ones. Queries, snapshot
// pulls and delta serves are untouched — they run lock-free against
// pinned snapshots of whichever partition generation they loaded.
// Through the group-commit front door a transition is a barrier op,
// exactly like a delete: it commits alone at its arrival position, so
// it can never reorder around coalesced inserts on the same table.

// AutoReshardOptions configures the hot-shard detector: an EWMA over
// each shard's per-tick ingest+query counters, compared against the
// table-wide total.
type AutoReshardOptions struct {
	// Interval between detector ticks (and the EWMA's time base).
	// Required for the background loop; AutoReshardTick can be driven
	// manually (tests, cron) with Interval zero.
	Interval time.Duration
	// SplitFraction trips a split when one shard carries more than this
	// fraction of the table's total EWMA load. 0 selects 0.6.
	SplitFraction float64
	// MergeFraction trips a merge when an adjacent pair together carries
	// less than this fraction. 0 selects 0.05.
	MergeFraction float64
	// MinShards/MaxShards bound the partition size the detector will
	// steer to. Zero selects 1 and 64.
	MinShards, MaxShards int
	// Alpha is the EWMA smoothing factor in (0,1]; 0 selects 0.3.
	Alpha float64
}

func (o AutoReshardOptions) splitFraction() float64 {
	if o.SplitFraction == 0 {
		return 0.6
	}
	return o.SplitFraction
}

func (o AutoReshardOptions) mergeFraction() float64 {
	if o.MergeFraction == 0 {
		return 0.05
	}
	return o.MergeFraction
}

func (o AutoReshardOptions) minShards() int {
	if o.MinShards <= 0 {
		return 1
	}
	return o.MinShards
}

func (o AutoReshardOptions) maxShards() int {
	if o.MaxShards <= 0 {
		return 64
	}
	return o.MaxShards
}

func (o AutoReshardOptions) alpha() float64 {
	if o.Alpha <= 0 || o.Alpha > 1 {
		return 0.3
	}
	return o.Alpha
}

// Reshard executes one admin-commanded partition transition (the
// MsgReshardReq handler). It flows through the group-commit queue as a
// barrier op, so it serializes in arrival order with coalesced writes.
func (s *Server) Reshard(ctx context.Context, req *wire.ReshardRequest) (*wire.ReshardResponse, error) {
	switch req.Op {
	case wire.ReshardSplit:
		var b *schema.Datum
		if req.HasBoundary {
			b = &req.Boundary
		}
		return s.SplitShard(ctx, req.Table, req.Shard, b)
	case wire.ReshardMerge:
		return s.MergeShards(ctx, req.Table, req.Shard)
	}
	return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: req.Table,
		Msg: fmt.Sprintf("central: unknown reshard op %v", req.Op)}
}

// SplitShard splits shard idx at boundary (nil = the shard's median
// key), committing a new map epoch. The transition carves the two new
// VB-trees from the old shard's pinned state, re-signs exactly their
// two roots plus the map, WALs a typed RecReshard record, and swaps the
// partition generation in one commit.
func (s *Server) SplitShard(ctx context.Context, tableName string, idx uint32, boundary *schema.Datum) (*wire.ReshardResponse, error) {
	return s.enqueueReshard(ctx, tableName, &reshardCmd{split: true, shard: idx, boundary: boundary})
}

// MergeShards merges shard idx with its right neighbor idx+1 — the
// inverse transition: one new tree over the pair's union, one root
// re-sign plus the map, one new map epoch.
func (s *Server) MergeShards(ctx context.Context, tableName string, idx uint32) (*wire.ReshardResponse, error) {
	return s.enqueueReshard(ctx, tableName, &reshardCmd{shard: idx})
}

// doReshard runs one transition to completion. It is the barrier body
// the group-commit leader executes (or the direct path when coalescing
// is disabled).
func (s *Server) doReshard(tableName string, cmd *reshardCmd) (*wire.ReshardResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.partMu.Lock()
	defer t.partMu.Unlock()
	if cmd.split {
		return s.splitLocked(t, cmd)
	}
	return s.mergeLocked(t, cmd)
}

// transitionStartVersion picks the version new shards are born at: one
// above the current map version. Every commit round bumps the map
// version once and each participating shard's version once, so
// shardVersion <= mapVersion always holds — the newborn version is
// therefore strictly above every version any shard of this table has
// ever published. An edge holding a retired shard's replica at the same
// partition index can never splice histories: its delta fromVersion
// falls below the new shard's baseline and answers SnapshotNeeded.
func (t *table) transitionStartVersion() uint64 {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	return t.mapVersion + 1
}

func (s *Server) splitLocked(t *table, cmd *reshardCmd) (*wire.ReshardResponse, error) {
	part := t.part.Load()
	idx := int(cmd.shard)
	if idx < 0 || idx >= len(part.shards) {
		return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: fmt.Sprintf("central: split shard %d out of range (table has %d shards)", idx, len(part.shards))}
	}
	old := part.shards[idx]
	tuples, err := scanShard(old)
	if err != nil {
		return nil, err
	}
	boundary, err := splitBoundary(t, part, idx, tuples, cmd.boundary)
	if err != nil {
		return nil, err
	}
	// Partition the carved tuples: keys < boundary stay left, >= go
	// right (the same convention shardmap.ShardFor routes by).
	cut := len(tuples)
	for i, tup := range tuples {
		if tup.Key(t.sch).Compare(boundary) >= 0 {
			cut = i
			break
		}
	}
	startVersion := t.transitionStartVersion()
	leftID, rightID := t.nextShardID, t.nextShardID+1
	left, err := s.carveShard(t, tuples[:cut], startVersion, leftID)
	if err != nil {
		return nil, err
	}
	right, err := s.carveShard(t, tuples[cut:], startVersion, rightID)
	if err != nil {
		return nil, err
	}
	t.nextShardID += 2

	// Inherit the detector's smoothed load: each child starts at half
	// the parent's EWMA so a just-split shard is not immediately re-split
	// on stale history.
	t.detMu.Lock()
	left.ewma, right.ewma = old.ewma/2, old.ewma/2
	t.detMu.Unlock()

	next := &partition{
		boundaries:  make([]schema.Datum, 0, len(part.boundaries)+1),
		shards:      make([]*shard, 0, len(part.shards)+1),
		mapEpoch:    part.mapEpoch + 1,
		parentEpoch: part.mapEpoch,
	}
	next.boundaries = append(next.boundaries, part.boundaries[:idx]...)
	next.boundaries = append(next.boundaries, boundary)
	next.boundaries = append(next.boundaries, part.boundaries[idx:]...)
	next.shards = append(next.shards, part.shards[:idx]...)
	next.shards = append(next.shards, left, right)
	next.shards = append(next.shards, part.shards[idx+1:]...)

	op := &wal.ReshardOp{
		Split:       true,
		Shard:       cmd.shard,
		Boundary:    &boundary,
		RetiredIDs:  []uint64{old.id},
		NewIDs:      []uint64{leftID, rightID},
		MapEpoch:    next.mapEpoch,
		ParentEpoch: next.parentEpoch,
	}
	if err := s.commitTransition(t, next, op, old); err != nil {
		return nil, err
	}
	s.stats.splits.Add(1)
	s.stats.reshardResigns.Add(2)
	return &wire.ReshardResponse{MapEpoch: next.mapEpoch, NumShards: uint32(len(next.shards))}, nil
}

func (s *Server) mergeLocked(t *table, cmd *reshardCmd) (*wire.ReshardResponse, error) {
	part := t.part.Load()
	idx := int(cmd.shard)
	if idx < 0 || idx+1 >= len(part.shards) {
		return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: fmt.Sprintf("central: merge pair (%d,%d) out of range (table has %d shards)", idx, idx+1, len(part.shards))}
	}
	leftOld, rightOld := part.shards[idx], part.shards[idx+1]
	ltuples, err := scanShard(leftOld)
	if err != nil {
		return nil, err
	}
	rtuples, err := scanShard(rightOld)
	if err != nil {
		return nil, err
	}
	// The shards cover adjacent ascending ranges, so the concatenation
	// is the merged shard's key-ordered build input.
	tuples := append(append(make([]schema.Tuple, 0, len(ltuples)+len(rtuples)), ltuples...), rtuples...)
	startVersion := t.transitionStartVersion()
	mergedID := t.nextShardID
	merged, err := s.carveShard(t, tuples, startVersion, mergedID)
	if err != nil {
		return nil, err
	}
	t.nextShardID++

	t.detMu.Lock()
	merged.ewma = leftOld.ewma + rightOld.ewma
	t.detMu.Unlock()

	next := &partition{
		boundaries:  make([]schema.Datum, 0, len(part.boundaries)-1),
		shards:      make([]*shard, 0, len(part.shards)-1),
		mapEpoch:    part.mapEpoch + 1,
		parentEpoch: part.mapEpoch,
	}
	next.boundaries = append(next.boundaries, part.boundaries[:idx]...)
	next.boundaries = append(next.boundaries, part.boundaries[idx+1:]...)
	next.shards = append(next.shards, part.shards[:idx]...)
	next.shards = append(next.shards, merged)
	next.shards = append(next.shards, part.shards[idx+2:]...)

	op := &wal.ReshardOp{
		Shard:       cmd.shard,
		RetiredIDs:  []uint64{leftOld.id, rightOld.id},
		NewIDs:      []uint64{mergedID},
		MapEpoch:    next.mapEpoch,
		ParentEpoch: next.parentEpoch,
	}
	if err := s.commitTransition(t, next, op, leftOld, rightOld); err != nil {
		return nil, err
	}
	s.stats.merges.Add(1)
	s.stats.reshardResigns.Add(1)
	return &wire.ReshardResponse{MapEpoch: next.mapEpoch, NumShards: uint32(len(next.shards))}, nil
}

// splitBoundary resolves the split key: the caller's explicit boundary
// (validated strictly inside the shard's range) or the shard's median
// key, which requires at least two tuples so both sides are non-empty.
func splitBoundary(t *table, part *partition, idx int, tuples []schema.Tuple, explicit *schema.Datum) (schema.Datum, error) {
	var b schema.Datum
	if explicit != nil {
		b = *explicit
	} else {
		if len(tuples) < 2 {
			return b, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
				Msg: fmt.Sprintf("central: shard %d has %d tuples, too few for a median split", idx, len(tuples))}
		}
		b = tuples[len(tuples)/2].Key(t.sch)
	}
	if idx > 0 && b.Compare(part.boundaries[idx-1]) <= 0 {
		return b, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: fmt.Sprintf("central: split boundary %v not inside shard %d's range", b, idx)}
	}
	if idx < len(part.boundaries) && b.Compare(part.boundaries[idx]) >= 0 {
		return b, &wire.WireError{Code: wire.CodeBadRequest, Table: t.sch.Table,
			Msg: fmt.Sprintf("central: split boundary %v not inside shard %d's range", b, idx)}
	}
	return b, nil
}

// carveShard builds one transition-created shard over tuples, named by
// its stable ID, and seeds its WAL with the carved contents as one
// RecBatch so restart replay reconstructs the shard without the retired
// parent's log.
func (s *Server) carveShard(t *table, tuples []schema.Tuple, startVersion, id uint64) (*shard, error) {
	sh, err := s.buildShard(t.sch, tuples, t.epoch, startVersion, idWalName(t.sch.Table, id))
	if err != nil {
		return nil, err
	}
	sh.id = id
	if sh.log != nil && len(tuples) > 0 {
		if _, err := sh.log.Append(wal.RecBatch, wal.EncodeBatchPayload(tuples)); err != nil {
			return nil, err
		}
		if err := sh.log.Sync(); err != nil {
			return nil, err
		}
	}
	s.stats.reshardPagesMoved.Add(uint64(sh.pool.Pager().NumPages() - 1))
	return sh, nil
}

// commitTransition makes a built transition durable and visible: the
// typed RecReshard record is WAL-logged and synced first, then — under
// commitMu, in one step — the map version bumps, the new epoch's map is
// signed and both the signed map and the partition pointer swap. The
// retired shards' logs are closed (their history lives on in the
// carved shards' seed batches).
func (s *Server) commitTransition(t *table, next *partition, op *wal.ReshardOp, retired ...*shard) error {
	if t.metaLog != nil {
		if _, err := t.metaLog.Append(wal.RecReshard, wal.EncodeReshardPayload(op)); err != nil {
			return err
		}
		if err := t.metaLog.Sync(); err != nil {
			return err
		}
	}
	t.commitMu.Lock()
	t.mapVersion++
	// No shard locks are needed building the map: the caller holds partMu
	// exclusively, so no shard can commit concurrently.
	signed, err := shardmap.Sign(s.mapOf(t, next, t.mapVersion, false), s.key)
	if err != nil {
		t.commitMu.Unlock()
		return err
	}
	t.smap.Store(signed)
	t.part.Store(next)
	t.commitMu.Unlock()
	for _, sh := range retired {
		if sh.log != nil {
			// Writers are excluded by partMu and queries never touch the
			// log, so the retired logs are quiescent.
			if err := sh.log.Close(); err != nil {
				return err
			}
			sh.log = nil
		}
	}
	return nil
}

// AutoReshardTick runs one detector pass over a table: it folds the
// per-shard ingest/query counters accumulated since the last tick into
// each shard's EWMA, then splits the hottest shard (median boundary) if
// its load share exceeds SplitFraction, or merges the coldest adjacent
// pair if their combined share falls below MergeFraction. Returns the
// committed transition, or nil if the partition was left alone. Safe to
// drive manually when no background interval is configured.
func (s *Server) AutoReshardTick(ctx context.Context, tableName string) (*wire.ReshardResponse, error) {
	opts := s.opts.AutoReshard
	if opts == nil {
		return nil, nil
	}
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	part := t.part.Load()
	alpha := opts.alpha()

	t.detMu.Lock()
	total := 0.0
	for _, sh := range part.shards {
		load := float64(sh.ingestLoad.Swap(0) + sh.queryLoad.Swap(0))
		sh.ewma = alpha*load + (1-alpha)*sh.ewma
		total += sh.ewma
	}
	split, merge := -1, -1
	if total > 0 {
		hotIdx, hot := 0, part.shards[0].ewma
		for i, sh := range part.shards[1:] {
			if sh.ewma > hot {
				hotIdx, hot = i+1, sh.ewma
			}
		}
		if hot/total > opts.splitFraction() && len(part.shards) < opts.maxShards() {
			split = hotIdx
		} else if len(part.shards) > opts.minShards() && len(part.shards) >= 2 {
			coldIdx, cold := -1, 0.0
			for i := 0; i+1 < len(part.shards); i++ {
				pair := part.shards[i].ewma + part.shards[i+1].ewma
				if coldIdx < 0 || pair < cold {
					coldIdx, cold = i, pair
				}
			}
			if coldIdx >= 0 && cold/total < opts.mergeFraction() {
				merge = coldIdx
			}
		}
	}
	t.detMu.Unlock()

	// Act outside detMu: the transition paths take partMu then detMu.
	switch {
	case split >= 0:
		return s.SplitShard(ctx, tableName, uint32(split), nil)
	case merge >= 0:
		return s.MergeShards(ctx, tableName, uint32(merge))
	}
	return nil, nil
}

// autoReshardLoop drives the detector for every table at the configured
// interval until the server closes. Detector errors are deliberately
// dropped: a failed automatic transition (e.g. a one-tuple shard that
// cannot median-split) must not stop the loop, and the manual admin
// path surfaces the same errors to an operator.
func (s *Server) autoReshardLoop() {
	ticker := time.NewTicker(s.opts.AutoReshard.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-ticker.C:
		}
		for _, name := range s.Tables() {
			_, _ = s.AutoReshardTick(s.baseCtx, name)
		}
	}
}
