package central

import (
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/wal"
	"edgeauth/internal/workload"
)

// newDeltaServer builds a central server with the "items" table and the
// given changelog retention.
func newDeltaServer(t *testing.T, rows, retention int, walDir string) *Server {
	t.Helper()
	srv, err := NewServerWithKey(Options{
		PageSize:       1024,
		DeltaRetention: retention,
		WALDir:         walDir,
	}, serverKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// tableEpoch fetches the "items" incarnation id.
func tableEpoch(t *testing.T, srv *Server) uint64 {
	t.Helper()
	ep, err := srv.TableEpoch("items")
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// insertRow adds a fresh row with the workload's column layout.
func insertRow(t *testing.T, srv *Server, id int64) {
	t.Helper()
	sch, err := workload.DefaultSpec(1).Schema()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for i := 1; i < len(vals); i++ {
		if sch.Columns[i].Name == "cat" {
			vals[i] = schema.Str(workload.CategoryName(0))
			continue
		}
		vals[i] = schema.Str("delta-test-payload-xx")
	}
	if err := srv.Insert("items", schema.Tuple{Values: vals}); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaEmptyWhenCurrent(t *testing.T) {
	srv := newDeltaServer(t, 50, 0, "")
	v, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	d, err := srv.Delta("items", v, tableEpoch(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded || d.ToVersion != v || len(d.PageIDs) != 0 {
		t.Fatalf("empty delta: %+v", d)
	}
	if err := srv.PublicKey().Verify(d.Sig, d.SigPayload()); err != nil {
		t.Fatalf("delta signature invalid: %v", err)
	}
}

func TestDeltaCarriesOnlyChangedPages(t *testing.T) {
	srv := newDeltaServer(t, 400, 0, "")
	snapBefore, err := srv.Snapshot("items")
	if err != nil {
		t.Fatal(err)
	}
	insertRow(t, srv, 10_000)
	lo := schema.Int64(0)
	hi := schema.Int64(3)
	if _, err := srv.DeleteRange("items", &lo, &hi); err != nil {
		t.Fatal(err)
	}
	d, err := srv.Delta("items", snapBefore.Version, snapBefore.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded {
		t.Fatal("delta within retention answered SnapshotNeeded")
	}
	if d.ToVersion != snapBefore.Version+2 {
		t.Fatalf("ToVersion = %d, want %d", d.ToVersion, snapBefore.Version+2)
	}
	if len(d.PageIDs) == 0 {
		t.Fatal("delta carries no pages after updates")
	}
	if len(d.PageIDs) >= len(snapBefore.PageIDs) {
		t.Fatalf("delta has %d pages, snapshot only %d — no savings", len(d.PageIDs), len(snapBefore.PageIDs))
	}
	if err := srv.PublicKey().Verify(d.Sig, d.SigPayload()); err != nil {
		t.Fatalf("delta signature invalid: %v", err)
	}
}

func TestDeltaFallsBackPastRetention(t *testing.T) {
	srv := newDeltaServer(t, 100, 3, "")
	base, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		insertRow(t, srv, 20_000+int64(i))
	}
	// base is 5 versions behind with only 3 retained: snapshot needed.
	d, err := srv.Delta("items", base, tableEpoch(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if !d.SnapshotNeeded {
		t.Fatal("delta served beyond retention window")
	}
	// base+2 is exactly 3 behind: still covered.
	d, err = srv.Delta("items", base+2, tableEpoch(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded {
		t.Fatal("delta within retention answered SnapshotNeeded")
	}
	// A "future" version (central restarted, edge ahead) needs a snapshot.
	d, err = srv.Delta("items", base+100, tableEpoch(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if !d.SnapshotNeeded {
		t.Fatal("future version did not force a snapshot")
	}
}

func TestDeltaDisabledRetention(t *testing.T) {
	srv := newDeltaServer(t, 40, -1, "")
	base, err := srv.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	insertRow(t, srv, 30_000)
	d, err := srv.Delta("items", base, tableEpoch(t, srv))
	if err != nil {
		t.Fatal(err)
	}
	if !d.SnapshotNeeded {
		t.Fatal("disabled retention still served a delta")
	}
}

func TestDeltaRejectsForeignEpoch(t *testing.T) {
	// Two incarnations of the same table (same key, same rows — the
	// central-restart scenario): versions are not comparable across them,
	// so a replica of one must get SnapshotNeeded from the other even
	// when its version appears covered.
	srvA := newDeltaServer(t, 30, 0, "")
	srvB := newDeltaServer(t, 30, 0, "")
	insertRow(t, srvB, 30_001)
	d, err := srvB.Delta("items", 0, tableEpoch(t, srvA))
	if err != nil {
		t.Fatal(err)
	}
	if !d.SnapshotNeeded {
		t.Fatal("delta served across table incarnations")
	}
	if d.Epoch != tableEpoch(t, srvB) {
		t.Fatal("delta does not advertise the server's epoch")
	}
	// Same epoch works.
	d, err = srvB.Delta("items", 0, tableEpoch(t, srvB))
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded {
		t.Fatal("matching epoch refused a delta")
	}
}

func TestLoggedOpsMatchChangelog(t *testing.T) {
	srv := newDeltaServer(t, 60, 0, t.TempDir())
	insertRow(t, srv, 40_000)
	lo := schema.Int64(5)
	if _, err := srv.DeleteRange("items", &lo, &lo); err != nil {
		t.Fatal(err)
	}
	ops, err := srv.LoggedOps("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 {
		t.Fatalf("logged %d ops, want 2", len(ops))
	}
	if ops[0].Kind != wal.RecInsert || ops[0].Tuple.Values[0].I != 40_000 {
		t.Fatalf("op0 = %+v", ops[0])
	}
	if ops[1].Kind != wal.RecDelete || ops[1].Lo.I != 5 || ops[1].Hi.I != 5 {
		t.Fatalf("op1 = %+v", ops[1])
	}
	// LoggedOps without WAL configured errors.
	plain := newDeltaServer(t, 10, 0, "")
	if _, err := plain.LoggedOps("items"); err == nil {
		t.Fatal("LoggedOps without WALDir succeeded")
	}
}
