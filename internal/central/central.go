// Package central implements the trusted central DBMS of the paper's
// Figure 2. It owns the private signing key, builds and maintains the
// VB-trees over the base tables (and over materialized join views),
// executes insert/delete transactions under the §3.4 locking protocol with
// write-ahead logging, and serves snapshots ("DB + VB-trees") to edge
// servers plus its public key to clients over an authenticated channel —
// the stand-in for the paper's PKI.
//
// Every committed update additionally publishes an immutable snapshot of
// the table's page space (the same storage.PageStore mechanism the edges
// use), so queries, edge snapshot pulls and delta serves read pinned
// versions instead of contending with update batches for the table lock.
package central

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Options configures a Server.
type Options struct {
	// KeyBits sizes the RSA signing key; 0 selects sig.DefaultBits.
	KeyBits int
	// PageSize for table storage; 0 selects storage.DefaultPageSize.
	PageSize int
	// AccParams configures the digest accumulator; the zero value selects
	// digest.DefaultParams.
	AccParams digest.Params
	// WALDir, when non-empty, enables write-ahead logging of updates (one
	// log per table) in that directory.
	WALDir string
	// BuildParallelism bounds signing workers during table builds.
	BuildParallelism int
	// DeltaRetention bounds the per-table changelog used to serve
	// incremental updates to edge servers: the dirtied-page sets of the
	// most recent DeltaRetention committed updates are retained. Edges
	// whose replica version has fallen out of the window are told to pull
	// a full snapshot. 0 selects DefaultDeltaRetention; negative disables
	// delta serving entirely (every DeltaReq answers SnapshotNeeded).
	DeltaRetention int
	// IdleTimeout disconnects a peer that sends no complete request
	// within the window, so a hung or slowloris connection cannot pin a
	// server goroutine forever. 0 selects rpc.DefaultIdleTimeout;
	// negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConcurrent bounds the requests executing concurrently on one
	// multiplexed (protocol v2) connection. 0 selects
	// rpc.DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxBatch bounds one group-committed round of the coalescing write
	// front door: concurrent single-insert dispatches for a table are
	// committed together, up to MaxBatch per round. 0 selects
	// DefaultMaxBatch; negative disables coalescing (every insert commits
	// by itself, the pre-batching behaviour).
	MaxBatch int
	// MaxDelay is how long a group-commit leader waits for stragglers
	// before committing its round. 0 (the default) commits immediately
	// with whatever has queued — coalescing then happens only under
	// genuine concurrency and adds no idle latency.
	MaxDelay time.Duration
}

// DefaultDeltaRetention is the changelog depth kept per table when
// Options.DeltaRetention is zero.
const DefaultDeltaRetention = 512

// Server is the central DBMS.
type Server struct {
	mu     sync.RWMutex
	opts   Options
	key    *sig.PrivateKey
	acc    *digest.Accumulator
	locks  *lock.Manager
	tables map[string]*table

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     rpc.ConnSet
	wg        sync.WaitGroup
	closed    bool
}

type table struct {
	mu      sync.RWMutex
	sch     *schema.Schema
	tree    *vbtree.Tree
	pool    *storage.BufferPool
	heap    *storage.HeapFile
	log     *wal.Log
	version uint64 // bumped on every committed update
	epoch   uint64 // random per incarnation; versions compare only within it

	// store republishes the table as immutable snapshots, one per
	// committed version: queries and replication reads pin a version and
	// proceed without t.mu, so update batches and edge pulls stop
	// contending.
	store *storage.PageStore

	// changes is the retained changelog: one entry per committed update,
	// oldest first, with contiguous versions ending at version. pending
	// accumulates journaled pages that have not yet been attributed to a
	// version bump.
	changes []changeEntry
	pending []storage.PageID

	// gc coalesces concurrent single-insert dispatches into group commits.
	gc groupCommitter
}

// snapState pins the table's current published snapshot and decodes its
// vbtree.TableState metadata. Callers must Release the snapshot.
func (t *table) snapState() (*storage.Snapshot, *vbtree.TableState, error) {
	snap := t.store.Acquire()
	st, ok := snap.Meta().(*vbtree.TableState)
	if !ok {
		snap.Release()
		return nil, nil, errors.New("central: table has no published version")
	}
	return snap, st, nil
}

// changeEntry records what one committed update touched: the pages it
// dirtied (tree nodes, heap pages, overflow pages) and the WAL LSN it was
// logged under (0 when logging is disabled).
type changeEntry struct {
	version uint64
	lsn     uint64
	pages   []storage.PageID
}

// NewServer creates a central server with a fresh signing key.
func NewServer(opts Options) (*Server, error) {
	if opts.KeyBits == 0 {
		opts.KeyBits = sig.DefaultBits
	}
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	zero := digest.Params{}
	if opts.AccParams == zero {
		opts.AccParams = digest.DefaultParams()
	}
	key, err := sig.GenerateKey(opts.KeyBits)
	if err != nil {
		return nil, err
	}
	return NewServerWithKey(opts, key)
}

// NewServerWithKey creates a central server around an existing key (used
// by tests and tools that pre-generate keys).
func NewServerWithKey(opts Options, key *sig.PrivateKey) (*Server, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	zero := digest.Params{}
	if opts.AccParams == zero {
		opts.AccParams = digest.DefaultParams()
	}
	acc, err := digest.New(opts.AccParams)
	if err != nil {
		return nil, err
	}
	return &Server{
		opts:   opts,
		key:    key,
		acc:    acc,
		locks:  lock.NewManager(0),
		tables: make(map[string]*table),
	}, nil
}

// PublicKey returns the server's public key.
func (s *Server) PublicKey() *sig.PublicKey { return s.key.Public() }

// Accumulator returns the digest accumulator.
func (s *Server) Accumulator() *digest.Accumulator { return s.acc }

// SetKeyValidity stamps the signing key's version and validity window
// (paper §3.4 delayed-broadcast key rotation).
func (s *Server) SetKeyValidity(version uint32, notBefore, notAfter int64) {
	s.key.SetValidity(version, notBefore, notAfter)
}

// AddTable builds a VB-tree over tuples (sorted by key) and registers the
// table.
func (s *Server) AddTable(sch *schema.Schema, tuples []schema.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[sch.Table]; exists {
		return fmt.Errorf("central: table %q already exists", sch.Table)
	}
	mem, err := storage.NewMemPager(s.opts.PageSize)
	if err != nil {
		return err
	}
	pool, err := storage.NewBufferPool(mem, 1<<20) // generous: pages stay resident
	if err != nil {
		return err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return err
	}
	cfg := vbtree.Config{
		Pool:             pool,
		Heap:             heap,
		Schema:           sch,
		Acc:              s.acc,
		Signer:           s.key,
		Pub:              s.key.Public(),
		Locks:            s.locks,
		BuildParallelism: s.opts.BuildParallelism,
	}
	tree, err := vbtree.Build(cfg, tuples, 1.0)
	if err != nil {
		return err
	}
	epoch, err := newEpoch()
	if err != nil {
		return err
	}
	store, err := storage.NewPageStore(s.opts.PageSize)
	if err != nil {
		return err
	}
	t := &table{sch: sch, tree: tree, pool: pool, heap: heap, epoch: epoch, store: store}
	// Publish the built table as version 0's snapshot: every page of the
	// pager becomes the read-path baseline.
	pager := pool.Pager()
	baseline := make([]storage.PageID, 0, pager.NumPages()-1)
	for id := 1; id < pager.NumPages(); id++ {
		baseline = append(baseline, storage.PageID(id))
	}
	if err := s.publishLocked(t, baseline); err != nil {
		return err
	}
	if s.retention() > 0 {
		// The initial build is the snapshot baseline; journal only the
		// pages later updates dirty.
		pool.EnableJournal()
	}
	if s.opts.WALDir != "" {
		log, err := wal.Create(filepath.Join(s.opts.WALDir, sch.Table+".wal"))
		if err != nil {
			return err
		}
		t.log = log
	}
	s.tables[sch.Table] = t
	return nil
}

// newEpoch draws a random nonzero table-incarnation id. Replica versions
// are only meaningful within one epoch: a central server that rebuilds a
// table (e.g. after a restart) gets a fresh epoch, so stale edges are
// steered to a full snapshot instead of a delta from a divergent history.
func newEpoch() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("central: generating table epoch: %w", err)
		}
		if e := binary.BigEndian.Uint64(b[:]); e != 0 {
			return e, nil
		}
	}
}

// retention resolves Options.DeltaRetention: 0 = default, negative =
// disabled.
func (s *Server) retention() int {
	switch {
	case s.opts.DeltaRetention == 0:
		return DefaultDeltaRetention
	case s.opts.DeltaRetention < 0:
		return 0
	default:
		return s.opts.DeltaRetention
	}
}

// commitChange attributes the pages journaled since the last call to the
// just-committed version, trims the changelog to the retention window,
// and returns the committed page set. Callers hold t.mu.
func (t *table) commitChange(version, lsn uint64, retention int) []storage.PageID {
	t.pending = append(t.pending, t.pool.DrainJournal()...)
	entry := changeEntry{version: version, lsn: lsn, pages: t.pending}
	t.pending = nil
	t.changes = append(t.changes, entry)
	if over := len(t.changes) - retention; over > 0 {
		t.changes = append([]changeEntry(nil), t.changes[over:]...)
	}
	return entry.pages
}

// publishLocked copies the given (just-dirtied) pages out of the live
// buffer pool into a copy-on-write overlay and publishes the result as
// the table's next immutable snapshot, carrying the tree anchor for the
// committed version. Callers hold t.mu (or have exclusive access during
// AddTable), which is what makes the copied pages a consistent cut.
func (s *Server) publishLocked(t *table, pages []storage.PageID) error {
	ov := t.store.Begin()
	defer ov.Abort() // no-op once published
	pager := t.pool.Pager()
	for ov.NumPages() < pager.NumPages() {
		ov.Allocate()
	}
	for _, id := range pages {
		buf, err := t.pool.View(id)
		if err != nil {
			return err
		}
		if err := ov.WritePage(id, buf); err != nil {
			return err
		}
	}
	ov.Publish(&vbtree.TableState{
		Root:       t.tree.Root(),
		Height:     t.tree.Height(),
		RootSig:    t.tree.RootSig(),
		HeapPages:  t.heap.Pages(),
		KeyVersion: s.key.Public().Version,
		Version:    t.version,
		Epoch:      t.epoch,
	})
	return nil
}

// publishCommitLocked publishes a commit's pages. A failure does not
// undo the commit — the update is WAL-logged and the version bumped —
// it only means the published snapshot lags, so the pages are re-staged
// and the next successful publish carries them.
func (s *Server) publishCommitLocked(t *table, pages []storage.PageID) error {
	if err := s.publishLocked(t, pages); err != nil {
		t.pending = append(t.pending, pages...)
		return fmt.Errorf("central: update committed but snapshot publish failed (will catch up on the next commit): %w", err)
	}
	return nil
}

// stashJournal collects journaled pages that did not result in a version
// bump (e.g. a delete matching no rows) so they are attributed to the
// next committed update instead of being lost. Callers hold t.mu.
func (t *table) stashJournal() {
	t.pending = append(t.pending, t.pool.DrainJournal()...)
}

// MaterializeJoin computes left ⋈ right on lcol = rcol and registers the
// result as a view table with its own VB-tree (the paper's join story).
func (s *Server) MaterializeJoin(viewName, left, right, lcol, rcol string) error {
	lt, err := s.table(left)
	if err != nil {
		return err
	}
	rt, err := s.table(right)
	if err != nil {
		return err
	}
	ltuples, err := scanTuples(lt)
	if err != nil {
		return err
	}
	rtuples, err := scanTuples(rt)
	if err != nil {
		return err
	}
	viewSch, viewTuples, err := query.MaterializeEquiJoin(viewName, lt.sch, rt.sch, ltuples, rtuples, lcol, rcol)
	if err != nil {
		return err
	}
	return s.AddTable(viewSch, viewTuples)
}

func scanTuples(t *table) ([]schema.Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	stored, err := t.tree.ScanAll()
	if err != nil {
		return nil, err
	}
	out := make([]schema.Tuple, len(stored))
	for i, st := range stored {
		out[i] = st.Tuple
	}
	return out, nil
}

func (s *Server) table(name string) (*table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, wire.UnknownTable("central", name)
	}
	return t, nil
}

// Tables lists registered tables in sorted order.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Version returns a table's update version (edges use it for staleness
// checks under the paper's periodic-propagation mode).
func (s *Server) Version(name string) (uint64, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version, nil
}

// TableEpoch returns a table's incarnation id.
func (s *Server) TableEpoch(name string) (uint64, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	return t.epoch, nil
}

// Insert logs and applies a tuple insert.
func (s *Server) Insert(tableName string, tup schema.Tuple) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var lsn uint64
	if t.log != nil {
		if lsn, err = t.log.Append(wal.RecInsert, wal.EncodeInsertPayload(tup)); err != nil {
			return err
		}
		if err := t.log.Sync(); err != nil {
			return err
		}
	}
	if err := t.tree.Insert(tup); err != nil {
		t.stashJournal()
		return err
	}
	t.version++
	pages := t.commitChange(t.version, lsn, s.retention())
	return s.publishCommitLocked(t, pages)
}

// DeleteRange logs and applies a key-range delete; returns the count.
func (s *Server) DeleteRange(tableName string, lo, hi *schema.Datum) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var lsn uint64
	if t.log != nil {
		if lsn, err = t.log.Append(wal.RecDelete, wal.EncodeDeletePayload(lo, hi)); err != nil {
			return 0, err
		}
		if err := t.log.Sync(); err != nil {
			return 0, err
		}
	}
	n, err := t.tree.DeleteRange(lo, hi)
	if err != nil {
		t.stashJournal()
		return 0, err
	}
	if n > 0 {
		t.version++
		pages := t.commitChange(t.version, lsn, s.retention())
		if err := s.publishCommitLocked(t, pages); err != nil {
			// The delete itself committed (WAL-logged, version bumped);
			// report the real count so callers don't re-apply it.
			return n, err
		}
	} else {
		t.stashJournal()
	}
	return n, nil
}

// Snapshot captures a table replica for an edge server: every page of the
// current published version plus its tree metadata. It reads a pinned
// immutable snapshot, so concurrent update batches neither block it nor
// tear its page set.
func (s *Server) Snapshot(tableName string) (*wire.Snapshot, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	pinned, st, err := t.snapState()
	if err != nil {
		return nil, err
	}
	defer pinned.Release()
	snap := &wire.Snapshot{
		Schema:     t.sch,
		AccParams:  wire.AccParamsFrom(s.acc),
		Root:       st.Root,
		Height:     uint32(st.Height),
		RootSig:    st.RootSig,
		PageSize:   uint32(pinned.PageSize()),
		HeapPages:  st.HeapPages,
		KeyVersion: st.KeyVersion,
		Version:    st.Version,
		Epoch:      st.Epoch,
	}
	for id := 1; id < pinned.NumPages(); id++ {
		buf, err := pinned.View(storage.PageID(id))
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		snap.PageIDs = append(snap.PageIDs, storage.PageID(id))
		snap.PageData = append(snap.PageData, cp)
	}
	return snap, nil
}

// Delta builds the incremental update that takes a replica at
// fromVersion to the table's current version: the union of the pages
// dirtied by the committed updates in (fromVersion, current], the new
// tree metadata, and a signature over the whole payload. When the
// retained changelog no longer covers fromVersion the returned delta has
// SnapshotNeeded set and the edge must pull a full snapshot instead.
func (s *Server) Delta(tableName string, fromVersion, epoch uint64) (*wire.Delta, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	// Pin the version the delta will take the replica to; page content is
	// read from this immutable snapshot, so updates committing while the
	// delta is assembled cannot leak into it.
	pinned, st, err := t.snapState()
	if err != nil {
		return nil, err
	}
	defer pinned.Release()
	d := &wire.Delta{
		Table:       tableName,
		FromVersion: fromVersion,
		ToVersion:   st.Version,
		Epoch:       st.Epoch,
	}
	if epoch != st.Epoch || fromVersion > st.Version {
		// The replica descends from a different table incarnation (or
		// claims a future version): its history has diverged from ours,
		// so a delta would silently corrupt it.
		d.SnapshotNeeded = true
		return s.signDelta(d)
	}
	// Only the changelog needs the table lock, and only briefly.
	t.mu.RLock()
	// Changelog entries carry contiguous versions ending at t.version, so
	// coverage is a simple window check.
	oldestCovered := t.version - uint64(len(t.changes))
	covered := fromVersion >= oldestCovered
	seen := make(map[storage.PageID]struct{})
	if covered {
		for _, e := range t.changes {
			if e.version <= fromVersion || e.version > st.Version {
				continue
			}
			for _, id := range e.pages {
				seen[id] = struct{}{}
			}
		}
	}
	t.mu.RUnlock()
	if !covered {
		d.SnapshotNeeded = true
		return s.signDelta(d)
	}
	ids := make([]storage.PageID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		buf, err := pinned.View(id)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		d.PageIDs = append(d.PageIDs, id)
		d.PageData = append(d.PageData, cp)
	}
	d.Root = st.Root
	d.Height = uint32(st.Height)
	d.RootSig = st.RootSig
	d.HeapPages = st.HeapPages
	d.NumPages = uint32(pinned.NumPages())
	d.KeyVersion = st.KeyVersion
	return s.signDelta(d)
}

// signDelta stamps the central server's signature on a delta so edges can
// reject forged or corrupted updates.
func (s *Server) signDelta(d *wire.Delta) (*wire.Delta, error) {
	sg, err := s.key.Sign(d.SigPayload())
	if err != nil {
		return nil, err
	}
	d.Sig = sg
	return d, nil
}

// LoggedOps replays a table's write-ahead log (post-checkpoint) as typed
// operations — the logical history backing the page-level changelog.
// Requires Options.WALDir.
func (s *Server) LoggedOps(tableName string) ([]wal.Op, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	if t.log == nil {
		return nil, errors.New("central: write-ahead logging not enabled")
	}
	if err := t.log.Sync(); err != nil {
		return nil, err
	}
	var ops []wal.Op
	path := filepath.Join(s.opts.WALDir, tableName+".wal")
	if err := wal.ReplayOps(path, func(op wal.Op) error {
		ops = append(ops, op)
		return nil
	}); err != nil {
		return nil, err
	}
	return ops, nil
}

// SchemaResponse builds the client-facing verification parameters.
func (s *Server) SchemaResponse(tableName string) (*wire.SchemaResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	return &wire.SchemaResponse{
		Schema:     t.sch,
		AccParams:  wire.AccParamsFrom(s.acc),
		KeyVersion: s.key.Public().Version,
	}, nil
}

// RunQuery answers a query directly at the central server (trusted path,
// used by tools and tests; production queries go through edges). Like the
// edge path it runs lock-free over the current published snapshot, so
// queries neither wait for nor delay update batches.
func (s *Server) RunQuery(ctx context.Context, tableName string, q vbtree.Query) (*wire.QueryResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	pinned, st, err := t.snapState()
	if err != nil {
		return nil, err
	}
	defer pinned.Release()
	v, err := st.ViewOver(pinned, t.sch, s.acc, s.key.Public())
	if err != nil {
		return nil, err
	}
	rs, w, err := v.RunQuery(ctx, q)
	if err != nil {
		return nil, err
	}
	return &wire.QueryResponse{Result: rs, VO: w}, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.conns.Add(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Remove(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving: listeners and live connections are closed, then
// in-flight handlers are drained.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.conns.CloseAll()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tables {
		if t.log != nil {
			t.log.Close()
		}
	}
}

// handleConn negotiates the protocol with the peer and dispatches its
// requests — concurrently, on multiplexed v2 sessions — until it
// disconnects or idles out.
func (s *Server) handleConn(conn net.Conn) {
	rpc.ServeConn(conn, s.dispatch, rpc.ServeOptions{
		IdleTimeout:   s.opts.IdleTimeout,
		MaxConcurrent: s.opts.MaxConcurrent,
	})
}

// dispatch executes one request and returns the response frame. It must
// be safe for concurrent use: v2 connections run requests in parallel.
// ctx is the connection's context, cancelled when the peer disconnects.
func (s *Server) dispatch(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgPubKeyReq:
		blob, err := s.key.Public().MarshalBinary()
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgPubKeyResp, blob, nil

	case wire.MsgListTablesReq:
		return wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()), nil

	case wire.MsgSnapshotReq:
		snap, err := s.Snapshot(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgSnapshotResp, snap.Encode(), nil

	case wire.MsgDeltaReq:
		req, err := wire.DecodeDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		d, err := s.Delta(req.Table, req.FromVersion, req.Epoch)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgDeltaResp, d.Encode(), nil

	case wire.MsgSchemaReq:
		resp, err := s.SchemaResponse(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgSchemaResp, resp.Encode(), nil

	case wire.MsgVersionReq:
		v, err := s.Version(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgVersionResp, wire.EncodeU64(v), nil

	case wire.MsgInsertReq:
		req, err := wire.DecodeInsertRequest(body)
		if err != nil {
			return 0, nil, err
		}
		// Concurrent single inserts coalesce into group commits behind
		// this call; lone inserts commit by themselves.
		if err := s.enqueueInsert(ctx, req.Table, req.Tuple); err != nil {
			if errors.Is(err, vbtree.ErrDuplicateKey) {
				return 0, nil, wire.DuplicateKey(req.Table, err.Error())
			}
			return 0, nil, err
		}
		return wire.MsgInsertResp, nil, nil

	case wire.MsgBatchReq:
		req, err := wire.DecodeBatchRequest(body)
		if err != nil {
			return 0, nil, err
		}
		opErrs, err := s.ApplyBatch(req.Table, req.Tuples)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgBatchResp, batchResponse(len(req.Tuples), opErrs).Encode(), nil

	case wire.MsgDeleteReq:
		req, err := wire.DecodeDeleteRequest(body)
		if err != nil {
			return 0, nil, err
		}
		var lo, hi *schema.Datum
		if req.HasLo {
			lo = &req.Lo
		}
		if req.HasHi {
			hi = &req.Hi
		}
		n, err := s.DeleteRange(req.Table, lo, hi)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgDeleteResp, wire.EncodeU64(uint64(n)), nil

	default:
		return 0, nil, wire.Unsupported("central", mt)
	}
}
