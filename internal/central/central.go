// Package central implements the trusted central DBMS of the paper's
// Figure 2. It owns the private signing key, builds and maintains the
// VB-trees over the base tables (and over materialized join views),
// executes insert/delete transactions with write-ahead logging, and
// serves snapshots ("DB + VB-trees") to edge servers plus its public key
// to clients over an authenticated channel — the stand-in for the
// paper's PKI.
//
// Tables are range-partitioned by primary key into Options.Shards
// independent VB-tree shards, each with its own signed root, buffer
// pool, heap, WAL and delta changelog. A signed shard map
// (internal/shardmap) binds the shards back into one verifiable
// relation: the central server re-signs it on every commit, and clients
// verify it before trusting any per-shard answer. Because each shard
// root is signed independently, insert batches that land on different
// shards re-sign in parallel — the RSA-bound write path scales with
// cores instead of serializing on one root.
//
// Every committed update additionally publishes an immutable snapshot of
// the shard's page space (the same storage.PageStore mechanism the edges
// use), so queries, edge snapshot pulls and delta serves read pinned
// versions instead of contending with update batches for the shard lock.
package central

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Options configures a Server.
type Options struct {
	// KeyBits sizes the RSA signing key; 0 selects sig.DefaultBits.
	// Ignored for SchemeEd25519.
	KeyBits int
	// Scheme selects the signature scheme for the generated signing key:
	// SchemeRSAFull (the default, the paper's every-digest-signed
	// construction), SchemeRSAMerkle (hash-only interior commitments, one
	// RSA root signature per shard), or SchemeEd25519 (Merkle commitments
	// with a detached Ed25519 root signature). Ignored by
	// NewServerWithKey, where the key carries its own scheme.
	Scheme sig.Scheme
	// PageSize for table storage; 0 selects storage.DefaultPageSize.
	PageSize int
	// AccParams configures the digest accumulator; the zero value selects
	// digest.DefaultParams.
	AccParams digest.Params
	// WALDir, when non-empty, enables write-ahead logging of updates (one
	// log per shard) in that directory.
	WALDir string
	// BuildParallelism bounds signing workers during table builds.
	BuildParallelism int
	// DeltaRetention bounds the per-shard changelog used to serve
	// incremental updates to edge servers: the dirtied-page sets of the
	// most recent DeltaRetention committed updates are retained. Edges
	// whose replica version has fallen out of the window are told to pull
	// a full snapshot. 0 selects DefaultDeltaRetention; negative disables
	// delta serving entirely (every DeltaReq answers SnapshotNeeded).
	DeltaRetention int
	// IdleTimeout disconnects a peer that sends no complete request
	// within the window, so a hung or slowloris connection cannot pin a
	// server goroutine forever. 0 selects rpc.DefaultIdleTimeout;
	// negative disables the deadline.
	IdleTimeout time.Duration
	// MaxConcurrent bounds the requests executing concurrently on one
	// multiplexed (protocol v2) connection. 0 selects
	// rpc.DefaultMaxConcurrent.
	MaxConcurrent int
	// MaxBatch bounds one group-committed round of the coalescing write
	// front door: concurrent single-insert dispatches for a table are
	// committed together, up to MaxBatch per round. 0 selects
	// DefaultMaxBatch; negative disables coalescing (every insert commits
	// by itself, the pre-batching behaviour).
	MaxBatch int
	// MaxDelay is how long a group-commit leader waits for stragglers
	// before committing its round. 0 (the default) commits immediately
	// with whatever has queued — coalescing then happens only under
	// genuine concurrency and adds no idle latency.
	MaxDelay time.Duration
	// Shards is how many range partitions each table is built with.
	// 0 or 1 selects a single shard (the unsharded layout, fully
	// compatible with pre-sharding edge servers and clients).
	Shards int
	// ShardSplit picks the boundary-selection strategy for the initial
	// partition: shardmap.SplitByCount (default) balances build tuples
	// per shard, shardmap.SplitByKeySpan divides the key interval
	// evenly.
	ShardSplit shardmap.Strategy
	// AutoReshard, when non-nil, arms the hot-shard detector: an EWMA
	// over per-shard ingest/query counters that splits a shard carrying
	// a disproportionate load share and merges cold adjacent pairs,
	// online, under live traffic (see reshard.go). With a positive
	// Interval a background loop ticks every table; with Interval zero
	// the caller drives AutoReshardTick manually.
	AutoReshard *AutoReshardOptions
	// ReshardTailBound caps how many delta-tail tuples a transition may
	// replay inside the partition write lock: while the tail measured
	// outside the lock exceeds the bound, extra catch-up rounds replay
	// it lock-free before the barrier is taken. 0 selects
	// DefaultReshardTailBound; negative disables the pre-barrier
	// catch-up (the whole tail replays under the lock).
	ReshardTailBound int
	// ReshardCheckpointEvery, when positive, writes a partition
	// checkpoint into the table's meta log after every N committed
	// transitions, so replaying a long split/merge history is truncated
	// to the checkpointed state plus at most N records. 0 disables
	// checkpointing.
	ReshardCheckpointEvery int
}

// DefaultDeltaRetention is the changelog depth kept per shard when
// Options.DeltaRetention is zero.
const DefaultDeltaRetention = 512

// Server is the central DBMS.
type Server struct {
	mu     sync.RWMutex
	opts   Options
	key    *sig.PrivateKey
	acc    *digest.Accumulator
	tables map[string]*table

	stats serverCounters

	lnMu      sync.Mutex
	listeners []net.Listener
	conns     rpc.ConnSet
	wg        sync.WaitGroup
	closed    bool

	// baseCtx parents every connection's context; Close cancels it so
	// in-flight handlers across all connections stop early.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	closeOnce  sync.Once
	closeErr   error
}

// table is one range-partitioned relation: N shard trees plus the
// signed map binding them. The partition itself (boundaries + shard
// set) is no longer fixed at creation: online splits and merges swap in
// a new generation under partMu.
type table struct {
	sch   *schema.Schema
	epoch uint64 // random per incarnation, shared by all shards

	// partMu orders writers against partition transitions: every apply
	// path (Insert, DeleteRange, ApplyBatch) holds the read lock from
	// shard routing through map republish, so a split/merge (write lock)
	// never swaps the shard set out from under a half-applied batch.
	// Read-only paths (queries, snapshots, deltas) skip the lock and
	// run against whatever partition pointer they load — they read
	// pinned snapshots, so a concurrent transition only means they
	// describe the generation they loaded. Lock order: partMu before
	// any shard.mu, shard locks released before commitMu.
	partMu sync.RWMutex
	part   atomic.Pointer[partition]

	// nextShardID hands out stable shard identities (never reused within
	// the incarnation). Guarded by partMu (writers of new shards hold
	// the write lock).
	nextShardID uint64

	// metaLog records partition transitions (RecReshard) when WAL is
	// enabled; per-shard logs carry only tuple history, so without this
	// record a restart could not know which shard logs compose the
	// table. Guarded by partMu's write lock (transitions are serialized).
	metaLog *wal.Log

	// commitMu serializes shard-map version bumps and re-signs. It is
	// never held while taking a shard's write lock (commits release
	// their shard locks before republishing the map), so the two lock
	// orders cannot deadlock.
	commitMu   sync.Mutex
	mapVersion uint64 // guarded by commitMu
	smap       atomic.Pointer[shardmap.Signed]

	// gc coalesces concurrent single-op dispatches into group commits.
	gc groupCommitter

	// detMu guards the hot-shard detector's EWMA state (shard.ewma).
	detMu sync.Mutex

	// reshardMu serializes whole partition transitions (pin, unlocked
	// child builds, catch-up, barrier) so at most one is in flight per
	// table. It is never held while holding partMu or any shard lock in
	// a way that could invert orders: prepare takes shard locks only
	// briefly to pin, and the barrier body takes partMu on its own.
	reshardMu sync.Mutex

	// transitionsSinceCkpt counts committed transitions since the last
	// meta-log partition checkpoint. Guarded by partMu's write lock
	// (only the barrier body, which holds it, touches the counter).
	transitionsSinceCkpt int
}

// partition is one immutable generation of a table's shard layout,
// published by atomic pointer swap. mapEpoch/parentEpoch mirror the
// signed map's generation link.
type partition struct {
	boundaries  []schema.Datum // len = len(shards)-1
	shards      []*shard
	mapEpoch    uint64
	parentEpoch uint64
}

// shardFor routes a key to its shard index within this partition.
func (p *partition) shardFor(key schema.Datum) int {
	m := shardmap.Map{Boundaries: p.boundaries}
	return m.ShardFor(key)
}

// shardsForRange returns the inclusive shard index interval a key range
// intersects within this partition.
func (p *partition) shardsForRange(lo, hi *schema.Datum) (int, int) {
	m := shardmap.Map{Boundaries: p.boundaries, Shards: make([]shardmap.ShardState, len(p.shards))}
	return m.ShardsForRange(lo, hi)
}

// shard is one independently-signed VB-tree over a key range.
type shard struct {
	// id is the shard's stable identity (see shardmap.ShardState.ID):
	// partition indices shift across splits/merges, IDs never do.
	id uint64
	// walPath remembers where this shard's log lives — transition-created
	// shards are named by ID, not index, because their index can change.
	walPath string

	mu      sync.RWMutex
	tree    *vbtree.Tree
	pool    *storage.BufferPool
	heap    *storage.HeapFile
	log     *wal.Log
	version uint64 // bumped on every committed update to this shard

	// ingestLoad / queryLoad count tuples applied and shard queries
	// served since the hot-shard detector's last tick; ewma is the
	// detector's smoothed per-tick rate (guarded by table.detMu).
	ingestLoad atomic.Uint64
	queryLoad  atomic.Uint64
	ewma       float64

	// sketch samples the keys this shard's load actually touches, so a
	// detector-driven split can place its boundary at the load median
	// instead of the key-count median. It has its own leaf mutex.
	sketch loadSketch

	// tail, when non-nil, is the delta tail of an in-flight incremental
	// transition this shard is a parent of: every update committed after
	// the transition pinned its snapshot is recorded (under mu, after
	// the tree apply succeeds) so the barrier can catch the children up
	// without rescanning the shard. Installed and removed under mu.
	tail *reshardTail

	// rootDigest caches the unsigned root digest after each commit, so
	// map re-signs don't pay an RSA recovery per shard.
	rootDigest digest.Value

	// store republishes the shard as immutable snapshots, one per
	// committed version: queries and replication reads pin a version and
	// proceed without the shard lock.
	store *storage.PageStore

	// changes is the retained changelog: one entry per committed update,
	// oldest first, with contiguous versions ending at version. pending
	// accumulates journaled pages that have not yet been attributed to a
	// version bump.
	changes []changeEntry
	pending []storage.PageID
}

// snapState pins the shard's current published snapshot and decodes its
// vbtree.TableState metadata. Callers must Release the snapshot.
func (sh *shard) snapState() (*storage.Snapshot, *vbtree.TableState, error) {
	snap := sh.store.Acquire()
	st, ok := snap.Meta().(*vbtree.TableState)
	if !ok {
		snap.Release()
		return nil, nil, errors.New("central: shard has no published version")
	}
	return snap, st, nil
}

// changeEntry records what one committed update touched: the pages it
// dirtied (tree nodes, heap pages, overflow pages) and the WAL LSN it was
// logged under (0 when logging is disabled).
type changeEntry struct {
	version uint64
	lsn     uint64
	pages   []storage.PageID
}

// NewServer creates a central server with a fresh signing key.
func NewServer(opts Options) (*Server, error) {
	if opts.KeyBits == 0 {
		opts.KeyBits = sig.DefaultBits
	}
	key, err := sig.Generate(opts.Scheme, opts.KeyBits)
	if err != nil {
		return nil, err
	}
	return NewServerWithKey(opts, key)
}

// NewServerWithKey creates a central server around an existing key (used
// by tests and tools that pre-generate keys).
func NewServerWithKey(opts Options, key *sig.PrivateKey) (*Server, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	zero := digest.Params{}
	if opts.AccParams == zero {
		opts.AccParams = digest.DefaultParams()
	}
	if opts.Shards < 0 {
		return nil, fmt.Errorf("central: negative shard count %d", opts.Shards)
	}
	if _, err := shardmap.ParseStrategy(string(opts.ShardSplit)); err != nil {
		return nil, err
	}
	acc, err := digest.New(opts.AccParams)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:   opts,
		key:    key,
		acc:    acc,
		tables: make(map[string]*table),
	}
	// The server's root context: construction has no caller context, and
	// Close cancels it to stop handlers on every connection.
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background()) //vetauth:ignore ctxflow server root context, cancelled by Close
	// Route the key's sign-op count into the server's stats snapshot.
	key.SetCounters(&s.stats.signOps)
	if opts.AutoReshard != nil && opts.AutoReshard.Interval > 0 {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.autoReshardLoop()
		}()
	}
	return s, nil
}

// PublicKey returns the server's public key.
func (s *Server) PublicKey() *sig.PublicKey { return s.key.Public() }

// Accumulator returns the digest accumulator.
func (s *Server) Accumulator() *digest.Accumulator { return s.acc }

// SetKeyValidity stamps the signing key's version and validity window
// (paper §3.4 delayed-broadcast key rotation).
func (s *Server) SetKeyValidity(version uint32, notBefore, notAfter int64) {
	s.key.SetValidity(version, notBefore, notAfter)
}

// shardCount resolves Options.Shards.
func (s *Server) shardCount() int {
	if s.opts.Shards <= 1 {
		return 1
	}
	return s.opts.Shards
}

// AddTable builds VB-tree shards over tuples (sorted by key) and
// registers the table. With Options.Shards > 1 the tuples are
// range-partitioned first and each shard gets an independent tree with
// its own signed root; the signed shard map binding them is published
// before the table becomes visible.
func (s *Server) AddTable(sch *schema.Schema, tuples []schema.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[sch.Table]; exists {
		return fmt.Errorf("central: table %q already exists", sch.Table)
	}
	boundaries, err := shardmap.Split(sch, tuples, s.shardCount(), s.opts.ShardSplit)
	if err != nil {
		return err
	}
	groups := shardmap.Partition(sch, tuples, boundaries)
	epoch, err := newEpoch()
	if err != nil {
		return err
	}
	t := &table{sch: sch, epoch: epoch}
	part := &partition{boundaries: boundaries, mapEpoch: 1}
	for i, group := range groups {
		sh, err := s.buildShard(sch, group, epoch, 0, walName(sch.Table, i))
		if err != nil {
			return err
		}
		sh.id = uint64(i + 1)
		part.shards = append(part.shards, sh)
	}
	t.nextShardID = uint64(len(part.shards) + 1)
	t.part.Store(part)
	if s.opts.WALDir != "" {
		ml, err := wal.Create(filepath.Join(s.opts.WALDir, sch.Table+".meta.wal"))
		if err != nil {
			return err
		}
		t.metaLog = ml
	}
	if err := s.signMapLocked(t, part); err != nil {
		return err
	}
	s.tables[sch.Table] = t
	return nil
}

// buildShard constructs one shard's tree, publishes its baseline
// snapshot (at startVersion) and opens its WAL at walPath. Transition-
// created shards pass a startVersion above every version the table has
// ever published, so an edge holding a retired shard's store at the same
// index can never be served a delta that silently splices two histories
// (its fromVersion falls below the new shard's baseline and answers
// SnapshotNeeded).
func (s *Server) buildShard(sch *schema.Schema, tuples []schema.Tuple, epoch, startVersion uint64, walPath string) (*shard, error) {
	mem, err := storage.NewMemPager(s.opts.PageSize)
	if err != nil {
		return nil, err
	}
	pool, err := storage.NewBufferPool(mem, 1<<20) // generous: pages stay resident
	if err != nil {
		return nil, err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return nil, err
	}
	cfg := vbtree.Config{
		Pool:   pool,
		Heap:   heap,
		Schema: sch,
		Acc:    s.acc,
		Signer: s.key,
		Pub:    s.key.Public(),
		// Each shard gets its own lock manager: shards have independent
		// buffer pools whose page IDs overlap, so sharing one manager
		// under the table-wide lock space would make parallel shard
		// commits falsely contend (and falsely deadlock) on unrelated
		// pages that happen to share an ID.
		Locks:            lock.NewManager(0),
		BuildParallelism: s.opts.BuildParallelism,
	}
	tree, err := vbtree.Build(cfg, tuples, 1.0)
	if err != nil {
		return nil, err
	}
	store, err := storage.NewPageStore(s.opts.PageSize)
	if err != nil {
		return nil, err
	}
	sh := &shard{tree: tree, pool: pool, heap: heap, store: store, version: startVersion}
	if sh.rootDigest, err = tree.RootDigest(); err != nil {
		return nil, err
	}
	// Publish the built shard as its baseline snapshot: every page of the
	// pager becomes the read-path baseline.
	pager := pool.Pager()
	baseline := make([]storage.PageID, 0, pager.NumPages()-1)
	for id := 1; id < pager.NumPages(); id++ {
		baseline = append(baseline, storage.PageID(id))
	}
	if err := s.publishShard(sh, startVersion, epoch, baseline); err != nil {
		return nil, err
	}
	if s.retention() > 0 {
		// The initial build is the snapshot baseline; journal only the
		// pages later updates dirty.
		pool.EnableJournal()
	}
	if s.opts.WALDir != "" {
		log, err := wal.Create(filepath.Join(s.opts.WALDir, walPath))
		if err != nil {
			return nil, err
		}
		sh.log = log
		sh.walPath = walPath
	}
	return sh, nil
}

// walName keeps shard 0 on the pre-sharding file name so single-shard
// deployments read the same logs across upgrades. Build-time shards are
// named by index; transition-created shards use idWalName, because their
// index can shift under later transitions while their ID cannot.
func walName(table string, shard int) string {
	if shard == 0 {
		return table + ".wal"
	}
	return fmt.Sprintf("%s.shard%d.wal", table, shard)
}

// idWalName names a transition-created shard's log by its stable ID.
func idWalName(table string, id uint64) string {
	return fmt.Sprintf("%s.sid%d.wal", table, id)
}

// newEpoch draws a random nonzero table-incarnation id. Replica versions
// are only meaningful within one epoch: a central server that rebuilds a
// table (e.g. after a restart) gets a fresh epoch, so stale edges are
// steered to a full snapshot instead of a delta from a divergent history.
func newEpoch() (uint64, error) {
	var b [8]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			return 0, fmt.Errorf("central: generating table epoch: %w", err)
		}
		if e := binary.BigEndian.Uint64(b[:]); e != 0 {
			return e, nil
		}
	}
}

// retention resolves Options.DeltaRetention: 0 = default, negative =
// disabled.
func (s *Server) retention() int {
	switch {
	case s.opts.DeltaRetention == 0:
		return DefaultDeltaRetention
	case s.opts.DeltaRetention < 0:
		return 0
	default:
		return s.opts.DeltaRetention
	}
}

// commitChange attributes the pages journaled since the last call to the
// just-committed version, trims the changelog to the retention window,
// and returns the committed page set. Callers hold sh.mu.
func (sh *shard) commitChange(version, lsn uint64, retention int) []storage.PageID {
	sh.pending = append(sh.pending, sh.pool.DrainJournal()...)
	entry := changeEntry{version: version, lsn: lsn, pages: sh.pending}
	sh.pending = nil
	sh.changes = append(sh.changes, entry)
	if over := len(sh.changes) - retention; over > 0 {
		sh.changes = append([]changeEntry(nil), sh.changes[over:]...)
	}
	return entry.pages
}

// publishShard copies the given (just-dirtied) pages out of the live
// buffer pool into a copy-on-write overlay and publishes the result as
// the shard's next immutable snapshot, carrying the tree anchor for the
// committed version. Callers hold sh.mu (or have exclusive access during
// AddTable), which is what makes the copied pages a consistent cut.
func (s *Server) publishShard(sh *shard, version, epoch uint64, pages []storage.PageID) error {
	ov := sh.store.Begin()
	defer ov.Abort() // no-op once published
	pager := sh.pool.Pager()
	for ov.NumPages() < pager.NumPages() {
		ov.Allocate()
	}
	for _, id := range pages {
		buf, err := sh.pool.View(id)
		if err != nil {
			return err
		}
		if err := ov.WritePage(id, buf); err != nil {
			return err
		}
	}
	ov.Publish(&vbtree.TableState{
		Root:       sh.tree.Root(),
		Height:     sh.tree.Height(),
		RootSig:    sh.tree.RootSig(),
		HeapPages:  sh.heap.Pages(),
		KeyVersion: s.key.Public().Version,
		Scheme:     s.key.Public().Scheme,
		Version:    version,
		Epoch:      epoch,
	})
	return nil
}

// commitShard finishes one shard's committed update: bumps the shard
// version, refreshes the cached root digest, attributes journaled pages
// to the changelog and publishes the snapshot. Callers hold sh.mu. A
// publish failure does not undo the commit — the update is WAL-logged
// and the version bumped — it only means the published snapshot lags, so
// the pages are re-staged and the next successful publish carries them.
func (s *Server) commitShard(t *table, sh *shard, lsn uint64) error {
	sh.version++
	s.stats.commits.Add(1)
	rd, err := sh.tree.RootDigest()
	if err != nil {
		return fmt.Errorf("central: recovering root digest: %w", err)
	}
	sh.rootDigest = rd
	pages := sh.commitChange(sh.version, lsn, s.retention())
	if err := s.publishShard(sh, sh.version, t.epoch, pages); err != nil {
		sh.pending = append(sh.pending, pages...)
		return fmt.Errorf("central: update committed but snapshot publish failed (will catch up on the next commit): %w", err)
	}
	return nil
}

// stashJournal collects journaled pages that did not result in a version
// bump (e.g. a delete matching no rows) so they are attributed to the
// next committed update instead of being lost. Callers hold sh.mu.
func (sh *shard) stashJournal() {
	sh.pending = append(sh.pending, sh.pool.DrainJournal()...)
}

// mapOf builds the unsigned map for one partition generation at the
// given map version. Callers either have exclusive access (AddTable,
// transitions under partMu) or take brief shard read locks via
// lockShards to make each (rootDigest, version) pair consistent.
func (s *Server) mapOf(t *table, p *partition, mapVersion uint64, lockShards bool) *shardmap.Map {
	m := &shardmap.Map{
		Table:       t.sch.Table,
		Epoch:       t.epoch,
		MapVersion:  mapVersion,
		KeyVersion:  s.key.Public().Version,
		SignedAt:    time.Now().Unix(),
		MapEpoch:    p.mapEpoch,
		ParentEpoch: p.parentEpoch,
		Boundaries:  p.boundaries,
	}
	for _, sh := range p.shards {
		if lockShards {
			sh.mu.RLock()
		}
		m.Shards = append(m.Shards, shardmap.ShardState{
			RootDigest: append([]byte(nil), sh.rootDigest...),
			Version:    sh.version,
			ID:         sh.id,
		})
		if lockShards {
			sh.mu.RUnlock()
		}
	}
	return m
}

// signMapLocked builds and signs the table's shard map from the shards'
// current states. The caller has exclusive access (AddTable).
func (s *Server) signMapLocked(t *table, p *partition) error {
	signed, err := shardmap.Sign(s.mapOf(t, p, t.mapVersion, false), s.key)
	if err != nil {
		return err
	}
	t.smap.Store(signed)
	return nil
}

// republishMap re-signs the shard map after one or more shard commits.
// It must not be called while holding any shard write lock (commit paths
// release their shards first); the brief read locks make each
// (rootDigest, version) pair consistent. Callers on the write path hold
// partMu.RLock, so the partition cannot transition mid-republish.
func (s *Server) republishMap(t *table) error {
	t.commitMu.Lock()
	defer t.commitMu.Unlock()
	t.mapVersion++
	signed, err := shardmap.Sign(s.mapOf(t, t.part.Load(), t.mapVersion, true), s.key)
	if err != nil {
		return err
	}
	t.smap.Store(signed)
	return nil
}

// SignedShardMap returns the table's current signed shard map.
func (s *Server) SignedShardMap(tableName string) (*shardmap.Signed, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	sm := t.smap.Load()
	if sm == nil {
		return nil, errors.New("central: table has no shard map")
	}
	return sm, nil
}

// MaterializeJoin computes left ⋈ right on lcol = rcol and registers the
// result as a view table with its own VB-tree shards (the paper's join
// story).
func (s *Server) MaterializeJoin(viewName, left, right, lcol, rcol string) error {
	lt, err := s.table(left)
	if err != nil {
		return err
	}
	rt, err := s.table(right)
	if err != nil {
		return err
	}
	ltuples, err := scanTuples(lt)
	if err != nil {
		return err
	}
	rtuples, err := scanTuples(rt)
	if err != nil {
		return err
	}
	viewSch, viewTuples, err := query.MaterializeEquiJoin(viewName, lt.sch, rt.sch, ltuples, rtuples, lcol, rcol)
	if err != nil {
		return err
	}
	return s.AddTable(viewSch, viewTuples)
}

// scanTuples concatenates the shards' key-ordered scans; shards cover
// disjoint ascending ranges, so the concatenation is key-sorted.
func scanTuples(t *table) ([]schema.Tuple, error) {
	var out []schema.Tuple
	for _, sh := range t.part.Load().shards {
		tuples, err := scanShard(sh)
		if err != nil {
			return nil, err
		}
		out = append(out, tuples...)
	}
	return out, nil
}

// scanShard reads one shard's full key-ordered tuple set.
func scanShard(sh *shard) ([]schema.Tuple, error) {
	sh.mu.RLock()
	stored, err := sh.tree.ScanAll()
	sh.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	out := make([]schema.Tuple, 0, len(stored))
	for _, st := range stored {
		out = append(out, st.Tuple)
	}
	return out, nil
}

func (s *Server) table(name string) (*table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, wire.UnknownTable("central", name)
	}
	return t, nil
}

// shard resolves one shard of a table against its current partition.
func (s *Server) shard(name string, idx uint32) (*table, *shard, error) {
	t, err := s.table(name)
	if err != nil {
		return nil, nil, err
	}
	part := t.part.Load()
	if int(idx) >= len(part.shards) {
		return nil, nil, &wire.WireError{Code: wire.CodeBadRequest, Table: name,
			Msg: fmt.Sprintf("central: table %q has %d shards, requested %d", name, len(part.shards), idx)}
	}
	return t, part.shards[idx], nil
}

// soleShard returns the table's only shard, or a typed error telling the
// caller to switch to the shard-scoped protocol.
func (s *Server) soleShard(name string) (*table, *shard, error) {
	t, err := s.table(name)
	if err != nil {
		return nil, nil, err
	}
	part := t.part.Load()
	if len(part.shards) != 1 {
		return nil, nil, wire.NotSharded("central", name,
			fmt.Sprintf("table %q is range-partitioned into %d shards; use the shard-scoped requests", name, len(part.shards)))
	}
	return t, part.shards[0], nil
}

// Tables lists registered tables in sorted order.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NumShards reports how many shards a table currently has.
func (s *Server) NumShards(name string) (int, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	return len(t.part.Load().shards), nil
}

// Version returns a table's update version — the shard-map version,
// which bumps once per committed update to any shard. (For single-shard
// tables this matches the shard's own version.)
func (s *Server) Version(name string) (uint64, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	sm := t.smap.Load()
	if sm == nil {
		return 0, errors.New("central: table has no shard map")
	}
	return sm.Map.MapVersion, nil
}

// TableEpoch returns a table's incarnation id.
func (s *Server) TableEpoch(name string) (uint64, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	return t.epoch, nil
}

// Insert logs and applies a tuple insert on the key's shard, then
// republishes the signed shard map. The partition read lock spans
// routing through republish, so an online split/merge cannot retire the
// routed shard mid-apply.
func (s *Server) Insert(tableName string, tup schema.Tuple) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	if len(tup.Values) <= t.sch.Key {
		return fmt.Errorf("central: tuple has no key column for table %q", tableName)
	}
	t.partMu.RLock()
	defer t.partMu.RUnlock()
	part := t.part.Load()
	sh := part.shards[part.shardFor(tup.Key(t.sch))]
	if err := s.insertShard(t, sh, tup); err != nil {
		return err
	}
	sh.ingestLoad.Add(1)
	s.stats.insertsApplied.Add(1)
	return s.republishMap(t)
}

func (s *Server) insertShard(t *table, sh *shard, tup schema.Tuple) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var lsn uint64
	var err error
	if sh.log != nil {
		if lsn, err = sh.log.Append(wal.RecInsert, wal.EncodeInsertPayload(tup)); err != nil {
			return err
		}
		if err := sh.log.Sync(); err != nil {
			return err
		}
	}
	if err := sh.tree.Insert(tup); err != nil {
		sh.stashJournal()
		return err
	}
	if sh.tail != nil {
		sh.tail.recordInserts([]schema.Tuple{tup})
	}
	sh.sketch.observe(tup.Key(t.sch))
	return s.commitShard(t, sh, lsn)
}

// DeleteRange logs and applies a key-range delete across every shard the
// range intersects; returns the total count.
func (s *Server) DeleteRange(tableName string, lo, hi *schema.Datum) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	t.partMu.RLock()
	defer t.partMu.RUnlock()
	part := t.part.Load()
	first, last := part.shardsForRange(lo, hi)
	total := 0
	var firstErr error
	for i := first; i <= last; i++ {
		n, err := s.deleteShardRange(t, part.shards[i], lo, hi)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if total > 0 {
		s.stats.deletesApplied.Add(uint64(total))
		if err := s.republishMap(t); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

func (s *Server) deleteShardRange(t *table, sh *shard, lo, hi *schema.Datum) (int, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var lsn uint64
	var err error
	if sh.log != nil {
		if lsn, err = sh.log.Append(wal.RecDelete, wal.EncodeDeletePayload(lo, hi)); err != nil {
			return 0, err
		}
		if err := sh.log.Sync(); err != nil {
			return 0, err
		}
	}
	n, err := sh.tree.DeleteRange(lo, hi)
	if err != nil {
		sh.stashJournal()
		return 0, err
	}
	if n > 0 && sh.tail != nil {
		sh.tail.recordDelete(lo, hi)
	}
	if n > 0 {
		if err := s.commitShard(t, sh, lsn); err != nil {
			// The delete itself committed (WAL-logged, version bumped);
			// report the real count so callers don't re-apply it.
			return n, err
		}
	} else {
		sh.stashJournal()
	}
	return n, nil
}

// snapshotOf captures one shard's replica image.
func (s *Server) snapshotOf(t *table, sh *shard) (*wire.Snapshot, error) {
	pinned, st, err := sh.snapState()
	if err != nil {
		return nil, err
	}
	defer pinned.Release()
	snap := &wire.Snapshot{
		Schema:     t.sch,
		AccParams:  wire.AccParamsFrom(s.acc),
		Root:       st.Root,
		Height:     uint32(st.Height),
		RootSig:    st.RootSig,
		PageSize:   uint32(pinned.PageSize()),
		HeapPages:  st.HeapPages,
		KeyVersion: st.KeyVersion,
		Scheme:     uint8(st.Scheme),
		Version:    st.Version,
		Epoch:      st.Epoch,
	}
	for id := 1; id < pinned.NumPages(); id++ {
		buf, err := pinned.View(storage.PageID(id))
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		snap.PageIDs = append(snap.PageIDs, storage.PageID(id))
		snap.PageData = append(snap.PageData, cp)
	}
	s.stats.snapshotsServed.Add(1)
	return snap, nil
}

// Snapshot captures a single-shard table's replica for a legacy
// (unsharded) edge server. Partitioned tables answer with a typed
// unsupported error steering the edge to ShardSnapshot.
func (s *Server) Snapshot(tableName string) (*wire.Snapshot, error) {
	t, sh, err := s.soleShard(tableName)
	if err != nil {
		return nil, err
	}
	return s.snapshotOf(t, sh)
}

// ShardSnapshot captures one shard's replica image.
func (s *Server) ShardSnapshot(tableName string, idx uint32) (*wire.Snapshot, error) {
	t, sh, err := s.shard(tableName, idx)
	if err != nil {
		return nil, err
	}
	return s.snapshotOf(t, sh)
}

// deltaOf builds the incremental update that takes a shard replica at
// fromVersion to the shard's current version. ref is the value bound
// into the signed Table field (the bare table name for single-shard
// tables, the shard ref for partitioned ones).
func (s *Server) deltaOf(sh *shard, ref string, fromVersion, epoch uint64) (*wire.Delta, error) {
	// Pin the version the delta will take the replica to; page content is
	// read from this immutable snapshot, so updates committing while the
	// delta is assembled cannot leak into it.
	pinned, st, err := sh.snapState()
	if err != nil {
		return nil, err
	}
	defer pinned.Release()
	d := &wire.Delta{
		Table:       ref,
		FromVersion: fromVersion,
		ToVersion:   st.Version,
		Epoch:       st.Epoch,
	}
	if epoch != st.Epoch || fromVersion > st.Version {
		// The replica descends from a different table incarnation (or
		// claims a future version): its history has diverged from ours,
		// so a delta would silently corrupt it.
		d.SnapshotNeeded = true
		return s.signDelta(d)
	}
	// Only the changelog needs the shard lock, and only briefly.
	sh.mu.RLock()
	// Changelog entries carry contiguous versions ending at sh.version, so
	// coverage is a simple window check.
	oldestCovered := sh.version - uint64(len(sh.changes))
	covered := fromVersion >= oldestCovered
	seen := make(map[storage.PageID]struct{})
	if covered {
		for _, e := range sh.changes {
			if e.version <= fromVersion || e.version > st.Version {
				continue
			}
			for _, id := range e.pages {
				seen[id] = struct{}{}
			}
		}
	}
	sh.mu.RUnlock()
	if !covered {
		d.SnapshotNeeded = true
		return s.signDelta(d)
	}
	ids := make([]storage.PageID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		buf, err := pinned.View(id)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		d.PageIDs = append(d.PageIDs, id)
		d.PageData = append(d.PageData, cp)
	}
	d.Root = st.Root
	d.Height = uint32(st.Height)
	d.RootSig = st.RootSig
	d.HeapPages = st.HeapPages
	d.NumPages = uint32(pinned.NumPages())
	d.KeyVersion = st.KeyVersion
	d.Scheme = uint8(st.Scheme)
	s.stats.deltasServed.Add(1)
	return s.signDelta(d)
}

// Delta serves a legacy (unsharded) edge's incremental refresh for a
// single-shard table.
func (s *Server) Delta(tableName string, fromVersion, epoch uint64) (*wire.Delta, error) {
	_, sh, err := s.soleShard(tableName)
	if err != nil {
		return nil, err
	}
	return s.deltaOf(sh, tableName, fromVersion, epoch)
}

// ShardDelta serves one shard's incremental refresh. The shard index is
// bound into the signed payload via the shard ref, so a delta for one
// shard cannot be replayed against another.
func (s *Server) ShardDelta(tableName string, idx uint32, fromVersion, epoch uint64) (*wire.Delta, error) {
	_, sh, err := s.shard(tableName, idx)
	if err != nil {
		return nil, err
	}
	return s.deltaOf(sh, wire.ShardRef(tableName, idx), fromVersion, epoch)
}

// signDelta stamps the central server's signature on a delta so edges can
// reject forged or corrupted updates.
func (s *Server) signDelta(d *wire.Delta) (*wire.Delta, error) {
	sg, err := s.key.Sign(d.SigPayload())
	if err != nil {
		return nil, err
	}
	d.Sig = sg
	return d, nil
}

// LoggedOps replays a table's write-ahead logs (post-checkpoint) as typed
// operations — the logical history backing the page-level changelogs.
// Shard logs are concatenated in shard order. Requires Options.WALDir.
func (s *Server) LoggedOps(tableName string) ([]wal.Op, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	var ops []wal.Op
	for _, sh := range t.part.Load().shards {
		if sh.log == nil {
			return nil, errors.New("central: write-ahead logging not enabled")
		}
		if err := sh.log.Sync(); err != nil {
			return nil, err
		}
		path := filepath.Join(s.opts.WALDir, sh.walPath)
		if err := wal.ReplayOps(path, func(op wal.Op) error {
			ops = append(ops, op)
			return nil
		}); err != nil {
			return nil, err
		}
	}
	return ops, nil
}

// MetaCheckpoint returns the newest partition checkpoint in a table's
// meta log (nil if none has been written). A checkpoint truncates
// replay: ReshardHistory resumes from the state it captures instead of
// the table's first transition. Requires Options.WALDir.
func (s *Server) MetaCheckpoint(tableName string) (*wal.PartitionCheckpoint, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.partMu.RLock()
	defer t.partMu.RUnlock()
	if t.metaLog == nil {
		return nil, errors.New("central: write-ahead logging not enabled")
	}
	if err := t.metaLog.Sync(); err != nil {
		return nil, err
	}
	return wal.LastCheckpoint(filepath.Join(s.opts.WALDir, tableName+".meta.wal"))
}

// ReshardHistory replays a table's meta log: the typed partition
// transitions (splits and merges) committed this incarnation, oldest
// first — starting after the last checkpoint when one has been written
// (see Options.ReshardCheckpointEvery). Requires Options.WALDir.
func (s *Server) ReshardHistory(tableName string) ([]*wal.ReshardOp, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.partMu.RLock()
	defer t.partMu.RUnlock()
	if t.metaLog == nil {
		return nil, errors.New("central: write-ahead logging not enabled")
	}
	if err := t.metaLog.Sync(); err != nil {
		return nil, err
	}
	var out []*wal.ReshardOp
	if err := wal.ReplayOps(filepath.Join(s.opts.WALDir, tableName+".meta.wal"), func(op wal.Op) error {
		if op.Kind == wal.RecReshard {
			out = append(out, op.Reshard)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SchemaResponse builds the client-facing verification parameters.
func (s *Server) SchemaResponse(tableName string) (*wire.SchemaResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	return &wire.SchemaResponse{
		Schema:     t.sch,
		AccParams:  wire.AccParamsFrom(s.acc),
		KeyVersion: s.key.Public().Version,
		Scheme:     uint8(s.key.Public().Scheme),
	}, nil
}

// RunQuery answers a query directly at the central server (trusted path,
// used by tools and tests; production queries go through edges). Like the
// edge path it runs lock-free over the current published snapshots. For
// partitioned tables the per-shard results are concatenated and the VO
// of the last shard queried is returned — central answers are trusted,
// so the caller is not expected to verify them; clients that need
// verifiable cross-shard answers use the edge scatter-gather path.
func (s *Server) RunQuery(ctx context.Context, tableName string, q vbtree.Query) (*wire.QueryResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	s.stats.queriesServed.Add(1)
	part := t.part.Load()
	first, last := part.shardsForRange(q.Lo, q.Hi)
	var merged *wire.QueryResponse
	for i := first; i <= last; i++ {
		resp, err := s.runShardQuery(ctx, t, part.shards[i], q)
		if err != nil {
			return nil, err
		}
		if merged == nil {
			merged = resp
			continue
		}
		merged.Result.Keys = append(merged.Result.Keys, resp.Result.Keys...)
		merged.Result.Tuples = append(merged.Result.Tuples, resp.Result.Tuples...)
		merged.VO = resp.VO
	}
	return merged, nil
}

// RunShardQuery answers a query against one shard, with the VO anchored
// at the shard's root (the form clients verify against the shard map).
func (s *Server) RunShardQuery(ctx context.Context, tableName string, idx uint32, q vbtree.Query) (*wire.QueryResponse, error) {
	t, sh, err := s.shard(tableName, idx)
	if err != nil {
		return nil, err
	}
	q.AnchorRoot = true
	s.stats.queriesServed.Add(1)
	return s.runShardQuery(ctx, t, sh, q)
}

func (s *Server) runShardQuery(ctx context.Context, t *table, sh *shard, q vbtree.Query) (*wire.QueryResponse, error) {
	// Sample a fraction of query lower bounds into the load sketch so
	// read-heavy hotspots steer split boundaries too, without a mutex
	// acquisition on every query.
	if n := sh.queryLoad.Add(1); n%8 == 0 && q.Lo != nil {
		sh.sketch.observe(*q.Lo)
	}
	pinned, st, err := sh.snapState()
	if err != nil {
		return nil, err
	}
	defer pinned.Release()
	v, err := st.ViewOver(pinned, t.sch, s.acc, s.key.Public())
	if err != nil {
		return nil, err
	}
	rs, w, err := v.RunQuery(ctx, q)
	if err != nil {
		return nil, err
	}
	return &wire.QueryResponse{Result: rs, VO: w}, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		if !s.conns.Add(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.conns.Remove(conn)
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving: listeners and live connections are closed,
// in-flight handlers are drained, and every shard's write-ahead log is
// released. It reports the first WAL that failed to close cleanly —
// losing that error would hide an fsync failure at the one moment the
// operator is still there to see it. Close is idempotent.
func (s *Server) Close() error {
	s.closeOnce.Do(func() { s.closeErr = s.doClose() })
	return s.closeErr
}

func (s *Server) doClose() error {
	s.baseCancel()
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.conns.CloseAll()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for name, t := range s.tables {
		for i, sh := range t.part.Load().shards {
			if sh.log == nil {
				continue
			}
			if cerr := sh.log.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("central: closing WAL for %q shard %d: %w", name, i, cerr)
			}
		}
		if t.metaLog != nil {
			if cerr := t.metaLog.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("central: closing meta WAL for %q: %w", name, cerr)
			}
		}
	}
	return err
}

// handleConn negotiates the protocol with the peer and dispatches its
// requests — concurrently, on multiplexed v2 sessions — until it
// disconnects or idles out.
func (s *Server) handleConn(conn net.Conn) {
	rpc.ServeConn(conn, s.dispatch, rpc.ServeOptions{
		IdleTimeout:   s.opts.IdleTimeout,
		MaxConcurrent: s.opts.MaxConcurrent,
		BaseContext:   s.baseCtx,
	})
}

// dispatch executes one request and returns the response frame. It must
// be safe for concurrent use: v2 connections run requests in parallel.
// ctx is the connection's context, cancelled when the peer disconnects.
func (s *Server) dispatch(ctx context.Context, mt wire.MsgType, body []byte) (wire.MsgType, []byte, error) {
	switch mt {
	case wire.MsgPubKeyReq:
		blob, err := s.key.Public().MarshalBinary()
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgPubKeyResp, blob, nil

	case wire.MsgListTablesReq:
		return wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()), nil

	case wire.MsgSnapshotReq:
		snap, err := s.Snapshot(string(body))
		if err != nil {
			return 0, nil, err
		}
		enc := snap.Encode()
		s.stats.snapshotBytes.Add(uint64(len(enc)))
		return wire.MsgSnapshotResp, enc, nil

	case wire.MsgShardSnapshotReq:
		req, err := wire.DecodeShardSnapshotRequest(body)
		if err != nil {
			return 0, nil, err
		}
		snap, err := s.ShardSnapshot(req.Table, req.Shard)
		if err != nil {
			return 0, nil, err
		}
		enc := snap.Encode()
		s.stats.snapshotBytes.Add(uint64(len(enc)))
		return wire.MsgSnapshotResp, enc, nil

	case wire.MsgDeltaReq:
		req, err := wire.DecodeDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		d, err := s.Delta(req.Table, req.FromVersion, req.Epoch)
		if err != nil {
			return 0, nil, err
		}
		enc := d.Encode()
		s.stats.deltaBytes.Add(uint64(len(enc)))
		return wire.MsgDeltaResp, enc, nil

	case wire.MsgShardDeltaReq:
		req, err := wire.DecodeShardDeltaRequest(body)
		if err != nil {
			return 0, nil, err
		}
		d, err := s.ShardDelta(req.Table, req.Shard, req.FromVersion, req.Epoch)
		if err != nil {
			return 0, nil, err
		}
		enc := d.Encode()
		s.stats.deltaBytes.Add(uint64(len(enc)))
		return wire.MsgDeltaResp, enc, nil

	case wire.MsgShardMapReq:
		sm, err := s.SignedShardMap(string(body))
		if err != nil {
			return 0, nil, err
		}
		s.stats.mapsServed.Add(1)
		enc := sm.Encode()
		s.stats.mapBytes.Add(uint64(len(enc)))
		return wire.MsgShardMapResp, enc, nil

	case wire.MsgSchemaReq:
		resp, err := s.SchemaResponse(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgSchemaResp, resp.Encode(), nil

	case wire.MsgVersionReq:
		v, err := s.Version(string(body))
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgVersionResp, wire.EncodeU64(v), nil

	case wire.MsgInsertReq:
		req, err := wire.DecodeInsertRequest(body)
		if err != nil {
			return 0, nil, err
		}
		// Concurrent single inserts coalesce into group commits behind
		// this call; lone inserts commit by themselves.
		if err := s.enqueueInsert(ctx, req.Table, req.Tuple); err != nil {
			if errors.Is(err, vbtree.ErrDuplicateKey) {
				return 0, nil, wire.DuplicateKey(req.Table, err.Error())
			}
			return 0, nil, err
		}
		return wire.MsgInsertResp, nil, nil

	case wire.MsgBatchReq:
		req, err := wire.DecodeBatchRequest(body)
		if err != nil {
			return 0, nil, err
		}
		opErrs, err := s.ApplyBatch(req.Table, req.Tuples)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgBatchResp, batchResponse(len(req.Tuples), opErrs).Encode(), nil

	case wire.MsgReshardReq:
		req, err := wire.DecodeReshardRequest(body)
		if err != nil {
			return 0, nil, err
		}
		resp, err := s.Reshard(ctx, req)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgReshardResp, resp.Encode(), nil

	case wire.MsgDeleteReq:
		req, err := wire.DecodeDeleteRequest(body)
		if err != nil {
			return 0, nil, err
		}
		var lo, hi *schema.Datum
		if req.HasLo {
			lo = &req.Lo
		}
		if req.HasHi {
			hi = &req.Hi
		}
		// Deletes flow through the same ordered front door as coalesced
		// inserts, so a delete cannot commit ahead of inserts that
		// arrived before it (see batch.go).
		n, err := s.enqueueDelete(ctx, req.Table, lo, hi)
		if err != nil {
			return 0, nil, err
		}
		return wire.MsgDeleteResp, wire.EncodeU64(uint64(n)), nil

	default:
		return 0, nil, wire.Unsupported("central", mt)
	}
}
