// Package central implements the trusted central DBMS of the paper's
// Figure 2. It owns the private signing key, builds and maintains the
// VB-trees over the base tables (and over materialized join views),
// executes insert/delete transactions under the §3.4 locking protocol with
// write-ahead logging, and serves snapshots ("DB + VB-trees") to edge
// servers plus its public key to clients over an authenticated channel —
// the stand-in for the paper's PKI.
package central

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"sync"

	"edgeauth/internal/digest"
	"edgeauth/internal/lock"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/storage"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Options configures a Server.
type Options struct {
	// KeyBits sizes the RSA signing key; 0 selects sig.DefaultBits.
	KeyBits int
	// PageSize for table storage; 0 selects storage.DefaultPageSize.
	PageSize int
	// AccParams configures the digest accumulator; the zero value selects
	// digest.DefaultParams.
	AccParams digest.Params
	// WALDir, when non-empty, enables write-ahead logging of updates (one
	// log per table) in that directory.
	WALDir string
	// BuildParallelism bounds signing workers during table builds.
	BuildParallelism int
}

// Server is the central DBMS.
type Server struct {
	mu     sync.RWMutex
	opts   Options
	key    *sig.PrivateKey
	acc    *digest.Accumulator
	locks  *lock.Manager
	tables map[string]*table

	lnMu      sync.Mutex
	listeners []net.Listener
	wg        sync.WaitGroup
	closed    bool
}

type table struct {
	mu      sync.RWMutex
	sch     *schema.Schema
	tree    *vbtree.Tree
	pool    *storage.BufferPool
	heap    *storage.HeapFile
	log     *wal.Log
	version uint64 // bumped on every committed update
}

// NewServer creates a central server with a fresh signing key.
func NewServer(opts Options) (*Server, error) {
	if opts.KeyBits == 0 {
		opts.KeyBits = sig.DefaultBits
	}
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	zero := digest.Params{}
	if opts.AccParams == zero {
		opts.AccParams = digest.DefaultParams()
	}
	key, err := sig.GenerateKey(opts.KeyBits)
	if err != nil {
		return nil, err
	}
	return NewServerWithKey(opts, key)
}

// NewServerWithKey creates a central server around an existing key (used
// by tests and tools that pre-generate keys).
func NewServerWithKey(opts Options, key *sig.PrivateKey) (*Server, error) {
	if opts.PageSize == 0 {
		opts.PageSize = storage.DefaultPageSize
	}
	zero := digest.Params{}
	if opts.AccParams == zero {
		opts.AccParams = digest.DefaultParams()
	}
	acc, err := digest.New(opts.AccParams)
	if err != nil {
		return nil, err
	}
	return &Server{
		opts:   opts,
		key:    key,
		acc:    acc,
		locks:  lock.NewManager(0),
		tables: make(map[string]*table),
	}, nil
}

// PublicKey returns the server's public key.
func (s *Server) PublicKey() *sig.PublicKey { return s.key.Public() }

// Accumulator returns the digest accumulator.
func (s *Server) Accumulator() *digest.Accumulator { return s.acc }

// SetKeyValidity stamps the signing key's version and validity window
// (paper §3.4 delayed-broadcast key rotation).
func (s *Server) SetKeyValidity(version uint32, notBefore, notAfter int64) {
	s.key.SetValidity(version, notBefore, notAfter)
}

// AddTable builds a VB-tree over tuples (sorted by key) and registers the
// table.
func (s *Server) AddTable(sch *schema.Schema, tuples []schema.Tuple) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.tables[sch.Table]; exists {
		return fmt.Errorf("central: table %q already exists", sch.Table)
	}
	mem, err := storage.NewMemPager(s.opts.PageSize)
	if err != nil {
		return err
	}
	pool, err := storage.NewBufferPool(mem, 1<<20) // generous: pages stay resident
	if err != nil {
		return err
	}
	heap, err := storage.NewHeapFile(pool)
	if err != nil {
		return err
	}
	cfg := vbtree.Config{
		Pool:             pool,
		Heap:             heap,
		Schema:           sch,
		Acc:              s.acc,
		Signer:           s.key,
		Pub:              s.key.Public(),
		Locks:            s.locks,
		BuildParallelism: s.opts.BuildParallelism,
	}
	tree, err := vbtree.Build(cfg, tuples, 1.0)
	if err != nil {
		return err
	}
	t := &table{sch: sch, tree: tree, pool: pool, heap: heap}
	if s.opts.WALDir != "" {
		log, err := wal.Create(filepath.Join(s.opts.WALDir, sch.Table+".wal"))
		if err != nil {
			return err
		}
		t.log = log
	}
	s.tables[sch.Table] = t
	return nil
}

// MaterializeJoin computes left ⋈ right on lcol = rcol and registers the
// result as a view table with its own VB-tree (the paper's join story).
func (s *Server) MaterializeJoin(viewName, left, right, lcol, rcol string) error {
	lt, err := s.table(left)
	if err != nil {
		return err
	}
	rt, err := s.table(right)
	if err != nil {
		return err
	}
	ltuples, err := scanTuples(lt)
	if err != nil {
		return err
	}
	rtuples, err := scanTuples(rt)
	if err != nil {
		return err
	}
	viewSch, viewTuples, err := query.MaterializeEquiJoin(viewName, lt.sch, rt.sch, ltuples, rtuples, lcol, rcol)
	if err != nil {
		return err
	}
	return s.AddTable(viewSch, viewTuples)
}

func scanTuples(t *table) ([]schema.Tuple, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	stored, err := t.tree.ScanAll()
	if err != nil {
		return nil, err
	}
	out := make([]schema.Tuple, len(stored))
	for i, st := range stored {
		out[i] = st.Tuple
	}
	return out, nil
}

func (s *Server) table(name string) (*table, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[name]
	if !ok {
		return nil, fmt.Errorf("central: unknown table %q", name)
	}
	return t, nil
}

// Tables lists registered tables in sorted order.
func (s *Server) Tables() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tables))
	for name := range s.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Version returns a table's update version (edges use it for staleness
// checks under the paper's periodic-propagation mode).
func (s *Server) Version(name string) (uint64, error) {
	t, err := s.table(name)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.version, nil
}

// Insert logs and applies a tuple insert.
func (s *Server) Insert(tableName string, tup schema.Tuple) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log != nil {
		if _, err := t.log.Append(wal.RecInsert, tup.EncodeBytes()); err != nil {
			return err
		}
		if err := t.log.Sync(); err != nil {
			return err
		}
	}
	if err := t.tree.Insert(tup); err != nil {
		return err
	}
	t.version++
	return nil
}

// DeleteRange logs and applies a key-range delete; returns the count.
func (s *Server) DeleteRange(tableName string, lo, hi *schema.Datum) (int, error) {
	t, err := s.table(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log != nil {
		payload := encodeDeletePayload(lo, hi)
		if _, err := t.log.Append(wal.RecDelete, payload); err != nil {
			return 0, err
		}
		if err := t.log.Sync(); err != nil {
			return 0, err
		}
	}
	n, err := t.tree.DeleteRange(lo, hi)
	if err != nil {
		return 0, err
	}
	if n > 0 {
		t.version++
	}
	return n, nil
}

func encodeDeletePayload(lo, hi *schema.Datum) []byte {
	var out []byte
	if lo != nil {
		out = append(out, 1)
		out = lo.Encode(out)
	} else {
		out = append(out, 0)
	}
	if hi != nil {
		out = append(out, 1)
		out = hi.Encode(out)
	} else {
		out = append(out, 0)
	}
	return out
}

// Snapshot captures a table replica for an edge server: every page of the
// table's pager plus the tree metadata.
func (s *Server) Snapshot(tableName string) (*wire.Snapshot, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.pool.FlushAll(); err != nil {
		return nil, err
	}
	pager := t.pool.Pager()
	snap := &wire.Snapshot{
		Schema:     t.sch,
		AccParams:  wire.AccParamsFrom(s.acc),
		Root:       t.tree.Root(),
		Height:     uint32(t.tree.Height()),
		RootSig:    t.tree.RootSig(),
		PageSize:   uint32(pager.PageSize()),
		HeapPages:  t.heap.Pages(),
		KeyVersion: s.key.Public().Version,
	}
	buf := make([]byte, pager.PageSize())
	for id := 1; id < pager.NumPages(); id++ {
		if err := pager.ReadPage(storage.PageID(id), buf); err != nil {
			return nil, err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		snap.PageIDs = append(snap.PageIDs, storage.PageID(id))
		snap.PageData = append(snap.PageData, cp)
	}
	return snap, nil
}

// SchemaResponse builds the client-facing verification parameters.
func (s *Server) SchemaResponse(tableName string) (*wire.SchemaResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	return &wire.SchemaResponse{
		Schema:     t.sch,
		AccParams:  wire.AccParamsFrom(s.acc),
		KeyVersion: s.key.Public().Version,
	}, nil
}

// RunQuery answers a query directly at the central server (trusted path,
// used by tools and tests; production queries go through edges).
func (s *Server) RunQuery(tableName string, q vbtree.Query) (*wire.QueryResponse, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	rs, w, err := t.tree.RunQuery(q)
	if err != nil {
		return nil, err
	}
	return &wire.QueryResponse{Result: rs, VO: w}, nil
}

// Serve accepts connections until the listener is closed.
func (s *Server) Serve(l net.Listener) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		l.Close()
		return
	}
	s.listeners = append(s.listeners, l)
	s.lnMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.handleConn(conn)
		}()
	}
}

// Close stops serving and waits for in-flight connections.
func (s *Server) Close() {
	s.lnMu.Lock()
	s.closed = true
	for _, l := range s.listeners {
		l.Close()
	}
	s.listeners = nil
	s.lnMu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.tables {
		if t.log != nil {
			t.log.Close()
		}
	}
}

func (s *Server) handleConn(conn net.Conn) {
	for {
		mt, body, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		if err := s.dispatch(conn, mt, body); err != nil {
			if werr := wire.WriteError(conn, err); werr != nil {
				return
			}
		}
	}
}

func (s *Server) dispatch(conn net.Conn, mt wire.MsgType, body []byte) error {
	switch mt {
	case wire.MsgPubKeyReq:
		blob, err := s.key.Public().MarshalBinary()
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgPubKeyResp, blob)

	case wire.MsgListTablesReq:
		return wire.WriteFrame(conn, wire.MsgListTablesResp, wire.EncodeStringList(s.Tables()))

	case wire.MsgSnapshotReq:
		snap, err := s.Snapshot(string(body))
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgSnapshotResp, snap.Encode())

	case wire.MsgSchemaReq:
		resp, err := s.SchemaResponse(string(body))
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgSchemaResp, resp.Encode())

	case wire.MsgVersionReq:
		v, err := s.Version(string(body))
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgVersionResp, wire.EncodeU64(v))

	case wire.MsgInsertReq:
		req, err := wire.DecodeInsertRequest(body)
		if err != nil {
			return err
		}
		if err := s.Insert(req.Table, req.Tuple); err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgInsertResp, nil)

	case wire.MsgDeleteReq:
		req, err := wire.DecodeDeleteRequest(body)
		if err != nil {
			return err
		}
		var lo, hi *schema.Datum
		if req.HasLo {
			lo = &req.Lo
		}
		if req.HasHi {
			hi = &req.Hi
		}
		n, err := s.DeleteRange(req.Table, lo, hi)
		if err != nil {
			return err
		}
		return wire.WriteFrame(conn, wire.MsgDeleteResp, wire.EncodeU64(uint64(n)))

	default:
		return errors.New("central: unsupported message " + mt.String())
	}
}
