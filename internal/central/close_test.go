package central

import "testing"

// Regression: Close used to drop the error from closing each shard's
// WAL and was not safe to call twice; a missed close (or a hidden fsync
// failure) only surfaces at shutdown, so it must be reported.
func TestCloseReleasesWALsAndIsIdempotent(t *testing.T) {
	srv := newBatchServer(t, 50, Options{PageSize: 1024, WALDir: t.TempDir()})
	if err := srv.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	srv.mu.RLock()
	for name, tb := range srv.tables {
		for i, sh := range tb.part.Load().shards {
			if sh.log == nil {
				t.Fatalf("table %q shard %d has no WAL on a WALDir server", name, i)
			}
			if err := sh.log.Sync(); err == nil {
				t.Fatalf("table %q shard %d WAL still open after Server.Close", name, i)
			}
		}
	}
	srv.mu.RUnlock()
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}
}
