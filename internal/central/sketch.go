package central

import (
	"sort"
	"sync"

	"edgeauth/internal/schema"
)

// loadSketch is a per-shard reservoir sample of the keys the shard's
// load actually touches (every applied insert, a fraction of query lower
// bounds). The detector-driven split reads its median so a hot shard is
// cut where the *traffic* concentrates, not at the key-count midpoint —
// a shard whose load all lands in the top decile of its key range splits
// there, moving half the load instead of half the keys.
//
// The mutex is a leaf lock: observe/median/reset call nothing that can
// block or sign, so it is safe under any shard or table lock.
type loadSketch struct {
	mu   sync.Mutex
	keys []schema.Datum
	seen uint64
	rng  uint64
}

const (
	// sketchCap bounds the reservoir; 256 keys place a median within a
	// few percentiles of the true load distribution.
	sketchCap = 256
	// sketchMinWarm is how many observations the sketch needs before its
	// median outranks the key-count median fallback.
	sketchMinWarm = 16
)

// observe folds one touched key into the reservoir (uniform reservoir
// sampling, so the sample stays representative of all-time load; the
// reservoir is reset when the shard is carved, so in practice it tracks
// the shard's own lifetime).
func (k *loadSketch) observe(d schema.Datum) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.seen++
	if len(k.keys) < sketchCap {
		k.keys = append(k.keys, d)
		return
	}
	// xorshift64: cheap, seedless (state primed from the observation
	// count), and plenty uniform for reservoir replacement.
	if k.rng == 0 {
		k.rng = k.seen*0x9e3779b97f4a7c15 | 1
	}
	k.rng ^= k.rng << 13
	k.rng ^= k.rng >> 7
	k.rng ^= k.rng << 17
	if j := k.rng % k.seen; j < uint64(len(k.keys)) {
		k.keys[j] = d
	}
}

// median returns the sampled load median, or ok=false while the sketch
// is too cold to outrank the key-count fallback.
func (k *loadSketch) median() (schema.Datum, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(k.keys) < sketchMinWarm {
		return schema.Datum{}, false
	}
	sorted := append([]schema.Datum(nil), k.keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Compare(sorted[j]) < 0 })
	return sorted[len(sorted)/2], true
}

// reset empties the reservoir (a freshly carved child starts cold and
// re-learns its own load shape).
func (k *loadSketch) reset() {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.keys = nil
	k.seen = 0
}
