package central

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wire"
)

// TestShardedTableBuildAndMap: a table built with Shards=4 carries four
// independently-rooted trees bound by a map that verifies under the
// server's public key and partitions the key space.
func TestShardedTableBuildAndMap(t *testing.T) {
	srv := newBatchServer(t, 400, Options{PageSize: 1024, Shards: 4})
	n, err := srv.NumShards("items")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("NumShards = %d, want 4", n)
	}
	sm, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if err := sm.Verify(srv.PublicKey()); err != nil {
		t.Fatalf("shard map does not verify: %v", err)
	}
	if len(sm.Map.Shards) != 4 || len(sm.Map.Boundaries) != 3 {
		t.Fatalf("map shape: %d shards, %d boundaries", len(sm.Map.Shards), len(sm.Map.Boundaries))
	}
	seen := map[string]bool{}
	for i, shs := range sm.Map.Shards {
		if len(shs.RootDigest) == 0 {
			t.Fatalf("shard %d has empty root digest", i)
		}
		if seen[string(shs.RootDigest)] {
			t.Fatalf("shard %d repeats another shard's root digest", i)
		}
		seen[string(shs.RootDigest)] = true
	}
	// Cross-shard range query at the (trusted) central still sees every
	// row exactly once.
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 400 {
		t.Fatalf("cross-shard scan returned %d of 400 rows", len(resp.Result.Tuples))
	}
	for i := 1; i < len(resp.Result.Keys); i++ {
		if resp.Result.Keys[i-1].Compare(resp.Result.Keys[i]) >= 0 {
			t.Fatalf("merged scan out of key order at %d", i)
		}
	}
}

// TestShardedApplyBatch: a batch spanning every shard commits each
// sub-batch on its own tree, bumps only the touched shards' versions,
// and republishes the map once.
func TestShardedApplyBatch(t *testing.T) {
	srv := newBatchServer(t, 400, Options{PageSize: 1024, Shards: 4, WALDir: t.TempDir()})
	before, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}

	var rows []schema.Tuple
	for i := int64(0); i < 64; i++ {
		// DefaultSpec keys are 0..399; spread new keys across the range
		// so every shard receives some.
		rows = append(rows, batchServerRow(t, 1_000_000+i*7))
	}
	// All-new keys land in the last shard only under the default split of
	// 0..399; also add keys inside earlier shards.
	rows = append(rows, batchServerRow(t, 401), batchServerRow(t, 402))
	opErrs, err := srv.ApplyBatch("items", rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range opErrs {
		if e != nil {
			t.Fatalf("op %d: %v", i, e)
		}
	}
	after, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if after.Map.MapVersion != before.Map.MapVersion+1 {
		t.Fatalf("map version went %d -> %d, want one bump per batch", before.Map.MapVersion, after.Map.MapVersion)
	}
	if err := after.Verify(srv.PublicKey()); err != nil {
		t.Fatalf("republished map does not verify: %v", err)
	}
	// The touched shard's root digest changed; untouched shards kept
	// theirs (every new key is above the last boundary, so only the last
	// shard moved).
	changed := 0
	for i := range after.Map.Shards {
		if string(after.Map.Shards[i].RootDigest) != string(before.Map.Shards[i].RootDigest) {
			changed++
			if after.Map.Shards[i].Version != before.Map.Shards[i].Version+1 {
				t.Fatalf("shard %d version went %d -> %d, want one bump",
					i, before.Map.Shards[i].Version, after.Map.Shards[i].Version)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("%d shard roots changed, want 1 (all new keys beyond the last boundary)", changed)
	}

	// Every inserted row is queryable through the merged read path.
	lo := schema.Int64(401)
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != len(rows) {
		t.Fatalf("found %d of %d batch rows", len(resp.Result.Tuples), len(rows))
	}
}

// TestShardedDeleteRange: a delete spanning two shards commits on both
// and reports the combined count.
func TestShardedDeleteRange(t *testing.T) {
	srv := newBatchServer(t, 400, Options{PageSize: 1024, Shards: 4})
	sm, _ := srv.SignedShardMap("items")
	// Delete across the middle boundary: [b1-10, b1+9] where b1 is the
	// second boundary.
	b := sm.Map.Boundaries[1]
	lo, hi := schema.Int64(b.I-10), schema.Int64(b.I+9)
	n, err := srv.DeleteRange("items", &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("deleted %d rows, want 20", n)
	}
	after, _ := srv.SignedShardMap("items")
	if after.Map.MapVersion != sm.Map.MapVersion+1 {
		t.Fatalf("map version went %d -> %d after delete", sm.Map.MapVersion, after.Map.MapVersion)
	}
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 0 {
		t.Fatalf("deleted range still serves %d rows", len(resp.Result.Tuples))
	}
}

// TestLegacyFramesRejectShardedTables: the unsharded snapshot/delta
// paths answer partitioned tables with a typed unsupported error, which
// is what steers sharding-aware peers to the shard-scoped frames.
func TestLegacyFramesRejectShardedTables(t *testing.T) {
	srv := newBatchServer(t, 100, Options{PageSize: 1024, Shards: 2})
	if _, err := srv.Snapshot("items"); !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("legacy Snapshot on sharded table: %v, want ErrUnsupported", err)
	}
	epoch, _ := srv.TableEpoch("items")
	if _, err := srv.Delta("items", 0, epoch); !errors.Is(err, wire.ErrUnsupported) {
		t.Fatalf("legacy Delta on sharded table: %v, want ErrUnsupported", err)
	}
	// Shard-scoped requests work, and out-of-range indices are typed
	// errors.
	if _, err := srv.ShardSnapshot("items", 1); err != nil {
		t.Fatalf("ShardSnapshot: %v", err)
	}
	if _, err := srv.ShardSnapshot("items", 7); err == nil {
		t.Fatal("out-of-range shard snapshot accepted")
	}
	if _, err := srv.ShardDelta("items", 0, 0, epoch); err != nil {
		t.Fatalf("ShardDelta: %v", err)
	}
	// Single-shard tables keep serving the legacy frames.
	single := newBatchServerNamed(t, 50, Options{PageSize: 1024})
	if _, err := single.Snapshot("items"); err != nil {
		t.Fatalf("legacy Snapshot on single-shard table: %v", err)
	}
}

// newBatchServerNamed exists so two servers in one test don't collide on
// the shared test key.
func newBatchServerNamed(t *testing.T, rows int, opts Options) *Server {
	t.Helper()
	return newBatchServer(t, rows, opts)
}

// TestShardDeltaBindsShardIndex: a delta generated for shard 0 must not
// verify as a delta for shard 1 — the shard ref rides inside the signed
// Table field.
func TestShardDeltaBindsShardIndex(t *testing.T) {
	srv := newBatchServer(t, 200, Options{PageSize: 1024, Shards: 2})
	epoch, _ := srv.TableEpoch("items")
	// A fresh key below the first boundary lands in shard 0.
	if err := srv.Insert("items", batchServerRow(t, -5)); err != nil {
		t.Fatal(err)
	}
	d, err := srv.ShardDelta("items", 0, 0, epoch)
	if err != nil {
		t.Fatal(err)
	}
	if d.SnapshotNeeded {
		t.Fatal("expected a real delta")
	}
	if d.Table != wire.ShardRef("items", 0) {
		t.Fatalf("delta table ref = %q", d.Table)
	}
	// Re-labelling the delta for another shard breaks the signature.
	d.Table = wire.ShardRef("items", 1)
	if err := srv.PublicKey().Verify(d.Sig, d.SigPayload()); err == nil {
		t.Fatal("re-labelled shard delta still verifies")
	}
}

// TestDeleteOrdersAfterCoalescedInserts pins the group-commit parity
// fix: a delete dispatched while an insert round is in flight must
// commit after the inserts that arrived before it, so it observes (and
// can remove) their rows. Before the fix, MsgDeleteReq bypassed the
// queue and could commit ahead of earlier coalesced inserts.
func TestDeleteOrdersAfterCoalescedInserts(t *testing.T) {
	srv := newBatchServer(t, 10, Options{PageSize: 1024, MaxBatch: 8, MaxDelay: 300 * time.Millisecond})

	insertErr := make(chan error, 1)
	go func() {
		insertErr <- srv.enqueueInsert(context.Background(), "items", batchServerRow(t, 70_000))
	}()
	// Let the insert take leadership and start waiting for stragglers.
	time.Sleep(50 * time.Millisecond)

	lo, hi := schema.Int64(70_000), schema.Int64(70_000)
	start := time.Now()
	n, err := srv.enqueueDelete(context.Background(), "items", &lo, &hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-insertErr; err != nil {
		t.Fatalf("insert failed: %v", err)
	}
	if n != 1 {
		t.Fatalf("delete saw %d rows, want 1 — it committed ahead of the earlier insert", n)
	}
	// The delete also must not have slept out the full MaxDelay: its
	// arrival signals the waiting leader.
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Fatalf("delete waited %v; a queued delete should release the leader early", elapsed)
	}

	// And the row is gone.
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 0 {
		t.Fatalf("row survived its delete")
	}
}

// TestConcurrentMixedOpsOrdered hammers the front door with interleaved
// inserts and deletes under -race; every op gets exactly one result and
// the table stays consistent (no row both present and delete-counted).
func TestConcurrentMixedOpsOrdered(t *testing.T) {
	srv := newBatchServer(t, 10, Options{PageSize: 1024, MaxBatch: 16, MaxDelay: 2 * time.Millisecond})
	const workers = 24
	var wg sync.WaitGroup
	deleted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := int64(80_000 + w)
			if err := srv.enqueueInsert(context.Background(), "items", batchServerRow(t, key)); err != nil {
				t.Errorf("insert %d: %v", w, err)
				return
			}
			lo, hi := schema.Int64(key), schema.Int64(key)
			n, err := srv.enqueueDelete(context.Background(), "items", &lo, &hi)
			if err != nil {
				t.Errorf("delete %d: %v", w, err)
				return
			}
			deleted[w] = n
		}(w)
	}
	wg.Wait()
	for w, n := range deleted {
		if n != 1 {
			t.Fatalf("worker %d: delete saw %d rows, want 1 (its own insert happened-before)", w, n)
		}
	}
	lo, hi := schema.Int64(80_000), schema.Int64(80_000+workers)
	resp, err := srv.RunQuery(context.Background(), "items", vbtree.Query{Lo: &lo, Hi: &hi})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 0 {
		t.Fatalf("%d rows survived their deletes", len(resp.Result.Tuples))
	}
}
