package central

import (
	"context"
	"errors"
	"sync"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Group-committed writes: the batched front half of the central write
// path.
//
// The per-tuple Insert pays one WAL fsync, one changelog entry, one
// published snapshot and one root-to-leaf re-sign chain per tuple.
// ApplyBatch pays each of those once per batch: one t.mu critical
// section, one RecBatch WAL record followed by a single Sync, one version
// bump (so the delta changelog carries one dense entry instead of N
// sparse ones), one snapshot publish, and — via vbtree.InsertBatch — one
// RSA re-sign per dirtied tree node no matter how many tuples landed in
// it.
//
// The group-commit front door makes the win transparent to unmodified
// clients: concurrent single-insert dispatches for the same table are
// coalesced into ApplyBatch calls by a leader/follower protocol. The
// first arrival becomes the leader, optionally waits MaxDelay for
// stragglers, then commits everything queued (up to MaxBatch per round)
// and distributes the per-op results; arrivals during a commit queue up
// for the next round. With MaxDelay zero a lone insert commits
// immediately — coalescing only kicks in under concurrency, so the idle
// latency cost is nil.

// DefaultMaxBatch bounds one group-committed round when Options.MaxBatch
// is zero.
const DefaultMaxBatch = 128

// maxBatch resolves Options.MaxBatch: 0 = default, negative = disabled
// (every dispatch commits by itself).
func (s *Server) maxBatch() int {
	switch {
	case s.opts.MaxBatch == 0:
		return DefaultMaxBatch
	case s.opts.MaxBatch < 0:
		return 1
	default:
		return s.opts.MaxBatch
	}
}

// ApplyBatch inserts tuples into a table as one group commit and returns
// per-op errors (index-aligned; nil = inserted). Per-op failures such as
// duplicate keys do not abort the rest of the batch; the error return is
// reserved for table-level failures.
func (s *Server) ApplyBatch(tableName string, tuples []schema.Tuple) ([]error, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var lsn uint64
	if t.log != nil {
		// One record, one fsync, for the whole batch. Replay flattens the
		// record back into per-tuple inserts; tuples that fail per-op here
		// fail identically (and as harmlessly) on replay.
		if lsn, err = t.log.Append(wal.RecBatch, wal.EncodeBatchPayload(tuples)); err != nil {
			return nil, err
		}
		if err := t.log.Sync(); err != nil {
			return nil, err
		}
	}
	stats, opErrs, err := t.tree.InsertBatch(tuples)
	if err != nil {
		t.stashJournal()
		return opErrs, err
	}
	if stats.Applied == 0 {
		t.stashJournal()
		return opErrs, nil
	}
	t.version++
	pages := t.commitChange(t.version, lsn, s.retention())
	return opErrs, s.publishCommitLocked(t, pages)
}

// pendingInsert is one coalesced single-insert dispatch awaiting its
// group commit's outcome.
type pendingInsert struct {
	tup  schema.Tuple
	done chan error // buffered; the leader always delivers exactly once
}

// groupCommitter is the per-table coalescing queue.
type groupCommitter struct {
	mu      sync.Mutex
	queue   []*pendingInsert
	leading bool
	// full is signalled (capacity 1, never blocking) when a waiting
	// leader's round has filled to MaxBatch, so it commits immediately
	// instead of sleeping out its MaxDelay.
	full chan struct{}
}

// enqueueInsert routes one single-insert dispatch through the group
// committer. The calling goroutine either becomes the leader (committing
// every queued insert, its own included) or waits for a leader's result.
func (s *Server) enqueueInsert(ctx context.Context, tableName string, tup schema.Tuple) error {
	t, err := s.table(tableName)
	if err != nil {
		return err
	}
	if s.maxBatch() <= 1 {
		return s.Insert(tableName, tup)
	}
	op := &pendingInsert{tup: tup, done: make(chan error, 1)}
	gc := &t.gc
	gc.mu.Lock()
	if gc.full == nil {
		gc.full = make(chan struct{}, 1)
	}
	gc.queue = append(gc.queue, op)
	if gc.leading {
		if len(gc.queue) >= s.maxBatch() {
			select {
			case gc.full <- struct{}{}:
			default:
			}
		}
		gc.mu.Unlock()
		select {
		case err := <-op.done:
			return err
		case <-ctx.Done():
			// The insert stays queued and will still commit; the caller
			// only stops waiting for the acknowledgement — the same
			// contract as a timed-out commit on any database.
			return ctx.Err()
		}
	}
	gc.leading = true
	gc.mu.Unlock()
	s.awaitStragglers(gc)
	s.leadCommits(tableName, gc)
	return <-op.done
}

// awaitStragglers holds the leader for up to MaxDelay so concurrent
// inserts can join its round, committing the moment the round fills.
func (s *Server) awaitStragglers(gc *groupCommitter) {
	if s.opts.MaxDelay <= 0 {
		return
	}
	// Discard a stale fill signal from a previous round, then check
	// whether this round is already full.
	select {
	case <-gc.full:
	default:
	}
	gc.mu.Lock()
	full := len(gc.queue) >= s.maxBatch()
	gc.mu.Unlock()
	if full {
		return
	}
	timer := time.NewTimer(s.opts.MaxDelay)
	defer timer.Stop()
	select {
	case <-gc.full:
	case <-timer.C:
	}
}

// leadCommits drains the queue in rounds of at most MaxBatch until it is
// empty, then steps down. Arrivals during a round queue for the next one.
func (s *Server) leadCommits(tableName string, gc *groupCommitter) {
	limit := s.maxBatch()
	for {
		gc.mu.Lock()
		n := len(gc.queue)
		if n == 0 {
			gc.leading = false
			gc.mu.Unlock()
			return
		}
		if n > limit {
			n = limit
		}
		batch := make([]*pendingInsert, n)
		copy(batch, gc.queue[:n])
		gc.queue = append(gc.queue[:0:0], gc.queue[n:]...)
		gc.mu.Unlock()

		tuples := make([]schema.Tuple, n)
		for i, op := range batch {
			tuples[i] = op.tup
		}
		opErrs, err := s.ApplyBatch(tableName, tuples)
		for i, op := range batch {
			e := err
			if e == nil && opErrs != nil {
				e = opErrs[i]
			}
			op.done <- e
		}
	}
}

// batchResponse converts per-op errors into the typed wire results.
func batchResponse(count int, opErrs []error) *wire.BatchResponse {
	resp := &wire.BatchResponse{Results: make([]wire.BatchOpResult, count)}
	for i := range resp.Results {
		var err error
		if opErrs != nil {
			err = opErrs[i]
		}
		switch {
		case err == nil:
			resp.Results[i] = wire.BatchOpResult{OK: true}
		case errors.Is(err, vbtree.ErrDuplicateKey):
			resp.Results[i] = wire.BatchOpResult{Code: wire.CodeDuplicateKey, Msg: err.Error()}
		default:
			resp.Results[i] = wire.BatchOpResult{Code: wire.CodeBadRequest, Msg: err.Error()}
		}
	}
	return resp
}
