package central

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/wal"
	"edgeauth/internal/wire"
)

// Group-committed writes: the batched front half of the central write
// path.
//
// The per-tuple Insert pays one WAL fsync, one changelog entry, one
// published snapshot and one root-to-leaf re-sign chain per tuple.
// ApplyBatch pays each of those once per shard per batch: the batch is
// range-partitioned, each shard group commits as one unit (one RecBatch
// WAL record + fsync, one shard version bump, one snapshot publish, one
// RSA re-sign per dirtied node via vbtree.InsertBatch) — and the shard
// groups commit in parallel, because every shard has its own tree, lock
// and signed root. The RSA-bound repair phase, which PR 4 left
// serialized on a single root, now scales with cores.
//
// The group-commit front door makes the win transparent to unmodified
// clients: concurrent single-op dispatches for the same table are
// coalesced by a leader/follower protocol. The first arrival becomes the
// leader, optionally waits MaxDelay for stragglers, then commits
// everything queued (up to MaxBatch inserts per round) and distributes
// the per-op results; arrivals during a commit queue up for the next
// round. Deletes flow through the same ordered queue: a delete acts as a
// barrier — the leader first commits the inserts that arrived before it,
// then runs the delete — so a delete can never commit ahead of an
// earlier coalesced insert on the same table. With MaxDelay zero a lone
// op commits immediately — coalescing only kicks in under concurrency,
// so the idle latency cost is nil.

// DefaultMaxBatch bounds one group-committed round when Options.MaxBatch
// is zero.
const DefaultMaxBatch = 128

// maxBatch resolves Options.MaxBatch: 0 = default, negative = disabled
// (every dispatch commits by itself).
func (s *Server) maxBatch() int {
	switch {
	case s.opts.MaxBatch == 0:
		return DefaultMaxBatch
	case s.opts.MaxBatch < 0:
		return 1
	default:
		return s.opts.MaxBatch
	}
}

// ApplyBatch inserts tuples into a table as one group commit and returns
// per-op errors (index-aligned; nil = inserted). Per-op failures such as
// duplicate keys do not abort the rest of the batch; the error return is
// reserved for table-level failures. The batch is partitioned by key
// range and the per-shard sub-batches commit in parallel.
func (s *Server) ApplyBatch(tableName string, tuples []schema.Tuple) ([]error, error) {
	t, err := s.table(tableName)
	if err != nil {
		return nil, err
	}
	if len(tuples) == 0 {
		return nil, nil
	}
	for i, tup := range tuples {
		if len(tup.Values) <= t.sch.Key {
			return nil, &wire.WireError{Code: wire.CodeBadRequest, Table: tableName,
				Msg: "central: batch tuple " + strconv.Itoa(i) + " has no key column"}
		}
	}

	// The partition read lock spans routing through republish: an online
	// split/merge waits out in-flight batches and batches wait out a
	// transition, so no tuple commits against a retired shard.
	t.partMu.RLock()
	defer t.partMu.RUnlock()
	part := t.part.Load()

	// Partition the batch by shard, remembering each tuple's original
	// index so per-op errors land back in caller order.
	groups := make([][]schema.Tuple, len(part.shards))
	indices := make([][]int, len(part.shards))
	for i, tup := range tuples {
		si := part.shardFor(tup.Key(t.sch))
		groups[si] = append(groups[si], tup)
		indices[si] = append(indices[si], i)
	}

	opErrs := make([]error, len(tuples))
	applied := make([]int, len(part.shards))
	shardErrs := make([]error, len(part.shards))
	var wg sync.WaitGroup
	for si := range part.shards {
		if len(groups[si]) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			n, errs, err := s.applyShardBatch(t, part.shards[si], groups[si])
			applied[si] = n
			shardErrs[si] = err
			part.shards[si].ingestLoad.Add(uint64(len(groups[si])))
			for j, e := range errs {
				opErrs[indices[si][j]] = e
			}
		}(si)
	}
	wg.Wait()

	totalApplied := 0
	var firstErr error
	for si := range part.shards {
		totalApplied += applied[si]
		if shardErrs[si] != nil && firstErr == nil {
			firstErr = shardErrs[si]
		}
	}
	// Shards that committed are durable even when a sibling shard
	// failed, so the map must republish whenever anything applied —
	// otherwise edges would never learn about the committed tuples.
	if totalApplied > 0 {
		s.stats.insertsApplied.Add(uint64(totalApplied))
		s.stats.batchRounds.Add(1)
		s.stats.batchOps.Add(uint64(len(tuples)))
		s.stats.observeRound(len(tuples))
		// One map re-sign covers every shard the batch touched. Shard
		// locks are all released by now (see the commitMu ordering note
		// on table).
		if rerr := s.republishMap(t); rerr != nil && firstErr == nil {
			firstErr = rerr
		}
	}
	return opErrs, firstErr
}

// applyShardBatch commits one shard's sub-batch: one WAL record + fsync,
// one tree InsertBatch (one re-sign per dirtied node), one version bump,
// one snapshot publish. Returns how many tuples applied and the
// sub-batch's per-op errors (aligned with its tuples).
func (s *Server) applyShardBatch(t *table, sh *shard, tuples []schema.Tuple) (int, []error, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var lsn uint64
	var err error
	if sh.log != nil {
		// One record, one fsync, for the whole sub-batch. Replay flattens
		// the record back into per-tuple inserts; tuples that fail per-op
		// here fail identically (and as harmlessly) on replay.
		if lsn, err = sh.log.Append(wal.RecBatch, wal.EncodeBatchPayload(tuples)); err != nil {
			return 0, nil, err
		}
		if err := sh.log.Sync(); err != nil {
			return 0, nil, err
		}
	}
	stats, opErrs, err := sh.tree.InsertBatch(tuples)
	if err != nil {
		sh.stashJournal()
		return 0, opErrs, err
	}
	// Feed the load sketch and, when a transition has this shard pinned,
	// its delta tail — applied tuples only: a per-op failure (duplicate
	// key) applied nothing here, and replaying it into a transition child
	// would diverge the child from the parent's history.
	applied := tuples
	for j := range opErrs {
		if opErrs[j] != nil {
			applied = make([]schema.Tuple, 0, stats.Applied)
			for k, e := range opErrs {
				if e == nil {
					applied = append(applied, tuples[k])
				}
			}
			break
		}
	}
	for _, tup := range applied {
		sh.sketch.observe(tup.Key(t.sch))
	}
	if len(applied) > 0 && sh.tail != nil {
		sh.tail.recordInserts(applied)
	}
	if stats.Applied == 0 {
		sh.stashJournal()
		return 0, opErrs, nil
	}
	return stats.Applied, opErrs, s.commitShard(t, sh, lsn)
}

// pendingOp is one coalesced dispatch (insert, delete or reshard)
// awaiting its group commit's outcome.
type pendingOp struct {
	// insert payload (when delete is false and reshard is nil)
	tup schema.Tuple
	// delete payload
	delete bool
	lo, hi *schema.Datum
	// reshard payload: a partition transition, committed as a barrier op
	// exactly like a delete.
	reshard *reshardCmd

	done chan opResult // buffered; the leader always delivers exactly once
}

// reshardCmd is one queued partition transition: a split of shard
// `shard` (at boundary, or its load/key median when nil) or a merge of
// `shard` with its right neighbor. By the time a cmd reaches the
// barrier queue its transition is already prepared — the children are
// built and caught up — so tr carries the work to the leader.
type reshardCmd struct {
	split    bool
	shard    uint32
	boundary *schema.Datum
	tr       *preparedTransition
}

// barrier reports whether the op must commit alone at its queue
// position instead of coalescing into an insert round.
func (op *pendingOp) barrier() bool { return op.delete || op.reshard != nil }

// opResult carries an op's outcome back to its waiting dispatcher.
type opResult struct {
	n       int // deleted-row count for deletes
	reshard *wire.ReshardResponse
	err     error
}

// groupCommitter is the per-table coalescing queue. Ops commit in
// arrival order: runs of inserts coalesce into ApplyBatch rounds,
// deletes execute alone at their queue position.
type groupCommitter struct {
	mu      sync.Mutex
	queue   []*pendingOp
	leading bool
	// full is signalled (capacity 1, never blocking) when a waiting
	// leader's round has filled to MaxBatch (or a delete arrived, which
	// the leader should not sit on), so it commits immediately instead
	// of sleeping out its MaxDelay.
	full chan struct{}
}

// enqueueInsert routes one single-insert dispatch through the group
// committer. The calling goroutine either becomes the leader (committing
// every queued op, its own included) or waits for a leader's result.
func (s *Server) enqueueInsert(ctx context.Context, tableName string, tup schema.Tuple) error {
	if s.maxBatch() <= 1 {
		return s.Insert(tableName, tup)
	}
	res, err := s.enqueueOp(ctx, tableName, &pendingOp{tup: tup, done: make(chan opResult, 1)})
	if err != nil {
		return err
	}
	return res.err
}

// enqueueDelete routes a range delete through the same ordered queue, so
// it cannot commit ahead of inserts that arrived before it.
func (s *Server) enqueueDelete(ctx context.Context, tableName string, lo, hi *schema.Datum) (int, error) {
	if s.maxBatch() <= 1 {
		return s.DeleteRange(tableName, lo, hi)
	}
	res, err := s.enqueueOp(ctx, tableName, &pendingOp{delete: true, lo: lo, hi: hi, done: make(chan opResult, 1)})
	if err != nil {
		return 0, err
	}
	return res.n, res.err
}

func (s *Server) enqueueOp(ctx context.Context, tableName string, op *pendingOp) (opResult, error) {
	t, err := s.table(tableName)
	if err != nil {
		return opResult{}, err
	}
	gc := &t.gc
	gc.mu.Lock()
	if gc.full == nil {
		gc.full = make(chan struct{}, 1)
	}
	gc.queue = append(gc.queue, op)
	if gc.leading {
		if len(gc.queue) >= s.maxBatch() || op.barrier() {
			// Fill the round (or stop a waiting leader sitting on a
			// barrier op longer than it must).
			select {
			case gc.full <- struct{}{}:
			default:
			}
		}
		gc.mu.Unlock()
		select {
		case res := <-op.done:
			return res, nil
		case <-ctx.Done():
			// The op stays queued and will still commit; the caller only
			// stops waiting for the acknowledgement — the same contract
			// as a timed-out commit on any database.
			return opResult{}, ctx.Err()
		}
	}
	gc.leading = true
	gc.mu.Unlock()
	s.awaitStragglers(gc)
	s.leadCommits(tableName, gc)
	return <-op.done, nil
}

// awaitStragglers holds the leader for up to MaxDelay so concurrent ops
// can join its round, committing the moment the round fills.
func (s *Server) awaitStragglers(gc *groupCommitter) {
	if s.opts.MaxDelay <= 0 {
		return
	}
	// Discard a stale fill signal from a previous round, then check
	// whether this round is already full.
	select {
	case <-gc.full:
	default:
	}
	gc.mu.Lock()
	full := len(gc.queue) >= s.maxBatch()
	gc.mu.Unlock()
	if full {
		return
	}
	timer := time.NewTimer(s.opts.MaxDelay)
	defer timer.Stop()
	select {
	case <-gc.full:
	case <-timer.C:
	}
}

// leadCommits drains the queue in arrival order until it is empty, then
// steps down. Each round is either a run of consecutive inserts (at most
// MaxBatch, committed via ApplyBatch) or a single delete. Arrivals
// during a round queue for the next one.
func (s *Server) leadCommits(tableName string, gc *groupCommitter) {
	limit := s.maxBatch()
	for {
		gc.mu.Lock()
		if len(gc.queue) == 0 {
			gc.leading = false
			gc.mu.Unlock()
			return
		}
		if gc.queue[0].barrier() {
			// Barrier op (delete or reshard): commit it alone, in its
			// arrival position.
			op := gc.queue[0]
			gc.queue = append(gc.queue[:0:0], gc.queue[1:]...)
			gc.mu.Unlock()
			if op.reshard != nil {
				// The transition was prepared and caught up before it was
				// queued; the barrier position only orders its swap against
				// the coalesced writes around it.
				resp, err := s.finishReshard(op.reshard.tr)
				op.done <- opResult{reshard: resp, err: err}
			} else {
				n, err := s.DeleteRange(tableName, op.lo, op.hi)
				op.done <- opResult{n: n, err: err}
			}
			continue
		}
		// Take the longest prefix of inserts, bounded by the round limit.
		n := 0
		for n < len(gc.queue) && n < limit && !gc.queue[n].barrier() {
			n++
		}
		batch := make([]*pendingOp, n)
		copy(batch, gc.queue[:n])
		gc.queue = append(gc.queue[:0:0], gc.queue[n:]...)
		gc.mu.Unlock()

		tuples := make([]schema.Tuple, n)
		for i, op := range batch {
			tuples[i] = op.tup
		}
		opErrs, err := s.ApplyBatch(tableName, tuples)
		for i, op := range batch {
			e := err
			if e == nil && opErrs != nil {
				e = opErrs[i]
			}
			op.done <- opResult{err: e}
		}
	}
}

// batchResponse converts per-op errors into the typed wire results.
func batchResponse(count int, opErrs []error) *wire.BatchResponse {
	resp := &wire.BatchResponse{Results: make([]wire.BatchOpResult, count)}
	for i := range resp.Results {
		var err error
		if opErrs != nil {
			err = opErrs[i]
		}
		switch {
		case err == nil:
			resp.Results[i] = wire.BatchOpResult{OK: true}
		case errors.Is(err, vbtree.ErrDuplicateKey):
			resp.Results[i] = wire.BatchOpResult{Code: wire.CodeDuplicateKey, Msg: err.Error()}
		default:
			resp.Results[i] = wire.BatchOpResult{Code: wire.CodeBadRequest, Msg: err.Error()}
		}
	}
	return resp
}
