package central

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/wal"
)

// TestSplitBoundaryFollowsLoadSketch pins the detector-driven boundary:
// a median split of a shard whose load sketch is warm cuts at the
// observed *load* median, not the key-count midpoint, so a split moves
// half the traffic even when the traffic concentrates in a sliver of
// the key range.
func TestSplitBoundaryFollowsLoadSketch(t *testing.T) {
	srv := newReshardServer(t, 200, 2, Options{})
	tb, err := srv.table("items")
	if err != nil {
		t.Fatal(err)
	}
	part := tb.part.Load()

	// Shard 1 holds keys ~100..199; concentrate the observed load in its
	// top decile. 40 observations of keys 180..199: the sorted sample's
	// median is 190.
	for pass := 0; pass < 2; pass++ {
		for k := int64(180); k < 200; k++ {
			part.shards[1].sketch.observe(schema.Int64(k))
		}
	}
	if _, err := srv.SplitShard(context.Background(), "items", 1, nil); err != nil {
		t.Fatal(err)
	}
	sm, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if got := sm.Map.Boundaries[1]; got.Compare(schema.Int64(190)) != 0 {
		t.Fatalf("warm-sketch split cut at %v; want the load median 190", got)
	}

	// Shard 0's sketch never saw traffic: its median split must fall
	// back to the key-count midpoint, strictly inside (0, old boundary).
	oldBoundary := sm.Map.Boundaries[0]
	if _, err := srv.SplitShard(context.Background(), "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	sm2, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	b := sm2.Map.Boundaries[0]
	if b.Compare(schema.Int64(0)) <= 0 || b.Compare(oldBoundary) >= 0 {
		t.Fatalf("cold-sketch split cut at %v; want a key median inside (0, %v)", b, oldBoundary)
	}
	if b.Compare(schema.Int64(180)) >= 0 {
		t.Fatalf("cold-sketch split cut at %v; the load-median path must not apply to an unobserved shard", b)
	}
}

// TestReshardCheckpointTruncatesHistory drives a long split/merge chain
// with meta-log checkpointing enabled and verifies the checkpoint
// contract: replay (ReshardHistory) resumes after the newest
// checkpoint instead of the table's first transition, and the
// checkpoint's captured partition state matches the live signed map —
// including after the server is closed and the log is reopened cold.
func TestReshardCheckpointTruncatesHistory(t *testing.T) {
	dir := t.TempDir()
	srv := newReshardServer(t, 400, 2, Options{WALDir: dir, ReshardCheckpointEvery: 2})
	ctx := context.Background()

	// Four transitions; checkpoints land after the 2nd and 4th.
	if _, err := srv.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SplitShard(ctx, "items", 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.MergeShards(ctx, "items", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.SplitShard(ctx, "items", 1, nil); err != nil {
		t.Fatal(err)
	}

	hist, err := srv.ReshardHistory("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 0 {
		t.Fatalf("history replays %d transitions past a fresh checkpoint; want 0", len(hist))
	}
	cp, err := srv.MetaCheckpoint("items")
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no partition checkpoint after 4 transitions with ReshardCheckpointEvery=2")
	}
	sm, err := srv.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if cp.MapEpoch != sm.Map.MapEpoch {
		t.Fatalf("checkpoint epoch %d, live map epoch %d", cp.MapEpoch, sm.Map.MapEpoch)
	}
	if len(cp.ShardIDs) != len(sm.Map.Shards) {
		t.Fatalf("checkpoint has %d shards, live map %d", len(cp.ShardIDs), len(sm.Map.Shards))
	}
	for i, id := range cp.ShardIDs {
		if id != sm.Map.Shards[i].ID {
			t.Fatalf("checkpoint shard %d has ID %d, live map %d", i, id, sm.Map.Shards[i].ID)
		}
		if id >= cp.NextShardID {
			t.Fatalf("checkpoint allocator watermark %d does not cover live shard ID %d", cp.NextShardID, id)
		}
	}
	if len(cp.Boundaries) != len(sm.Map.Boundaries) {
		t.Fatalf("checkpoint has %d boundaries, live map %d", len(cp.Boundaries), len(sm.Map.Boundaries))
	}
	for i, b := range cp.Boundaries {
		if b.Compare(sm.Map.Boundaries[i]) != 0 {
			t.Fatalf("checkpoint boundary %d = %v, live map %v", i, b, sm.Map.Boundaries[i])
		}
	}

	// A fifth transition lands after the checkpoint and replays again.
	if _, err := srv.MergeShards(ctx, "items", 0); err != nil {
		t.Fatal(err)
	}
	hist, err = srv.ReshardHistory("items")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 {
		t.Fatalf("history replays %d transitions after the checkpoint; want exactly the 5th", len(hist))
	}
	if hist[0].MapEpoch != sm.Map.MapEpoch+1 {
		t.Fatalf("replayed transition commits epoch %d; want %d", hist[0].MapEpoch, sm.Map.MapEpoch+1)
	}

	// Cold reopen: the checkpoint must decode straight off the closed
	// log file, with the same state a restarting replayer would seed.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	cold, err := wal.LastCheckpoint(filepath.Join(dir, "items.meta.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if cold == nil || cold.MapEpoch != cp.MapEpoch || cold.NextShardID != cp.NextShardID {
		t.Fatalf("cold reopen checkpoint = %+v; want the live checkpoint %+v", cold, cp)
	}
}

// TestReshardStallBoundedOnLargeShard is the incremental-transition
// soak: batches commit continuously while a deliberately large shard
// splits. The build must run outside the partition lock (writers make
// progress throughout), no tuple may be lost or duplicated across the
// snapshot/tail handoff, and the in-lock replay must be O(tail bound),
// never O(shard) — the whole point of the two-phase pipeline.
func TestReshardStallBoundedOnLargeShard(t *testing.T) {
	const rows = 8192
	srv := newReshardServer(t, rows, 1, Options{})
	ctx := context.Background()

	stop := make(chan struct{})
	var inserted atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seq := int64(0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				batch := make([]schema.Tuple, 16)
				for j := range batch {
					batch[j] = batchServerRow(t, 1_000_000+int64(g)*1_000_000+seq)
					seq++
				}
				opErrs, err := srv.ApplyBatch("items", batch)
				if err != nil {
					t.Errorf("batch during split: %v", err)
					return
				}
				for _, e := range opErrs {
					if e != nil {
						t.Errorf("batch op during split: %v", e)
						return
					}
				}
				inserted.Add(int64(len(batch)))
			}
		}(g)
	}

	time.Sleep(20 * time.Millisecond) // let the write load establish
	if _, err := srv.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatalf("split under load: %v", err)
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	if got, want := scanCount(t, srv), rows+int(inserted.Load()); got != want {
		t.Fatalf("conservation failed across the transition: %d rows, want %d", got, want)
	}
	st := srv.Stats()
	if st.Splits != 1 {
		t.Fatalf("splits = %d, want 1", st.Splits)
	}
	// The in-lock replay is the catch-up residue: the tail bound plus
	// whatever the race window between the last catch-up round and the
	// lock admits (a few in-flight rounds). It must never approach the
	// shard's own size.
	slack := uint64(DefaultReshardTailBound + 2048)
	if st.ReshardTailReplayed > slack {
		t.Fatalf("in-lock tail replay = %d tuples; want <= %d (bound %d + race slack), shard had %d rows",
			st.ReshardTailReplayed, slack, DefaultReshardTailBound, rows)
	}
	if st.ReshardBuildMs <= 0 {
		t.Fatal("unlocked build phase recorded no wall time")
	}
	t.Logf("stall soak: %d tuples ingested under the split, %d pre-replayed over %d rounds, %d replayed in-lock, build %.2fms, barrier %.2fms",
		inserted.Load(), st.ReshardTailPrereplayed, st.ReshardCatchupRounds, st.ReshardTailReplayed, st.ReshardBuildMs, st.ReshardBarrierStallMs)
}
