package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"edgeauth/internal/storage"
)

func newPool(t testing.TB, pageSize, frames int) *storage.BufferPool {
	t.Helper()
	mem, err := storage.NewMemPager(pageSize)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := storage.NewBufferPool(mem, frames)
	if err != nil {
		t.Fatal(err)
	}
	return bp
}

func key(i int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return b[:]
}

func val(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

func TestEmptyTree(t *testing.T) {
	bp := newPool(t, 512, 64)
	tr, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	if _, found, err := tr.Search(key(1)); err != nil || found {
		t.Fatalf("Search on empty tree: found=%v err=%v", found, err)
	}
	calls := 0
	if err := tr.Range(nil, nil, func(k, v []byte) bool { calls++; return true }); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("Range on empty tree visited %d entries", calls)
	}
	if err := tr.Delete(key(1)); err != ErrKeyNotFound {
		t.Fatalf("Delete on empty tree: %v", err)
	}
}

func TestInsertSearchSequential(t *testing.T) {
	bp := newPool(t, 512, 256)
	tr, err := New(bp)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, found, err := tr.Search(key(i))
		if err != nil || !found {
			t.Fatalf("Search(%d): found=%v err=%v", i, found, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%d) = %q, want %q", i, v, val(i))
		}
	}
	if _, found, _ := tr.Search(key(n + 5)); found {
		t.Fatal("found a key that was never inserted")
	}
	st, err := tr.Stats(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != n {
		t.Fatalf("Stats.Entries = %d, want %d", st.Entries, n)
	}
	if st.Height < 2 {
		t.Fatalf("expected a multi-level tree, height = %d", st.Height)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	bp := newPool(t, 512, 256)
	tr, _ := New(bp)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(2000)
	for _, i := range perm {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("Insert(%d): %v", i, err)
		}
	}
	// Full-range scan must return all keys in order.
	var got []int
	if err := tr.Range(nil, nil, func(k, v []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2000 {
		t.Fatalf("scan returned %d keys", len(got))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatal("scan out of order")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	bp := newPool(t, 512, 64)
	tr, _ := New(bp)
	if err := tr.Insert(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(key(1), val(2)); err != ErrDuplicateKey {
		t.Fatalf("duplicate insert: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	bp := newPool(t, 512, 64)
	tr, _ := New(bp)
	if err := tr.Insert(nil, val(1)); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestOversizeEntryRejected(t *testing.T) {
	bp := newPool(t, 512, 64)
	tr, _ := New(bp)
	if err := tr.Insert(key(1), make([]byte, 4096)); err == nil {
		t.Fatal("oversize entry accepted")
	}
}

func TestRangeQueries(t *testing.T) {
	bp := newPool(t, 512, 256)
	tr, _ := New(bp)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(key(i*2), val(i*2)); err != nil { // even keys only
			t.Fatal(err)
		}
	}
	collect := func(lo, hi []byte) []int {
		var out []int
		if err := tr.Range(lo, hi, func(k, v []byte) bool {
			out = append(out, int(binary.BigEndian.Uint64(k)))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got := collect(key(10), key(20))
	want := []int{10, 12, 14, 16, 18, 20}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range [10,20] = %v, want %v", got, want)
	}
	// Bounds not present in the tree (odd keys).
	got = collect(key(11), key(19))
	want = []int{12, 14, 16, 18}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range [11,19] = %v, want %v", got, want)
	}
	// Open-ended ranges.
	if got := collect(nil, key(4)); fmt.Sprint(got) != fmt.Sprint([]int{0, 2, 4}) {
		t.Fatalf("range [nil,4] = %v", got)
	}
	if got := collect(key(994), nil); fmt.Sprint(got) != fmt.Sprint([]int{994, 996, 998}) {
		t.Fatalf("range [994,nil] = %v", got)
	}
	// Empty range.
	if got := collect(key(11), key(11)); len(got) != 0 {
		t.Fatalf("range [11,11] = %v, want empty", got)
	}
	// Early stop.
	count := 0
	if err := tr.Range(nil, nil, func(k, v []byte) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestDeleteBasic(t *testing.T) {
	bp := newPool(t, 512, 256)
	tr, _ := New(bp)
	for i := 0; i < 300; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i += 3 {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	for i := 0; i < 300; i++ {
		_, found, err := tr.Search(key(i))
		if err != nil {
			t.Fatal(err)
		}
		wantFound := i%3 != 0
		if found != wantFound {
			t.Fatalf("after delete, Search(%d) found=%v want %v", i, found, wantFound)
		}
	}
	if err := tr.Delete(key(0)); err != ErrKeyNotFound {
		t.Fatalf("re-delete: %v", err)
	}
}

func TestDeleteAllAndReinsert(t *testing.T) {
	bp := newPool(t, 512, 256)
	tr, _ := New(bp)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := tr.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	count := 0
	if err := tr.Range(nil, nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("tree not empty after deleting everything: %d entries", count)
	}
	// The tree must remain usable.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatalf("reinsert(%d): %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, found, _ := tr.Search(key(i)); !found {
			t.Fatalf("reinserted key %d missing", i)
		}
	}
}

func TestRandomizedAgainstMap(t *testing.T) {
	bp := newPool(t, 512, 512)
	tr, _ := New(bp)
	rng := rand.New(rand.NewSource(99))
	model := make(map[string]string)
	for op := 0; op < 3000; op++ {
		k := key(rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1: // insert
			v := val(rng.Intn(1 << 20))
			err := tr.Insert(k, v)
			if _, exists := model[string(k)]; exists {
				if err != ErrDuplicateKey {
					t.Fatalf("op %d: duplicate insert err = %v", op, err)
				}
			} else {
				if err != nil {
					t.Fatalf("op %d: insert: %v", op, err)
				}
				model[string(k)] = string(v)
			}
		case 2: // delete
			err := tr.Delete(k)
			if _, exists := model[string(k)]; exists {
				if err != nil {
					t.Fatalf("op %d: delete: %v", op, err)
				}
				delete(model, string(k))
			} else if err != ErrKeyNotFound {
				t.Fatalf("op %d: delete missing: %v", op, err)
			}
		}
	}
	// Final state must match the model exactly.
	seen := 0
	if err := tr.Range(nil, nil, func(k, v []byte) bool {
		seen++
		want, ok := model[string(k)]
		if !ok {
			t.Fatalf("tree has unexpected key %x", k)
		}
		if want != string(v) {
			t.Fatalf("key %x: value %q, want %q", k, v, want)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("tree has %d entries, model has %d", seen, len(model))
	}
}

func TestBulkLoadMatchesInserts(t *testing.T) {
	const n = 2000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		vals[i] = val(i)
	}
	bp := newPool(t, 512, 1024)
	tr, err := BulkLoad(bp, keys, vals, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 999, 1000, 1999} {
		v, found, err := tr.Search(key(i))
		if err != nil || !found {
			t.Fatalf("Search(%d): found=%v err=%v", i, found, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%d) wrong value", i)
		}
	}
	var got []int
	if err := tr.Range(key(500), key(510), func(k, v []byte) bool {
		got = append(got, int(binary.BigEndian.Uint64(k)))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 11 || got[0] != 500 || got[10] != 510 {
		t.Fatalf("bulk range = %v", got)
	}
	// Bulk-loaded tree accepts further inserts.
	if err := tr.Insert(key(n+1), val(n+1)); err != nil {
		t.Fatal(err)
	}
	if _, found, _ := tr.Search(key(n + 1)); !found {
		t.Fatal("insert after bulk load missing")
	}
}

func TestBulkLoadValidation(t *testing.T) {
	bp := newPool(t, 512, 64)
	if _, err := BulkLoad(bp, [][]byte{key(1)}, nil, 1.0); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := BulkLoad(bp, [][]byte{key(2), key(1)}, [][]byte{val(1), val(2)}, 1.0); err == nil {
		t.Fatal("unsorted keys accepted")
	}
	if _, err := BulkLoad(bp, [][]byte{key(1), key(1)}, [][]byte{val(1), val(2)}, 1.0); err == nil {
		t.Fatal("duplicate keys accepted")
	}
	if _, err := BulkLoad(bp, [][]byte{key(1)}, [][]byte{val(1)}, 1.5); err == nil {
		t.Fatal("fill factor > 1 accepted")
	}
	// Empty bulk load yields a working empty tree.
	tr, err := BulkLoad(bp, nil, nil, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(key(1), val(1)); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadFillFactor(t *testing.T) {
	const n = 1000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		vals[i] = val(i)
	}
	full, err := BulkLoad(newPool(t, 512, 1024), keys, vals, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	half, err := BulkLoad(newPool(t, 512, 1024), keys, vals, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sf, _ := full.Stats(8, 10)
	sh, _ := half.Stats(8, 10)
	if sh.LeafNodes <= sf.LeafNodes {
		t.Fatalf("half-fill leaves (%d) should exceed full-fill leaves (%d)", sh.LeafNodes, sf.LeafNodes)
	}
}

func TestSaveLoadRoot(t *testing.T) {
	bp := newPool(t, 512, 64)
	tr, _ := New(bp)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.SaveRoot(); err != nil {
		t.Fatal(err)
	}
	root, err := LoadRoot(bp)
	if err != nil {
		t.Fatal(err)
	}
	re := Open(bp, root)
	if _, found, _ := re.Search(key(77)); !found {
		t.Fatal("reopened tree missing key")
	}
	// LoadRoot with no metadata.
	bp2 := newPool(t, 512, 8)
	if _, err := LoadRoot(bp2); err == nil {
		t.Fatal("LoadRoot with no metadata succeeded")
	}
}

func TestFanOutFormulas(t *testing.T) {
	// Fan-out must decrease monotonically with key size and match the
	// byte-capacity arithmetic.
	prev := 1 << 30
	for _, kl := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		f := MaxInternalFanOut(4096, kl)
		if f <= 1 {
			t.Fatalf("fan-out %d for key length %d", f, kl)
		}
		if f > prev {
			t.Fatalf("fan-out grew with key size at %d", kl)
		}
		prev = f
	}
	if got := MaxLeafEntries(4096, 8, 6); got != (4096-leafHeader)/(2+8+2+6) {
		t.Fatalf("MaxLeafEntries = %d", got)
	}
}

func TestCompareTotalOrder(t *testing.T) {
	f := func(a, b []byte) bool {
		c1 := compare(a, b)
		c2 := compare(b, a)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsHeightGrowsWithSize(t *testing.T) {
	mkTree := func(n int) Stats {
		keys := make([][]byte, n)
		vals := make([][]byte, n)
		for i := 0; i < n; i++ {
			keys[i] = key(i)
			vals[i] = val(i)
		}
		tr, err := BulkLoad(newPool(t, 512, 4096), keys, vals, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		st, err := tr.Stats(8, 10)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	small := mkTree(50)
	large := mkTree(5000)
	if large.Height <= small.Height {
		t.Fatalf("height did not grow: %d -> %d", small.Height, large.Height)
	}
	if large.AvgInternalFanOut <= 1 {
		t.Fatalf("average fan-out = %v", large.AvgInternalFanOut)
	}
}

func BenchmarkInsert(b *testing.B) {
	bp := newPool(b, 4096, 4096)
	tr, _ := New(bp)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	bp := newPool(b, 4096, 4096)
	const n = 100000
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = key(i)
		vals[i] = val(i)
	}
	tr, err := BulkLoad(bp, keys, vals, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, found, err := tr.Search(key(i % n)); err != nil || !found {
			b.Fatal("search failed")
		}
	}
}
