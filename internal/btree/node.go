// Package btree implements a page-based B+-tree over the storage layer.
// It is the classic index the paper compares against in Figures 8–9
// (fan-out and height versus key length) and the structural skeleton that
// the VB-tree extends with signed digests.
//
// Keys are opaque byte strings compared lexicographically; callers use the
// order-preserving encodings from package schema. Values are opaque
// payloads stored in the leaves. Keys are unique (the tree indexes a
// primary key).
//
// Deletion follows the policy the paper adopts from Johnson & Shasha:
// nodes are not rebalanced at half-occupancy; a node is detached only when
// it becomes empty.
package btree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"edgeauth/internal/storage"
)

// Node serialization (inside a storage page):
//
//	leaf:     type(1) | next(4) | count(2) | { keyLen(2) key valLen(2) val }*
//	internal: type(1) | count(2) | child0(4) | { keyLen(2) key child(4) }*
//
// An internal node with count=k has k separator keys and k+1 children;
// child i+1 holds keys >= key i.
const (
	leafHeader     = 1 + 4 + 2
	internalHeader = 1 + 2 + 4
)

// leafNode is the decoded form of a leaf page.
type leafNode struct {
	next storage.PageID
	keys [][]byte
	vals [][]byte
}

// internalNode is the decoded form of an internal page.
type internalNode struct {
	keys     [][]byte
	children []storage.PageID // len(keys)+1
}

func decodeLeaf(buf []byte) (*leafNode, error) {
	if storage.PageType(buf[0]) != storage.PageBTreeLeaf {
		return nil, fmt.Errorf("btree: page is %d, not a leaf", buf[0])
	}
	n := &leafNode{next: storage.PageID(binary.BigEndian.Uint32(buf[1:5]))}
	count := int(binary.BigEndian.Uint16(buf[5:7]))
	off := leafHeader
	n.keys = make([][]byte, count)
	n.vals = make([][]byte, count)
	for i := 0; i < count; i++ {
		if off+2 > len(buf) {
			return nil, fmt.Errorf("btree: leaf entry %d truncated", i)
		}
		kl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+kl+2 > len(buf) {
			return nil, fmt.Errorf("btree: leaf key %d truncated", i)
		}
		n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
		off += kl
		vl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+vl > len(buf) {
			return nil, fmt.Errorf("btree: leaf value %d truncated", i)
		}
		n.vals[i] = append([]byte(nil), buf[off:off+vl]...)
		off += vl
	}
	return n, nil
}

func (n *leafNode) encodedSize() int {
	sz := leafHeader
	for i := range n.keys {
		sz += 2 + len(n.keys[i]) + 2 + len(n.vals[i])
	}
	return sz
}

func (n *leafNode) encode(buf []byte) error {
	if n.encodedSize() > len(buf) {
		return fmt.Errorf("btree: leaf of %d bytes exceeds page size %d", n.encodedSize(), len(buf))
	}
	buf[0] = byte(storage.PageBTreeLeaf)
	binary.BigEndian.PutUint32(buf[1:5], uint32(n.next))
	binary.BigEndian.PutUint16(buf[5:7], uint16(len(n.keys)))
	off := leafHeader
	for i := range n.keys {
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.keys[i])))
		off += 2
		copy(buf[off:], n.keys[i])
		off += len(n.keys[i])
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.vals[i])))
		off += 2
		copy(buf[off:], n.vals[i])
		off += len(n.vals[i])
	}
	for ; off < len(buf); off++ {
		buf[off] = 0
	}
	return nil
}

// search returns the index of the first key >= k.
func (n *leafNode) search(k []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return compare(n.keys[i], k) >= 0
	})
}

func decodeInternal(buf []byte) (*internalNode, error) {
	if storage.PageType(buf[0]) != storage.PageBTreeInternal {
		return nil, fmt.Errorf("btree: page is %d, not internal", buf[0])
	}
	count := int(binary.BigEndian.Uint16(buf[1:3]))
	n := &internalNode{
		keys:     make([][]byte, count),
		children: make([]storage.PageID, count+1),
	}
	n.children[0] = storage.PageID(binary.BigEndian.Uint32(buf[3:7]))
	off := internalHeader
	for i := 0; i < count; i++ {
		if off+2 > len(buf) {
			return nil, fmt.Errorf("btree: internal entry %d truncated", i)
		}
		kl := int(binary.BigEndian.Uint16(buf[off : off+2]))
		off += 2
		if off+kl+4 > len(buf) {
			return nil, fmt.Errorf("btree: internal key %d truncated", i)
		}
		n.keys[i] = append([]byte(nil), buf[off:off+kl]...)
		off += kl
		n.children[i+1] = storage.PageID(binary.BigEndian.Uint32(buf[off : off+4]))
		off += 4
	}
	return n, nil
}

func (n *internalNode) encodedSize() int {
	sz := internalHeader
	for i := range n.keys {
		sz += 2 + len(n.keys[i]) + 4
	}
	return sz
}

func (n *internalNode) encode(buf []byte) error {
	if n.encodedSize() > len(buf) {
		return fmt.Errorf("btree: internal node of %d bytes exceeds page size %d", n.encodedSize(), len(buf))
	}
	buf[0] = byte(storage.PageBTreeInternal)
	binary.BigEndian.PutUint16(buf[1:3], uint16(len(n.keys)))
	binary.BigEndian.PutUint32(buf[3:7], uint32(n.children[0]))
	off := internalHeader
	for i := range n.keys {
		binary.BigEndian.PutUint16(buf[off:off+2], uint16(len(n.keys[i])))
		off += 2
		copy(buf[off:], n.keys[i])
		off += len(n.keys[i])
		binary.BigEndian.PutUint32(buf[off:off+4], uint32(n.children[i+1]))
		off += 4
	}
	for ; off < len(buf); off++ {
		buf[off] = 0
	}
	return nil
}

// childIndex returns which child to descend into for key k:
// the child after the last separator <= k.
func (n *internalNode) childIndex(k []byte) int {
	return sort.Search(len(n.keys), func(i int) bool {
		return compare(n.keys[i], k) > 0
	})
}

func compare(a, b []byte) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
