package btree

import (
	"errors"
	"fmt"

	"edgeauth/internal/storage"
)

// BulkLoad builds a tree from keys/values already sorted in strictly
// increasing key order. fill in (0,1] controls node occupancy (1 = fully
// packed, the paper's analytic assumption). It is far cheaper than
// repeated Insert and is used to build the measurement tables for the
// fan-out/height experiments.
func BulkLoad(bp *storage.BufferPool, keys, vals [][]byte, fill float64) (*Tree, error) {
	if len(keys) != len(vals) {
		return nil, fmt.Errorf("btree: %d keys but %d values", len(keys), len(vals))
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("btree: fill factor %v out of (0,1]", fill)
	}
	for i := 1; i < len(keys); i++ {
		if compare(keys[i-1], keys[i]) >= 0 {
			return nil, fmt.Errorf("btree: keys not strictly increasing at %d", i)
		}
	}
	if len(keys) == 0 {
		return New(bp)
	}
	pageSize := bp.PageSize()
	leafBudget := int(float64(pageSize) * fill)
	if leafBudget < leafHeader+1 {
		leafBudget = pageSize
	}

	// Level 0: pack leaves.
	type built struct {
		id       storage.PageID
		firstKey []byte
	}
	var leaves []built
	var cur leafNode
	curSize := leafHeader
	flushLeaf := func() error {
		f, err := bp.NewPage(storage.PageBTreeLeaf)
		if err != nil {
			return err
		}
		if err := cur.encode(f.Page().Bytes()); err != nil {
			bp.Unpin(f, false)
			return err
		}
		leaves = append(leaves, built{id: f.ID(), firstKey: cur.keys[0]})
		bp.Unpin(f, true)
		cur = leafNode{}
		curSize = leafHeader
		return nil
	}
	for i := range keys {
		entry := 2 + len(keys[i]) + 2 + len(vals[i])
		if leafHeader+entry > pageSize {
			return nil, fmt.Errorf("btree: entry %d of %d bytes exceeds page size", i, entry)
		}
		if len(cur.keys) > 0 && (curSize+entry > leafBudget || curSize+entry > pageSize) {
			if err := flushLeaf(); err != nil {
				return nil, err
			}
		}
		cur.keys = append(cur.keys, keys[i])
		cur.vals = append(cur.vals, vals[i])
		curSize += entry
	}
	if len(cur.keys) > 0 {
		if err := flushLeaf(); err != nil {
			return nil, err
		}
	}
	// Chain the leaves.
	for i := 0; i < len(leaves)-1; i++ {
		f, err := bp.Fetch(leaves[i].id)
		if err != nil {
			return nil, err
		}
		n, err := decodeLeaf(f.Page().Bytes())
		if err != nil {
			bp.Unpin(f, false)
			return nil, err
		}
		n.next = leaves[i+1].id
		if err := n.encode(f.Page().Bytes()); err != nil {
			bp.Unpin(f, false)
			return nil, err
		}
		bp.Unpin(f, true)
	}

	// Upper levels: pack internal nodes until one root remains.
	level := leaves
	internalBudget := int(float64(pageSize) * fill)
	if internalBudget < internalHeader+1 {
		internalBudget = pageSize
	}
	for len(level) > 1 {
		var next []built
		var node internalNode
		nodeSize := internalHeader
		var nodeFirst []byte
		flushInternal := func() error {
			f, err := bp.NewPage(storage.PageBTreeInternal)
			if err != nil {
				return err
			}
			if err := node.encode(f.Page().Bytes()); err != nil {
				bp.Unpin(f, false)
				return err
			}
			next = append(next, built{id: f.ID(), firstKey: nodeFirst})
			bp.Unpin(f, true)
			node = internalNode{}
			nodeSize = internalHeader
			nodeFirst = nil
			return nil
		}
		for _, child := range level {
			if len(node.children) == 0 {
				node.children = []storage.PageID{child.id}
				nodeFirst = child.firstKey
				continue
			}
			entry := 2 + len(child.firstKey) + 4
			if nodeSize+entry > internalBudget || nodeSize+entry > pageSize {
				if err := flushInternal(); err != nil {
					return nil, err
				}
				node.children = []storage.PageID{child.id}
				nodeFirst = child.firstKey
				continue
			}
			node.keys = append(node.keys, child.firstKey)
			node.children = append(node.children, child.id)
			nodeSize += entry
		}
		if len(node.children) > 0 {
			if err := flushInternal(); err != nil {
				return nil, err
			}
		}
		if len(next) >= len(level) {
			return nil, errors.New("btree: bulk load failed to reduce level")
		}
		level = next
	}
	return &Tree{bp: bp, root: level[0].id}, nil
}
