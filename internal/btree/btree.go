package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"edgeauth/internal/storage"
)

// ErrDuplicateKey is returned by Insert for a key that is already present.
var ErrDuplicateKey = errors.New("btree: duplicate key")

// ErrKeyNotFound is returned by Delete for an absent key.
var ErrKeyNotFound = errors.New("btree: key not found")

// Tree is a B+-tree over a buffer pool. Safe for concurrent readers; a
// single writer must be externally serialized with respect to readers
// (the central server's lock manager does this for the VB-tree; the plain
// tree mirrors the contract and additionally carries an RWMutex).
type Tree struct {
	mu   sync.RWMutex
	bp   *storage.BufferPool
	root storage.PageID
}

// New creates an empty tree whose root is a fresh leaf.
func New(bp *storage.BufferPool) (*Tree, error) {
	f, err := bp.NewPage(storage.PageBTreeLeaf)
	if err != nil {
		return nil, err
	}
	leaf := &leafNode{}
	if err := leaf.encode(f.Page().Bytes()); err != nil {
		bp.Unpin(f, false)
		return nil, err
	}
	root := f.ID()
	bp.Unpin(f, true)
	return &Tree{bp: bp, root: root}, nil
}

// Open reattaches to a tree rooted at root.
func Open(bp *storage.BufferPool, root storage.PageID) *Tree {
	return &Tree{bp: bp, root: root}
}

// Root returns the current root page id (persist it in pager metadata).
func (t *Tree) Root() storage.PageID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.root
}

// Search returns the value stored under key, or found=false.
func (t *Tree) Search(key []byte) (val []byte, found bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	for {
		f, err := t.bp.Fetch(pid)
		if err != nil {
			return nil, false, err
		}
		buf := f.Page().Bytes()
		switch storage.PageType(buf[0]) {
		case storage.PageBTreeInternal:
			n, err := decodeInternal(buf)
			t.bp.Unpin(f, false)
			if err != nil {
				return nil, false, err
			}
			pid = n.children[n.childIndex(key)]
		case storage.PageBTreeLeaf:
			n, err := decodeLeaf(buf)
			t.bp.Unpin(f, false)
			if err != nil {
				return nil, false, err
			}
			i := n.search(key)
			if i < len(n.keys) && compare(n.keys[i], key) == 0 {
				return n.vals[i], true, nil
			}
			return nil, false, nil
		default:
			t.bp.Unpin(f, false)
			return nil, false, fmt.Errorf("btree: unexpected page type %d at %d", buf[0], pid)
		}
	}
}

// Range calls fn for every (key, value) with lo <= key <= hi in key order.
// Iteration stops early when fn returns false. Nil lo means from the
// smallest key; nil hi means to the largest.
func (t *Tree) Range(lo, hi []byte, fn func(key, val []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	pid := t.root
	// Descend to the leaf that would contain lo.
	for {
		f, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		buf := f.Page().Bytes()
		if storage.PageType(buf[0]) != storage.PageBTreeInternal {
			t.bp.Unpin(f, false)
			break
		}
		n, err := decodeInternal(buf)
		t.bp.Unpin(f, false)
		if err != nil {
			return err
		}
		if lo == nil {
			pid = n.children[0]
		} else {
			pid = n.children[n.childIndex(lo)]
		}
	}
	// Walk the leaf chain.
	for pid != storage.InvalidPageID {
		f, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		n, err := decodeLeaf(f.Page().Bytes())
		t.bp.Unpin(f, false)
		if err != nil {
			return err
		}
		start := 0
		if lo != nil {
			start = n.search(lo)
		}
		for i := start; i < len(n.keys); i++ {
			if hi != nil && compare(n.keys[i], hi) > 0 {
				return nil
			}
			if !fn(n.keys[i], n.vals[i]) {
				return nil
			}
		}
		pid = n.next
	}
	return nil
}

// splitResult propagates a child split to the parent.
type splitResult struct {
	sep   []byte
	right storage.PageID
}

// Insert adds a key/value pair; ErrDuplicateKey if present.
func (t *Tree) Insert(key, val []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	maxEntry := leafHeader + 2 + len(key) + 2 + len(val)
	if maxEntry > t.bp.PageSize() {
		return fmt.Errorf("btree: entry of %d bytes exceeds page size", maxEntry)
	}
	split, err := t.insertAt(t.root, key, val)
	if err != nil {
		return err
	}
	if split != nil {
		if err := t.growRoot(split); err != nil {
			return err
		}
	}
	return nil
}

// growRoot replaces the root with a new internal node over (oldRoot, split).
func (t *Tree) growRoot(split *splitResult) error {
	f, err := t.bp.NewPage(storage.PageBTreeInternal)
	if err != nil {
		return err
	}
	n := &internalNode{
		keys:     [][]byte{split.sep},
		children: []storage.PageID{t.root, split.right},
	}
	if err := n.encode(f.Page().Bytes()); err != nil {
		t.bp.Unpin(f, false)
		return err
	}
	t.root = f.ID()
	t.bp.Unpin(f, true)
	return nil
}

func (t *Tree) insertAt(pid storage.PageID, key, val []byte) (*splitResult, error) {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return nil, err
	}
	buf := f.Page().Bytes()
	switch storage.PageType(buf[0]) {
	case storage.PageBTreeLeaf:
		n, err := decodeLeaf(buf)
		if err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		i := n.search(key)
		if i < len(n.keys) && compare(n.keys[i], key) == 0 {
			t.bp.Unpin(f, false)
			return nil, ErrDuplicateKey
		}
		n.keys = insertBytes(n.keys, i, key)
		n.vals = insertBytes(n.vals, i, val)
		if n.encodedSize() <= len(buf) {
			if err := n.encode(buf); err != nil {
				t.bp.Unpin(f, false)
				return nil, err
			}
			t.bp.Unpin(f, true)
			return nil, nil
		}
		// Split: right half moves to a new leaf.
		mid := len(n.keys) / 2
		rf, err := t.bp.NewPage(storage.PageBTreeLeaf)
		if err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		right := &leafNode{
			next: n.next,
			keys: append([][]byte(nil), n.keys[mid:]...),
			vals: append([][]byte(nil), n.vals[mid:]...),
		}
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		n.next = rf.ID()
		if err := right.encode(rf.Page().Bytes()); err != nil {
			t.bp.Unpin(rf, false)
			t.bp.Unpin(f, false)
			return nil, err
		}
		if err := n.encode(buf); err != nil {
			t.bp.Unpin(rf, false)
			t.bp.Unpin(f, false)
			return nil, err
		}
		sep := append([]byte(nil), right.keys[0]...)
		res := &splitResult{sep: sep, right: rf.ID()}
		t.bp.Unpin(rf, true)
		t.bp.Unpin(f, true)
		return res, nil

	case storage.PageBTreeInternal:
		n, err := decodeInternal(buf)
		if err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		ci := n.childIndex(key)
		child := n.children[ci]
		t.bp.Unpin(f, false) // re-fetched after the child settles
		split, err := t.insertAt(child, key, val)
		if err != nil {
			return nil, err
		}
		if split == nil {
			return nil, nil
		}
		f, err = t.bp.Fetch(pid)
		if err != nil {
			return nil, err
		}
		buf = f.Page().Bytes()
		n, err = decodeInternal(buf)
		if err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		ci = n.childIndex(split.sep)
		n.keys = insertBytes(n.keys, ci, split.sep)
		n.children = insertPageID(n.children, ci+1, split.right)
		if n.encodedSize() <= len(buf) {
			if err := n.encode(buf); err != nil {
				t.bp.Unpin(f, false)
				return nil, err
			}
			t.bp.Unpin(f, true)
			return nil, nil
		}
		// Split internal node: middle key moves up.
		mid := len(n.keys) / 2
		upKey := append([]byte(nil), n.keys[mid]...)
		rf, err := t.bp.NewPage(storage.PageBTreeInternal)
		if err != nil {
			t.bp.Unpin(f, false)
			return nil, err
		}
		right := &internalNode{
			keys:     append([][]byte(nil), n.keys[mid+1:]...),
			children: append([]storage.PageID(nil), n.children[mid+1:]...),
		}
		n.keys = n.keys[:mid]
		n.children = n.children[:mid+1]
		if err := right.encode(rf.Page().Bytes()); err != nil {
			t.bp.Unpin(rf, false)
			t.bp.Unpin(f, false)
			return nil, err
		}
		if err := n.encode(buf); err != nil {
			t.bp.Unpin(rf, false)
			t.bp.Unpin(f, false)
			return nil, err
		}
		res := &splitResult{sep: upKey, right: rf.ID()}
		t.bp.Unpin(rf, true)
		t.bp.Unpin(f, true)
		return res, nil

	default:
		t.bp.Unpin(f, false)
		return nil, fmt.Errorf("btree: unexpected page type %d at %d", buf[0], pid)
	}
}

// Delete removes a key. Nodes are detached only when empty (the paper's
// Johnson–Shasha policy); the root collapses when an internal root has a
// single child left.
func (t *Tree) Delete(key []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	emptied, err := t.deleteAt(t.root, key)
	if err != nil {
		return err
	}
	_ = emptied // an emptied root leaf simply stays as the empty tree
	// Collapse trivial internal roots.
	for {
		f, err := t.bp.Fetch(t.root)
		if err != nil {
			return err
		}
		buf := f.Page().Bytes()
		if storage.PageType(buf[0]) != storage.PageBTreeInternal {
			t.bp.Unpin(f, false)
			return nil
		}
		n, err := decodeInternal(buf)
		t.bp.Unpin(f, false)
		if err != nil {
			return err
		}
		if len(n.keys) > 0 {
			return nil
		}
		t.root = n.children[0]
	}
}

// deleteAt removes key under pid; reports whether the node became empty.
func (t *Tree) deleteAt(pid storage.PageID, key []byte) (bool, error) {
	f, err := t.bp.Fetch(pid)
	if err != nil {
		return false, err
	}
	buf := f.Page().Bytes()
	switch storage.PageType(buf[0]) {
	case storage.PageBTreeLeaf:
		n, err := decodeLeaf(buf)
		if err != nil {
			t.bp.Unpin(f, false)
			return false, err
		}
		i := n.search(key)
		if i >= len(n.keys) || compare(n.keys[i], key) != 0 {
			t.bp.Unpin(f, false)
			return false, ErrKeyNotFound
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		if err := n.encode(buf); err != nil {
			t.bp.Unpin(f, false)
			return false, err
		}
		empty := len(n.keys) == 0
		t.bp.Unpin(f, true)
		return empty, nil

	case storage.PageBTreeInternal:
		n, err := decodeInternal(buf)
		if err != nil {
			t.bp.Unpin(f, false)
			return false, err
		}
		ci := n.childIndex(key)
		child := n.children[ci]
		t.bp.Unpin(f, false)
		emptied, err := t.deleteAt(child, key)
		if err != nil {
			return false, err
		}
		if !emptied {
			return false, nil
		}
		// Detach the emptied child (leaf chains may retain a stale next
		// pointer into it, so the page itself stays allocated but empty;
		// scans skip it naturally because it has no entries).
		f, err = t.bp.Fetch(pid)
		if err != nil {
			return false, err
		}
		buf = f.Page().Bytes()
		n, err = decodeInternal(buf)
		if err != nil {
			t.bp.Unpin(f, false)
			return false, err
		}
		ci = -1
		for i, c := range n.children {
			if c == child {
				ci = i
				break
			}
		}
		if ci < 0 { // child already detached by a concurrent structural fix
			t.bp.Unpin(f, false)
			return false, nil
		}
		// Only detach leaves: an empty leaf has no entries to lose. An
		// "emptied" internal child cannot occur because we only report
		// empty upward for leaves, and internal nodes keep >= 1 child.
		cf, err := t.bp.Fetch(child)
		if err != nil {
			t.bp.Unpin(f, false)
			return false, err
		}
		childIsLeaf := storage.PageType(cf.Page().Bytes()[0]) == storage.PageBTreeLeaf
		t.bp.Unpin(cf, false)
		if !childIsLeaf {
			t.bp.Unpin(f, false)
			return false, nil
		}
		if len(n.children) == 1 {
			// Last child of this internal node; report empty upward and
			// let the parent detach us. Keep the child in place.
			t.bp.Unpin(f, false)
			return false, nil
		}
		if ci == 0 {
			n.children = n.children[1:]
			n.keys = n.keys[1:]
		} else {
			n.children = append(n.children[:ci], n.children[ci+1:]...)
			n.keys = append(n.keys[:ci-1], n.keys[ci:]...)
		}
		if err := n.encode(buf); err != nil {
			t.bp.Unpin(f, false)
			return false, err
		}
		t.bp.Unpin(f, true)
		return false, nil

	default:
		t.bp.Unpin(f, false)
		return false, fmt.Errorf("btree: unexpected page type %d at %d", buf[0], pid)
	}
}

// Stats describes the tree's shape, for the Figure 8–9 measurements.
type Stats struct {
	Height        int // levels including the leaf level
	InternalNodes int
	LeafNodes     int
	Entries       int
	// AvgInternalFanOut is children per internal node, averaged.
	AvgInternalFanOut float64
	// MaxLeafEntries/MaxInternalFanOut are the byte-capacity bounds for
	// the given key/value lengths (the analytic fan-out of Figure 8).
	MaxLeafEntries    int
	MaxInternalFanOut int
}

// Stats walks the whole tree. keyLen/valLen parameterize the capacity
// bounds reported alongside the measured shape.
func (t *Tree) Stats(keyLen, valLen int) (Stats, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{
		MaxLeafEntries:    MaxLeafEntries(t.bp.PageSize(), keyLen, valLen),
		MaxInternalFanOut: MaxInternalFanOut(t.bp.PageSize(), keyLen),
	}
	var totalChildren int
	var walk func(pid storage.PageID, depth int) error
	walk = func(pid storage.PageID, depth int) error {
		f, err := t.bp.Fetch(pid)
		if err != nil {
			return err
		}
		buf := f.Page().Bytes()
		switch storage.PageType(buf[0]) {
		case storage.PageBTreeLeaf:
			n, err := decodeLeaf(buf)
			t.bp.Unpin(f, false)
			if err != nil {
				return err
			}
			s.LeafNodes++
			s.Entries += len(n.keys)
			if depth+1 > s.Height {
				s.Height = depth + 1
			}
			return nil
		case storage.PageBTreeInternal:
			n, err := decodeInternal(buf)
			t.bp.Unpin(f, false)
			if err != nil {
				return err
			}
			s.InternalNodes++
			totalChildren += len(n.children)
			for _, c := range n.children {
				if err := walk(c, depth+1); err != nil {
					return err
				}
			}
			return nil
		default:
			t.bp.Unpin(f, false)
			return fmt.Errorf("btree: unexpected page type %d", buf[0])
		}
	}
	if err := walk(t.root, 0); err != nil {
		return Stats{}, err
	}
	if s.InternalNodes > 0 {
		s.AvgInternalFanOut = float64(totalChildren) / float64(s.InternalNodes)
	}
	return s, nil
}

// MaxLeafEntries returns how many fixed-size entries fit a leaf page.
func MaxLeafEntries(pageSize, keyLen, valLen int) int {
	return (pageSize - leafHeader) / (2 + keyLen + 2 + valLen)
}

// MaxInternalFanOut returns the analytic B-tree fan-out of the paper's
// formula: children per internal node for fixed-size keys — this is the
// "B-tree" series of Figure 8.
func MaxInternalFanOut(pageSize, keyLen int) int {
	// internalHeader already includes one child pointer; each additional
	// (key, child) entry costs 2+keyLen+4 bytes.
	return 1 + (pageSize-internalHeader)/(2+keyLen+4)
}

func insertBytes(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = append([]byte(nil), v...)
	return s
}

func insertPageID(s []storage.PageID, i int, v storage.PageID) []storage.PageID {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// metaKey formats for persisting roots in pager metadata.
const metaFmt = "btree.root=%d"

// SaveRoot writes the root id into the pager metadata.
func (t *Tree) SaveRoot() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(t.root))
	return t.bp.Pager().SetMeta(b[:])
}

// LoadRoot reads a root id previously written by SaveRoot.
func LoadRoot(bp *storage.BufferPool) (storage.PageID, error) {
	meta, err := bp.Pager().Meta()
	if err != nil {
		return 0, err
	}
	if len(meta) < 8 {
		return 0, errors.New("btree: no saved root in pager metadata")
	}
	return storage.PageID(binary.BigEndian.Uint64(meta[:8])), nil
}
