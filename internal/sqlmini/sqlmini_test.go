package sqlmini

import (
	"testing"

	"edgeauth/internal/query"
	"edgeauth/internal/schema"
)

func TestParseSelectStar(t *testing.T) {
	st, err := Parse("SELECT * FROM items")
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if sel.Columns != nil || sel.Table != "items" || sel.Where != nil {
		t.Fatalf("parsed: %+v", sel)
	}
}

func TestParseSelectColumnsAndWhere(t *testing.T) {
	st, err := Parse("select id, cat FROM items WHERE id >= 10 AND id <= 20 AND cat = 'tools'")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if len(sel.Columns) != 2 || sel.Columns[1] != "cat" {
		t.Fatalf("columns = %v", sel.Columns)
	}
	if len(sel.Where) != 3 {
		t.Fatalf("where = %v", sel.Where)
	}
	if sel.Where[0].Op != query.OpGE || !sel.Where[0].Value.Equal(schema.Int64(10)) {
		t.Fatalf("pred 0 = %v", sel.Where[0])
	}
	if sel.Where[2].Column != "cat" || !sel.Where[2].Value.Equal(schema.Str("tools")) {
		t.Fatalf("pred 2 = %v", sel.Where[2])
	}
}

func TestParseOperators(t *testing.T) {
	ops := map[string]query.Op{
		"=": query.OpEQ, "!=": query.OpNE, "<>": query.OpNE,
		"<": query.OpLT, "<=": query.OpLE, ">": query.OpGT, ">=": query.OpGE,
	}
	for sym, want := range ops {
		st, err := Parse("SELECT * FROM t WHERE x " + sym + " 5")
		if err != nil {
			t.Fatalf("%s: %v", sym, err)
		}
		got := st.(*SelectStmt).Where[0].Op
		if got != want {
			t.Errorf("%s parsed as %v, want %v", sym, got, want)
		}
	}
}

func TestParseLiterals(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (42, -7, 3.5, 'it''s here')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if len(ins.Rows) != 1 {
		t.Fatalf("rows = %v", ins.Rows)
	}
	want := []schema.Datum{
		schema.Int64(42), schema.Int64(-7), schema.Float64(3.5), schema.Str("it's here"),
	}
	if len(ins.Rows[0]) != len(want) {
		t.Fatalf("values = %v", ins.Rows[0])
	}
	for i := range want {
		if !ins.Rows[0][i].Equal(want[i]) {
			t.Errorf("value %d = %v, want %v", i, ins.Rows[0][i], want[i])
		}
	}
}

func TestParseMultiRowInsert(t *testing.T) {
	st, err := Parse("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c');")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 3 {
		t.Fatalf("parsed %+v", ins)
	}
	for i, wantID := range []int64{1, 2, 3} {
		if len(ins.Rows[i]) != 2 || !ins.Rows[i][0].Equal(schema.Int64(wantID)) {
			t.Fatalf("row %d = %v", i, ins.Rows[i])
		}
	}
	// Ragged rows parse (arity is checked at bind time, per schema).
	if _, err := Parse("INSERT INTO t VALUES (1, 'a'), (2)"); err != nil {
		t.Fatalf("ragged multi-row insert rejected at parse time: %v", err)
	}
	// Malformed lists do not.
	for _, bad := range []string{
		"INSERT INTO t VALUES (1, 'a'),",
		"INSERT INTO t VALUES (1, 'a') (2, 'b')",
		"INSERT INTO t VALUES",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("%q parsed", bad)
		}
	}
}

func TestParseDelete(t *testing.T) {
	st, err := Parse("DELETE FROM items WHERE id >= 5 AND id <= 10;")
	if err != nil {
		t.Fatal(err)
	}
	del := st.(*DeleteStmt)
	if del.Table != "items" || len(del.Where) != 2 {
		t.Fatalf("parsed: %+v", del)
	}
	// Unconditional delete parses too.
	st2, err := Parse("DELETE FROM items")
	if err != nil {
		t.Fatal(err)
	}
	if st2.(*DeleteStmt).Where != nil {
		t.Fatal("phantom where clause")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"DROP TABLE x",
		"SELECT FROM x",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE x",
		"SELECT * FROM t WHERE x ==",
		"SELECT * FROM t WHERE x = ",
		"SELECT * FROM t extra",
		"INSERT INTO t VALUES 1",
		"INSERT INTO t VALUES (1",
		"INSERT t VALUES (1)",
		"SELECT * FROM t WHERE x = 'unterminated",
		"SELECT * FROM t WHERE x = 5 AND",
		"SELECT a,, b FROM t",
		"SELECT * FROM t WHERE x @ 5",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted: %q", q)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse("sElEcT * fRoM t wHeRe x = 1 AnD y = 2"); err != nil {
		t.Fatal(err)
	}
}

func testSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "db",
		Table: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "price", Type: schema.TypeFloat64},
			{Name: "name", Type: schema.TypeString},
			{Name: "blob", Type: schema.TypeBytes},
		},
		Key: 0,
	}
}

func TestBindPredicates(t *testing.T) {
	sch := testSchema()
	preds := []query.Predicate{
		{Column: "price", Op: query.OpGT, Value: schema.Int64(5)}, // widened
		{Column: "id", Op: query.OpEQ, Value: schema.Int64(1)},
	}
	bound, err := BindPredicates(sch, preds)
	if err != nil {
		t.Fatal(err)
	}
	if bound[0].Value.Type != schema.TypeFloat64 || bound[0].Value.F != 5 {
		t.Fatalf("widening failed: %v", bound[0].Value)
	}
	if _, err := BindPredicates(sch, []query.Predicate{{Column: "ghost", Op: query.OpEQ, Value: schema.Int64(1)}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := BindPredicates(sch, []query.Predicate{{Column: "id", Op: query.OpEQ, Value: schema.Str("x")}}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestBindValues(t *testing.T) {
	sch := testSchema()
	tup, err := BindValues(sch, []schema.Datum{
		schema.Int64(1), schema.Int64(10), schema.Str("n"), schema.Str("payload"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if tup.Values[1].Type != schema.TypeFloat64 {
		t.Fatal("int not widened to float")
	}
	if tup.Values[3].Type != schema.TypeBytes {
		t.Fatal("string not coerced to bytes")
	}
	if _, err := BindValues(sch, []schema.Datum{schema.Int64(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := BindValues(sch, []schema.Datum{
		schema.Str("x"), schema.Int64(1), schema.Str("n"), schema.Str("b"),
	}); err == nil {
		t.Fatal("type mismatch accepted")
	}
}

func TestLexerEdgeCases(t *testing.T) {
	toks, err := lex("a<=b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 || toks[1].text != "<=" {
		t.Fatalf("tokens: %+v", toks)
	}
	if _, err := lex("price = 3.5.1"); err != nil {
		// "3.5.1" lexes as number 3.5 then symbol error on '.'; either way
		// the parser rejects it — but the lexer must not panic.
		t.Logf("lex error (acceptable): %v", err)
	}
	if _, err := lex("#"); err == nil {
		t.Fatal("bad character accepted")
	}
}

func TestParseBetween(t *testing.T) {
	st, err := Parse("SELECT * FROM items WHERE id BETWEEN 10 AND 20 AND cat = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	if len(sel.Where) != 3 {
		t.Fatalf("BETWEEN expanded to %d predicates: %v", len(sel.Where), sel.Where)
	}
	if sel.Where[0].Op != query.OpGE || !sel.Where[0].Value.Equal(schema.Int64(10)) {
		t.Fatalf("lo predicate = %v", sel.Where[0])
	}
	if sel.Where[1].Op != query.OpLE || !sel.Where[1].Value.Equal(schema.Int64(20)) {
		t.Fatalf("hi predicate = %v", sel.Where[1])
	}
	if sel.Where[2].Column != "cat" {
		t.Fatalf("trailing predicate = %v", sel.Where[2])
	}
	// Malformed BETWEEN forms are rejected.
	for _, q := range []string{
		"SELECT * FROM t WHERE x BETWEEN 1",
		"SELECT * FROM t WHERE x BETWEEN 1 AND",
		"SELECT * FROM t WHERE x BETWEEN AND 2",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
	// A column literally named "between" would be ambiguous; the keyword
	// wins, which the delete path also exercises.
	if _, err := Parse("DELETE FROM t WHERE id BETWEEN 5 AND 9"); err != nil {
		t.Fatal(err)
	}
}
