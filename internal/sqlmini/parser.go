package sqlmini

import (
	"fmt"
	"strconv"
	"strings"

	"edgeauth/internal/query"
	"edgeauth/internal/schema"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is SELECT cols FROM table WHERE preds.
type SelectStmt struct {
	// Columns is nil for SELECT *.
	Columns []string
	Table   string
	Where   []query.Predicate
}

// InsertStmt is INSERT INTO table VALUES (…)[,(…)]*. Multi-row inserts
// map onto the client's batched write path (one group commit at the
// central server).
type InsertStmt struct {
	Table string
	Rows  [][]schema.Datum
}

// DeleteStmt is DELETE FROM table WHERE preds.
type DeleteStmt struct {
	Table string
	Where []query.Predicate
}

func (*SelectStmt) stmt() {}
func (*InsertStmt) stmt() {}
func (*DeleteStmt) stmt() {}

// Parse parses one statement (an optional trailing semicolon is allowed).
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlmini: unexpected %s after statement", p.peek())
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptKeyword consumes an identifier equal (case-insensitively) to kw.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("sqlmini: expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) acceptSymbol(s string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == s {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return fmt.Errorf("sqlmini: expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sqlmini: expected identifier, got %s", t)
	}
	p.next()
	return t.text, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptKeyword("select"):
		return p.selectStmt()
	case p.acceptKeyword("insert"):
		return p.insertStmt()
	case p.acceptKeyword("delete"):
		return p.deleteStmt()
	default:
		return nil, fmt.Errorf("sqlmini: expected SELECT, INSERT or DELETE, got %s", p.peek())
	}
}

func (p *parser) selectStmt() (Statement, error) {
	st := &SelectStmt{}
	if p.acceptSymbol("*") {
		st.Columns = nil
	} else {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = tbl
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	st.Where = where
	return st, nil
}

func (p *parser) insertStmt() (Statement, error) {
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: tbl}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []schema.Datum
		for {
			d, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, d)
			if p.acceptSymbol(",") {
				continue
			}
			break
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if p.acceptSymbol(",") {
			continue
		}
		break
	}
	return st, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	where, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	return &DeleteStmt{Table: tbl, Where: where}, nil
}

func (p *parser) whereClause() ([]query.Predicate, error) {
	if !p.acceptKeyword("where") {
		return nil, nil
	}
	var preds []query.Predicate
	for {
		prs, err := p.whereTerm()
		if err != nil {
			return nil, err
		}
		preds = append(preds, prs...)
		if !p.acceptKeyword("and") {
			break
		}
	}
	return preds, nil
}

func (p *parser) whereTerm() ([]query.Predicate, error) {
	// Lookahead for "col BETWEEN lo AND hi", which expands to two
	// predicates; otherwise parse a plain comparison.
	save := p.i
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("between") {
		lo, err := p.literal()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.literal()
		if err != nil {
			return nil, err
		}
		return []query.Predicate{
			{Column: col, Op: query.OpGE, Value: lo},
			{Column: col, Op: query.OpLE, Value: hi},
		}, nil
	}
	p.i = save
	pr, err := p.predicate()
	if err != nil {
		return nil, err
	}
	return []query.Predicate{pr}, nil
}

func (p *parser) predicate() (query.Predicate, error) {
	col, err := p.expectIdent()
	if err != nil {
		return query.Predicate{}, err
	}
	t := p.peek()
	if t.kind != tokSymbol {
		return query.Predicate{}, fmt.Errorf("sqlmini: expected comparison operator, got %s", t)
	}
	var op query.Op
	switch t.text {
	case "=":
		op = query.OpEQ
	case "!=", "<>":
		op = query.OpNE
	case "<":
		op = query.OpLT
	case "<=":
		op = query.OpLE
	case ">":
		op = query.OpGT
	case ">=":
		op = query.OpGE
	default:
		return query.Predicate{}, fmt.Errorf("sqlmini: unknown operator %q", t.text)
	}
	p.next()
	val, err := p.literal()
	if err != nil {
		return query.Predicate{}, err
	}
	return query.Predicate{Column: col, Op: op, Value: val}, nil
}

func (p *parser) literal() (schema.Datum, error) {
	t := p.peek()
	switch t.kind {
	case tokString:
		p.next()
		return schema.Str(t.text), nil
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return schema.Datum{}, fmt.Errorf("sqlmini: bad float literal %q", t.text)
			}
			return schema.Float64(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return schema.Datum{}, fmt.Errorf("sqlmini: bad integer literal %q", t.text)
		}
		return schema.Int64(n), nil
	default:
		return schema.Datum{}, fmt.Errorf("sqlmini: expected literal, got %s", t)
	}
}

// BindPredicates coerces predicate literal types against a schema (int64
// literals are widened to float64 where the column is float64) and
// validates column names. It returns the adjusted predicates.
func BindPredicates(sch *schema.Schema, preds []query.Predicate) ([]query.Predicate, error) {
	out := make([]query.Predicate, len(preds))
	for i, p := range preds {
		ci := sch.ColumnIndex(p.Column)
		if ci < 0 {
			return nil, fmt.Errorf("sqlmini: unknown column %q", p.Column)
		}
		want := sch.Columns[ci].Type
		if p.Value.Type == schema.TypeInt64 && want == schema.TypeFloat64 {
			p.Value = schema.Float64(float64(p.Value.I))
		}
		if p.Value.Type != want {
			return nil, fmt.Errorf("sqlmini: column %q is %v but literal is %v", p.Column, want, p.Value.Type)
		}
		out[i] = p
	}
	return out, nil
}

// BindValues coerces an INSERT's literal list to a schema-typed tuple.
func BindValues(sch *schema.Schema, vals []schema.Datum) (schema.Tuple, error) {
	if len(vals) != len(sch.Columns) {
		return schema.Tuple{}, fmt.Errorf("sqlmini: %d values for %d columns", len(vals), len(sch.Columns))
	}
	out := make([]schema.Datum, len(vals))
	for i, v := range vals {
		want := sch.Columns[i].Type
		if v.Type == schema.TypeInt64 && want == schema.TypeFloat64 {
			v = schema.Float64(float64(v.I))
		}
		if v.Type == schema.TypeString && want == schema.TypeBytes {
			v = schema.Bytes([]byte(v.S))
		}
		if v.Type != want {
			return schema.Tuple{}, fmt.Errorf("sqlmini: column %q is %v but value is %v",
				sch.Columns[i].Name, want, v.Type)
		}
		out[i] = v
	}
	return schema.Tuple{Values: out}, nil
}
