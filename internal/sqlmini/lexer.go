// Package sqlmini implements a small SQL subset for driving the
// authenticated query system from the CLI and examples:
//
//	SELECT col, … | * FROM table [WHERE col OP literal [AND …]]
//	INSERT INTO table VALUES (literal, …)
//	DELETE FROM table [WHERE …]
//
// OP is one of = != <> < <= > >=. Literals are integers, decimals and
// single-quoted strings (” escapes a quote). Keywords are
// case-insensitive; identifiers are [A-Za-z_][A-Za-z0-9_]*.
package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// lex tokenizes the input.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlmini: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < len(input) && unicode.IsDigit(rune(input[i+1]))):
			start := i
			i++
			seenDot := false
			for i < len(input) {
				d := input[i]
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if !unicode.IsDigit(rune(d)) {
					break
				}
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) && (unicode.IsLetter(rune(input[i])) || unicode.IsDigit(rune(input[i])) || input[i] == '_') {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: input[start:i], pos: start})
		default:
			start := i
			// Two-character operators first.
			if i+1 < len(input) {
				two := input[i : i+2]
				switch two {
				case "<=", ">=", "!=", "<>":
					toks = append(toks, token{kind: tokSymbol, text: two, pos: start})
					i += 2
					continue
				}
			}
			switch c {
			case '=', '<', '>', ',', '(', ')', '*', ';':
				toks = append(toks, token{kind: tokSymbol, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("sqlmini: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}
