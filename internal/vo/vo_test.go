package vo

import (
	"bytes"
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

func sigOf(b ...byte) sig.Signature { return sig.Signature(b) }

func sampleVO() *VO {
	return &VO{
		KeyVersion: 3,
		Timestamp:  1717000000,
		TopLevel:   4,
		TopDigest:  sigOf(1, 2, 3, 4, 5, 6, 7, 8),
		DS: []Entry{
			{Sig: sigOf(9, 9, 9), Lift: 4},
			{Sig: sigOf(8, 8), Lift: 1},
		},
		DP: []sig.Signature{sigOf(7), sigOf(6, 6)},
	}
}

func TestVOEncodeDecodeRoundTrip(t *testing.T) {
	v := sampleVO()
	enc := v.Encode(nil)
	if len(enc) != v.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(enc), v.WireSize())
	}
	got, n, err := DecodeVO(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if got.KeyVersion != v.KeyVersion || got.Timestamp != v.Timestamp || got.TopLevel != v.TopLevel {
		t.Fatalf("header mismatch: %+v", got)
	}
	if !got.TopDigest.Equal(v.TopDigest) {
		t.Fatal("top digest mismatch")
	}
	if len(got.DS) != 2 || got.DS[0].Lift != 4 || !got.DS[1].Sig.Equal(v.DS[1].Sig) {
		t.Fatalf("DS mismatch: %+v", got.DS)
	}
	if len(got.DP) != 2 || !got.DP[1].Equal(v.DP[1]) {
		t.Fatalf("DP mismatch: %+v", got.DP)
	}
	if got.NumDigests() != 5 {
		t.Fatalf("NumDigests = %d, want 5", got.NumDigests())
	}
}

func TestVOEmptySets(t *testing.T) {
	v := &VO{KeyVersion: 1, TopLevel: 1, TopDigest: sigOf(1)}
	enc := v.Encode(nil)
	got, _, err := DecodeVO(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DS) != 0 || len(got.DP) != 0 {
		t.Fatal("empty sets did not round-trip")
	}
	if got.NumDigests() != 1 {
		t.Fatalf("NumDigests = %d, want 1", got.NumDigests())
	}
}

func TestVODecodeRejectsCorrupt(t *testing.T) {
	enc := sampleVO().Encode(nil)
	for cut := 1; cut < len(enc); cut += 3 {
		if _, _, err := DecodeVO(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := DecodeVO(nil); err == nil {
		t.Fatal("nil input accepted")
	}
}

func sampleResultSet() *ResultSet {
	return &ResultSet{
		DB:      "db",
		Table:   "orders",
		Columns: []string{"id", "amount"},
		Keys:    []schema.Datum{schema.Int64(1), schema.Int64(2)},
		Tuples: []schema.Tuple{
			schema.NewTuple(schema.Int64(1), schema.Float64(10.5)),
			schema.NewTuple(schema.Int64(2), schema.Float64(20.25)),
		},
	}
}

func TestResultSetRoundTrip(t *testing.T) {
	r := sampleResultSet()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	enc := r.Encode(nil)
	if len(enc) != r.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(enc), r.WireSize())
	}
	got, n, err := DecodeResultSet(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if got.DB != "db" || got.Table != "orders" {
		t.Fatalf("identity mismatch: %+v", got)
	}
	if len(got.Columns) != 2 || got.Columns[1] != "amount" {
		t.Fatalf("columns mismatch: %v", got.Columns)
	}
	if len(got.Tuples) != 2 || !got.Keys[1].Equal(schema.Int64(2)) {
		t.Fatalf("tuples mismatch")
	}
	if !got.Tuples[1].Values[1].Equal(schema.Float64(20.25)) {
		t.Fatal("tuple value mismatch")
	}
}

func TestResultSetValidate(t *testing.T) {
	r := sampleResultSet()
	r.Keys = r.Keys[:1]
	if err := r.Validate(); err == nil {
		t.Fatal("key/tuple mismatch accepted")
	}
	r = sampleResultSet()
	r.Tuples[0].Values = r.Tuples[0].Values[:1]
	if err := r.Validate(); err == nil {
		t.Fatal("short tuple accepted")
	}
	r = sampleResultSet()
	r.DB = ""
	if err := r.Validate(); err == nil {
		t.Fatal("missing identity accepted")
	}
}

func TestResultSetDecodeRejectsCorrupt(t *testing.T) {
	enc := sampleResultSet().Encode(nil)
	for cut := 1; cut < len(enc); cut += 5 {
		if _, _, err := DecodeResultSet(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestResultSetEmpty(t *testing.T) {
	r := &ResultSet{DB: "db", Table: "t", Columns: []string{"a"}}
	enc := r.Encode(nil)
	got, _, err := DecodeResultSet(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tuples) != 0 {
		t.Fatal("phantom tuples after decode")
	}
}

func TestStoredTupleRoundTrip(t *testing.T) {
	st := &StoredTuple{
		Tuple:    schema.NewTuple(schema.Int64(5), schema.Str("x")),
		AttrSigs: []sig.Signature{sigOf(1, 1), sigOf(2, 2, 2)},
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	enc := st.EncodeBytes()
	if len(enc) != st.WireSize() {
		t.Fatalf("encoded %d, WireSize %d", len(enc), st.WireSize())
	}
	got, n, err := DecodeStoredTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !got.Tuple.Values[1].Equal(schema.Str("x")) {
		t.Fatal("tuple mismatch")
	}
	if !bytes.Equal(got.AttrSigs[1], st.AttrSigs[1]) {
		t.Fatal("signatures mismatch")
	}
}

func TestStoredTupleValidate(t *testing.T) {
	st := &StoredTuple{
		Tuple:    schema.NewTuple(schema.Int64(5), schema.Str("x")),
		AttrSigs: []sig.Signature{sigOf(1)},
	}
	if err := st.Validate(); err == nil {
		t.Fatal("signature count mismatch accepted")
	}
	enc := st.EncodeBytes()
	if _, _, err := DecodeStoredTuple(enc); err == nil {
		t.Fatal("decode accepted inconsistent stored tuple")
	}
}

func TestStoredTupleDecodeRejectsCorrupt(t *testing.T) {
	st := &StoredTuple{
		Tuple:    schema.NewTuple(schema.Int64(5)),
		AttrSigs: []sig.Signature{sigOf(1, 2, 3)},
	}
	enc := st.EncodeBytes()
	for cut := 1; cut < len(enc); cut += 2 {
		if _, _, err := DecodeStoredTuple(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
