package vo

import (
	"bytes"
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

// Fuzz targets for the decoders that parse edge-supplied (i.e. untrusted)
// bytes at the client. The invariants are: never panic, never
// over-consume, and successful decodes must round-trip byte-identically —
// a decoder that "repairs" attacker input would be a verification hazard.

func seedVO() *VO {
	return &VO{
		KeyVersion: 3,
		Timestamp:  1_700_000_000,
		TopLevel:   2,
		TopDigest:  sig.Signature{1, 2, 3, 4},
		DS: []Entry{
			{Sig: sig.Signature{5, 6}, Lift: 1},
			{Sig: sig.Signature{7}, Lift: 2},
		},
		DP: []sig.Signature{{8, 9, 10}},
	}
}

func FuzzDecodeVO(f *testing.F) {
	f.Add(seedVO().Encode(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, n, err := DecodeVO(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("DecodeVO consumed %d of %d bytes", n, len(data))
		}
		re := v.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("VO round-trip mismatch: decoded %d bytes, re-encoded %d", n, len(re))
		}
		if v.WireSize() != len(re) {
			t.Fatalf("WireSize %d != encoded size %d", v.WireSize(), len(re))
		}
	})
}

func seedResultSet() *ResultSet {
	return &ResultSet{
		DB: "db", Table: "items",
		Columns: []string{"id", "val"},
		Keys:    []schema.Datum{schema.Int64(1), schema.Int64(2)},
		Tuples: []schema.Tuple{
			schema.NewTuple(schema.Int64(1), schema.Str("a")),
			schema.NewTuple(schema.Int64(2), schema.Str("b")),
		},
	}
}

func FuzzDecodeResultSet(f *testing.F) {
	f.Add(seedResultSet().Encode(nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x00}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, n, err := DecodeResultSet(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("DecodeResultSet consumed %d of %d bytes", n, len(data))
		}
		re := rs.Encode(nil)
		if !bytes.Equal(re, data[:n]) {
			t.Fatalf("result-set round-trip mismatch at %d bytes", n)
		}
	})
}
