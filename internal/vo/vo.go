// Package vo defines the verification object (VO) and result-set types
// exchanged between edge servers and clients, together with their binary
// wire codecs.
//
// A VO proves a query result against the signed digest of the enveloping
// subtree (paper §3.3). Thanks to the multiplicative combiner
// g(x) = x^e mod m, the digest of a node at level L of the subtree is a
// flat product of lifted constituent digests:
//
//	s⁻¹(D_N) = Π g^L(U_T result tuples) · Π g^lift(s⁻¹(d)) for d in D_S
//	           · Π g^(L+1)(s⁻¹(d)) for d in D_P                    (mod m)
//
// where g^k denotes k applications of g, and lift = L − level(entry). The
// VO therefore carries only *sets* of signed digests plus a small lift tag
// per D_S entry — no tree structure — which is the paper's headline
// advantage over root-anchored Merkle schemes. Leaves sit at level 1;
// tuples contribute at lift L and attribute digests at lift L+1.
//
// One practical note the paper leaves implicit: the attribute hash h binds
// the tuple's primary key, so the result set always carries each tuple's
// key, even when the key column itself is projected away (its value digest
// then travels in D_P like any other filtered attribute).
package vo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

// Entry is one signed digest in the D_S set: a filtered tuple or a
// non-overlapping branch of the enveloping subtree.
type Entry struct {
	// Sig is the signed digest.
	Sig sig.Signature
	// Lift is how many times the verifier applies g before multiplying
	// this digest into the product: L for filtered tuples in boundary
	// leaves, L - level for filtered branches.
	Lift uint8
}

// VO is the verification object for one query result.
type VO struct {
	// KeyVersion identifies which central-server public key signed the
	// digests (paper §3.4 key rotation).
	KeyVersion uint32
	// Timestamp is when the edge produced the response (Unix seconds);
	// clients check it against the key version's validity window.
	Timestamp int64
	// TopLevel is the level L of the enveloping subtree's top node
	// (leaf = 1).
	TopLevel uint8
	// TopDigest is D_N, the digest of the enveloping subtree's top node:
	// a signed digest under the legacy RSA-full scheme, the raw unsigned
	// root digest under a Merkle scheme (where RootSig carries the
	// signature over it).
	TopDigest sig.Signature
	// RootSig, under a Merkle scheme, is the central's signature over the
	// raw root digest in TopDigest. Empty under the legacy scheme. The
	// client decides which shape to expect from its TRUSTED registry
	// key's scheme, never from the VO itself.
	RootSig sig.Signature
	// DS holds digests for filtered tuples and non-overlapping branches
	// (signed under the legacy scheme, raw under Merkle).
	DS []Entry
	// DP holds digests for attributes filtered out by projection.
	DP []sig.Signature
}

// NumDigests returns the total signed digests carried (the paper's VO size
// accounting unit).
func (v *VO) NumDigests() int { return 1 + len(v.DS) + len(v.DP) }

// WireSize returns the exact encoded size in bytes.
func (v *VO) WireSize() int {
	sz := 4 + 8 + 1 + 4 + len(v.TopDigest) + 4 + len(v.RootSig) + 4
	for _, e := range v.DS {
		sz += 4 + len(e.Sig) + 1
	}
	sz += 4
	for _, s := range v.DP {
		sz += 4 + len(s)
	}
	return sz
}

func appendSig(dst []byte, s sig.Signature) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(len(s)))
	dst = append(dst, b[:]...)
	return append(dst, s...)
}

func readSig(data []byte) (sig.Signature, int, error) {
	if len(data) < 4 {
		return nil, 0, errors.New("vo: truncated signature length")
	}
	n := int(binary.BigEndian.Uint32(data[:4]))
	if n < 0 || len(data) < 4+n {
		return nil, 0, errors.New("vo: truncated signature")
	}
	s := make(sig.Signature, n)
	copy(s, data[4:4+n])
	return s, 4 + n, nil
}

// Encode appends the VO wire form.
func (v *VO) Encode(dst []byte) []byte {
	var b8 [8]byte
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], v.KeyVersion)
	dst = append(dst, b4[:]...)
	binary.BigEndian.PutUint64(b8[:], uint64(v.Timestamp))
	dst = append(dst, b8[:]...)
	dst = append(dst, v.TopLevel)
	dst = appendSig(dst, v.TopDigest)
	dst = appendSig(dst, v.RootSig)
	binary.BigEndian.PutUint32(b4[:], uint32(len(v.DS)))
	dst = append(dst, b4[:]...)
	for _, e := range v.DS {
		dst = appendSig(dst, e.Sig)
		dst = append(dst, e.Lift)
	}
	binary.BigEndian.PutUint32(b4[:], uint32(len(v.DP)))
	dst = append(dst, b4[:]...)
	for _, s := range v.DP {
		dst = appendSig(dst, s)
	}
	return dst
}

// DecodeVO parses a VO, returning bytes consumed.
func DecodeVO(data []byte) (*VO, int, error) {
	if len(data) < 4+8+1 {
		return nil, 0, errors.New("vo: truncated VO header")
	}
	v := &VO{
		KeyVersion: binary.BigEndian.Uint32(data[0:4]),
		Timestamp:  int64(binary.BigEndian.Uint64(data[4:12])),
		TopLevel:   data[12],
	}
	off := 13
	s, n, err := readSig(data[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("vo: top digest: %w", err)
	}
	v.TopDigest = s
	off += n
	s, n, err = readSig(data[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("vo: root signature: %w", err)
	}
	if len(s) > 0 {
		v.RootSig = s
	}
	off += n
	if len(data[off:]) < 4 {
		return nil, 0, errors.New("vo: truncated DS count")
	}
	dsCount := int(binary.BigEndian.Uint32(data[off : off+4]))
	off += 4
	if dsCount < 0 || dsCount > len(data) { // cheap bound against corrupt counts
		return nil, 0, errors.New("vo: implausible DS count")
	}
	v.DS = make([]Entry, 0, dsCount)
	for i := 0; i < dsCount; i++ {
		s, n, err := readSig(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vo: DS entry %d: %w", i, err)
		}
		off += n
		if off >= len(data)+1 || len(data[off:]) < 1 {
			return nil, 0, errors.New("vo: truncated DS lift")
		}
		v.DS = append(v.DS, Entry{Sig: s, Lift: data[off]})
		off++
	}
	if len(data[off:]) < 4 {
		return nil, 0, errors.New("vo: truncated DP count")
	}
	dpCount := int(binary.BigEndian.Uint32(data[off : off+4]))
	off += 4
	if dpCount < 0 || dpCount > len(data) {
		return nil, 0, errors.New("vo: implausible DP count")
	}
	v.DP = make([]sig.Signature, 0, dpCount)
	for i := 0; i < dpCount; i++ {
		s, n, err := readSig(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vo: DP entry %d: %w", i, err)
		}
		v.DP = append(v.DP, s)
		off += n
	}
	return v, off, nil
}

// ResultSet is the verifiable payload of a query answer.
type ResultSet struct {
	// DB and Table identify the base relation (bound into every attribute
	// hash, so results cannot be replayed across tables).
	DB    string
	Table string
	// Columns are the returned column names, in tuple order.
	Columns []string
	// Keys holds each result tuple's primary-key datum; required by the
	// verifier to recompute attribute hashes.
	Keys []schema.Datum
	// Tuples are the result rows, with len(Values) == len(Columns).
	Tuples []schema.Tuple
}

// Validate checks internal consistency.
func (r *ResultSet) Validate() error {
	if r.DB == "" || r.Table == "" {
		return errors.New("vo: result set missing relation identity")
	}
	if len(r.Keys) != len(r.Tuples) {
		return fmt.Errorf("vo: %d keys for %d tuples", len(r.Keys), len(r.Tuples))
	}
	for i, t := range r.Tuples {
		if len(t.Values) != len(r.Columns) {
			return fmt.Errorf("vo: tuple %d has %d values for %d columns", i, len(t.Values), len(r.Columns))
		}
	}
	return nil
}

// WireSize returns the exact encoded size in bytes.
func (r *ResultSet) WireSize() int {
	sz := 2 + len(r.DB) + 2 + len(r.Table) + 2
	for _, c := range r.Columns {
		sz += 2 + len(c)
	}
	sz += 4
	for i := range r.Tuples {
		sz += r.Keys[i].WireSize() + r.Tuples[i].WireSize()
	}
	return sz
}

func appendStr16(dst []byte, s string) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], uint16(len(s)))
	dst = append(dst, b[:]...)
	return append(dst, s...)
}

func readStr16(data []byte) (string, int, error) {
	if len(data) < 2 {
		return "", 0, errors.New("vo: truncated string length")
	}
	n := int(binary.BigEndian.Uint16(data[:2]))
	if len(data) < 2+n {
		return "", 0, errors.New("vo: truncated string")
	}
	return string(data[2 : 2+n]), 2 + n, nil
}

// Encode appends the result-set wire form.
func (r *ResultSet) Encode(dst []byte) []byte {
	dst = appendStr16(dst, r.DB)
	dst = appendStr16(dst, r.Table)
	var b2 [2]byte
	binary.BigEndian.PutUint16(b2[:], uint16(len(r.Columns)))
	dst = append(dst, b2[:]...)
	for _, c := range r.Columns {
		dst = appendStr16(dst, c)
	}
	var b4 [4]byte
	binary.BigEndian.PutUint32(b4[:], uint32(len(r.Tuples)))
	dst = append(dst, b4[:]...)
	for i := range r.Tuples {
		dst = r.Keys[i].Encode(dst)
		dst = r.Tuples[i].Encode(dst)
	}
	return dst
}

// DecodeResultSet parses a result set, returning bytes consumed.
func DecodeResultSet(data []byte) (*ResultSet, int, error) {
	r := &ResultSet{}
	db, off, err := readStr16(data)
	if err != nil {
		return nil, 0, fmt.Errorf("vo: db name: %w", err)
	}
	r.DB = db
	tbl, n, err := readStr16(data[off:])
	if err != nil {
		return nil, 0, fmt.Errorf("vo: table name: %w", err)
	}
	r.Table = tbl
	off += n
	if len(data[off:]) < 2 {
		return nil, 0, errors.New("vo: truncated column count")
	}
	nc := int(binary.BigEndian.Uint16(data[off : off+2]))
	off += 2
	r.Columns = make([]string, nc)
	for i := 0; i < nc; i++ {
		c, n, err := readStr16(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vo: column %d: %w", i, err)
		}
		r.Columns[i] = c
		off += n
	}
	if len(data[off:]) < 4 {
		return nil, 0, errors.New("vo: truncated tuple count")
	}
	nt := int(binary.BigEndian.Uint32(data[off : off+4]))
	off += 4
	if nt < 0 || nt > len(data) {
		return nil, 0, errors.New("vo: implausible tuple count")
	}
	r.Keys = make([]schema.Datum, 0, nt)
	r.Tuples = make([]schema.Tuple, 0, nt)
	for i := 0; i < nt; i++ {
		k, n, err := schema.DecodeDatum(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vo: key %d: %w", i, err)
		}
		off += n
		t, n, err := schema.DecodeTuple(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vo: tuple %d: %w", i, err)
		}
		off += n
		r.Keys = append(r.Keys, k)
		r.Tuples = append(r.Tuples, t)
	}
	return r, off, nil
}
