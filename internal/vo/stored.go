package vo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

// StoredTuple is the on-heap representation of a base-table row in the
// paper's Figure 3: the tuple values together with the signed digest of
// every attribute (formula (1)). Edge servers read these records to build
// D_P sets for projections, and the Naive baseline ships the signatures
// directly.
type StoredTuple struct {
	Tuple schema.Tuple
	// AttrSigs holds one signed attribute digest per column, in schema
	// column order.
	AttrSigs []sig.Signature
}

// Validate checks that the signature count matches the value count.
func (s *StoredTuple) Validate() error {
	if len(s.AttrSigs) != len(s.Tuple.Values) {
		return fmt.Errorf("vo: stored tuple has %d signatures for %d values",
			len(s.AttrSigs), len(s.Tuple.Values))
	}
	return nil
}

// WireSize returns the encoded size in bytes.
func (s *StoredTuple) WireSize() int {
	sz := s.Tuple.WireSize() + 2
	for _, as := range s.AttrSigs {
		sz += 4 + len(as)
	}
	return sz
}

// Encode appends the stored-tuple wire form.
func (s *StoredTuple) Encode(dst []byte) []byte {
	dst = s.Tuple.Encode(dst)
	var b2 [2]byte
	binary.BigEndian.PutUint16(b2[:], uint16(len(s.AttrSigs)))
	dst = append(dst, b2[:]...)
	for _, as := range s.AttrSigs {
		dst = appendSig(dst, as)
	}
	return dst
}

// EncodeBytes returns Encode into a fresh slice.
func (s *StoredTuple) EncodeBytes() []byte {
	return s.Encode(make([]byte, 0, s.WireSize()))
}

// DecodeStoredTuple parses a stored tuple, returning bytes consumed.
func DecodeStoredTuple(data []byte) (*StoredTuple, int, error) {
	t, off, err := schema.DecodeTuple(data)
	if err != nil {
		return nil, 0, fmt.Errorf("vo: stored tuple: %w", err)
	}
	if len(data[off:]) < 2 {
		return nil, 0, errors.New("vo: truncated signature count")
	}
	n := int(binary.BigEndian.Uint16(data[off : off+2]))
	off += 2
	st := &StoredTuple{Tuple: t, AttrSigs: make([]sig.Signature, 0, n)}
	for i := 0; i < n; i++ {
		s, used, err := readSig(data[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("vo: attr signature %d: %w", i, err)
		}
		st.AttrSigs = append(st.AttrSigs, s)
		off += used
	}
	if err := st.Validate(); err != nil {
		return nil, 0, err
	}
	return st, off, nil
}
