// Package pinpair checks the RCU snapshot-pinning protocol from the
// replica storage layer: every successful storage.Snapshot pin —
// PageStore.Acquire, or Snapshot.Retain returning true — must reach
// exactly one Release on every path out of the function, unless
// ownership provably escapes (the snapshot is returned, stored into a
// structure, captured by a closure, or handed to another function).
//
// The check is an intraprocedural forward dataflow over the flow
// package's CFG. It is condition-sensitive for the idiomatic
//
//	if sr.snap.Retain() {
//	    return set, sr, nil // pin escapes with sr
//	}
//	// not pinned here — reload and retry
//
// shape: the pin obligation exists only along the true edge. Deferred
// Release calls (direct or via a closure mentioning the snapshot)
// discharge the obligation for every subsequent exit.
//
// The analysis is deliberately lenient about escapes — passing the
// snapshot (or a struct containing it) to any call, returning it, or
// storing it into non-local state transfers ownership and ends the
// local obligation. That keeps false positives near zero at the cost of
// trusting the receiving code, which is itself analyzed when it lives
// in this module.
package pinpair

import (
	"go/ast"
	"go/token"

	"edgeauth/internal/analysis"
	"edgeauth/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "pinpair",
	Doc:  "check that every snapshot Acquire/Retain pin is released on all paths",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		analysis.FuncBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkBody(pass, body)
		})
	}
	return nil, nil
}

// state maps a pinned snapshot's selector path (e.g. "snap", "sr.snap")
// to the position of the call that pinned it.
type state map[string]token.Pos

func clone(s state) state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// covers reports whether an expression with path p carries the pin
// tracked under key k: p == k, or p is a strict selector prefix (the
// expression denotes a struct holding the snapshot).
func covers(p, k string) bool {
	if p == "" {
		return false
	}
	return p == k || (len(k) > len(p) && k[:len(p)] == p && k[len(p)] == '.')
}

type checker struct {
	pass *analysis.Pass
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass}

	// Syntactic pass: a pin whose handle is discarded can never be
	// released, so no path analysis is needed to condemn it.
	analysis.InspectShallow(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ExprStmt:
			if call, ok := x.X.(*ast.CallExpr); ok && c.isAcquire(call) {
				pass.Reportf(call.Pos(), "result of Acquire dropped: the pinned snapshot can never be released")
			}
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if call, ok := x.Rhs[0].(*ast.CallExpr); ok && c.isAcquire(call) && allBlank(x.Lhs) {
					pass.Reportf(call.Pos(), "result of Acquire assigned to _: the pinned snapshot can never be released")
				}
			}
		}
		return true
	})

	g, ok := flow.Build(body)
	if !ok {
		return // goto/labeled control flow: skip rather than guess
	}
	an := &flow.Analysis[state]{
		Init: state{},
		Join: func(a, b state) state {
			// May-analysis: a pin held on any incoming path is an
			// obligation downstream.
			m := clone(a)
			for k, v := range b {
				if _, ok := m[k]; !ok {
					m[k] = v
				}
			}
			return m
		},
		Equal: func(a, b state) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
		Transfer: c.transfer,
		Assume:   c.assume,
	}
	res := flow.Solve(g, an)

	res.Returns(func(s state, ret *ast.ReturnStmt) {
		// A pin escapes through a return either directly (`return sr, nil`)
		// or packed into a result (`return &shardReplica{snap: snap}, nil`):
		// ownership transfers to the caller either way.
		for _, r := range ret.Results {
			s = c.dischargeCovered(s, analysis.ExprPath(r))
			s = c.escapeScan(s, r)
		}
		for k, pos := range s {
			c.pass.Reportf(ret.Pos(), "snapshot %s pinned at %s is not released on this return path", k, c.pass.Fset.Position(pos))
		}
	})
	if s, ok := res.At(g.FallOff); ok {
		for k, pos := range s {
			c.pass.Reportf(pos, "snapshot %s pinned here is not released before the function returns", k)
		}
	}
}

func (c *checker) transfer(s state, stmt ast.Stmt) state {
	switch x := stmt.(type) {
	case *ast.AssignStmt:
		return c.assign(s, x.Lhs, x.Rhs)

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				s = c.assign(s, lhs, vs.Values)
			}
		}
		return s

	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			switch {
			case c.isRelease(call):
				return discharge(s, c.recvPath(call))
			case c.isRetain(call):
				// Pin taken (bare statement, or the synthesized condition of
				// `if x.Retain()` — the false edge is cleaned up by assume).
				if p := c.recvPath(call); p != "" {
					s = clone(s)
					s[p] = call.Pos()
					return s
				}
				return s
			case c.isAcquire(call):
				return s // reported by the syntactic pass
			}
		}
		return c.escapes(s, x)

	case *ast.DeferStmt, *ast.GoStmt:
		var call *ast.CallExpr
		if d, ok := x.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = x.(*ast.GoStmt).Call
		}
		if c.isRelease(call) {
			// A deferred Release covers every exit reached after this
			// point; forward flow models that as an immediate discharge.
			return discharge(s, c.recvPath(call))
		}
		return c.escapes(s, stmt)

	case *ast.ReturnStmt:
		return s // exits are judged by the reporting pass

	default:
		return c.escapes(s, stmt)
	}
}

// assign handles := / = statements: Acquire results create obligations,
// plain-identifier aliases move them, and everything else falls back to
// escape scanning.
func (c *checker) assign(s state, lhs, rhs []ast.Expr) state {
	if len(rhs) == 1 && len(lhs) == 1 {
		if call, ok := rhs[0].(*ast.CallExpr); ok && c.isAcquire(call) {
			if id, ok := lhs[0].(*ast.Ident); ok && id.Name != "_" {
				s = clone(s)
				s[id.Name] = call.Pos()
				return s
			}
			// Stored straight into a field/slot: escaped at birth, the
			// owner structure is responsible for the Release.
			return s
		}
	}
	if len(lhs) == len(rhs) {
		for i := range rhs {
			p := analysis.ExprPath(rhs[i])
			if p == "" {
				continue
			}
			for k, pos := range s {
				if !covers(p, k) {
					continue
				}
				s = discharge(s, k)
				if id, ok := lhs[i].(*ast.Ident); ok && id.Name != "_" && p == k {
					// Pure alias: the obligation moves to the new name.
					s = clone(s)
					s[id.Name] = pos
				}
			}
		}
	}
	for _, r := range rhs {
		s = c.escapeScan(s, r)
	}
	return s
}

// escapes discharges every pin that the statement hands away: as a call
// argument, a composite-literal element, or a capture by a function
// literal.
func (c *checker) escapes(s state, stmt ast.Stmt) state {
	return c.escapeScan(s, stmt)
}

// escapeScan is escapes over any node (statements or bare expressions).
func (c *checker) escapeScan(s state, node ast.Node) state {
	if len(s) == 0 {
		return s
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if c.isRelease(x) || c.isRetain(x) || c.isAcquire(x) {
				return false // the protocol's own calls are not escapes
			}
			for _, arg := range x.Args {
				s = c.dischargeCovered(s, analysis.ExprPath(arg))
			}
			return true
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				s = c.dischargeCovered(s, analysis.ExprPath(el))
			}
			return true
		case *ast.FuncLit:
			// A closure mentioning the pinned value takes over its
			// lifecycle (commonly `defer func() { snap.Release() }()`).
			ast.Inspect(x.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					for k := range s {
						if root, _, _ := cutPath(k); root == id.Name {
							s = discharge(s, k)
						}
					}
				}
				return true
			})
			return false
		}
		return true
	})
	return s
}

func (c *checker) dischargeCovered(s state, p string) state {
	if p == "" {
		return s
	}
	for k := range s {
		if covers(p, k) {
			s = discharge(s, k)
		}
	}
	return s
}

// assume refines state on branch edges: the false edge of
// `if x.Retain()` (or the true edge of `if !x.Retain()`) carries no
// pin.
func (c *checker) assume(s state, a *flow.Assumption) state {
	e, truth := a.Cond, a.Truth
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
			continue
		case *ast.UnaryExpr:
			if x.Op == token.NOT {
				e, truth = x.X, !truth
				continue
			}
		}
		break
	}
	if call, ok := e.(*ast.CallExpr); ok && c.isRetain(call) && !truth {
		return discharge(s, c.recvPath(call))
	}
	return s
}

func discharge(s state, key string) state {
	if key == "" {
		return s
	}
	if _, ok := s[key]; !ok {
		return s
	}
	c := clone(s)
	delete(c, key)
	return c
}

func (c *checker) isAcquire(call *ast.CallExpr) bool {
	return c.protoCall(call, "Acquire", "PageStore")
}

func (c *checker) isRetain(call *ast.CallExpr) bool {
	return c.protoCall(call, "Retain", "Snapshot")
}

func (c *checker) isRelease(call *ast.CallExpr) bool {
	return c.protoCall(call, "Release", "Snapshot")
}

// protoCall matches method calls by name and receiver type, with the
// receiver's package matched by base name so test fixtures can mirror
// the real storage package under a short import path.
func (c *checker) protoCall(call *ast.CallExpr, method, recvType string) bool {
	if analysis.MethodName(call) != method {
		return false
	}
	pkg, name := analysis.ReceiverType(c.pass.TypesInfo, call)
	return pkg == "storage" && name == recvType
}

// recvPath is the selector path of a method call's receiver.
func (c *checker) recvPath(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return analysis.ExprPath(sel.X)
}

func cutPath(k string) (root, rest string, found bool) {
	for i := 0; i < len(k); i++ {
		if k[i] == '.' {
			return k[:i], k[i+1:], true
		}
	}
	return k, "", false
}

func allBlank(lhs []ast.Expr) bool {
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}
