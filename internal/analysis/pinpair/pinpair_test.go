package pinpair_test

import (
	"testing"

	"edgeauth/internal/analysis/analyzertest"
	"edgeauth/internal/analysis/pinpair"
)

func TestPinpair(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), pinpair.Analyzer, "pinpairtest")
}
