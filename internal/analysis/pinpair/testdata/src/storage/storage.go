// Package storage mirrors the pin/release surface of the real
// internal/storage package for analyzer fixtures.
package storage

type Snapshot struct{ refs int }

func (s *Snapshot) Retain() bool { return s.refs > 0 }

func (s *Snapshot) Release() { s.refs-- }

func (s *Snapshot) Len() int { return s.refs }

type PageStore struct{ cur *Snapshot }

func (ps *PageStore) Acquire() *Snapshot { return ps.cur }
