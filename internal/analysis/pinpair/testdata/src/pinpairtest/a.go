package pinpairtest

import (
	"errors"

	"storage"
)

var errGone = errors.New("gone")

type shardRef struct{ snap *storage.Snapshot }

type replica struct {
	ps  *storage.PageStore
	cur *storage.Snapshot
}

func publish(s *storage.Snapshot) {}

// Violations.

func leakOnError(r *replica, fail bool) error {
	snap := r.ps.Acquire()
	if fail {
		return errGone // want `snapshot snap pinned at .* is not released on this return path`
	}
	snap.Release()
	return nil
}

func retainLeak(sr *shardRef, fail bool) error {
	if sr.snap.Retain() {
		if fail {
			return errGone // want `snapshot sr\.snap pinned at .* is not released on this return path`
		}
		sr.snap.Release()
	}
	return nil
}

func droppedAcquire(r *replica) {
	r.ps.Acquire() // want `result of Acquire dropped`
}

func blankAcquire(r *replica) {
	_ = r.ps.Acquire() // want `result of Acquire assigned to _`
}

func leakToEnd(r *replica) {
	snap := r.ps.Acquire() // want `snapshot snap pinned here is not released before the function returns`
	println(snap.Len())
}

// Conforming shapes.

func releaseBothPaths(r *replica, fail bool) error {
	snap := r.ps.Acquire()
	if fail {
		snap.Release()
		return errGone
	}
	snap.Release()
	return nil
}

func deferRelease(r *replica, fail bool) error {
	snap := r.ps.Acquire()
	defer snap.Release()
	if fail {
		return errGone
	}
	println(snap.Len())
	return nil
}

func deferClosureRelease(r *replica) int {
	snap := r.ps.Acquire()
	defer func() { snap.Release() }()
	return snap.Len()
}

// The PR 3/5 RCU read path: a conditional pin escapes with the struct
// that holds it; the failed pin carries no obligation.
func pinCurrent(sr *shardRef) (*shardRef, bool) {
	for i := 0; i < 3; i++ {
		if sr.snap.Retain() {
			return sr, true
		}
	}
	return nil, false
}

func storeIntoField(r *replica) {
	r.cur = r.ps.Acquire() // ownership moves to the replica
}

func handOff(r *replica) {
	snap := r.ps.Acquire()
	publish(snap) // ownership transfers to the callee
}

func scatterRelease(rs []*replica) {
	for _, r := range rs {
		snap := r.ps.Acquire()
		go func() {
			defer snap.Release()
			println(snap.Len())
		}()
	}
}

// The edge pull path packs the pin into the returned handle
// (`return &shardReplica{snap: snap, ...}, nil`): ownership transfers
// with the composite literal just as with a bare `return snap`.
func pinIntoHandle(r *replica) (*shardRef, error) {
	snap := r.ps.Acquire()
	return &shardRef{snap: snap}, nil
}
