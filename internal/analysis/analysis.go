// Package analysis is a small, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis core: just enough Analyzer/Pass/
// Diagnostic surface for this repository's domain-invariant checkers
// (trustflow, pinpair, locksign, ctxflow) and the cmd/vetauth driver
// that runs them, standalone or under `go vet -vettool`.
//
// The x/tools module is deliberately not a dependency — the module is
// stdlib-only — so the framework here re-creates the three pieces the
// suite needs: the analyzer abstraction (this file), the `go vet`
// unitchecker command protocol and a `go list`-based standalone loader
// (internal/analysis/driver), and a fixture test harness with
// `// want` comment matching (internal/analysis/analyzertest).
//
// Suppressions: a diagnostic is dropped when the offending line (or the
// line above it) carries a comment of the form
//
//	//vetauth:ignore <analyzer>[,<analyzer>...] [reason...]
//	//vetauth:ignore                            (ignores every analyzer)
//
// mirroring //nolint. Reasons are free text and strongly encouraged:
// every ignore marks a spot where a domain invariant is intentionally
// relaxed and the reviewer deserves to know why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vetauth:ignore lists. Must be a valid identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report*; the any return is unused by this framework
	// (kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver fills in suppression
	// filtering, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the driver from the reporting Analyzer
}

// Validate checks the analyzer set is well formed (unique usable names).
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q missing name or run function", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}
