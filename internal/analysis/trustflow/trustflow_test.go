package trustflow_test

import (
	"testing"

	"edgeauth/internal/analysis/analyzertest"
	"edgeauth/internal/analysis/trustflow"
)

func TestTrustflow(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), trustflow.Analyzer, "trustflowtest")
}
