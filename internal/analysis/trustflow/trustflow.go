// Package trustflow enforces the paper's edge-is-untrusted model at the
// type level: a value decoded from wire bytes that carries (or is bound
// to) a signature — deltas, signed shard maps, verification objects —
// is tainted at birth and must pass through a signature-verification
// call on every path before it may be trusted.
//
// Sources (taint introduction) are the signature-bearing decoders:
//
//	wire.Decode*            (deltas, snapshots, query responses)
//	shardmap.Decode*        (signed shard maps)
//	vo.DecodeVO, vo.DecodeResultSet
//
// A verification event is any call whose name begins with "verify"
// (case-insensitive — sig.PublicKey.Verify, verify.Verifier.VerifyShardMap,
// (*Server).verifyDelta, ...) that receives the tainted value as its
// receiver or as an argument. Verification is a must-property: the
// taint clears only when a verify call dominates the use, i.e. happens
// on every incoming path.
//
// Trusting uses (sinks) while still tainted:
//
//   - returning the value (or anything rooted in it) to the caller;
//   - storing it (or anything rooted in it) into non-local state — a
//     field of the receiver or a parameter, or a package-level variable.
//
// Writes into function-local variables are not sinks: collecting
// responses into a local slice before verifying the batch (the PR 5
// scatter-gather shape) is the intended idiom.
//
// Like the rest of the suite, package matching is by base name so test
// fixtures can mirror wire/shardmap/vo/sig under short import paths.
package trustflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edgeauth/internal/analysis"
	"edgeauth/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "trustflow",
	Doc:  "flag use-as-trusted of decoded wire data before signature verification",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue // tests forge unsigned inputs on purpose
		}
		analysis.FuncBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkBody(pass, body)
		})
	}
	return nil, nil
}

// state maps tainted variables to the position of the decode that
// produced them.
type state map[*types.Var]token.Pos

type checker struct {
	pass *analysis.Pass
	body *ast.BlockStmt
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g, ok := flow.Build(body)
	if !ok {
		return
	}
	c := &checker{pass: pass, body: body}
	an := &flow.Analysis[state]{
		Init: state{},
		Join: func(a, b state) state {
			// Taint survives a merge unless BOTH paths verified: union.
			m := clone(a)
			for k, v := range b {
				if _, ok := m[k]; !ok {
					m[k] = v
				}
			}
			return m
		},
		Equal: func(a, b state) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
		Transfer: c.transfer,
	}
	res := flow.Solve(g, an)

	// Sinks are judged against the fixpoint state before each statement.
	res.Visit(func(s state, stmt ast.Stmt) {
		if len(s) == 0 {
			return
		}
		switch x := stmt.(type) {
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if v, pos := c.taintedRoot(s, r); v != nil {
					c.pass.Reportf(x.Pos(), "%s decoded from untrusted bytes at %s is returned without signature verification", v.Name(), c.pass.Fset.Position(pos))
				}
			}
		case *ast.AssignStmt:
			for i, l := range x.Lhs {
				if !c.nonLocalStore(l) {
					continue
				}
				var r ast.Expr
				if len(x.Rhs) == len(x.Lhs) {
					r = x.Rhs[i]
				} else if len(x.Rhs) == 1 {
					r = x.Rhs[0]
				} else {
					continue
				}
				if v, pos := c.taintedRoot(s, r); v != nil {
					c.pass.Reportf(x.Pos(), "%s decoded from untrusted bytes at %s is stored into shared state without signature verification", v.Name(), c.pass.Fset.Position(pos))
				}
			}
		}
	})
}

func clone(s state) state {
	m := make(state, len(s))
	for k, v := range s {
		m[k] = v
	}
	return m
}

func (c *checker) transfer(s state, stmt ast.Stmt) state {
	// Verification events anywhere in the statement clear taint first,
	// so `if err := sm.Verify(pub); err != nil` clears sm for the check
	// of its own condition.
	analysis.InspectShallow(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isVerifyCall(call) {
			return true
		}
		for _, e := range verifySubjects(call) {
			if v := c.rootVar(e); v != nil {
				if _, tainted := s[v]; tainted {
					s = clone(s)
					delete(s, v)
				}
			}
		}
		return true
	})

	switch x := stmt.(type) {
	case *ast.AssignStmt:
		return c.assign(s, x.Lhs, x.Rhs)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					s = c.assign(s, lhs, vs.Values)
				}
			}
		}
		return s
	default:
		return s
	}
}

func (c *checker) assign(s state, lhs, rhs []ast.Expr) state {
	// Sources: d, err := wire.DecodeDelta(b) taints every non-error
	// result name.
	if len(rhs) == 1 {
		if call, ok := rhs[0].(*ast.CallExpr); ok && c.isDecodeSource(call) {
			s = clone(s)
			for _, l := range lhs {
				if v := c.localIdentVar(l); v != nil && !isErrorVar(v) && !isBasicVar(v) {
					// Basic-typed results (DecodeHello's protocol version)
					// carry no signature to verify and are not tracked.
					s[v] = call.Pos()
				}
			}
			return s
		}
	}
	// Propagation: aliases and projections of a tainted value are
	// tainted (y := sm, root := sm.Root, and the synthesized range
	// binding for `for _, sh := range sm.Shards`).
	if len(lhs) == len(rhs) {
		for i := range rhs {
			src, pos := c.taintedRoot(s, rhs[i])
			if src == nil {
				continue
			}
			v := c.localIdentVar(lhs[i])
			if v == nil && !c.nonLocalStore(lhs[i]) {
				// answers[i] = sm taints the local collection itself, so
				// the scatter-gather batch stays tracked until verified.
				v = c.rootVar(lhs[i])
			}
			if v != nil {
				s = clone(s)
				s[v] = pos
			}
		}
	} else if len(rhs) == 1 {
		// Multi-assign from one expression (range bindings, map/assert
		// commas): taint every local lhs if the source is tainted.
		if _, pos := c.taintedRoot(s, rhs[0]); pos != token.NoPos {
			for _, l := range lhs {
				if v := c.localIdentVar(l); v != nil && !isErrorVar(v) {
					s = clone(s)
					s[v] = pos
				}
			}
		}
	}
	return s
}

// taintedRoot resolves e's root identifier and reports the tainted var
// it denotes, if any.
func (c *checker) taintedRoot(s state, e ast.Expr) (*types.Var, token.Pos) {
	id := analysis.RootIdent(e)
	if id == nil {
		return nil, token.NoPos
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return nil, token.NoPos
	}
	if pos, tainted := s[v]; tainted {
		return v, pos
	}
	return nil, token.NoPos
}

// rootVar resolves the variable at the root of a selector chain.
func (c *checker) rootVar(e ast.Expr) *types.Var {
	id := analysis.RootIdent(e)
	if id == nil {
		return nil
	}
	v, _ := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

// localIdentVar returns the variable for a plain identifier lhs, nil
// for blank, selectors, and anything else.
func (c *checker) localIdentVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, _ := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	return v
}

// nonLocalStore reports whether lhs writes through state that outlives
// the function: a selector or index rooted at a receiver, parameter, or
// package-level variable. Plain locals (including local slices/maps)
// are not sinks.
func (c *checker) nonLocalStore(lhs ast.Expr) bool {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return false
	}
	id := analysis.RootIdent(lhs)
	if id == nil {
		return true // exotic root (call result, deref chain): assume shared
	}
	v, ok := c.pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok {
		return false
	}
	// Declared inside the body → local. Parameters and receivers are
	// declared in the signature, package vars at file scope: both are
	// outside the body's extent.
	return !(c.body.Pos() <= v.Pos() && v.Pos() < c.body.End())
}

// isDecodeSource matches the signature-bearing decoders by package base
// name and Decode* prefix.
func (c *checker) isDecodeSource(call *ast.CallExpr) bool {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || !strings.HasPrefix(fn.Name(), "Decode") {
		return false
	}
	switch analysis.PkgBase(fn) {
	case "wire", "shardmap":
		return true
	case "vo":
		// Only the signature-bearing decoders: DecodeStoredTuple reads
		// the replica's own heap, not wire bytes.
		return fn.Name() == "DecodeVO" || fn.Name() == "DecodeResultSet"
	}
	return false
}

// isVerifyCall matches any call whose name starts with "verify",
// case-insensitively: Verify, VerifyShardMap, verifyDelta, verifyMap...
func isVerifyCall(call *ast.CallExpr) bool {
	name := analysis.MethodName(call)
	return len(name) >= 6 && strings.EqualFold(name[:6], "verify")
}

// verifySubjects lists the expressions a verify call vouches for: its
// receiver (sm.Verify(pub)) and its arguments (s.verifyDelta(d)).
func verifySubjects(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		out = append(out, sel.X)
	}
	out = append(out, call.Args...)
	return out
}

func isBasicVar(v *types.Var) bool {
	t := v.Type()
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Basic)
	return ok
}

func isErrorVar(v *types.Var) bool {
	t := v.Type()
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}
