// Package vo mirrors the verification-object surface of the real
// internal/vo package for analyzer fixtures.
package vo

type VO struct{ Nodes [][]byte }

func DecodeVO(b []byte) (*VO, error) { return &VO{}, nil }

type StoredTuple struct{ Key uint64 }

func DecodeStoredTuple(b []byte) (*StoredTuple, error) { return &StoredTuple{}, nil }
