package trustflowtest

import (
	"shardmap"
	"vo"
	"wire"
)

type edge struct {
	maps map[string]*shardmap.Signed
	last *wire.Delta
	pub  any
}

func (e *edge) verifyDelta(d *wire.Delta) error { return nil }

// Violations: decoded values trusted before a verify call dominates.

func (e *edge) storeUnverified(b []byte) error {
	sm, err := shardmap.DecodeSigned(b)
	if err != nil {
		return err
	}
	e.maps[sm.Table] = sm // want `stored into shared state without signature verification`
	return nil
}

func (e *edge) returnUnverified(b []byte) (*shardmap.Signed, error) {
	sm, err := shardmap.DecodeSigned(b)
	if err != nil {
		return nil, err
	}
	return sm, nil // want `returned without signature verification`
}

func (e *edge) verifyOneBranchOnly(b []byte, check bool) (*shardmap.Signed, error) {
	sm, err := shardmap.DecodeSigned(b)
	if err != nil {
		return nil, err
	}
	if check {
		if err := sm.Verify(e.pub); err != nil {
			return nil, err
		}
	}
	return sm, nil // want `returned without signature verification`
}

func (e *edge) applyUnchecked(b []byte) error {
	d, err := wire.DecodeDelta(b)
	if err != nil {
		return err
	}
	e.last = d // want `stored into shared state without signature verification`
	return nil
}

func returnRawVO(b []byte) (*vo.VO, error) {
	v, err := vo.DecodeVO(b)
	if err != nil {
		return nil, err
	}
	return v, nil // want `returned without signature verification`
}

// Conforming: verification dominates every trusting use.

func (e *edge) fetchVerified(b []byte) (*shardmap.Signed, error) {
	sm, err := shardmap.DecodeSigned(b)
	if err != nil {
		return nil, err
	}
	if err := sm.Verify(e.pub); err != nil {
		return nil, err
	}
	e.maps[sm.Table] = sm
	return sm, nil
}

func (e *edge) applyDelta(b []byte) error {
	d, err := wire.DecodeDelta(b)
	if err != nil {
		return err
	}
	if err := e.verifyDelta(d); err != nil {
		return err
	}
	e.last = d
	return nil
}

// The PR 5 scatter-gather shape: collecting decoded responses into a
// local slice is not a trusting use; the batch is verified before the
// stitched result leaves the function.
func (e *edge) scatterGather(bufs [][]byte) (*shardmap.Signed, error) {
	answers := make([]*shardmap.Signed, len(bufs))
	for i, b := range bufs {
		sm, err := shardmap.DecodeSigned(b)
		if err != nil {
			return nil, err
		}
		answers[i] = sm
	}
	bound := answers[0]
	if err := bound.Verify(e.pub); err != nil {
		return nil, err
	}
	return bound, nil
}

// Same shape, but skipping the verify step leaks the batch.
func (e *edge) scatterGatherUnverified(bufs [][]byte) (*shardmap.Signed, error) {
	answers := make([]*shardmap.Signed, len(bufs))
	for i, b := range bufs {
		sm, err := shardmap.DecodeSigned(b)
		if err != nil {
			return nil, err
		}
		answers[i] = sm
	}
	return answers[0], nil // want `returned without signature verification`
}

// Basic-typed decode results — the negotiated protocol version — carry
// no signature to verify and are not tracked.
func (e *edge) handshake(b []byte) (uint32, error) {
	v, err := wire.DecodeHello(b)
	if err != nil {
		return 0, err
	}
	return v, nil
}

// DecodeStoredTuple reads the replica's own verified heap, not wire
// bytes: not a taint source.
func loadTuple(rec []byte) (*vo.StoredTuple, error) {
	t, err := vo.DecodeStoredTuple(rec)
	if err != nil {
		return nil, err
	}
	return t, nil
}
