// Package wire mirrors the decoder surface of the real internal/wire
// package for analyzer fixtures.
package wire

type Delta struct {
	Version uint64
	Sig     []byte
}

func DecodeDelta(b []byte) (*Delta, error) { return &Delta{}, nil }

func DecodeHello(b []byte) (uint32, error) { return 0, nil }
