// Package shardmap mirrors the signed-map surface of the real
// internal/shardmap package for analyzer fixtures.
package shardmap

type Shard struct{ Addr string }

type Signed struct {
	Table  string
	Shards []Shard
	Sig    []byte
}

func DecodeSigned(b []byte) (*Signed, error) { return &Signed{}, nil }

func (s *Signed) Verify(pub any) error { return nil }
