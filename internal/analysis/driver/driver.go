// Package driver runs an analysis suite either as a `go vet -vettool`
// backend or as a standalone command over package patterns.
//
// The vettool side speaks cmd/go's unit-checking protocol, the same
// one golang.org/x/tools/go/analysis/unitchecker implements:
//
//	vetauth -V=full          print a tool identity ending in a
//	                         content-derived buildID= field
//	vetauth -flags           print the tool's analyzer flags as JSON
//	vetauth <file>.cfg       analyze one package described by the JSON
//	                         config cmd/go wrote; diagnostics go to
//	                         stderr, exit status 1 reports findings
//
// Imports are type-checked from the compiler export data files listed
// in the config's PackageFile map, so a unit run never rebuilds
// dependencies. The standalone mode recovers the same information with
// `go list -e -export -deps -json`, which works offline through the
// build cache.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"edgeauth/internal/analysis"
)

// Main is the entry point for a vettool built around the given
// analyzers. It never returns.
func Main(analyzers ...*analysis.Analyzer) {
	if err := analysis.Validate(analyzers); err != nil {
		fatalf("%v", err)
	}
	args := os.Args[1:]
	var patterns []string
	cfgFile := ""
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			os.Exit(0)
		case arg == "-flags" || arg == "--flags":
			// No analyzer flags: report an empty set so cmd/go forwards
			// nothing.
			fmt.Println("[]")
			os.Exit(0)
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		case strings.HasPrefix(arg, "-"):
			fatalf("unrecognized flag %s", arg)
		default:
			patterns = append(patterns, arg)
		}
	}
	switch {
	case cfgFile != "":
		findings, err := runUnit(cfgFile, analyzers)
		if err != nil {
			fatalf("%v", err)
		}
		if findings {
			os.Exit(1)
		}
	default:
		if len(patterns) == 0 {
			patterns = []string{"./..."}
		}
		findings, err := runStandalone(patterns, analyzers)
		if err != nil {
			fatalf("%v", err)
		}
		if findings {
			os.Exit(1)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", progname(), fmt.Sprintf(format, args...))
	os.Exit(2)
}

func progname() string { return filepath.Base(os.Args[0]) }

// printVersion emits the -V=full identity line. cmd/go requires the
// second field to be "version" and, for "devel" tools, a final field
// "buildID=<content id>"; hashing our own executable makes the ID
// track the tool's actual behavior, so vet results are re-cached when
// the analyzers change.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%02x\n", progname(), string(h.Sum(nil)))
}

// unitConfig is the JSON configuration cmd/go writes for each package
// (a subset of x/tools unitchecker.Config — unused fields are accepted
// and ignored by encoding/json).
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string, analyzers []*analysis.Analyzer) (findings bool, err error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return false, err
	}
	cfg := new(unitConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return false, fmt.Errorf("cannot decode JSON config file %s: %v", cfgFile, err)
	}
	// The suite carries no cross-package facts, so the "vetx" output is
	// an empty placeholder — but it must exist for cmd/go to cache the
	// run.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			os.WriteFile(cfg.VetxOutput, []byte{}, 0666)
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return false, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return false, nil
			}
			return false, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// path is a resolved package path, not a source import path.
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(path)
	})

	pkg, info, err := typecheck(fset, cfg.ImportPath, files, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return false, nil
		}
		return false, err
	}

	diags, err := analysis.Run(&analysis.Package{Fset: fset, Files: files, Types: pkg, Info: info}, analyzers)
	writeVetx()
	if err != nil {
		return false, err
	}
	printDiags(fset, diags)
	return len(diags) > 0, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

func typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	tc := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s [%s]\n", fset.Position(d.Pos), d.Message, d.Analyzer)
	}
}

// listPackage is the subset of `go list -json` output the standalone
// loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Standard   bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// runStandalone analyzes the packages matching the patterns, resolving
// imports through build-cache export data discovered with `go list`.
func runStandalone(patterns []string, analyzers []*analysis.Analyzer) (findings bool, err error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return false, fmt.Errorf("go list: %v", err)
	}
	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		p := new(listPackage)
		if err := dec.Decode(p); err != nil {
			return false, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}

	for _, p := range roots {
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "%s: %s\n", p.ImportPath, p.Error.Err)
			findings = true
			continue
		}
		if len(p.CgoFiles) > 0 {
			// cgo packages need the generated intermediate sources; skip
			// rather than typecheck something that isn't what compiles.
			fmt.Fprintf(os.Stderr, "%s: skipping cgo package\n", p.ImportPath)
			continue
		}
		n, err := runListed(p, exports, analyzers)
		if err != nil {
			return findings, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		if n > 0 {
			findings = true
		}
	}
	return findings, nil
}

func runListed(p *listPackage, exports map[string]string, analyzers []*analysis.Analyzer) (int, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return 0, err
		}
		files = append(files, f)
	}
	compilerImporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.Import(importPath)
	})
	pkg, info, err := typecheck(fset, p.ImportPath, files, imp, "")
	if err != nil {
		return 0, err
	}
	diags, err := analysis.Run(&analysis.Package{Fset: fset, Files: files, Types: pkg, Info: info}, analyzers)
	if err != nil {
		return 0, err
	}
	printDiags(fset, diags)
	return len(diags), nil
}
