package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Package bundles the type-checked inputs a Pass needs. Drivers (the
// vet-protocol unit runner, the standalone loader, the test harness)
// construct one and hand it to Run.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Run applies the analyzers to one package and returns the surviving
// diagnostics (suppressions already filtered), ordered by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	if err := Validate(analyzers); err != nil {
		return nil, err
	}
	ign := collectIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		pass.Report = func(d Diagnostic) {
			d.Analyzer = a.Name
			if ign.suppresses(pkg.Fset, d) {
				return
			}
			out = append(out, d)
		}
		if _, err := a.Run(pass); err != nil {
			return out, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// ignoreSet indexes //vetauth:ignore comments by file and line.
type ignoreSet map[string]map[int][]string // filename -> line -> analyzer names ("" = all)

const ignorePrefix = "vetauth:ignore"

func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreSet {
	set := make(ignoreSet)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, ignorePrefix)
				names := []string{""} // bare form: ignore everything
				if rest != "" {
					if rest[0] != ' ' && rest[0] != '\t' {
						continue // e.g. "vetauth:ignored" — not our directive
					}
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						names = strings.Split(fields[0], ",")
					}
				}
				posn := fset.Position(c.Pos())
				lines := set[posn.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set[posn.Filename] = lines
				}
				lines[posn.Line] = append(lines[posn.Line], names...)
			}
		}
	}
	return set
}

// suppresses reports whether d's line (or the line directly above it)
// carries an ignore directive naming d's analyzer.
func (s ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	posn := fset.Position(d.Pos)
	lines := s[posn.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{posn.Line, posn.Line - 1} {
		for _, name := range lines[line] {
			if name == "" || name == d.Analyzer {
				return true
			}
		}
	}
	return false
}
