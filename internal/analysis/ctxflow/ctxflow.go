// Package ctxflow enforces the module's context discipline, introduced
// with the PR 2 RPC layer: cancellation must flow from the transport
// edge down through every layer, so a dropped client or a shutdown
// deadline actually stops shard scans and page walks.
//
// Three rules, all syntactic:
//
//  1. A context.Context parameter must be the first parameter
//     (after the receiver), matching the stdlib convention the rest of
//     the call graph relies on.
//
//  2. Library code must not mint fresh root contexts: any call to
//     context.Background() or context.TODO() outside package main is
//     flagged — accept a ctx instead. Deliberate roots (the RPC
//     accept loop's per-connection default) carry a //vetauth:ignore
//     with a reason.
//
//  3. A function that already receives a ctx must not shadow it with a
//     fresh root: Background()/TODO() inside such a function is a
//     dropped-context bug wherever it appears, including package main.
//
// Test files are exempt — tests are entitled to context.Background().
package ctxflow

import (
	"go/ast"
	"go/types"

	"edgeauth/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require ctx-first parameters and forbid fresh root contexts in library code",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	isMain := pass.Pkg != nil && pass.Pkg.Name() == "main"
	for _, f := range pass.Files {
		if analysis.IsTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkParamOrder(pass, fd)
		}
		analysis.FuncBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			hasCtx := decl != nil && hasCtxParam(pass, decl.Type)
			if lit != nil {
				// A literal with its own ctx param is its own scope; one
				// nested in a ctx-taking function inherits the obligation.
				hasCtx = hasCtxParam(pass, lit.Type) || hasCtx
			}
			analysis.InspectShallow(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := rootCtxCall(pass.TypesInfo, call)
				if !ok {
					return true
				}
				switch {
				case hasCtx:
					pass.Reportf(call.Pos(), "context.%s() drops the ctx this function already receives: pass it down instead", name)
				case !isMain:
					pass.Reportf(call.Pos(), "context.%s() in library code: accept a ctx from the caller instead of minting a root context", name)
				}
				return true
			})
		})
	}
	return nil, nil
}

func checkParamOrder(pass *analysis.Pass, fd *ast.FuncDecl) {
	params := fd.Type.Params
	if params == nil {
		return
	}
	idx := 0
	for _, field := range params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter of %s", fd.Name.Name)
		}
		idx += n
	}
}

func hasCtxParam(pass *analysis.Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isCtxType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isCtxType(t types.Type) bool {
	pkg, name := analysis.NamedOf(t)
	return pkg == "context" && name == "Context"
}

// rootCtxCall matches context.Background() / context.TODO().
func rootCtxCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.Callee(info, call)
	if fn == nil || analysis.PkgBase(fn) != "context" {
		return "", false
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name(), true
	}
	return "", false
}
