package ctxflow_test

import (
	"testing"

	"edgeauth/internal/analysis/analyzertest"
	"edgeauth/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), ctxflow.Analyzer, "ctxflowtest", "ctxflowmain")
}
