package ctxflowtest

import "context"

func use(ctx context.Context) {}

// Violations.

func badOrder(n int, ctx context.Context) {} // want `context.Context must be the first parameter of badOrder`

func minted() {
	ctx := context.Background() // want `context.Background\(\) in library code`
	use(ctx)
}

func dropped(ctx context.Context) {
	use(context.Background()) // want `context.Background\(\) drops the ctx this function already receives`
}

func droppedInClosure(ctx context.Context) {
	f := func() {
		use(context.TODO()) // want `context.TODO\(\) drops the ctx this function already receives`
	}
	f()
}

// Conforming shapes.

func good(ctx context.Context, n int) {}

func forwards(ctx context.Context) {
	use(ctx)
}

func derives(ctx context.Context) {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	use(sub)
}

func deliberateRoot() {
	// A justified root context carries an annotated suppression.
	ctx := context.Background() //vetauth:ignore ctxflow fixture models the rpc accept loop's default
	use(ctx)
}
