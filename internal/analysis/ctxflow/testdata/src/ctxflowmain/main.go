// Package main: root contexts are legitimate at the program edge, but
// a function that already receives a ctx must still forward it.
package main

import "context"

func main() {
	ctx := context.Background()
	run(ctx)
}

func run(ctx context.Context) {
	step(context.Background()) // want `context.Background\(\) drops the ctx this function already receives`
	step(ctx)
}

func step(ctx context.Context) {}
