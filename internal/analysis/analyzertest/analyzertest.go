// Package analyzertest runs an analyzer over source fixtures and
// checks its diagnostics against `// want` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	testdata/src/<pkg>/*.go        the package under analysis
//	testdata/src/<dep>/*.go        fixture dependencies, imported by
//	                               their short path ("storage", "sig")
//
//	sm := shardmap.DecodeSigned(b)
//	return sm, nil // want `returned without signature verification`
//
// A want comment holds one or more backquoted-or-quoted regular
// expressions; every diagnostic on that line must match one of them,
// and every expectation must be consumed by exactly one diagnostic.
// Fixture dependencies shadow stdlib packages by path; anything not
// found under testdata/src resolves to the real standard library via
// build-cache export data (`go list -export`), so fixtures may import
// context, sync, errors, ... freely.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"edgeauth/internal/analysis"
)

// Run analyzes testdata/src/<pkg> for each named package and checks
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkg := pkg
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, testdata, a, pkg)
		})
	}
}

// TestData returns the absolute path of the ./testdata directory of
// the calling test's package.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	l := &loader{
		fset:   token.NewFileSet(),
		srcDir: filepath.Join(testdata, "src"),
		pkgs:   make(map[string]*types.Package),
	}
	l.stdlib = importer.ForCompiler(l.fset, "gc", stdlibLookup)

	files, pkg, info, err := l.loadRoot(pkgpath)
	if err != nil {
		t.Fatalf("loading %s: %v", pkgpath, err)
	}
	diags, err := analysis.Run(&analysis.Package{Fset: l.fset, Files: files, Types: pkg, Info: info}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, l.fset, files)
	type key struct {
		file string
		line int
	}
	unmatched := make(map[key][]*want)
	for i := range wants {
		w := &wants[i]
		k := key{w.file, w.line}
		unmatched[k] = append(unmatched[k], w)
	}
	for _, d := range diags {
		posn := l.fset.Position(d.Pos)
		k := key{posn.Filename, posn.Line}
		matched := false
		for _, w := range unmatched[k] {
			if !w.used && w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for _, ws := range unmatched {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re.String())
			}
		}
	}
}

type loader struct {
	fset   *token.FileSet
	srcDir string
	pkgs   map[string]*types.Package
	stdlib types.Importer
}

// Import resolves fixture packages from testdata/src first, then the
// real standard library. Implements types.Importer so fixture deps can
// import each other recursively.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.srcDir, path)
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		_, pkg, _, err := l.load(path)
		if err != nil {
			return nil, err
		}
		l.pkgs[path] = pkg
		return pkg, nil
	}
	return l.stdlib.Import(path)
}

func (l *loader) loadRoot(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	files, pkg, info, err := l.load(path)
	if err == nil {
		l.pkgs[path] = pkg
	}
	return files, pkg, info, err
}

func (l *loader) load(path string) ([]*ast.File, *types.Package, *types.Info, error) {
	dir := filepath.Join(l.srcDir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tc := &types.Config{Importer: l}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// stdlibLookup resolves a standard-library package to its export data
// via the build cache. Results are memoized per path.
var stdlibExports = make(map[string]string)

func stdlibLookup(path string) (io.ReadCloser, error) {
	file, ok := stdlibExports[path]
	if !ok {
		out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
		if err != nil {
			return nil, fmt.Errorf("go list -export %s: %v", path, err)
		}
		file = strings.TrimSpace(string(out))
		if file == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		stdlibExports[path] = file
	}
	return os.Open(file)
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []want {
	t.Helper()
	var wants []want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				posn := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllString(text[idx+len("want "):], -1) {
					var pat string
					if m[0] == '`' {
						pat = m[1 : len(m)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(m)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", posn, m, err)
						}
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", posn, m, err)
					}
					wants = append(wants, want{file: posn.Filename, line: posn.Line, re: re})
				}
			}
		}
	}
	sort.SliceStable(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}
