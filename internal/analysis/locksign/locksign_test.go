package locksign_test

import (
	"testing"

	"edgeauth/internal/analysis/analyzertest"
	"edgeauth/internal/analysis/locksign"
)

func TestLocksign(t *testing.T) {
	analyzertest.Run(t, analyzertest.TestData(t), locksign.Analyzer, "locksigntest")
}
