package locksigntest

import (
	"sync"

	"sig"
)

type shard struct {
	mu   sync.RWMutex
	data []byte
}

type table struct {
	commitMu sync.Mutex
	shards   []*shard
}

type server struct {
	key *sig.PrivateKey
}

func signHelper(k *sig.PrivateKey, b []byte) {}

// Violations.

func (s *server) signUnderLock(sh *shard) {
	sh.mu.Lock()
	s.key.Sign(sh.data) // want `signing while sh\.mu is held`
	sh.mu.Unlock()
}

func (s *server) signUnderDeferredUnlock(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.key.MustSign(sh.data) // want `signing while sh\.mu is held`
}

func (s *server) keyEscapeUnderLock(sh *shard) {
	sh.mu.RLock()
	signHelper(s.key, sh.data) // want `signing while sh\.mu is held`
	sh.mu.RUnlock()
}

func (s *server) signViaHelper(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.resign() // want `call to resign may sign while sh\.mu is held`
}

func (s *server) resign() {
	s.key.MustSign(nil)
}

func (s *server) inversion(t *table, sh *shard) {
	sh.mu.Lock()
	t.commitMu.Lock() // want `lock order inversion: commitMu acquired while sh\.mu is held`
	t.commitMu.Unlock()
	sh.mu.Unlock()
}

func (s *server) inversionViaHelper(t *table, sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.republish(t) // want `call to republish may acquire commitMu while sh\.mu is held` `call to republish may sign while sh\.mu is held`
}

// Non-RSA and interface-typed signers are signing events too: the rule
// is capability (a sig type with a Sign method), not the key's name.

type edServer struct {
	ed  *sig.EdSigner
	any sig.Signer
}

func edEscape(k *sig.EdSigner, b []byte) {}

func (s *edServer) edSignUnderLock(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.ed.Sign(sh.data) // want `signing while sh\.mu is held`
}

func (s *edServer) ifaceSignUnderLock(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.any.MustSign(sh.data) // want `signing while sh\.mu is held`
}

func (s *edServer) edEscapeUnderLock(sh *shard) {
	sh.mu.RLock()
	edEscape(s.ed, sh.data) // want `signing while sh\.mu is held`
	sh.mu.RUnlock()
}

// Conforming shapes.

func (s *server) signAfterUnlock(sh *shard) {
	sh.mu.Lock()
	payload := append([]byte(nil), sh.data...)
	sh.mu.Unlock()
	s.key.Sign(payload)
}

// The PR 5 group-commit order: commitMu first, brief shard read locks,
// sign only after every shard lock is dropped.
func (s *server) republish(t *table) {
	t.commitMu.Lock()
	for _, sh := range t.shards {
		sh.mu.RLock()
		_ = sh.data
		sh.mu.RUnlock()
	}
	s.key.Sign(nil)
	t.commitMu.Unlock()
}

func (s *server) lockedReadOnly(sh *shard) int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return len(sh.data)
}

func (s *edServer) edSignAfterUnlock(sh *shard) {
	sh.mu.Lock()
	payload := append([]byte(nil), sh.data...)
	sh.mu.Unlock()
	s.ed.Sign(payload)
}

// Verification under a read lock is fine: PublicKey has no Sign method.
func verifyUnderLock(pub *sig.PublicKey, sg *sig.Signature, sh *shard) error {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return pub.Verify(sg, sh.data)
}
