// Package sig mirrors the signing surface of the real internal/sig
// package for analyzer fixtures.
package sig

type Signature struct{ B []byte }

type PrivateKey struct{ n int }

func (k *PrivateKey) Sign(payload []byte) (*Signature, error) { return &Signature{}, nil }

func (k *PrivateKey) MustSign(payload []byte) *Signature { return &Signature{} }
