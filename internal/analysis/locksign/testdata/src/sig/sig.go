// Package sig mirrors the signing surface of the real internal/sig
// package for analyzer fixtures.
package sig

type Signature struct{ B []byte }

type PrivateKey struct{ n int }

func (k *PrivateKey) Sign(payload []byte) (*Signature, error) { return &Signature{}, nil }

func (k *PrivateKey) MustSign(payload []byte) *Signature { return &Signature{} }

// Signer mirrors the pluggable signing interface: anything with a Sign
// method in this package is a signing event for the analyzer.
type Signer interface {
	Sign(payload []byte) (*Signature, error)
	MustSign(payload []byte) *Signature
}

// EdSigner mirrors a fast non-RSA backend (ed25519).
type EdSigner struct{ seed [32]byte }

func (k *EdSigner) Sign(payload []byte) (*Signature, error) { return &Signature{}, nil }

func (k *EdSigner) MustSign(payload []byte) *Signature { return &Signature{} }

// PublicKey has no Sign method, so verify-side calls must NOT count as
// signing events.
type PublicKey struct{ n int }

func (k *PublicKey) Verify(s *Signature, payload []byte) error { return nil }
