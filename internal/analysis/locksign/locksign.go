// Package locksign keeps RSA signing off the serving-path critical
// sections and the commit lock order acyclic. Two rules from the PR 4/5
// group-commit design:
//
//  1. No signing while a shard or table mutex is held. Even fast
//     Ed25519 signing has no business inside a critical section that
//     gates every read and commit — and the RSA backends cost
//     milliseconds. Tracked locks are fields named `mu` on structs
//     named `shard` or `table`. A signing event is a Sign/MustSign
//     method call on any sig-package Signer implementation (the
//     Signer interface itself, sig.PrivateKey, and every future
//     backend with a Sign method), any call that receives such a
//     signer as an argument (shardmap.Sign(m, s.key)), or a call to a
//     same-package function that may transitively sign.
//     table.commitMu is exempt — serializing map re-signs is exactly
//     what it is for.
//
//  2. commitMu is ordered before shard locks: acquiring a commitMu
//     while holding a shard/table mu is an inversion that can deadlock
//     against the commit path.
//
// The analysis is a forward may-held-lockset dataflow per function,
// with a package-local fixed point lifting "may sign" / "may take
// commitMu" through same-package calls. Deferred unlocks keep the lock
// held for the remainder of the function, exactly as at runtime.
package locksign

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"edgeauth/internal/analysis"
	"edgeauth/internal/analysis/flow"
)

var Analyzer = &analysis.Analyzer{
	Name: "locksign",
	Doc:  "forbid signing under shard/table locks and commitMu order inversions",
	Run:  run,
}

// state is the may-held lockset: lock selector path → acquire position.
type state map[string]token.Pos

type summary struct {
	maySign     bool
	mayCommitMu bool
	calls       []*types.Func
}

type checker struct {
	pass      *analysis.Pass
	summaries map[*types.Func]*summary
}

func run(pass *analysis.Pass) (any, error) {
	c := &checker{pass: pass, summaries: make(map[*types.Func]*summary)}
	c.buildSummaries()
	for _, f := range pass.Files {
		analysis.FuncBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			c.checkBody(body)
		})
	}
	return nil, nil
}

// buildSummaries computes, for every function declared in this package,
// whether calling it may (transitively, within the package) sign or
// acquire a commitMu — so a caller holding a shard lock is flagged even
// when the Sign hides one call down.
func (c *checker) buildSummaries() {
	for _, f := range c.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := &summary{}
			analysis.InspectShallow(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if c.isDirectSign(call) {
					sum.maySign = true
				}
				if path, field, op, ok := c.lockOp(call); ok && field == "commitMu" && (op == "Lock" || op == "RLock") {
					_ = path
					sum.mayCommitMu = true
				}
				if callee := analysis.Callee(c.pass.TypesInfo, call); callee != nil && callee.Pkg() == c.pass.Pkg {
					sum.calls = append(sum.calls, callee)
				}
				return true
			})
			c.summaries[fn] = sum
		}
	}
	for changed := true; changed; {
		changed = false
		for _, sum := range c.summaries {
			for _, callee := range sum.calls {
				cs, ok := c.summaries[callee]
				if !ok {
					continue
				}
				if cs.maySign && !sum.maySign {
					sum.maySign = true
					changed = true
				}
				if cs.mayCommitMu && !sum.mayCommitMu {
					sum.mayCommitMu = true
					changed = true
				}
			}
		}
	}
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	g, ok := flow.Build(body)
	if !ok {
		return
	}
	an := &flow.Analysis[state]{
		Init: state{},
		Join: func(a, b state) state {
			m := clone(a)
			for k, v := range b {
				if _, ok := m[k]; !ok {
					m[k] = v
				}
			}
			return m
		},
		Equal: func(a, b state) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if _, ok := b[k]; !ok {
					return false
				}
			}
			return true
		},
		Transfer: c.transfer,
	}
	res := flow.Solve(g, an)

	res.Visit(func(s state, stmt ast.Stmt) {
		heldMu, muPos := heldShardLock(s)
		if heldMu == "" {
			return
		}
		analysis.InspectShallow(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if c.isDirectSign(call) {
				c.pass.Reportf(call.Pos(), "signing while %s is held (locked at %s): move the Sign outside the critical section", heldMu, c.pass.Fset.Position(muPos))
			}
			if _, field, op, ok := c.lockOp(call); ok && field == "commitMu" && (op == "Lock" || op == "RLock") {
				c.pass.Reportf(call.Pos(), "lock order inversion: commitMu acquired while %s is held (commitMu is ordered before shard locks)", heldMu)
			}
			if callee := analysis.Callee(c.pass.TypesInfo, call); callee != nil {
				if sum, ok := c.summaries[callee]; ok {
					if sum.maySign {
						c.pass.Reportf(call.Pos(), "call to %s may sign while %s is held (locked at %s)", callee.Name(), heldMu, c.pass.Fset.Position(muPos))
					}
					if sum.mayCommitMu {
						c.pass.Reportf(call.Pos(), "call to %s may acquire commitMu while %s is held: lock order inversion", callee.Name(), heldMu)
					}
				}
			}
			return true
		})
	})
}

func clone(s state) state {
	m := make(state, len(s))
	for k, v := range s {
		m[k] = v
	}
	return m
}

// heldShardLock picks the lexicographically first held shard/table mu
// from the lockset (first, so messages are deterministic).
func heldShardLock(s state) (string, token.Pos) {
	best := ""
	var bestPos token.Pos
	for k, pos := range s {
		if !strings.HasSuffix(k, ".mu") && k != "mu" {
			continue
		}
		if best == "" || k < best {
			best, bestPos = k, pos
		}
	}
	return best, bestPos
}

func (c *checker) transfer(s state, stmt ast.Stmt) state {
	switch x := stmt.(type) {
	case *ast.ExprStmt:
		call, ok := x.X.(*ast.CallExpr)
		if !ok {
			return s
		}
		path, _, op, ok := c.lockOp(call)
		if !ok {
			return s
		}
		switch op {
		case "Lock", "RLock":
			s = clone(s)
			s[path] = call.Pos()
		case "Unlock", "RUnlock":
			if _, held := s[path]; held {
				s = clone(s)
				delete(s, path)
			}
		}
		return s
	case *ast.DeferStmt:
		// defer mu.Unlock() holds the lock for the rest of the function:
		// deliberately NOT treated as a release point.
		return s
	default:
		return s
	}
}

// lockOp matches X.mu.Lock()/RLock()/Unlock()/RUnlock() where X's type
// is a struct named shard or table, and X.commitMu.* on any owner.
func (c *checker) lockOp(call *ast.CallExpr) (path, field, op string, ok bool) {
	op = analysis.MethodName(call)
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	recv, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", "", false
	}
	field = recv.Sel.Name
	switch field {
	case "commitMu":
	case "mu":
		_, owner := analysis.NamedOf(c.pass.TypesInfo.TypeOf(recv.X))
		if owner != "shard" && owner != "table" {
			return "", "", "", false
		}
	default:
		return "", "", "", false
	}
	path = analysis.ExprPath(recv)
	if path == "" {
		return "", "", "", false
	}
	return path, field, op, true
}

// isDirectSign matches signing events: Sign/MustSign on any sig-package
// Signer implementation, or any call handed such a signer as an
// argument (the key escaping into a helper that may sign).
func (c *checker) isDirectSign(call *ast.CallExpr) bool {
	switch analysis.MethodName(call) {
	case "Sign", "MustSign":
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.isSignerType(c.pass.TypesInfo.TypeOf(sel.X)) {
			return true
		}
	}
	for _, arg := range call.Args {
		if c.isSignerType(c.pass.TypesInfo.TypeOf(arg)) {
			return true
		}
	}
	return false
}

// isSignerType reports whether t is a sig-package type that can sign:
// the Signer interface itself or any named sig type with a Sign method.
// Matching by capability rather than by name means new fast-signer
// backends are covered the day they are added, with no analyzer change.
func (c *checker) isSignerType(t types.Type) bool {
	if t == nil {
		return false
	}
	if pkg, _ := analysis.NamedOf(t); pkg != "sig" {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, "Sign")
	_, isMethod := obj.(*types.Func)
	return isMethod
}
