// Package flow builds a lightweight intraprocedural control-flow graph
// over one Go function body and runs forward dataflow analyses to a
// fixpoint over it. It exists so the repository's invariant checkers
// (pinpair, trustflow, locksign) can reason per-path — "a Release
// happens on every exit", "Verify dominates the store" — instead of by
// lexical position, without depending on golang.org/x/tools/go/cfg.
//
// The builder handles the structured subset of Go: blocks, if/else,
// for (incl. range), switch/type-switch (incl. fallthrough), select,
// unlabeled break/continue, return, and calls that provably terminate
// (panic, os.Exit, log.Fatal*, testing's Fatal*/Skip*). Functions using
// goto or labeled branches are rejected — Build returns ok=false and
// analyzers skip them (conservative silence rather than wrong edges).
//
// Branch conditions are surfaced twice: once as an evaluation
// pseudo-statement (an ExprStmt carrying the condition, so transfer
// functions observe calls inside conditions), and once as edge
// assumptions, so condition-sensitive analyses (pinpair's
// `if snap.Retain()`) can apply different facts along the true and
// false edges.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is a straight-line run of statements with explicit successor
// edges.
type Block struct {
	// Stmts are leaf statements — no nested control flow except inside
	// expressions and function literals. Condition evaluations appear as
	// synthesized *ast.ExprStmt nodes (their positions come from the
	// original expression).
	Stmts []ast.Stmt
	Succs []*Block

	// Assume, when non-nil, is the branch-condition fact that holds on
	// entry to this block (the block is a then/else arm).
	Assume *Assumption

	index int
}

// An Assumption records that Cond evaluated to Truth on the edge into
// a block.
type Assumption struct {
	Cond  ast.Expr
	Truth bool
}

// A Graph is one function body's CFG.
type Graph struct {
	Blocks []*Block
	Entry  *Block
	// Exit is the virtual join of every function exit: blocks ending in
	// return connect here, as does falling off the end of the body.
	// Terminating calls (panic/Fatal) do NOT connect here.
	Exit *Block
	// FallOff, when non-nil, is an empty block on the falling-off-the-end
	// path (body end → Exit), so analyses can distinguish that implicit
	// exit from return statements.
	FallOff *Block
}

type builder struct {
	g      *Graph
	breaks []*Block // innermost-last targets of unlabeled break
	conts  []*Block // innermost-last targets of unlabeled continue
	ok     bool
}

// Build constructs the CFG for body. ok=false means the body uses
// constructs the builder does not model (goto, labeled branches) and
// the caller should skip the function.
func Build(body *ast.BlockStmt) (g *Graph, ok bool) {
	b := &builder{g: &Graph{}, ok: true}
	b.g.Exit = b.newBlock()
	b.g.Entry = b.newBlock()
	last := b.stmts(b.g.Entry, body.List)
	if last != nil {
		b.g.FallOff = b.newBlock()
		b.edge(last, b.g.FallOff)
		b.edge(b.g.FallOff, b.g.Exit)
	}
	if !b.ok {
		return nil, false
	}
	return b.g, true
}

func (b *builder) newBlock() *Block {
	blk := &Block{index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// condStmt synthesizes an evaluation pseudo-statement for an expression
// appearing in control-flow position.
func condStmt(e ast.Expr) ast.Stmt { return &ast.ExprStmt{X: e} }

// stmts threads the statement list through cur, returning the block
// control falls out of (nil if control cannot fall through).
func (b *builder) stmts(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after return/break/...; keep building into
			// a detached block so its statements still exist in the graph
			// (they're dead, analyses just never reach them).
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
		if !b.ok {
			return nil
		}
	}
	return cur
}

func (b *builder) stmt(cur *Block, s ast.Stmt) *Block {
	switch x := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(cur, x.List)

	case *ast.IfStmt:
		if x.Init != nil {
			cur = b.stmt(cur, x.Init)
		}
		cur.Stmts = append(cur.Stmts, condStmt(x.Cond))
		thenB := b.newBlock()
		thenB.Assume = &Assumption{Cond: x.Cond, Truth: true}
		b.edge(cur, thenB)
		thenEnd := b.stmts(thenB, x.Body.List)
		var elseEnd *Block
		elseB := b.newBlock()
		elseB.Assume = &Assumption{Cond: x.Cond, Truth: false}
		b.edge(cur, elseB)
		if x.Else != nil {
			elseEnd = b.stmt(elseB, x.Else)
		} else {
			elseEnd = elseB
		}
		join := b.newBlock()
		joined := false
		if thenEnd != nil {
			b.edge(thenEnd, join)
			joined = true
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
			joined = true
		}
		if !joined {
			return nil
		}
		return join

	case *ast.ForStmt:
		if x.Init != nil {
			cur = b.stmt(cur, x.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if x.Cond != nil {
			head.Stmts = append(head.Stmts, condStmt(x.Cond))
		}
		bodyB := b.newBlock()
		if x.Cond != nil {
			bodyB.Assume = &Assumption{Cond: x.Cond, Truth: true}
		}
		b.edge(head, bodyB)
		exit := b.newBlock()
		if x.Cond != nil {
			exit.Assume = &Assumption{Cond: x.Cond, Truth: false}
			b.edge(head, exit)
		}
		post := b.newBlock()
		b.breaks = append(b.breaks, exit)
		b.conts = append(b.conts, post)
		bodyEnd := b.stmts(bodyB, x.Body.List)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, post)
		}
		if x.Post != nil {
			end := b.stmt(post, x.Post)
			if end != nil {
				b.edge(end, head)
			}
		} else {
			b.edge(post, head)
		}
		// With no condition the only way out is break (or return inside).
		return exit

	case *ast.RangeStmt:
		cur.Stmts = append(cur.Stmts, condStmt(x.X))
		head := b.newBlock()
		b.edge(cur, head)
		if x.Key != nil || x.Value != nil {
			// Surface the per-iteration binding as an assignment so
			// transfer functions see key/value definitions.
			var lhs []ast.Expr
			if x.Key != nil {
				lhs = append(lhs, x.Key)
			}
			if x.Value != nil {
				lhs = append(lhs, x.Value)
			}
			head.Stmts = append(head.Stmts, &ast.AssignStmt{Lhs: lhs, Tok: x.Tok, Rhs: []ast.Expr{x.X}})
		}
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		exit := b.newBlock()
		b.edge(head, exit)
		b.breaks = append(b.breaks, exit)
		b.conts = append(b.conts, head)
		bodyEnd := b.stmts(bodyB, x.Body.List)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		if bodyEnd != nil {
			b.edge(bodyEnd, head)
		}
		return exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return b.branching(cur, s)

	case *ast.ReturnStmt:
		cur.Stmts = append(cur.Stmts, x)
		b.edge(cur, b.g.Exit)
		return nil

	case *ast.BranchStmt:
		switch x.Tok {
		case token.BREAK:
			if x.Label != nil || len(b.breaks) == 0 {
				b.ok = false
				return nil
			}
			b.edge(cur, b.breaks[len(b.breaks)-1])
			return nil
		case token.CONTINUE:
			if x.Label != nil || len(b.conts) == 0 {
				b.ok = false
				return nil
			}
			b.edge(cur, b.conts[len(b.conts)-1])
			return nil
		default: // goto, labeled fallthrough outside switch
			b.ok = false
			return nil
		}

	case *ast.LabeledStmt:
		// The label itself is fine; any branch *to* it is rejected above.
		b.ok = false
		return nil

	case *ast.ExprStmt:
		cur.Stmts = append(cur.Stmts, x)
		if isTerminatingCall(x.X) {
			return nil
		}
		return cur

	default:
		// Leaf statements: assignments, declarations, sends, incdec,
		// defer, go, empty.
		cur.Stmts = append(cur.Stmts, s)
		return cur
	}
}

// branching lowers switch/type-switch/select to case-per-edge form.
func (b *builder) branching(cur *Block, s ast.Stmt) *Block {
	var body *ast.BlockStmt
	switch x := s.(type) {
	case *ast.SwitchStmt:
		if x.Init != nil {
			cur = b.stmt(cur, x.Init)
		}
		if x.Tag != nil {
			cur.Stmts = append(cur.Stmts, condStmt(x.Tag))
		}
		body = x.Body
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			cur = b.stmt(cur, x.Init)
		}
		cur.Stmts = append(cur.Stmts, x.Assign)
		body = x.Body
	case *ast.SelectStmt:
		body = x.Body
	}
	join := b.newBlock()
	b.breaks = append(b.breaks, join)
	hasDefault := false
	// First pass: create case entry blocks (fallthrough needs the next
	// case's body block).
	type caseBody struct {
		entry *Block
		stmts []ast.Stmt
	}
	var cases []caseBody
	for _, cs := range body.List {
		entry := b.newBlock()
		b.edge(cur, entry)
		switch c := cs.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				entry.Stmts = append(entry.Stmts, condStmt(e))
			}
			if c.List == nil {
				hasDefault = true
			}
			cases = append(cases, caseBody{entry, c.Body})
		case *ast.CommClause:
			if c.Comm != nil {
				entry = b.stmt(entry, c.Comm)
			} else {
				hasDefault = true
			}
			cases = append(cases, caseBody{entry, c.Body})
		}
	}
	for i, c := range cases {
		end, fell := b.caseStmts(c.entry, c.stmts)
		if fell && i+1 < len(cases) {
			b.edge(end, cases[i+1].entry)
		} else if end != nil {
			b.edge(end, join)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault || len(cases) == 0 {
		// No default: the switch may match nothing and fall through
		// (selects without default block, but modeling a skip edge is
		// conservative for may-analyses and harmless for must ones).
		b.edge(cur, join)
	}
	return join
}

// caseStmts is stmts but reports whether the case ended in fallthrough.
func (b *builder) caseStmts(cur *Block, list []ast.Stmt) (end *Block, fellthrough bool) {
	for i, s := range list {
		if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
			if i != len(list)-1 || br.Label != nil {
				b.ok = false
				return nil, false
			}
			return cur, true
		}
		if cur == nil {
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
		if !b.ok {
			return nil, false
		}
	}
	return cur, false
}

// isTerminatingCall recognizes calls that never return, so paths ending
// in them are not treated as function exits: panic, os.Exit, log.Fatal*,
// log.Panic*, runtime.Goexit, and testing's FailNow/Fatal*/Skip* family.
func isTerminatingCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		name := fn.Sel.Name
		switch name {
		case "Exit", "Goexit", "FailNow", "SkipNow":
			return true
		}
		for _, prefix := range []string{"Fatal", "Panic", "Skip"} {
			if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
				return true
			}
		}
	}
	return false
}
