package flow

import "go/ast"

// An Analysis[S] defines one forward dataflow problem over a Graph.
// S is the per-program-point state (must be treated as immutable by
// Transfer/Assume — return fresh values).
type Analysis[S any] struct {
	// Init is the state on entry to the function.
	Init S
	// Join merges states at control-flow merge points.
	Join func(a, b S) S
	// Equal decides fixpoint convergence.
	Equal func(a, b S) bool
	// Transfer applies one statement's effect. Synthesized condition
	// evaluations arrive as *ast.ExprStmt; range bindings as
	// *ast.AssignStmt with the range operand as sole Rhs.
	Transfer func(s S, stmt ast.Stmt) S
	// Assume, if non-nil, refines the state on entry to a block guarded
	// by a branch condition (Block.Assume).
	Assume func(s S, a *Assumption) S
}

// A Result holds the fixpoint solution: the state before each block.
type Result[S any] struct {
	g        *Graph
	an       *Analysis[S]
	in       []S
	reached  []bool
	exitIdx  int
	hasState func(int) bool
}

// Solve runs the worklist algorithm to a fixpoint and returns the
// solution. Blocks never reached from entry report Reached()==false
// and are skipped by the visitation helpers.
func Solve[S any](g *Graph, an *Analysis[S]) *Result[S] {
	n := len(g.Blocks)
	r := &Result[S]{
		g:       g,
		an:      an,
		in:      make([]S, n),
		reached: make([]bool, n),
		exitIdx: g.Exit.index,
	}
	r.in[g.Entry.index] = an.Init
	r.reached[g.Entry.index] = true
	work := []*Block{g.Entry}
	inWork := make([]bool, n)
	inWork[g.Entry.index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.index] = false
		out := r.in[blk.index]
		for _, s := range blk.Stmts {
			out = an.Transfer(out, s)
		}
		for _, succ := range blk.Succs {
			next := out
			if an.Assume != nil && succ.Assume != nil {
				next = an.Assume(next, succ.Assume)
			}
			if r.reached[succ.index] {
				merged := an.Join(r.in[succ.index], next)
				if an.Equal(merged, r.in[succ.index]) {
					continue
				}
				r.in[succ.index] = merged
			} else {
				r.reached[succ.index] = true
				r.in[succ.index] = next
			}
			if !inWork[succ.index] {
				work = append(work, succ)
				inWork[succ.index] = true
			}
		}
	}
	return r
}

// Visit calls fn with the state holding immediately *before* each
// reachable statement, in an arbitrary block order. Use it to check
// per-statement conditions ("a Sign call while a lock is held").
func (r *Result[S]) Visit(fn func(state S, stmt ast.Stmt)) {
	for _, blk := range r.g.Blocks {
		if !r.reached[blk.index] {
			continue
		}
		s := r.in[blk.index]
		if r.an.Assume != nil && blk.Assume != nil {
			// in[] already has the assumption applied on edge entry; this
			// branch is only for completeness if in was seeded otherwise.
			_ = blk
		}
		for _, stmt := range blk.Stmts {
			fn(s, stmt)
			s = r.an.Transfer(s, stmt)
		}
	}
}

// At returns the fixpoint state on entry to blk, with ok=false for
// blocks unreachable from entry.
func (r *Result[S]) At(blk *Block) (S, bool) {
	if blk == nil || !r.reached[blk.index] {
		var zero S
		return zero, false
	}
	return r.in[blk.index], true
}

// AtExit returns the joined state over every function exit (return
// statements and falling off the end). ok=false when no exit is
// reachable (the function always panics or loops forever).
func (r *Result[S]) AtExit() (S, bool) {
	if !r.reached[r.exitIdx] {
		var zero S
		return zero, false
	}
	return r.in[r.exitIdx], true
}

// Returns calls fn with the state immediately before each reachable
// ReturnStmt, letting analyses distinguish individual exits (pinpair's
// "which return leaks the pin" reporting).
func (r *Result[S]) Returns(fn func(state S, ret *ast.ReturnStmt)) {
	r.Visit(func(state S, stmt ast.Stmt) {
		if ret, ok := stmt.(*ast.ReturnStmt); ok {
			fn(state, ret)
		}
	})
}
