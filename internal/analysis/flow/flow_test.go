package flow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f(a, b bool, n int) int {\n" + body + "\n}"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "flow_test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestBuildRejectsGoto(t *testing.T) {
	b := parseBody(t, "goto L\nL:\n\treturn 0")
	if g, ok := Build(b); ok {
		t.Fatalf("goto accepted: %d blocks", len(g.Blocks))
	}
}

func TestFallOffOnlyWhenControlFallsOffTheEnd(t *testing.T) {
	b := parseBody(t, "return 0")
	g, ok := Build(b)
	if !ok {
		t.Fatal("Build failed")
	}
	if g.FallOff != nil {
		t.Error("FallOff set for a body ending in return")
	}
	b = parseBody(t, "_ = a")
	if g, ok = Build(b); !ok {
		t.Fatal("Build failed")
	}
	if g.FallOff == nil {
		t.Error("FallOff missing for a body that falls off the end")
	}
}

// facts is the test lattice: a set of strings, joined by union.
type facts map[string]bool

func union(a, b facts) facts {
	out := make(facts, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func equal(a, b facts) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// assignAnalysis tracks which identifiers have been assigned (a
// may-analysis) and records branch assumptions on single-identifier
// conditions as "name=true"/"name=false" facts.
func assignAnalysis() *Analysis[facts] {
	return &Analysis[facts]{
		Init:  facts{},
		Join:  union,
		Equal: equal,
		Transfer: func(s facts, stmt ast.Stmt) facts {
			as, ok := stmt.(*ast.AssignStmt)
			if !ok {
				return s
			}
			out := union(s, nil)
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					out[id.Name] = true
				}
			}
			return out
		},
		Assume: func(s facts, a *Assumption) facts {
			id, ok := a.Cond.(*ast.Ident)
			if !ok {
				return s
			}
			out := union(s, nil)
			if a.Truth {
				out[id.Name+"=true"] = true
			} else {
				out[id.Name+"=false"] = true
			}
			return out
		},
	}
}

func TestSolveBranchSensitivity(t *testing.T) {
	b := parseBody(t, strings.Join([]string{
		"if a {",
		"\treturn 1",
		"}",
		"return 0",
	}, "\n"))
	g, ok := Build(b)
	if !ok {
		t.Fatal("Build failed")
	}
	res := Solve(g, assignAnalysis())
	var seen int
	res.Returns(func(s facts, ret *ast.ReturnStmt) {
		seen++
		lit, ok := ret.Results[0].(*ast.BasicLit)
		if !ok {
			t.Fatalf("unexpected return operand %T", ret.Results[0])
		}
		switch lit.Value {
		case "1": // then-branch: guarded by a==true
			if !s["a=true"] || s["a=false"] {
				t.Errorf("return 1 state %v, want a=true only", s)
			}
		case "0": // fall-through: guarded by a==false
			if !s["a=false"] || s["a=true"] {
				t.Errorf("return 0 state %v, want a=false only", s)
			}
		}
	})
	if seen != 2 {
		t.Fatalf("visited %d returns, want 2", seen)
	}
}

func TestSolveLoopFixpoint(t *testing.T) {
	b := parseBody(t, strings.Join([]string{
		"x := 0",
		"for i := 0; i < n; i++ {",
		"\tx = i",
		"\ty := x",
		"\t_ = y",
		"}",
		"return x",
	}, "\n"))
	g, ok := Build(b)
	if !ok {
		t.Fatal("Build failed")
	}
	res := Solve(g, assignAnalysis())
	var got facts
	res.Returns(func(s facts, ret *ast.ReturnStmt) { got = s })
	if got == nil {
		t.Fatal("return never visited")
	}
	// x assigned before the loop; i and y only inside it, but a
	// may-analysis sees them at the loop exit via the back edge.
	for _, want := range []string{"x", "i", "y"} {
		if !got[want] {
			t.Errorf("fact %q missing at return: %v", want, got)
		}
	}
}

func TestSolveSkipsCodeAfterTerminatingCall(t *testing.T) {
	b := parseBody(t, strings.Join([]string{
		"if a {",
		"\tpanic(\"no\")",
		"}",
		"x := 1",
		"return x",
	}, "\n"))
	g, ok := Build(b)
	if !ok {
		t.Fatal("Build failed")
	}
	res := Solve(g, assignAnalysis())
	res.Returns(func(s facts, ret *ast.ReturnStmt) {
		// The panic branch must not flow into the return: the only way
		// there is the a==false edge.
		if s["a=true"] {
			t.Errorf("panic branch reached the return: %v", s)
		}
		if !s["a=false"] || !s["x"] {
			t.Errorf("return state %v, want a=false and x", s)
		}
	})
}
