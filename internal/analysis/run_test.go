package analysis

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typecheck parses and type-checks one source file into the Package
// shape every driver hands to Run.
func typecheck(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}, Types: pkg, Info: info}
}

// calltrap reports every call to a function literally named "bad" —
// just enough analyzer to exercise Run's suppression and ordering.
var calltrap = &Analyzer{
	Name: "calltrap",
	Doc:  "reports calls to bad()",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestRunHonorsIgnoreDirectives(t *testing.T) {
	pkg := typecheck(t, `package p

func bad() {}

func f() {
	bad() //vetauth:ignore calltrap covered by construction

	bad() //vetauth:ignore otherrule this one does not match

	//vetauth:ignore
	bad()

	bad()
}
`)
	diags, err := Run(pkg, []*Analyzer{calltrap})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, pkg.Fset.Position(d.Pos).Line)
		if d.Analyzer != "calltrap" {
			t.Errorf("diagnostic attributed to %q, want calltrap", d.Analyzer)
		}
	}
	// Line 6: suppressed by name. Line 8: its directive names a
	// different analyzer, so it still fires. Line 11: suppressed by the
	// bare directive on the line above. Line 13: fires.
	want := []int{8, 13}
	if len(lines) != len(want) {
		t.Fatalf("diagnostics on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("diagnostics on lines %v, want %v", lines, want)
		}
	}
}

func TestValidateRejectsBadAnalyzerSets(t *testing.T) {
	missing := []*Analyzer{{Name: "", Doc: "d", Run: calltrap.Run}}
	if err := Validate(missing); err == nil {
		t.Error("Validate accepted an analyzer with no name")
	}
	norun := []*Analyzer{{Name: "norun", Doc: "d"}}
	if err := Validate(norun); err == nil {
		t.Error("Validate accepted an analyzer with no run function")
	}
	dup := []*Analyzer{calltrap, {Name: "calltrap", Doc: "d", Run: calltrap.Run}}
	if err := Validate(dup); err == nil {
		t.Error("Validate accepted duplicate analyzer names")
	}
}
