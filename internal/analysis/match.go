package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Helpers shared by the invariant analyzers. Matching is by package
// *base name* (the last path segment), never the full import path, so
// the analyzertest fixtures can mirror the real packages (sig, storage,
// wire, shardmap, verify, vo) under short fixture paths and still
// trigger the same rules.

// Callee resolves the static callee of a call, or nil for calls through
// function-typed variables, built-ins and type conversions.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// PkgBase returns the last segment of a function's package path, or ""
// for builtins and universe-scope functions.
func PkgBase(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return pathBase(f.Pkg().Path())
}

// unparen strips any number of enclosing parens.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// NamedOf dereferences pointers and reports the named type's package
// base and type name, or ("", "") for unnamed types.
func NamedOf(t types.Type) (pkgBase, name string) {
	if t == nil {
		return "", ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		if p, ok := t.(*types.Pointer); ok {
			n, ok = p.Elem().(*types.Named)
			if !ok {
				return "", ""
			}
		} else {
			return "", ""
		}
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return pathBase(obj.Pkg().Path()), obj.Name()
}

// ReceiverType returns the (possibly pointer-stripped) named type of a
// method call's receiver expression, or ("", "").
func ReceiverType(info *types.Info, call *ast.CallExpr) (pkgBase, name string) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", ""
	}
	return NamedOf(tv.Type)
}

// MethodName returns a call's selector method/function name ("" when the
// callee is not a selector or plain identifier).
func MethodName(call *ast.CallExpr) string {
	switch fn := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// RootIdent walks selector/index/star/paren chains to the root
// identifier: RootIdent(a.b[i].c) = a. Nil when the chain roots in a
// call or literal.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ExprPath renders a pure selector chain (a.b.c) as a string key, or ""
// for anything more exotic. Used to identify lock and snapshot objects
// syntactically.
func ExprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := ExprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.ParenExpr:
		return ExprPath(x.X)
	default:
		return ""
	}
}

// InspectShallow walks n without descending into function literals —
// the traversal analyzers use when scanning one function body for
// events, since a nested closure is its own analysis scope.
func InspectShallow(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// FuncBodies yields every function body in the file — declarations and
// function literals — along with the enclosing *ast.FuncDecl (the
// declaration itself, or the declaration a literal is nested in; nil
// for literals in package-level var initializers) and the literal
// itself (nil for declarations). Each body is an independent analysis
// scope.
func FuncBodies(f *ast.File, visit func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	var cur *ast.FuncDecl
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Body != nil {
				cur = x
				visit(x, nil, x.Body)
			}
			return true
		case *ast.FuncLit:
			var decl *ast.FuncDecl
			if cur != nil && cur.Pos() <= x.Pos() && x.End() <= cur.End() {
				decl = cur
			}
			visit(decl, x, x.Body)
			return true
		}
		return true
	})
}

// IsTestFile reports whether the file's recorded position is a _test.go
// file (analyzers that exempt tests check this per file).
func IsTestFile(pass *Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
