package verify

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"

	"edgeauth/internal/digest"
	"edgeauth/internal/sig"
)

// DefaultCacheSize is the verified-digest cache capacity used when
// Verifier.CacheSize is zero.
const DefaultCacheSize = 1024

// sigCache remembers which payload a signature was proven to carry, so
// repeat queries over the same tree region (the common case: hot ranges,
// unchanged shards) skip the signature work entirely. Keyed by the raw
// signature bytes; an entry is only ever written after a successful
// recovery or detached verification, so a hit is as trustworthy as the
// original check. Bounded by random-ish eviction (map iteration order):
// the cache is an amortizer, not a store, and any eviction policy keeps
// it correct.
type sigCache struct {
	mu     sync.Mutex
	m      map[string]digest.Value
	max    int
	hits   atomic.Int64
	misses atomic.Int64
}

func newSigCache(max int) *sigCache {
	return &sigCache{m: make(map[string]digest.Value, max), max: max}
}

// lookup returns the proven payload for a signature, if cached.
func (c *sigCache) lookup(key string) (digest.Value, bool) {
	c.mu.Lock()
	u, ok := c.m[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return u, true
	}
	c.misses.Add(1)
	return nil, false
}

// store records a proven (signature, payload) pair, evicting arbitrary
// entries at capacity.
func (c *sigCache) store(key string, u digest.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			if len(c.m) < c.max {
				break
			}
		}
	}
	c.m[key] = append(digest.Value(nil), u...)
}

// CacheStats reports the verified-digest cache's hit/miss ledger.
type CacheStats struct {
	Hits   int64
	Misses int64
}

// cache lazily initializes the verifier's digest cache; returns nil when
// caching is disabled (CacheSize < 0).
func (v *Verifier) cache() *sigCache {
	if v.CacheSize < 0 {
		return nil
	}
	v.cacheOnce.Do(func() {
		size := v.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		v.digestCache = newSigCache(size)
	})
	return v.digestCache
}

// CacheStats returns the verifier's cache ledger (zeros when disabled).
func (v *Verifier) CacheStats() CacheStats {
	if v.CacheSize < 0 || v.digestCache == nil {
		return CacheStats{}
	}
	return CacheStats{Hits: v.digestCache.hits.Load(), Misses: v.digestCache.misses.Load()}
}

// cachedRecover is recoverDigest through the verified-digest cache.
func (v *Verifier) cachedRecover(pub *sig.PublicKey, s sig.Signature) (digest.Value, error) {
	c := v.cache()
	if c == nil {
		return recoverDigest(pub, v.Acc, s)
	}
	if u, ok := c.lookup(string(s)); ok {
		return u, nil
	}
	u, err := recoverDigest(pub, v.Acc, s)
	if err != nil {
		return nil, err
	}
	c.store(string(s), u)
	return u, nil
}

// cachedVerifySig checks that s authenticates want (detached form),
// consulting the cache first. Used for Merkle root signatures, where the
// payload travels in the clear.
func (v *Verifier) cachedVerifySig(pub *sig.PublicKey, s sig.Signature, want []byte) error {
	c := v.cache()
	if c == nil {
		if err := pub.Verify(s, want); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSignature, err)
		}
		return nil
	}
	if u, ok := c.lookup(string(s)); ok {
		if bytes.Equal(u, want) {
			return nil
		}
		// Same signature bytes claimed over a different payload: fall
		// through to the real check (it will fail for a forgery).
	}
	if err := pub.Verify(s, want); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	c.store(string(s), digest.Value(want))
	return nil
}
