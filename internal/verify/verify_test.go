package verify

import (
	"errors"
	"sync"
	"testing"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
)

// These tests rebuild the verification equation by hand — attribute
// hashes, tuple digests, leaf and root digests, signatures — without using
// the vbtree package, so they cross-check the verifier's lift algebra
// against an independent derivation of the paper's formulas (1)–(5).

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func signer(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

func testSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "db",
		Table: "t",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "val", Type: schema.TypeString},
		},
		Key: 0,
	}
}

// handTree builds digests for tuples (id=i, val=v[i]) grouped into leaves,
// exactly per formulas (1)-(3).
type handTree struct {
	acc    *digest.Accumulator
	key    *sig.PrivateKey
	sch    *schema.Schema
	tuples []schema.Tuple
	uT     []digest.Value  // unsigned tuple digests
	dT     []sig.Signature // signed tuple digests
	attrs  [][]digest.Value
	aSigs  [][]sig.Signature
}

func buildHand(t *testing.T, vals []string) *handTree {
	t.Helper()
	h := &handTree{
		acc: digest.MustNew(digest.DefaultParams()),
		key: signer(t),
		sch: testSchema(),
	}
	for i, v := range vals {
		tup := schema.NewTuple(schema.Int64(int64(i)), schema.Str(v))
		kb := tup.Key(h.sch).KeyBytes()
		var as []digest.Value
		var asig []sig.Signature
		acc := h.acc.NewAcc()
		for c, val := range tup.Values {
			d := h.acc.HashAttribute(h.sch.DB, h.sch.Table, h.sch.Columns[c].Name, kb, val.CanonicalBytes())
			as = append(as, d)
			s, err := h.key.Sign(d)
			if err != nil {
				t.Fatal(err)
			}
			asig = append(asig, s)
			if err := acc.Add(d); err != nil {
				t.Fatal(err)
			}
		}
		ut := acc.Value()
		dt, err := h.key.Sign(ut)
		if err != nil {
			t.Fatal(err)
		}
		h.tuples = append(h.tuples, tup)
		h.uT = append(h.uT, ut)
		h.dT = append(h.dT, dt)
		h.attrs = append(h.attrs, as)
		h.aSigs = append(h.aSigs, asig)
	}
	return h
}

// combine folds unsigned digests per formula (3).
func (h *handTree) combine(t *testing.T, us ...digest.Value) digest.Value {
	t.Helper()
	v, err := h.acc.Combine(us...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func (h *handTree) sign(t *testing.T, u digest.Value) sig.Signature {
	t.Helper()
	s, err := h.key.Sign(u)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (h *handTree) verifier() *Verifier {
	return &Verifier{Key: h.key.Public(), Acc: h.acc, Schema: h.sch}
}

func TestHandBuiltLeafLevelVO(t *testing.T) {
	// One leaf holding t0..t3; query returns {t0, t2}; t1 and t3 are
	// filtered tuples in D_S at lift L = 1.
	h := buildHand(t, []string{"a", "b", "c", "d"})
	uLeaf := h.combine(t, h.uT...)
	rs := &vo.ResultSet{
		DB: "db", Table: "t",
		Columns: []string{"id", "val"},
		Keys:    []schema.Datum{h.tuples[0].Values[0], h.tuples[2].Values[0]},
		Tuples:  []schema.Tuple{h.tuples[0], h.tuples[2]},
	}
	w := &vo.VO{
		Timestamp: time.Now().Unix(),
		TopLevel:  1,
		TopDigest: h.sign(t, uLeaf),
		DS: []vo.Entry{
			{Sig: h.dT[1], Lift: 1},
			{Sig: h.dT[3], Lift: 1},
		},
	}
	if err := h.verifier().Verify(rs, w); err != nil {
		t.Fatalf("hand-built leaf VO rejected: %v", err)
	}
	// Sanity: a wrong result value breaks it.
	rs.Tuples[0].Values[1] = schema.Str("tampered")
	if err := h.verifier().Verify(rs, w); err == nil {
		t.Fatal("tampered hand-built result accepted")
	}
}

func TestHandBuiltTwoLevelVO(t *testing.T) {
	// Two leaves: L1 = {t0,t1}, L2 = {t2,t3}; root combines them.
	// The query returns the whole of L1; L2 is a filtered branch at
	// lift = L - 1 = 1; tuples of L1 contribute at implicit lift L = 2.
	h := buildHand(t, []string{"a", "b", "c", "d"})
	uL1 := h.combine(t, h.uT[0], h.uT[1])
	uL2 := h.combine(t, h.uT[2], h.uT[3])
	uRoot := h.combine(t, uL1, uL2)
	rs := &vo.ResultSet{
		DB: "db", Table: "t",
		Columns: []string{"id", "val"},
		Keys:    []schema.Datum{h.tuples[0].Values[0], h.tuples[1].Values[0]},
		Tuples:  []schema.Tuple{h.tuples[0], h.tuples[1]},
	}
	w := &vo.VO{
		Timestamp: time.Now().Unix(),
		TopLevel:  2,
		TopDigest: h.sign(t, uRoot),
		DS:        []vo.Entry{{Sig: h.sign(t, uL2), Lift: 1}},
	}
	if err := h.verifier().Verify(rs, w); err != nil {
		t.Fatalf("hand-built two-level VO rejected: %v", err)
	}
	// Mixed lifts: result {t0}, filtered tuple t1 at lift 2, branch L2 at
	// lift 1.
	rs2 := &vo.ResultSet{
		DB: "db", Table: "t",
		Columns: []string{"id", "val"},
		Keys:    []schema.Datum{h.tuples[0].Values[0]},
		Tuples:  []schema.Tuple{h.tuples[0]},
	}
	w2 := &vo.VO{
		Timestamp: time.Now().Unix(),
		TopLevel:  2,
		TopDigest: h.sign(t, uRoot),
		DS: []vo.Entry{
			{Sig: h.dT[1], Lift: 2},
			{Sig: h.sign(t, uL2), Lift: 1},
		},
	}
	if err := h.verifier().Verify(rs2, w2); err != nil {
		t.Fatalf("mixed-lift VO rejected: %v", err)
	}
	// Wrong lift on the filtered tuple must fail.
	w2.DS[0].Lift = 1
	if err := h.verifier().Verify(rs2, w2); err == nil {
		t.Fatal("wrong lift accepted")
	}
}

func TestHandBuiltProjectionVO(t *testing.T) {
	// Single leaf; query projects to {id}; "val" digests travel in D_P
	// (formula (5): they get lift L + 1 via the attribute product).
	h := buildHand(t, []string{"a", "b"})
	uLeaf := h.combine(t, h.uT...)
	rs := &vo.ResultSet{
		DB: "db", Table: "t",
		Columns: []string{"id"},
		Keys:    []schema.Datum{h.tuples[0].Values[0], h.tuples[1].Values[0]},
		Tuples: []schema.Tuple{
			{Values: []schema.Datum{h.tuples[0].Values[0]}},
			{Values: []schema.Datum{h.tuples[1].Values[0]}},
		},
	}
	w := &vo.VO{
		Timestamp: time.Now().Unix(),
		TopLevel:  1,
		TopDigest: h.sign(t, uLeaf),
		DP:        []sig.Signature{h.aSigs[0][1], h.aSigs[1][1]},
	}
	if err := h.verifier().Verify(rs, w); err != nil {
		t.Fatalf("hand-built projection VO rejected: %v", err)
	}
	// D_P digests are order-free (commutativity): swapped order passes.
	w.DP[0], w.DP[1] = w.DP[1], w.DP[0]
	if err := h.verifier().Verify(rs, w); err != nil {
		t.Fatalf("reordered D_P rejected: %v", err)
	}
	// Dropping one D_P digest fails the count check.
	w.DP = w.DP[:1]
	if err := h.verifier().Verify(rs, w); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short D_P: %v, want ErrMalformed", err)
	}
}

func TestVerifierConfigErrors(t *testing.T) {
	h := buildHand(t, []string{"a"})
	rs := &vo.ResultSet{DB: "db", Table: "t", Columns: []string{"id", "val"}}
	w := &vo.VO{Timestamp: time.Now().Unix(), TopLevel: 1, TopDigest: h.dT[0]}

	bad := &Verifier{}
	if err := bad.Verify(rs, w); err == nil {
		t.Fatal("unconfigured verifier accepted input")
	}
	noKey := &Verifier{Acc: h.acc, Schema: h.sch}
	if err := noKey.Verify(rs, w); err == nil {
		t.Fatal("verifier with no trusted key accepted input")
	}
	// Wrong pinned key version.
	pk := h.key.Public()
	pk.Version = 5
	wrongVer := &Verifier{Key: pk, Acc: h.acc, Schema: h.sch}
	if err := wrongVer.Verify(rs, w); !errors.Is(err, ErrKeyVersion) {
		t.Fatalf("wrong key version: %v", err)
	}
}

func TestVerifyTupleHandBuilt(t *testing.T) {
	h := buildHand(t, []string{"x"})
	st := &vo.StoredTuple{Tuple: h.tuples[0], AttrSigs: h.aSigs[0]}
	v := h.verifier()
	if err := v.VerifyTuple(st, h.dT[0], h.key.Public()); err != nil {
		t.Fatalf("VerifyTuple rejected authentic tuple: %v", err)
	}
	// Wrong tuple signature.
	if err := v.VerifyTuple(st, h.aSigs[0][0], h.key.Public()); err == nil {
		t.Fatal("mismatched tuple signature accepted")
	}
	// Tampered value.
	st.Tuple.Values[1] = schema.Str("oops")
	if err := v.VerifyTuple(st, h.dT[0], h.key.Public()); err == nil {
		t.Fatal("tampered tuple accepted")
	}
	// Signature count mismatch.
	st2 := &vo.StoredTuple{Tuple: h.tuples[0], AttrSigs: h.aSigs[0][:1]}
	if err := v.VerifyTuple(st2, h.dT[0], h.key.Public()); err == nil {
		t.Fatal("short signature list accepted")
	}
}

func TestVerifyRejectsTypeMismatch(t *testing.T) {
	h := buildHand(t, []string{"a"})
	uLeaf := h.combine(t, h.uT...)
	rs := &vo.ResultSet{
		DB: "db", Table: "t",
		Columns: []string{"id", "val"},
		Keys:    []schema.Datum{h.tuples[0].Values[0]},
		Tuples:  []schema.Tuple{{Values: []schema.Datum{schema.Str("not-an-int"), h.tuples[0].Values[1]}}},
	}
	w := &vo.VO{Timestamp: time.Now().Unix(), TopLevel: 1, TopDigest: h.sign(t, uLeaf)}
	if err := h.verifier().Verify(rs, w); !errors.Is(err, ErrMalformed) {
		t.Fatalf("type-mismatched tuple: %v, want ErrMalformed", err)
	}
}
