package verify

import (
	"errors"
	"testing"
	"time"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
)

// freshLeafVO builds a valid single-leaf response over the hand tree.
func freshLeafVO(t *testing.T, h *handTree, ts int64, keyVersion uint32) (*vo.ResultSet, *vo.VO) {
	t.Helper()
	uLeaf := h.combine(t, h.uT...)
	rs := &vo.ResultSet{
		DB: "db", Table: "t",
		Columns: []string{"id", "val"},
		Keys:    []schema.Datum{h.tuples[0].Values[0], h.tuples[1].Values[0]},
		Tuples:  []schema.Tuple{h.tuples[0], h.tuples[1]},
	}
	w := &vo.VO{
		KeyVersion: keyVersion,
		Timestamp:  ts,
		TopLevel:   1,
		TopDigest:  h.sign(t, uLeaf),
	}
	return rs, w
}

// TestBackdatedVOResurrectsExpiredKeyOnlyUnderOldSemantics is the §3.4
// regression test: a compromised edge replays data signed under an
// expired key and backdates the VO timestamp into that key's validity
// window. The old client resolved key validity at the EDGE-supplied
// timestamp and accepted; the fixed client resolves at its own clock and
// rejects with ErrKeyVersion.
func TestBackdatedVOResurrectsExpiredKeyOnlyUnderOldSemantics(t *testing.T) {
	h := buildHand(t, []string{"a", "b"})

	// Key version 7: valid only during an ancient window.
	reg := sig.NewRegistry()
	old := h.key.Public()
	old.Version = 7
	old.NotBefore = 1_000
	old.NotAfter = 2_000
	reg.Put(old)

	// The attack: a response signed under v7, stamped inside v7's window.
	rs, w := freshLeafVO(t, h, 1_500, 7)

	// Old semantics (clock := the edge's timestamp): accepted. This is
	// what the pre-fix code did by passing VO.Timestamp to resolveKey.
	legacy := &Verifier{Keys: reg, Acc: h.acc, Schema: h.sch,
		Now: func() int64 { return w.Timestamp }}
	if err := legacy.Verify(rs, w); err != nil {
		t.Fatalf("sanity: the old trust-the-edge-clock semantics no longer accept the backdated VO: %v", err)
	}

	// Fixed semantics: the client's own clock says v7 is long expired.
	fixed := &Verifier{Keys: reg, Acc: h.acc, Schema: h.sch}
	if err := fixed.Verify(rs, w); !errors.Is(err, ErrKeyVersion) {
		t.Fatalf("backdated VO: %v, want ErrKeyVersion", err)
	}
}

// TestFreshnessWindow covers the skew bound in both directions and its
// configurability.
func TestFreshnessWindow(t *testing.T) {
	h := buildHand(t, []string{"a", "b"})
	now := time.Now().Unix()

	// Within the default window: accepted.
	rs, w := freshLeafVO(t, h, now-30, 0)
	if err := h.verifier().Verify(rs, w); err != nil {
		t.Fatalf("fresh VO rejected: %v", err)
	}

	// Backdated beyond the window: rejected even though the pinned key is
	// unbounded — staleness itself is the signal. Matches both sentinels:
	// ErrKeyVersion (the §3.4 class) and ErrFreshness (so clients skip
	// the key-refetch recovery that cannot repair a stale timestamp).
	rs, w = freshLeafVO(t, h, now-3600, 0)
	err := h.verifier().Verify(rs, w)
	if !errors.Is(err, ErrKeyVersion) || !errors.Is(err, ErrFreshness) {
		t.Fatalf("hour-old VO: %v, want ErrKeyVersion and ErrFreshness", err)
	}

	// Future-dated: rejected.
	rs, w = freshLeafVO(t, h, now+3600, 0)
	err = h.verifier().Verify(rs, w)
	if !errors.Is(err, ErrKeyVersion) || !errors.Is(err, ErrFreshness) {
		t.Fatalf("future VO: %v, want ErrKeyVersion and ErrFreshness", err)
	}

	// A genuine unknown-key failure is NOT a freshness failure.
	rs, w = freshLeafVO(t, h, now, 9)
	if err := h.verifier().Verify(rs, w); !errors.Is(err, ErrKeyVersion) || errors.Is(err, ErrFreshness) {
		t.Fatalf("unknown key version: %v, want ErrKeyVersion without ErrFreshness", err)
	}

	// A wider configured window admits the hour-old response.
	wide := &Verifier{Key: h.key.Public(), Acc: h.acc, Schema: h.sch, MaxClockSkew: 2 * time.Hour}
	rs, w = freshLeafVO(t, h, now-3600, 0)
	if err := wide.Verify(rs, w); err != nil {
		t.Fatalf("VO within widened skew rejected: %v", err)
	}

	// Negative disables the timestamp bound entirely.
	off := &Verifier{Key: h.key.Public(), Acc: h.acc, Schema: h.sch, MaxClockSkew: -1}
	rs, w = freshLeafVO(t, h, 12, 0)
	if err := off.Verify(rs, w); err != nil {
		t.Fatalf("VO with skew check disabled rejected: %v", err)
	}
}

// TestKeyValidityUsesClientClock: even with the timestamp bound disabled,
// an expired key cannot be resurrected, because validity is resolved at
// the client's clock.
func TestKeyValidityUsesClientClock(t *testing.T) {
	h := buildHand(t, []string{"a", "b"})
	expired := h.key.Public()
	expired.NotAfter = 2_000 // expired decades ago
	v := &Verifier{Key: expired, Acc: h.acc, Schema: h.sch, MaxClockSkew: -1}
	rs, w := freshLeafVO(t, h, 1_500, 0)
	if err := v.Verify(rs, w); !errors.Is(err, ErrKeyVersion) {
		t.Fatalf("expired key with skew disabled: %v, want ErrKeyVersion", err)
	}
}
