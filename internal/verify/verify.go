// Package verify implements the client side of the authentication
// protocol: given a query result and its verification object, it
// recomputes the enveloping subtree's digest and compares it against the
// signed digest from the trusted central server (Lemmas 1 and 2 of the
// paper).
//
// The verification equation, for an enveloping subtree top at level L
// (leaves = 1), is
//
//	s⁻¹(D_N) = Π_j g^L(U_Tj)                 — result tuples
//	         · Π g^(L+1)(s⁻¹(d)), d ∈ D_P    — filtered attributes
//	         · Π g^lift(s⁻¹(d)), (d,lift) ∈ D_S — filtered tuples/branches
//	                                             (mod m)
//
// where U_Tj is recomputed from the returned attribute values with the
// one-way hash h of formula (1). Each result tuple's partial digest is the
// product of its computed attribute digests; because g is multiplicative,
// the per-tuple products and the D_P digests can be accumulated in a
// single flat product and lifted together. Any change to a returned value,
// any dropped digest, or any spurious tuple breaks the equation with
// overwhelming probability; a forged signature fails structural recovery.
package verify

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
)

// Errors distinguishing rejection causes (all wrap ErrVerification).
var (
	// ErrVerification is the base failure: the reconstructed digest does
	// not match the signed digest.
	ErrVerification = errors.New("verify: result failed verification")
	// ErrBadSignature marks a VO digest whose signature does not recover.
	ErrBadSignature = errors.New("verify: invalid signature in VO")
	// ErrKeyVersion marks an unknown or expired signing-key version.
	ErrKeyVersion = errors.New("verify: signing key version not valid")
	// ErrFreshness marks a VO timestamp outside the clock-skew window
	// (backdated or future-dated response). Freshness failures also match
	// ErrKeyVersion — they are the §3.4 key-masquerade defence — but the
	// distinct sentinel lets clients skip recovery steps (like refetching
	// the trusted key) that cannot fix a stale timestamp.
	ErrFreshness = errors.New("verify: response timestamp not fresh")
	// ErrMalformed marks a structurally invalid result or VO.
	ErrMalformed = errors.New("verify: malformed result or VO")
)

// DefaultMaxClockSkew is the freshness window applied when
// Verifier.MaxClockSkew is zero: how far a VO's timestamp may deviate
// from the verifier's own clock (either direction) before the response is
// rejected.
const DefaultMaxClockSkew = 5 * time.Minute

// Verifier checks query results against the central server's public keys.
type Verifier struct {
	// Keys resolves key versions. Either Keys or Key must be set.
	Keys *sig.Registry
	// Key pins a single public key (used when no registry is deployed).
	Key *sig.PublicKey
	// Acc must match the accumulator parameters the central server used.
	Acc *digest.Accumulator
	// Schema is the base-table schema (for column name/type resolution).
	Schema *schema.Schema
	// Now supplies the verifier's own clock (Unix seconds); nil selects
	// time.Now. Key validity (§3.4) is resolved against THIS clock — the
	// VO's timestamp is attacker-controlled on a compromised edge, so
	// trusting it would let a backdated response resurrect an expired
	// signing key.
	Now func() int64
	// MaxClockSkew bounds |Now - VO.Timestamp|: responses stamped further
	// in the past (edge replaying an old answer) or the future
	// (pre-forging against an upcoming window) are rejected with
	// ErrKeyVersion. 0 selects DefaultMaxClockSkew; negative disables the
	// timestamp bound (key validity is still checked at Now).
	MaxClockSkew time.Duration
	// CacheSize bounds the verified-digest cache: signatures already
	// proven once (recovered or detached-verified) are answered from
	// memory, so repeat queries over unchanged tree regions skip
	// signature work entirely. 0 selects DefaultCacheSize; negative
	// disables caching.
	CacheSize int

	cacheOnce   sync.Once
	digestCache *sigCache
}

// now resolves the verifier's clock.
func (v *Verifier) now() int64 {
	if v.Now != nil {
		return v.Now()
	}
	return time.Now().Unix()
}

// skewSeconds resolves MaxClockSkew; negative means disabled. Positive
// sub-second windows round up to one second (the VO timestamp has
// one-second resolution, so a zero-second window would reject almost
// everything).
func (v *Verifier) skewSeconds() int64 {
	switch {
	case v.MaxClockSkew == 0:
		return int64(DefaultMaxClockSkew / time.Second)
	case v.MaxClockSkew < 0:
		return -1
	default:
		return int64((v.MaxClockSkew + time.Second - 1) / time.Second)
	}
}

// checkFreshness rejects VO timestamps outside the clock-skew window
// around the verifier's own clock.
func (v *Verifier) checkFreshness(voTimestamp, atUnix int64) error {
	skew := v.skewSeconds()
	if skew < 0 {
		return nil
	}
	if voTimestamp < atUnix-skew {
		return fmt.Errorf("%w: %w: VO timestamp %d is %ds behind the client clock %d (max skew %ds) — backdated response",
			ErrKeyVersion, ErrFreshness, voTimestamp, atUnix-voTimestamp, atUnix, skew)
	}
	if voTimestamp > atUnix+skew {
		return fmt.Errorf("%w: %w: VO timestamp %d is %ds ahead of the client clock %d (max skew %ds) — future-dated response",
			ErrKeyVersion, ErrFreshness, voTimestamp, voTimestamp-atUnix, atUnix, skew)
	}
	return nil
}

// resolveKey picks the public key for a VO. atUnix is the verifier's own
// clock reading, never the edge-supplied timestamp.
func (v *Verifier) resolveKey(keyVersion uint32, atUnix int64) (*sig.PublicKey, error) {
	if v.Keys != nil {
		k, err := v.Keys.Resolve(keyVersion, atUnix)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrKeyVersion, err)
		}
		return k, nil
	}
	if v.Key == nil {
		return nil, errors.New("verify: no trusted key configured")
	}
	if v.Key.Version != keyVersion {
		return nil, fmt.Errorf("%w: VO signed with version %d, trusted key is %d",
			ErrKeyVersion, keyVersion, v.Key.Version)
	}
	if !v.Key.ValidAt(atUnix) {
		return nil, fmt.Errorf("%w: trusted key expired", ErrKeyVersion)
	}
	return v.Key, nil
}

// Verify checks rs against w. A nil error means the result is authentic:
// the returned values are untampered and no spurious tuples are present.
func (v *Verifier) Verify(rs *vo.ResultSet, w *vo.VO) error {
	_, err := v.verify(rs, w)
	return err
}

// verify is Verify returning the recovered top digest on success, so
// callers that additionally bind the envelope (VerifyAnchored) don't
// pay a second RSA recovery of the same signature.
func (v *Verifier) verify(rs *vo.ResultSet, w *vo.VO) (digest.Value, error) {
	if v.Acc == nil || v.Schema == nil {
		return nil, errors.New("verify: verifier not configured")
	}
	if rs == nil || w == nil {
		return nil, fmt.Errorf("%w: missing result or VO", ErrMalformed)
	}
	if err := rs.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if rs.DB != v.Schema.DB || rs.Table != v.Schema.Table {
		return nil, fmt.Errorf("%w: result identity %s.%s does not match schema %s.%s",
			ErrMalformed, rs.DB, rs.Table, v.Schema.DB, v.Schema.Table)
	}
	if w.TopLevel < 1 {
		return nil, fmt.Errorf("%w: top level %d", ErrMalformed, w.TopLevel)
	}
	// Freshness (§3.4): the key's validity is resolved against the
	// client's own clock. The VO timestamp comes from the untrusted edge —
	// it is only checked for plausibility (within the skew window), never
	// used to time-travel key validity.
	at := v.now()
	if err := v.checkFreshness(w.Timestamp, at); err != nil {
		return nil, err
	}
	pub, err := v.resolveKey(w.KeyVersion, at)
	if err != nil {
		return nil, err
	}

	// Map result columns to schema columns, and find which are filtered.
	colIdx := make([]int, len(rs.Columns))
	seen := make(map[int]bool, len(rs.Columns))
	for i, name := range rs.Columns {
		ci := v.Schema.ColumnIndex(name)
		if ci < 0 {
			return nil, fmt.Errorf("%w: unknown column %q", ErrMalformed, name)
		}
		if seen[ci] {
			return nil, fmt.Errorf("%w: duplicate column %q", ErrMalformed, name)
		}
		seen[ci] = true
		colIdx[i] = ci
	}
	nFilteredPerTuple := len(v.Schema.Columns) - len(rs.Columns)
	if want := nFilteredPerTuple * len(rs.Tuples); len(w.DP) != want {
		return nil, fmt.Errorf("%w: D_P carries %d digests, want %d", ErrMalformed, len(w.DP), want)
	}

	// Anchor the envelope. The verification shape is derived from the
	// TRUSTED key's scheme, never from the VO's own fields — an edge that
	// lies about the scheme (cross-scheme confusion) can only fail here.
	merkle := pub.Scheme.Merkle()
	var topU digest.Value
	if merkle {
		// Merkle scheme: TopDigest is the raw root digest, RootSig the
		// central's signature over it — the single signature check of the
		// whole VO.
		if len(w.TopDigest) != v.Acc.Len() {
			return nil, fmt.Errorf("%w: merkle top digest has %d bytes, want %d",
				ErrBadSignature, len(w.TopDigest), v.Acc.Len())
		}
		if len(w.RootSig) == 0 {
			return nil, fmt.Errorf("%w: merkle VO is missing the root signature", ErrBadSignature)
		}
		if err := v.cachedVerifySig(pub, w.RootSig, w.TopDigest); err != nil {
			return nil, err
		}
		topU = digest.Value(w.TopDigest)
	} else {
		// Legacy scheme: every digest is individually signed and there is
		// no detached root signature. A VO carrying one is malformed — or
		// an attacker replaying merkle-shaped material under an RSA-full
		// key version.
		if len(w.RootSig) != 0 {
			return nil, fmt.Errorf("%w: unexpected root signature under the %v scheme",
				ErrBadSignature, pub.Scheme)
		}
		topU, err = v.cachedRecover(pub, w.TopDigest)
		if err != nil {
			return nil, err
		}
	}

	L := int(w.TopLevel)

	// Attribute-level product: computed digests for returned values plus
	// recovered digests for projected-out attributes. Lifted L+1 times.
	attrAcc := v.Acc.NewAcc()
	for j := range rs.Tuples {
		keyBytes := rs.Keys[j].KeyBytes()
		for i, ci := range colIdx {
			val := rs.Tuples[j].Values[i]
			if val.Type != v.Schema.Columns[ci].Type {
				return nil, fmt.Errorf("%w: tuple %d column %q has type %v, want %v",
					ErrMalformed, j, rs.Columns[i], val.Type, v.Schema.Columns[ci].Type)
			}
			d := v.Acc.HashAttribute(rs.DB, rs.Table, v.Schema.Columns[ci].Name, keyBytes, val.CanonicalBytes())
			if err := attrAcc.Add(d); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
			}
		}
	}
	for _, ds := range w.DP {
		u, err := v.entryDigest(pub, ds)
		if err != nil {
			return nil, err
		}
		if err := attrAcc.Add(u); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	product, err := v.Acc.Lift(attrAcc.Value(), L) // attribute level is L+1; Acc already applied one g
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}

	// D_S: filtered tuples and branches at their tagged lifts.
	for i, e := range w.DS {
		if int(e.Lift) < 1 || int(e.Lift) > L {
			return nil, fmt.Errorf("%w: D_S entry %d has lift %d outside [1,%d]", ErrMalformed, i, e.Lift, L)
		}
		u, err := v.entryDigest(pub, e.Sig)
		if err != nil {
			return nil, err
		}
		lifted, err := v.Acc.Lift(u, int(e.Lift))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
		product, err = v.Acc.Mul(product, lifted)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}

	if !product.Equal(topU) {
		return nil, fmt.Errorf("%w: digest mismatch (computed %v, signed %v)", ErrVerification, product, topU)
	}
	return topU, nil
}

// entryDigest reads the unsigned digest committed by a VO entry: a
// length-checked cast under a Merkle scheme (the entries are the raw
// digests — zero signature work), a cached s⁻¹ recovery under the legacy
// scheme.
func (v *Verifier) entryDigest(pub *sig.PublicKey, s sig.Signature) (digest.Value, error) {
	if pub.Scheme.Merkle() {
		if len(s) != v.Acc.Len() {
			return nil, fmt.Errorf("%w: merkle entry has %d bytes, want %d",
				ErrBadSignature, len(s), v.Acc.Len())
		}
		return digest.Value(s), nil
	}
	return v.cachedRecover(pub, s)
}

// recoverDigest applies s⁻¹ and validates the digest length.
func recoverDigest(pub *sig.PublicKey, acc *digest.Accumulator, s sig.Signature) (digest.Value, error) {
	payload, err := pub.Recover(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	if len(payload) != acc.Len() {
		return nil, fmt.Errorf("%w: recovered %d bytes, want %d", ErrBadSignature, len(payload), acc.Len())
	}
	return digest.Value(payload), nil
}

// VerifyTuple authenticates a single stored tuple against its signed
// attribute digests and signed tuple digest — the unit check used by the
// Naive baseline and by point lookups.
func (v *Verifier) VerifyTuple(st *vo.StoredTuple, tupleSig sig.Signature, pub *sig.PublicKey) error {
	if err := st.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if len(st.Tuple.Values) != len(v.Schema.Columns) {
		return fmt.Errorf("%w: tuple has %d values for %d columns",
			ErrMalformed, len(st.Tuple.Values), len(v.Schema.Columns))
	}
	keyBytes := st.Tuple.Key(v.Schema).KeyBytes()
	acc := v.Acc.NewAcc()
	for i, val := range st.Tuple.Values {
		d := v.Acc.HashAttribute(v.Schema.DB, v.Schema.Table, v.Schema.Columns[i].Name, keyBytes, val.CanonicalBytes())
		// The stored attribute digest must commit to the computed one.
		u, err := v.entryDigest(pub, st.AttrSigs[i])
		if err != nil {
			return err
		}
		if !u.Equal(d) {
			return fmt.Errorf("%w: attribute %q digest mismatch", ErrVerification, v.Schema.Columns[i].Name)
		}
		if err := acc.Add(d); err != nil {
			return fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	ut, err := v.entryDigest(pub, tupleSig)
	if err != nil {
		return err
	}
	if !ut.Equal(acc.Value()) {
		return fmt.Errorf("%w: tuple digest mismatch", ErrVerification)
	}
	return nil
}
