package verify

import (
	"bytes"
	"errors"
	"fmt"

	"edgeauth/internal/shardmap"
	"edgeauth/internal/vo"
)

// Client-side verification for range-partitioned tables.
//
// A sharded answer is N per-shard (result, VO) pairs stitched under a
// central-signed shard map. Three checks make the stitching sound:
//
//  1. The map itself verifies: central signature over the boundary keys
//     and per-shard root digests, key version resolved at the client's
//     own clock (VerifyShardMap).
//  2. Each per-shard VO verifies AND anchors at exactly the root digest
//     the map pins for that shard (VerifyAnchored). The edge builds
//     shard VOs with the envelope forced to the root, so the recovered
//     top digest IS the shard's root digest — a stale shard answer
//     recovers to an old root and fails the comparison.
//  3. The caller derives the set of qualifying shards from the verified
//     map's boundaries and demands one verified answer per qualifying
//     shard — an edge that "loses" a shard cannot produce the missing
//     answer, and the map signature stops it from hiding the shard's
//     existence. Adjacent boundaries tile the key space by construction
//     (shardmap.Map.Validate rejects unsorted or duplicated bounds), so
//     no key range can fall between shards.

// ErrShardBinding marks a per-shard answer whose VO does not anchor at
// the root digest the verified shard map pins — a stale or cross-wired
// shard answer. It wraps ErrVerification.
var ErrShardBinding = errors.New("verify: shard answer not bound to the shard map")

// ErrMapReplay marks a correctly signed shard map whose partition epoch
// regresses below one the client already verified for the same table
// incarnation — the replay-pre-split attack: an edge serving a
// superseded map to route queries around a shard a split created.
var ErrMapReplay = errors.New("verify: shard map replays a superseded partition epoch")

// CheckMapSuccession enforces the monotone partition-epoch contract
// between the freshest map already verified for a table incarnation
// (prevEpoch/prevMapEpoch) and a newly verified map m: within one
// incarnation the map epoch may only advance, because every online
// split or merge commits a strictly newer generation linked to its
// parent. A signature alone cannot catch this — a pre-split map is
// still correctly signed — so the client's epoch high-water mark is
// part of the trust model. Legacy maps (MapEpoch 0) predate epoch
// chaining and are exempt, as is a different table incarnation (which
// restarts its own chain).
func CheckMapSuccession(prevEpoch, prevMapEpoch uint64, m *shardmap.Map) error {
	if m.MapEpoch == 0 || prevEpoch != m.Epoch {
		return nil
	}
	if m.MapEpoch < prevMapEpoch {
		return fmt.Errorf("%w: already verified partition epoch %d, map presents %d",
			ErrMapReplay, prevMapEpoch, m.MapEpoch)
	}
	return nil
}

// VerifyShardMap checks a signed shard map against the trusted keys: the
// signature must recover under the map's key version, resolved and
// validity-checked at the verifier's own clock, and the map must name
// the expected table with digests sized for the accumulator.
func (v *Verifier) VerifyShardMap(sm *shardmap.Signed, table string) error {
	if v.Acc == nil {
		return errors.New("verify: verifier not configured")
	}
	if sm == nil || sm.Map == nil {
		return fmt.Errorf("%w: missing shard map", ErrMalformed)
	}
	if err := sm.Map.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if sm.Map.Table != table {
		return fmt.Errorf("%w: shard map names table %q, want %q", ErrMalformed, sm.Map.Table, table)
	}
	for i, sh := range sm.Map.Shards {
		if len(sh.RootDigest) != v.Acc.Len() {
			return fmt.Errorf("%w: shard %d root digest has %d bytes, want %d",
				ErrMalformed, i, len(sh.RootDigest), v.Acc.Len())
		}
	}
	pub, err := v.resolveKey(sm.Map.KeyVersion, v.now())
	if err != nil {
		return err
	}
	if err := sm.Verify(pub); err != nil {
		return fmt.Errorf("%w: %v", ErrVerification, err)
	}
	return nil
}

// VerifyAnchored runs the standard VO verification and additionally
// requires the VO's top digest to recover to rootDigest — the binding
// that ties a per-shard answer to the verified shard map. rootDigest
// comes from a VerifyShardMap-checked map, never from the edge directly.
func (v *Verifier) VerifyAnchored(rs *vo.ResultSet, w *vo.VO, rootDigest []byte) error {
	top, err := v.verify(rs, w)
	if err != nil {
		return err
	}
	if !bytes.Equal(top, rootDigest) {
		return fmt.Errorf("%w: %w: VO anchors at a different root than the shard map pins (stale or cross-wired shard answer)",
			ErrVerification, ErrShardBinding)
	}
	return nil
}
