// Package shardmap defines the signed shard map that binds the
// independently-signed VB-tree shards of a range-partitioned table back
// into one verifiable relation.
//
// The paper anchors each table in a single signed root, so every insert
// batch serializes on one root re-sign and every delta funnels through
// one tree. Range-partitioning the table into N shards parallelizes the
// RSA-bound write path — but it opens a new attack surface: an untrusted
// edge server could silently drop a whole shard from a range answer, or
// serve one shard from a stale replica, and per-shard VO verification
// alone would not notice. The shard map closes that hole:
//
//   - The central server re-signs the map on every committed update. The
//     map carries the table's epoch, a monotonically increasing map
//     version, the ordered boundary keys, and each shard's unsigned root
//     digest and commit version.
//   - Clients treat the map as untrusted input (it travels through the
//     edge), verify the central server's signature over it, and derive
//     the set of shards a key range intersects from the *verified*
//     boundaries. An answer must arrive for every qualifying shard, and
//     each per-shard VO must anchor at exactly the root digest the map
//     pins — so a dropped shard, an invented boundary, or a stale
//     single-shard answer all fail verification.
//
// Boundary semantics: a map with N shards carries N-1 strictly
// increasing boundary keys; shard i covers keys k with
// Boundaries[i-1] <= k < Boundaries[i] (the first and last shards are
// open-ended below and above). Adjacent shards therefore tile the whole
// key space with no gaps and no overlaps by construction, which is the
// cross-shard half of the completeness argument: completeness inside a
// shard is the VB-tree's enveloping-subtree proof, completeness across
// shards is the verified map plus one answer per qualifying shard.
package shardmap

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

// ShardState pins one shard's current anchor inside the map.
type ShardState struct {
	// RootDigest is the shard tree's *unsigned* root digest. A client
	// binds each per-shard VO to the map by recovering the VO's top
	// digest and comparing it against this value, so the map must carry
	// the digest in the clear (the map as a whole is signed).
	RootDigest []byte
	// Version is the shard's commit version (bumped once per committed
	// update that touched the shard). Edges use it to request per-shard
	// deltas; clients use it only diagnostically.
	Version uint64
	// ID is the shard's stable identity, assigned once when the shard is
	// created and never reused within a table incarnation. Shard slice
	// indices shift when the partition splits or merges; IDs let an edge
	// recognize which of its pinned stores survive a transition. Zero
	// means "legacy map without identities" (pre-resharding encodings).
	ID uint64
}

// Map is the unsigned shard-map payload.
type Map struct {
	// Table names the partitioned relation.
	Table string
	// Epoch is the table incarnation (shared by every shard).
	Epoch uint64
	// MapVersion increases by one on every committed update to any
	// shard, so two maps for the same epoch are totally ordered.
	MapVersion uint64
	// KeyVersion is the signing-key version the map (and the shard
	// roots it pins) are signed under.
	KeyVersion uint32
	// SignedAt is when the central server signed this map (Unix
	// seconds). It is informational: map staleness is bounded by the
	// signing key's validity window (§3.4), not by a clock-skew check,
	// because an idle table's map is legitimately old.
	SignedAt int64
	// MapEpoch is the partition generation: it starts at 1 and is bumped
	// by exactly one each time the boundary set changes (a split or a
	// merge). Maps within one MapEpoch differ only in shard versions and
	// digests; maps across MapEpochs describe different partitions.
	// Zero marks a legacy map from before dynamic resharding.
	MapEpoch uint64
	// ParentEpoch links a map to the partition generation it was derived
	// from (MapEpoch-1 after a transition, and for generation 1 it is 0,
	// the origin). The explicit link lets clients fail closed on a
	// replayed pre-transition map: once a client has verified a map of
	// generation g, any later map with MapEpoch < g is a replay, not a
	// concurrent alternative — generations form a signed chain, never a
	// fork.
	ParentEpoch uint64
	// Boundaries are the N-1 strictly increasing split keys of an
	// N-shard table; all must share the key column's type.
	Boundaries []schema.Datum
	// Shards holds one state per shard, in range order.
	Shards []ShardState
}

// Validate rejects maps that cannot describe a partitioned table. It is
// deliberately strict — the map is untrusted input at the client.
func (m *Map) Validate() error {
	if m.Table == "" {
		return errors.New("shardmap: missing table name")
	}
	if len(m.Shards) == 0 {
		return errors.New("shardmap: no shards")
	}
	if len(m.Boundaries) != len(m.Shards)-1 {
		return fmt.Errorf("shardmap: %d boundaries for %d shards", len(m.Boundaries), len(m.Shards))
	}
	dlen := len(m.Shards[0].RootDigest)
	if dlen == 0 {
		return errors.New("shardmap: empty root digest")
	}
	for i, s := range m.Shards {
		if len(s.RootDigest) != dlen {
			return fmt.Errorf("shardmap: shard %d root digest has %d bytes, shard 0 has %d", i, len(s.RootDigest), dlen)
		}
	}
	if m.MapEpoch == 0 {
		// Legacy map: no partition generation, so it must not claim a
		// parent or carry shard identities either.
		if m.ParentEpoch != 0 {
			return errors.New("shardmap: parent epoch without map epoch")
		}
		for i, s := range m.Shards {
			if s.ID != 0 {
				return fmt.Errorf("shardmap: shard %d has an ID but the map has no epoch", i)
			}
		}
	} else {
		if m.ParentEpoch >= m.MapEpoch {
			return fmt.Errorf("shardmap: parent epoch %d not before map epoch %d", m.ParentEpoch, m.MapEpoch)
		}
		seen := make(map[uint64]int, len(m.Shards))
		for i, s := range m.Shards {
			if s.ID == 0 {
				return fmt.Errorf("shardmap: shard %d missing ID", i)
			}
			if j, dup := seen[s.ID]; dup {
				return fmt.Errorf("shardmap: shards %d and %d share ID %d", j, i, s.ID)
			}
			seen[s.ID] = i
		}
	}
	for i, b := range m.Boundaries {
		if b.IsZero() {
			return fmt.Errorf("shardmap: boundary %d is invalid", i)
		}
		if b.Type != m.Boundaries[0].Type {
			return fmt.Errorf("shardmap: boundary %d has type %v, boundary 0 has %v", i, b.Type, m.Boundaries[0].Type)
		}
		if i > 0 && m.Boundaries[i-1].Compare(b) >= 0 {
			return fmt.Errorf("shardmap: boundaries not strictly increasing at %d", i)
		}
	}
	return nil
}

// NumShards returns the shard count.
func (m *Map) NumShards() int { return len(m.Shards) }

// ShardFor returns the index of the shard covering key: the number of
// boundaries <= key. The caller is responsible for key having the
// boundary type (a mismatched type compares on type tag, which still
// yields a deterministic — if meaningless — shard).
func (m *Map) ShardFor(key schema.Datum) int {
	// Binary search for the first boundary > key.
	lo, hi := 0, len(m.Boundaries)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.Boundaries[mid].Compare(key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ShardsForRange returns the inclusive shard index interval a closed key
// range [lo, hi] intersects. A nil bound is unbounded on that side.
func (m *Map) ShardsForRange(lo, hi *schema.Datum) (first, last int) {
	first, last = 0, len(m.Shards)-1
	if lo != nil {
		first = m.ShardFor(*lo)
	}
	if hi != nil {
		last = m.ShardFor(*hi)
	}
	return first, last
}

// Range returns shard i's covering interval as (lo, hi) datum pointers;
// nil means open-ended. hi is exclusive.
func (m *Map) Range(i int) (lo, hi *schema.Datum) {
	if i > 0 {
		lo = &m.Boundaries[i-1]
	}
	if i < len(m.Boundaries) {
		hi = &m.Boundaries[i]
	}
	return lo, hi
}

// --- binary codec (the client-side decoder is fuzzed) ---

// encoding helpers (the wire package's primitives, duplicated here so
// shardmap stays independent of wire and can be imported by it).

func appendU32(dst []byte, v uint32) []byte {
	return append(dst, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendU64(dst []byte, v uint64) []byte {
	return append(dst,
		byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
		byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendStr(dst []byte, s string) []byte {
	dst = appendU32(dst, uint32(len(s)))
	return append(dst, s...)
}

func appendBytes(dst []byte, b []byte) []byte {
	dst = appendU32(dst, uint32(len(b)))
	return append(dst, b...)
}

type reader struct {
	data []byte
	off  int
	err  error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("shardmap: truncated %s at offset %d", what, r.off)
	}
}

func (r *reader) u32(what string) uint32 {
	if r.err != nil || r.off+4 > len(r.data) {
		r.fail(what)
		return 0
	}
	v := uint32(r.data[r.off])<<24 | uint32(r.data[r.off+1])<<16 | uint32(r.data[r.off+2])<<8 | uint32(r.data[r.off+3])
	r.off += 4
	return v
}

func (r *reader) u64(what string) uint64 {
	hi := r.u32(what)
	lo := r.u32(what)
	return uint64(hi)<<32 | uint64(lo)
}

func (r *reader) str(what string) string {
	n := int(r.u32(what))
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.fail(what)
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

func (r *reader) bytes(what string) []byte {
	n := int(r.u32(what))
	if r.err != nil || n < 0 || r.off+n > len(r.data) {
		r.fail(what)
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.off:r.off+n])
	r.off += n
	return b
}

func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.data) {
		return fmt.Errorf("shardmap: %d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

// Encode serializes the unsigned map payload (the bytes the signature
// covers).
func (m *Map) Encode() []byte {
	out := appendStr(nil, m.Table)
	out = appendU64(out, m.Epoch)
	out = appendU64(out, m.MapVersion)
	out = appendU32(out, m.KeyVersion)
	out = appendU64(out, uint64(m.SignedAt))
	out = appendU64(out, m.MapEpoch)
	out = appendU64(out, m.ParentEpoch)
	out = appendU32(out, uint32(len(m.Boundaries)))
	for _, b := range m.Boundaries {
		out = b.Encode(out)
	}
	out = appendU32(out, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		out = appendBytes(out, s.RootDigest)
		out = appendU64(out, s.Version)
		out = appendU64(out, s.ID)
	}
	return out
}

// Decode parses and validates an unsigned map payload. It is the
// untrusted-input decoder: every count is bounded against the input
// length before allocation, and the decoded map must Validate.
func Decode(body []byte) (*Map, error) {
	r := &reader{data: body}
	m := &Map{Table: r.str("table")}
	m.Epoch = r.u64("epoch")
	m.MapVersion = r.u64("map version")
	m.KeyVersion = r.u32("key version")
	m.SignedAt = int64(r.u64("signed-at"))
	m.MapEpoch = r.u64("map epoch")
	m.ParentEpoch = r.u64("parent epoch")
	bn := int(r.u32("boundary count"))
	if r.err == nil && bn > len(body) {
		return nil, errors.New("shardmap: implausible boundary count")
	}
	for i := 0; i < bn && r.err == nil; i++ {
		d, used, err := schema.DecodeDatum(r.data[r.off:])
		if err != nil {
			return nil, fmt.Errorf("shardmap: boundary %d: %w", i, err)
		}
		r.off += used
		m.Boundaries = append(m.Boundaries, d)
	}
	sn := int(r.u32("shard count"))
	if r.err == nil && sn > len(body) {
		return nil, errors.New("shardmap: implausible shard count")
	}
	for i := 0; i < sn && r.err == nil; i++ {
		s := ShardState{RootDigest: r.bytes("root digest")}
		s.Version = r.u64("shard version")
		s.ID = r.u64("shard id")
		m.Shards = append(m.Shards, s)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// sigDomain separates shard-map signatures from every other payload the
// central server signs (digests, deltas), so a signature can never be
// replayed across contexts. v2 added the partition-epoch chain
// (MapEpoch/ParentEpoch) and stable shard IDs; bumping the domain keeps
// any v1-era signature from validating over the extended encoding.
const sigDomain = "edgeauth/shardmap/v2\x00"

// SigPayload is the digest the central server signs: SHA-256 over the
// domain-separated map encoding.
func (m *Map) SigPayload() []byte {
	h := sha256.New()
	h.Write([]byte(sigDomain))
	h.Write(m.Encode())
	return h.Sum(nil)
}

// Signed is a map plus the central server's signature over it.
type Signed struct {
	Map *Map
	Sig sig.Signature
}

// Sign validates m and wraps it with the central server's signature.
func Sign(m *Map, key *sig.PrivateKey) (*Signed, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s, err := key.Sign(m.SigPayload())
	if err != nil {
		return nil, err
	}
	return &Signed{Map: m, Sig: s}, nil
}

// Verify checks the signature against the central server's public key.
// Detached verification (not recovery), so it works for every scheme the
// key registry can carry. Key-version resolution and validity are the
// caller's business (the client resolves the map's KeyVersion against
// its registry at its own clock before calling this).
func (s *Signed) Verify(pub *sig.PublicKey) error {
	if s.Map == nil || len(s.Sig) == 0 {
		return errors.New("shardmap: signed map missing payload or signature")
	}
	if err := pub.Verify(s.Sig, s.Map.SigPayload()); err != nil {
		return fmt.Errorf("shardmap: signature does not verify: %w", err)
	}
	return nil
}

// Encode serializes the signed map (payload + signature).
func (s *Signed) Encode() []byte {
	out := appendBytes(nil, s.Map.Encode())
	return appendBytes(out, s.Sig)
}

// DecodeSigned parses a signed map. The payload is decoded (and
// validated) but NOT signature-checked: callers must Verify against a
// trusted key before using anything inside.
func DecodeSigned(body []byte) (*Signed, error) {
	r := &reader{data: body}
	payload := r.bytes("map payload")
	sg := r.bytes("map signature")
	if err := r.done(); err != nil {
		return nil, err
	}
	m, err := Decode(payload)
	if err != nil {
		return nil, err
	}
	if len(sg) == 0 {
		return nil, errors.New("shardmap: missing signature")
	}
	return &Signed{Map: m, Sig: sig.Signature(sg)}, nil
}

// Clone returns a deep copy of the unsigned map.
func (m *Map) Clone() *Map {
	c := &Map{
		Table:       m.Table,
		Epoch:       m.Epoch,
		MapVersion:  m.MapVersion,
		KeyVersion:  m.KeyVersion,
		SignedAt:    m.SignedAt,
		MapEpoch:    m.MapEpoch,
		ParentEpoch: m.ParentEpoch,
	}
	for _, b := range m.Boundaries {
		// Datum is a value type except for bytes payloads; copy those so
		// a hook mutating the clone cannot reach the canonical map.
		if b.Type == schema.TypeBytes {
			b.B = append([]byte(nil), b.B...)
		}
		c.Boundaries = append(c.Boundaries, b)
	}
	for _, sh := range m.Shards {
		c.Shards = append(c.Shards, ShardState{
			RootDigest: append([]byte(nil), sh.RootDigest...),
			Version:    sh.Version,
			ID:         sh.ID,
		})
	}
	return c
}

// Clone returns a deep copy (tamper hooks mutate copies, not the
// server's canonical map).
func (s *Signed) Clone() *Signed {
	return &Signed{Map: s.Map.Clone(), Sig: s.Sig.Clone()}
}
