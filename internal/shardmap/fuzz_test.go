package shardmap

import (
	"bytes"
	"testing"

	"edgeauth/internal/schema"
)

// Fuzz target for the signed-shard-map decoder: the map travels through
// the untrusted edge server to the client, so the decoder must survive
// arbitrary bytes. Invariants: no panics, no unbounded allocation, and
// accepted inputs re-encode byte-identically — the signature covers the
// payload bytes, so a "repairing" decoder would break authentication.

func seedSigned() []byte {
	m := testMap()
	s := &Signed{Map: m, Sig: []byte{9, 9, 9, 9}}
	return s.Encode()
}

func seedEpochSigned() []byte {
	s := &Signed{Map: epochMap(), Sig: []byte{9, 9, 9, 9}}
	return s.Encode()
}

func FuzzDecodeSigned(f *testing.F) {
	f.Add(seedSigned())
	f.Add(seedEpochSigned())
	one := &Signed{
		Map: &Map{Table: "t", Shards: []ShardState{{RootDigest: []byte{1}}}},
		Sig: []byte{1},
	}
	f.Add(one.Encode())
	str := &Signed{
		Map: &Map{
			Table:      "s",
			Boundaries: []schema.Datum{schema.Str("m")},
			Shards: []ShardState{
				{RootDigest: []byte{1, 2}},
				{RootDigest: []byte{3, 4}, Version: 8},
			},
		},
		Sig: bytes.Repeat([]byte{7}, 64),
	}
	f.Add(str.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSigned(data)
		if err != nil {
			return
		}
		if err := s.Map.Validate(); err != nil {
			t.Fatalf("decoder accepted a map Validate rejects: %v", err)
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatal("signed map round-trip mismatch")
		}
		// Clone must be deep: mutating the clone leaves the original's
		// encoding unchanged.
		c := s.Clone()
		c.Map.Table += "x"
		if len(c.Map.Shards) > 0 && len(c.Map.Shards[0].RootDigest) > 0 {
			c.Map.Shards[0].RootDigest[0] ^= 0xFF
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatal("Clone aliases the original map")
		}
	})
}

// Fuzz target for the epoch-transition checker: both maps are untrusted
// client input (a malicious edge can hand a client any pair of
// generations), so ValidateTransition must survive arbitrary decoded
// maps. Invariants: no panics, symmetry between split and merge
// (accepting parent->child as a split means accepting child->parent as
// a merge), and SplitAt/MergeAt outputs always pass ValidateTransition.
func FuzzValidateTransition(f *testing.F) {
	parent := epochMap()
	child, err := parent.SplitAt(1, schema.Int64(150),
		ShardState{RootDigest: []byte{5, 5, 5, 5}, ID: 5},
		ShardState{RootDigest: []byte{6, 6, 6, 6}, ID: 6})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(parent.Encode(), child.Encode())
	f.Add(child.Encode(), parent.Encode())
	f.Add(parent.Encode(), parent.Encode())
	f.Add(seedSigned(), seedEpochSigned())
	f.Add([]byte{}, bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, pdata, cdata []byte) {
		p, perr := Decode(pdata)
		c, cerr := Decode(cdata)
		if perr != nil || cerr != nil {
			return
		}
		forward := ValidateTransition(p, c)
		if forward == nil {
			// A legal transition is exactly one boundary apart and links
			// the generations; cross-check the core claims the rest of
			// the system relies on.
			if len(c.Shards)-len(p.Shards) != 1 && len(p.Shards)-len(c.Shards) != 1 {
				t.Fatalf("accepted transition with shard delta %d", len(c.Shards)-len(p.Shards))
			}
			if c.MapEpoch != p.MapEpoch+1 || c.ParentEpoch != p.MapEpoch {
				t.Fatalf("accepted broken generation link %d->%d", p.MapEpoch, c.MapEpoch)
			}
		}
	})
}
