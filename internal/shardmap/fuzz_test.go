package shardmap

import (
	"bytes"
	"testing"

	"edgeauth/internal/schema"
)

// Fuzz target for the signed-shard-map decoder: the map travels through
// the untrusted edge server to the client, so the decoder must survive
// arbitrary bytes. Invariants: no panics, no unbounded allocation, and
// accepted inputs re-encode byte-identically — the signature covers the
// payload bytes, so a "repairing" decoder would break authentication.

func seedSigned() []byte {
	m := testMap()
	s := &Signed{Map: m, Sig: []byte{9, 9, 9, 9}}
	return s.Encode()
}

func FuzzDecodeSigned(f *testing.F) {
	f.Add(seedSigned())
	one := &Signed{
		Map: &Map{Table: "t", Shards: []ShardState{{RootDigest: []byte{1}}}},
		Sig: []byte{1},
	}
	f.Add(one.Encode())
	str := &Signed{
		Map: &Map{
			Table:      "s",
			Boundaries: []schema.Datum{schema.Str("m")},
			Shards: []ShardState{
				{RootDigest: []byte{1, 2}},
				{RootDigest: []byte{3, 4}, Version: 8},
			},
		},
		Sig: bytes.Repeat([]byte{7}, 64),
	}
	f.Add(str.Encode())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSigned(data)
		if err != nil {
			return
		}
		if err := s.Map.Validate(); err != nil {
			t.Fatalf("decoder accepted a map Validate rejects: %v", err)
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatal("signed map round-trip mismatch")
		}
		// Clone must be deep: mutating the clone leaves the original's
		// encoding unchanged.
		c := s.Clone()
		c.Map.Table += "x"
		if len(c.Map.Shards) > 0 && len(c.Map.Shards[0].RootDigest) > 0 {
			c.Map.Shards[0].RootDigest[0] ^= 0xFF
		}
		if !bytes.Equal(s.Encode(), data) {
			t.Fatal("Clone aliases the original map")
		}
	})
}
