package shardmap

import (
	"errors"
	"testing"

	"edgeauth/internal/schema"
)

// epochMap is testMap with the resharding fields filled in: partition
// generation 5 descending from 4, shard IDs 1..4.
func epochMap() *Map {
	m := testMap()
	m.MapEpoch = 5
	m.ParentEpoch = 4
	for i := range m.Shards {
		m.Shards[i].ID = uint64(i + 1)
	}
	return m
}

func TestEpochMapRoundTrip(t *testing.T) {
	m := epochMap()
	dec, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.MapEpoch != 5 || dec.ParentEpoch != 4 {
		t.Fatalf("epochs lost: %+v", dec)
	}
	for i, s := range dec.Shards {
		if s.ID != uint64(i+1) {
			t.Fatalf("shard %d ID = %d", i, s.ID)
		}
	}
}

func TestValidateEpochRules(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"parent >= epoch", func(m *Map) { m.ParentEpoch = m.MapEpoch }},
		{"parent ahead", func(m *Map) { m.ParentEpoch = m.MapEpoch + 1 }},
		{"missing shard ID", func(m *Map) { m.Shards[2].ID = 0 }},
		{"duplicate shard ID", func(m *Map) { m.Shards[2].ID = m.Shards[1].ID }},
	}
	for _, tc := range cases {
		m := epochMap()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad map", tc.name)
		}
	}
	// Legacy maps must not smuggle in epoch fields piecemeal.
	legacy := testMap()
	legacy.ParentEpoch = 3
	if err := legacy.Validate(); err == nil {
		t.Error("parent epoch without map epoch accepted")
	}
	legacy = testMap()
	legacy.Shards[0].ID = 9
	if err := legacy.Validate(); err == nil {
		t.Error("shard ID without map epoch accepted")
	}
}

func TestSplitAtAndValidateTransition(t *testing.T) {
	parent := epochMap() // boundaries 100,200,300; shards 1..4
	child, err := parent.SplitAt(1, schema.Int64(150),
		ShardState{RootDigest: []byte{5, 5, 5, 5}, ID: 5},
		ShardState{RootDigest: []byte{6, 6, 6, 6}, ID: 6})
	if err != nil {
		t.Fatalf("SplitAt: %v", err)
	}
	if child.MapEpoch != 6 || child.ParentEpoch != 5 {
		t.Fatalf("child generation: %d<-%d", child.MapEpoch, child.ParentEpoch)
	}
	if len(child.Shards) != 5 || len(child.Boundaries) != 4 {
		t.Fatalf("child shape: %d shards, %d boundaries", len(child.Shards), len(child.Boundaries))
	}
	if child.Boundaries[1].I != 150 {
		t.Fatalf("inserted boundary = %v", child.Boundaries[1])
	}
	wantIDs := []uint64{1, 5, 6, 3, 4}
	for i, s := range child.Shards {
		if s.ID != wantIDs[i] {
			t.Fatalf("child shard IDs = %v at %d, want %v", s.ID, i, wantIDs)
		}
	}
	if err := ValidateTransition(parent, child); err != nil {
		t.Fatalf("ValidateTransition(split): %v", err)
	}

	// The merge that undoes the split (fresh ID for the merged shard).
	merged, err := child.MergeAt(1, ShardState{RootDigest: []byte{7, 7, 7, 7}, ID: 7})
	if err != nil {
		t.Fatalf("MergeAt: %v", err)
	}
	if err := ValidateTransition(child, merged); err != nil {
		t.Fatalf("ValidateTransition(merge): %v", err)
	}
	if len(merged.Shards) != 4 || merged.Shards[1].ID != 7 {
		t.Fatalf("merged shape: %+v", merged.Shards)
	}

	// Unaffected shards may advance versions between signings.
	advanced := child.Clone()
	advanced.Shards[3].Version += 10
	advanced.Shards[3].RootDigest = []byte{9, 9, 9, 9}
	if err := ValidateTransition(parent, advanced); err != nil {
		t.Fatalf("transition with advanced sibling rejected: %v", err)
	}
}

func TestSplitAtRejects(t *testing.T) {
	parent := epochMap()
	fresh := func(id uint64) ShardState { return ShardState{RootDigest: []byte{8, 8, 8, 8}, ID: id} }
	if _, err := parent.SplitAt(9, schema.Int64(150), fresh(5), fresh(6)); err == nil {
		t.Error("out-of-range shard accepted")
	}
	// Boundary on or outside the shard interval.
	if _, err := parent.SplitAt(1, schema.Int64(100), fresh(5), fresh(6)); err == nil {
		t.Error("boundary at shard lo accepted")
	}
	if _, err := parent.SplitAt(1, schema.Int64(200), fresh(5), fresh(6)); err == nil {
		t.Error("boundary at shard hi accepted")
	}
	if _, err := parent.SplitAt(1, schema.Int64(150), fresh(3), fresh(6)); err == nil {
		t.Error("reused shard ID accepted")
	}
	if _, err := parent.SplitAt(1, schema.Int64(150), fresh(5), fresh(5)); err == nil {
		t.Error("duplicate fresh IDs accepted")
	}
	if _, err := parent.MergeAt(3, fresh(5)); err == nil {
		t.Error("merge past last pair accepted")
	}
	if _, err := parent.MergeAt(0, fresh(4)); err == nil {
		t.Error("merge reusing live ID accepted")
	}
}

func TestValidateTransitionRejects(t *testing.T) {
	parent := epochMap()
	mk := func() *Map {
		c, err := parent.SplitAt(1, schema.Int64(150),
			ShardState{RootDigest: []byte{5, 5, 5, 5}, ID: 5},
			ShardState{RootDigest: []byte{6, 6, 6, 6}, ID: 6})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"wrong table", func(c *Map) { c.Table = "other" }},
		{"wrong incarnation", func(c *Map) { c.Epoch++ }},
		{"generation skip", func(c *Map) { c.MapEpoch++ }},
		{"broken parent link", func(c *Map) { c.ParentEpoch-- }},
		{"dropped carry-over", func(c *Map) { c.Shards[3].ID = 8 }},
		{"moved boundary", func(c *Map) { c.Boundaries[3] = schema.Int64(310) }},
	}
	for _, tc := range cases {
		c := mk()
		tc.mutate(c)
		if err := ValidateTransition(parent, c); !errors.Is(err, ErrBadTransition) {
			t.Errorf("%s: got %v, want ErrBadTransition", tc.name, err)
		}
	}
	// Same shard count is never a transition.
	if err := ValidateTransition(parent, parent); !errors.Is(err, ErrBadTransition) {
		t.Error("identity accepted as a transition")
	}
	// A "split" that only appends a shard (no retirement) is rejected.
	appended := parent.Clone()
	appended.MapEpoch++
	appended.ParentEpoch = parent.MapEpoch
	appended.Boundaries = append(appended.Boundaries, schema.Int64(400))
	appended.Shards = append(appended.Shards, ShardState{RootDigest: []byte{5, 5, 5, 5}, ID: 9})
	if err := ValidateTransition(parent, appended); !errors.Is(err, ErrBadTransition) {
		t.Errorf("append-only split accepted: %v", err)
	}
}
