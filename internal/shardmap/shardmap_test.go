package shardmap

import (
	"testing"

	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
)

func testMap() *Map {
	return &Map{
		Table:      "items",
		Epoch:      7,
		MapVersion: 42,
		KeyVersion: 3,
		SignedAt:   1_700_000_000,
		Boundaries: []schema.Datum{schema.Int64(100), schema.Int64(200), schema.Int64(300)},
		Shards: []ShardState{
			{RootDigest: []byte{1, 1, 1, 1}, Version: 9},
			{RootDigest: []byte{2, 2, 2, 2}, Version: 3},
			{RootDigest: []byte{3, 3, 3, 3}, Version: 0},
			{RootDigest: []byte{4, 4, 4, 4}, Version: 12},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := testMap()
	dec, err := Decode(m.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Table != m.Table || dec.Epoch != m.Epoch || dec.MapVersion != m.MapVersion ||
		dec.KeyVersion != m.KeyVersion || dec.SignedAt != m.SignedAt {
		t.Fatalf("header mismatch: %+v vs %+v", dec, m)
	}
	if len(dec.Boundaries) != 3 || dec.Boundaries[1].I != 200 {
		t.Fatalf("boundaries mismatch: %+v", dec.Boundaries)
	}
	if len(dec.Shards) != 4 || dec.Shards[3].Version != 12 || dec.Shards[2].RootDigest[0] != 3 {
		t.Fatalf("shards mismatch: %+v", dec.Shards)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Map)
	}{
		{"no shards", func(m *Map) { m.Shards = nil; m.Boundaries = nil }},
		{"boundary count", func(m *Map) { m.Boundaries = m.Boundaries[:1] }},
		{"unsorted boundaries", func(m *Map) { m.Boundaries[2] = schema.Int64(150) }},
		{"equal boundaries", func(m *Map) { m.Boundaries[1] = m.Boundaries[0] }},
		{"mixed boundary types", func(m *Map) { m.Boundaries[2] = schema.Str("zzz") }},
		{"empty digest", func(m *Map) { m.Shards[0].RootDigest = nil }},
		{"digest length mismatch", func(m *Map) { m.Shards[1].RootDigest = []byte{1} }},
		{"missing table", func(m *Map) { m.Table = "" }},
	}
	for _, tc := range cases {
		m := testMap()
		tc.mutate(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad map", tc.name)
		}
		if _, err := Decode(m.Encode()); err == nil {
			t.Errorf("%s: Decode accepted a bad map", tc.name)
		}
	}
}

func TestShardForAndRange(t *testing.T) {
	m := testMap() // boundaries 100, 200, 300 -> shards (-inf,100) [100,200) [200,300) [300,inf)
	cases := []struct {
		key  int64
		want int
	}{
		{-5, 0}, {99, 0}, {100, 1}, {150, 1}, {199, 1}, {200, 2}, {300, 3}, {1 << 40, 3},
	}
	for _, tc := range cases {
		if got := m.ShardFor(schema.Int64(tc.key)); got != tc.want {
			t.Errorf("ShardFor(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	lo, hi := schema.Int64(150), schema.Int64(250)
	f, l := m.ShardsForRange(&lo, &hi)
	if f != 1 || l != 2 {
		t.Fatalf("ShardsForRange(150,250) = [%d,%d], want [1,2]", f, l)
	}
	f, l = m.ShardsForRange(nil, nil)
	if f != 0 || l != 3 {
		t.Fatalf("unbounded range = [%d,%d], want [0,3]", f, l)
	}
	if lo, hi := m.Range(0); lo != nil || hi == nil || hi.I != 100 {
		t.Fatalf("Range(0) = %v,%v", lo, hi)
	}
	if lo, hi := m.Range(3); lo == nil || lo.I != 300 || hi != nil {
		t.Fatalf("Range(3) = %v,%v", lo, hi)
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	key := sig.MustGenerateKey(512)
	sm, err := Sign(testMap(), key)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := sm.Verify(key.Public()); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// Round-trip through the wire form.
	dec, err := DecodeSigned(sm.Encode())
	if err != nil {
		t.Fatalf("decode signed: %v", err)
	}
	if err := dec.Verify(key.Public()); err != nil {
		t.Fatalf("verify decoded: %v", err)
	}
	// Any mutation of the payload breaks the signature.
	evil := dec.Clone()
	evil.Map.Shards = evil.Map.Shards[:3]
	evil.Map.Boundaries = evil.Map.Boundaries[:2]
	if err := evil.Verify(key.Public()); err == nil {
		t.Fatal("dropped-shard map verified")
	}
	evil2 := dec.Clone()
	evil2.Map.Shards[1].RootDigest[0] ^= 0xFF
	if err := evil2.Verify(key.Public()); err == nil {
		t.Fatal("digest-swapped map verified")
	}
	evil3 := dec.Clone()
	evil3.Map.MapVersion++
	if err := evil3.Verify(key.Public()); err == nil {
		t.Fatal("version-bumped map verified")
	}
	// A different key does not verify.
	other := sig.MustGenerateKey(512)
	if err := dec.Verify(other.Public()); err == nil {
		t.Fatal("map verified under the wrong key")
	}
}

func TestSplitByCount(t *testing.T) {
	sch := &schema.Schema{DB: "d", Table: "t", Key: 0,
		Columns: []schema.Column{{Name: "id", Type: schema.TypeInt64}}}
	var tuples []schema.Tuple
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, schema.NewTuple(schema.Int64(int64(i*3))))
	}
	b, err := Split(sch, tuples, 4, SplitByCount)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 {
		t.Fatalf("got %d boundaries, want 3", len(b))
	}
	groups := Partition(sch, tuples, b)
	if len(groups) != 4 {
		t.Fatalf("got %d groups", len(groups))
	}
	total := 0
	for i, g := range groups {
		if len(g) < 200 || len(g) > 300 {
			t.Errorf("group %d badly balanced: %d tuples", i, len(g))
		}
		total += len(g)
	}
	if total != 1000 {
		t.Fatalf("partition lost tuples: %d", total)
	}
}

func TestSplitByKeySpan(t *testing.T) {
	sch := &schema.Schema{DB: "d", Table: "t", Key: 0,
		Columns: []schema.Column{{Name: "id", Type: schema.TypeInt64}}}
	var tuples []schema.Tuple
	for i := 0; i < 100; i++ {
		tuples = append(tuples, schema.NewTuple(schema.Int64(int64(i))))
	}
	b, err := Split(sch, tuples, 4, SplitByKeySpan)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 3 || b[0].I != 24 || b[1].I != 49 || b[2].I != 74 {
		t.Fatalf("keyspan boundaries = %v", b)
	}
	// String keys fall back to count-based splitting.
	ssch := &schema.Schema{DB: "d", Table: "t", Key: 0,
		Columns: []schema.Column{{Name: "id", Type: schema.TypeString}}}
	var stuples []schema.Tuple
	for _, s := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		stuples = append(stuples, schema.NewTuple(schema.Str(s)))
	}
	sb, err := Split(ssch, stuples, 2, SplitByKeySpan)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb) != 1 {
		t.Fatalf("string fallback boundaries = %v", sb)
	}
}

func TestSplitDegenerate(t *testing.T) {
	sch := &schema.Schema{DB: "d", Table: "t", Key: 0,
		Columns: []schema.Column{{Name: "id", Type: schema.TypeInt64}}}
	// All-duplicate keys cannot be split.
	var dup []schema.Tuple
	for i := 0; i < 10; i++ {
		dup = append(dup, schema.NewTuple(schema.Int64(5)))
	}
	b, err := Split(sch, dup, 4, SplitByCount)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 0 {
		t.Fatalf("duplicate keys produced boundaries %v", b)
	}
	// Empty table: no boundaries.
	if b, err := Split(sch, nil, 8, SplitByCount); err != nil || len(b) != 0 {
		t.Fatalf("empty split = %v, %v", b, err)
	}
	// n=0 is an error.
	if _, err := Split(sch, dup, 0, SplitByCount); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestParseStrategy(t *testing.T) {
	if s, err := ParseStrategy(""); err != nil || s != SplitByCount {
		t.Fatalf("empty strategy: %v %v", s, err)
	}
	if s, err := ParseStrategy("keyspan"); err != nil || s != SplitByKeySpan {
		t.Fatalf("keyspan strategy: %v %v", s, err)
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestDecodeSignedRejectsMalformed(t *testing.T) {
	key := sig.MustGenerateKey(512)
	sm, err := Sign(testMap(), key)
	if err != nil {
		t.Fatal(err)
	}
	good := sm.Encode()
	for cut := 0; cut < len(good); cut += 7 {
		if _, err := DecodeSigned(good[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeSigned(append(good[:len(good):len(good)], 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
	if _, err := DecodeSigned(nil); err == nil {
		t.Fatal("nil accepted")
	}
}
