package shardmap

// Epoch transitions: a split inserts one boundary and replaces one shard
// with two freshly-built (and freshly-signed) shards; a merge removes
// one boundary and replaces two adjacent shards with one. Both bump
// MapEpoch by exactly one and record the previous generation in
// ParentEpoch, so the sequence of signed maps for a table incarnation
// forms a chain: a verifier that has seen generation g can reject any
// later-presented map of generation < g as a replay, and the
// single-boundary delta keeps the §3.3 completeness argument local —
// every key interval covered by the parent partition is covered by the
// child partition, just by a different (re-signed) shard.

import (
	"errors"
	"fmt"

	"edgeauth/internal/schema"
)

// ErrBadTransition reports a child map that does not follow from its
// claimed parent by one legal split or merge. It is a verification
// failure, not an I/O failure: callers must fail closed.
var ErrBadTransition = errors.New("shardmap: invalid epoch transition")

// SplitAt derives the child map of splitting shard i of m at boundary b:
// shard i is replaced by left (keys < b) and right (keys >= b), b is
// inserted into the boundary set, and the partition generation advances
// with a parent link back to m. Shard versions, digests and the map
// version/signature fields of the result are the caller's to fill in for
// the unaffected shards they are carried over verbatim. b must lie
// strictly inside shard i's interval and left/right must carry fresh,
// distinct IDs.
func (m *Map) SplitAt(i int, b schema.Datum, left, right ShardState) (*Map, error) {
	if i < 0 || i >= len(m.Shards) {
		return nil, fmt.Errorf("%w: split shard %d of %d", ErrBadTransition, i, len(m.Shards))
	}
	if b.IsZero() {
		return nil, fmt.Errorf("%w: zero split boundary", ErrBadTransition)
	}
	lo, hi := m.Range(i)
	if lo != nil && lo.Compare(b) >= 0 || hi != nil && b.Compare(*hi) >= 0 {
		return nil, fmt.Errorf("%w: boundary outside shard %d", ErrBadTransition, i)
	}
	if left.ID == 0 || right.ID == 0 || left.ID == right.ID {
		return nil, fmt.Errorf("%w: split needs two fresh shard IDs", ErrBadTransition)
	}
	for _, s := range m.Shards {
		if s.ID == left.ID || s.ID == right.ID {
			return nil, fmt.Errorf("%w: split reuses shard ID %d", ErrBadTransition, s.ID)
		}
	}
	child := &Map{
		Table:       m.Table,
		Epoch:       m.Epoch,
		MapVersion:  m.MapVersion,
		KeyVersion:  m.KeyVersion,
		SignedAt:    m.SignedAt,
		MapEpoch:    m.MapEpoch + 1,
		ParentEpoch: m.MapEpoch,
	}
	child.Boundaries = append(child.Boundaries, m.Boundaries[:i]...)
	child.Boundaries = append(child.Boundaries, b)
	child.Boundaries = append(child.Boundaries, m.Boundaries[i:]...)
	child.Shards = append(child.Shards, m.Shards[:i]...)
	child.Shards = append(child.Shards, left, right)
	child.Shards = append(child.Shards, m.Shards[i+1:]...)
	if err := child.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTransition, err)
	}
	return child, nil
}

// MergeAt derives the child map of merging shards i and i+1 of m into
// merged: boundary i is removed and the pair is replaced by one shard.
// merged must carry a fresh ID — the combined tree is rebuilt and
// re-signed, so it is a new shard, not a continuation of either input.
func (m *Map) MergeAt(i int, merged ShardState) (*Map, error) {
	if i < 0 || i+1 >= len(m.Shards) {
		return nil, fmt.Errorf("%w: merge shards %d,%d of %d", ErrBadTransition, i, i+1, len(m.Shards))
	}
	if merged.ID == 0 {
		return nil, fmt.Errorf("%w: merge needs a fresh shard ID", ErrBadTransition)
	}
	for _, s := range m.Shards {
		if s.ID == merged.ID {
			return nil, fmt.Errorf("%w: merge reuses shard ID %d", ErrBadTransition, s.ID)
		}
	}
	child := &Map{
		Table:       m.Table,
		Epoch:       m.Epoch,
		MapVersion:  m.MapVersion,
		KeyVersion:  m.KeyVersion,
		SignedAt:    m.SignedAt,
		MapEpoch:    m.MapEpoch + 1,
		ParentEpoch: m.MapEpoch,
	}
	child.Boundaries = append(child.Boundaries, m.Boundaries[:i]...)
	child.Boundaries = append(child.Boundaries, m.Boundaries[i+1:]...)
	child.Shards = append(child.Shards, m.Shards[:i]...)
	child.Shards = append(child.Shards, merged)
	child.Shards = append(child.Shards, m.Shards[i+2:]...)
	if err := child.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTransition, err)
	}
	return child, nil
}

// ValidateTransition checks that child follows from parent by exactly
// one legal split or merge. Both maps are untrusted input here: the
// check is structural (table, incarnation epoch, generation link,
// single-boundary delta, shard-ID carry-over) and deliberately ignores
// shard versions and digests, which legitimately advance between the
// two signings. It is the oracle for the transition fuzz target and the
// client's cross-check when it observes adjacent generations in one
// scatter-gather.
func ValidateTransition(parent, child *Map) error {
	if err := parent.Validate(); err != nil {
		return fmt.Errorf("%w: parent: %v", ErrBadTransition, err)
	}
	if err := child.Validate(); err != nil {
		return fmt.Errorf("%w: child: %v", ErrBadTransition, err)
	}
	if parent.Table != child.Table {
		return fmt.Errorf("%w: table %q vs %q", ErrBadTransition, parent.Table, child.Table)
	}
	if parent.Epoch != child.Epoch {
		return fmt.Errorf("%w: table incarnation changed", ErrBadTransition)
	}
	if parent.MapEpoch == 0 || child.MapEpoch != parent.MapEpoch+1 || child.ParentEpoch != parent.MapEpoch {
		return fmt.Errorf("%w: generation link %d->%d (parent link %d)", ErrBadTransition,
			parent.MapEpoch, child.MapEpoch, child.ParentEpoch)
	}
	switch len(child.Shards) - len(parent.Shards) {
	case 1:
		return validateSplitShape(parent, child)
	case -1:
		return validateSplitShape(child, parent) // a merge is a split read backwards
	default:
		return fmt.Errorf("%w: shard count %d -> %d", ErrBadTransition,
			len(parent.Shards), len(child.Shards))
	}
}

// validateSplitShape checks the "one shard became two" shape: wide has
// exactly one more shard and one more boundary than narrow, all of
// narrow's other shards appear in wide in order with IDs intact, and
// the two replacement shards carry IDs absent from narrow.
func validateSplitShape(narrow, wide *Map) error {
	// Find the split point: first index where the ID sequences diverge.
	i := 0
	for i < len(narrow.Shards) && narrow.Shards[i].ID == wide.Shards[i].ID {
		i++
	}
	if i >= len(narrow.Shards) && len(narrow.Shards) > 0 {
		// All of narrow's IDs are a prefix of wide's — the "split" added a
		// shard at the end without retiring one, which is not a split.
		return fmt.Errorf("%w: no shard was replaced", ErrBadTransition)
	}
	// Shards after the split point must carry over, shifted by one.
	for j := i + 1; j < len(narrow.Shards); j++ {
		if narrow.Shards[j].ID != wide.Shards[j+1].ID {
			return fmt.Errorf("%w: shard ID %d not carried over", ErrBadTransition, narrow.Shards[j].ID)
		}
	}
	// The two replacement shards must be new identities.
	old := make(map[uint64]bool, len(narrow.Shards))
	for _, s := range narrow.Shards {
		old[s.ID] = true
	}
	if old[wide.Shards[i].ID] || old[wide.Shards[i+1].ID] {
		return fmt.Errorf("%w: replacement shard reuses a retired ID", ErrBadTransition)
	}
	// Boundary delta: wide's boundaries are narrow's with one inserted at
	// position i, and the insert must land inside the replaced shard's
	// interval (strictly between its neighbors).
	for j := 0; j < i; j++ {
		if narrow.Boundaries[j].Compare(wide.Boundaries[j]) != 0 {
			return fmt.Errorf("%w: boundary %d changed", ErrBadTransition, j)
		}
	}
	for j := i; j < len(narrow.Boundaries); j++ {
		if narrow.Boundaries[j].Compare(wide.Boundaries[j+1]) != 0 {
			return fmt.Errorf("%w: boundary %d changed", ErrBadTransition, j)
		}
	}
	// Strict ordering of wide.Boundaries (incl. the inserted one against
	// its neighbors) is already guaranteed by wide.Validate().
	return nil
}
