package shardmap

import (
	"errors"
	"fmt"
	"sort"

	"edgeauth/internal/schema"
)

// Strategy names a boundary-selection policy for the initial partition
// of a table into shards.
type Strategy string

const (
	// SplitByCount picks boundaries so each shard receives an equal
	// share of the build tuples — balanced for the build distribution.
	SplitByCount Strategy = "count"
	// SplitByKeySpan divides the [min, max] key interval into equal
	// widths (int64 and float64 keys only) — balanced for uniformly
	// distributed future inserts regardless of the build skew.
	SplitByKeySpan Strategy = "keyspan"
)

// ParseStrategy resolves a flag value; empty selects SplitByCount.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", SplitByCount:
		return SplitByCount, nil
	case SplitByKeySpan:
		return SplitByKeySpan, nil
	default:
		return "", fmt.Errorf("shardmap: unknown split strategy %q (want %q or %q)", s, SplitByCount, SplitByKeySpan)
	}
}

// Split computes the N-1 boundary keys partitioning tuples (sorted or
// unsorted) into n range shards under the given strategy. The returned
// boundaries are strictly increasing; fewer than n-1 may be returned
// when the data cannot support n distinct shards (duplicate-heavy or
// tiny tables), in which case the caller builds fewer shards.
func Split(sch *schema.Schema, tuples []schema.Tuple, n int, strat Strategy) ([]schema.Datum, error) {
	if n < 1 {
		return nil, errors.New("shardmap: shard count must be >= 1")
	}
	if n == 1 || len(tuples) == 0 {
		return nil, nil
	}
	keys := make([]schema.Datum, len(tuples))
	for i, t := range tuples {
		if len(t.Values) <= sch.Key {
			return nil, fmt.Errorf("shardmap: tuple %d has no key column", i)
		}
		keys[i] = t.Key(sch)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })

	switch strat {
	case SplitByKeySpan:
		if b, ok := splitKeySpan(keys, n); ok {
			return b, nil
		}
		// Non-numeric keys: fall through to count-based boundaries.
		fallthrough
	case SplitByCount, "":
		return splitCount(keys, n), nil
	default:
		return nil, fmt.Errorf("shardmap: unknown split strategy %q", strat)
	}
}

// splitCount picks every (len/n)-th key as a boundary, deduplicating so
// boundaries stay strictly increasing.
func splitCount(sorted []schema.Datum, n int) []schema.Datum {
	var out []schema.Datum
	for i := 1; i < n; i++ {
		idx := i * len(sorted) / n
		if idx <= 0 || idx >= len(sorted) {
			continue
		}
		b := sorted[idx]
		if b.Compare(sorted[0]) <= 0 {
			continue // a boundary at or below the minimum key splits nothing off
		}
		if len(out) > 0 && out[len(out)-1].Compare(b) >= 0 {
			continue
		}
		out = append(out, b)
	}
	return out
}

// splitKeySpan divides [min, max] into n equal-width intervals. Only
// int64 and float64 keys have the arithmetic for this; ok=false sends
// other types to the count-based fallback.
func splitKeySpan(sorted []schema.Datum, n int) ([]schema.Datum, bool) {
	min, max := sorted[0], sorted[len(sorted)-1]
	var out []schema.Datum
	switch min.Type {
	case schema.TypeInt64:
		span := max.I - min.I
		if span <= 0 {
			return nil, true // all keys equal: one shard
		}
		for i := 1; i < n; i++ {
			b := schema.Int64(min.I + span*int64(i)/int64(n))
			if len(out) > 0 && out[len(out)-1].Compare(b) >= 0 {
				continue
			}
			if b.Compare(min) <= 0 || b.Compare(max) > 0 {
				continue
			}
			out = append(out, b)
		}
		return out, true
	case schema.TypeFloat64:
		span := max.F - min.F
		if span <= 0 {
			return nil, true
		}
		for i := 1; i < n; i++ {
			b := schema.Float64(min.F + span*float64(i)/float64(n))
			if len(out) > 0 && out[len(out)-1].Compare(b) >= 0 {
				continue
			}
			if b.Compare(min) <= 0 || b.Compare(max) > 0 {
				continue
			}
			out = append(out, b)
		}
		return out, true
	default:
		return nil, false
	}
}

// Partition groups tuples by the shard each belongs to under the given
// boundaries (len(boundaries)+1 groups). Order within a group follows
// the input order.
func Partition(sch *schema.Schema, tuples []schema.Tuple, boundaries []schema.Datum) [][]schema.Tuple {
	m := &Map{Boundaries: boundaries}
	groups := make([][]schema.Tuple, len(boundaries)+1)
	for _, t := range tuples {
		i := m.ShardFor(t.Key(sch))
		groups[i] = append(groups[i], t)
	}
	return groups
}
