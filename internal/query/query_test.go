package query

import (
	"testing"

	"edgeauth/internal/schema"
)

func testSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "db",
		Table: "items",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "cat", Type: schema.TypeString},
			{Name: "price", Type: schema.TypeFloat64},
		},
		Key: 0,
	}
}

func TestOpString(t *testing.T) {
	ops := map[Op]string{OpEQ: "=", OpNE: "!=", OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">="}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%v renders %q", want, op.String())
		}
	}
	if Op(99).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestPredicateEval(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    schema.Datum
		want bool
	}{
		{Predicate{"id", OpEQ, schema.Int64(5)}, schema.Int64(5), true},
		{Predicate{"id", OpEQ, schema.Int64(5)}, schema.Int64(6), false},
		{Predicate{"id", OpNE, schema.Int64(5)}, schema.Int64(6), true},
		{Predicate{"id", OpLT, schema.Int64(5)}, schema.Int64(4), true},
		{Predicate{"id", OpLE, schema.Int64(5)}, schema.Int64(5), true},
		{Predicate{"id", OpGT, schema.Int64(5)}, schema.Int64(5), false},
		{Predicate{"id", OpGE, schema.Int64(5)}, schema.Int64(5), true},
		{Predicate{"cat", OpEQ, schema.Str("x")}, schema.Str("x"), true},
	}
	for _, c := range cases {
		if got := c.p.eval(c.v); got != c.want {
			t.Errorf("%v on %v = %v, want %v", c.p, c.v, got, c.want)
		}
	}
}

func TestCompileKeyRange(t *testing.T) {
	sch := testSchema()
	q, err := Compile(sch, Spec{Predicates: []Predicate{
		{"id", OpGE, schema.Int64(10)},
		{"id", OpLE, schema.Int64(20)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Lo == nil || !q.Lo.Equal(schema.Int64(10)) {
		t.Fatalf("Lo = %v", q.Lo)
	}
	if q.Hi == nil || !q.Hi.Equal(schema.Int64(20)) {
		t.Fatalf("Hi = %v", q.Hi)
	}
	if q.Filter != nil {
		t.Fatal("pure range should have no residual filter")
	}
}

func TestCompileEquality(t *testing.T) {
	sch := testSchema()
	q, err := Compile(sch, Spec{Predicates: []Predicate{{"id", OpEQ, schema.Int64(7)}}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Lo == nil || q.Hi == nil || !q.Lo.Equal(*q.Hi) {
		t.Fatalf("EQ should pin both bounds: lo=%v hi=%v", q.Lo, q.Hi)
	}
}

func TestCompileStrictBoundsKeepResidual(t *testing.T) {
	sch := testSchema()
	q, err := Compile(sch, Spec{Predicates: []Predicate{
		{"id", OpGT, schema.Int64(10)},
		{"id", OpLT, schema.Int64(20)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if q.Lo == nil || q.Hi == nil {
		t.Fatal("strict bounds should still tighten the range")
	}
	if q.Filter == nil {
		t.Fatal("strict bounds need a residual filter")
	}
	// Boundary values must be filtered out.
	row10 := schema.NewTuple(schema.Int64(10), schema.Str("a"), schema.Float64(1))
	row15 := schema.NewTuple(schema.Int64(15), schema.Str("a"), schema.Float64(1))
	row20 := schema.NewTuple(schema.Int64(20), schema.Str("a"), schema.Float64(1))
	if q.Filter(row10) || q.Filter(row20) {
		t.Fatal("strict boundaries passed the filter")
	}
	if !q.Filter(row15) {
		t.Fatal("interior value rejected")
	}
}

func TestCompileTightestBounds(t *testing.T) {
	sch := testSchema()
	q, err := Compile(sch, Spec{Predicates: []Predicate{
		{"id", OpGE, schema.Int64(5)},
		{"id", OpGE, schema.Int64(15)}, // tighter
		{"id", OpLE, schema.Int64(50)},
		{"id", OpLE, schema.Int64(30)}, // tighter
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Lo.Equal(schema.Int64(15)) || !q.Hi.Equal(schema.Int64(30)) {
		t.Fatalf("bounds = [%v,%v], want [15,30]", q.Lo, q.Hi)
	}
}

func TestCompileNonKeyFilter(t *testing.T) {
	sch := testSchema()
	q, err := Compile(sch, Spec{
		Predicates: []Predicate{
			{"cat", OpEQ, schema.Str("tools")},
			{"price", OpGT, schema.Float64(9.5)},
		},
		Project: []string{"id", "price"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Lo != nil || q.Hi != nil {
		t.Fatal("non-key predicates must not bound the key range")
	}
	if q.Filter == nil {
		t.Fatal("missing residual filter")
	}
	hit := schema.NewTuple(schema.Int64(1), schema.Str("tools"), schema.Float64(10))
	miss1 := schema.NewTuple(schema.Int64(2), schema.Str("toys"), schema.Float64(10))
	miss2 := schema.NewTuple(schema.Int64(3), schema.Str("tools"), schema.Float64(9.5))
	if !q.Filter(hit) || q.Filter(miss1) || q.Filter(miss2) {
		t.Fatal("residual filter misbehaves")
	}
	if len(q.Project) != 2 {
		t.Fatalf("projection = %v", q.Project)
	}
}

func TestCompileValidation(t *testing.T) {
	sch := testSchema()
	if _, err := Compile(sch, Spec{Predicates: []Predicate{{"ghost", OpEQ, schema.Int64(1)}}}); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := Compile(sch, Spec{Predicates: []Predicate{{"id", OpEQ, schema.Str("x")}}}); err == nil {
		t.Fatal("type-mismatched predicate accepted")
	}
}

func TestEvalAll(t *testing.T) {
	sch := testSchema()
	row := schema.NewTuple(schema.Int64(1), schema.Str("tools"), schema.Float64(10))
	ok, err := EvalAll(sch, []Predicate{
		{"cat", OpEQ, schema.Str("tools")},
		{"price", OpLE, schema.Float64(10)},
	}, row)
	if err != nil || !ok {
		t.Fatalf("EvalAll = %v, %v", ok, err)
	}
	ok, err = EvalAll(sch, []Predicate{{"cat", OpNE, schema.Str("tools")}}, row)
	if err != nil || ok {
		t.Fatalf("EvalAll NE = %v, %v", ok, err)
	}
	if _, err := EvalAll(sch, []Predicate{{"nope", OpEQ, schema.Int64(1)}}, row); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func usersSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "db",
		Table: "users",
		Columns: []schema.Column{
			{Name: "id", Type: schema.TypeInt64},
			{Name: "name", Type: schema.TypeString},
		},
		Key: 0,
	}
}

func ordersSchema() *schema.Schema {
	return &schema.Schema{
		DB:    "db",
		Table: "orders",
		Columns: []schema.Column{
			{Name: "oid", Type: schema.TypeInt64},
			{Name: "user_id", Type: schema.TypeInt64},
			{Name: "total", Type: schema.TypeFloat64},
		},
		Key: 0,
	}
}

func TestMaterializeEquiJoin(t *testing.T) {
	users := []schema.Tuple{
		schema.NewTuple(schema.Int64(1), schema.Str("alice")),
		schema.NewTuple(schema.Int64(2), schema.Str("bob")),
		schema.NewTuple(schema.Int64(3), schema.Str("carol")),
	}
	orders := []schema.Tuple{
		schema.NewTuple(schema.Int64(100), schema.Int64(1), schema.Float64(9.5)),
		schema.NewTuple(schema.Int64(101), schema.Int64(2), schema.Float64(12)),
		schema.NewTuple(schema.Int64(102), schema.Int64(1), schema.Float64(3.25)),
		schema.NewTuple(schema.Int64(103), schema.Int64(9), schema.Float64(1)), // dangling
	}
	view, rows, err := MaterializeEquiJoin("user_orders", ordersSchema(), usersSchema(),
		orders, users, "user_id", "id")
	if err != nil {
		t.Fatal(err)
	}
	if view.Table != "user_orders" || view.KeyColumn().Name != "rowid" {
		t.Fatalf("view identity: %+v", view)
	}
	// rowid + 3 order cols + 2 prefixed user cols.
	if len(view.Columns) != 6 {
		t.Fatalf("view columns = %v", view.Columns)
	}
	if view.ColumnIndex("users_name") < 0 {
		t.Fatalf("right columns not prefixed: %v", view.Columns)
	}
	if len(rows) != 3 {
		t.Fatalf("join produced %d rows, want 3 (dangling order dropped)", len(rows))
	}
	// rowids sequential and unique.
	for i, r := range rows {
		if !r.Values[0].Equal(schema.Int64(int64(i))) {
			t.Fatalf("rowid %d = %v", i, r.Values[0])
		}
		if len(r.Values) != 6 {
			t.Fatalf("row %d has %d values", i, len(r.Values))
		}
	}
	// Join semantics: order 100 matched alice.
	if rows[0].Values[5].S != "alice" {
		t.Fatalf("row 0 joined name = %v", rows[0].Values[5])
	}
}

func TestMaterializeEquiJoinValidation(t *testing.T) {
	u, o := usersSchema(), ordersSchema()
	if _, _, err := MaterializeEquiJoin("", o, u, nil, nil, "user_id", "id"); err == nil {
		t.Fatal("empty view name accepted")
	}
	if _, _, err := MaterializeEquiJoin("v", o, u, nil, nil, "ghost", "id"); err == nil {
		t.Fatal("bad left column accepted")
	}
	if _, _, err := MaterializeEquiJoin("v", o, u, nil, nil, "user_id", "ghost"); err == nil {
		t.Fatal("bad right column accepted")
	}
	if _, _, err := MaterializeEquiJoin("v", o, u, nil, nil, "total", "id"); err == nil {
		t.Fatal("type-mismatched join accepted")
	}
}
