// Package query provides the relational layer over the VB-tree: predicate
// evaluation, compilation of conjunctive selection/projection queries into
// an index range plus a residual filter, and materialization of equijoins
// into view tables that carry their own VB-trees (the paper's §3.3
// treatment of joins: "materialize each join operation, and construct a
// VB-tree on the materialized view").
package query

import (
	"errors"
	"fmt"

	"edgeauth/internal/schema"
	"edgeauth/internal/vbtree"
)

// Op is a comparison operator.
type Op int

const (
	OpEQ Op = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

func (o Op) String() string {
	switch o {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is one comparison: column OP literal.
type Predicate struct {
	Column string
	Op     Op
	Value  schema.Datum
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %s", p.Column, p.Op, p.Value)
}

// eval applies the predicate to a value.
func (p Predicate) eval(v schema.Datum) bool {
	c := v.Compare(p.Value)
	switch p.Op {
	case OpEQ:
		return c == 0
	case OpNE:
		return c != 0
	case OpLT:
		return c < 0
	case OpLE:
		return c <= 0
	case OpGT:
		return c > 0
	case OpGE:
		return c >= 0
	default:
		return false
	}
}

// Spec is a conjunctive selection/projection over one table.
type Spec struct {
	// Predicates are ANDed together.
	Predicates []Predicate
	// Project lists returned columns; nil means all.
	Project []string
}

// Compile turns a Spec into a vbtree.Query: predicates on the key column
// tighten the index range (strict bounds keep a residual check, since keys
// are opaque to successor arithmetic), everything else becomes the
// residual filter evaluated at the edge server.
func Compile(sch *schema.Schema, spec Spec) (vbtree.Query, error) {
	if err := sch.Validate(); err != nil {
		return vbtree.Query{}, err
	}
	keyName := sch.KeyColumn().Name
	q := vbtree.Query{Project: spec.Project}

	var lo, hi *bound
	var residual []struct {
		col  int
		pred Predicate
	}

	for _, p := range spec.Predicates {
		ci := sch.ColumnIndex(p.Column)
		if ci < 0 {
			return vbtree.Query{}, fmt.Errorf("query: unknown column %q", p.Column)
		}
		if p.Value.Type != sch.Columns[ci].Type {
			return vbtree.Query{}, fmt.Errorf("query: predicate %s compares %v column with %v literal",
				p, sch.Columns[ci].Type, p.Value.Type)
		}
		if p.Column == keyName {
			switch p.Op {
			case OpEQ:
				lo = tighterLo(lo, bound{v: p.Value})
				hi = tighterHi(hi, bound{v: p.Value})
				continue
			case OpGE:
				lo = tighterLo(lo, bound{v: p.Value})
				continue
			case OpGT:
				lo = tighterLo(lo, bound{v: p.Value, strict: true})
			case OpLE:
				hi = tighterHi(hi, bound{v: p.Value})
				continue
			case OpLT:
				hi = tighterHi(hi, bound{v: p.Value, strict: true})
			case OpNE:
				// Falls through to the residual filter.
			}
		}
		residual = append(residual, struct {
			col  int
			pred Predicate
		}{ci, p})
	}

	if lo != nil {
		v := lo.v
		q.Lo = &v
	}
	if hi != nil {
		v := hi.v
		q.Hi = &v
	}
	if len(residual) > 0 {
		preds := residual
		q.Filter = func(t schema.Tuple) bool {
			for _, rp := range preds {
				if !rp.pred.eval(t.Values[rp.col]) {
					return false
				}
			}
			return true
		}
	}
	return q, nil
}

// bound is one side of a key range; strict marks an open endpoint whose
// exactness is enforced by the residual filter.
type bound struct {
	v      schema.Datum
	strict bool
}

// tighterLo keeps the larger lower bound.
func tighterLo(cur *bound, b bound) *bound {
	if cur == nil || b.v.Compare(cur.v) > 0 {
		return &b
	}
	return cur
}

// tighterHi keeps the smaller upper bound.
func tighterHi(cur *bound, b bound) *bound {
	if cur == nil || b.v.Compare(cur.v) < 0 {
		return &b
	}
	return cur
}

// EvalAll reports whether every predicate holds on the tuple.
func EvalAll(sch *schema.Schema, preds []Predicate, t schema.Tuple) (bool, error) {
	for _, p := range preds {
		ci := sch.ColumnIndex(p.Column)
		if ci < 0 {
			return false, fmt.Errorf("query: unknown column %q", p.Column)
		}
		if t.Values[ci].Type != p.Value.Type {
			return false, fmt.Errorf("query: predicate %s type mismatch", p)
		}
		if !p.eval(t.Values[ci]) {
			return false, nil
		}
	}
	return true, nil
}

// MaterializeEquiJoin computes L ⋈ R on lcol = rcol and returns the view's
// schema and tuples, keyed by a fresh sequential "rowid" column (views need
// their own unique primary key for the VB-tree). Left columns keep their
// names; right columns are prefixed with the right table's name and an
// underscore. The view is what the central server builds a VB-tree over,
// so edge servers can answer — and clients verify — join queries exactly
// like single-table ones.
func MaterializeEquiJoin(viewName string, lsch, rsch *schema.Schema,
	ltuples, rtuples []schema.Tuple, lcol, rcol string) (*schema.Schema, []schema.Tuple, error) {

	if viewName == "" {
		return nil, nil, errors.New("query: view name required")
	}
	li := lsch.ColumnIndex(lcol)
	if li < 0 {
		return nil, nil, fmt.Errorf("query: left join column %q not found", lcol)
	}
	ri := rsch.ColumnIndex(rcol)
	if ri < 0 {
		return nil, nil, fmt.Errorf("query: right join column %q not found", rcol)
	}
	if lsch.Columns[li].Type != rsch.Columns[ri].Type {
		return nil, nil, fmt.Errorf("query: join columns have types %v and %v",
			lsch.Columns[li].Type, rsch.Columns[ri].Type)
	}

	view := &schema.Schema{DB: lsch.DB, Table: viewName, Key: 0}
	view.Columns = append(view.Columns, schema.Column{Name: "rowid", Type: schema.TypeInt64})
	for _, c := range lsch.Columns {
		view.Columns = append(view.Columns, c)
	}
	for _, c := range rsch.Columns {
		view.Columns = append(view.Columns, schema.Column{
			Name: rsch.Table + "_" + c.Name,
			Type: c.Type,
		})
	}
	if err := view.Validate(); err != nil {
		return nil, nil, fmt.Errorf("query: view schema invalid (column collision?): %w", err)
	}

	// Hash join: index the right side by join key.
	type rkey string
	rindex := make(map[rkey][]int)
	for i, rt := range rtuples {
		if len(rt.Values) != len(rsch.Columns) {
			return nil, nil, fmt.Errorf("query: right tuple %d malformed", i)
		}
		k := rkey(rt.Values[ri].CanonicalBytes())
		rindex[k] = append(rindex[k], i)
	}
	var out []schema.Tuple
	rowid := int64(0)
	for i, lt := range ltuples {
		if len(lt.Values) != len(lsch.Columns) {
			return nil, nil, fmt.Errorf("query: left tuple %d malformed", i)
		}
		k := rkey(lt.Values[li].CanonicalBytes())
		for _, rj := range rindex[k] {
			vals := make([]schema.Datum, 0, len(view.Columns))
			vals = append(vals, schema.Int64(rowid))
			vals = append(vals, lt.Values...)
			vals = append(vals, rtuples[rj].Values...)
			out = append(out, schema.Tuple{Values: vals})
			rowid++
		}
	}
	return view, out, nil
}
