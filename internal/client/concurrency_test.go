package client

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"edgeauth/internal/central"
	"edgeauth/internal/edge"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/wire"
	"edgeauth/internal/workload"
)

// TestConcurrentQueriesOnePipelinedConn is the acceptance test of the
// API redesign: 64 goroutines share one Client (one multiplexed edge
// connection) and every out-of-order response must demultiplex to the
// caller that issued it. Run with -race.
func TestConcurrentQueriesOnePipelinedConn(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 400)

	// Prime the verifier cache so the workers only exercise Query.
	if _, err := d.client.Schema(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	const goroutines, per = 64, 5
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Distinct ranges per goroutine: a misrouted response
				// would carry the wrong row count or fail verification.
				lo := int64((g % 8) * 40)
				hi := lo + int64(g%5) + 1
				res, err := d.client.Query(ctx, "items", []query.Predicate{
					{Column: "id", Op: query.OpGE, Value: schema.Int64(lo)},
					{Column: "id", Op: query.OpLE, Value: schema.Int64(hi)},
				}, nil)
				if err != nil {
					errCh <- err
					return
				}
				if got, want := len(res.Result.Tuples), int(hi-lo+1); got != want {
					errCh <- errors.New("response demultiplexed to the wrong caller")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentQueriesDuringRefresh races verified reads against
// in-place delta application on the same replica (run with -race): the
// replica lock must keep every answer internally consistent, so each
// query sees a fully-applied version and still verifies.
func TestConcurrentQueriesDuringRefresh(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 300)
	sch, err := d.client.Schema(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	refreshErr := make(chan error, 1)
	go func() {
		defer close(refreshErr)
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			vals := make([]schema.Datum, len(sch.Columns))
			vals[0] = schema.Int64(40_000 + i)
			for c := 1; c < len(vals); c++ {
				vals[c] = schema.Str("refresh-race-payload")
			}
			if err := d.central.Insert("items", schema.Tuple{Values: vals}); err != nil {
				refreshErr <- err
				return
			}
			if _, err := d.edge.RefreshAll(ctx); err != nil {
				refreshErr <- err
				return
			}
		}
	}()

	const goroutines, per = 8, 10
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				res, err := d.client.Query(ctx, "items", []query.Predicate{
					{Column: "id", Op: query.OpGE, Value: schema.Int64(50)},
					{Column: "id", Op: query.OpLE, Value: schema.Int64(99)},
				}, nil)
				if err != nil {
					errCh <- err
					return
				}
				if len(res.Result.Tuples) != 50 {
					errCh <- errors.New("query raced a delta apply into an inconsistent answer")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	if err := <-refreshErr; err != nil {
		t.Fatal(err)
	}
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestQueryCancellation covers both cancellation shapes: a context that
// expires while a request is in flight, and one already expired before
// the call.
func TestQueryCancellation(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 100)
	if _, err := d.client.Schema(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	expired, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := d.client.Query(expired, "items", nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx: err = %v, want context.Canceled", err)
	}

	shortCtx, cancel2 := context.WithTimeout(ctx, time.Millisecond)
	defer cancel2()
	<-shortCtx.Done()
	if _, err := d.client.Query(shortCtx, "items", nil, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline ctx: err = %v, want context.DeadlineExceeded", err)
	}

	// The client remains fully usable after cancellations.
	if _, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpLE, Value: schema.Int64(10)},
	}, nil); err != nil {
		t.Fatalf("query after cancellations: %v", err)
	}
}

// TestClientSurvivesEdgeRestart kills the edge server mid-session and
// expects the client to redial and retry the (idempotent) query instead
// of failing forever on the poisoned cached connection — the bug the old
// serial client had.
func TestClientSurvivesEdgeRestart(t *testing.T) {
	ctx := context.Background()
	srv, err := central.NewServerWithKey(central.Options{PageSize: 1024}, centralKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(200)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(centralLn)
	t.Cleanup(func() { srv.Close() })

	eg := edge.New(centralLn.Addr().String())
	if err := eg.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	edgeAddr := edgeLn.Addr().String()
	go eg.Serve(edgeLn)

	cl, err := Dial(ctx, Config{
		EdgeAddr:      edgeAddr,
		CentralAddr:   centralLn.Addr().String(),
		RedialBackoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	if err := cl.FetchTrustedKey(ctx); err != nil {
		t.Fatal(err)
	}
	preds := []query.Predicate{{Column: "id", Op: query.OpLE, Value: schema.Int64(20)}}
	if _, err := cl.Query(ctx, "items", preds, nil); err != nil {
		t.Fatal(err)
	}

	// Kill the edge (listener and live connections) mid-session, then
	// restart a fresh edge on the same address.
	eg.Close()
	eg2 := edge.New(centralLn.Addr().String())
	if err := eg2.PullAll(ctx); err != nil {
		t.Fatal(err)
	}
	edgeLn2, err := net.Listen("tcp", edgeAddr)
	if err != nil {
		t.Fatal(err)
	}
	go eg2.Serve(edgeLn2)
	t.Cleanup(func() { eg2.Close() })

	res, err := cl.Query(ctx, "items", preds, nil)
	if err != nil {
		t.Fatalf("query after edge restart: %v (dead cached conn not dropped?)", err)
	}
	if len(res.Result.Tuples) != 21 {
		t.Fatalf("query after restart returned %d tuples", len(res.Result.Tuples))
	}
}

// TestTypedErrorsReachTheClient checks the v2 error frames survive the
// round trip as matchable sentinels.
func TestTypedErrorsReachTheClient(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 50)
	_, err := d.client.Query(ctx, "ghost", nil, nil)
	if !errors.Is(err, wire.ErrUnknownTable) {
		t.Fatalf("unknown table error not typed: %v", err)
	}
	var we *wire.WireError
	if !errors.As(err, &we) || we.Table != "ghost" {
		t.Fatalf("typed error lost its payload: %v", err)
	}
	if err := d.client.Insert(ctx, "ghost", schema.NewTuple(schema.Int64(1))); !errors.Is(err, wire.ErrUnknownTable) {
		t.Fatalf("central unknown-table error not typed: %v", err)
	}
}
