package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"

	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// Scatter-gather queries over range-partitioned tables.
//
// The shard map travels through the untrusted edge, so the client treats
// it as attacker-controlled until verify.VerifyShardMap passes. A
// (cached) verified map routes the query: its boundaries decide which
// shards the key range intersects. Each shard answer then arrives with
// the signed map the edge held when producing it; the client verifies
// that attached map, demands every answer in the gather carry the SAME
// map (no mixing a stale shard answer into a fresh set), checks it
// descends from the routing map's epoch and boundaries, and binds each
// per-shard VO to the root digest the attached map pins for its shard.
//
// The completeness argument across shards: the verified boundaries tile
// the key space with no gaps (shardmap.Map.Validate), the client queries
// every shard its range intersects, and a verified answer must arrive
// for each — an edge that "loses" a shard cannot forge the missing
// VO, and the map signature stops it from hiding the shard's existence.

// errShardDrift marks a gather that raced the edge's refresh (or a
// routing map from a dead epoch): retryable with a fresh routing map,
// tampering only if it persists.
var errShardDrift = errors.New("client: shard answers drifted from the routing map")

// shardMap returns the table's verified routing map, nil when the edge
// does not partition the table (pre-sharding edge or no map support).
// force refetches even on a cache hit.
func (c *Client) shardMap(ctx context.Context, v *verify.Verifier, table string, force bool) (*shardmap.Signed, error) {
	c.smu.Lock()
	if !force {
		if c.noShardMaps[table] {
			c.smu.Unlock()
			return nil, nil
		}
		if sm, ok := c.smaps[table]; ok {
			c.smu.Unlock()
			return sm, nil
		}
	}
	c.smu.Unlock()

	body, err := c.edge.Call(ctx, wire.MsgShardMapReq, []byte(table), wire.MsgShardMapResp, true)
	if err != nil {
		if isUnsupported(err) {
			c.smu.Lock()
			c.noShardMaps[table] = true
			c.smu.Unlock()
			return nil, nil
		}
		return nil, err
	}
	sm, err := shardmap.DecodeSigned(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	if err := c.verifyMap(ctx, v, sm, table); err != nil {
		return nil, err
	}
	if err := c.noteMapEpoch(table, sm.Map); err != nil {
		return nil, err
	}
	c.smu.Lock()
	c.smaps[table] = sm
	delete(c.noShardMaps, table)
	c.smu.Unlock()
	return sm, nil
}

// noteMapEpoch ratchets the table's partition-epoch high-water mark
// forward and fails closed when a verified map regresses below it: a
// signed pre-split map replayed by the edge would otherwise route
// queries over dead boundaries and hide the shards a split created.
// Must be called only with maps that already passed verifyMap.
func (c *Client) noteMapEpoch(table string, m *shardmap.Map) error {
	if m.MapEpoch == 0 {
		return nil // legacy map: predates epoch chaining
	}
	c.smu.Lock()
	defer c.smu.Unlock()
	g := c.mapGens[table]
	if err := verify.CheckMapSuccession(g.epoch, g.mapEpoch, m); err != nil {
		return fmt.Errorf("%w: %w", ErrTampered, err)
	}
	if g.epoch != m.Epoch || m.MapEpoch > g.mapEpoch {
		c.mapGens[table] = mapGen{epoch: m.Epoch, mapEpoch: m.MapEpoch}
	}
	return nil
}

// verifyMap checks a signed map, refetching the trusted key once when
// the map is signed under an unknown (possibly rotated-to) key version.
func (c *Client) verifyMap(ctx context.Context, v *verify.Verifier, sm *shardmap.Signed, table string) error {
	err := v.VerifyShardMap(sm, table)
	if err != nil && errors.Is(err, verify.ErrKeyVersion) && !errors.Is(err, verify.ErrFreshness) {
		if kerr := c.FetchTrustedKey(ctx); kerr != nil {
			return fmt.Errorf("client: refetching trusted key after %v: %w", err, kerr)
		}
		err = v.VerifyShardMap(sm, table)
	}
	if err != nil {
		return fmt.Errorf("%w: shard map: %v", ErrTampered, err)
	}
	return nil
}

// InvalidateShardMap drops the cached routing map for a table (tests and
// long-lived sessions after repartitioning).
func (c *Client) InvalidateShardMap(table string) {
	c.smu.Lock()
	defer c.smu.Unlock()
	delete(c.smaps, table)
	delete(c.noShardMaps, table)
}

// shardAnswer is one shard's raw response, gathered before verification.
type shardAnswer struct {
	shard int
	resp  *wire.ShardQueryResponse
	bytes int
	err   error
}

// queryShards runs the scatter-gather: one ShardQueryReq per qualifying
// shard (concurrently — the requests pipeline over the one multiplexed
// edge connection), then per-shard verification anchored at the
// attached, mutually-identical signed map, then a key-ordered stitch.
func (c *Client) queryShards(ctx context.Context, v *verify.Verifier, routing *shardmap.Signed, table string, preds []query.Predicate, project []string) (*QueryResult, error) {
	// Compile locally to learn the key range; the edge compiles the same
	// spec per shard (compilation is deterministic over the schema).
	q, err := query.Compile(v.Schema, query.Spec{Predicates: preds, Project: project})
	if err != nil {
		return nil, err
	}
	first, last := routing.Map.ShardsForRange(q.Lo, q.Hi)
	n := last - first + 1

	answers := make([]shardAnswer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &wire.ShardQueryRequest{
				Shard: uint32(first + i),
				Query: &wire.QueryRequest{
					Table:      table,
					Predicates: preds,
					Project:    project,
					ProjectAll: project == nil,
				},
			}
			a := shardAnswer{shard: first + i}
			body, err := c.edge.Call(ctx, wire.MsgShardQueryReq, req.Encode(), wire.MsgShardQueryResp, true)
			if err != nil {
				a.err = err
			} else {
				a.bytes = len(body)
				a.resp, a.err = wire.DecodeShardQueryResponse(body)
			}
			answers[i] = a
		}(i)
	}
	wg.Wait()

	// A transport failure or refusal for any qualifying shard fails the
	// whole query: an incomplete range answer must never look complete.
	// A shard-moved refusal means the scatter raced an online split or
	// merge — the routing map's positions are dead, which a fresh map
	// repairs, so it surfaces as retryable drift rather than a failure.
	for _, a := range answers {
		if a.err != nil {
			if errors.Is(a.err, wire.ErrShardMoved) {
				return nil, fmt.Errorf("%w: shard %d of %q: %w", errShardDrift, a.shard, table, a.err)
			}
			return nil, fmt.Errorf("client: shard %d of %q: %w", a.shard, table, a.err)
		}
	}

	// Every answer must carry the same signed map — byte-identical. A
	// mismatch means either the scatter straddled an edge refresh
	// (retryable) or the edge is mixing answer generations (the
	// stale-single-shard attack); the caller retries once with a fresh
	// routing map before declaring tampering.
	for _, a := range answers[1:] {
		if !bytes.Equal(a.resp.SignedMap, answers[0].resp.SignedMap) {
			return nil, fmt.Errorf("%w: %w: shards %d and %d answered under different shard maps",
				ErrTampered, errShardDrift, answers[0].shard, a.shard)
		}
	}
	bound, err := shardmap.DecodeSigned(answers[0].resp.SignedMap)
	if err != nil {
		return nil, fmt.Errorf("%w: attached shard map: %v", ErrTampered, err)
	}
	if err := c.verifyMap(ctx, v, bound, table); err != nil {
		return nil, err
	}
	// The replay ratchet applies to the attached map too: a signed
	// pre-split map served alongside the answers fails closed here, it
	// never reaches the drift retry below.
	if err := c.noteMapEpoch(table, bound.Map); err != nil {
		return nil, err
	}
	// The attached map must describe the same partition the routing map
	// did, or the shard selection above was computed over dead
	// boundaries. A newer partition epoch (an online split or merge
	// landed mid-scatter) is retryable drift: the caller re-routes once
	// against the fresh map.
	if bound.Map.Epoch != routing.Map.Epoch || bound.Map.MapEpoch != routing.Map.MapEpoch ||
		!boundariesEqual(bound.Map.Boundaries, routing.Map.Boundaries) {
		return nil, fmt.Errorf("%w: %w: partition changed between routing and answers",
			ErrTampered, errShardDrift)
	}

	// Bind each shard's VO to the root digest the verified attached map
	// pins. One trusted-key refetch is allowed across the whole gather.
	refetched := false
	out := &QueryResult{ShardsQueried: n}
	for _, a := range answers {
		rs, w := a.resp.Resp.Result, a.resp.Resp.VO
		rootDigest := bound.Map.Shards[a.shard].RootDigest
		err := v.VerifyAnchored(rs, w, rootDigest)
		if err != nil && errors.Is(err, verify.ErrKeyVersion) && !errors.Is(err, verify.ErrFreshness) && !refetched {
			if kerr := c.FetchTrustedKey(ctx); kerr != nil {
				return nil, fmt.Errorf("client: refetching trusted key after %v: %w", err, kerr)
			}
			refetched = true
			err = v.VerifyAnchored(rs, w, rootDigest)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: shard %d: %w", ErrTampered, a.shard, err)
		}
	}

	// Keep the freshest verified map cached for the next routing pass.
	if bound.Map.MapVersion > routing.Map.MapVersion {
		c.smu.Lock()
		c.smaps[table] = bound
		c.smu.Unlock()
	}

	// Stitch in shard order — shards cover ascending disjoint ranges, so
	// the concatenation is key-ordered.
	for _, a := range answers {
		rs, w := a.resp.Resp.Result, a.resp.Resp.VO
		if out.Result == nil {
			out.Result = &vo.ResultSet{DB: rs.DB, Table: rs.Table, Columns: rs.Columns}
		} else if !sameColumns(out.Result.Columns, rs.Columns) {
			return nil, fmt.Errorf("%w: shard %d returned columns %v, shard %d returned %v",
				ErrTampered, answers[0].shard, out.Result.Columns, a.shard, rs.Columns)
		}
		out.Result.Keys = append(out.Result.Keys, rs.Keys...)
		out.Result.Tuples = append(out.Result.Tuples, rs.Tuples...)
		out.ShardVOs = append(out.ShardVOs, w)
		out.VOBytes += w.WireSize()
		out.ResultBytes += rs.WireSize()
	}
	if n == 1 {
		out.VO = out.ShardVOs[0]
	}
	return out, nil
}

// Reshard asks the central server to split or merge a shard online (the
// admin path behind centrald's reshard frame). The table's cached
// routing map is invalidated on success so the next query routes over
// the new partition immediately instead of riding the drift retry.
//
// The ack is advisory: its fields (new generation, shard count) inform
// operators and tests but never feed verification or routing — those
// always come from a signature-verified shard map. It also arrives on
// the central connection, the same trusted channel the §3.4 key
// distribution rides, not from an untrusted edge.
func (c *Client) Reshard(ctx context.Context, req *wire.ReshardRequest) (*wire.ReshardResponse, error) {
	body, err := c.central.Call(ctx, wire.MsgReshardReq, req.Encode(), wire.MsgReshardResp, false)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeReshardResponse(body)
	if err != nil {
		return nil, err
	}
	c.InvalidateShardMap(req.Table)
	return resp, nil //vetauth:ignore trustflow advisory ack from the trusted central channel; routing and verification always use the signature-verified map
}

func boundariesEqual(a, b []schema.Datum) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

func sameColumns(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
