package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/edge"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vbtree"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

var (
	keyOnce sync.Once
	testKey *sig.PrivateKey
)

func centralKey(t testing.TB) *sig.PrivateKey {
	t.Helper()
	keyOnce.Do(func() { testKey = sig.MustGenerateKey(512) })
	return testKey
}

// deployment is a full Figure-2 system on loopback TCP.
type deployment struct {
	central *central.Server
	edge    *edge.Server
	client  *Client
}

func deploy(t *testing.T, rows int) *deployment {
	t.Helper()
	srv, err := central.NewServerWithKey(central.Options{PageSize: 1024}, centralKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}

	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(centralLn)

	eg := edge.New(centralLn.Addr().String())
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(edgeLn)

	cl, err := Dial(context.Background(), Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		eg.Close()
		srv.Close()
	})
	return &deployment{central: srv, edge: eg, client: cl}
}

func i64(v int) *schema.Datum {
	d := schema.Int64(int64(v))
	return &d
}

func TestEndToEndQueryVerifies(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 300)
	res, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(50)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(99)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 50 {
		t.Fatalf("got %d tuples, want 50", len(res.Result.Tuples))
	}
	if res.VOBytes <= 0 || res.ResultBytes <= 0 {
		t.Fatal("byte accounting missing")
	}
}

func TestEndToEndProjectionAndFilter(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 200)
	res, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "cat", Op: query.OpEQ, Value: schema.Str(workload.CategoryName(3))},
	}, []string{"id", "cat"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Columns) != 2 {
		t.Fatalf("columns = %v", res.Result.Columns)
	}
	for _, tp := range res.Result.Tuples {
		if tp.Values[1].S != workload.CategoryName(3) {
			t.Fatalf("filter leaked tuple %v", tp)
		}
	}
	if len(res.VO.DP) == 0 {
		t.Fatal("projection produced no DP digests")
	}
}

func TestEndToEndEmptyResult(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 100)
	res, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(5000)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 0 {
		t.Fatal("expected empty result")
	}
}

func TestEndToEndTamperDetected(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 200)

	cases := map[string]edge.TamperFn{
		"inflate value": func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) > 0 {
				rs.Tuples[0].Values[len(rs.Tuples[0].Values)-1] = schema.Str("hacked!")
			}
			return nil
		},
		"drop tuple": func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) > 1 {
				rs.Tuples = rs.Tuples[:len(rs.Tuples)-1]
				rs.Keys = rs.Keys[:len(rs.Keys)-1]
			}
			return nil
		},
		"inject tuple": func(rs *vo.ResultSet, w *vo.VO) error {
			if len(rs.Tuples) > 0 {
				fake := rs.Tuples[0].Clone()
				fake.Values[0] = schema.Int64(99999)
				rs.Tuples = append(rs.Tuples, fake)
				rs.Keys = append(rs.Keys, schema.Int64(99999))
			}
			return nil
		},
		"swap digest": func(rs *vo.ResultSet, w *vo.VO) error {
			if len(w.DS) > 0 {
				w.DS[0].Sig[0] ^= 0xFF
			}
			return nil
		},
	}
	preds := []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(60)},
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			d.edge.SetTamper(fn)
			defer d.edge.SetTamper(nil)
			_, err := d.client.Query(ctx, "items", preds, nil)
			if !errors.Is(err, ErrTampered) {
				t.Fatalf("tampering %q: err = %v, want ErrTampered", name, err)
			}
		})
	}
	// Clean queries pass again once the edge behaves.
	if _, err := d.client.Query(ctx, "items", preds, nil); err != nil {
		t.Fatalf("clean query after tamper: %v", err)
	}
}

func TestEndToEndUpdatePropagation(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 100)
	// Insert through the client (goes to central).
	newTuple := mkWorkloadTuple(t, d, 5000)
	if err := d.client.Insert(ctx, "items", newTuple); err != nil {
		t.Fatal(err)
	}
	// Edge is stale: the new tuple is not there yet, but results verify.
	res, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpEQ, Value: schema.Int64(5000)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 0 {
		t.Fatal("stale edge returned the new tuple without a refresh")
	}
	// Refresh (the paper's periodic propagation) and re-query.
	if err := d.edge.Pull(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	res, err = d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpEQ, Value: schema.Int64(5000)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 1 {
		t.Fatalf("refreshed edge returned %d tuples", len(res.Result.Tuples))
	}
	// Delete through the client, refresh, verify again.
	n, err := d.client.DeleteRange(ctx, "items", i64(0), i64(9))
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("deleted %d, want 10", n)
	}
	if err := d.edge.Pull(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	res, err = d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpLE, Value: schema.Int64(20)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 11 {
		t.Fatalf("after delete, got %d tuples, want 11", len(res.Result.Tuples))
	}
}

// mkWorkloadTuple builds a schema-conformant tuple with the given id.
func mkWorkloadTuple(t *testing.T, d *deployment, id int) schema.Tuple {
	t.Helper()
	sch, err := d.client.Schema(context.Background(), "items")
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(int64(id))
	for i := 1; i < len(sch.Columns); i++ {
		vals[i] = schema.Str(fmt.Sprintf("v%02d-%020d", i, id))
	}
	return schema.Tuple{Values: vals}
}

func TestEndToEndJoinView(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 50)
	// Materialize a self-referential demo view at the central server:
	// items joined with itself on cat (cheap but structurally a join).
	j := workload.DefaultJoinSpec(20, 100)
	usch, err := j.Users.Schema()
	if err != nil {
		t.Fatal(err)
	}
	utuples, err := j.Users.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.central.AddTable(usch, utuples); err != nil {
		t.Fatal(err)
	}
	if err := d.central.AddTable(j.OrdersSchema(), j.OrderTuples()); err != nil {
		t.Fatal(err)
	}
	if err := d.central.MaterializeJoin("user_orders", "orders", "users", "user_id", "id"); err != nil {
		t.Fatal(err)
	}
	if err := d.edge.Pull(ctx, "user_orders"); err != nil {
		t.Fatal(err)
	}
	// Query the authenticated join view through the normal path.
	res, err := d.client.Query(ctx, "user_orders", []query.Predicate{
		{Column: "user_id", Op: query.OpEQ, Value: schema.Int64(3)},
	}, []string{"rowid", "oid", "user_id"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range res.Result.Tuples {
		if tp.Values[2].I != 3 {
			t.Fatalf("join view filter leaked %v", tp)
		}
	}
}

func TestEndToEndErrors(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 20)
	if _, err := d.client.Query(ctx, "ghost", nil, nil); err == nil {
		t.Fatal("query of unknown table succeeded")
	}
	if err := d.client.Insert(ctx, "ghost", schema.NewTuple(schema.Int64(1))); err == nil {
		t.Fatal("insert into unknown table succeeded")
	}
	if _, err := d.client.DeleteRange(ctx, "ghost", nil, nil); err == nil {
		t.Fatal("delete from unknown table succeeded")
	}
	tables, err := d.client.EdgeTables(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0] != "items" {
		t.Fatalf("edge tables = %v", tables)
	}
}

func TestCentralDirectQueryPath(t *testing.T) {
	// The trusted path: central answers queries itself (for tools).
	d := deploy(t, 50)
	q, err := compileRange(d, 5, 15)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.central.RunQuery(context.Background(), "items", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Result.Tuples) != 11 {
		t.Fatalf("central query returned %d tuples", len(resp.Result.Tuples))
	}
}

func compileRange(d *deployment, lo, hi int) (q2 vbtree.Query, err error) {
	sch, err := d.client.Schema(context.Background(), "items")
	if err != nil {
		return q2, err
	}
	return query.Compile(sch, query.Spec{Predicates: []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(int64(lo))},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(int64(hi))},
	}})
}
