package client

import (
	"context"
	"errors"
	"net"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/edge"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/tamper"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

// deploySharded is deploy with a range-partitioned central server.
func deploySharded(t *testing.T, rows, shards int) *deployment {
	t.Helper()
	srv, err := central.NewServerWithKey(central.Options{PageSize: 1024, Shards: shards}, centralKey(t))
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(centralLn)

	eg := edge.New(centralLn.Addr().String())
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(edgeLn)

	cl, err := Dial(context.Background(), Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		eg.Close()
		srv.Close()
	})
	return &deployment{central: srv, edge: eg, client: cl}
}

func rangePreds(lo, hi int64) []query.Predicate {
	return []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(lo)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(hi)},
	}
}

// TestShardedQueryEndToEnd: an honest cross-shard range query verifies
// end to end — every qualifying shard answers, each VO anchors at its
// map-pinned root, and the stitched result is complete and key-ordered.
func TestShardedQueryEndToEnd(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)
	if n, err := d.edge.NumShards("items"); err != nil || n != 4 {
		t.Fatalf("edge replicated %d shards (%v), want 4", n, err)
	}

	// Cross-shard range: rows 50..349 span all four shards (boundaries
	// sit at 100/200/300 for the 0..399 sequential workload).
	res, err := d.client.Query(ctx, "items", rangePreds(50, 349), nil)
	if err != nil {
		t.Fatalf("honest cross-shard query rejected: %v", err)
	}
	if res.ShardsQueried != 4 {
		t.Fatalf("queried %d shards, want 4", res.ShardsQueried)
	}
	if len(res.Result.Tuples) != 300 {
		t.Fatalf("got %d rows, want 300", len(res.Result.Tuples))
	}
	if len(res.ShardVOs) != 4 {
		t.Fatalf("got %d shard VOs, want 4", len(res.ShardVOs))
	}
	for i := 1; i < len(res.Result.Keys); i++ {
		if res.Result.Keys[i-1].Compare(res.Result.Keys[i]) >= 0 {
			t.Fatalf("stitched result out of key order at %d", i)
		}
	}

	// A single-shard range sets VO and still verifies.
	res, err = d.client.Query(ctx, "items", rangePreds(110, 120), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != 1 || res.VO == nil || len(res.Result.Tuples) != 11 {
		t.Fatalf("single-shard query: shards=%d vo=%v rows=%d", res.ShardsQueried, res.VO != nil, len(res.Result.Tuples))
	}

	// An empty cross-boundary range verifies as provably empty.
	if _, err := d.client.DeleteRange(ctx, "items", ptr(schema.Int64(95)), ptr(schema.Int64(105))); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	res, err = d.client.Query(ctx, "items", rangePreds(95, 105), nil)
	if err != nil {
		t.Fatalf("empty-range query rejected: %v", err)
	}
	if len(res.Result.Tuples) != 0 {
		t.Fatalf("deleted range still returned %d rows", len(res.Result.Tuples))
	}

	// Writes through the client land on the right shards and are served
	// after a refresh (batch spanning every shard).
	var batch []schema.Tuple
	for _, id := range []int64{-10, 96, 100, 1_000} {
		batch = append(batch, row(t, id))
	}
	opErrs, err := d.client.InsertBatch(ctx, "items", batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range opErrs {
		if e != nil {
			t.Fatalf("batch op %d: %v", i, e)
		}
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	res, err = d.client.Query(ctx, "items", rangePreds(-10, 1_000), nil)
	if err != nil {
		t.Fatalf("post-insert cross-shard query rejected: %v", err)
	}
	// 400 initial - 11 deleted + 4 inserted.
	if len(res.Result.Tuples) != 393 {
		t.Fatalf("got %d rows, want 393", len(res.Result.Tuples))
	}
}

func ptr(d schema.Datum) *schema.Datum { return &d }

func row(t testing.TB, id int64) schema.Tuple {
	t.Helper()
	sch, err := workload.DefaultSpec(1).Schema()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for i := 1; i < len(vals); i++ {
		vals[i] = schema.Str("shard-e2e-payload")
	}
	return schema.Tuple{Values: vals}
}

// TestDropShardAttackFailsVerification: a compromised edge serving a
// doctored shard map (one shard hidden) cannot get a truncated range
// answer accepted — the map signature covers the shard list and the
// boundary keys.
func TestDropShardAttackFailsVerification(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)

	// Sanity: honest answer first (also warms the client's map cache —
	// the attack must still be caught through the per-answer maps).
	res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil)
	if err != nil || len(res.Result.Tuples) != 400 {
		t.Fatalf("honest query: rows=%d err=%v", len(res.Result.Tuples), err)
	}

	attack := tamper.DropShardFromMap()
	d.edge.SetMapTamper(func(sm *shardmap.Signed) *shardmap.Signed {
		if err := attack.Apply(sm); err != nil {
			t.Errorf("attack inapplicable: %v", err)
		}
		return sm
	})
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("drop-shard attack returned %v, want ErrTampered", err)
	}

	// A fresh client (no cached map) is also protected at routing time.
	fresh := d.freshClient(t)
	if _, err := fresh.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("drop-shard attack on fresh client returned %v, want ErrTampered", err)
	}

	// Rewiring digests between shards is equally fatal.
	rewire := tamper.RewireShardDigests()
	d.edge.SetMapTamper(func(sm *shardmap.Signed) *shardmap.Signed {
		if err := rewire.Apply(sm); err != nil {
			t.Errorf("attack inapplicable: %v", err)
		}
		return sm
	})
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("rewire attack returned %v, want ErrTampered", err)
	}

	// Clearing the hook restores verifiable answers.
	d.edge.SetMapTamper(nil)
	if res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); err != nil || len(res.Result.Tuples) != 400 {
		t.Fatalf("post-attack honest query: rows=%d err=%v", len(res.Result.Tuples), err)
	}
}

// TestStaleShardAttackFailsVerification: a compromised edge answering
// one shard of a cross-shard range from a frozen old replica (each VO
// individually authentic) is caught by the shard-map binding: the
// replayed VO anchors at the shard's old root digest, not the one the
// current signed map pins.
func TestStaleShardAttackFailsVerification(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)

	// Capture shard 1's verified answer for its whole range.
	sm, err := d.edge.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	b0, b1 := sm.Map.Boundaries[0].I, sm.Map.Boundaries[1].I
	stale, err := d.client.Query(ctx, "items", rangePreds(b0, b1-1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if stale.ShardsQueried != 1 {
		t.Fatalf("capture query touched %d shards, want 1", stale.ShardsQueried)
	}

	// Move shard 1 forward: delete a band inside it, refresh the edge.
	if _, err := d.client.DeleteRange(ctx, "items", ptr(schema.Int64(b0+10)), ptr(schema.Int64(b0+19))); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	// Honest cross-shard answer reflects the delete.
	res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 390 {
		t.Fatalf("post-delete honest query: %d rows, want 390", len(res.Result.Tuples))
	}

	// Now freeze shard 1 at its pre-delete answer. The replay would
	// resurrect the 10 deleted rows with individually-valid signatures.
	attack := tamper.ReplayStaleShard(stale.Result, stale.VO)
	d.edge.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
		// Other shards' answers pass through untouched.
		if err := attack.Apply(rs, w); err != nil && !errors.Is(err, tamper.ErrNotApplicable) {
			return err
		}
		return nil
	})
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("stale-shard replay returned %v, want ErrTampered", err)
	}

	d.edge.SetTamper(nil)
	if res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); err != nil || len(res.Result.Tuples) != 390 {
		t.Fatalf("post-attack honest query: rows=%d err=%v", len(res.Result.Tuples), err)
	}
}

// freshClient dials a second client at the deployment's servers.
func (d *deployment) freshClient(t *testing.T) *Client {
	t.Helper()
	cl, err := Dial(context.Background(), Config{
		EdgeAddr:    d.client.cfg.EdgeAddr,
		CentralAddr: d.client.cfg.CentralAddr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestStatsCounters: the observability snapshot moves with real
// traffic — queries, VO bytes, sign ops, batch rounds, refreshes.
func TestStatsCounters(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 200, 2)

	if _, err := d.client.Query(ctx, "items", rangePreds(0, 199), nil); err != nil {
		t.Fatal(err)
	}
	var batch []schema.Tuple
	for _, id := range []int64{500, 501, 502} {
		batch = append(batch, row(t, id))
	}
	if _, err := d.client.InsertBatch(ctx, "items", batch); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Query(ctx, "items", rangePreds(500, 502), nil); err != nil {
		t.Fatal(err)
	}

	cs := d.central.Stats()
	if cs.SignOps == 0 {
		t.Fatal("central SignOps never moved")
	}
	if cs.InsertsApplied != 3 {
		t.Fatalf("central InsertsApplied = %d, want 3", cs.InsertsApplied)
	}
	if cs.BatchRounds == 0 || cs.BatchOps != 3 || cs.MaxRound != 3 {
		t.Fatalf("central batch counters: rounds=%d ops=%d max=%d", cs.BatchRounds, cs.BatchOps, cs.MaxRound)
	}
	if cs.ShardMapsServed == 0 || cs.SnapshotsServed == 0 {
		t.Fatalf("central replication counters: maps=%d snapshots=%d", cs.ShardMapsServed, cs.SnapshotsServed)
	}

	es := d.edge.Stats()
	// First query touched 2 shards, second 1.
	if es.QueriesServed < 3 {
		t.Fatalf("edge QueriesServed = %d, want >= 3", es.QueriesServed)
	}
	if es.VOBytes == 0 {
		t.Fatal("edge VOBytes never moved")
	}
	if es.RefreshesApplied == 0 || es.DeltasApplied == 0 {
		t.Fatalf("edge refresh counters: refreshes=%d deltas=%d", es.RefreshesApplied, es.DeltasApplied)
	}
	if es.SnapshotsInstalled < 2 {
		t.Fatalf("edge SnapshotsInstalled = %d, want >= 2 (one per shard at pull)", es.SnapshotsInstalled)
	}
}

// TestShardedLegacyInterop: a sharding-aware client against an
// unsharded central/edge pair falls back to the single-tree protocol,
// and a single-shard "partitioned" table serves both protocols.
func TestShardedLegacyInterop(t *testing.T) {
	ctx := context.Background()
	// Single-shard sharded deployment: shard path with one shard.
	d := deploySharded(t, 100, 1)
	res, err := d.client.Query(ctx, "items", rangePreds(0, 99), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsQueried != 1 || len(res.Result.Tuples) != 100 {
		t.Fatalf("single-shard sharded query: shards=%d rows=%d", res.ShardsQueried, len(res.Result.Tuples))
	}
	// The plain deployment (Options.Shards zero) behaves identically
	// through the same client code path.
	d2 := deploy(t, 50)
	res2, err := d2.client.Query(ctx, "items", rangePreds(0, 49), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Result.Tuples) != 50 {
		t.Fatalf("unsharded query: rows=%d", len(res2.Result.Tuples))
	}
}
