package client

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgeauth/internal/central"
	"edgeauth/internal/schema"
	"edgeauth/internal/wire"
	"edgeauth/internal/workload"
)

// TestRebalanceUnderLoad is the online-resharding soak: continuous
// zipfian-skewed ingest and concurrent verified scatter-gather queries
// run across two shard splits and one merge, with the edge refreshing
// on a tight tick the whole time. The acceptance bar: every answer
// verifies (zero ErrTampered), and no query ever observes a
// stale-replica window — a partition transition must re-bind the
// edge's carried shards, never invalidate the replica. Run under
// -race in CI.
func TestRebalanceUnderLoad(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 2)

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Edge refresh loop: a tight propagation tick. Individual tick
	// errors are tolerated (commits legitimately race the alignment
	// loop under this load); a broken replica would surface below as a
	// stale-replica or tampered query answer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				d.edge.Refresh(ctx, "items") //nolint:errcheck
			}
		}
	}()

	// Zipfian ingest: bucket 0 takes most inserts, so one key region —
	// and therefore one shard — runs hot while the splits land.
	const buckets = 8
	var inserted atomic.Int64
	buckets0 := workload.ZipfBuckets(4096, buckets, 1.5, 42)
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := make([]int64, buckets)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var batch []schema.Tuple
			for j := 0; j < 10; j++ {
				b := buckets0[(i*10+j)%len(buckets0)]
				id := 1_000_000 + int64(b)*100_000 + seq[b]
				seq[b]++
				batch = append(batch, row(t, id))
			}
			opErrs, err := d.client.InsertBatch(ctx, "items", batch)
			if err != nil {
				t.Errorf("ingest batch: %v", err)
				return
			}
			for _, e := range opErrs {
				if e != nil {
					t.Errorf("ingest op: %v", e)
					return
				}
			}
			inserted.Add(int64(len(batch)))
		}
	}()

	// Verified readers: full-range scatter-gather plus a hot-region
	// range, continuously. ANY error is a failure, and stale-replica /
	// tampered answers are called out specifically — those are the two
	// windows online resharding must not open.
	var queries atomic.Int64
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				preds := rangePreds(0, 3_000_000)
				if r == 1 {
					preds = rangePreds(1_000_000, 1_100_000) // hot region
				}
				res, err := d.client.Query(ctx, "items", preds, nil)
				switch {
				case errors.Is(err, wire.ErrStaleReplica):
					t.Errorf("client observed a stale-replica window during resharding: %v", err)
					return
				case errors.Is(err, ErrTampered):
					t.Errorf("verification failed during resharding: %v", err)
					return
				case err != nil:
					t.Errorf("query during resharding: %v", err)
					return
				}
				if r == 0 && len(res.Result.Tuples) < 400 {
					t.Errorf("full scan returned %d rows, want >= 400", len(res.Result.Tuples))
					return
				}
				queries.Add(1)
			}
		}(r)
	}

	// The transitions, spaced so the load runs across each: split the
	// hot tail shard twice, then merge the (cold) head pair back.
	time.Sleep(100 * time.Millisecond)
	resp, err := d.central.SplitShard(ctx, "items", 1, nil)
	if err != nil {
		t.Fatalf("first split under load: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	if _, err := d.central.SplitShard(ctx, "items", resp.NumShards-1, nil); err != nil {
		t.Fatalf("second split under load: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	if _, err := d.central.MergeShards(ctx, "items", 0); err != nil {
		t.Fatalf("merge under load: %v", err)
	}
	time.Sleep(150 * time.Millisecond)

	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Converge and audit: the final refresh must land the edge on the
	// final 3-shard partition, and a last verified scan must account
	// for every row the ingest committed (InsertBatch returns only
	// after its group commit, so everything counted is durable).
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatalf("final refresh: %v", err)
	}
	if n, _ := d.edge.NumShards("items"); n != 3 {
		t.Fatalf("edge ended on %d shards, want 3 (2 splits, 1 merge)", n)
	}
	res, err := d.client.Query(ctx, "items", rangePreds(0, 3_000_000), nil)
	if err != nil {
		t.Fatalf("final audit query: %v", err)
	}
	want := 400 + int(inserted.Load())
	if len(res.Result.Tuples) != want {
		t.Fatalf("final audit: %d rows, want %d", len(res.Result.Tuples), want)
	}

	cs := d.central.Stats()
	if cs.Splits != 2 || cs.Merges != 1 {
		t.Fatalf("central transition counters: splits=%d merges=%d, want 2/1", cs.Splits, cs.Merges)
	}
	// The minimal re-signing contract held under load: 2 roots per
	// split + 1 per merge, never a whole-table re-sign.
	if cs.ReshardResigns != 5 {
		t.Fatalf("reshard root re-signs = %d, want 5 (2+2+1)", cs.ReshardResigns)
	}
	// Incremental transitions: across all three transitions the in-lock
	// tail replay stays near the configured bound (plus a race-window
	// slack per transition), never near the table's size — the unlocked
	// build plus catch-up rounds absorbed the rest.
	if lim := uint64(3 * (central.DefaultReshardTailBound + 512)); cs.ReshardTailReplayed > lim {
		t.Fatalf("in-lock tail replay = %d tuples across 3 transitions; want <= %d", cs.ReshardTailReplayed, lim)
	}
	es := d.edge.Stats()
	if es.ReshardsApplied == 0 {
		t.Fatal("edge never followed a partition transition")
	}
	t.Logf("rebalance soak: %d queries verified, %d rows ingested, %d transitions followed by the edge",
		queries.Load(), inserted.Load(), es.ReshardsApplied)
}
