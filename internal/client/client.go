// Package client implements the trusted DB client of the paper's
// Figure 2: it obtains the central server's public key over an
// authenticated channel (the PKI stand-in), sends queries to an edge
// server, and verifies every result against its verification object
// before handing it to the application. Updates are routed to the central
// server, since only the central server holds the signing key.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// Client talks to one edge server and one central server.
type Client struct {
	mu          sync.Mutex
	edgeAddr    string
	centralAddr string
	edgeConn    net.Conn
	centralConn net.Conn
	keys        *sig.Registry
	verifiers   map[string]*verify.Verifier
}

// New creates a client. Connections are established lazily.
func New(edgeAddr, centralAddr string) *Client {
	return &Client{
		edgeAddr:    edgeAddr,
		centralAddr: centralAddr,
		keys:        sig.NewRegistry(),
		verifiers:   make(map[string]*verify.Verifier),
	}
}

// Close drops both connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.edgeConn != nil {
		c.edgeConn.Close()
		c.edgeConn = nil
	}
	if c.centralConn != nil {
		c.centralConn.Close()
		c.centralConn = nil
	}
}

func (c *Client) edge() (net.Conn, error) {
	if c.edgeConn != nil {
		return c.edgeConn, nil
	}
	conn, err := net.Dial("tcp", c.edgeAddr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing edge: %w", err)
	}
	c.edgeConn = conn
	return conn, nil
}

func (c *Client) central() (net.Conn, error) {
	if c.centralConn != nil {
		return c.centralConn, nil
	}
	conn, err := net.Dial("tcp", c.centralAddr)
	if err != nil {
		return nil, fmt.Errorf("client: dialing central: %w", err)
	}
	c.centralConn = conn
	return conn, nil
}

// call sends one request frame and reads one response frame, resolving
// error frames.
func call(conn net.Conn, t wire.MsgType, body []byte, want wire.MsgType) ([]byte, error) {
	if err := wire.WriteFrame(conn, t, body); err != nil {
		return nil, err
	}
	mt, resp, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if mt == wire.MsgError {
		return nil, wire.AsError(resp)
	}
	if mt != want {
		return nil, fmt.Errorf("client: expected %v, got %v", want, mt)
	}
	return resp, nil
}

// FetchTrustedKey retrieves the central server's public key over the
// authenticated channel and registers it for verification.
func (c *Client) FetchTrustedKey() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.central()
	if err != nil {
		return err
	}
	body, err := call(conn, wire.MsgPubKeyReq, nil, wire.MsgPubKeyResp)
	if err != nil {
		return err
	}
	var pk sig.PublicKey
	if err := pk.UnmarshalBinary(body); err != nil {
		return err
	}
	c.keys.Put(&pk)
	return nil
}

// TrustKey registers an out-of-band public key (e.g. baked into the app).
func (c *Client) TrustKey(pk *sig.PublicKey) {
	c.keys.Put(pk)
}

// verifier builds (and caches) the verifier for a table using the edge's
// schema response. The schema and accumulator parameters are not secret —
// a lying edge only causes verification to fail.
func (c *Client) verifier(table string) (*verify.Verifier, error) {
	if v, ok := c.verifiers[table]; ok {
		return v, nil
	}
	conn, err := c.edge()
	if err != nil {
		return nil, err
	}
	body, err := call(conn, wire.MsgSchemaReq, []byte(table), wire.MsgSchemaResp)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeSchemaResponse(body)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(resp.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	v := &verify.Verifier{Keys: c.keys, Acc: acc, Schema: resp.Schema}
	c.verifiers[table] = v
	return v, nil
}

// Schema returns the table schema as reported by the edge server.
func (c *Client) Schema(table string) (*schema.Schema, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, err := c.verifier(table)
	if err != nil {
		return nil, err
	}
	return v.Schema, nil
}

// QueryResult is a verified query answer.
type QueryResult struct {
	Result *vo.ResultSet
	VO     *vo.VO
	// VOBytes / ResultBytes are the wire sizes, for cost accounting.
	VOBytes     int
	ResultBytes int
}

// ErrTampered wraps verification failures so applications can
// distinguish a compromised edge from transport errors.
var ErrTampered = errors.New("client: query result failed verification")

// Query runs a selection/projection at the edge and verifies the answer.
func (c *Client) Query(table string, preds []query.Predicate, project []string) (*QueryResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, err := c.verifier(table)
	if err != nil {
		return nil, err
	}
	conn, err := c.edge()
	if err != nil {
		return nil, err
	}
	req := &wire.QueryRequest{
		Table:      table,
		Predicates: preds,
		Project:    project,
		ProjectAll: project == nil,
	}
	body, err := call(conn, wire.MsgQueryReq, req.Encode(), wire.MsgQueryResp)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeQueryResponse(body)
	if err != nil {
		return nil, err
	}
	if err := v.Verify(resp.Result, resp.VO); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	return &QueryResult{
		Result:      resp.Result,
		VO:          resp.VO,
		VOBytes:     resp.VO.WireSize(),
		ResultBytes: resp.Result.WireSize(),
	}, nil
}

// Insert sends a tuple insert to the central server.
func (c *Client) Insert(table string, tup schema.Tuple) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.central()
	if err != nil {
		return err
	}
	req := &wire.InsertRequest{Table: table, Tuple: tup}
	_, err = call(conn, wire.MsgInsertReq, req.Encode(), wire.MsgInsertResp)
	return err
}

// DeleteRange sends a key-range delete to the central server and returns
// the number of removed tuples.
func (c *Client) DeleteRange(table string, lo, hi *schema.Datum) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.central()
	if err != nil {
		return 0, err
	}
	req := &wire.DeleteRequest{Table: table}
	if lo != nil {
		req.HasLo, req.Lo = true, *lo
	}
	if hi != nil {
		req.HasHi, req.Hi = true, *hi
	}
	body, err := call(conn, wire.MsgDeleteReq, req.Encode(), wire.MsgDeleteResp)
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeU64(body)
	return int(n), err
}

// EdgeTables lists tables available at the edge server.
func (c *Client) EdgeTables() ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	conn, err := c.edge()
	if err != nil {
		return nil, err
	}
	body, err := call(conn, wire.MsgListTablesReq, nil, wire.MsgListTablesResp)
	if err != nil {
		return nil, err
	}
	return wire.DecodeStringList(body)
}

// InvalidateSchema drops the cached verifier for a table (after schema or
// key changes).
func (c *Client) InvalidateSchema(table string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.verifiers, table)
}
