// Package client implements the trusted DB client of the paper's
// Figure 2: it obtains the central server's public key over an
// authenticated channel (the PKI stand-in), sends queries to an edge
// server, and verifies every result against its verification object
// before handing it to the application. Updates are routed to the central
// server, since only the central server holds the signing key.
//
// The client is context-first and safe for concurrent use: N goroutines
// can query through one Client and their requests pipeline over a single
// multiplexed (wire protocol v2) connection per server, with responses
// demultiplexed by request ID. Against a legacy v1 server the client
// transparently downgrades to serial one-in/one-out exchanges. A dead
// cached connection is redialed with backoff instead of poisoning the
// client, and idempotent requests (queries, schema and key fetches) are
// retried once on a fresh connection.
package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// Config configures a Client.
type Config struct {
	// EdgeAddr is the edge server answering queries.
	EdgeAddr string
	// CentralAddr is the trusted central server receiving updates and
	// serving the public key.
	CentralAddr string
	// DialTimeout bounds each TCP connect attempt. 0 selects
	// rpc.DefaultDialTimeout.
	DialTimeout time.Duration
	// RedialAttempts is how many connect attempts are made when a cached
	// connection has died. 0 selects rpc.DefaultRedialAttempts.
	RedialAttempts int
	// RedialBackoff is the wait before the second connect attempt,
	// doubling per attempt. 0 selects rpc.DefaultRedialBackoff.
	RedialBackoff time.Duration
	// DisableMultiplex forces wire protocol v1 (serial
	// one-frame-in/one-frame-out) even against a v2 server. Used by the
	// pipelined-vs-serial benchmarks and compatibility tests.
	DisableMultiplex bool
}

func (c Config) rpcOptions() rpc.Options {
	return rpc.Options{
		DialTimeout:    c.DialTimeout,
		RedialAttempts: c.RedialAttempts,
		RedialBackoff:  c.RedialBackoff,
		ForceV1:        c.DisableMultiplex,
	}
}

// Client talks to one edge server and one central server.
type Client struct {
	cfg     Config
	edge    *rpc.Conn
	central *rpc.Conn
	keys    *sig.Registry

	vmu       sync.Mutex
	verifiers map[string]*verify.Verifier
}

// Dial creates a client and eagerly connects (and handshakes) to the
// edge server, so an unreachable edge surfaces immediately. The central
// connection is established on first use.
func Dial(ctx context.Context, cfg Config) (*Client, error) {
	c := newClient(cfg)
	if err := c.edge.Connect(ctx); err != nil {
		return nil, fmt.Errorf("client: dialing edge: %w", err)
	}
	return c, nil
}

// New creates a client with lazy connections.
//
// Deprecated: use Dial, which takes a context and reports an unreachable
// edge immediately.
func New(edgeAddr, centralAddr string) *Client {
	return newClient(Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
}

func newClient(cfg Config) *Client {
	return &Client{
		cfg:       cfg,
		edge:      rpc.New(cfg.EdgeAddr, cfg.rpcOptions()),
		central:   rpc.New(cfg.CentralAddr, cfg.rpcOptions()),
		keys:      sig.NewRegistry(),
		verifiers: make(map[string]*verify.Verifier),
	}
}

// Close drops both connections.
func (c *Client) Close() {
	c.edge.Close()
	c.central.Close()
}

// FetchTrustedKey retrieves the central server's public key over the
// authenticated channel and registers it for verification.
func (c *Client) FetchTrustedKey(ctx context.Context) error {
	body, err := c.central.Call(ctx, wire.MsgPubKeyReq, nil, wire.MsgPubKeyResp, true)
	if err != nil {
		return err
	}
	var pk sig.PublicKey
	if err := pk.UnmarshalBinary(body); err != nil {
		return err
	}
	c.keys.Put(&pk)
	return nil
}

// TrustKey registers an out-of-band public key (e.g. baked into the app).
func (c *Client) TrustKey(pk *sig.PublicKey) {
	c.keys.Put(pk)
}

// verifier builds (and caches) the verifier for a table using the edge's
// schema response. The schema and accumulator parameters are not secret —
// a lying edge only causes verification to fail. Concurrent callers for
// an uncached table may fetch the schema twice; the last one wins, which
// is harmless because the response is deterministic.
func (c *Client) verifier(ctx context.Context, table string) (*verify.Verifier, error) {
	c.vmu.Lock()
	v, ok := c.verifiers[table]
	c.vmu.Unlock()
	if ok {
		return v, nil
	}
	body, err := c.edge.Call(ctx, wire.MsgSchemaReq, []byte(table), wire.MsgSchemaResp, true)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeSchemaResponse(body)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(resp.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	v = &verify.Verifier{Keys: c.keys, Acc: acc, Schema: resp.Schema}
	c.vmu.Lock()
	c.verifiers[table] = v
	c.vmu.Unlock()
	return v, nil
}

// Schema returns the table schema as reported by the edge server.
func (c *Client) Schema(ctx context.Context, table string) (*schema.Schema, error) {
	v, err := c.verifier(ctx, table)
	if err != nil {
		return nil, err
	}
	return v.Schema, nil
}

// QueryResult is a verified query answer.
type QueryResult struct {
	Result *vo.ResultSet
	VO     *vo.VO
	// VOBytes / ResultBytes are the wire sizes, for cost accounting.
	VOBytes     int
	ResultBytes int
}

// ErrTampered wraps verification failures so applications can
// distinguish a compromised edge from transport errors.
var ErrTampered = errors.New("client: query result failed verification")

// Query runs a selection/projection at the edge and verifies the answer.
func (c *Client) Query(ctx context.Context, table string, preds []query.Predicate, project []string) (*QueryResult, error) {
	v, err := c.verifier(ctx, table)
	if err != nil {
		return nil, err
	}
	req := &wire.QueryRequest{
		Table:      table,
		Predicates: preds,
		Project:    project,
		ProjectAll: project == nil,
	}
	body, err := c.edge.Call(ctx, wire.MsgQueryReq, req.Encode(), wire.MsgQueryResp, true)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeQueryResponse(body)
	if err != nil {
		return nil, err
	}
	if err := v.Verify(resp.Result, resp.VO); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	return &QueryResult{
		Result:      resp.Result,
		VO:          resp.VO,
		VOBytes:     resp.VO.WireSize(),
		ResultBytes: resp.Result.WireSize(),
	}, nil
}

// Insert sends a tuple insert to the central server. Inserts are not
// idempotent, so a connection failure after the request may have been
// sent is reported instead of retried.
func (c *Client) Insert(ctx context.Context, table string, tup schema.Tuple) error {
	req := &wire.InsertRequest{Table: table, Tuple: tup}
	_, err := c.central.Call(ctx, wire.MsgInsertReq, req.Encode(), wire.MsgInsertResp, false)
	return err
}

// DeleteRange sends a key-range delete to the central server and returns
// the number of removed tuples.
func (c *Client) DeleteRange(ctx context.Context, table string, lo, hi *schema.Datum) (int, error) {
	req := &wire.DeleteRequest{Table: table}
	if lo != nil {
		req.HasLo, req.Lo = true, *lo
	}
	if hi != nil {
		req.HasHi, req.Hi = true, *hi
	}
	body, err := c.central.Call(ctx, wire.MsgDeleteReq, req.Encode(), wire.MsgDeleteResp, false)
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeU64(body)
	return int(n), err
}

// EdgeTables lists tables available at the edge server.
func (c *Client) EdgeTables(ctx context.Context) ([]string, error) {
	body, err := c.edge.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return nil, err
	}
	return wire.DecodeStringList(body)
}

// InvalidateSchema drops the cached verifier for a table (after schema or
// key changes).
func (c *Client) InvalidateSchema(table string) {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	delete(c.verifiers, table)
}
