// Package client implements the trusted DB client of the paper's
// Figure 2: it obtains the central server's public key over an
// authenticated channel (the PKI stand-in), sends queries to an edge
// server, and verifies every result against its verification object
// before handing it to the application. Updates are routed to the central
// server, since only the central server holds the signing key.
//
// The client is context-first and safe for concurrent use: N goroutines
// can query through one Client and their requests pipeline over a single
// multiplexed (wire protocol v2) connection per server, with responses
// demultiplexed by request ID. Against a legacy v1 server the client
// transparently downgrades to serial one-in/one-out exchanges. A dead
// cached connection is redialed with backoff instead of poisoning the
// client, and idempotent requests (queries, schema and key fetches) are
// retried once on a fresh connection.
package client

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"edgeauth/internal/digest"
	"edgeauth/internal/query"
	"edgeauth/internal/rpc"
	"edgeauth/internal/schema"
	"edgeauth/internal/shardmap"
	"edgeauth/internal/sig"
	"edgeauth/internal/verify"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
)

// Config configures a Client.
type Config struct {
	// EdgeAddr is the edge server answering queries.
	EdgeAddr string
	// CentralAddr is the trusted central server receiving updates and
	// serving the public key.
	CentralAddr string
	// DialTimeout bounds each TCP connect attempt. 0 selects
	// rpc.DefaultDialTimeout.
	DialTimeout time.Duration
	// RedialAttempts is how many connect attempts are made when a cached
	// connection has died. 0 selects rpc.DefaultRedialAttempts.
	RedialAttempts int
	// RedialBackoff is the wait before the second connect attempt,
	// doubling per attempt. 0 selects rpc.DefaultRedialBackoff.
	RedialBackoff time.Duration
	// DisableMultiplex forces wire protocol v1 (serial
	// one-frame-in/one-frame-out) even against a v2 server. Used by the
	// pipelined-vs-serial benchmarks and compatibility tests.
	DisableMultiplex bool
	// MaxClockSkew bounds how far a response's VO timestamp may deviate
	// from this client's own clock before the result is rejected as
	// stale or future-dated (the §3.4 freshness check — key validity is
	// always resolved against the client's clock, never the edge's).
	// 0 selects verify.DefaultMaxClockSkew; negative disables the
	// timestamp bound (key validity is still checked at the client
	// clock).
	MaxClockSkew time.Duration
}

func (c Config) rpcOptions() rpc.Options {
	return rpc.Options{
		DialTimeout:    c.DialTimeout,
		RedialAttempts: c.RedialAttempts,
		RedialBackoff:  c.RedialBackoff,
		ForceV1:        c.DisableMultiplex,
	}
}

// Client talks to one edge server and one central server.
type Client struct {
	cfg     Config
	edge    *rpc.Conn
	central *rpc.Conn
	keys    *sig.Registry

	vmu       sync.Mutex
	verifiers map[string]*verify.Verifier

	// smu guards the shard-map cache: the latest verified map per
	// partitioned table, plus a marker for edges that answered the map
	// request with "unsupported" (pre-sharding edges — the client then
	// uses the single-tree query path for the session).
	smu         sync.Mutex
	smaps       map[string]*shardmap.Signed
	noShardMaps map[string]bool
	// mapGens is the partition-epoch high-water mark per table: the
	// freshest (incarnation, map epoch) this client has verified. A
	// correctly signed map regressing below it is the replay-pre-split
	// attack and fails closed (verify.ErrMapReplay), never retried.
	mapGens map[string]mapGen
}

// mapGen records the freshest partition generation verified for a table.
type mapGen struct {
	epoch    uint64 // table incarnation
	mapEpoch uint64 // partition generation within the incarnation
}

// Dial creates a client and eagerly connects (and handshakes) to the
// edge server, so an unreachable edge surfaces immediately. The central
// connection is established on first use.
func Dial(ctx context.Context, cfg Config) (*Client, error) {
	c := newClient(cfg)
	if err := c.edge.Connect(ctx); err != nil {
		return nil, fmt.Errorf("client: dialing edge: %w", err)
	}
	return c, nil
}

// New creates a client with lazy connections.
//
// Deprecated: use Dial, which takes a context and reports an unreachable
// edge immediately.
func New(edgeAddr, centralAddr string) *Client {
	return newClient(Config{EdgeAddr: edgeAddr, CentralAddr: centralAddr})
}

func newClient(cfg Config) *Client {
	return &Client{
		cfg:         cfg,
		edge:        rpc.New(cfg.EdgeAddr, cfg.rpcOptions()),
		central:     rpc.New(cfg.CentralAddr, cfg.rpcOptions()),
		keys:        sig.NewRegistry(),
		verifiers:   make(map[string]*verify.Verifier),
		smaps:       make(map[string]*shardmap.Signed),
		noShardMaps: make(map[string]bool),
		mapGens:     make(map[string]mapGen),
	}
}

// Close drops both connections.
func (c *Client) Close() {
	c.edge.Close()
	c.central.Close()
}

// FetchTrustedKey retrieves the central server's public key over the
// authenticated channel and registers it for verification.
func (c *Client) FetchTrustedKey(ctx context.Context) error {
	body, err := c.central.Call(ctx, wire.MsgPubKeyReq, nil, wire.MsgPubKeyResp, true)
	if err != nil {
		return err
	}
	var pk sig.PublicKey
	if err := pk.UnmarshalBinary(body); err != nil {
		return err
	}
	c.keys.Put(&pk)
	return nil
}

// TrustKey registers an out-of-band public key (e.g. baked into the app).
func (c *Client) TrustKey(pk *sig.PublicKey) {
	c.keys.Put(pk)
}

// verifier builds (and caches) the verifier for a table using the edge's
// schema response. The schema and accumulator parameters are not secret —
// a lying edge only causes verification to fail. Concurrent callers for
// an uncached table may fetch the schema twice; the last one wins, which
// is harmless because the response is deterministic.
func (c *Client) verifier(ctx context.Context, table string) (*verify.Verifier, error) {
	c.vmu.Lock()
	v, ok := c.verifiers[table]
	c.vmu.Unlock()
	if ok {
		return v, nil
	}
	body, err := c.edge.Call(ctx, wire.MsgSchemaReq, []byte(table), wire.MsgSchemaResp, true)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeSchemaResponse(body)
	if err != nil {
		return nil, err
	}
	acc, err := digest.New(resp.AccParams.ToDigestParams())
	if err != nil {
		return nil, err
	}
	v = &verify.Verifier{Keys: c.keys, Acc: acc, Schema: resp.Schema, MaxClockSkew: c.cfg.MaxClockSkew}
	c.vmu.Lock()
	c.verifiers[table] = v
	c.vmu.Unlock()
	return v, nil
}

// Schema returns the table schema as reported by the edge server.
func (c *Client) Schema(ctx context.Context, table string) (*schema.Schema, error) {
	v, err := c.verifier(ctx, table)
	if err != nil {
		return nil, err
	}
	return v.Schema, nil
}

// QueryResult is a verified query answer. For range-partitioned tables
// it is the stitched union of the qualifying shards' verified answers.
type QueryResult struct {
	Result *vo.ResultSet
	// VO is the verification object (single-tree tables, or a sharded
	// query that touched exactly one shard). Cross-shard answers carry
	// one VO per qualifying shard in ShardVOs instead.
	VO *vo.VO
	// ShardVOs holds the per-shard VOs of a scatter-gather answer, in
	// shard order; nil for single-tree answers.
	ShardVOs []*vo.VO
	// ShardsQueried is how many shards the answer was gathered from
	// (0 for single-tree tables).
	ShardsQueried int
	// VOBytes / ResultBytes are the wire sizes, for cost accounting
	// (summed across shards).
	VOBytes     int
	ResultBytes int
}

// NumDigests sums the signed digests across the answer's VOs (the
// paper's VO size accounting unit), whether the answer came from one
// tree or was stitched from several shards.
func (r *QueryResult) NumDigests() int {
	if r.VO != nil {
		return r.VO.NumDigests()
	}
	n := 0
	for _, w := range r.ShardVOs {
		n += w.NumDigests()
	}
	return n
}

// ErrTampered wraps verification failures so applications can
// distinguish a compromised edge from transport errors.
var ErrTampered = errors.New("client: query result failed verification")

// Query runs a selection/projection at the edge and verifies the answer.
// Range-partitioned tables are answered by scatter-gather: the client
// fetches the central-signed shard map from the edge, verifies it,
// queries every shard the key range intersects (in parallel over the
// pipelined connection), verifies each per-shard VO anchored at the root
// digest the map pins, and stitches the results in key order. A missing
// or stale shard answer fails verification — the edge cannot silently
// drop a shard from a range answer.
func (c *Client) Query(ctx context.Context, table string, preds []query.Predicate, project []string) (*QueryResult, error) {
	v, err := c.verifier(ctx, table)
	if err != nil {
		return nil, err
	}
	sm, err := c.shardMap(ctx, v, table, false)
	if err != nil {
		return nil, err
	}
	if sm == nil {
		return c.queryLegacy(ctx, v, table, preds, project)
	}
	res, err := c.queryShards(ctx, v, sm, table, preds, project)
	for retry := 0; retry < maxShardDriftRetries && err != nil && errors.Is(err, errShardDrift); retry++ {
		// The gather straddled an edge refresh (answers from two map
		// generations), raced an online split/merge, or our cached
		// routing map described a dead partition. Refetch the routing
		// map and retry: drift is benign racing as long as it stops —
		// under a busy edge republishing every tick, several gathers
		// can straddle back to back — so the retry is a bounded loop,
		// and only drift that persists through it surfaces as the
		// tampering verdict. Every retry re-verifies from scratch;
		// an attacker steering the loop gains nothing but delay.
		sm, rerr := c.shardMap(ctx, v, table, true)
		if rerr != nil {
			return nil, rerr
		}
		if sm == nil {
			return nil, err
		}
		res, err = c.queryShards(ctx, v, sm, table, preds, project)
	}
	return res, err
}

// maxShardDriftRetries bounds the benign-drift retry loop: each retry
// costs one map fetch plus one scatter, and a gather's chance of
// straddling yet another republish shrinks geometrically, so a small
// bound separates racing (converges in a try or two) from an edge that
// cannot or will not produce a consistent gather (tampering verdict).
const maxShardDriftRetries = 6

// queryLegacy is the single-tree query path (unsharded tables and
// pre-sharding edge servers).
func (c *Client) queryLegacy(ctx context.Context, v *verify.Verifier, table string, preds []query.Predicate, project []string) (*QueryResult, error) {
	req := &wire.QueryRequest{
		Table:      table,
		Predicates: preds,
		Project:    project,
		ProjectAll: project == nil,
	}
	body, err := c.edge.Call(ctx, wire.MsgQueryReq, req.Encode(), wire.MsgQueryResp, true)
	if err != nil {
		return nil, err
	}
	resp, err := wire.DecodeQueryResponse(body)
	if err != nil {
		return nil, err
	}
	if err := v.Verify(resp.Result, resp.VO); err != nil {
		// An unknown or expired key version is not necessarily tampering:
		// the central server may have rotated its key (or restarted with a
		// fresh one) since this client last fetched it. Refetch once over
		// the authenticated channel and re-verify before crying wolf. A
		// freshness failure is excluded — no key refetch can repair a
		// backdated timestamp, and retrying would let a hostile edge turn
		// every tampered answer into load on the central server.
		if errors.Is(err, verify.ErrKeyVersion) && !errors.Is(err, verify.ErrFreshness) {
			if kerr := c.FetchTrustedKey(ctx); kerr != nil {
				// A transport failure, not a verification verdict: report
				// it as such so tamper alarms don't page on network blips.
				return nil, fmt.Errorf("client: refetching trusted key after %v: %w", err, kerr)
			}
			err = v.Verify(resp.Result, resp.VO)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrTampered, err)
		}
	}
	return &QueryResult{
		Result:      resp.Result,
		VO:          resp.VO,
		VOBytes:     resp.VO.WireSize(),
		ResultBytes: resp.Result.WireSize(),
	}, nil
}

// Insert sends a tuple insert to the central server. Inserts are not
// idempotent, so a connection failure after the request may have been
// sent is reported instead of retried.
func (c *Client) Insert(ctx context.Context, table string, tup schema.Tuple) error {
	req := &wire.InsertRequest{Table: table, Tuple: tup}
	_, err := c.central.Call(ctx, wire.MsgInsertReq, req.Encode(), wire.MsgInsertResp, false)
	return err
}

// InsertBatch ships tuples to the central server in one frame, where they
// commit as a single group (one WAL fsync, one version bump, one tree
// re-sign pass). The returned slice is index-aligned with tuples: a nil
// entry means inserted, a non-nil entry carries that tuple's typed
// failure (errors.Is-matchable, e.g. wire.ErrDuplicateKey) without
// affecting its neighbours. The error return is transport- or
// table-level. Servers predating the batch message are detected and
// served per-tuple transparently.
func (c *Client) InsertBatch(ctx context.Context, table string, tuples []schema.Tuple) ([]error, error) {
	if len(tuples) == 0 {
		return nil, nil
	}
	req := &wire.BatchRequest{Table: table, Tuples: tuples}
	body, err := c.central.Call(ctx, wire.MsgBatchReq, req.Encode(), wire.MsgBatchResp, false)
	if err != nil {
		if isUnsupported(err) {
			return c.insertFallback(ctx, table, tuples)
		}
		return nil, err
	}
	resp, err := wire.DecodeBatchResponse(body)
	if err != nil {
		return nil, err
	}
	if len(resp.Results) != len(tuples) {
		return nil, fmt.Errorf("client: batch response carries %d results for %d tuples", len(resp.Results), len(tuples))
	}
	out := make([]error, len(tuples))
	for i, r := range resp.Results {
		out[i] = r.Err()
	}
	return out, nil
}

// isUnsupported detects a server that does not know the batch message:
// typed on protocol v2, a prose error frame on legacy v1.
func isUnsupported(err error) bool {
	return errors.Is(err, wire.ErrUnsupported) ||
		strings.Contains(err.Error(), "unsupported message")
}

// insertFallback degrades a batch to per-tuple inserts against an older
// server, preserving the per-op result contract. If ctx expires partway,
// the outcomes already earned are kept: unsent tuples get the ctx error
// per-op and the cancellation is also returned, so callers can both see
// what committed and know the batch did not finish.
func (c *Client) insertFallback(ctx context.Context, table string, tuples []schema.Tuple) ([]error, error) {
	out := make([]error, len(tuples))
	for i, tup := range tuples {
		if err := ctx.Err(); err != nil {
			for j := i; j < len(tuples); j++ {
				out[j] = err
			}
			return out, err
		}
		out[i] = c.Insert(ctx, table, tup)
	}
	return out, nil
}

// DeleteRange sends a key-range delete to the central server and returns
// the number of removed tuples.
func (c *Client) DeleteRange(ctx context.Context, table string, lo, hi *schema.Datum) (int, error) {
	req := &wire.DeleteRequest{Table: table}
	if lo != nil {
		req.HasLo, req.Lo = true, *lo
	}
	if hi != nil {
		req.HasHi, req.Hi = true, *hi
	}
	body, err := c.central.Call(ctx, wire.MsgDeleteReq, req.Encode(), wire.MsgDeleteResp, false)
	if err != nil {
		return 0, err
	}
	n, err := wire.DecodeU64(body)
	return int(n), err
}

// EdgeTables lists tables available at the edge server.
func (c *Client) EdgeTables(ctx context.Context) ([]string, error) {
	body, err := c.edge.Call(ctx, wire.MsgListTablesReq, nil, wire.MsgListTablesResp, true)
	if err != nil {
		return nil, err
	}
	return wire.DecodeStringList(body)
}

// InvalidateSchema drops the cached verifier for a table (after schema or
// key changes).
func (c *Client) InvalidateSchema(table string) {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	delete(c.verifiers, table)
}

// VerifyCacheStats sums the verified-digest cache ledgers across the
// client's table verifiers: hits are signature operations repeat queries
// skipped entirely.
func (c *Client) VerifyCacheStats() verify.CacheStats {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	var total verify.CacheStats
	for _, v := range c.verifiers {
		cs := v.CacheStats()
		total.Hits += cs.Hits
		total.Misses += cs.Misses
	}
	return total
}
