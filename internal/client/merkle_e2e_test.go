package client

import (
	"context"
	"errors"
	"net"
	"testing"

	"edgeauth/internal/central"
	"edgeauth/internal/edge"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/tamper"
	"edgeauth/internal/vo"
	"edgeauth/internal/workload"
)

// deployScheme is deploy with an explicit signature scheme (and optional
// sharding) at the central server.
func deployScheme(t *testing.T, rows int, scheme sig.Scheme, shards int) *deployment {
	t.Helper()
	srv, err := central.NewServer(central.Options{PageSize: 1024, KeyBits: 512, Scheme: scheme, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(centralLn)
	eg := edge.New(centralLn.Addr().String())
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(edgeLn)
	cl, err := Dial(context.Background(), Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		eg.Close()
		srv.Close()
	})
	return &deployment{central: srv, edge: eg, client: cl}
}

func merkleSchemes() []sig.Scheme {
	return []sig.Scheme{sig.SchemeRSAMerkle, sig.SchemeEd25519}
}

// TestMerkleSchemesEndToEnd drives the full Figure-2 loop — build, pull,
// query, verify, update, refresh, re-verify — under each Merkle
// commitment scheme, on both the single-tree and sharded paths.
func TestMerkleSchemesEndToEnd(t *testing.T) {
	ctx := context.Background()
	for _, scheme := range merkleSchemes() {
		for _, shards := range []int{1, 3} {
			t.Run(scheme.String()+"/shards="+string(rune('0'+shards)), func(t *testing.T) {
				d := deployScheme(t, 300, scheme, shards)
				preds := []query.Predicate{
					{Column: "id", Op: query.OpGE, Value: schema.Int64(50)},
					{Column: "id", Op: query.OpLE, Value: schema.Int64(99)},
				}
				res, err := d.client.Query(ctx, "items", preds, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Result.Tuples) != 50 {
					t.Fatalf("got %d tuples, want 50", len(res.Result.Tuples))
				}
				// Update, refresh, and verify the new state round-trips.
				newTuple := mkWorkloadTuple(t, d, 5000)
				if err := d.client.Insert(ctx, "items", newTuple); err != nil {
					t.Fatal(err)
				}
				if _, err := d.edge.Refresh(ctx, "items"); err != nil {
					t.Fatal(err)
				}
				res, err = d.client.Query(ctx, "items", []query.Predicate{
					{Column: "id", Op: query.OpEQ, Value: schema.Int64(5000)},
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Result.Tuples) != 1 {
					t.Fatalf("inserted tuple not visible: got %d tuples", len(res.Result.Tuples))
				}
				if _, err := d.client.DeleteRange(ctx, "items", i64(5000), i64(5000)); err != nil {
					t.Fatal(err)
				}
				if _, err := d.edge.Refresh(ctx, "items"); err != nil {
					t.Fatal(err)
				}
				res, err = d.client.Query(ctx, "items", []query.Predicate{
					{Column: "id", Op: query.OpEQ, Value: schema.Int64(5000)},
				}, nil)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Result.Tuples) != 0 {
					t.Fatal("deleted tuple still visible")
				}
			})
		}
	}
}

// TestMerkleVerifyCacheHits shows repeat queries skipping signature work:
// the second identical query should be served entirely from the
// verified-digest cache.
func TestMerkleVerifyCacheHits(t *testing.T) {
	ctx := context.Background()
	d := deployScheme(t, 200, sig.SchemeEd25519, 1)
	preds := []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(60)},
	}
	if _, err := d.client.Query(ctx, "items", preds, nil); err != nil {
		t.Fatal(err)
	}
	first := d.client.VerifyCacheStats()
	if _, err := d.client.Query(ctx, "items", preds, nil); err != nil {
		t.Fatal(err)
	}
	second := d.client.VerifyCacheStats()
	if second.Hits <= first.Hits {
		t.Fatalf("repeat query earned no cache hits: %+v -> %+v", first, second)
	}
	if second.Misses != first.Misses {
		t.Fatalf("repeat query re-verified signatures: %+v -> %+v", first, second)
	}
}

// TestMerkleTamperFailsClosed drives the interior-forgery and scheme-
// confusion attacks (plus the classic catalogue) against Merkle-scheme
// deployments: every applicable attack must surface as ErrTampered.
func TestMerkleTamperFailsClosed(t *testing.T) {
	ctx := context.Background()
	preds := []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(60)},
	}
	for _, scheme := range merkleSchemes() {
		t.Run(scheme.String(), func(t *testing.T) {
			d := deployScheme(t, 200, scheme, 1)
			attacks := []tamper.Attack{
				tamper.ForgeInteriorNode(),
				tamper.CrossSchemeConfusion(),
				tamper.MutateValue(),
				tamper.DropTuple(),
				tamper.InjectTuple(),
				tamper.ForgeTopDigest(),
				tamper.MisliftDS(),
			}
			for _, a := range attacks {
				t.Run(a.Name, func(t *testing.T) {
					applied := false
					d.edge.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
						if err := a.Apply(rs, w); err != nil {
							if errors.Is(err, tamper.ErrNotApplicable) {
								return nil
							}
							return err
						}
						applied = true
						return nil
					})
					defer d.edge.SetTamper(nil)
					_, err := d.client.Query(ctx, "items", preds, nil)
					if !applied {
						t.Fatalf("attack %q did not apply to a Merkle VO", a.Name)
					}
					if !errors.Is(err, ErrTampered) {
						t.Fatalf("attack %q: err = %v, want ErrTampered", a.Name, err)
					}
				})
			}
			// Clean queries pass once the edge behaves again.
			if _, err := d.client.Query(ctx, "items", preds, nil); err != nil {
				t.Fatalf("clean query after tamper: %v", err)
			}
		})
	}
}

// TestCrossSchemeConfusionAgainstLegacy covers the other direction: a
// legacy RSA-full deployment served a Merkle-shaped VO must also reject.
func TestCrossSchemeConfusionAgainstLegacy(t *testing.T) {
	ctx := context.Background()
	d := deploy(t, 100)
	a := tamper.CrossSchemeConfusion()
	d.edge.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error { return a.Apply(rs, w) })
	defer d.edge.SetTamper(nil)
	_, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
	}, nil)
	if !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-scheme confusion against rsa-full: err = %v, want ErrTampered", err)
	}
}
