package client

import (
	"context"
	"errors"
	"testing"

	"edgeauth/internal/shardmap"
	"edgeauth/internal/tamper"
	"edgeauth/internal/verify"
	"edgeauth/internal/wire"
)

// TestQuerySurvivesReshardEpochRace: a client whose cached routing map
// predates an online split (or postdates a merge) must converge
// transparently — the scatter observes the partition change, refetches
// the map once, and the retried gather verifies. No ErrTampered, no
// stale answer.
func TestQuerySurvivesReshardEpochRace(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)

	// Warm the routing cache on the 4-shard partition.
	res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil)
	if err != nil || res.ShardsQueried != 4 {
		t.Fatalf("pre-split query: shards=%d err=%v", res.ShardsQueried, err)
	}

	// Split through the client's admin path; the edge follows on its
	// next refresh tick.
	resp, err := d.client.Reshard(ctx, &wire.ReshardRequest{Table: "items", Op: wire.ReshardSplit, Shard: 1})
	if err != nil {
		t.Fatalf("admin split: %v", err)
	}
	if resp.NumShards != 5 || resp.MapEpoch != 2 {
		t.Fatalf("split response: shards=%d epoch=%d, want 5/2", resp.NumShards, resp.MapEpoch)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	// Reshard invalidated the cache, so re-prime a STALE map: dial a
	// second client, warm it pre-merge, then transition again under it.
	fresh := d.freshClient(t)
	if res, err := fresh.Query(ctx, "items", rangePreds(0, 399), nil); err != nil || res.ShardsQueried != 5 {
		t.Fatalf("post-split query: shards=%d err=%v", res.ShardsQueried, err)
	}
	if _, err := d.central.MergeShards(ctx, "items", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	// fresh still routes on the 5-shard map: position 4 no longer
	// exists (ErrShardMoved under the hood) and the attached maps moved
	// to epoch 3 — both fold into one drift retry.
	res, err = fresh.Query(ctx, "items", rangePreds(0, 399), nil)
	if err != nil {
		t.Fatalf("query across a merge was not retried: %v", err)
	}
	if res.ShardsQueried != 4 || len(res.Result.Tuples) != 400 {
		t.Fatalf("post-merge query: shards=%d rows=%d, want 4/400", res.ShardsQueried, len(res.Result.Tuples))
	}
}

// TestReplayPreSplitMapFailsClosed: an edge replaying the correctly
// signed pre-split shard map cannot serve a client that has already
// verified the post-split partition — the partition-epoch ratchet
// rejects the regression as tampering (verify.ErrMapReplay), with no
// retry that could be steered to the stale map.
func TestReplayPreSplitMapFailsClosed(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)

	old, err := d.edge.SignedShardMap("items")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.central.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	// The client observes (and ratchets to) partition epoch 2.
	if res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); err != nil || res.ShardsQueried != 5 {
		t.Fatalf("post-split honest query: shards=%d err=%v", res.ShardsQueried, err)
	}

	// Now the edge turns hostile and replays the pre-split map.
	d.edge.SetMapTamper(func(*shardmap.Signed) *shardmap.Signed { return old })
	// Routing maps are cached, so force the refetch path too.
	d.client.InvalidateShardMap("items")
	_, err = d.client.Query(ctx, "items", rangePreds(0, 399), nil)
	if !errors.Is(err, ErrTampered) || !errors.Is(err, verify.ErrMapReplay) {
		t.Fatalf("replayed pre-split map returned %v, want ErrTampered+ErrMapReplay", err)
	}

	d.edge.SetMapTamper(nil)
	if res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); err != nil || len(res.Result.Tuples) != 400 {
		t.Fatalf("post-attack honest query: rows=%d err=%v", len(res.Result.Tuples), err)
	}
}

// TestReplayCatalogueAttackOnUnratchetedClient: the catalogue's
// replay-pre-split-map attack against a client that never saw the
// post-split epoch (so the ratchet cannot fire). The replayed map is
// authentic, but the edge's answers come from the post-split trees —
// each VO anchors at a root the stale map does not pin, so the
// per-shard binding fails closed instead.
func TestReplayCatalogueAttackOnUnratchetedClient(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)

	attack := tamper.ReplayPreSplitMap()
	d.edge.SetMapTamper(func(sm *shardmap.Signed) *shardmap.Signed {
		if err := attack.Apply(sm); err != nil && !errors.Is(err, tamper.ErrNotApplicable) {
			t.Errorf("replay attack: %v", err)
		}
		return sm
	})
	// Pre-split query: the attack captures the served map, the client
	// caches it as its routing map.
	if res, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); err != nil || res.ShardsQueried != 4 {
		t.Fatalf("pre-split query: shards=%d err=%v", res.ShardsQueried, err)
	}
	if _, err := d.central.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("hidden split returned %v, want ErrTampered", err)
	}
}

// TestHideSplitFailsClosed: forging map content — folding a split's
// children back into one shard and rewinding the epoch — breaks the
// map signature, for cached and fresh clients alike.
func TestHideSplitFailsClosed(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)
	if _, err := d.central.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	attack := tamper.HideSplit()
	d.edge.SetMapTamper(func(sm *shardmap.Signed) *shardmap.Signed {
		if err := attack.Apply(sm); err != nil {
			t.Errorf("hide-split inapplicable: %v", err)
		}
		return sm
	})
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("hide-split on warm client returned %v, want ErrTampered", err)
	}
	fresh := d.freshClient(t)
	if _, err := fresh.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("hide-split on fresh client returned %v, want ErrTampered", err)
	}
}

// TestCrossEpochSpliceFailsClosed: pairing the current partition shape
// with a superseded epoch's shard root digest is a pairing the central
// never signed — the map signature fails closed.
func TestCrossEpochSpliceFailsClosed(t *testing.T) {
	ctx := context.Background()
	d := deploySharded(t, 400, 4)

	attack := tamper.CrossEpochSplice()
	d.edge.SetMapTamper(func(sm *shardmap.Signed) *shardmap.Signed {
		if err := attack.Apply(sm); err != nil && !errors.Is(err, tamper.ErrNotApplicable) {
			t.Errorf("splice attack: %v", err)
		}
		return sm
	})
	// Capture pass.
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); err != nil {
		t.Fatalf("pre-split query: %v", err)
	}
	if _, err := d.central.SplitShard(ctx, "items", 0, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}
	d.client.InvalidateShardMap("items")
	if _, err := d.client.Query(ctx, "items", rangePreds(0, 399), nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("cross-epoch splice returned %v, want ErrTampered", err)
	}
}
