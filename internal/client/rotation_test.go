package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"edgeauth/internal/central"
	"edgeauth/internal/edge"
	"edgeauth/internal/query"
	"edgeauth/internal/schema"
	"edgeauth/internal/sig"
	"edgeauth/internal/vo"
	"edgeauth/internal/wire"
	"edgeauth/internal/workload"
)

// freshDeploy is deploy with a private (non-shared) signing key, so tests
// may rotate it without contaminating the package's shared key.
func freshDeploy(t *testing.T, rows int, opts central.Options) *deployment {
	t.Helper()
	key, err := sig.GenerateKey(512)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := central.NewServerWithKey(opts, key)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.DefaultSpec(rows)
	sch, err := spec.Schema()
	if err != nil {
		t.Fatal(err)
	}
	tuples, err := spec.Tuples()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.AddTable(sch, tuples); err != nil {
		t.Fatal(err)
	}
	centralLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(centralLn)
	eg := edge.New(centralLn.Addr().String())
	if err := eg.PullAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	edgeLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go eg.Serve(edgeLn)
	cl, err := Dial(context.Background(), Config{
		EdgeAddr:    edgeLn.Addr().String(),
		CentralAddr: centralLn.Addr().String(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.FetchTrustedKey(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		eg.Close()
		srv.Close()
	})
	return &deployment{central: srv, edge: eg, client: cl}
}

func rotationRow(t testing.TB, id int64) schema.Tuple {
	t.Helper()
	sch, err := workload.DefaultSpec(1).Schema()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]schema.Datum, len(sch.Columns))
	vals[0] = schema.Int64(id)
	for i := 1; i < len(vals); i++ {
		vals[i] = schema.Str(fmt.Sprintf("rotation-payload-%04d", id))
	}
	return schema.Tuple{Values: vals}
}

// TestQuerySurvivesKeyRotation is the regression test for the
// ErrTampered-forever bug: after the central server rotates its signing
// key version, responses carry a key version the client has never seen.
// The client must refetch the trusted key once over the authenticated
// channel and re-verify — not report tampering until restart.
func TestQuerySurvivesKeyRotation(t *testing.T) {
	ctx := context.Background()
	d := freshDeploy(t, 200, central.Options{PageSize: 1024})

	preds := []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(10)},
		{Column: "id", Op: query.OpLE, Value: schema.Int64(19)},
	}
	if _, err := d.client.Query(ctx, "items", preds, nil); err != nil {
		t.Fatalf("pre-rotation query: %v", err)
	}

	// Rotate: bump the key version with a fresh validity window, commit an
	// update under the new version, propagate it to the edge.
	now := time.Now().Unix()
	d.central.SetKeyValidity(2, now-60, 0)
	if err := d.central.Insert("items", rotationRow(t, 90_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.edge.Refresh(ctx, "items"); err != nil {
		t.Fatal(err)
	}

	// The next query's VO is stamped with version 2, which this client has
	// never fetched. It must recover transparently.
	res, err := d.client.Query(ctx, "items", preds, nil)
	if err != nil {
		t.Fatalf("post-rotation query reported: %v (the pre-fix client returned ErrTampered forever)", err)
	}
	if len(res.Result.Tuples) != 10 {
		t.Fatalf("post-rotation query returned %d tuples, want 10", len(res.Result.Tuples))
	}

	// The refetch must not become a hole: a VO stamped with a key version
	// the central server never served still fails as tampering.
	d.edge.SetTamper(func(rs *vo.ResultSet, w *vo.VO) error {
		w.KeyVersion = 99
		return nil
	})
	if _, err := d.client.Query(ctx, "items", preds, nil); !errors.Is(err, ErrTampered) {
		t.Fatalf("forged key version after rotation: %v, want ErrTampered", err)
	}
	d.edge.SetTamper(nil)
}

// TestInsertBatchEndToEnd drives the batched write path over real TCP:
// one frame in, a group commit at the central server, typed per-op
// results out, and the rows visible through a verified query after a
// delta refresh.
func TestInsertBatchEndToEnd(t *testing.T) {
	ctx := context.Background()
	d := freshDeploy(t, 150, central.Options{PageSize: 1024})

	base, err := d.central.Version("items")
	if err != nil {
		t.Fatal(err)
	}
	rows := []schema.Tuple{
		rotationRow(t, 70_000),
		rotationRow(t, 25), // duplicate of a base row
		rotationRow(t, 70_001),
		rotationRow(t, 70_002),
	}
	opErrs, err := d.client.InsertBatch(ctx, "items", rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 2, 3} {
		if opErrs[i] != nil {
			t.Fatalf("op %d failed: %v", i, opErrs[i])
		}
	}
	if !errors.Is(opErrs[1], wire.ErrDuplicateKey) {
		t.Fatalf("duplicate op error = %v, want wire.ErrDuplicateKey", opErrs[1])
	}

	// One version bump for the whole batch.
	if v, _ := d.central.Version("items"); v != base+1 {
		t.Fatalf("batch bumped version %d -> %d, want one bump", base, v)
	}

	// The batch reaches the edge as one delta and verifies end to end.
	st, err := d.edge.Refresh(ctx, "items")
	if err != nil {
		t.Fatal(err)
	}
	if st.Mode != "delta" {
		t.Fatalf("refresh mode = %q, want delta", st.Mode)
	}
	res, err := d.client.Query(ctx, "items", []query.Predicate{
		{Column: "id", Op: query.OpGE, Value: schema.Int64(70_000)},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Result.Tuples) != 3 {
		t.Fatalf("batched rows visible: %d, want 3", len(res.Result.Tuples))
	}

	// Empty batch is a no-op.
	if opErrs, err := d.client.InsertBatch(ctx, "items", nil); err != nil || opErrs != nil {
		t.Fatalf("empty batch: %v / %v", opErrs, err)
	}
	// Unknown table surfaces the typed table-level error.
	if _, err := d.client.InsertBatch(ctx, "missing", rows); !errors.Is(err, wire.ErrUnknownTable) {
		t.Fatalf("batch into unknown table: %v, want ErrUnknownTable", err)
	}
}
