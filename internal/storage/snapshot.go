package storage

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// PageReader is the immutable page-read interface the query path runs
// over: a view of the page space that never changes under the reader's
// feet. Snapshot implements it over a frozen version; BufferPool
// implements it over the live (caller-synchronized) pool.
type PageReader interface {
	// PageSize returns the fixed page size in bytes.
	PageSize() int
	// View returns the page's content without copying. The returned slice
	// aliases the reader's internal buffer and must not be modified; it
	// stays valid for as long as the reader itself (for a Snapshot, until
	// the pin is released).
	View(id PageID) ([]byte, error)
}

// Snapshot is one immutable version of a table's page space. Readers pin
// it with PageStore.Acquire, traverse it without any locking — concurrent
// refreshes publish successor snapshots instead of mutating pages in
// place — and Release it when done. When the last pin on a superseded
// snapshot drops, the page buffers it no longer shares with its successor
// are recycled back into the store's free pool.
type Snapshot struct {
	store   *PageStore
	version uint64
	pages   [][]byte // index = PageID; nil = allocated-but-unwritten (zero) page
	meta    any

	refs atomic.Int64
	next *Snapshot // successor in publish order, set under store.mu
}

// Version returns the snapshot's publish sequence number (0 for the
// store's initial empty snapshot).
func (s *Snapshot) Version() uint64 { return s.version }

// Meta returns the caller-supplied metadata published with the snapshot
// (e.g. the tree anchor that makes the page space interpretable).
func (s *Snapshot) Meta() any { return s.meta }

// PageSize implements PageReader.
func (s *Snapshot) PageSize() int { return s.store.pageSize }

// NumPages returns the number of allocated pages, including page 0.
func (s *Snapshot) NumPages() int { return len(s.pages) }

// View implements PageReader. Allocated-but-never-written pages read as
// zeroes, matching pager semantics.
func (s *Snapshot) View(id PageID) ([]byte, error) {
	if int(id) >= len(s.pages) {
		return nil, fmt.Errorf("storage: snapshot read of unallocated page %d", id)
	}
	if s.pages[id] == nil {
		return s.store.zero, nil
	}
	return s.pages[id], nil
}

// tryRef pins the snapshot unless it has already fully drained (a drained
// snapshot may be mid-recycle and must not be revived).
func (s *Snapshot) tryRef() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Retain adds a pin to an already-pinned snapshot — the RCU pattern
// where a publisher holds one pin for the snapshot's tenure as "current"
// and readers take their own short-lived pins from it. Returns false if
// the snapshot has fully drained (the publisher released it between the
// reader's load and this call); the reader then reloads the current
// pointer. Every successful Retain must be paired with a Release.
func (s *Snapshot) Retain() bool { return s.tryRef() }

// Release drops one pin. Exactly one Release per Acquire.
func (s *Snapshot) Release() {
	if n := s.refs.Add(-1); n == 0 {
		s.store.sweep()
	} else if n < 0 {
		panic("storage: snapshot released more times than acquired")
	}
}

// PageStore holds the versioned snapshot chain of one table replica. The
// current snapshot is published behind a single atomic pointer, so
// Acquire is lock-free; refreshes build a successor off to the side with
// Begin/Publish. Writers (Begin/Publish callers) must serialize among
// themselves — readers never block them and vice versa.
type PageStore struct {
	pageSize int
	zero     []byte // shared all-zero page for allocated-but-unwritten ids
	current  atomic.Pointer[Snapshot]

	mu     sync.Mutex // guards oldest/free/stats, not the read path
	oldest *Snapshot
	free   [][]byte
	// stats
	allocated, recycled uint64
}

// maxFreeBuffers bounds the recycle pool so a burst of retained snapshots
// does not pin memory forever.
const maxFreeBuffers = 4096

// NewPageStore creates a store whose current snapshot is the empty page
// space (page 0 reserved, as with pagers).
func NewPageStore(pageSize int) (*PageStore, error) {
	if pageSize < MinPageSize {
		return nil, fmt.Errorf("storage: page size %d below minimum %d", pageSize, MinPageSize)
	}
	ps := &PageStore{pageSize: pageSize, zero: make([]byte, pageSize)}
	s := &Snapshot{store: ps, pages: make([][]byte, 1)}
	s.refs.Store(1) // the store's own pin on the current snapshot
	ps.current.Store(s)
	ps.oldest = s
	return ps, nil
}

// PageSize returns the fixed page size in bytes.
func (ps *PageStore) PageSize() int { return ps.pageSize }

// Acquire pins and returns the current snapshot. It never blocks: the
// store pointer is read atomically and the pin is a CAS loop. Callers
// must Release exactly once.
func (ps *PageStore) Acquire() *Snapshot {
	for {
		s := ps.current.Load()
		if s.tryRef() {
			return s
		}
		// The snapshot was superseded and drained between the load and
		// the pin attempt; the pointer has already moved on.
	}
}

// Stats reports buffer-lifecycle counters: fresh allocations and buffers
// reclaimed from drained snapshots into the free pool.
func (ps *PageStore) Stats() (allocated, recycled uint64) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.allocated, ps.recycled
}

// getBuf hands out a page buffer, reusing drained snapshots' buffers.
func (ps *PageStore) getBuf() []byte {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if n := len(ps.free); n > 0 {
		buf := ps.free[n-1]
		ps.free = ps.free[:n-1]
		return buf
	}
	ps.allocated++
	return make([]byte, ps.pageSize)
}

func (ps *PageStore) putBufLocked(buf []byte) {
	ps.recycled++
	if len(ps.free) < maxFreeBuffers {
		ps.free = append(ps.free, buf)
	}
}

// sweep recycles the page buffers of fully released snapshots. A buffer
// introduced at version k is shared by snapshots k..m-1 (where m next
// overwrote the page), so it is dead exactly when the oldest live
// snapshot has moved past m-1 — hence the oldest-first cascade.
func (ps *PageStore) sweep() {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for ps.oldest != nil && ps.oldest.next != nil && ps.oldest.refs.Load() == 0 {
		s, n := ps.oldest, ps.oldest.next
		for id := 1; id < len(s.pages); id++ {
			buf := s.pages[id]
			if buf == nil {
				continue
			}
			if id < len(n.pages) && n.pages[id] != nil && &n.pages[id][0] == &buf[0] {
				continue // still shared with the successor
			}
			ps.putBufLocked(buf)
		}
		s.pages = nil
		ps.oldest = n
	}
}

// Overlay is a copy-on-write builder for the successor of the snapshot
// that was current at Begin. A refresh writes the changed pages into the
// overlay (originals stay untouched), then seals and publishes the result
// with a single atomic pointer swap. At most one overlay may be open per
// store at a time; Publish panics if the base was superseded, which would
// silently drop the intervening version's changes.
type Overlay struct {
	ps       *PageStore
	base     *Snapshot
	writes   map[PageID][]byte
	numPages int
	done     bool
}

// Begin pins the current snapshot as the overlay's base.
func (ps *PageStore) Begin() *Overlay {
	base := ps.Acquire()
	return &Overlay{
		ps:       ps,
		base:     base,
		writes:   make(map[PageID][]byte),
		numPages: base.NumPages(),
	}
}

// Base returns the pinned snapshot the overlay builds on (e.g. to read
// the predecessor's metadata). Valid until Publish or Abort.
func (o *Overlay) Base() *Snapshot { return o.base }

// PageSize returns the fixed page size in bytes.
func (o *Overlay) PageSize() int { return o.ps.pageSize }

// NumPages returns the successor's page count so far.
func (o *Overlay) NumPages() int { return o.numPages }

// Allocate extends the page space by one zeroed page and returns its id.
func (o *Overlay) Allocate() PageID {
	if o.done {
		panic("storage: allocate on sealed overlay")
	}
	id := PageID(o.numPages)
	o.numPages++
	return id
}

// WritePage stages new content for a page of the successor snapshot. The
// data is copied into a (possibly recycled) buffer owned by the overlay.
func (o *Overlay) WritePage(id PageID, data []byte) error {
	if o.done {
		return fmt.Errorf("storage: write on sealed overlay")
	}
	if id == 0 || int(id) >= o.numPages {
		return fmt.Errorf("storage: overlay write of page %d outside [1,%d)", id, o.numPages)
	}
	if len(data) != o.ps.pageSize {
		return fmt.Errorf("storage: overlay write of %d bytes, want %d", len(data), o.ps.pageSize)
	}
	buf, ok := o.writes[id]
	if !ok {
		buf = o.ps.getBuf()
		o.writes[id] = buf
	}
	copy(buf, data)
	return nil
}

// View implements PageReader over the overlay's read-through state:
// staged writes first, then the base snapshot, then zeroes for freshly
// allocated pages.
func (o *Overlay) View(id PageID) ([]byte, error) {
	if buf, ok := o.writes[id]; ok {
		return buf, nil
	}
	if int(id) < o.base.NumPages() {
		return o.base.View(id)
	}
	if int(id) < o.numPages {
		return o.ps.zero, nil
	}
	return nil, fmt.Errorf("storage: overlay read of unallocated page %d", id)
}

// Publish seals the overlay into an immutable snapshot, installs it as
// current with one atomic pointer swap, and returns it. Unchanged pages
// share buffers with the base; readers pinned to older snapshots keep
// seeing their version until they release. The overlay is consumed.
func (o *Overlay) Publish(meta any) *Snapshot {
	if o.done {
		panic("storage: publish on sealed overlay")
	}
	o.done = true
	ps := o.ps
	pages := make([][]byte, o.numPages)
	copy(pages, o.base.pages)
	for id, buf := range o.writes {
		pages[id] = buf
	}
	s := &Snapshot{store: ps, version: o.base.version + 1, pages: pages, meta: meta}
	s.refs.Store(1) // the store's pin, replacing the one on the base
	ps.mu.Lock()
	prev := ps.current.Load()
	if prev != o.base {
		ps.mu.Unlock()
		panic("storage: overlay base superseded; writers must serialize Begin/Publish")
	}
	prev.next = s
	ps.current.Store(s)
	ps.mu.Unlock()
	prev.Release()   // store pin moves to the successor
	o.base.Release() // overlay pin
	return s
}

// Abort discards the overlay, recycling its staged buffers.
func (o *Overlay) Abort() {
	if o.done {
		return
	}
	o.done = true
	o.ps.mu.Lock()
	for _, buf := range o.writes {
		o.ps.putBufLocked(buf)
	}
	o.ps.mu.Unlock()
	o.writes = nil
	o.base.Release()
}
