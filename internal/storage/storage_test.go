package storage

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestInitPageLayout(t *testing.T) {
	buf := make([]byte, 256)
	p := InitPage(buf, PageBTreeLeaf)
	if p.Type() != PageBTreeLeaf {
		t.Fatalf("Type = %v", p.Type())
	}
	if p.NumSlots() != 0 {
		t.Fatalf("fresh page has %d slots", p.NumSlots())
	}
	want := 256 - pageHeaderSize - slotSize
	if p.FreeSpace() != want {
		t.Fatalf("FreeSpace = %d, want %d", p.FreeSpace(), want)
	}
	p.SetType(PageVBLeaf)
	if p.Type() != PageVBLeaf {
		t.Fatal("SetType did not stick")
	}
}

func TestPageInsertGetDelete(t *testing.T) {
	p := InitPage(make([]byte, 512), PageHeap)
	cells := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	var slots []int
	for _, c := range cells {
		s, err := p.InsertCell(c)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Cell(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, cells[i]) {
			t.Fatalf("slot %d: got %q, want %q", s, got, cells[i])
		}
	}
	if err := p.DeleteCell(slots[1]); err != nil {
		t.Fatal(err)
	}
	if !p.IsDeleted(slots[1]) {
		t.Fatal("slot not tombstoned")
	}
	if _, err := p.Cell(slots[1]); err == nil {
		t.Fatal("read of deleted cell succeeded")
	}
	if err := p.DeleteCell(slots[1]); err == nil {
		t.Fatal("double delete succeeded")
	}
	if p.LiveCells() != 2 {
		t.Fatalf("LiveCells = %d, want 2", p.LiveCells())
	}
}

func TestPageBoundsChecks(t *testing.T) {
	p := InitPage(make([]byte, 256), PageHeap)
	if _, err := p.Cell(0); err == nil {
		t.Fatal("Cell(0) on empty page succeeded")
	}
	if _, err := p.Cell(-1); err == nil {
		t.Fatal("Cell(-1) succeeded")
	}
	if err := p.DeleteCell(3); err == nil {
		t.Fatal("DeleteCell out of range succeeded")
	}
	if !p.IsDeleted(7) {
		t.Fatal("out-of-range slot should read as deleted")
	}
}

func TestPageFullAndCompact(t *testing.T) {
	p := InitPage(make([]byte, MinPageSize), PageHeap)
	cell := bytes.Repeat([]byte{0xCC}, 20)
	var slots []int
	for {
		s, err := p.InsertCell(cell)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 3 {
		t.Fatalf("only %d cells fit", len(slots))
	}
	if _, err := p.InsertCell(cell); err != ErrPageFull {
		t.Fatalf("expected ErrPageFull, got %v", err)
	}
	// Delete one, compact, and verify survivors plus regained space.
	if err := p.DeleteCell(slots[0]); err != nil {
		t.Fatal(err)
	}
	before := p.FreeSpace()
	p.Compact()
	if p.FreeSpace() <= before {
		t.Fatalf("Compact did not reclaim space: %d -> %d", before, p.FreeSpace())
	}
	for _, s := range slots[1:] {
		got, err := p.Cell(s)
		if err != nil {
			t.Fatalf("slot %d lost after compact: %v", s, err)
		}
		if !bytes.Equal(got, cell) {
			t.Fatalf("slot %d corrupted after compact", s)
		}
	}
}

func TestPageOversizeCell(t *testing.T) {
	p := InitPage(make([]byte, 256), PageHeap)
	if _, err := p.InsertCell(make([]byte, 1024)); err != ErrPageFull {
		t.Fatalf("oversize insert: %v", err)
	}
}

func testPagers(t *testing.T) map[string]Pager {
	t.Helper()
	mem, err := NewMemPager(512)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := CreateDiskPager(filepath.Join(t.TempDir(), "pages.db"), 512)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mem.Close(); disk.Close() })
	return map[string]Pager{"mem": mem, "disk": disk}
}

func TestPagerAllocateReadWrite(t *testing.T) {
	for name, pg := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			if pg.NumPages() != 1 {
				t.Fatalf("fresh pager has %d pages, want 1 (meta)", pg.NumPages())
			}
			id, err := pg.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			if id != 1 {
				t.Fatalf("first user page id = %d, want 1", id)
			}
			buf := make([]byte, pg.PageSize())
			for i := range buf {
				buf[i] = byte(i)
			}
			if err := pg.WritePage(id, buf); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, pg.PageSize())
			if err := pg.ReadPage(id, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, buf) {
				t.Fatal("page content did not round-trip")
			}
			// Errors on bad arguments.
			if err := pg.ReadPage(99, got); err == nil {
				t.Fatal("read of unallocated page succeeded")
			}
			if err := pg.WritePage(99, buf); err == nil {
				t.Fatal("write of unallocated page succeeded")
			}
			if err := pg.ReadPage(id, make([]byte, 10)); err == nil {
				t.Fatal("short read buffer accepted")
			}
			if err := pg.WritePage(id, make([]byte, 10)); err == nil {
				t.Fatal("short write buffer accepted")
			}
		})
	}
}

func TestPagerMeta(t *testing.T) {
	for name, pg := range testPagers(t) {
		t.Run(name, func(t *testing.T) {
			meta, err := pg.Meta()
			if err != nil {
				t.Fatal(err)
			}
			if len(meta) != 0 {
				t.Fatalf("fresh meta = %d bytes", len(meta))
			}
			want := []byte("root=7;heap=1,2,3")
			if err := pg.SetMeta(want); err != nil {
				t.Fatal(err)
			}
			got, err := pg.Meta()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("meta round trip: got %q", got)
			}
			if err := pg.SetMeta(make([]byte, pg.PageSize())); err == nil {
				t.Fatal("oversized meta accepted")
			}
		})
	}
}

func TestDiskPagerPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	d, err := CreateDiskPager(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte{0x5A}, 512)
	if err := d.WritePage(id, content); err != nil {
		t.Fatal(err)
	}
	if err := d.SetMeta([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDiskPager(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.PageSize() != 512 || re.NumPages() != 2 {
		t.Fatalf("reopened: pageSize=%d numPages=%d", re.PageSize(), re.NumPages())
	}
	got := make([]byte, 512)
	if err := re.ReadPage(id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("page content lost across reopen")
	}
	meta, err := re.Meta()
	if err != nil {
		t.Fatal(err)
	}
	if string(meta) != "hello" {
		t.Fatalf("meta lost across reopen: %q", meta)
	}
}

func TestOpenDiskPagerRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.db")
	if err := writeFile(path, []byte("this is not a page file at all, definitely not")); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskPager(path); err == nil {
		t.Fatal("garbage file opened as pager")
	}
	if _, err := OpenDiskPager(filepath.Join(t.TempDir(), "missing.db")); err == nil {
		t.Fatal("missing file opened as pager")
	}
}

func TestPagerClosedOps(t *testing.T) {
	mem, _ := NewMemPager(256)
	mem.Close()
	if _, err := mem.Allocate(); err == nil {
		t.Fatal("Allocate on closed pager succeeded")
	}
	if err := mem.WritePage(0, make([]byte, 256)); err == nil {
		t.Fatal("WritePage on closed pager succeeded")
	}
}

func TestPageSizeValidation(t *testing.T) {
	if _, err := NewMemPager(16); err == nil {
		t.Fatal("tiny page size accepted")
	}
	if _, err := CreateDiskPager(filepath.Join(t.TempDir(), "x.db"), 16); err == nil {
		t.Fatal("tiny page size accepted")
	}
}

func TestBufferPoolFetchCaching(t *testing.T) {
	mem, _ := NewMemPager(256)
	bp, err := NewBufferPool(mem, 4)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bp.NewPage(PageHeap)
	if err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	if _, err := f.Page().InsertCell([]byte("cached")); err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, true)

	f2, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	cell, err := f2.Page().Cell(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(cell) != "cached" {
		t.Fatalf("cell = %q", cell)
	}
	bp.Unpin(f2, false)
	hits, misses, _ := bp.Stats()
	if hits != 1 || misses != 0 {
		t.Fatalf("hits=%d misses=%d, want 1/0", hits, misses)
	}
}

func TestBufferPoolEvictionWritesBack(t *testing.T) {
	mem, _ := NewMemPager(256)
	bp, _ := NewBufferPool(mem, 2)
	// Create three pages through a 2-frame pool; the first must be
	// evicted and written back.
	var ids []PageID
	var contents []string
	for i := 0; i < 3; i++ {
		f, err := bp.NewPage(PageHeap)
		if err != nil {
			t.Fatal(err)
		}
		s := fmt.Sprintf("page-%d", i)
		if _, err := f.Page().InsertCell([]byte(s)); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, f.ID())
		contents = append(contents, s)
		bp.Unpin(f, true)
	}
	_, _, ev := bp.Stats()
	if ev == 0 {
		t.Fatal("no evictions in a 2-frame pool after 3 pages")
	}
	// All pages must read back correctly (possibly from the pager).
	for i, id := range ids {
		f, err := bp.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := f.Page().Cell(0)
		if err != nil {
			t.Fatal(err)
		}
		if string(cell) != contents[i] {
			t.Fatalf("page %d: got %q, want %q", id, cell, contents[i])
		}
		bp.Unpin(f, false)
	}
}

func TestBufferPoolExhaustion(t *testing.T) {
	mem, _ := NewMemPager(256)
	bp, _ := NewBufferPool(mem, 2)
	f1, err := bp.NewPage(PageHeap)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := bp.NewPage(PageHeap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.NewPage(PageHeap); err == nil {
		t.Fatal("third page allocated with all frames pinned")
	}
	bp.Unpin(f1, false)
	if _, err := bp.NewPage(PageHeap); err != nil {
		t.Fatalf("allocation after unpin failed: %v", err)
	}
	bp.Unpin(f2, false)
}

func TestBufferPoolFlushAll(t *testing.T) {
	mem, _ := NewMemPager(256)
	bp, _ := NewBufferPool(mem, 4)
	f, _ := bp.NewPage(PageHeap)
	if _, err := f.Page().InsertCell([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	id := f.ID()
	bp.Unpin(f, true)
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Read directly from the pager, bypassing the pool.
	raw := make([]byte, 256)
	if err := mem.ReadPage(id, raw); err != nil {
		t.Fatal(err)
	}
	cell, err := AsPage(raw).Cell(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(cell) != "durable" {
		t.Fatalf("flushed cell = %q", cell)
	}
}

func TestBufferPoolValidation(t *testing.T) {
	mem, _ := NewMemPager(256)
	if _, err := NewBufferPool(mem, 0); err == nil {
		t.Fatal("zero-frame pool accepted")
	}
}

func TestRecordIDEncoding(t *testing.T) {
	rid := RecordID{Page: 123456, Slot: 789}
	enc := rid.Encode(nil)
	got, err := DecodeRecordID(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != rid {
		t.Fatalf("round trip: got %v, want %v", got, rid)
	}
	if _, err := DecodeRecordID(enc[:3]); err == nil {
		t.Fatal("short record id accepted")
	}
	if rid.String() != "123456:789" {
		t.Fatalf("String = %q", rid.String())
	}
	if (RecordID{}).IsValid() {
		t.Fatal("zero RecordID is valid")
	}
}

func newTestHeap(t *testing.T) *HeapFile {
	t.Helper()
	mem, err := NewMemPager(256)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBufferPool(mem, 8)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapInsertGet(t *testing.T) {
	h := newTestHeap(t)
	recs := make(map[RecordID][]byte)
	for i := 0; i < 50; i++ {
		rec := []byte(fmt.Sprintf("record-%03d", i))
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		recs[rid] = rec
	}
	if len(h.Pages()) < 2 {
		t.Fatal("expected heap to span multiple pages")
	}
	for rid, want := range recs {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%v) = %q, want %q", rid, got, want)
		}
	}
	n, err := h.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("Count = %d, want 50", n)
	}
}

func TestHeapDeleteAndScan(t *testing.T) {
	h := newTestHeap(t)
	var rids []RecordID
	for i := 0; i < 10; i++ {
		rid, err := h.Insert([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	for i := 0; i < 10; i += 2 {
		if err := h.Delete(rids[i]); err != nil {
			t.Fatal(err)
		}
	}
	var seen []byte
	if err := h.Scan(func(_ RecordID, rec []byte) bool {
		seen = append(seen, rec[0])
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seen, []byte{1, 3, 5, 7, 9}) {
		t.Fatalf("survivors = %v", seen)
	}
	if _, err := h.Get(rids[0]); err == nil {
		t.Fatal("Get of deleted record succeeded")
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h := newTestHeap(t)
	for i := 0; i < 5; i++ {
		if _, err := h.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if err := h.Scan(func(RecordID, []byte) bool {
		count++
		return count < 3
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("scan visited %d records, want 3", count)
	}
}

func TestHeapOverflowRecords(t *testing.T) {
	h := newTestHeap(t) // 256-byte pages
	rng := rand.New(rand.NewSource(3))
	sizes := []int{
		200,  // inline, near capacity
		250,  // just over inline capacity -> 2 overflow chunks
		1024, // several chunks
		5000, // many chunks
	}
	type stored struct {
		rid RecordID
		rec []byte
	}
	var all []stored
	for _, sz := range sizes {
		rec := make([]byte, sz)
		rng.Read(rec)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatalf("Insert(%d bytes): %v", sz, err)
		}
		all = append(all, stored{rid, rec})
	}
	// Interleave a small record to confirm the slotted pages still work.
	smallRid, err := h.Insert([]byte("small"))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range all {
		got, err := h.Get(s.rid)
		if err != nil {
			t.Fatalf("Get(%d bytes): %v", len(s.rec), err)
		}
		if !bytes.Equal(got, s.rec) {
			t.Fatalf("overflow record of %d bytes corrupted", len(s.rec))
		}
	}
	if got, err := h.Get(smallRid); err != nil || string(got) != "small" {
		t.Fatalf("small record after overflow: %q %v", got, err)
	}
	// Scan resolves overflow chains too.
	seen := 0
	if err := h.Scan(func(rid RecordID, rec []byte) bool {
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(all)+1 {
		t.Fatalf("scan saw %d records, want %d", seen, len(all)+1)
	}
	// Deleting an overflow record's descriptor hides it.
	if err := h.Delete(all[2].rid); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(all[2].rid); err == nil {
		t.Fatal("deleted overflow record still readable")
	}
}

func TestHeapReopen(t *testing.T) {
	mem, _ := NewMemPager(256)
	bp, _ := NewBufferPool(mem, 8)
	h, err := NewHeapFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	pages := h.Pages()

	h2, err := OpenHeapFile(bp, pages)
	if err != nil {
		t.Fatal(err)
	}
	got, err := h2.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "survivor" {
		t.Fatalf("reopened heap Get = %q", got)
	}
	if _, err := OpenHeapFile(bp, nil); err == nil {
		t.Fatal("OpenHeapFile with no pages accepted")
	}
}

func TestHeapRandomizedWorkload(t *testing.T) {
	h := newTestHeap(t)
	rng := rand.New(rand.NewSource(42))
	live := make(map[RecordID][]byte)
	for op := 0; op < 500; op++ {
		if len(live) == 0 || rng.Intn(3) > 0 {
			rec := make([]byte, 1+rng.Intn(40))
			rng.Read(rec)
			rid, err := h.Insert(rec)
			if err != nil {
				t.Fatal(err)
			}
			live[rid] = append([]byte(nil), rec...)
		} else {
			for rid := range live {
				if err := h.Delete(rid); err != nil {
					t.Fatal(err)
				}
				delete(live, rid)
				break
			}
		}
	}
	n, err := h.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(live) {
		t.Fatalf("Count = %d, want %d", n, len(live))
	}
	for rid, want := range live {
		got, err := h.Get(rid)
		if err != nil {
			t.Fatalf("Get(%v): %v", rid, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("Get(%v) mismatch", rid)
		}
	}
}

func writeFile(path string, data []byte) error {
	return osWriteFile(path, data)
}
