package storage

import "testing"

func TestBufferPoolJournal(t *testing.T) {
	mem, err := NewMemPager(MinPageSize)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := NewBufferPool(mem, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Disabled journal records nothing.
	f, err := bp.NewPage(PageHeap)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, true)
	if got := bp.DrainJournal(); got != nil {
		t.Fatalf("disabled journal drained %v", got)
	}

	bp.EnableJournal()
	// NewPage, dirty Unpin, and MarkDirty all record; clean operations
	// do not.
	f1, err := bp.NewPage(PageHeap)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f1, false)
	f2, err := bp.Fetch(f.ID())
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f2, true)
	f3, err := bp.Fetch(f.ID())
	if err != nil {
		t.Fatal(err)
	}
	bp.MarkDirty(f3)
	bp.Unpin(f3, false)

	got := bp.DrainJournal()
	if len(got) != 2 || got[0] != f.ID() || got[1] != f1.ID() {
		t.Fatalf("journal = %v, want [%d %d]", got, f.ID(), f1.ID())
	}
	// Drained: next drain is empty until a new write happens.
	if got := bp.DrainJournal(); got != nil {
		t.Fatalf("second drain returned %v", got)
	}
	f4, err := bp.Fetch(f1.ID())
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f4, false)
	if got := bp.DrainJournal(); got != nil {
		t.Fatalf("clean fetch journaled %v", got)
	}
}
